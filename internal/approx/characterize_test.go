package approx

import (
	"math"
	"testing"

	"redcane/internal/tensor"
)

func TestCharacterizeExactIsZeroError(t *testing.T) {
	p := Characterize(Exact{}, Uniform{}, 9, 5000, 1)
	if p.NM != 0 || p.NA != 0 {
		t.Fatalf("exact multiplier NM=%g NA=%g", p.NM, p.NA)
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	a := Characterize(BrokenCarry{Depth: 7}, Uniform{}, 9, 2000, 42)
	b := Characterize(BrokenCarry{Depth: 7}, Uniform{}, 9, 2000, 42)
	if a.NM != b.NM || a.NA != b.NA {
		t.Fatal("characterization must be deterministic for a fixed seed")
	}
}

func TestErrorStdGrowsWithChainLength(t *testing.T) {
	// For near-independent per-MAC errors the accumulated std grows like
	// sqrt(k); the paper's Fig. 6 shows exactly this widening from 1 to 9
	// to 81 MACs. We assert monotone growth with a generous sqrt-band.
	m := BrokenCarry{Depth: 7, Compensate: true}
	var stds []float64
	for _, k := range []int{1, 9, 81} {
		p := Characterize(m, Uniform{}, k, 20000, 7)
		stds = append(stds, p.Fit.Std)
	}
	if !(stds[0] < stds[1] && stds[1] < stds[2]) {
		t.Fatalf("error std not increasing with chain length: %v", stds)
	}
	ratio91 := stds[1] / stds[0]
	if ratio91 < 2 || ratio91 > 4.5 { // sqrt(9)=3 with tolerance
		t.Fatalf("9-MAC/1-MAC std ratio = %g, want ≈3", ratio91)
	}
	ratio819 := stds[2] / stds[1]
	if ratio819 < 2 || ratio819 > 4.5 { // sqrt(81/9)=3
		t.Fatalf("81-MAC/9-MAC std ratio = %g, want ≈3", ratio819)
	}
}

func TestAccumulatedErrorIsGaussianLike(t *testing.T) {
	// CLT: even strongly non-Gaussian single-multiplier errors become
	// Gaussian-like after 81 accumulations — the paper's key modeling
	// observation (31 of 35 components Gaussian-like).
	for _, c := range Library()[1:] {
		p := Characterize(c.Model, Uniform{}, 81, 20000, 3)
		if p.Fit.KS > 0.08 {
			t.Errorf("%s: 81-MAC error not Gaussian-like (KS=%g)", c.Name, p.Fit.KS)
		}
	}
}

func TestNMOrderingRoughlyTracksPower(t *testing.T) {
	// The cheapest components must be noisier than the most accurate
	// ones. We check the coarse ordering between the two ends of the
	// library rather than strict monotonicity (the paper's Table IV is
	// not strictly monotone either).
	lib := Library()
	first := Characterize(lib[1].Model, Uniform{}, 1, 20000, 5) // 14VP
	last := Characterize(lib[len(lib)-1].Model, Uniform{}, 1, 20000, 5)
	if first.NM >= last.NM {
		t.Fatalf("NM of most accurate (%g) >= cheapest (%g)", first.NM, last.NM)
	}
}

func TestMeasuredNMWithinBandOfPaper(t *testing.T) {
	// Each behavioral stand-in must land within a factor of 3 of the
	// paper's modeled NM for its component (or within 5e-4 absolute for
	// the nearly-exact ones).
	for _, c := range Library() {
		p := Characterize(c.Model, Uniform{}, 1, 30000, 11)
		if c.PaperNM == 0 {
			if p.NM != 0 {
				t.Errorf("%s: want exact, got NM=%g", c.Name, p.NM)
			}
			continue
		}
		if math.Abs(p.NM-c.PaperNM) < 5e-4 {
			continue
		}
		ratio := p.NM / c.PaperNM
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s: measured NM %g vs paper %g (ratio %g)", c.Name, p.NM, c.PaperNM, ratio)
		}
	}
}

func TestEmpiricalDistSamplesFromPools(t *testing.T) {
	d := Empirical{Label: "test", A: []uint8{5}, B: []uint8{7}}
	rng := tensor.NewRNG(1)
	a, b := d.Sample(rng)
	if a != 5 || b != 7 {
		t.Fatalf("Sample = %d, %d", a, b)
	}
	if d.Name() != "test" {
		t.Fatalf("Name = %q", d.Name())
	}
}

func TestCharacterizeComponentProducesBothColumns(t *testing.T) {
	c, err := ByName("mul8u_NGR")
	if err != nil {
		t.Fatal(err)
	}
	real := Empirical{Label: "lowvals", A: []uint8{0, 1, 2, 3, 10, 20}, B: []uint8{1, 2, 3}}
	modeled, measured := CharacterizeComponent(c, real, 9, 5000, 2)
	if modeled.Dist != "uniform" || measured.Dist != "lowvals" {
		t.Fatalf("dists = %q, %q", modeled.Dist, measured.Dist)
	}
	if modeled.Component != "mul8u_NGR" || measured.Component != "mul8u_NGR" {
		t.Fatalf("component names = %q, %q", modeled.Component, measured.Component)
	}
}

func TestCharacterizeInvalidArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Characterize(Exact{}, Uniform{}, 0, 100, 1)
}

func TestHistogramCoversAllSamples(t *testing.T) {
	p := Characterize(DRUM{K: 4}, Uniform{}, 1, 5000, 9)
	if p.Hist.N != 5000 {
		t.Fatalf("histogram N = %d", p.Hist.N)
	}
	total := 0
	for _, c := range p.Hist.Counts {
		total += c
	}
	if total != 5000 {
		t.Fatalf("histogram counts sum to %d", total)
	}
}

func TestRegistryLookups(t *testing.T) {
	if len(Library()) != 15 {
		t.Fatalf("library size = %d, want 15 (Table IV)", len(Library()))
	}
	if Accurate().Name != "mul8u_1JFF" {
		t.Fatalf("accurate component = %s", Accurate().Name)
	}
	if _, err := ByName("mul8u_NOPE"); err == nil {
		t.Fatal("lookup of unknown component succeeded")
	}
	sorted := SortedByPower()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].PowerUW < sorted[i-1].PowerUW {
			t.Fatal("SortedByPower not ascending")
		}
	}
}

func TestPowerAreaReductionsMatchPaperHeadline(t *testing.T) {
	ngr, err := ByName("mul8u_NGR")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: NGR saves 29 % power, 28 % area.
	if r := ngr.PowerReduction(); math.Abs(r-0.29) > 0.02 {
		t.Fatalf("NGR power reduction = %g", r)
	}
	if r := ngr.AreaReduction(); math.Abs(r-0.28) > 0.02 {
		t.Fatalf("NGR area reduction = %g", r)
	}
	if Accurate().PowerReduction() != 0 {
		t.Fatal("accurate component must have zero reduction")
	}
}

func TestLibraryIsCopy(t *testing.T) {
	l := Library()
	l[0].Name = "mutated"
	if Library()[0].Name != "mul8u_1JFF" {
		t.Fatal("Library must return a copy")
	}
}

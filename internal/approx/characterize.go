package approx

import (
	"fmt"
	"math/rand/v2"

	"redcane/internal/tensor"
)

// InputDist supplies operand pairs for error characterization. The paper
// distinguishes the "modeled" distribution (uniform random operands) from
// the "real" one (operands drawn from a CapsNet's actual quantized
// activations and weights); Table IV compares NM/NA under both.
type InputDist interface {
	// Sample returns one (activation, weight) operand pair.
	Sample(rng *rand.Rand) (a, b uint8)
	// Name identifies the distribution in reports.
	Name() string
}

// Uniform is the modeled input distribution: independent uniform operands.
type Uniform struct{}

// Sample draws two independent uniform bytes.
func (Uniform) Sample(rng *rand.Rand) (a, b uint8) {
	v := rng.Uint64()
	return uint8(v), uint8(v >> 8)
}

// Name returns "uniform".
func (Uniform) Name() string { return "uniform" }

// Empirical draws operands from two observed pools (e.g. quantized conv
// input activations and quantized weights sampled from a trained CapsNet).
type Empirical struct {
	// Label names the source, e.g. "deepcaps-cifar-conv-inputs".
	Label string
	// A is the activation pool, B the weight pool; both must be non-empty.
	A, B []uint8
}

// Sample draws one operand from each pool.
func (e Empirical) Sample(rng *rand.Rand) (a, b uint8) {
	return e.A[rng.IntN(len(e.A))], e.B[rng.IntN(len(e.B))]
}

// Name returns the label.
func (e Empirical) Name() string { return e.Label }

// ErrorProfile is the outcome of characterizing one multiplier under one
// input distribution and one MAC-chain length (paper Fig. 6 / Table IV).
type ErrorProfile struct {
	Component string
	Dist      string
	// ChainLen is the number of accumulated MACs (1, 9 or 81 in the
	// paper, matching 1×1, 3×3 and 9×9 convolution kernels).
	ChainLen int
	// Samples is the number of chains evaluated.
	Samples int
	// Fit holds the Gaussian interpolation of the arithmetic error ΔP.
	Fit tensor.GaussianFit
	// Hist is a 64-bin histogram of ΔP for rendering Fig. 6.
	Hist *tensor.Histogram
	// OutputRange is R(X): the dynamic range of the accurate chain
	// outputs over the sample set, the normalizer in NM/NA.
	OutputRange float64
	// NM = std(ΔP)/R(X), NA = mean(ΔP)/R(X) — paper Sec. III-B.
	NM, NA float64
}

// Characterize measures the arithmetic-error distribution of m under dist
// with chains of chainLen accumulated MACs, using n sample chains.
// It reproduces Eq. 2 and the NM/NA definitions of the paper.
func Characterize(m Multiplier, dist InputDist, chainLen, n int, seed uint64) ErrorProfile {
	if chainLen < 1 || n < 2 {
		panic(fmt.Sprintf("approx: invalid characterization chainLen=%d n=%d", chainLen, n))
	}
	rng := tensor.NewRNG(seed)
	errs := make([]float64, n)
	exact := make([]float64, n)
	for i := 0; i < n; i++ {
		var accApprox, accExact float64
		for k := 0; k < chainLen; k++ {
			a, b := dist.Sample(rng)
			accApprox += float64(m.Mul(a, b))
			accExact += float64(uint16(a) * uint16(b))
		}
		errs[i] = accApprox - accExact
		exact[i] = accExact
	}

	exactT := tensor.NewFrom(exact, n)
	r := exactT.Range()
	if r <= 0 {
		r = 1
	}

	lo, hi := tensor.NewFrom(errs, n).MinMax()
	if hi <= lo {
		hi = lo + 1
	}
	hist := tensor.NewHistogram(lo, hi, 64)
	hist.ObserveAll(errs)

	fit := tensor.FitGaussian(errs)
	return ErrorProfile{
		Component:   name(m),
		Dist:        dist.Name(),
		ChainLen:    chainLen,
		Samples:     n,
		Fit:         fit,
		Hist:        hist,
		OutputRange: r,
		NM:          fit.Std / r,
		NA:          fit.Mean / r,
	}
}

// name renders a stable identifier for a multiplier model.
func name(m Multiplier) string {
	switch v := m.(type) {
	case Exact:
		return "exact"
	case ProductTrunc:
		return fmt.Sprintf("ptrunc%d", v.Bits)
	case OperandTrunc:
		return fmt.Sprintf("otrunc%d.%d", v.ABits, v.BBits)
	case BrokenCarry:
		return fmt.Sprintf("broken%d", v.Depth)
	case DRUM:
		return fmt.Sprintf("drum%d", v.K)
	case Mitchell:
		return "mitchell"
	case *LUT:
		return "lut"
	default:
		return fmt.Sprintf("%T", m)
	}
}

// CharacterizeComponent runs Characterize for a library component under
// both the modeled (uniform) and a real input distribution, at the given
// chain length, producing the two NM/NA columns of Table IV.
func CharacterizeComponent(c Component, real InputDist, chainLen, n int, seed uint64) (modeled, measured ErrorProfile) {
	modeled = Characterize(c.Model, Uniform{}, chainLen, n, seed)
	modeled.Component = c.Name
	measured = Characterize(c.Model, real, chainLen, n, seed+1)
	measured.Component = c.Name
	return modeled, measured
}

// EmpiricalDist is a convenience constructor for an Empirical input
// distribution over captured operand pools.
func EmpiricalDist(a, b []uint8) Empirical {
	return Empirical{Label: "empirical", A: a, B: b}
}

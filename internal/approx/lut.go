package approx

// LUT is a fully enumerated 8×8 multiplier: 65536 precomputed products.
// It turns any behavioral Multiplier into an O(1) table lookup, which is
// what the approximate execution engine (internal/axe) uses on its hot
// path, and doubles as a golden reference when validating models.
type LUT struct {
	table [65536]uint16
}

// CompileLUT enumerates m over all input pairs.
func CompileLUT(m Multiplier) *LUT {
	l := &LUT{}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			l.table[a<<8|b] = m.Mul(uint8(a), uint8(b))
		}
	}
	return l
}

// Mul returns the tabulated product.
func (l *LUT) Mul(a, b uint8) uint16 {
	return l.table[int(a)<<8|int(b)]
}

var _ Multiplier = (*LUT)(nil)

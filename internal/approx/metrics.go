package approx

import "math"

// Standard approximate-circuit quality metrics over the full 8×8 input
// space, complementing the application-level NM/NA characterization.
// These are the figures of merit the EvoApprox8B library itself reports,
// so custom components can be compared against published designs.

// Metrics summarizes a multiplier's arithmetic-error behavior across all
// 65536 input pairs.
type Metrics struct {
	// MAE is the mean absolute error.
	MAE float64
	// WCE is the worst-case absolute error.
	WCE float64
	// ErrorRate is the fraction of inputs with a non-exact product.
	ErrorRate float64
	// MRED is the mean relative error distance (|ΔP|/max(1, P)).
	MRED float64
	// Bias is the mean signed error.
	Bias float64
}

// Measure computes the exhaustive metrics for m.
func Measure(m Multiplier) Metrics {
	var mae, wce, mred, bias float64
	errs := 0
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			p := float64(a * b)
			d := float64(m.Mul(uint8(a), uint8(b))) - p
			ad := math.Abs(d)
			mae += ad
			bias += d
			mred += ad / math.Max(1, p)
			if ad > wce {
				wce = ad
			}
			if d != 0 {
				errs++
			}
		}
	}
	const n = 65536
	return Metrics{
		MAE:       mae / n,
		WCE:       wce,
		ErrorRate: float64(errs) / n,
		MRED:      mred / n,
		Bias:      bias / n,
	}
}

package approx

import (
	"math"
	"testing"
)

func TestMeasureExactMultiplier(t *testing.T) {
	m := Measure(Exact{})
	if m.MAE != 0 || m.WCE != 0 || m.ErrorRate != 0 || m.MRED != 0 || m.Bias != 0 {
		t.Fatalf("exact metrics = %+v", m)
	}
}

func TestMeasureProductTruncBounds(t *testing.T) {
	m := Measure(ProductTrunc{Bits: 6})
	if m.WCE >= 64 {
		t.Fatalf("WCE = %g, truncating 6 bits bounds |err| < 64", m.WCE)
	}
	if m.Bias >= 0 {
		t.Fatalf("uncompensated truncation must be negatively biased: %g", m.Bias)
	}
	if m.ErrorRate <= 0 || m.ErrorRate > 1 {
		t.Fatalf("error rate = %g", m.ErrorRate)
	}
	// MAE ≤ WCE always.
	if m.MAE > m.WCE {
		t.Fatalf("MAE %g > WCE %g", m.MAE, m.WCE)
	}
}

func TestMeasureCompensationReducesBias(t *testing.T) {
	raw := Measure(BrokenCarry{Depth: 7})
	comp := Measure(BrokenCarry{Depth: 7, Compensate: true})
	if math.Abs(comp.Bias) >= math.Abs(raw.Bias) {
		t.Fatalf("compensated bias %g not smaller than raw %g", comp.Bias, raw.Bias)
	}
}

func TestMeasureOrderingAcrossLibrary(t *testing.T) {
	// The most accurate approximate component must have lower MAE than
	// the crudest one.
	first, err := ByName("mul8u_14VP")
	if err != nil {
		t.Fatal(err)
	}
	last, err := ByName("mul8u_QKX")
	if err != nil {
		t.Fatal(err)
	}
	if Measure(first.Model).MAE >= Measure(last.Model).MAE {
		t.Fatal("library MAE ordering broken")
	}
}

func TestMeasureMatchesMRED(t *testing.T) {
	m := DRUM{K: 4}
	if got, want := Measure(m).MRED, MeanRelativeErrorDistance(m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MRED mismatch: %g vs %g", got, want)
	}
}

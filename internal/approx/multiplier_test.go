package approx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactMatchesHardwareMultiply(t *testing.T) {
	f := func(a, b uint8) bool {
		return Exact{}.Mul(a, b) == uint16(a)*uint16(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProductTruncErrorBound(t *testing.T) {
	for _, bits := range []uint{1, 4, 7} {
		m := ProductTrunc{Bits: bits}
		bound := float64(int(1)<<bits - 1)
		for a := 0; a < 256; a += 3 {
			for b := 0; b < 256; b += 7 {
				e := ErrorOf(m, uint8(a), uint8(b))
				if e > 0 || -e > bound {
					t.Fatalf("ptrunc%d error %g out of [-%g, 0] at %d×%d", bits, e, bound, a, b)
				}
			}
		}
	}
}

func TestProductTruncZeroBitsIsExact(t *testing.T) {
	m := ProductTrunc{Bits: 0, Compensate: true}
	for a := 0; a < 256; a += 5 {
		for b := 0; b < 256; b += 5 {
			if m.Mul(uint8(a), uint8(b)) != uint16(a)*uint16(b) {
				t.Fatalf("ptrunc0 not exact at %d×%d", a, b)
			}
		}
	}
}

func TestProductTruncCompensationCentersError(t *testing.T) {
	raw := Characterize(ProductTrunc{Bits: 6}, Uniform{}, 1, 20000, 1)
	comp := Characterize(ProductTrunc{Bits: 6, Compensate: true}, Uniform{}, 1, 20000, 1)
	if math.Abs(comp.Fit.Mean) >= math.Abs(raw.Fit.Mean) {
		t.Fatalf("compensation did not reduce bias: |%g| >= |%g|", comp.Fit.Mean, raw.Fit.Mean)
	}
}

func TestOperandTruncZeroOperandsZeroProduct(t *testing.T) {
	m := OperandTrunc{ABits: 3, BBits: 3}
	if m.Mul(0, 200) != 0 || m.Mul(200, 0) != 0 {
		t.Fatal("zero operand must give zero product without compensation")
	}
}

func TestBrokenCarrySubsetOfExact(t *testing.T) {
	// Without compensation the broken-array product never exceeds the
	// exact product (only partial products are dropped).
	m := BrokenCarry{Depth: 8}
	for a := 0; a < 256; a += 3 {
		for b := 0; b < 256; b += 5 {
			if m.Mul(uint8(a), uint8(b)) > uint16(a)*uint16(b) {
				t.Fatalf("broken-array overestimates at %d×%d", a, b)
			}
		}
	}
}

func TestBrokenCarryDepthZeroIsExact(t *testing.T) {
	m := BrokenCarry{Depth: 0}
	f := func(a, b uint8) bool { return m.Mul(a, b) == uint16(a)*uint16(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDRUMExactForSmallOperands(t *testing.T) {
	// Operands that fit in K bits are untouched.
	m := DRUM{K: 6}
	for a := 0; a < 64; a += 5 {
		for b := 0; b < 64; b += 7 {
			if m.Mul(uint8(a), uint8(b)) != uint16(a)*uint16(b) {
				t.Fatalf("DRUM altered small product %d×%d", a, b)
			}
		}
	}
}

func TestDRUMRelativeErrorBound(t *testing.T) {
	// DRUM's relative error is bounded by ~2^-K per operand.
	m := DRUM{K: 4}
	maxRel := 0.0
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			p := float64(a * b)
			rel := math.Abs(ErrorOf(m, uint8(a), uint8(b))) / p
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	if maxRel > 0.14 { // 2·2^-4 + cross term, with margin
		t.Fatalf("DRUM(4) max relative error %g too large", maxRel)
	}
}

func TestMitchellUnderestimates(t *testing.T) {
	m := Mitchell{}
	for a := 1; a < 256; a += 3 {
		for b := 1; b < 256; b += 5 {
			e := ErrorOf(m, uint8(a), uint8(b))
			p := float64(a * b)
			if e > 0.01*p+2 {
				t.Fatalf("Mitchell overestimates at %d×%d: err=%g", a, b, e)
			}
			if -e > 0.12*p+2 {
				t.Fatalf("Mitchell error beyond -11%% bound at %d×%d: err=%g p=%g", a, b, e, p)
			}
		}
	}
}

func TestMitchellExactOnPowersOfTwo(t *testing.T) {
	m := Mitchell{}
	for _, a := range []uint8{1, 2, 4, 8, 16, 32, 64, 128} {
		for _, b := range []uint8{1, 2, 4, 8, 16, 32, 64, 128} {
			if m.Mul(a, b) != uint16(a)*uint16(b) {
				t.Fatalf("Mitchell wrong on powers of two %d×%d: %d", a, b, m.Mul(a, b))
			}
		}
	}
}

func TestZeroInputAlwaysZeroOrSmall(t *testing.T) {
	// 0×0 may be nonzero for compensated models (the paper's cheapest
	// components have NA up to +0.05, i.e. mean error ≈ +3000), but must
	// stay far below full scale; exact components map to 0.
	for _, c := range Library() {
		got := c.Model.Mul(0, 0)
		if got > 8192 {
			t.Fatalf("%s: 0×0 = %d", c.Name, got)
		}
	}
	if (Exact{}).Mul(0, 0) != 0 {
		t.Fatal("exact 0×0 != 0")
	}
}

func TestMREDOrderingTracksAggressiveness(t *testing.T) {
	// Within one structural family, more dropped bits means more error.
	if MeanRelativeErrorDistance(ProductTrunc{Bits: 3}) >= MeanRelativeErrorDistance(ProductTrunc{Bits: 6}) {
		t.Fatal("ptrunc MRED not monotone in bits")
	}
	if MeanRelativeErrorDistance(BrokenCarry{Depth: 4}) >= MeanRelativeErrorDistance(BrokenCarry{Depth: 8}) {
		t.Fatal("broken-array MRED not monotone in depth")
	}
	if MeanRelativeErrorDistance(DRUM{K: 6}) >= MeanRelativeErrorDistance(DRUM{K: 3}) {
		t.Fatal("DRUM MRED not monotone in kept bits")
	}
}

func TestLUTMatchesModel(t *testing.T) {
	for _, m := range []Multiplier{Exact{}, BrokenCarry{Depth: 7, Compensate: true}, Mitchell{}} {
		lut := CompileLUT(m)
		f := func(a, b uint8) bool { return lut.Mul(a, b) == m.Mul(a, b) }
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%T: %v", m, err)
		}
	}
}

func TestExactAdder(t *testing.T) {
	f := func(a, b uint16) bool {
		return ExactAdder{}.Add(uint32(a), uint32(b)) == uint32(a)+uint32(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLowerORAdderHighBitsExact(t *testing.T) {
	m := LowerORAdder{Bits: 5}
	f := func(a, b uint16) bool {
		got := m.Add(uint32(a), uint32(b))
		exact := uint32(a) + uint32(b)
		// LOA's error is confined to the low Bits plus the lost carry;
		// bounded by 2^(Bits+1).
		diff := int64(got) - int64(exact)
		if diff < 0 {
			diff = -diff
		}
		return diff < 1<<6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLowerORAdderZeroBitsExact(t *testing.T) {
	m := LowerORAdder{Bits: 0}
	if m.Add(123, 456) != 579 {
		t.Fatal("LOA with 0 bits must be exact")
	}
}

func TestAdderLibraryLookup(t *testing.T) {
	if _, ok := AdderByName("add8u_5LT"); !ok {
		t.Fatal("missing add8u_5LT")
	}
	if _, ok := AdderByName("nope"); ok {
		t.Fatal("lookup of unknown adder succeeded")
	}
	acc, _ := AdderByName("add8u_ACC")
	if acc.EnergyScale != 1 {
		t.Fatalf("accurate adder energy scale = %g", acc.EnergyScale)
	}
}

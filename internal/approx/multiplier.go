// Package approx provides behavioral models of approximate arithmetic
// components (8-bit unsigned multipliers and adders), their power/area
// metadata, and the error-characterization machinery of Sec. III of the
// ReD-CaNe paper.
//
// The paper draws its components from the EvoApprox8B library of evolved
// netlists. Those netlists are not redistributable here, so this package
// implements the classic approximate-multiplier structures from the
// literature (operand/product truncation, broken carry arrays, DRUM-style
// dynamic truncation, Mitchell's logarithmic multiplication) and registers
// one instance per paper component name, tuned so the measured noise
// magnitude (NM) lands in the band the paper reports for that component.
// The noise-injection methodology only ever consumes a component's error
// distribution, so this substitution preserves the analysis (DESIGN.md §2).
package approx

import "math"

// Multiplier is a behavioral 8×8→16-bit unsigned multiplier.
// Implementations must be pure functions of their inputs.
type Multiplier interface {
	// Mul returns the (possibly approximate) product of a and b.
	Mul(a, b uint8) uint16
}

// Exact is the accurate 8-bit multiplier (paper component 1JFF).
type Exact struct{}

// Mul returns a*b exactly.
func (Exact) Mul(a, b uint8) uint16 { return uint16(a) * uint16(b) }

// ProductTrunc computes the exact product and zeroes its low Bits bits,
// modeling a multiplier whose low partial-product columns are left
// unimplemented. If Compensate is set, half of the dropped range is added
// back so the error is approximately zero-mean (a standard fixed
// compensation circuit).
type ProductTrunc struct {
	Bits       uint
	Compensate bool
}

// Mul returns the truncated (and optionally compensated) product.
func (m ProductTrunc) Mul(a, b uint8) uint16 {
	p := uint32(a) * uint32(b)
	if m.Bits == 0 {
		return uint16(p)
	}
	p &^= (1 << m.Bits) - 1
	if m.Compensate && p != 0 {
		// Half of the dropped range, gated on a nonzero surviving
		// product: a constant added to dead-zero outputs would bias
		// sparse (ReLU) operand streams far more than any real circuit.
		p += 1 << (m.Bits - 1)
		if p > 0xFFFF {
			p = 0xFFFF
		}
	}
	return uint16(p)
}

// OperandTrunc zeroes the low ABits of operand a and BBits of operand b
// before multiplying, modeling a reduced-width multiplier array. With
// Compensate set, the expected dropped contribution (for uniform operands)
// is added back to center the error.
type OperandTrunc struct {
	ABits, BBits uint
	Compensate   bool
}

// Mul returns the product of the truncated operands.
func (m OperandTrunc) Mul(a, b uint8) uint16 {
	ta := uint32(a) &^ ((1 << m.ABits) - 1)
	tb := uint32(b) &^ ((1 << m.BBits) - 1)
	p := ta * tb
	if m.Compensate && p != 0 {
		// Expected dropped contribution for uniform operands,
		// E[aerr]·E[b] + E[berr]·E[a] − E[aerr]·E[berr], gated on a
		// nonzero surviving product (see ProductTrunc.Mul).
		ea := (float64((uint32(1) << m.ABits)) - 1) / 2
		eb := (float64((uint32(1) << m.BBits)) - 1) / 2
		comp := uint32(ea*127.5 + eb*127.5 - ea*eb)
		p += comp
		if p > 0xFFFF {
			p = 0xFFFF
		}
	}
	return uint16(p)
}

// BrokenCarry drops every partial-product cell whose significance i+j is
// below Depth, the classic broken-array multiplier. With Compensate set, a
// constant equal to the expected dropped mass (uniform operands) is added.
type BrokenCarry struct {
	Depth      uint
	Compensate bool
}

// Mul sums the surviving partial products.
func (m BrokenCarry) Mul(a, b uint8) uint16 {
	var p uint32
	for i := uint(0); i < 8; i++ {
		if a&(1<<i) == 0 {
			continue
		}
		for j := uint(0); j < 8; j++ {
			if b&(1<<j) == 0 {
				continue
			}
			if i+j < m.Depth {
				continue
			}
			p += 1 << (i + j)
		}
	}
	if m.Compensate && p != 0 {
		// Each dropped cell contributes 2^(i+j) with probability 1/4;
		// gated on a nonzero surviving product (see ProductTrunc.Mul).
		var comp float64
		for i := uint(0); i < 8; i++ {
			for j := uint(0); j < 8; j++ {
				if i+j < m.Depth {
					comp += float64(uint32(1)<<(i+j)) / 4
				}
			}
		}
		p += uint32(comp)
		if p > 0xFFFF {
			p = 0xFFFF
		}
	}
	return uint16(p)
}

// DRUM approximates by keeping only the K most significant bits of each
// operand starting at its leading one (with round-to-nearest on the cut),
// multiplying the short operands, and shifting back. It is approximately
// unbiased with error relative to the product magnitude (Hashemi et al.,
// ICCAD 2015).
type DRUM struct {
	K uint
}

// Mul returns the dynamically truncated product.
func (m DRUM) Mul(a, b uint8) uint16 {
	ra, sa := drumReduce(uint32(a), m.K)
	rb, sb := drumReduce(uint32(b), m.K)
	p := (ra * rb) << (sa + sb)
	if p > 0xFFFF {
		p = 0xFFFF
	}
	return uint16(p)
}

// drumReduce keeps the k leading bits of v (from its MSB), rounding the
// remainder, and returns the reduced value and the shift it was scaled by.
func drumReduce(v uint32, k uint) (reduced uint32, shift uint) {
	if v == 0 {
		return 0, 0
	}
	msb := uint(31 - leadingZeros32(v))
	if msb < k {
		return v, 0
	}
	shift = msb - k + 1
	reduced = v >> shift
	// Round to nearest using the first dropped bit.
	if v&(1<<(shift-1)) != 0 {
		reduced++
	}
	return reduced, shift
}

func leadingZeros32(v uint32) int {
	n := 0
	for i := 31; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 32
}

// Mitchell is Mitchell's logarithmic multiplier: approximate log2 of each
// operand by its characteristic plus linear mantissa, add, and take the
// approximate antilog. Errors reach ≈ -11 % of the product, always
// underestimating, so this models the most aggressive (cheapest) components.
type Mitchell struct{}

// Mul returns the log-domain approximate product.
func (Mitchell) Mul(a, b uint8) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	la := mitchellLog(uint32(a))
	lb := mitchellLog(uint32(b))
	sum := la + lb
	p := mitchellExp(sum)
	if p > 0xFFFF {
		p = 0xFFFF
	}
	return uint16(p)
}

// mitchellLog returns an approximate log2(v) in 16.16 fixed point:
// characteristic plus the linear-interpolated mantissa.
func mitchellLog(v uint32) uint32 {
	msb := uint(31 - leadingZeros32(v))
	frac := (v - (1 << msb)) << (16 - msb) // mantissa scaled to 16 bits
	return uint32(msb)<<16 | frac
}

// mitchellExp inverts mitchellLog: 2^char · (1 + mantissa).
func mitchellExp(l uint32) uint32 {
	ch := l >> 16
	frac := l & 0xFFFF
	return (1<<ch + (frac << ch >> 16))
}

// ErrorOf returns the arithmetic error ΔP = P'(a,b) − P(a,b) of m against
// the exact product (paper Eq. 2).
func ErrorOf(m Multiplier, a, b uint8) float64 {
	return float64(m.Mul(a, b)) - float64(uint16(a)*uint16(b))
}

// MeanRelativeErrorDistance returns the mean of |ΔP| / max(1, P) over all
// 65536 input pairs — the standard MRED circuit-quality metric.
func MeanRelativeErrorDistance(m Multiplier) float64 {
	var sum float64
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			p := float64(a * b)
			d := math.Abs(float64(m.Mul(uint8(a), uint8(b))) - p)
			sum += d / math.Max(1, p)
		}
	}
	return sum / 65536
}

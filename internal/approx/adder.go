package approx

// Adder is a behavioral 16-bit unsigned adder, the accumulate stage of a
// MAC unit.
type Adder interface {
	// Add returns the (possibly approximate) sum of a and b.
	Add(a, b uint32) uint32
}

// ExactAdder is the accurate adder.
type ExactAdder struct{}

// Add returns a+b exactly.
func (ExactAdder) Add(a, b uint32) uint32 { return a + b }

// LowerORAdder approximates the low Bits bits of the sum by a bitwise OR
// (no carry chain) and adds the high parts exactly — the classic LOA
// structure. It models the paper's add8u_5LT-style approximate adder used
// in the Fig. 5 energy study.
type LowerORAdder struct {
	Bits uint
}

// Add returns the LOA sum.
func (m LowerORAdder) Add(a, b uint32) uint32 {
	if m.Bits == 0 {
		return a + b
	}
	mask := uint32(1)<<m.Bits - 1
	low := (a | b) & mask
	high := (a &^ mask) + (b &^ mask)
	return high | low
}

// AdderComponent carries the energy metadata of an adder design.
// The unit energies follow Table I (accurate add = 0.0202 pJ); the 5LT
// approximate adder's relative saving is chosen so the system-level Fig. 5
// numbers (XA ≈ −1.9 % of total energy, additions ≈ 3 % of total) are
// reproduced.
type AdderComponent struct {
	Name string
	// EnergyScale multiplies the accurate adder's per-op energy.
	EnergyScale float64
	Model       Adder
}

// AdderLibrary returns the available adder designs.
func AdderLibrary() []AdderComponent {
	return []AdderComponent{
		{Name: "add8u_ACC", EnergyScale: 1.0, Model: ExactAdder{}},
		{Name: "add8u_5LT", EnergyScale: 0.37, Model: LowerORAdder{Bits: 5}},
	}
}

// AdderByName looks up an adder design.
func AdderByName(name string) (AdderComponent, bool) {
	for _, a := range AdderLibrary() {
		if a.Name == name {
			return a, true
		}
	}
	return AdderComponent{}, false
}

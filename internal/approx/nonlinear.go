package approx

import (
	"fmt"
	"math"
	"strings"

	"redcane/internal/tensor"
)

// This file holds the behavioral models of hardware-approximated routing
// nonlinearities, following the ISLPED 2022 follow-up ("Enabling Capsule
// Networks at the Edge through Approximate Softmax and Squash
// Operations"): softmax with the exponential replaced by powers of two
// (a shift in hardware) or by a piecewise-linear exponential, and squash
// with the exact square root replaced by a one-segment linear
// approximation on the float exponent (no Newton iterations). Each
// function matches the tensor.Softmax / tensor.Squash signature so the
// caps.Nonlinearity seam can swap them in without touching the routing
// loop. The energy side of the trade lives in
// internal/energy/opcount.go (SoftmaxVariantOps / SquashVariantOps).

// NonlinearFn is the shared shape of the softmax and squash operators:
// a normalization along one axis, returning a new tensor.
type NonlinearFn func(t *tensor.Tensor, axis int) *tensor.Tensor

// Softmax variant names accepted by SoftmaxByName. "exact" selects the
// bit-exact tensor.Softmax path.
var SoftmaxNames = []string{"exact", "base2", "pwl"}

// Squash variant names accepted by SquashByName.
var SquashNames = []string{"exact", "sqnorm"}

// SoftmaxByName resolves a softmax variant. "exact" (and "") return nil:
// the caller keeps the bit-exact default path.
func SoftmaxByName(name string) (NonlinearFn, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "exact":
		return nil, nil
	case "base2":
		return Base2Softmax, nil
	case "pwl":
		return PiecewiseSoftmax, nil
	default:
		return nil, fmt.Errorf("approx: unknown softmax variant %q (valid: %s)",
			name, strings.Join(SoftmaxNames, ", "))
	}
}

// SquashByName resolves a squash variant. "exact" (and "") return nil:
// the caller keeps the bit-exact default path.
func SquashByName(name string) (NonlinearFn, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "exact":
		return nil, nil
	case "sqnorm":
		return SqNormSquash, nil
	default:
		return nil, fmt.Errorf("approx: unknown squash variant %q (valid: %s)",
			name, strings.Join(SquashNames, ", "))
	}
}

// Base2Softmax computes softmax with 2^x in place of e^x — a pure shift
// of the exponent field in fixed-point hardware. Behaviorally this is a
// temperature change (2^x = e^(x·ln2)), so the coupling coefficients are
// systematically softer than the exact softmax's.
func Base2Softmax(t *tensor.Tensor, axis int) *tensor.Tensor {
	return softmaxWith(t, axis, math.Exp2)
}

// PiecewiseSoftmax computes softmax with the piecewise-linear
// exponential e^x ≈ 2^⌊x·log₂e⌋ · (1 + frac(x·log₂e)): the hardware
// replaces the mantissa curve 2^f with the chord 1+f, leaving only a
// shift and an add per logit. The relative error of the chord is at most
// 2^f−(1+f) ≤ ~6% (at f ≈ 0.53), so the coefficients track the exact
// softmax closely but not bit-identically.
func PiecewiseSoftmax(t *tensor.Tensor, axis int) *tensor.Tensor {
	return softmaxWith(t, axis, func(x float64) float64 {
		tv := x * math.Log2E
		i := math.Floor(tv)
		return math.Ldexp(1+(tv-i), int(i))
	})
}

// softmaxWith is tensor.Softmax with the exponential swapped out; the
// max-subtraction stabilization and normalization are unchanged.
func softmaxWith(t *tensor.Tensor, axis int, exp func(float64) float64) *tensor.Tensor {
	outer, n, inner := tensor.AxisStrides(t.Shape, axis)
	out := tensor.New(t.Shape...)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			maxv := math.Inf(-1)
			for a := 0; a < n; a++ {
				v := t.Data[(o*n+a)*inner+i]
				if v > maxv {
					maxv = v
				}
			}
			sum := 0.0
			for a := 0; a < n; a++ {
				e := exp(t.Data[(o*n+a)*inner+i] - maxv)
				out.Data[(o*n+a)*inner+i] = e
				sum += e
			}
			for a := 0; a < n; a++ {
				out.Data[(o*n+a)*inner+i] /= sum
			}
		}
	}
	return out
}

// SqNormSquash is the Newton-free squash: the scale n²/(1+n²) needs only
// the squared norm, and the direction normalization 1/n uses LinearSqrt
// instead of an exact square root — no Newton–Raphson refinement, so the
// whole nonlinearity reduces to multiplies, adds and one divide per
// element in hardware.
func SqNormSquash(t *tensor.Tensor, axis int) *tensor.Tensor {
	const eps = 1e-12
	outer, n, inner := tensor.AxisStrides(t.Shape, axis)
	out := tensor.New(t.Shape...)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			norm2 := 0.0
			for a := 0; a < n; a++ {
				v := t.Data[(o*n+a)*inner+i]
				norm2 += v * v
			}
			norm := LinearSqrt(norm2 + eps)
			scale := norm2 / (1 + norm2) / norm
			for a := 0; a < n; a++ {
				idx := (o*n+a)*inner + i
				out.Data[idx] = t.Data[idx] * scale
			}
		}
	}
	return out
}

// LinearSqrt approximates √x with one linear segment per power-of-four
// interval: writing x = m·4^k with m ∈ [0.25, 1), it returns
// 2^k · (1/3 + 2m/3) — the chord of √m through its endpoints, exact at
// m ∈ {0.25, 1} with ≤ ~6% relative error in between. In hardware this
// is an exponent shift, one multiply and one add; here it serves as the
// bit-true behavioral model.
func LinearSqrt(x float64) float64 {
	if x <= 0 || math.IsInf(x, 1) || math.IsNaN(x) {
		return math.Sqrt(x)
	}
	m, e := math.Frexp(x) // x = m·2^e, m ∈ [0.5, 1)
	if e&1 != 0 {         // odd exponent: shift into m so e is even
		m *= 0.5
		e++
	}
	// Now x = m·4^(e/2) with m ∈ [0.25, 1).
	return math.Ldexp(1.0/3+2*m/3, e/2)
}

package approx

import (
	"fmt"
	"sort"
)

// Component bundles a behavioral multiplier model with the physical
// metadata of the corresponding EvoApprox8B component from Table IV of the
// paper (power and area synthesized at 45 nm, 8-bit operands).
type Component struct {
	// Name is the EvoApprox8B identifier, e.g. "mul8u_NGR".
	Name string
	// PowerUW is the synthesized power in µW (paper Table IV).
	PowerUW float64
	// AreaUM2 is the synthesized area in µm² (paper Table IV).
	AreaUM2 float64
	// Model is the behavioral stand-in for the netlist.
	Model Multiplier
	// PaperNM is the noise magnitude the paper measured for this
	// component on the modeled (uniform) input distribution; kept for
	// side-by-side reporting, never used in computation.
	PaperNM float64
	// PaperNA is the paper's modeled noise average, for reporting.
	PaperNA float64
}

// PowerReduction returns the power saving versus the accurate multiplier,
// as a fraction in [0, 1).
func (c Component) PowerReduction() float64 {
	return 1 - c.PowerUW/accuratePowerUW
}

// AreaReduction returns the area saving versus the accurate multiplier.
func (c Component) AreaReduction() float64 {
	return 1 - c.AreaUM2/accurateAreaUM2
}

const (
	accuratePowerUW = 391.0
	accurateAreaUM2 = 710.0
)

// components is the library of Table IV, ordered by decreasing power
// (i.e. increasing approximation aggressiveness).
var components = []Component{
	{Name: "mul8u_1JFF", PowerUW: 391, AreaUM2: 710, Model: Exact{}, PaperNM: 0.0000, PaperNA: 0.0000},
	{Name: "mul8u_14VP", PowerUW: 364, AreaUM2: 654, Model: ProductTrunc{Bits: 4, Compensate: true}, PaperNM: 0.0001, PaperNA: 0.0000},
	{Name: "mul8u_GS2", PowerUW: 356, AreaUM2: 633, Model: OperandTrunc{ABits: 1, BBits: 1, Compensate: true}, PaperNM: 0.0017, PaperNA: 0.0004},
	{Name: "mul8u_CK5", PowerUW: 345, AreaUM2: 604, Model: ProductTrunc{Bits: 5, Compensate: true}, PaperNM: 0.0002, PaperNA: 0.0000},
	{Name: "mul8u_7C1", PowerUW: 329, AreaUM2: 607, Model: OperandTrunc{ABits: 2, Compensate: true}, PaperNM: 0.0033, PaperNA: 0.0011},
	{Name: "mul8u_96D", PowerUW: 309, AreaUM2: 605, Model: OperandTrunc{ABits: 3, BBits: 2, Compensate: true}, PaperNM: 0.0077, PaperNA: 0.0035},
	{Name: "mul8u_2HH", PowerUW: 302, AreaUM2: 542, Model: ProductTrunc{Bits: 7, Compensate: true}, PaperNM: 0.0007, PaperNA: -0.0001},
	{Name: "mul8u_NGR", PowerUW: 276, AreaUM2: 512, Model: BrokenCarry{Depth: 6, Compensate: true}, PaperNM: 0.0008, PaperNA: 0.0001},
	{Name: "mul8u_19DB", PowerUW: 206, AreaUM2: 396, Model: BrokenCarry{Depth: 7, Compensate: true}, PaperNM: 0.0019, PaperNA: 0.0010},
	{Name: "mul8u_DM1", PowerUW: 195, AreaUM2: 402, Model: DRUM{K: 6}, PaperNM: 0.0025, PaperNA: 0.0003},
	{Name: "mul8u_12N4", PowerUW: 142, AreaUM2: 390, Model: OperandTrunc{ABits: 3, BBits: 3, Compensate: true}, PaperNM: 0.0054, PaperNA: 0.0018},
	{Name: "mul8u_1AGV", PowerUW: 95, AreaUM2: 228, Model: BrokenCarry{Depth: 10, Compensate: true}, PaperNM: 0.0080, PaperNA: 0.0027},
	{Name: "mul8u_YX7", PowerUW: 61, AreaUM2: 221, Model: OperandTrunc{ABits: 6, BBits: 5, Compensate: true}, PaperNM: 0.0741, PaperNA: 0.0484},
	{Name: "mul8u_JV3", PowerUW: 34, AreaUM2: 111, Model: DRUM{K: 3}, PaperNM: 0.0267, PaperNA: 0.0021},
	{Name: "mul8u_QKX", PowerUW: 29, AreaUM2: 112, Model: OperandTrunc{ABits: 6, BBits: 6, Compensate: true}, PaperNM: 0.0736, PaperNA: 0.0509},
}

// Library returns the full component library (a copy), ordered from least
// to most aggressive approximation (decreasing power).
func Library() []Component {
	out := make([]Component, len(components))
	copy(out, components)
	return out
}

// ByName looks up a component by its EvoApprox8B identifier.
func ByName(name string) (Component, error) {
	for _, c := range components {
		if c.Name == name {
			return c, nil
		}
	}
	return Component{}, fmt.Errorf("approx: unknown component %q", name)
}

// Accurate returns the exact reference multiplier component (mul8u_1JFF).
func Accurate() Component { return components[0] }

// SortedByPower returns the library sorted by ascending power, i.e. most
// aggressive first — the order in which the ReD-CaNe selection step scans
// for the cheapest component meeting an NM budget.
func SortedByPower() []Component {
	out := Library()
	sort.Slice(out, func(i, j int) bool { return out[i].PowerUW < out[j].PowerUW })
	return out
}

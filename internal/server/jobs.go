package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"strings"

	"redcane/internal/core"
	"redcane/internal/experiments"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

// The job kinds the service runs. Each maps onto one of the job-shaped
// experiment entry points, so an HTTP job produces byte-identical
// artifacts to the corresponding CLI invocation with the same seed and
// options fingerprint.
const (
	KindGroupSweep  = "group-sweep" // methodology Steps 1–3 (Fig. 9/12)
	KindLayerSweep  = "layer-sweep" // Steps 1–5 (Fig. 10)
	KindMethodology = "methodology" // the full 6-step design run
	KindValidate    = "validate"    // bit-accurate error-model validation
	KindFaultSweep  = "fault-sweep" // group-wise fault campaign (bit flips, stuck-at)
)

// JobKinds lists the accepted job kinds.
var JobKinds = []string{KindGroupSweep, KindLayerSweep, KindMethodology, KindValidate, KindFaultSweep}

// JobSpec is the POST /v1/jobs request body: what to analyze and under
// which results-affecting knobs. Scheduling knobs (workers, queue) are
// server-wide and deliberately absent, mirroring how Options.Fingerprint
// excludes them.
type JobSpec struct {
	// Kind selects the analysis: group-sweep, layer-sweep, methodology,
	// or validate.
	Kind string `json:"kind"`
	// Benchmark is the (architecture, dataset) key, case-insensitive
	// (default capsnet-mnist-like).
	Benchmark string `json:"benchmark,omitempty"`
	// Seed overrides the server's master seed for this job.
	Seed *uint64 `json:"seed,omitempty"`
	// Backend and Bits select the execution backend of validate jobs
	// (default quant-approx at 8 bits); rejected for other kinds.
	Backend string `json:"backend,omitempty"`
	Bits    uint   `json:"bits,omitempty"`
	// NMSweep overrides the noise-magnitude grid of sweep jobs; NA the
	// noise average. Empty keeps the paper defaults, which is what makes
	// an overrides-free job byte-identical to the CLI experiment. For
	// fault-sweep jobs the grid is the severity grid (flip probability or
	// stuck fraction).
	NMSweep []float64 `json:"nm_sweep,omitempty"`
	NA      float64   `json:"na,omitempty"`
	// Fault and FaultBits select the injector of fault-sweep jobs
	// (default bit-flip at 8 bits; see noise.Kinds); rejected for other
	// kinds.
	Fault     string `json:"fault,omitempty"`
	FaultBits uint   `json:"fault_bits,omitempty"`
	// Softmax and Squash select the nonlinearity variants the job
	// evaluates under ("" or "exact" keeps the bit-exact operators; see
	// approx.SoftmaxNames / approx.SquashNames). Valid for every kind.
	Softmax string `json:"softmax,omitempty"`
	Squash  string `json:"squash,omitempty"`
	// Probes enables the numeric-health probes: per-layer activation
	// statistics collected at every sweep point, served as the "probes"
	// result format. Probing is inert — the text/CSV/JSON artifacts stay
	// byte-identical — but roughly doubles evaluation cost, so it is
	// off by default. It is a diagnostic knob, not a results-affecting
	// one, and deliberately absent from the engine fingerprint.
	Probes bool `json:"probes,omitempty"`
	// Distributed runs the job's sweeps over the worker fleet: windows
	// are leased to `redcane worker` processes instead of the local pool.
	// Artifacts are byte-identical either way, so this too is a
	// scheduling knob, absent from the engine fingerprint. Rejected for
	// validate jobs (no sweeps to distribute) and with probes (probe
	// stats never travel the wire).
	Distributed bool `json:"distributed,omitempty"`
	// Priority orders the job in the queue: "low", "normal" (or ""), or
	// "high". Higher priorities dequeue first — no preemption, so a quick
	// high-priority validate runs ahead of queued methodology runs but
	// never interrupts one. Like distributed, it is a scheduling knob:
	// absent from the engine fingerprint, no effect on artifacts.
	Priority string `json:"priority,omitempty"`
}

// The priority levels a spec may name, and their queue ranks.
var priorityRanks = map[string]int{"low": -1, "": 0, "high": 1}

// priorityRank resolves a normalized priority to its queue rank.
func priorityRank(p string) int { return priorityRanks[p] }

// normalize validates the spec in place, canonicalizing the kind and
// benchmark key and filling defaults. Errors are user errors (HTTP 400).
func (spec *JobSpec) normalize() error {
	spec.Kind = strings.ToLower(strings.TrimSpace(spec.Kind))
	known := false
	for _, k := range JobKinds {
		if spec.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown job kind %q (valid: %s)", spec.Kind, strings.Join(JobKinds, ", "))
	}
	if spec.Benchmark == "" {
		spec.Benchmark = experiments.DefaultBenchmark.Key()
	}
	b, err := experiments.FindBenchmark(spec.Benchmark)
	if err != nil {
		return err
	}
	spec.Benchmark = b.Key()
	for _, nm := range spec.NMSweep {
		if math.IsNaN(nm) || math.IsInf(nm, 0) {
			return fmt.Errorf("nm_sweep contains non-finite value %v", nm)
		}
		if nm < 0 {
			// The CLI's Options.WithDefaults silently drops negative grid
			// entries; a job submission naming one is a mistake worth a 400,
			// not a silently smaller grid.
			return fmt.Errorf("nm_sweep contains negative value %v (noise magnitudes are >= 0)", nm)
		}
	}
	if math.IsNaN(spec.NA) || math.IsInf(spec.NA, 0) {
		return fmt.Errorf("na is not finite")
	}
	if spec.NA < 0 {
		return fmt.Errorf("na = %v is negative (noise averages are >= 0)", spec.NA)
	}
	if spec.Distributed {
		if spec.Kind == KindValidate {
			return fmt.Errorf("distributed applies only to sweep and methodology jobs")
		}
		if spec.Probes {
			return fmt.Errorf("probes cannot be collected over a distributed fleet")
		}
	}
	if spec.Kind == KindValidate {
		if spec.Backend == "" {
			spec.Backend = "quant-approx"
		}
		valid := false
		for _, be := range experiments.ValidBackends {
			if spec.Backend == be {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("unknown backend %q (valid: %s)",
				spec.Backend, strings.Join(experiments.ValidBackends, ", "))
		}
		if spec.Bits == 0 {
			spec.Bits = 8
		}
		if spec.Bits > 16 {
			return fmt.Errorf("bits = %d out of range (1..16)", spec.Bits)
		}
	} else if spec.Backend != "" || spec.Bits != 0 {
		return fmt.Errorf("backend/bits apply only to validate jobs")
	}
	if spec.Kind == KindFaultSweep {
		if spec.Fault == "" {
			spec.Fault = noise.KindBitFlip
		}
		ns, err := (noise.Spec{Kind: spec.Fault, Bits: spec.FaultBits}).Normalize()
		if err != nil {
			return err
		}
		spec.Fault, spec.FaultBits = ns.Kind, ns.Bits
	} else if spec.Fault != "" || spec.FaultBits != 0 {
		return fmt.Errorf("fault/fault_bits apply only to fault-sweep jobs")
	}
	if _, err := core.ResolveNonlinearity(spec.Softmax, spec.Squash); err != nil {
		return err
	}
	if spec.Softmax == "exact" {
		spec.Softmax = ""
	}
	if spec.Squash == "exact" {
		spec.Squash = ""
	}
	spec.Priority = strings.ToLower(strings.TrimSpace(spec.Priority))
	if spec.Priority == "normal" {
		spec.Priority = "" // canonical form, like softmax "exact"
	}
	if _, ok := priorityRanks[spec.Priority]; !ok {
		return fmt.Errorf("unknown priority %q (valid: low, normal, high)", spec.Priority)
	}
	return nil
}

// Artifacts is a finished job's outputs — the same text, CSV and JSON
// forms the CLI writes for the corresponding command.
type Artifacts struct {
	// Text is the rendered result (what the CLI prints to stdout).
	Text string
	// CSV is the machine-readable form, when the result has one.
	CSV []byte
	// JSON is the design-report JSON, when applicable (methodology jobs).
	JSON []byte
	// ProbesCSV / ProbesJSON are the numeric-health probe artifacts,
	// present when the job asked for probes.
	ProbesCSV  []byte
	ProbesJSON []byte
}

// artifact file names in the job store, by ?format= key.
var artifactFiles = map[string]struct{ name, contentType string }{
	"text":       {"result.txt", "text/plain; charset=utf-8"},
	"csv":        {"result.csv", "text/csv; charset=utf-8"},
	"json":       {"result.json", "application/json"},
	"probes":     {"probes.json", "application/json"},
	"probes-csv": {"probes.csv", "text/csv; charset=utf-8"},
}

// files maps the present artifacts to their store names for persistence.
func (a Artifacts) files() map[string][]byte {
	out := map[string][]byte{"result.txt": []byte(a.Text)}
	for name, data := range map[string][]byte{
		"result.csv":  a.CSV,
		"result.json": a.JSON,
		"probes.csv":  a.ProbesCSV,
		"probes.json": a.ProbesJSON,
	} {
		if data != nil {
			out[name] = data
		}
	}
	return out
}

// renderer / csvWriter mirror the result interfaces the CLI consumes.
type renderer interface{ Render() string }
type csvWriter interface{ WriteCSV(io.Writer) error }

// artifactsFor assembles the artifacts of one rendered result.
func artifactsFor(res renderer) (Artifacts, error) {
	out := Artifacts{Text: res.Render()}
	if cw, ok := res.(csvWriter); ok {
		var buf bytes.Buffer
		if err := cw.WriteCSV(&buf); err != nil {
			return Artifacts{}, err
		}
		out.CSV = buf.Bytes()
	}
	return out, nil
}

// runSpec executes one job against the real experiment runner. Each job
// owns a fresh Runner so nothing is shared across concurrent jobs except
// the weight-cache directory (guarded by the server's train gate) and
// the process metrics registry; analysis checkpoints are keyed by the
// job's private directory, so a restarted server resumes this job — and
// only this job — from its last completed sweep window.
func (s *Server) runSpec(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
	b, err := experiments.FindBenchmark(spec.Benchmark)
	if err != nil {
		return Artifacts{}, err
	}
	seed := s.cfg.Seed
	if spec.Seed != nil {
		seed = *spec.Seed
	}
	var probes *core.ProbeSet
	if spec.Probes {
		probes = core.NewProbeSet()
	}
	var fleet core.Fleet
	if spec.Distributed {
		fleet = s.fleet.ForJob(filepath.Base(jobDir), spec.Benchmark, s.cfg.Quick, seed)
	}
	r := experiments.NewRunner(experiments.Config{
		Dir:           s.cfg.StateDir,
		Quick:         s.cfg.Quick,
		Seed:          seed,
		Workers:       s.jobWorkers(),
		Obs:           o,
		Ctx:           ctx,
		Checkpoint:    true,
		CheckpointDir: jobDir,
		TrainMu:       &s.trainMu,
		Probes:        probes,
		Fleet:         fleet,
		Softmax:       spec.Softmax,
		Squash:        spec.Squash,
	})
	ov := experiments.Overrides{NMSweep: spec.NMSweep, NA: spec.NA}
	var art Artifacts
	switch spec.Kind {
	case KindGroupSweep:
		res, err := r.GroupSweep(b, ov)
		if err != nil {
			return Artifacts{}, err
		}
		if art, err = artifactsFor(res); err != nil {
			return Artifacts{}, err
		}
	case KindLayerSweep:
		res, err := r.LayerSweep(b, ov)
		if err != nil {
			return Artifacts{}, err
		}
		if art, err = artifactsFor(res); err != nil {
			return Artifacts{}, err
		}
	case KindMethodology:
		d, err := r.Design(b)
		if err != nil {
			return Artifacts{}, err
		}
		var buf bytes.Buffer
		if err := d.Report.WriteJSON(&buf); err != nil {
			return Artifacts{}, err
		}
		art = Artifacts{Text: d.Render(), JSON: buf.Bytes()}
	case KindValidate:
		res, err := r.Validate(b, spec.Backend, spec.Bits)
		if err != nil {
			return Artifacts{}, err
		}
		if art, err = artifactsFor(res); err != nil {
			return Artifacts{}, err
		}
	case KindFaultSweep:
		res, err := r.FaultSweep(b, noise.Spec{Kind: spec.Fault, Bits: spec.FaultBits}, ov)
		if err != nil {
			return Artifacts{}, err
		}
		if art, err = artifactsFor(res); err != nil {
			return Artifacts{}, err
		}
	default:
		return Artifacts{}, fmt.Errorf("unknown job kind %q", spec.Kind)
	}
	if probes != nil {
		var cbuf, jbuf bytes.Buffer
		if err := probes.WriteCSV(&cbuf); err != nil {
			return Artifacts{}, err
		}
		if err := probes.WriteJSON(&jbuf); err != nil {
			return Artifacts{}, err
		}
		art.ProbesCSV = cbuf.Bytes()
		art.ProbesJSON = jbuf.Bytes()
	}
	return art, nil
}

package server

import (
	"encoding/json"
	"fmt"
	"time"

	"redcane/internal/obs"
)

// wireEvent is the NDJSON form of one obs.Event on the job event stream.
// Field values are rendered to strings (rather than marshalled as-is)
// because events attach arbitrary values — errors, durations — whose raw
// JSON forms are lossy or unmarshalable; %v is what the text sink prints
// and is always encodable.
type wireEvent struct {
	Time   string            `json:"time"`
	Level  string            `json:"level"`
	Msg    string            `json:"msg"`
	Fields map[string]string `json:"fields,omitempty"`
}

// encodeEvent renders one event as a single JSON line (no trailing
// newline; the stream writer appends it).
func encodeEvent(e obs.Event) []byte {
	w := wireEvent{
		Time:  e.Time.Format(time.RFC3339Nano),
		Level: e.Level.String(),
		Msg:   e.Msg,
	}
	if len(e.Fields) > 0 {
		w.Fields = make(map[string]string, len(e.Fields))
		for _, f := range e.Fields {
			w.Fields[f.Key] = fmt.Sprintf("%v", f.Value)
		}
	}
	data, err := json.Marshal(w)
	if err != nil {
		// Unreachable: every field is a string by construction.
		data, _ = json.Marshal(wireEvent{Level: "error", Msg: "event encode failed: " + err.Error()})
	}
	return data
}

// progressSink watches a job's event stream for the sweep engine's
// progress fields and mirrors the latest values onto the job's status,
// so GET /v1/jobs/{id} reports progress and ETA without parsing events.
type progressSink struct {
	s *Server
	j *job
}

// Write implements obs.Sink.
func (p progressSink) Write(e obs.Event) {
	var progress, eta string
	for _, f := range e.Fields {
		switch f.Key {
		case "progress":
			progress = fmt.Sprintf("%v", f.Value)
		case "eta":
			eta = fmt.Sprintf("%v", f.Value)
		}
	}
	if progress == "" && eta == "" {
		return
	}
	p.s.mu.Lock()
	if progress != "" {
		p.j.progress = progress
	}
	if eta != "" {
		p.j.eta = eta
	}
	p.s.mu.Unlock()
}

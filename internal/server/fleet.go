package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"redcane/internal/core"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

// This file is the coordinator side of distributed sweeps: a lease-based
// work-distribution protocol layered on the job service. A distributed
// job's sweeps register their batch windows here instead of running on
// the local worker pool; `redcane worker` processes poll for leases,
// evaluate each window with the same counter-seeded engine
// (core.Analyzer.EvalWindow) and report integer correct-counts back. The
// protocol is crash-tolerant by leasing: a window whose lease outlives
// its TTL without a completion is re-issued to the next polling worker,
// so a dead worker delays — never loses — its windows. Completions are
// idempotent: every evaluation of a window is a pure function of
// (seed, seedBase, point, trial, batch), so any completion of a pending
// window carries the same counts and duplicates are simply dropped.
//
//	POST /v1/fleet/lease    {"worker": name}        → 200 Lease | 204 no work
//	POST /v1/fleet/complete completeRequest         → 200 {"status": ok|duplicate}
//	POST /v1/fleet/renew    {"lease_id": id, ...}   → 200 | 410 lease gone
//	POST /v1/fleet/release  {"lease_id": id, ...}   → 200 {"status": released|unknown}
//	GET  /v1/fleet          coordinator fleet state → 200 FleetStatus

// SweepOptions is the wire form of the results-affecting engine options a
// worker needs to reproduce a window bit-identically. Scheduling knobs
// (Workers, PrefixCacheMB) are deliberately absent — each worker chooses
// its own, exactly as Options.Fingerprint excludes them.
type SweepOptions struct {
	NMSweep   []float64 `json:"nm_sweep"`
	NA        float64   `json:"na"`
	Trials    int       `json:"trials"`
	Batch     int       `json:"batch"`
	Threshold float64   `json:"threshold"`
	Seed      uint64    `json:"seed"`
	MaxEval   int       `json:"max_eval"`
	// NoiseKind / NoiseBits carry the injector spec of fault campaigns;
	// Softmax / Squash the nonlinearity variants. All four are empty on
	// default jobs, so pre-existing coordinators and workers interoperate.
	NoiseKind string `json:"noise_kind,omitempty"`
	NoiseBits uint   `json:"noise_bits,omitempty"`
	Softmax   string `json:"softmax,omitempty"`
	Squash    string `json:"squash,omitempty"`
}

func optionsWire(o core.Options) SweepOptions {
	return SweepOptions{
		NMSweep: o.NMSweep, NA: o.NA, Trials: o.Trials, Batch: o.Batch,
		Threshold: o.Threshold, Seed: o.Seed, MaxEval: o.MaxEval,
		NoiseKind: o.Noise.Kind, NoiseBits: o.Noise.Bits,
		Softmax: o.Softmax, Squash: o.Squash,
	}
}

// CoreOptions resolves the wire options back into engine options; the
// worker supplies its own scheduling knobs.
func (w SweepOptions) CoreOptions(workers int) core.Options {
	return core.Options{
		NMSweep: w.NMSweep, NA: w.NA, Trials: w.Trials, Batch: w.Batch,
		Threshold: w.Threshold, Seed: w.Seed, MaxEval: w.MaxEval,
		Noise:   noise.Spec{Kind: w.NoiseKind, Bits: w.NoiseBits},
		Softmax: w.Softmax, Squash: w.Squash,
		Workers: workers,
	}.WithDefaults()
}

// WireSweep describes one registered sweep to the fleet: everything a
// worker needs to rebuild the network, dataset and options, plus the
// coordinator's view of the work grid (Evals, NB) as a drift guard — a
// worker whose own grid disagrees must refuse the sweep rather than fold
// wrong counts.
type WireSweep struct {
	// ID is the sweep's fleet-wide identity: "<job>/<checkpoint key>".
	ID    string `json:"id"`
	JobID string `json:"job_id"`
	// SeedBase namespaces the sweep's RNG streams (noise.StreamSeed).
	SeedBase uint64          `json:"seed_base"`
	Scope    core.SweepScope `json:"scope"`
	// Benchmark / Quick / TrainSeed identify the trained network and
	// evaluation split: workers train (or load from their weight cache)
	// the same benchmark at the same seed, which is deterministic, so
	// every fleet member evaluates the identical model.
	Benchmark string       `json:"benchmark"`
	Quick     bool         `json:"quick"`
	TrainSeed uint64       `json:"train_seed"`
	Options   SweepOptions `json:"options"`
	Evals     int          `json:"evals"`
	NB        int          `json:"nb"`
	// Examples is the evaluation-set size, which bounds how many examples
	// any window can hold (the last batch is usually short). The
	// coordinator uses it to reject completions whose counts could not
	// have come from an honest evaluation. Zero (a pre-existing
	// registration) falls back to the whole-batch bound.
	Examples int `json:"examples,omitempty"`
}

// Lease is one issued batch window [B0, B1): the worker evaluates it and
// reports its counts before the TTL runs out (renewing along the way for
// long windows).
type Lease struct {
	LeaseID string    `json:"lease_id"`
	Sweep   WireSweep `json:"sweep"`
	B0      int       `json:"b0"`
	B1      int       `json:"b1"`
	TTLMs   int64     `json:"ttl_ms"`
}

// leaseRequest / renewRequest / completeRequest are the POST bodies.
type leaseRequest struct {
	Worker string `json:"worker"`
}

type renewRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker,omitempty"`
}

// releaseRequest returns a lease before its TTL: a worker that cannot
// evaluate its window (unresolvable sweep, eval failure) hands it back
// so another worker picks it up immediately instead of after expiry.
type releaseRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker,omitempty"`
}

type completeRequest struct {
	LeaseID string `json:"lease_id,omitempty"`
	Worker  string `json:"worker,omitempty"`
	SweepID string `json:"sweep_id"`
	B0      int    `json:"b0"`
	B1      int    `json:"b1"`
	Correct []int  `json:"correct"`
}

// FleetStatus is the GET /v1/fleet body.
type FleetStatus struct {
	Sweeps         int              `json:"sweeps"`
	WindowsPending int              `json:"windows_pending"` // not yet done, not currently leased
	WindowsLeased  int              `json:"windows_leased"`
	LeaseTTLMs     int64            `json:"lease_ttl_ms"`
	Workers        map[string]int64 `json:"workers,omitempty"` // worker → ms since last seen
}

// fleetWindow is one lease unit of a registered sweep.
type fleetWindow struct {
	b0, b1   int
	done     bool
	leaseID  string // "" when unleased
	worker   string
	issuedAt time.Time
	expires  time.Time
}

// fleetSweep is one registered sweep: its wire descriptor, its windows,
// and the channel the coordinator's fold loop reads.
type fleetSweep struct {
	wire      WireSweep
	windows   []*fleetWindow
	remaining int
	results   chan core.WindowResult
	closed    bool
	done      chan struct{}   // closed when every window completed
	ctx       context.Context // the registering job's context
}

type leaseRef struct {
	sweepID string
	idx     int // index into the sweep's windows
}

// DefaultLeaseTTL is the lease lifetime when Config.LeaseTTL is unset:
// long enough for a quick-mode window on a slow worker, short enough
// that a crashed worker's windows are re-issued promptly (workers renew
// at TTL/3, so healthy long windows never expire).
const DefaultLeaseTTL = 30 * time.Second

// FleetManager tracks registered sweeps, outstanding leases and worker
// liveness. It is the server half of the core.Fleet seam: ForJob adapts
// it to the engine's interface, the HTTP handlers expose it to workers.
type FleetManager struct {
	ttl time.Duration
	obs *obs.Obs
	now func() time.Time // test seam

	mu       sync.Mutex
	sweeps   map[string]*fleetSweep
	order    []string // registration order, for FIFO leasing
	leases   map[string]leaseRef
	leaseSeq int64
	lastSeen map[string]time.Time
	// workerSeries tracks which workers own a fleet.worker.<name>.window
	// timer, capped at maxWorkerSeries so client-supplied names cannot
	// mint unbounded metric series.
	workerSeries map[string]bool
}

// Worker-state bounds: both lastSeen and the per-worker metric series are
// keyed by client-supplied names, so both must be bounded. Workers unseen
// for workerPruneTTLs lease lifetimes are forgotten (ephemeral
// worker-<pid> names would otherwise accumulate forever), lastSeen never
// exceeds maxTrackedWorkers entries (oldest evicted first), and at most
// maxWorkerSeries workers get their own latency timer — later ones still
// fold into the fleet-wide fleet.window series.
const (
	workerPruneTTLs   = 10
	maxTrackedWorkers = 256
	maxWorkerSeries   = 64
)

// NewFleetManager builds a manager issuing leases with the given TTL
// (<= 0 uses DefaultLeaseTTL).
func NewFleetManager(o *obs.Obs, ttl time.Duration) *FleetManager {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if o == nil {
		o = obs.New(obs.Off, nil)
	}
	return &FleetManager{
		ttl: ttl, obs: o, now: time.Now,
		sweeps:       map[string]*fleetSweep{},
		leases:       map[string]leaseRef{},
		lastSeen:     map[string]time.Time{},
		workerSeries: map[string]bool{},
	}
}

// markSeenLocked records worker liveness and prunes stale entries, so the
// worker table tracks the live fleet instead of every name ever seen.
// Callers hold m.mu.
func (m *FleetManager) markSeenLocked(worker string, now time.Time) {
	cutoff := now.Add(-workerPruneTTLs * m.ttl)
	for name, seen := range m.lastSeen {
		if seen.Before(cutoff) {
			delete(m.lastSeen, name)
		}
	}
	if worker == "" {
		return
	}
	if _, known := m.lastSeen[worker]; !known && len(m.lastSeen) >= maxTrackedWorkers {
		// Table full of live-ish workers: evict the stalest so the newest
		// is tracked; bounded memory beats a complete roster.
		oldest, oldestSeen := "", now
		for name, seen := range m.lastSeen {
			if seen.Before(oldestSeen) {
				oldest, oldestSeen = name, seen
			}
		}
		delete(m.lastSeen, oldest)
	}
	m.lastSeen[worker] = now
}

// workerTimerLocked returns the worker's window-latency timer, or nil
// when the worker is anonymous or the series budget is spent. Names are
// sanitized — a hostile worker name cannot mint arbitrary series text.
// Callers hold m.mu.
func (m *FleetManager) workerTimerLocked(worker string) *obs.Timer {
	if worker == "" {
		return nil
	}
	name := metricLabel(worker)
	if !m.workerSeries[name] {
		if len(m.workerSeries) >= maxWorkerSeries {
			return nil
		}
		m.workerSeries[name] = true
	}
	return m.obs.Metrics().Timer("fleet.worker." + name + ".window")
}

// TTL returns the lease lifetime.
func (m *FleetManager) TTL() time.Duration { return m.ttl }

// ForJob adapts the manager to the engine's Fleet seam for one job: the
// returned Fleet registers each sweep under "<jobID>/<sweep key>" and
// stamps the wire descriptor with the job's benchmark identity.
func (m *FleetManager) ForJob(jobID, benchmark string, quick bool, trainSeed uint64) core.Fleet {
	return &jobFleet{m: m, jobID: jobID, benchmark: benchmark, quick: quick, trainSeed: trainSeed}
}

type jobFleet struct {
	m         *FleetManager
	jobID     string
	benchmark string
	quick     bool
	trainSeed uint64
}

// RunSweep implements core.Fleet.
func (f *jobFleet) RunSweep(ctx context.Context, job core.SweepJob, start int) (<-chan core.WindowResult, error) {
	wire := WireSweep{
		ID: f.jobID + "/" + job.Key, JobID: f.jobID, SeedBase: job.SeedBase,
		Scope: job.Scope, Benchmark: f.benchmark, Quick: f.quick, TrainSeed: f.trainSeed,
		Options: optionsWire(job.Opts), Evals: job.Evals, NB: job.NB, Examples: job.Examples,
	}
	return f.m.runSweep(ctx, wire, start, job.Window)
}

// runSweep registers one sweep's windows [start, NB) for leasing and
// returns the channel its results arrive on. The channel is buffered to
// hold every window, so completions never block on the fold loop; it
// closes when the last window completes or ctx is cancelled, whichever
// comes first.
func (m *FleetManager) runSweep(ctx context.Context, wire WireSweep, start, window int) (<-chan core.WindowResult, error) {
	if window < 1 {
		window = 1
	}
	if start < 0 || start > wire.NB {
		return nil, fmt.Errorf("fleet: sweep %s start %d out of range (nb=%d)", wire.ID, start, wire.NB)
	}
	var windows []*fleetWindow
	for b0 := start; b0 < wire.NB; b0 += window {
		b1 := b0 + window
		if b1 > wire.NB {
			b1 = wire.NB
		}
		windows = append(windows, &fleetWindow{b0: b0, b1: b1})
	}
	fs := &fleetSweep{
		wire: wire, windows: windows, remaining: len(windows),
		results: make(chan core.WindowResult, len(windows)+1),
		done:    make(chan struct{}),
		ctx:     ctx,
	}

	m.mu.Lock()
	if cur, dup := m.sweeps[wire.ID]; dup {
		// A sweep whose job context is already cancelled is dead; its
		// teardown goroutine just hasn't run yet. A drain-requeued job
		// re-registering the same sweep must not lose that race, so close
		// the husk synchronously and take its place. A live duplicate is
		// still a caller bug.
		if cur.ctx == nil || cur.ctx.Err() == nil {
			m.mu.Unlock()
			return nil, fmt.Errorf("fleet: sweep %s already registered", wire.ID)
		}
		m.closeSweepLocked(cur)
	}
	m.sweeps[wire.ID] = fs
	m.order = append(m.order, wire.ID)
	if fs.remaining == 0 {
		m.closeSweepLocked(fs)
	}
	m.mu.Unlock()

	m.obs.Info("sweep registered with fleet",
		obs.F("sweep", wire.ID), obs.F("scope", wire.Scope.String()),
		obs.F("windows", len(windows)))

	go func() {
		select {
		case <-ctx.Done():
			m.mu.Lock()
			if cur, ok := m.sweeps[wire.ID]; ok && cur == fs {
				m.closeSweepLocked(fs)
			}
			m.mu.Unlock()
		case <-fs.done:
		}
	}()
	return fs.results, nil
}

// closeSweepLocked unregisters a sweep and closes its channels. Callers
// hold m.mu.
func (m *FleetManager) closeSweepLocked(fs *fleetSweep) {
	if fs.closed {
		return
	}
	fs.closed = true
	for _, w := range fs.windows {
		if w.leaseID != "" {
			delete(m.leases, w.leaseID)
		}
	}
	delete(m.sweeps, fs.wire.ID)
	for i, id := range m.order {
		if id == fs.wire.ID {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	close(fs.results)
	close(fs.done)
}

// Lease issues the next available window to a worker: the first
// never-leased or lease-expired window of the oldest registered sweep.
// Expired leases are reclaimed lazily here — no background timer — so an
// idle fleet does no work. Returns ok=false when no work is available.
func (m *FleetManager) Lease(worker string) (Lease, bool) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.markSeenLocked(worker, now)
	for _, id := range m.order {
		fs := m.sweeps[id]
		for i, w := range fs.windows {
			if w.done {
				continue
			}
			if w.leaseID != "" {
				if now.Before(w.expires) {
					continue
				}
				// Lease outlived its TTL without a completion: the worker
				// died (or stalled past its renewals). Reclaim and re-issue.
				m.obs.Metrics().Counter("fleet.leases.expired").Inc()
				m.obs.Warn("lease expired; window re-issued",
					obs.F("sweep", id), obs.F("window", fmt.Sprintf("[%d,%d)", w.b0, w.b1)),
					obs.F("worker", w.worker))
				delete(m.leases, w.leaseID)
			}
			m.leaseSeq++
			w.leaseID = fmt.Sprintf("L%06d", m.leaseSeq)
			w.worker = worker
			w.issuedAt = now
			w.expires = now.Add(m.ttl)
			m.leases[w.leaseID] = leaseRef{sweepID: id, idx: i}
			m.obs.Metrics().Counter("fleet.leases.issued").Inc()
			return Lease{
				LeaseID: w.leaseID, Sweep: fs.wire, B0: w.b0, B1: w.b1,
				TTLMs: m.ttl.Milliseconds(),
			}, true
		}
	}
	return Lease{}, false
}

// Renew extends a lease's TTL. It succeeds while the lease is still the
// window's current lease (even slightly past expiry, as long as the
// window was not re-issued); once the window completed or was re-leased
// the renewal reports false and the worker should abandon the window.
func (m *FleetManager) Renew(leaseID, worker string) bool {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.markSeenLocked(worker, now)
	ref, ok := m.leases[leaseID]
	if !ok {
		return false
	}
	fs := m.sweeps[ref.sweepID]
	w := fs.windows[ref.idx]
	if w.done || w.leaseID != leaseID {
		return false
	}
	w.expires = now.Add(m.ttl)
	m.obs.Metrics().Counter("fleet.leases.renewed").Inc()
	return true
}

// Release returns a leased window to pending before its TTL, so a worker
// that cannot evaluate it (unresolvable sweep, eval failure) does not
// leave the window dead until expiry. Idempotent: releasing a lease that
// already completed, expired, was re-issued, or never existed reports
// false and changes nothing.
func (m *FleetManager) Release(leaseID, worker string) bool {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.markSeenLocked(worker, now)
	ref, ok := m.leases[leaseID]
	if !ok {
		return false
	}
	fs := m.sweeps[ref.sweepID]
	w := fs.windows[ref.idx]
	if w.done || w.leaseID != leaseID {
		return false
	}
	delete(m.leases, leaseID)
	w.leaseID = ""
	w.worker = ""
	m.obs.Metrics().Counter("fleet.leases.released").Inc()
	m.obs.Info("lease released; window back to pending",
		obs.F("sweep", ref.sweepID), obs.F("window", fmt.Sprintf("[%d,%d)", w.b0, w.b1)),
		obs.F("worker", worker))
	return true
}

// Completion outcomes of Complete.
const (
	CompleteOK        = "ok"
	CompleteDuplicate = "duplicate"
)

// errUnknownSweep reports a completion for a sweep the fleet no longer
// tracks (finished, cancelled, or never registered) — the worker should
// drop the result.
var errUnknownSweep = fmt.Errorf("fleet: unknown sweep")

// Complete folds one window's counts. Any completion of a pending window
// is accepted — regardless of whose lease is current — because window
// counts are deterministic: a slow worker racing a re-issued lease
// reports the same integers the replacement would. A second completion
// of a done window is a duplicate and is dropped without a second fold.
func (m *FleetManager) Complete(req completeRequest) (string, error) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.markSeenLocked(req.Worker, now)
	fs, ok := m.sweeps[req.SweepID]
	if !ok {
		return "", errUnknownSweep
	}
	var w *fleetWindow
	for _, cand := range fs.windows {
		if cand.b0 == req.B0 && cand.b1 == req.B1 {
			w = cand
			break
		}
	}
	if w == nil {
		return "", fmt.Errorf("fleet: sweep %s has no window [%d, %d)", req.SweepID, req.B0, req.B1)
	}
	if len(req.Correct) != fs.wire.Evals {
		return "", fmt.Errorf("fleet: window [%d, %d) completion carries %d counts, want %d",
			req.B0, req.B1, len(req.Correct), fs.wire.Evals)
	}
	// Correct-counts are numbers of correctly-classified examples in the
	// window, so each must lie in [0, window example count]. A count
	// outside that range cannot come from an honest evaluation — folding
	// it would silently corrupt the sweep's accuracy, so reject it before
	// it reaches a checkpoint. The bound needs the batch size to exist;
	// negatives are impossible regardless.
	maxCorrect := -1
	if batch := fs.wire.Options.Batch; batch > 0 {
		maxCorrect = (req.B1 - req.B0) * batch
		if fs.wire.Examples > 0 {
			if hi := fs.wire.Examples - req.B0*batch; hi < maxCorrect {
				maxCorrect = hi
			}
		}
	}
	for i, c := range req.Correct {
		switch {
		case c < 0:
			m.obs.Metrics().Counter("fleet.completions.out_of_range").Inc()
			return "", fmt.Errorf("fleet: window [%d, %d) count[%d] = %d is negative",
				req.B0, req.B1, i, c)
		case maxCorrect >= 0 && c > maxCorrect:
			m.obs.Metrics().Counter("fleet.completions.out_of_range").Inc()
			return "", fmt.Errorf("fleet: window [%d, %d) count[%d] = %d out of range [0, %d]",
				req.B0, req.B1, i, c, maxCorrect)
		}
	}
	if w.done {
		m.obs.Metrics().Counter("fleet.leases.duplicate").Inc()
		return CompleteDuplicate, nil
	}
	w.done = true
	if w.leaseID != "" {
		delete(m.leases, w.leaseID)
		w.leaseID = ""
	}
	if !w.issuedAt.IsZero() {
		d := now.Sub(w.issuedAt)
		m.obs.Metrics().Timer("fleet.window").Observe(d)
		if t := m.workerTimerLocked(req.Worker); t != nil {
			t.Observe(d)
		}
	}
	m.obs.Metrics().Counter("fleet.leases.completed").Inc()
	fs.results <- core.WindowResult{B0: req.B0, B1: req.B1, Correct: append([]int(nil), req.Correct...)}
	fs.remaining--
	if fs.remaining == 0 {
		m.closeSweepLocked(fs)
	}
	return CompleteOK, nil
}

// Status snapshots the fleet for GET /v1/fleet. Workers unseen for
// workerPruneTTLs lease lifetimes have left the fleet and are pruned,
// not reported.
func (m *FleetManager) Status() FleetStatus {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.markSeenLocked("", now)
	st := FleetStatus{Sweeps: len(m.sweeps), LeaseTTLMs: m.ttl.Milliseconds()}
	for _, fs := range m.sweeps {
		for _, w := range fs.windows {
			if w.done {
				continue
			}
			if w.leaseID != "" && now.Before(w.expires) {
				st.WindowsLeased++
			} else {
				st.WindowsPending++
			}
		}
	}
	if len(m.lastSeen) > 0 {
		st.Workers = map[string]int64{}
		for name, seen := range m.lastSeen {
			st.Workers[name] = now.Sub(seen).Milliseconds()
		}
	}
	return st
}

// ---- HTTP handlers ----

// maxFleetBytes bounds fleet POST bodies; a completion is a few KB of
// integer counts at most.
const maxFleetBytes = 4 << 20

func decodeFleet(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxFleetBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid fleet request: %v", err)
		return false
	}
	return true
}

func (h *serverHandler) fleetLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeFleet(w, r, &req) {
		return
	}
	lease, ok := h.s.fleet.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (h *serverHandler) fleetComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeFleet(w, r, &req) {
		return
	}
	status, err := h.s.fleet.Complete(req)
	if err == errUnknownSweep {
		writeErr(w, http.StatusNotFound, "unknown sweep %q", req.SweepID)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (h *serverHandler) fleetRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !decodeFleet(w, r, &req) {
		return
	}
	if !h.s.fleet.Renew(req.LeaseID, req.Worker) {
		writeErr(w, http.StatusGone, "lease %q is gone", req.LeaseID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "renewed"})
}

// fleetRelease hands a lease back before expiry. Always 200 — release
// is advisory and idempotent; a lease that is already gone (completed,
// expired, re-issued) just reports "unknown".
func (h *serverHandler) fleetRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if !decodeFleet(w, r, &req) {
		return
	}
	status := "released"
	if !h.s.fleet.Release(req.LeaseID, req.Worker) {
		status = "unknown"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (h *serverHandler) fleetStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.s.fleet.Status())
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"redcane/internal/obs"
)

// postJobAs submits a job with an API key (Bearer header).
func postJobAs(t *testing.T, ts *httptest.Server, key, body string) (JobStatus, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func TestNewAuthValidation(t *testing.T) {
	cases := []struct {
		name    string
		tenants []Tenant
		wantErr string
	}{
		{"empty", nil, "no tenants"},
		{"missing name", []Tenant{{Key: "k"}}, "name and a key"},
		{"missing key", []Tenant{{Name: "a"}}, "name and a key"},
		{"negative limits", []Tenant{{Name: "a", Key: "k", MaxQueued: -1}}, "negative limits"},
		{"dup name", []Tenant{{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}}, "duplicate tenant name"},
		{"dup key", []Tenant{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}}, "duplicate API key"},
	}
	for _, tc := range cases {
		if _, err := NewAuth(tc.tenants); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.wantErr)
		}
	}
	a, err := NewAuth([]Tenant{{Name: "alice", Key: "ka"}, {Name: "bob", Key: "kb", MaxQueued: 2, RatePerMin: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if tn, err := a.Authenticate("kb"); err != nil || tn.Name != "bob" || tn.MaxQueued != 2 {
		t.Fatalf("Authenticate(kb) = %+v, %v", tn, err)
	}
	if _, err := a.Authenticate(""); err != ErrUnauthorized {
		t.Fatalf("empty key: err = %v", err)
	}
	if _, err := a.Authenticate("nope"); err != ErrUnauthorized {
		t.Fatalf("unknown key: err = %v", err)
	}
}

func TestLoadKeys(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.json")
	good := `{"tenants":[{"name":"alice","key":"ka","max_queued":3,"rate_per_min":60}]}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := LoadKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if tn, err := a.Authenticate("ka"); err != nil || tn.Name != "alice" || tn.RatePerMin != 60 {
		t.Fatalf("loaded tenant = %+v, %v", tn, err)
	}

	// Typos in the keys file must fail loudly, not silently drop limits.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tenants":[{"name":"a","key":"k","rate_per_minute":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeys(bad); err == nil {
		t.Fatal("unknown field in keys file did not error")
	}
	if _, err := LoadKeys(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing keys file did not error")
	}
}

func TestAuthRateBucket(t *testing.T) {
	a, err := NewAuth([]Tenant{{Name: "a", Key: "k", RatePerMin: 2}, {Name: "b", Key: "free"}})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }

	// Burst = RatePerMin, then the bucket is dry.
	if !a.allow("k") || !a.allow("k") {
		t.Fatal("burst submissions rejected")
	}
	if a.allow("k") {
		t.Fatal("over-rate submission allowed")
	}
	// Half a minute refills one token at 2/min.
	now = now.Add(30 * time.Second)
	if !a.allow("k") {
		t.Fatal("refilled token rejected")
	}
	if a.allow("k") {
		t.Fatal("second token allowed after a single refill")
	}
	// A long idle stretch caps at the burst, not unbounded credit.
	now = now.Add(time.Hour)
	if !a.allow("k") || !a.allow("k") {
		t.Fatal("post-idle burst rejected")
	}
	if a.allow("k") {
		t.Fatal("idle stretch minted more than the burst")
	}
	// Unlimited tenants always pass; unknown keys never do.
	for i := 0; i < 50; i++ {
		if !a.allow("free") {
			t.Fatal("unlimited tenant throttled")
		}
	}
	if a.allow("ghost") {
		t.Fatal("unknown key allowed")
	}
}

func TestMetricLabelSanitizes(t *testing.T) {
	cases := map[string]string{
		"alice":                  "alice",
		"team-7.eu":              "team-7.eu",
		"a b/c{d}":               "a_b_c_d_",
		strings.Repeat("x", 100): strings.Repeat("x", 48),
	}
	for in, want := range cases {
		if got := metricLabel(in); got != want {
			t.Errorf("metricLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestKeyedServerAuthAndQuotas(t *testing.T) {
	auth, err := NewAuth([]Tenant{
		{Name: "alice", Key: "ka", MaxQueued: 1},
		{Name: "bob", Key: "kb", RatePerMin: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	auth.now = func() time.Time { return now }

	release := make(chan struct{})
	blocking := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		select {
		case <-release:
			return Artifacts{Text: "ok"}, nil
		case <-ctx.Done():
			return Artifacts{}, ctx.Err()
		}
	}
	s, ts := newTestServer(t, Config{Auth: auth, Slots: 1, QueueCap: 8}, blocking)
	defer close(release)

	// No key, bad key: the keyed server turns submissions away with 401.
	if _, resp := postJob(t, ts, `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous submit on keyed server: HTTP %d", resp.StatusCode)
	}
	if _, resp := postJobAs(t, ts, "wrong", `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key: HTTP %d", resp.StatusCode)
	}

	// X-API-Key works as the fallback credential.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(`{"kind":"group-sweep"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", "ka")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var guard JobStatus
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("X-API-Key submit: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&guard); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if guard.Tenant != "alice" {
		t.Fatalf("job tenant = %q, want alice", guard.Tenant)
	}
	waitState(t, ts, guard.ID, StateRunning)

	// alice's MaxQueued=1: one queued job fits, the next bounces with 429
	// while the server-wide queue still has room.
	if _, resp := postJobAs(t, ts, "ka", `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first queued job: HTTP %d", resp.StatusCode)
	}
	if _, resp := postJobAs(t, ts, "ka", `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d", resp.StatusCode)
	}

	// bob's RatePerMin=2: the burst admits two, the third is throttled,
	// and a minute of (fake) wall clock restores service.
	if _, resp := postJobAs(t, ts, "kb", `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("bob submit 1: HTTP %d", resp.StatusCode)
	}
	if _, resp := postJobAs(t, ts, "kb", `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("bob submit 2: HTTP %d", resp.StatusCode)
	}
	if _, resp := postJobAs(t, ts, "kb", `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bob over-rate submit: HTTP %d", resp.StatusCode)
	}
	now = now.Add(time.Minute)
	if _, resp := postJobAs(t, ts, "kb", `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("bob submit after refill: HTTP %d", resp.StatusCode)
	}

	// Admissions and rejections show up as per-tenant counters.
	snap := s.obs.Metrics().Snapshot()
	if got := snap.Counters["server.tenant.alice.submitted"]; got != 2 {
		t.Fatalf("alice submitted counter = %d, want 2", got)
	}
	if got := snap.Counters["server.tenant.alice.rejected"]; got != 1 {
		t.Fatalf("alice rejected counter = %d, want 1", got)
	}
	if got := snap.Counters["server.tenant.bob.submitted"]; got != 3 {
		t.Fatalf("bob submitted counter = %d, want 3", got)
	}
	if got := snap.Counters["server.tenant.bob.rejected"]; got != 1 {
		t.Fatalf("bob rejected counter = %d, want 1", got)
	}
}

// TestPriorityScheduling pins the dequeue order: high beats normal beats
// low, regardless of submission order, with one slot forcing full
// serialization.
func TestPriorityScheduling(t *testing.T) {
	var mu sync.Mutex
	var order []string
	step := make(chan struct{})
	run := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		mu.Lock()
		order = append(order, filepath.Base(jobDir))
		mu.Unlock()
		select {
		case <-step:
			return Artifacts{Text: "ok"}, nil
		case <-ctx.Done():
			return Artifacts{}, ctx.Err()
		}
	}
	_, ts := newTestServer(t, Config{Slots: 1}, run)

	guard, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	waitState(t, ts, guard.ID, StateRunning)

	normal, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	low, _ := postJob(t, ts, `{"kind":"group-sweep","priority":"low"}`)
	high, _ := postJob(t, ts, `{"kind":"validate","priority":"high"}`)
	if high.Spec.Priority != "high" {
		t.Fatalf("priority not echoed in status: %+v", high.Spec)
	}

	for range 4 {
		step <- struct{}{}
	}
	for _, id := range []string{normal.ID, low.ID, high.ID} {
		waitState(t, ts, id, StateDone)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{guard.ID, high.ID, normal.ID, low.ID}
	if len(order) != len(want) {
		t.Fatalf("run order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("run order = %v, want %v", order, want)
		}
	}
}

// TestPriorityValidation rejects unknown priorities and normalizes the
// accepted spellings.
func TestPriorityValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{}, instantRun(Artifacts{Text: "ok"}))
	if _, resp := postJob(t, ts, `{"kind":"group-sweep","priority":"urgent"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown priority: HTTP %d", resp.StatusCode)
	}
	st, resp := postJob(t, ts, `{"kind":"group-sweep","priority":"Normal"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("normalized priority: HTTP %d", resp.StatusCode)
	}
	if st.Spec.Priority != "" {
		t.Fatalf(`"Normal" normalized to %q, want ""`, st.Spec.Priority)
	}
}

// TestTenantFairness pins the round-robin between tenants at equal
// priority: one tenant's burst cannot starve another's single job.
func TestTenantFairness(t *testing.T) {
	auth, err := NewAuth([]Tenant{{Name: "alice", Key: "ka"}, {Name: "bob", Key: "kb"}})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	step := make(chan struct{})
	run := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		mu.Lock()
		order = append(order, filepath.Base(jobDir))
		mu.Unlock()
		select {
		case <-step:
			return Artifacts{Text: "ok"}, nil
		case <-ctx.Done():
			return Artifacts{}, ctx.Err()
		}
	}
	_, ts := newTestServer(t, Config{Auth: auth, Slots: 1}, run)

	guard, _ := postJobAs(t, ts, "ka", `{"kind":"group-sweep"}`)
	waitState(t, ts, guard.ID, StateRunning)

	// alice floods two more; bob queues one after her. Fairness hands the
	// slot to bob first (alice was scheduled most recently), then drains
	// alice's backlog in FIFO order.
	a2, _ := postJobAs(t, ts, "ka", `{"kind":"group-sweep"}`)
	a3, _ := postJobAs(t, ts, "ka", `{"kind":"group-sweep"}`)
	b1, _ := postJobAs(t, ts, "kb", `{"kind":"group-sweep"}`)

	for range 4 {
		step <- struct{}{}
	}
	for _, id := range []string{a2.ID, a3.ID, b1.ID} {
		waitState(t, ts, id, StateDone)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{guard.ID, b1.ID, a2.ID, a3.ID}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("run order = %v, want %v", order, want)
		}
	}
}

// TestMemStoreLifecycle runs the whole job lifecycle against the
// in-memory store: no StateDir, manifests and artifacts never touch the
// real jobs/ layout, yet every HTTP surface behaves identically.
func TestMemStoreLifecycle(t *testing.T) {
	art := Artifacts{Text: "mem\n", CSV: []byte("a\n1\n")}
	s, err := New(Config{Store: NewMemStore(), Slots: 1, RunJob: instantRun(art)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	st, resp := postJob(t, ts, `{"kind":"group-sweep"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, StateDone)

	body, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(body.Body)
	body.Body.Close()
	if body.StatusCode != http.StatusOK || string(data) != art.Text {
		t.Fatalf("memstore result: HTTP %d, body %q", body.StatusCode, data)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result?format=csv", nil); code != http.StatusOK {
		t.Fatalf("memstore csv result: HTTP %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result?format=json", nil); code != http.StatusNotFound {
		t.Fatalf("absent artifact from memstore: HTTP %d", code)
	}
	// The trace is a store artifact too, so it serves without a state dir.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/trace", nil); code != http.StatusOK {
		t.Fatalf("memstore trace: HTTP %d", code)
	}
}

// TestClientRoundTrip drives the typed client against a live server:
// submit, wait, result, list, health — including auth and APIError
// statuses.
func TestClientRoundTrip(t *testing.T) {
	auth, err := NewAuth([]Tenant{{Name: "alice", Key: "ka"}})
	if err != nil {
		t.Fatal(err)
	}
	art := Artifacts{Text: "done\n", JSON: []byte(`{"ok":true}`)}
	_, ts := newTestServer(t, Config{Auth: auth}, instantRun(art))

	cl := NewClient(ts.URL+"/", "ka") // trailing slash must not double up
	ctx := context.Background()

	st, err := cl.Submit(ctx, JobSpec{Kind: "group-sweep", Priority: "high"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "alice" || st.Spec.Priority != "high" {
		t.Fatalf("submitted status = %+v", st)
	}
	final, err := cl.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil || final.State != StateDone {
		t.Fatalf("Wait = %+v, %v", final, err)
	}
	data, err := cl.Result(ctx, st.ID, "json")
	if err != nil || string(data) != `{"ok":true}` {
		t.Fatalf("Result = %q, %v", data, err)
	}
	list, err := cl.List(ctx)
	if err != nil || len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("List = %+v, %v", list, err)
	}
	h, err := cl.ServerHealth(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("ServerHealth = %+v, %v", h, err)
	}

	// A wrong key surfaces as a typed APIError with the 401 status.
	bad := NewClient(ts.URL, "wrong")
	_, err = bad.Submit(ctx, JobSpec{Kind: "group-sweep"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
		t.Fatalf("bad-key Submit err = %v", err)
	}
	if _, err := cl.Status(ctx, "j999999"); err == nil {
		t.Fatal("Status of unknown job did not error")
	}
}

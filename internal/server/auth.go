package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// This file is the multi-tenant admission layer: API keys, per-tenant
// queue quotas and submission rate limits. It is deliberately optional
// — a server built without an Auth table (no -keys flag) runs in the
// anonymous single-tenant mode the service always had: no credential
// checks, no per-tenant limits, no new metric series, byte-identical
// behavior. With a key table, every submission must carry a known key
// (Authorization: Bearer <key> or X-API-Key: <key>); quota and rate
// violations answer 429 so clients back off instead of growing the
// queue, and each tenant's admissions show up as
// server.tenant.<name>.* counters in /metricsz.

// Tenant is one API key's identity and limits, as declared in the keys
// file.
type Tenant struct {
	// Name labels the tenant in job statuses, logs and metric series
	// (sanitized for the latter). Required, unique.
	Name string `json:"name"`
	// Key is the bearer credential. Required, unique.
	Key string `json:"key"`
	// MaxQueued bounds the tenant's queued-but-not-running jobs
	// (0 = no per-tenant bound; the server-wide queue cap still applies).
	MaxQueued int `json:"max_queued,omitempty"`
	// RatePerMin bounds the tenant's submissions per minute as a token
	// bucket with burst = RatePerMin (0 = unlimited).
	RatePerMin int `json:"rate_per_min,omitempty"`
}

// keysFile is the on-disk shape of the -keys flag.
type keysFile struct {
	Tenants []Tenant `json:"tenants"`
}

// ErrUnauthorized reports a submission without a valid API key on a
// keyed server (HTTP 401).
var ErrUnauthorized = errors.New("server: missing or unknown API key")

// ErrRateLimited reports a submission bouncing off its tenant's rate
// limit (HTTP 429).
var ErrRateLimited = errors.New("server: tenant rate limit exceeded")

// ErrTenantQuota reports a submission bouncing off its tenant's queued
// job quota (HTTP 429).
var ErrTenantQuota = errors.New("server: tenant queue quota exceeded")

// Auth is the API-key table of a multi-tenant server, plus the
// per-tenant rate-limiter state. Nil *Auth means anonymous
// single-tenant mode.
type Auth struct {
	now func() time.Time // test seam

	mu    sync.Mutex
	byKey map[string]*tenantBucket
}

// tenantBucket pairs a tenant with its token-bucket rate state.
type tenantBucket struct {
	t      Tenant
	tokens float64
	last   time.Time
}

// NewAuth builds a key table from a tenant list, validating uniqueness.
func NewAuth(tenants []Tenant) (*Auth, error) {
	if len(tenants) == 0 {
		return nil, errors.New("server: keys file declares no tenants")
	}
	a := &Auth{now: time.Now, byKey: make(map[string]*tenantBucket, len(tenants))}
	names := map[string]bool{}
	for _, t := range tenants {
		if t.Name == "" || t.Key == "" {
			return nil, fmt.Errorf("server: tenant %+v needs both a name and a key", t)
		}
		if t.MaxQueued < 0 || t.RatePerMin < 0 {
			return nil, fmt.Errorf("server: tenant %q has negative limits", t.Name)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("server: duplicate tenant name %q", t.Name)
		}
		if _, dup := a.byKey[t.Key]; dup {
			return nil, fmt.Errorf("server: duplicate API key (tenant %q)", t.Name)
		}
		names[t.Name] = true
		a.byKey[t.Key] = &tenantBucket{t: t, tokens: float64(t.RatePerMin)}
	}
	return a, nil
}

// LoadKeys reads a -keys file: {"tenants":[{"name","key","max_queued",
// "rate_per_min"},...]}.
func LoadKeys(path string) (*Auth, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: keys file: %w", err)
	}
	var kf keysFile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&kf); err != nil {
		return nil, fmt.Errorf("server: keys file %s: %w", path, err)
	}
	return NewAuth(kf.Tenants)
}

// Authenticate resolves an API key to its tenant. An empty or unknown
// key is ErrUnauthorized.
func (a *Auth) Authenticate(key string) (Tenant, error) {
	if key == "" {
		return Tenant{}, ErrUnauthorized
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	tb, ok := a.byKey[key]
	if !ok {
		return Tenant{}, ErrUnauthorized
	}
	return tb.t, nil
}

// allow consumes one submission token from the tenant's rate bucket,
// reporting false when the tenant is over its rate. Tenants without a
// rate limit always pass.
func (a *Auth) allow(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	tb, ok := a.byKey[key]
	if !ok || tb.t.RatePerMin <= 0 {
		return ok
	}
	now := a.now()
	burst := float64(tb.t.RatePerMin)
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Minutes() * burst
	}
	if tb.tokens > burst {
		tb.tokens = burst
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// apiKey extracts the request credential: Authorization: Bearer <key>
// wins, X-API-Key is the fallback.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if key, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// metricLabel sanitizes a client- or operator-supplied name for use as
// a metric series segment: letters, digits, '_', '-' and '.' survive,
// everything else becomes '_', and the result is capped at 48 runes so
// a hostile name cannot mint unbounded or unreadable series.
func metricLabel(s string) string {
	var b strings.Builder
	for _, r := range s {
		if b.Len() >= 48 {
			break
		}
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

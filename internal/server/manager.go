// Package server is the long-running analysis service behind
// `redcane serve`: an HTTP/JSON front-end that queues, runs, streams and
// persists resilience-analysis jobs (group/layer noise sweeps, the full
// methodology, bit-accurate validation) on top of the existing
// experiment runner.
//
// Design invariants:
//
//   - Jobs are durable. Every job's spec and state live in
//     <state>/jobs/<id>/job.json; its analysis checkpoints and result
//     artifacts live beside it. A server restarted over the same state
//     directory re-enqueues unfinished jobs, which resume from their
//     last completed sweep window and produce byte-identical results
//     (the checkpoint + counter-seeded-RNG guarantee of the engine).
//   - Results equal the CLI's. A job runs the same job-shaped entry
//     point as the corresponding CLI command with the same options, so
//     its artifacts are byte-identical given the same seed.
//   - The worker budget is process-wide. Options.Workers is divided
//     across the configured job slots, so concurrency between jobs never
//     multiplies the evaluation goroutines.
//   - Drain is graceful. Stopping the server stops job admission,
//     cancels running jobs at their next batch boundary (their progress
//     is already checkpointed per window), flushes the metrics
//     snapshot, and only then returns.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"redcane/internal/obs"
)

// Job states. A queued job is admitted but not started (including jobs
// re-admitted after a server restart); cancelled means a client asked
// for the cancellation, failed that the analysis itself errored.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Sentinel errors of Submit, mapped onto HTTP statuses by the handlers.
var (
	// ErrQueueFull reports a submission bouncing off the bounded queue
	// (HTTP 429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining reports a submission during shutdown (HTTP 503).
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// RunFunc executes one job: it receives the job's cancellation context,
// validated spec, private directory (for checkpoints and any scratch
// state) and telemetry handle, and returns the artifacts to persist.
// The server's default is (*Server).runSpec; tests substitute stubs.
type RunFunc func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error)

// Config parameterizes the service.
type Config struct {
	// StateDir roots all persistence: the shared weight cache, and under
	// jobs/<id>/ each job's spec, checkpoints and artifacts. Required
	// unless Store is supplied (a custom store still wants StateDir for
	// the weight cache and the drain metrics snapshot).
	StateDir string
	// Store overrides job persistence (manifests, artifacts, working
	// dirs). Nil uses the directory store over StateDir — the layout the
	// service always had.
	Store JobStore
	// Auth is the API-key table. Nil runs the anonymous single-tenant
	// mode: no credentials, no per-tenant limits.
	Auth *Auth
	// Quick selects the reduced dataset/epoch/evaluation sizes,
	// mirroring the CLI's -quick.
	Quick bool
	// Seed is the default master seed of jobs that do not carry one.
	Seed uint64
	// Workers is the process-wide evaluation-goroutine budget shared by
	// all running jobs (0 = GOMAXPROCS).
	Workers int
	// Slots bounds how many jobs run concurrently (0 = 2). Each running
	// job gets Workers/Slots evaluation goroutines.
	Slots int
	// QueueCap bounds the number of queued-but-not-running submissions
	// (0 = 16); beyond it Submit returns ErrQueueFull.
	QueueCap int
	// Obs receives the server's own events and hosts the process metrics
	// registry that every job folds its engine metrics into (and that
	// /metricsz snapshots). A nil Obs gets a metrics-only replacement.
	Obs *obs.Obs
	// RunJob overrides the job executor (tests); nil runs the real
	// experiments.
	RunJob RunFunc
	// LeaseTTL is the fleet lease lifetime: how long a worker's window
	// lease survives without a completion or renewal before the
	// coordinator re-issues it (0 = DefaultLeaseTTL). Workers renew at
	// TTL/3, so the TTL trades crash-recovery latency against renewal
	// traffic, never correctness.
	LeaseTTL time.Duration
}

// job is the server-side state of one submission. All mutable fields are
// guarded by Server.mu; events has its own lock.
type job struct {
	id      string
	spec    JobSpec
	dir     string
	state   string
	errMsg  string
	tenant  string // "" in anonymous mode
	rank    int    // resolved priority (higher runs first)
	created time.Time
	started time.Time
	ended   time.Time
	// progress/eta mirror the latest sweep-engine progress event.
	progress string
	eta      string
	cancel   context.CancelFunc
	events   *obs.SubSink
}

// jobFile is the persisted form of a job (jobs/<id>/job.json).
type jobFile struct {
	ID      string    `json:"id"`
	Spec    JobSpec   `json:"spec"`
	State   string    `json:"state"`
	Error   string    `json:"error,omitempty"`
	Tenant  string    `json:"tenant,omitempty"`
	Created time.Time `json:"created"`
	Started time.Time `json:"started"`
	Ended   time.Time `json:"ended"`
}

// Server is the analysis service: an http.Handler plus the job manager
// behind it.
type Server struct {
	cfg     Config
	obs     *obs.Obs
	store   JobStore
	auth    *Auth
	handler *serverHandler
	fleet   *FleetManager
	started time.Time
	// trainMu serializes benchmark training/loading across jobs sharing
	// the weight cache.
	trainMu sync.Mutex

	mu       sync.Mutex
	jobs     map[string]*job
	pending  []*job // admitted, waiting for a slot (see pickLocked)
	running  int
	nextSeq  int
	pickSeq  int64            // monotonic scheduling clock for fairness
	lastPick map[string]int64 // tenant → pickSeq of its last scheduled job
	draining bool
	wg       sync.WaitGroup // one entry per running job goroutine
}

// New builds the service over cfg.StateDir, re-admitting any unfinished
// persisted jobs (they resume from their checkpoints) and scheduling
// them immediately.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" && cfg.Store == nil {
		return nil, errors.New("server: Config.StateDir is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New(obs.Off, nil) // metrics registry only
	}
	store := cfg.Store
	if store == nil {
		var err error
		if store, err = NewDirStore(cfg.StateDir, o); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg: cfg, obs: o, store: store, auth: cfg.Auth,
		jobs: map[string]*job{}, lastPick: map[string]int64{}, started: time.Now(),
	}
	s.fleet = NewFleetManager(o, cfg.LeaseTTL)
	s.handler = newHandler(s)
	if err := s.loadJobs(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.schedule()
	s.mu.Unlock()
	return s, nil
}

// jobWorkers is each running job's share of the process worker budget.
func (s *Server) jobWorkers() int {
	w := s.cfg.Workers / s.cfg.Slots
	if w < 1 {
		w = 1
	}
	return w
}

// loadJobs restores the persisted jobs from the store. Finished jobs
// become inert records serving their artifacts; queued or running ones
// are re-admitted as queued, in submission (ID) order, bypassing the
// queue bound (they were admitted before the restart).
func (s *Server) loadJobs() error {
	manifests, err := s.store.Load()
	if err != nil {
		return err
	}
	var restored []*job
	for _, jf := range manifests {
		dir, err := s.store.Dir(jf.ID)
		if err != nil {
			s.obs.Warn("job dir unavailable; skipping", obs.F("id", jf.ID), obs.F("err", err))
			continue
		}
		j := &job{
			id: jf.ID, spec: jf.Spec, dir: dir,
			state: jf.State, errMsg: jf.Error,
			tenant: jf.Tenant, rank: priorityRank(jf.Spec.Priority),
			created: jf.Created, started: jf.Started, ended: jf.Ended,
			events: obs.NewSubSink(0),
		}
		if seq, err := strconv.Atoi(strings.TrimPrefix(jf.ID, "j")); err == nil && seq > s.nextSeq {
			s.nextSeq = seq
		}
		switch j.state {
		case StateQueued, StateRunning:
			// Interrupted mid-flight (crash or drain): back to the queue;
			// its checkpoints make the rerun resume where it stopped.
			j.state = StateQueued
			j.started, j.ended = time.Time{}, time.Time{}
			restored = append(restored, j)
		case StateDone, StateFailed, StateCancelled:
			j.events.Close()
		default:
			s.obs.Warn("job manifest has unknown state; skipping",
				obs.F("id", jf.ID), obs.F("state", j.state))
			continue
		}
		s.jobs[j.id] = j
	}
	sort.Slice(restored, func(i, k int) bool { return restored[i].id < restored[k].id })
	for _, j := range restored {
		s.persistLocked(j)
		s.pending = append(s.pending, j)
		s.obs.Info("job re-admitted after restart", obs.F("id", j.id), obs.F("kind", j.spec.Kind))
	}
	return nil
}

// Submit admits one anonymous job. The spec must already be normalized.
func (s *Server) Submit(spec JobSpec) (*job, error) { return s.SubmitAs(spec, Tenant{}) }

// SubmitAs admits one job on behalf of a tenant (zero Tenant =
// anonymous), enforcing the tenant's rate limit and queue quota before
// the server-wide queue bound. The spec must already be normalized.
func (s *Server) SubmitAs(spec JobSpec, tenant Tenant) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if tenant.Name != "" {
		if s.auth != nil && !s.auth.allow(tenant.Key) {
			s.tenantCounter(tenant.Name, "rejected").Inc()
			return nil, ErrRateLimited
		}
		if tenant.MaxQueued > 0 && s.queuedByLocked(tenant.Name) >= tenant.MaxQueued {
			s.tenantCounter(tenant.Name, "rejected").Inc()
			return nil, ErrTenantQuota
		}
	}
	if len(s.pending) >= s.cfg.QueueCap {
		if tenant.Name != "" {
			s.tenantCounter(tenant.Name, "rejected").Inc()
		}
		return nil, ErrQueueFull
	}
	s.nextSeq++
	j := &job{
		id:      fmt.Sprintf("j%06d", s.nextSeq),
		spec:    spec,
		state:   StateQueued,
		tenant:  tenant.Name,
		rank:    priorityRank(spec.Priority),
		created: time.Now(),
		events:  obs.NewSubSink(0),
	}
	dir, err := s.store.Dir(j.id)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	j.dir = dir
	s.jobs[j.id] = j
	s.pending = append(s.pending, j)
	s.persistLocked(j)
	if tenant.Name != "" {
		s.tenantCounter(tenant.Name, "submitted").Inc()
	}
	s.obs.Info("job submitted", obs.F("id", j.id), obs.F("kind", spec.Kind),
		obs.F("benchmark", spec.Benchmark), obs.F("tenant", j.tenant),
		obs.F("priority", spec.Priority), obs.F("queued", len(s.pending)))
	s.schedule()
	return j, nil
}

// tenantCounter names a per-tenant admission counter in the process
// registry (server.tenant.<name>.<what>); names are sanitized so a
// tenant label cannot mint hostile series.
func (s *Server) tenantCounter(tenant, what string) *obs.Counter {
	return s.obs.Metrics().Counter("server.tenant." + metricLabel(tenant) + "." + what)
}

// queuedByLocked counts a tenant's queued jobs. Callers hold s.mu.
func (s *Server) queuedByLocked(tenant string) int {
	n := 0
	for _, j := range s.pending {
		if j.tenant == tenant {
			n++
		}
	}
	return n
}

// pickLocked selects the next queued job: highest priority first; among
// equals, the tenant least recently scheduled (round-robin fairness, so
// one tenant's burst cannot starve another's jobs of the same
// priority); within a tenant, FIFO. In anonymous mode every job shares
// one tenant, so the pick degenerates to the plain FIFO the
// single-tenant server always had. Callers hold s.mu. Returns an index
// into s.pending, or -1.
func (s *Server) pickLocked() int {
	best := -1
	for i, j := range s.pending {
		if best < 0 {
			best = i
			continue
		}
		b := s.pending[best]
		if j.rank != b.rank {
			if j.rank > b.rank {
				best = i
			}
			continue
		}
		// Equal priority: least-recently-picked tenant wins; ties keep
		// the earlier submission (FIFO).
		if s.lastPick[j.tenant] < s.lastPick[b.tenant] {
			best = i
		}
	}
	return best
}

// schedule starts pending jobs while slots are free. Callers hold s.mu.
func (s *Server) schedule() {
	for !s.draining && s.running < s.cfg.Slots {
		i := s.pickLocked()
		if i < 0 {
			return
		}
		j := s.pending[i]
		s.pending = append(s.pending[:i], s.pending[i+1:]...)
		s.pickSeq++
		s.lastPick[j.tenant] = s.pickSeq
		ctx, cancel := context.WithCancel(context.Background())
		j.state = StateRunning
		j.started = time.Now()
		j.cancel = cancel
		s.persistLocked(j)
		s.running++
		s.wg.Add(1)
		go s.runJob(ctx, cancel, j)
	}
}

// runJob drives one job to a terminal state (or back to queued when the
// server drains out from under it).
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job) {
	defer s.wg.Done()
	defer cancel()

	// The job's telemetry: events go to its subscriber stream and the
	// progress mirror; engine metrics fold into the process registry.
	level := obs.Info
	if s.obs.Level() < level {
		level = s.obs.Level()
	}
	o := obs.NewWithMetrics(level, obs.MultiSink(j.events, progressSink{s: s, j: j}), s.obs.Metrics())
	tr := obs.NewTrace()
	o.AttachTrace(tr)
	m := s.obs.Metrics()
	m.Timer("server.job.queue_wait").Observe(j.started.Sub(j.created))
	o.Info("job started", obs.F("id", j.id), obs.F("kind", j.spec.Kind),
		obs.F("benchmark", j.spec.Benchmark), obs.F("workers", s.jobWorkers()))

	run := s.cfg.RunJob
	if run == nil {
		run = s.runSpec
	}
	runStart := time.Now()
	art, err := run(ctx, j.spec, j.dir, o)
	m.Timer("server.job.run").Observe(time.Since(runStart))

	var writeErr error
	if err == nil {
		for name, data := range art.files() {
			if werr := s.store.PutArtifact(j.id, name, data); werr != nil && writeErr == nil {
				writeErr = fmt.Errorf("%s: %w", name, werr)
			}
		}
	}
	if terr := s.writeTrace(j.id, tr); terr != nil {
		o.Warn("job trace write failed", obs.F("id", j.id), obs.F("err", terr))
	}

	s.mu.Lock()
	j.cancel = nil
	j.ended = time.Now()
	switch {
	case err == nil && writeErr == nil:
		j.state = StateDone
		o.Info("job done", obs.F("id", j.id), obs.F("dur", j.ended.Sub(j.started).Round(time.Millisecond)))
	case err == nil:
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("write artifacts: %v", writeErr)
		o.Error("job failed", obs.F("id", j.id), obs.F("err", j.errMsg))
	case errors.Is(err, context.Canceled) && s.draining:
		// Drained, not cancelled: back to the queue so the next server
		// over this state directory resumes it from its checkpoints.
		j.state = StateQueued
		j.started, j.ended = time.Time{}, time.Time{}
		j.progress, j.eta = "", ""
		o.Info("job requeued by drain", obs.F("id", j.id))
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		o.Info("job cancelled", obs.F("id", j.id))
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		o.Error("job failed", obs.F("id", j.id), obs.F("err", err))
	}
	s.persistLocked(j)
	// Close the event stream only on terminal states. A drain-requeued
	// job is still queued — its subscribers must keep their streams open
	// (Drain ends them once the manager has fully wound down), not see a
	// terminal close on a job that will run again.
	if j.state != StateQueued {
		j.events.Close()
	}
	s.running--
	s.schedule()
	s.mu.Unlock()
}

// Cancel requests cancellation of one job. Queued jobs are removed from
// the queue immediately; running jobs stop at their next batch boundary.
// Cancelling a finished job is a no-op. Reports whether the job exists.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	switch j.state {
	case StateQueued:
		for i, p := range s.pending {
			if p == j {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		j.state = StateCancelled
		j.ended = time.Now()
		s.persistLocked(j)
		j.events.Close()
		s.obs.Info("queued job cancelled", obs.F("id", id))
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		s.obs.Info("running job cancellation requested", obs.F("id", id))
	}
	return true
}

// Drain gracefully shuts the manager down: stop admitting jobs, cancel
// running ones (they stop at the next batch boundary with their progress
// checkpointed and are re-queued for the next server), wait for them to
// unwind, then flush the metrics snapshot to <state>/metrics.json. The
// context bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		n := 0
		for _, j := range s.jobs {
			if j.state == StateRunning && j.cancel != nil {
				j.cancel()
				n++
			}
		}
		s.obs.Info("draining", obs.F("running", n), obs.F("queued", len(s.pending)))
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
	// Every job goroutine has unwound; jobs still queued (never started,
	// or requeued by the drain itself) will not run in this process, so
	// end their event streams now — otherwise their NDJSON subscribers
	// would hang and block the HTTP server's shutdown.
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.state == StateQueued {
			j.events.Close()
		}
	}
	s.mu.Unlock()
	if err := s.writeMetricsSnapshot(); err != nil {
		return err
	}
	s.obs.Info("drained")
	return nil
}

// writeTrace persists a job's execution trace (Chrome trace-event JSON)
// as an artifact, served by GET /v1/jobs/{id}/trace. A drained job that
// reruns later simply overwrites it.
func (s *Server) writeTrace(id string, tr *obs.Trace) error {
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		return err
	}
	return s.store.PutArtifact(id, "trace.json", buf.Bytes())
}

// writeMetricsSnapshot flushes the process metrics registry to
// <state>/metrics.json, reporting the close error (a full disk must not
// masquerade as a successful flush). Servers without a state directory
// (custom store, no StateDir) have nowhere to flush and skip it.
func (s *Server) writeMetricsSnapshot() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	path := filepath.Join(s.cfg.StateDir, "metrics.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.obs.Metrics().Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// persistLocked records a job's manifest in the store. Callers hold
// s.mu. Persistence failures degrade to a warning — the in-memory job
// keeps serving, it just won't survive a restart cleanly.
func (s *Server) persistLocked(j *job) {
	jf := jobFile{
		ID: j.id, Spec: j.spec, State: j.state, Error: j.errMsg, Tenant: j.tenant,
		Created: j.created, Started: j.started, Ended: j.ended,
	}
	if err := s.store.Put(jf); err != nil {
		s.obs.Warn("job manifest write failed", obs.F("id", j.id), obs.F("err", err))
	}
}

// Fleet returns the server's lease coordinator.
func (s *Server) Fleet() *FleetManager { return s.fleet }

// Get returns a job by ID.
func (s *Server) Get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

package server

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"redcane/internal/obs"
)

// JobStore is the persistence seam of the job manager: everything the
// service durably knows about a job — its manifest (spec + lifecycle
// state) and its result artifacts — moves through this interface, so job
// state is not welded to the local filesystem. The manager additionally
// asks the store for a private per-job working directory; analysis
// checkpoints and scratch state are file-shaped by design (the
// checkpoint package is what makes resume work), so even a memory store
// hands out real directories, it just treats them as disposable.
//
// Two implementations ship: DirStore (the production store, one
// directory per job under <state>/jobs/, exactly the on-disk layout the
// single-tenant server always had) and MemStore (manifests and
// artifacts in process memory, for tests and ephemeral servers).
type JobStore interface {
	// Load returns every persisted job manifest, in no particular
	// order. Corrupt or alien entries are skipped, not fatal.
	Load() ([]jobFile, error)
	// Put durably records one job's manifest, atomically per job. The
	// same ID overwrites.
	Put(jf jobFile) error
	// Dir returns the job's private working directory (checkpoints,
	// scratch), creating it if needed. The directory's base name is the
	// job ID — job executors key their fleet registrations off it.
	Dir(id string) (string, error)
	// PutArtifact persists one named result artifact of a job.
	PutArtifact(id, name string, data []byte) error
	// Artifact reads one artifact back; a missing artifact reports an
	// error wrapping fs.ErrNotExist.
	Artifact(id, name string) ([]byte, error)
}

// DirStore is the directory-backed JobStore: jobs/<id>/job.json beside
// the job's checkpoints and artifacts, under one state root. It is the
// layout `redcane serve` has always used, now behind the store seam.
type DirStore struct {
	root string
	obs  *obs.Obs
}

// NewDirStore opens (creating if needed) a directory store rooted at
// <stateDir>/jobs.
func NewDirStore(stateDir string, o *obs.Obs) (*DirStore, error) {
	if o == nil {
		o = obs.New(obs.Off, nil)
	}
	root := filepath.Join(stateDir, "jobs")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return &DirStore{root: root, obs: o}, nil
}

// Load implements JobStore: every readable jobs/<id>/job.json whose ID
// matches its directory name. Unreadable or corrupt manifests are
// warned about and skipped — one damaged job must not take the whole
// service down.
func (d *DirStore) Load() ([]jobFile, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var out []jobFile
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(d.root, e.Name(), "job.json")
		data, err := os.ReadFile(path)
		if err != nil {
			d.obs.Warn("job manifest unreadable; skipping", obs.F("path", path), obs.F("err", err))
			continue
		}
		var jf jobFile
		if err := json.Unmarshal(data, &jf); err != nil || jf.ID != e.Name() {
			d.obs.Warn("job manifest corrupt; skipping", obs.F("path", path), obs.F("err", err))
			continue
		}
		out = append(out, jf)
	}
	return out, nil
}

// Put implements JobStore (crash-safe: temp + rename).
func (d *DirStore) Put(jf jobFile) error {
	dir := filepath.Join(d.root, jf.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(jf, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "job.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "job.json"))
}

// Dir implements JobStore.
func (d *DirStore) Dir(id string) (string, error) {
	dir := filepath.Join(d.root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// PutArtifact implements JobStore.
func (d *DirStore) PutArtifact(id, name string, data []byte) error {
	return os.WriteFile(filepath.Join(d.root, id, name), data, 0o644)
}

// Artifact implements JobStore.
func (d *DirStore) Artifact(id, name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.root, id, name))
}

// MemStore is the in-memory JobStore: manifests and artifacts live in
// process maps and vanish with the process. Working directories are
// still real (under a scratch root) because checkpoints are files, but
// nothing read back through the store touches them. Tests use it to run
// the full manager without a state directory; it also demonstrates that
// nothing in the manager depends on the dir layout.
type MemStore struct {
	mu        sync.Mutex
	scratch   string // lazily created root for Dir
	manifests map[string]jobFile
	artifacts map[string]map[string][]byte
}

// NewMemStore builds an empty memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		manifests: map[string]jobFile{},
		artifacts: map[string]map[string][]byte{},
	}
}

// Load implements JobStore.
func (m *MemStore) Load() ([]jobFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]jobFile, 0, len(m.manifests))
	for _, jf := range m.manifests {
		out = append(out, jf)
	}
	return out, nil
}

// Put implements JobStore.
func (m *MemStore) Put(jf jobFile) error {
	m.mu.Lock()
	m.manifests[jf.ID] = jf
	m.mu.Unlock()
	return nil
}

// Dir implements JobStore: a scratch directory per job, created under a
// lazily-allocated temp root.
func (m *MemStore) Dir(id string) (string, error) {
	m.mu.Lock()
	if m.scratch == "" {
		root, err := os.MkdirTemp("", "redcane-memstore-")
		if err != nil {
			m.mu.Unlock()
			return "", err
		}
		m.scratch = root
	}
	root := m.scratch
	m.mu.Unlock()
	dir := filepath.Join(root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// PutArtifact implements JobStore.
func (m *MemStore) PutArtifact(id, name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	files, ok := m.artifacts[id]
	if !ok {
		files = map[string][]byte{}
		m.artifacts[id] = files
	}
	files[name] = append([]byte(nil), data...)
	return nil
}

// Artifact implements JobStore.
func (m *MemStore) Artifact(id, name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.artifacts[id][name]
	if !ok {
		return nil, fmt.Errorf("artifact %s/%s: %w", id, name, fs.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a thin typed client of the analysis service's HTTP API, for
// scripted batch submission (`redcane client` is a shell over it). It
// wraps the same wire types the server serves — JobSpec in, JobStatus
// out — so a Go program drives the service without hand-rolled JSON.
type Client struct {
	// Base is the server's base URL, e.g. "http://host:8080".
	Base string
	// Key is the API key sent as Authorization: Bearer on every request;
	// empty for an anonymous (keyless) server.
	Key string
	// HTTP is the underlying client (nil = a 30s-timeout default).
	HTTP *http.Client
}

// NewClient builds a client of the server at base.
func NewClient(base, key string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), Key: key}
}

// APIError is a non-2xx server response: the HTTP status plus the
// server's {"error": ...} message.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Message)
}

// Submit posts one job spec and returns the created job's status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every job's status, in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel cancels one job and returns its resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a finished job's artifact in the given format (""
// means text; see artifactFiles for the accepted keys).
func (c *Client) Result(ctx context.Context, id, format string) ([]byte, error) {
	path := "/v1/jobs/" + id + "/result"
	if format != "" {
		path += "?format=" + format
	}
	return c.raw(ctx, path)
}

// ServerHealth fetches GET /healthz. A draining server answers 503 with
// a valid body, so that status is returned, not treated as an APIError.
func (c *Client) ServerHealth(ctx context.Context) (Health, error) {
	req, err := c.request(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return Health{}, apiError(resp)
	}
	var h Health
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

// Wait polls until the job reaches a terminal state (done, failed,
// cancelled) and returns its final status; poll <= 0 defaults to 500ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) request(ctx context.Context, method, path string, body any) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Key != "" {
		req.Header.Set("Authorization", "Bearer "+c.Key)
	}
	return req, nil
}

// do runs one JSON round-trip: non-2xx responses become *APIError, 2xx
// bodies decode into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	req, err := c.request(ctx, method, path, body)
	if err != nil {
		return err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// raw fetches one endpoint's body verbatim (artifacts, traces).
func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := c.request(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// apiError decodes a non-2xx response into an *APIError, falling back to
// the raw body when it is not the usual {"error": ...} shape.
func apiError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var body struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(data))
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		msg = body.Error
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"redcane/internal/experiments"
	"redcane/internal/obs"
)

// newTestServer builds a server over a temp state dir with a stubbed job
// executor, plus its httptest front-end. Callers must Drain (the helper
// registers that as cleanup).
func newTestServer(t *testing.T, cfg Config, run RunFunc) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	cfg.RunJob = run
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return st, resp
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp.StatusCode
}

// waitState polls a job until it reaches want (fatal on timeout).
func waitState(t *testing.T, ts *httptest.Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.State == want {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return JobStatus{}
}

func instantRun(art Artifacts) RunFunc {
	return func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		return art, nil
	}
}

func TestSubmitStatusAndResult(t *testing.T) {
	art := Artifacts{Text: "hello\n", CSV: []byte("a,b\n1,2\n"), JSON: []byte(`{"x":1}`)}
	_, ts := newTestServer(t, Config{}, instantRun(art))

	st, resp := postJob(t, ts, `{"kind":"group-sweep"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	if st.Spec.Benchmark != "capsnet-mnist-like" {
		t.Fatalf("default benchmark = %q", st.Spec.Benchmark)
	}
	done := waitState(t, ts, st.ID, StateDone)
	if done.Ended.IsZero() || done.Started.IsZero() {
		t.Fatalf("timestamps missing: %+v", done)
	}

	for format, want := range map[string]string{
		"":     art.Text,
		"text": art.Text,
		"csv":  string(art.CSV),
		"json": string(art.JSON),
	} {
		url := ts.URL + "/v1/jobs/" + st.ID + "/result"
		if format != "" {
			url += "?format=" + format
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(data) != want {
			t.Fatalf("result format %q: HTTP %d, body %q", format, resp.StatusCode, data)
		}
	}

	// The list endpoint includes the job; unknown ids and formats fail.
	var all []JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs", &all); code != http.StatusOK || len(all) != 1 || all[0].ID != st.ID {
		t.Fatalf("list: HTTP %d, %+v", code, all)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result?format=xml", nil); code != http.StatusBadRequest {
		t.Fatalf("unknown format: HTTP %d", code)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{}, instantRun(Artifacts{Text: "x"}))
	for _, body := range []string{
		`{"kind":"bogus"}`,
		`{"kind":"group-sweep","benchmark":"nope"}`,
		`{"kind":"group-sweep","bogus_field":1}`,
		`{"kind":"group-sweep","backend":"float"}`,
		`{"kind":"validate","backend":"fpga"}`,
		`{"kind":"validate","bits":99}`,
		`not json`,
	} {
		if _, resp := postJob(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit(%s): HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	// Kind and benchmark are case-insensitive; validate gets defaults.
	st, resp := postJob(t, ts, `{"kind":"VALIDATE","benchmark":"CapsNet-MNIST-Like"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("case-insensitive submit: HTTP %d", resp.StatusCode)
	}
	if st.Spec.Kind != KindValidate || st.Spec.Benchmark != "capsnet-mnist-like" ||
		st.Spec.Backend != "quant-approx" || st.Spec.Bits != 8 {
		t.Fatalf("normalized spec = %+v", st.Spec)
	}
}

func TestQueueSaturationAnd429(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		select {
		case <-release:
			return Artifacts{Text: "ok"}, nil
		case <-ctx.Done():
			return Artifacts{}, ctx.Err()
		}
	}
	_, ts := newTestServer(t, Config{Slots: 1, QueueCap: 2}, blocking)
	defer close(release)

	// One running + two queued fill the server.
	var ids []string
	for i := 0; i < 3; i++ {
		st, resp := postJob(t, ts, `{"kind":"group-sweep"}`)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	waitState(t, ts, ids[0], StateRunning)
	if _, resp := postJob(t, ts, `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: HTTP %d, want 429", resp.StatusCode)
	}
	// Releasing the executor drains the queue FIFO.
	release <- struct{}{}
	release <- struct{}{}
	release <- struct{}{}
	for _, id := range ids {
		waitState(t, ts, id, StateDone)
	}
}

func TestCancelRunningAndQueuedJobs(t *testing.T) {
	started := make(chan struct{}, 1)
	blocking := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		started <- struct{}{}
		<-ctx.Done()
		return Artifacts{}, ctx.Err()
	}
	_, ts := newTestServer(t, Config{Slots: 1}, blocking)

	run, _ := postJob(t, ts, `{"kind":"methodology"}`)
	queued, _ := postJob(t, ts, `{"kind":"methodology"}`)
	<-started

	// Cancelling the queued job is immediate; it never runs.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: HTTP %d", resp.StatusCode)
	}
	if st := waitState(t, ts, queued.ID, StateCancelled); st.Started != (time.Time{}) {
		t.Fatalf("queued job should never have started: %+v", st)
	}

	// Cancelling the running job stops it at the executor's next
	// cancellation point.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+run.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, run.ID, StateCancelled)

	// The cancelled job's result is a 409, and DELETE on a missing job 404s.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+run.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("cancelled result: HTTP %d", code)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: HTTP %d", resp.StatusCode)
	}
}

func TestEventsStreamReplayAndLive(t *testing.T) {
	gate := make(chan struct{})
	run := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		o.Info("phase-one", obs.F("progress", "1/2"))
		<-gate
		o.Info("phase-two", obs.F("progress", "2/2"))
		return Artifacts{Text: "done"}, nil
	}
	_, ts := newTestServer(t, Config{}, run)
	st, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	waitState(t, ts, st.ID, StateRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	readEvent := func() map[string]any {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		return ev
	}
	// Replay covers everything emitted before the subscription...
	var msgs []string
	for {
		ev := readEvent()
		msgs = append(msgs, ev["msg"].(string))
		if ev["msg"] == "phase-one" {
			break
		}
	}
	// ...then the live tail follows, and the stream EOFs with the job.
	close(gate)
	for {
		ev := readEvent()
		msgs = append(msgs, ev["msg"].(string))
		if ev["msg"] == "phase-two" {
			fields := ev["fields"].(map[string]any)
			if fields["progress"] != "2/2" {
				t.Fatalf("phase-two fields = %v", fields)
			}
			break
		}
	}
	for sc.Scan() { // remaining events until the sink closes
	}
	if sc.Err() != nil {
		t.Fatalf("stream error: %v", sc.Err())
	}

	// The progress mirror caught the latest progress field.
	done := waitState(t, ts, st.ID, StateDone)
	if done.Progress != "2/2" {
		t.Fatalf("progress = %q, want 2/2 (events seen: %v)", done.Progress, msgs)
	}
}

func TestHealthzMetricszAndDrain(t *testing.T) {
	blocked := make(chan struct{})
	run := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		o.Counter("server.test.jobs").Add(1)
		select {
		case <-blocked:
			return Artifacts{Text: "ok"}, nil
		case <-ctx.Done():
			return Artifacts{}, ctx.Err()
		}
	}
	state := t.TempDir()
	s, err := New(Config{StateDir: state, RunJob: run})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	st, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	waitState(t, ts, st.ID, StateRunning)

	// Drain: the running job is cancelled and re-queued for the next
	// server over this state dir; admission and health flip to 503; the
	// metrics snapshot lands on disk.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: HTTP %d", code)
	}
	if _, resp := postJob(t, ts, `{"kind":"group-sweep"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: HTTP %d", resp.StatusCode)
	}
	if st := waitState(t, ts, st.ID, StateQueued); st.State != StateQueued {
		t.Fatalf("drained job state = %q", st.State)
	}
	var snap obs.Snapshot
	data, err := os.ReadFile(filepath.Join(state, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot malformed: %v\n%s", err, data)
	}
	if snap.Counters["server.test.jobs"] != 1 {
		t.Fatalf("job metrics not folded into the process registry: %v", snap.Counters)
	}
	// /metricsz serves the same registry.
	var live obs.Snapshot
	if code := getJSON(t, ts.URL+"/metricsz", &live); code != http.StatusOK || live.Counters["server.test.jobs"] != 1 {
		t.Fatalf("metricsz: HTTP %d, %v", code, live.Counters)
	}

	// A second server over the same state dir re-admits the drained job
	// and (with an unblocked executor) finishes it under the same ID.
	close(blocked)
	s2, err := New(Config{StateDir: state, RunJob: run})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s2.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	done := waitState(t, ts2, st.ID, StateDone)
	if done.ID != st.ID {
		t.Fatalf("restart changed the job id: %q vs %q", done.ID, st.ID)
	}
}

func TestRestartPreservesFinishedJobs(t *testing.T) {
	state := t.TempDir()
	s, err := New(Config{StateDir: state, RunJob: instantRun(Artifacts{Text: "payload"})})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	st, _ := postJob(t, ts, `{"kind":"layer-sweep","seed":7}`)
	waitState(t, ts, st.ID, StateDone)
	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{StateDir: state, RunJob: instantRun(Artifacts{})})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer s2.Drain(context.Background()) //nolint:errcheck
	got := waitState(t, ts2, st.ID, StateDone)
	if got.Spec.Seed == nil || *got.Spec.Seed != 7 {
		t.Fatalf("restored spec lost its seed: %+v", got.Spec)
	}
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(data) != "payload" {
		t.Fatalf("restored result: HTTP %d, %q", resp.StatusCode, data)
	}
	// New submissions continue the ID sequence instead of colliding.
	st2, _ := postJob(t, ts2, `{"kind":"group-sweep"}`)
	if st2.ID == st.ID {
		t.Fatalf("restart reused job id %q", st2.ID)
	}
}

func TestFailedJobReports409WithError(t *testing.T) {
	run := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		return Artifacts{}, fmt.Errorf("sweep exploded")
	}
	_, ts := newTestServer(t, Config{}, run)
	st, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	failed := waitState(t, ts, st.ID, StateFailed)
	if !strings.Contains(failed.Error, "sweep exploded") {
		t.Fatalf("error = %q", failed.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !bytes.Contains(data, []byte("sweep exploded")) {
		t.Fatalf("failed result: HTTP %d, %s", resp.StatusCode, data)
	}
}

// TestHTTPGroupSweepMatchesDirectRun is the end-to-end identity check:
// a group-sweep submitted over HTTP must produce byte-identical
// artifacts to the same sweep run directly through the experiment
// runner with the same seed and options.
func TestHTTPGroupSweepMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a quick benchmark")
	}
	b, err := experiments.FindBenchmark("capsnet-mnist-like")
	if err != nil {
		t.Fatal(err)
	}
	direct := experiments.NewRunner(experiments.Config{
		Dir: t.TempDir(), Quick: true, Seed: 42,
	})
	want, err := direct.GroupSweep(b, experiments.Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	wantArt, err := artifactsFor(want)
	if err != nil {
		t.Fatal(err)
	}

	// nil RunJob: the server executes the real experiment path.
	s, err := New(Config{StateDir: t.TempDir(), Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(context.Background()) //nolint:errcheck
	st, resp := postJob(t, ts, `{"kind":"group-sweep","benchmark":"capsnet-mnist-like"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Minute)
	var done JobStatus
	for {
		if time.Now().After(deadline) {
			t.Fatal("group-sweep job never finished")
		}
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &done)
		if done.State == StateDone {
			break
		}
		if done.State == StateFailed {
			t.Fatalf("job failed: %s", done.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
	for format, want := range map[string]string{"text": wantArt.Text, "csv": string(wantArt.CSV)} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: HTTP %d", format, resp.StatusCode)
		}
		if string(got) != want {
			t.Errorf("HTTP %s artifact differs from the direct run:\n--- http ---\n%s\n--- direct ---\n%s",
				format, got, want)
		}
	}
}

package server

import (
	"bufio"
	"context"
	"net/http"
	"testing"
	"time"

	"redcane/internal/obs"
)

// TestSubmitValidationRejectsBadNoiseAndDistributedCombos covers the
// spec-validation bugfixes: negative noise values must bounce with a 400
// instead of being silently dropped by the engine's defaulting, and the
// distributed flag only composes with kinds and knobs that can actually
// travel the fleet.
func TestSubmitValidationRejectsBadNoiseAndDistributedCombos(t *testing.T) {
	_, ts := newTestServer(t, Config{}, instantRun(Artifacts{Text: "x"}))
	for _, body := range []string{
		`{"kind":"group-sweep","na":-0.1}`,
		`{"kind":"layer-sweep","nm_sweep":[0.5,-0.1,0.01]}`,
		`{"kind":"group-sweep","nm_sweep":[-1]}`,
		`{"kind":"validate","distributed":true}`,
		`{"kind":"group-sweep","distributed":true,"probes":true}`,
	} {
		if _, resp := postJob(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit(%s): HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	// The legitimate combinations still land.
	for _, body := range []string{
		`{"kind":"group-sweep","na":0.1,"nm_sweep":[0.5,0.1,0]}`,
		`{"kind":"methodology","distributed":true}`,
	} {
		st, resp := postJob(t, ts, body)
		if resp.StatusCode != http.StatusCreated {
			t.Errorf("submit(%s): HTTP %d, want 201", body, resp.StatusCode)
			continue
		}
		waitState(t, ts, st.ID, StateDone)
	}
}

// TestDrainKeepsRequeuedJobStreamsOpenUntilDrained is the regression
// test for the runJob close bug: a drain-requeued job is still queued,
// so its event stream must NOT end when its goroutine unwinds — only
// when the whole drain completes. (It used to close as soon as the job
// requeued, signalling a terminal state on a job that will run again.)
func TestDrainKeepsRequeuedJobStreamsOpenUntilDrained(t *testing.T) {
	started := make(chan string, 2)
	release := make(chan struct{})
	run := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		started <- spec.Benchmark
		if spec.Seed != nil && *spec.Seed == 2 {
			// Job B ignores the drain until released, keeping the drain
			// in flight after job A has already requeued.
			<-release
			return Artifacts{Text: "ok"}, nil
		}
		<-ctx.Done()
		return Artifacts{}, ctx.Err()
	}
	s, ts := newTestServer(t, Config{Slots: 2}, run)

	a, _ := postJob(t, ts, `{"kind":"group-sweep","seed":1}`)
	b, _ := postJob(t, ts, `{"kind":"group-sweep","seed":2}`)
	<-started
	<-started

	// Stream job A's events; track when the stream ends.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + a.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	streamEnded := make(chan struct{})
	go func() {
		defer close(streamEnded)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
	}()

	// Drain: job A cancels and requeues immediately; job B keeps the
	// drain open until released.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitState(t, ts, a.ID, StateQueued)

	// A is requeued but the drain is still in flight — its subscribers
	// must still be attached. (With the unconditional close this stream
	// had already ended by the time the requeue was visible.)
	select {
	case <-streamEnded:
		t.Fatal("requeued job's event stream ended while the server was still draining")
	case <-time.After(100 * time.Millisecond):
	}

	// Finishing the drain ends the stream, exactly once, for everyone.
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	select {
	case <-streamEnded:
	case <-time.After(5 * time.Second):
		t.Fatal("drain completed but the requeued job's event stream never ended")
	}
	waitState(t, ts, b.ID, StateDone)
}

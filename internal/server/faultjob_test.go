package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"redcane/internal/checkpoint"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

// postRaw submits a job body and returns the status code with the raw
// response body — for asserting on validation error messages.
func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

func TestFaultSweepSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{}, instantRun(Artifacts{Text: "x"}))

	// The unknown-kind error must name every valid kind — including the
	// new fault-sweep — so a user can self-correct from the 400 body.
	code, body := postRaw(t, ts.URL, `{"kind":"bogus"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown kind: HTTP %d", code)
	}
	for _, k := range JobKinds {
		if !strings.Contains(body, k) {
			t.Errorf("unknown-kind 400 %q does not list %q", body, k)
		}
	}

	for _, bad := range []string{
		// Unknown injector kinds and out-of-range word lengths.
		`{"kind":"fault-sweep","fault":"cosmic-ray"}`,
		`{"kind":"fault-sweep","fault_bits":99}`,
		`{"kind":"fault-sweep","fault":"stuck-at-0","fault_bits":4}`,
		// Fault knobs are meaningless on other kinds.
		`{"kind":"group-sweep","fault":"bit-flip"}`,
		`{"kind":"validate","fault_bits":8}`,
		// Negative fault severities (probabilities/fractions) bounce like
		// negative noise magnitudes do.
		`{"kind":"fault-sweep","nm_sweep":[0.01,-0.001]}`,
		// Unknown nonlinearity variants on any kind.
		`{"kind":"group-sweep","softmax":"base3"}`,
		`{"kind":"fault-sweep","squash":"newton"}`,
	} {
		if code, body := postRaw(t, ts.URL, bad); code != http.StatusBadRequest {
			t.Errorf("submit(%s): HTTP %d (%s), want 400", bad, code, body)
		}
	}

	// The bad-injector 400 lists the valid injector kinds.
	if code, body := postRaw(t, ts.URL, `{"kind":"fault-sweep","fault":"cosmic-ray"}`); code != http.StatusBadRequest || !strings.Contains(body, noise.KindStuckAt1) {
		t.Fatalf("bad injector 400 = %d %q, want the valid-kind list", code, body)
	}

	// Normalization: case-insensitive kind, injector defaults, and the
	// "exact" aliases canonicalize to the empty (default) spelling.
	st, resp := postJob(t, ts, `{"kind":"FAULT-SWEEP","fault":"Bit-Flip","softmax":"exact","squash":"exact"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("fault-sweep submit: HTTP %d", resp.StatusCode)
	}
	if st.Spec.Kind != KindFaultSweep || st.Spec.Fault != noise.KindBitFlip || st.Spec.FaultBits != 8 {
		t.Fatalf("normalized spec = %+v", st.Spec)
	}
	if st.Spec.Softmax != "" || st.Spec.Squash != "" {
		t.Fatalf("exact aliases survived normalization: %+v", st.Spec)
	}
	waitState(t, ts, st.ID, StateDone)

	// Approximate variants are accepted on every kind.
	st2, resp2 := postJob(t, ts, `{"kind":"group-sweep","softmax":"base2","squash":"sqnorm"}`)
	if resp2.StatusCode != http.StatusCreated || st2.Spec.Softmax != "base2" || st2.Spec.Squash != "sqnorm" {
		t.Fatalf("nonlinearity submit: HTTP %d, %+v", resp2.StatusCode, st2.Spec)
	}
	waitState(t, ts, st2.ID, StateDone)
}

// faultFleetRunFunc mirrors fleetRunFunc with the job's fault spec folded
// into the fixture options — the same shape runSpec gives FaultSweep,
// minus training.
func faultFleetRunFunc(fm chan *FleetManager) RunFunc {
	return func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		a, err := fleetFixtureAnalyzer()
		if err != nil {
			return Artifacts{}, err
		}
		a.Obs = o
		a.Opts.Noise = noise.Spec{Kind: spec.Fault, Bits: spec.FaultBits}
		if len(spec.NMSweep) > 0 {
			a.Opts.NMSweep = spec.NMSweep
		}
		st, _, err := checkpoint.Open(jobDir, "fleet-fixture", a.Opts.Seed, a.Opts.Fingerprint())
		if err != nil {
			return Artifacts{}, err
		}
		a.Checkpoint = st
		if spec.Distributed {
			m := <-fm
			fm <- m
			a.Fleet = m.ForJob(filepath.Base(jobDir), spec.Benchmark, true, 0)
		}
		clean, err := a.CleanAccuracyCtx(ctx)
		if err != nil {
			return Artifacts{}, err
		}
		groups, err := a.AnalyzeGroups(ctx, clean)
		if err != nil {
			return Artifacts{}, err
		}
		data, err := json.MarshalIndent(groups, "", " ")
		if err != nil {
			return Artifacts{}, err
		}
		return Artifacts{Text: string(data) + "\n"}, nil
	}
}

// TestDistributedFaultSweepByteIdenticalAcrossFleetSizes is the fault
// half of the acceptance criterion: a fault-sweep job with
// distributed:true over 1 and 2 workers matches the single-process run
// byte-for-byte. The worker side resolves purely from the wire options,
// so this also proves the injector spec survives WireSweep.
func TestDistributedFaultSweepByteIdenticalAcrossFleetSizes(t *testing.T) {
	const jobBody = `{"kind":"fault-sweep","fault":"bit-flip","nm_sweep":[0.02,0.005]}`

	// Single-process reference: the same run func, local path.
	fm0 := make(chan *FleetManager, 1)
	s0, ts0 := newTestServer(t, Config{}, faultFleetRunFunc(fm0))
	fm0 <- s0.Fleet()
	st0, resp := postJob(t, ts0, jobBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, ts0, st0.ID, StateDone)
	want := getResult(t, ts0, st0.ID)
	if !strings.Contains(want, "Points") && len(want) < 10 {
		t.Fatalf("implausible baseline artifact: %q", want)
	}

	for _, n := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			fm := make(chan *FleetManager, 1)
			s, ts := newTestServer(t, Config{}, faultFleetRunFunc(fm))
			fm <- s.Fleet()
			for i := 0; i < n; i++ {
				startWorker(t, ts.URL, fmt.Sprintf("fw%d", i+1), fixtureResolve(0))
			}
			st, resp := postJob(t, ts, `{"kind":"fault-sweep","fault":"bit-flip","nm_sweep":[0.02,0.005],"distributed":true}`)
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("submit: HTTP %d", resp.StatusCode)
			}
			waitState(t, ts, st.ID, StateDone)
			if got := getResult(t, ts, st.ID); got != want {
				t.Fatalf("%d-worker fault fleet differs from single-process run:\n%s\nvs\n%s", n, got, want)
			}
		})
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"sort"
	"time"

	"redcane/internal/obs"
)

// This file is the HTTP surface of the analysis service. The API is
// deliberately small and JSON-only:
//
//	POST   /v1/jobs             submit a JobSpec        → 201 JobStatus
//	GET    /v1/jobs             list jobs               → 200 [JobStatus]
//	GET    /v1/jobs/{id}        one job's status        → 200 JobStatus
//	GET    /v1/jobs/{id}/events NDJSON event stream     → 200 (replay + live)
//	GET    /v1/jobs/{id}/result artifact (?format=...)  → 200, 409 until done
//	GET    /v1/jobs/{id}/trace  Chrome trace-event JSON → 200 once written
//	DELETE /v1/jobs/{id}        cancel                  → 200 JobStatus
//	POST   /v1/fleet/lease      worker leases a window  → 200 Lease, 204 idle
//	POST   /v1/fleet/complete   worker reports counts   → 200, 404, 400
//	POST   /v1/fleet/renew      worker heartbeat        → 200, 410 gone
//	POST   /v1/fleet/release    worker returns a lease  → 200 (idempotent)
//	GET    /v1/fleet            fleet / lease state     → 200 FleetStatus
//	GET    /healthz             liveness + queue depth  → 200, 503 draining
//	GET    /metricsz            process metrics snapshot (JSON, or
//	                            Prometheus text with ?format=prom)
//
// Error responses are {"error": "..."} with the usual status mapping:
// 400 invalid spec, 404 unknown job, 409 result not ready, 429 queue
// full / rate or quota exceeded, 503 draining. On a keyed server
// (serve -keys), POST /v1/jobs additionally answers 401 unless the
// request carries a known API key (Authorization: Bearer or X-API-Key).

// JobStatus is the wire form of a job's state, shared by every endpoint
// that returns a job.
type JobStatus struct {
	ID       string    `json:"id"`
	Spec     JobSpec   `json:"spec"`
	State    string    `json:"state"`
	Error    string    `json:"error,omitempty"`
	Tenant   string    `json:"tenant,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Ended    time.Time `json:"ended"`
	Progress string    `json:"progress,omitempty"`
	ETA      string    `json:"eta,omitempty"`
}

// statusLocked snapshots a job's status. Callers hold s.mu.
func statusLocked(j *job) JobStatus {
	return JobStatus{
		ID: j.id, Spec: j.spec, State: j.state, Error: j.errMsg, Tenant: j.tenant,
		Created: j.created, Started: j.started, Ended: j.ended,
		Progress: j.progress, ETA: j.eta,
	}
}

// Status returns one job's status snapshot.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return statusLocked(j), true
}

// Statuses returns every job's status, in submission (ID) order.
func (s *Server) Statuses() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Health is the GET /healthz body: liveness plus the load signals a
// scheduler or dashboard wants without a full metrics scrape.
type Health struct {
	Status     string  `json:"status"` // "ok" or "draining"
	QueueDepth int     `json:"queue_depth"`
	Running    int     `json:"running"`
	Slots      int     `json:"slots"`
	UptimeS    float64 `json:"uptime_s"`
}

// Health snapshots the service's load state.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	return Health{
		Status:     status,
		QueueDepth: len(s.pending),
		Running:    s.running,
		Slots:      s.cfg.Slots,
		UptimeS:    time.Since(s.started).Seconds(),
	}
}

// ServeHTTP implements http.Handler, timing every request into a
// per-route histogram (server.http.<METHOD> <pattern>) so /metricsz can
// report API latency percentiles.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_, pattern := s.handler.mux.Handler(r)
	if pattern == "" {
		pattern = "unmatched"
	}
	t0 := time.Now()
	s.handler.mux.ServeHTTP(w, r)
	s.obs.Metrics().Timer("server.http." + pattern).Observe(time.Since(t0))
}

// serverHandler routes the API onto the manager.
type serverHandler struct {
	s   *Server
	mux *http.ServeMux
}

// maxSpecBytes bounds the POST /v1/jobs body; a JobSpec is a few hundred
// bytes at most.
const maxSpecBytes = 1 << 20

func newHandler(s *Server) *serverHandler {
	h := &serverHandler{s: s, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/jobs", h.submit)
	h.mux.HandleFunc("GET /v1/jobs", h.list)
	h.mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	h.mux.HandleFunc("GET /v1/jobs/{id}/events", h.events)
	h.mux.HandleFunc("GET /v1/jobs/{id}/result", h.result)
	h.mux.HandleFunc("GET /v1/jobs/{id}/trace", h.trace)
	h.mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	h.mux.HandleFunc("POST /v1/fleet/lease", h.fleetLease)
	h.mux.HandleFunc("POST /v1/fleet/complete", h.fleetComplete)
	h.mux.HandleFunc("POST /v1/fleet/renew", h.fleetRenew)
	h.mux.HandleFunc("POST /v1/fleet/release", h.fleetRelease)
	h.mux.HandleFunc("GET /v1/fleet", h.fleetStatus)
	h.mux.HandleFunc("GET /healthz", h.healthz)
	h.mux.HandleFunc("GET /metricsz", h.metricsz)
	return h
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (h *serverHandler) submit(w http.ResponseWriter, r *http.Request) {
	var tenant Tenant
	if h.s.auth != nil {
		t, err := h.s.auth.Authenticate(apiKey(r))
		if err != nil {
			writeErr(w, http.StatusUnauthorized, "%v", err)
			return
		}
		tenant = t
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if err := spec.normalize(); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	j, err := h.s.SubmitAs(spec, tenant)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited), errors.Is(err, ErrTenantQuota):
		writeErr(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st, _ := h.s.Status(j.id)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusCreated, st)
}

func (h *serverHandler) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.s.Statuses())
}

func (h *serverHandler) status(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := h.s.Status(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// events streams a job's telemetry as NDJSON: first the retained
// history, then live events as they happen, ending when the job reaches
// a terminal state (its sink closes) or the client disconnects. The
// SubSink guarantees the replay/live seam is gapless and duplicate-free.
func (h *serverHandler) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := h.s.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	sub := j.events.Subscribe(256)
	defer sub.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	emit := func(line []byte) bool {
		if _, err := w.Write(append(line, '\n')); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	for _, e := range sub.Replay {
		if !emit(encodeEvent(e)) {
			return
		}
	}
	for {
		select {
		case e, live := <-sub.C:
			if !live {
				return
			}
			if !emit(encodeEvent(e)) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// result serves a finished job's artifact. ?format= selects text
// (default), csv or json; formats the job kind does not produce yield
// 404. Until the job reaches a terminal state the endpoint answers 409
// so pollers can distinguish "not yet" from "never".
func (h *serverHandler) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := h.s.Status(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	switch st.State {
	case StateDone:
	case StateFailed:
		writeErr(w, http.StatusConflict, "job %s failed: %s", id, st.Error)
		return
	case StateCancelled:
		writeErr(w, http.StatusConflict, "job %s was cancelled", id)
		return
	default:
		writeErr(w, http.StatusConflict, "job %s is %s; result not ready", id, st.State)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	af, ok := artifactFiles[format]
	if !ok {
		writeErr(w, http.StatusBadRequest,
			"unknown format %q (valid: text, csv, json, probes, probes-csv)", format)
		return
	}
	data, err := h.s.store.Artifact(id, af.name)
	if errors.Is(err, fs.ErrNotExist) {
		writeErr(w, http.StatusNotFound, "job %s has no %s artifact", id, format)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", af.contentType)
	w.WriteHeader(http.StatusOK)
	w.Write(data) //nolint:errcheck // client gone; nothing to do
}

func (h *serverHandler) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !h.s.Cancel(id) {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	st, _ := h.s.Status(id)
	writeJSON(w, http.StatusOK, st)
}

// trace serves a job's execution trace, written when the job run
// unwinds; load it in chrome://tracing or Perfetto.
func (h *serverHandler) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := h.s.Status(id); !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	data, err := h.s.store.Artifact(id, "trace.json")
	if errors.Is(err, fs.ErrNotExist) {
		writeErr(w, http.StatusConflict, "job %s has no trace yet", id)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data) //nolint:errcheck // client gone; nothing to do
}

func (h *serverHandler) healthz(w http.ResponseWriter, r *http.Request) {
	hs := h.s.Health()
	code := http.StatusOK
	if hs.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, hs)
}

// metricsz snapshots the process metrics registry, sampling the runtime
// gauges (goroutines, heap, GC) first. ?format=prom switches from the
// JSON snapshot to Prometheus text exposition for scrapers.
func (h *serverHandler) metricsz(w http.ResponseWriter, r *http.Request) {
	m := h.s.obs.Metrics()
	obs.SampleRuntime(m)
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		m.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	m.Snapshot().WriteJSON(w) //nolint:errcheck // client gone; nothing to do
}

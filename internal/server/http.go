package server

import (
	"net/http"
	"time"
)

// NewHTTPServer wraps a handler in an http.Server with the protocol
// timeouts every listener in this repository must carry. In particular
// ReadHeaderTimeout bounds how long a client may dribble request headers
// (the slowloris hold-open), which the bare http.ListenAndServe default
// of zero leaves unbounded. Write deadlines are deliberately absent: the
// analysis service streams NDJSON events for the lifetime of a job.
//
// The returned server is also the owner's shutdown handle: callers tie
// it to their run context and call Shutdown on exit instead of leaking
// the listener (the CLI uses this for both `serve` and the -pprof
// endpoint).
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"redcane/internal/core"
	"redcane/internal/experiments"
	"redcane/internal/obs"
)

// Worker is the fleet-member side of the lease protocol: it polls a
// coordinator for window leases, evaluates each leased batch window with
// the counter-seeded engine (core.Analyzer.EvalWindow) and reports the
// integer correct-counts back. Long windows stay alive through heartbeat
// renewals at TTL/3; a worker that dies mid-window simply stops renewing
// and the coordinator re-issues the window after the TTL.
type Worker struct {
	// Base is the coordinator's base URL (e.g. "http://host:8080").
	Base string
	// Name identifies the worker in leases, metrics and the fleet status.
	Name string
	// Poll is the idle sleep between lease requests when the coordinator
	// has no work (0 = 500ms).
	Poll time.Duration
	// Client is the HTTP client (nil = a 30s-timeout default).
	Client *http.Client
	// Obs receives the worker's telemetry; nil disables it.
	Obs *obs.Obs
	// Resolve builds the analyzer that evaluates one sweep's windows:
	// network, dataset and the wire options. The default
	// (ExperimentResolver) trains or cache-loads the named benchmark; in-
	// process tests substitute synthetic fixtures. Resolvers are called
	// once per lease; cache the expensive parts across calls.
	Resolve func(ws WireSweep) (*core.Analyzer, error)

	// bad remembers sweeps this worker cannot run (resolve failure, grid
	// mismatch) so it reports each once and leaves their windows to
	// healthier fleet members instead of spinning on them.
	bad map[string]bool
}

// Run polls for leases until ctx is cancelled, which is the normal way a
// worker leaves the fleet; it returns ctx's error. In-flight windows are
// abandoned on cancellation — their leases expire and the coordinator
// re-issues them.
func (wk *Worker) Run(ctx context.Context) error {
	if wk.Name == "" {
		wk.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if wk.Poll <= 0 {
		wk.Poll = 500 * time.Millisecond
	}
	if wk.Client == nil {
		wk.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if wk.bad == nil {
		wk.bad = map[string]bool{}
	}
	o := wk.Obs
	o.Info("worker joined fleet", obs.F("coordinator", wk.Base), obs.F("name", wk.Name))
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, ok, err := wk.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			o.Warn("lease request failed", obs.F("err", err))
			ok = false
		}
		if ok {
			// A lease this worker had to give back (bad sweep, eval
			// failure) counts as no work: back off by the poll interval so
			// a broken worker does not spin hot re-leasing the windows it
			// keeps releasing.
			ok = wk.runLease(ctx, lease)
		}
		if !ok {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wk.Poll):
			}
		}
	}
}

// runLease evaluates one leased window and reports its counts. A window
// this worker knows it cannot (or failed to) evaluate is released back
// to the coordinator so a healthier fleet member picks it up immediately
// — only a crash leaves a lease to die of TTL expiry, which is the
// protocol's recovery of last resort.
func (wk *Worker) runLease(ctx context.Context, lease Lease) bool {
	o := wk.Obs
	ws := lease.Sweep
	if wk.bad[ws.ID] {
		// Known-bad sweep (reported once already). The coordinator still
		// hands its windows to whoever polls, so give each one straight
		// back — a worker that merely abandoned them would serially lease
		// every window and leave each dead until its TTL.
		wk.release(ctx, lease)
		return false
	}
	a, err := wk.Resolve(ws)
	if err == nil {
		evals, nb := a.SweepGrid()
		if evals != ws.Evals || nb != ws.NB {
			err = fmt.Errorf("work grid mismatch: coordinator says %d evals × %d batches, this worker derives %d × %d",
				ws.Evals, ws.NB, evals, nb)
		}
	}
	if err != nil {
		wk.bad[ws.ID] = true
		o.Error("cannot run sweep; releasing its windows to the fleet",
			obs.F("sweep", ws.ID), obs.F("err", err))
		wk.release(ctx, lease)
		return false
	}

	// Heartbeat: renew at TTL/3 so a healthy worker never loses a long
	// window to expiry. A failed renewal (lease re-issued after a stall)
	// aborts the evaluation — the replacement worker owns the window now.
	wctx, cancel := context.WithCancel(ctx)
	var hb sync.WaitGroup
	ttl := time.Duration(lease.TTLMs) * time.Millisecond
	if ttl > 0 {
		hb.Add(1)
		go func() {
			defer hb.Done()
			tick := time.NewTicker(ttl / 3)
			defer tick.Stop()
			for {
				select {
				case <-wctx.Done():
					return
				case <-tick.C:
					if !wk.renew(wctx, lease.LeaseID) {
						o.Warn("lease renewal refused; abandoning window",
							obs.F("lease", lease.LeaseID),
							obs.F("window", fmt.Sprintf("[%d,%d)", lease.B0, lease.B1)))
						cancel()
						return
					}
				}
			}
		}()
	}

	t0 := time.Now()
	correct, err := a.EvalWindow(wctx, ws.Scope, ws.SeedBase, lease.B0, lease.B1)
	cancel()
	hb.Wait()
	if err != nil {
		if ctx.Err() == nil && wctx.Err() == nil {
			o.Error("window evaluation failed; releasing it",
				obs.F("sweep", ws.ID),
				obs.F("window", fmt.Sprintf("[%d,%d)", lease.B0, lease.B1)), obs.F("err", err))
			wk.release(ctx, lease)
		}
		return false
	}
	o.Metrics().Counter("fleet.worker.windows").Inc()
	o.Metrics().Timer("fleet.worker.window").Observe(time.Since(t0))
	o.Debug("window complete", obs.F("sweep", ws.ID),
		obs.F("window", fmt.Sprintf("[%d,%d)", lease.B0, lease.B1)),
		obs.F("dur", time.Since(t0).Round(time.Millisecond)))
	wk.complete(ctx, lease, correct)
	return true
}

// lease requests the next window; ok=false means no work right now.
func (wk *Worker) lease(ctx context.Context) (Lease, bool, error) {
	var lease Lease
	code, err := wk.post(ctx, "/v1/fleet/lease", leaseRequest{Worker: wk.Name}, &lease)
	if err != nil {
		return Lease{}, false, err
	}
	switch code {
	case http.StatusOK:
		return lease, true, nil
	case http.StatusNoContent:
		return Lease{}, false, nil
	default:
		return Lease{}, false, fmt.Errorf("lease request: HTTP %d", code)
	}
}

// renew extends the lease; false means it is gone and the window must be
// abandoned.
func (wk *Worker) renew(ctx context.Context, leaseID string) bool {
	code, err := wk.post(ctx, "/v1/fleet/renew", renewRequest{LeaseID: leaseID, Worker: wk.Name}, nil)
	if err != nil {
		// Transient coordinator unreachability: keep computing; the next
		// tick retries and the TTL still has 2/3 of its budget left.
		return ctx.Err() == nil
	}
	return code == http.StatusOK
}

// complete reports a window's counts. A 404 means the sweep is no longer
// tracked (job finished or cancelled) — the result is dropped, which is
// fine: whoever completed the sweep reported identical counts.
func (wk *Worker) complete(ctx context.Context, lease Lease, correct []int) {
	req := completeRequest{
		LeaseID: lease.LeaseID, Worker: wk.Name, SweepID: lease.Sweep.ID,
		B0: lease.B0, B1: lease.B1, Correct: correct,
	}
	code, err := wk.post(ctx, "/v1/fleet/complete", req, nil)
	if err != nil {
		wk.Obs.Warn("completion report failed; window will be re-issued",
			obs.F("sweep", lease.Sweep.ID), obs.F("err", err))
		return
	}
	if code != http.StatusOK && code != http.StatusNotFound {
		wk.Obs.Warn("completion rejected", obs.F("sweep", lease.Sweep.ID), obs.F("http", code))
	}
}

// release hands a lease back to the coordinator so its window returns to
// pending without waiting out the TTL. Best-effort: on any failure the
// TTL remains the backstop.
func (wk *Worker) release(ctx context.Context, lease Lease) {
	if ctx.Err() != nil {
		return
	}
	req := releaseRequest{LeaseID: lease.LeaseID, Worker: wk.Name}
	if _, err := wk.post(ctx, "/v1/fleet/release", req, nil); err != nil {
		wk.Obs.Warn("lease release failed; window waits out its TTL",
			obs.F("sweep", lease.Sweep.ID), obs.F("err", err))
	}
}

// post sends one JSON request and decodes a 200 response into out (when
// non-nil). Returns the HTTP status code.
func (wk *Worker) post(ctx context.Context, path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.Base+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := wk.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return resp.StatusCode, nil
}

// ExperimentResolver is the production Resolve: it rebuilds the sweep's
// trained benchmark through the experiment runner — training is
// goroutine-free and therefore deterministic, so every fleet member
// reproduces bit-identical weights from (benchmark, quick, train seed),
// or loads them from a shared weight-cache dir — and pairs it with the
// wire options. Resolved benchmarks are cached across leases.
func ExperimentResolver(dir string, quickOverride *bool, workers int, o *obs.Obs) func(WireSweep) (*core.Analyzer, error) {
	type trainedKey struct {
		benchmark string
		quick     bool
		seed      uint64
	}
	var mu sync.Mutex
	cache := map[trainedKey]*experiments.Trained{}
	return func(ws WireSweep) (*core.Analyzer, error) {
		b, err := experiments.FindBenchmark(ws.Benchmark)
		if err != nil {
			return nil, err
		}
		quick := ws.Quick
		if quickOverride != nil {
			quick = *quickOverride
			if quick != ws.Quick {
				return nil, fmt.Errorf("mode mismatch: coordinator runs %s, worker forced to %s",
					modeName(ws.Quick), modeName(quick))
			}
		}
		key := trainedKey{benchmark: b.Key(), quick: quick, seed: ws.TrainSeed}
		mu.Lock()
		t, ok := cache[key]
		mu.Unlock()
		if !ok {
			r := experiments.NewRunner(experiments.Config{
				Dir: dir, Quick: quick, Seed: ws.TrainSeed, Workers: workers, Obs: o,
			})
			t, err = r.Trained(b)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			cache[key] = t
			mu.Unlock()
		}
		return &core.Analyzer{
			Net: t.Net, Data: t.Data, Obs: o,
			Opts: ws.Options.CoreOptions(workers),
		}, nil
	}
}

func modeName(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

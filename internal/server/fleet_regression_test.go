package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"redcane/internal/core"
)

// ---- Completion count validation (protocol hardening) ----

// boundedWireSweep is a wire sweep with enough shape for the coordinator
// to bound honest counts: Batch=10, Examples=12, NB=2 — so window [0,1)
// holds 10 examples and the tail window [1,2) only 2.
func boundedWireSweep(id string) WireSweep {
	ws := testWireSweep(id, 1, 2)
	ws.Options.Batch = 10
	ws.Examples = 12
	return ws
}

func TestFleetCompleteRejectsOutOfRangeCounts(t *testing.T) {
	m, _, o := testFleetManager(time.Minute)
	ch, err := m.runSweep(context.Background(), boundedWireSweep("j1/s1"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A count above the window's example capacity cannot come from an
	// honest evaluation; it must be rejected before it reaches the fold.
	if _, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 0, B1: 1, Correct: []int{11}}); err == nil {
		t.Fatal("count above the full-batch bound accepted")
	}
	// The tail window holds Examples - B0*Batch = 2 examples, not Batch.
	if _, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 1, B1: 2, Correct: []int{3}}); err == nil {
		t.Fatal("count above the tail-window bound accepted")
	}
	// Negative counts are impossible regardless of batch shape.
	if _, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 0, B1: 1, Correct: []int{-1}}); err == nil {
		t.Fatal("negative count accepted")
	}
	if v := o.Metrics().Counter("fleet.completions.out_of_range").Value(); v != 3 {
		t.Fatalf("out_of_range counter = %d, want 3", v)
	}

	// Nothing was folded and the windows stay pending: honest completions
	// still land afterwards.
	select {
	case r := <-ch:
		t.Fatalf("rejected completion reached the fold: %+v", r)
	default:
	}
	if st := m.Status(); st.WindowsPending != 2 {
		t.Fatalf("status after rejections = %+v", st)
	}
	for _, c := range []completeRequest{
		{SweepID: "j1/s1", B0: 0, B1: 1, Correct: []int{10}},
		{SweepID: "j1/s1", B0: 1, B1: 2, Correct: []int{2}},
	} {
		if status, err := m.Complete(c); err != nil || status != CompleteOK {
			t.Fatalf("honest complete [%d,%d): %q, %v", c.B0, c.B1, status, err)
		}
	}
	n := 0
	for range ch {
		n++
	}
	if n != 2 {
		t.Fatalf("folded %d windows, want 2", n)
	}

	// Sweeps registered without a batch size (pre-existing wire shape)
	// keep the legacy behavior: no upper bound, negatives still rejected.
	ch2, err := m.runSweep(context.Background(), testWireSweep("j1/legacy", 1, 1), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Complete(completeRequest{SweepID: "j1/legacy", B0: 0, B1: 1, Correct: []int{-2}}); err == nil {
		t.Fatal("negative count accepted on a batchless sweep")
	}
	if status, err := m.Complete(completeRequest{SweepID: "j1/legacy", B0: 0, B1: 1, Correct: []int{999}}); err != nil || status != CompleteOK {
		t.Fatalf("batchless complete: %q, %v", status, err)
	}
	for range ch2 {
	}
}

func TestFleetCompleteOutOfRangeHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{}, instantRun(Artifacts{Text: "x"}))
	ch, err := s.Fleet().runSweep(context.Background(), boundedWireSweep("j1/s1"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/fleet/complete", "application/json",
		strings.NewReader(`{"sweep_id":"j1/s1","b0":0,"b1":1,"correct":[100]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range completion: HTTP %d, want 400", resp.StatusCode)
	}
	select {
	case r := <-ch:
		t.Fatalf("rejected completion reached the fold: %+v", r)
	default:
	}
}

// ---- Lease release ----

func TestFleetReleaseIdempotent(t *testing.T) {
	m, _, o := testFleetManager(time.Hour)
	ch, err := m.runSweep(context.Background(), testWireSweep("j1/s1", 1, 2), 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	l1, ok := m.Lease("w1")
	if !ok {
		t.Fatal("lease refused")
	}
	if !m.Release(l1.LeaseID, "w1") {
		t.Fatal("live lease refused release")
	}
	// The window is pending again immediately — no TTL wait — and goes to
	// the next worker. (The hour-long TTL guarantees this test would hang
	// on expiry-based reclamation.)
	l2, ok := m.Lease("w2")
	if !ok || l2.B0 != l1.B0 {
		t.Fatalf("released window not re-leased: %+v, %v", l2, ok)
	}
	// Releasing the stale lease again changes nothing for w2's lease.
	if m.Release(l1.LeaseID, "w1") {
		t.Fatal("stale release reported success")
	}
	if m.Renew(l2.LeaseID, "w2") != true {
		t.Fatal("current lease broken by a stale release")
	}
	// A completed window's lease cannot be released either.
	if status, err := m.Complete(completeRequest{LeaseID: l2.LeaseID, Worker: "w2", SweepID: "j1/s1", B0: l2.B0, B1: l2.B1, Correct: []int{1}}); err != nil || status != CompleteOK {
		t.Fatalf("complete: %q, %v", status, err)
	}
	if m.Release(l2.LeaseID, "w2") {
		t.Fatal("completed window released")
	}
	if m.Release("L999999", "w9") {
		t.Fatal("unknown lease released")
	}
	if v := o.Metrics().Counter("fleet.leases.released").Value(); v != 1 {
		t.Fatalf("released counter = %d, want 1", v)
	}

	if status, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 1, B1: 2, Correct: []int{1}}); err != nil || status != CompleteOK {
		t.Fatalf("second window: %q, %v", status, err)
	}
	for range ch {
	}
}

func TestFleetReleaseHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{}, instantRun(Artifacts{Text: "x"}))
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/fleet/release", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode, out.Status
	}

	// Release is advisory: an unknown lease is still a 200, just "unknown".
	if code, status := post(`{"lease_id":"L000001","worker":"w1"}`); code != http.StatusOK || status != "unknown" {
		t.Fatalf("unknown release: HTTP %d, status %q", code, status)
	}

	ch, err := s.Fleet().runSweep(context.Background(), testWireSweep("j1/s1", 1, 1), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := s.Fleet().Lease("w1")
	if !ok {
		t.Fatal("lease refused")
	}
	if code, status := post(fmt.Sprintf(`{"lease_id":%q,"worker":"w1"}`, l.LeaseID)); code != http.StatusOK || status != "released" {
		t.Fatalf("release: HTTP %d, status %q", code, status)
	}
	if _, err := s.Fleet().Complete(completeRequest{SweepID: "j1/s1", B0: 0, B1: 1, Correct: []int{1}}); err != nil {
		t.Fatal(err)
	}
	for range ch {
	}
}

// TestBrokenWorkerReleasesWindows is the satellite regression: a fleet of
// one broken worker (its Resolve always fails) and one healthy worker
// must finish a distributed job promptly. The hour-long lease TTL makes
// the test hang unless the broken worker actively hands its windows back
// instead of letting them expire.
func TestBrokenWorkerReleasesWindows(t *testing.T) {
	want := fleetBaseline(t)
	fm := make(chan *FleetManager, 1)
	s, ts := newTestServer(t, Config{LeaseTTL: time.Hour}, fleetRunFunc(fm))
	fm <- s.Fleet()

	startWorker(t, ts.URL, "broken", func(ws WireSweep) (*core.Analyzer, error) {
		return nil, errors.New("synthetic resolve failure")
	})
	startWorker(t, ts.URL, "healthy", fixtureResolve(0))

	st, resp := postJob(t, ts, `{"kind":"group-sweep","distributed":true}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, StateDone)
	if got := getResult(t, ts, st.ID); got != want {
		t.Fatalf("mixed-fleet run differs from single-process run:\n%s\nvs\n%s", got, want)
	}
}

// ---- Cancelled-sweep re-registration (drain-requeue race) ----

// TestFleetCancelledSweepReRegisters pins the drain-requeue fix: a job
// whose context was cancelled re-registers the same sweep ID immediately
// and deterministically, without waiting for the old registration's
// teardown goroutine to run.
func TestFleetCancelledSweepReRegisters(t *testing.T) {
	m, _, _ := testFleetManager(time.Minute)
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		old, err := m.runSweep(ctx, testWireSweep("j1/s1", 1, 2), 0, 1)
		if err != nil {
			t.Fatalf("iter %d: register: %v", i, err)
		}
		cancel()
		// No settling: the re-registration must win the race against the
		// teardown goroutine every time.
		fresh, err := m.runSweep(context.Background(), testWireSweep("j1/s1", 1, 2), 0, 1)
		if err != nil {
			t.Fatalf("iter %d: re-register after cancel: %v", i, err)
		}
		// The replaced registration's channel closes (synchronously, in
		// runSweep) and the fresh one is live.
		select {
		case _, open := <-old:
			if open {
				t.Fatalf("iter %d: dead sweep delivered a result", i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("iter %d: dead sweep's channel never closed", i)
		}
		for b0 := 0; b0 < 2; b0++ {
			if status, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: b0, B1: b0 + 1, Correct: []int{1}}); err != nil || status != CompleteOK {
				t.Fatalf("iter %d: complete window %d: %q, %v", i, b0, status, err)
			}
		}
		for range fresh {
		}
	}
	// A live registration is still protected against duplicates.
	ch, err := m.runSweep(context.Background(), testWireSweep("j1/s1", 1, 1), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.runSweep(context.Background(), testWireSweep("j1/s1", 1, 1), 0, 1); err == nil {
		t.Fatal("live duplicate registration accepted")
	}
	if _, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 0, B1: 1, Correct: []int{1}}); err != nil {
		t.Fatal(err)
	}
	for range ch {
	}
}

// ---- Worker-state bounds ----

func TestFleetWorkerStatePruning(t *testing.T) {
	m, fc, _ := testFleetManager(time.Second)
	m.Lease("old-worker") // no work, but liveness is recorded
	fc.Advance(5 * time.Second)
	m.Lease("new-worker")

	st := m.Status()
	if _, ok := st.Workers["old-worker"]; !ok {
		t.Fatalf("worker pruned before %d TTLs: %+v", workerPruneTTLs, st.Workers)
	}
	// Past workerPruneTTLs lease lifetimes without contact, the worker has
	// left the fleet and its entry is dropped.
	fc.Advance(time.Duration(workerPruneTTLs) * time.Second)
	st = m.Status()
	if _, ok := st.Workers["old-worker"]; ok {
		t.Fatalf("stale worker still tracked: %+v", st.Workers)
	}
	if _, ok := st.Workers["new-worker"]; !ok {
		t.Fatalf("live worker pruned: %+v", st.Workers)
	}
}

func TestFleetWorkerTableBounded(t *testing.T) {
	m, fc, _ := testFleetManager(time.Hour)
	for i := 0; i < maxTrackedWorkers+10; i++ {
		m.Lease(fmt.Sprintf("w%04d", i))
		fc.Advance(time.Millisecond) // distinct last-seen times, far under the prune cutoff
	}
	st := m.Status()
	if len(st.Workers) != maxTrackedWorkers {
		t.Fatalf("worker table holds %d entries, cap is %d", len(st.Workers), maxTrackedWorkers)
	}
	// The earliest arrivals were evicted to make room; the newest stayed.
	if _, ok := st.Workers["w0000"]; ok {
		t.Fatal("oldest worker survived eviction")
	}
	if _, ok := st.Workers[fmt.Sprintf("w%04d", maxTrackedWorkers+9)]; !ok {
		t.Fatal("newest worker missing from the table")
	}
}

func TestFleetWorkerSeriesCapAndSanitization(t *testing.T) {
	nWorkers := maxWorkerSeries + 6
	m, _, o := testFleetManager(time.Minute)
	ch, err := m.runSweep(context.Background(), testWireSweep("j1/s1", 1, nWorkers), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every window is leased and completed by a distinct worker; one has a
	// hostile name that must be sanitized in the metric series.
	for i := 0; i < nWorkers; i++ {
		name := fmt.Sprintf("w%04d", i)
		if i == 0 {
			name = "w spa/ce{0}"
		}
		l, ok := m.Lease(name)
		if !ok {
			t.Fatalf("lease %d refused", i)
		}
		if status, err := m.Complete(completeRequest{
			LeaseID: l.LeaseID, Worker: name, SweepID: "j1/s1",
			B0: l.B0, B1: l.B1, Correct: []int{1},
		}); err != nil || status != CompleteOK {
			t.Fatalf("complete %d: %q, %v", i, status, err)
		}
	}
	for range ch {
	}

	snap := o.Metrics().Snapshot()
	perWorker := 0
	for name := range snap.Timers {
		if strings.HasPrefix(name, "fleet.worker.") {
			perWorker++
			if strings.ContainsAny(name[len("fleet.worker."):], " /{}") {
				t.Fatalf("unsanitized worker series %q", name)
			}
		}
	}
	if perWorker != maxWorkerSeries {
		t.Fatalf("per-worker series = %d, cap is %d", perWorker, maxWorkerSeries)
	}
	if _, ok := snap.Timers["fleet.worker.w_spa_ce_0_.window"]; !ok {
		t.Fatalf("sanitized series missing; timers = %v", snap.Timers)
	}
	// The fleet-wide window timer saw every completion, capped or not.
	if ws, ok := snap.Timers["fleet.window"]; !ok || ws.Count != int64(nWorkers) {
		t.Fatalf("fleet.window count = %+v, want %d observations", ws, nWorkers)
	}
}

package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"redcane/internal/obs"
)

func TestHealthzBody(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		select {
		case <-release:
			return Artifacts{Text: "ok"}, nil
		case <-ctx.Done():
			return Artifacts{}, ctx.Err()
		}
	}
	s, err := New(Config{StateDir: t.TempDir(), Slots: 1, QueueCap: 4, RunJob: blocking})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	var h Health
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if h.Status != "ok" || h.Slots != 1 || h.Running != 0 || h.QueueDepth != 0 {
		t.Fatalf("idle health = %+v", h)
	}
	if h.UptimeS < 0 {
		t.Fatalf("uptime_s = %g", h.UptimeS)
	}

	// One running job plus one queued behind the single slot.
	first, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	queued, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	waitState(t, ts, first.ID, StateRunning)
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz under load: HTTP %d", code)
	}
	if h.Running != 1 || h.QueueDepth != 1 {
		t.Fatalf("loaded health = %+v", h)
	}

	close(release)
	waitState(t, ts, queued.ID, StateDone)

	// Draining flips the status string along with the 503.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz drained: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("drained status = %q", h.Status)
	}
}

func TestMetricszPrometheus(t *testing.T) {
	_, ts := newTestServer(t, Config{}, instantRun(Artifacts{Text: "ok"}))

	// Generate some per-route latency observations first.
	getJSON(t, ts.URL+"/healthz", nil)
	st, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metricsz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz prom: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)

	// Every non-comment line must be `name[{labels}] value` with a legal
	// metric name — the minimal well-formedness contract scrapers rely on.
	nameOK := func(name string) bool {
		for i, c := range name {
			ok := c == '_' || c == ':' ||
				c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
				c >= '0' && c <= '9' && i > 0
			if !ok {
				return false
			}
		}
		return name != ""
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		name := line[:i]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated label set %q", ln+1, line)
			}
			name = name[:j]
		}
		if !nameOK(name) {
			t.Fatalf("line %d: invalid metric name %q", ln+1, name)
		}
	}

	for _, want := range []string{
		"# TYPE runtime_goroutines gauge",
		"# TYPE server_job_run_seconds histogram",
		"server_job_run_seconds_bucket{le=\"+Inf\"}",
		"server_job_run_seconds_sum",
		"server_job_run_seconds_count",
		"server_http_GET__healthz_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, text)
		}
	}
}

func TestJobTraceEndpoint(t *testing.T) {
	release := make(chan struct{})
	run := func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		sp := o.StartSpan("stub.work")
		defer sp.End()
		select {
		case <-release:
			return Artifacts{Text: "ok"}, nil
		case <-ctx.Done():
			return Artifacts{}, ctx.Err()
		}
	}
	_, ts := newTestServer(t, Config{}, run)

	if code := getJSON(t, ts.URL+"/v1/jobs/nope/trace", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job trace: HTTP %d", code)
	}

	st, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	waitState(t, ts, st.ID, StateRunning)
	// The trace file lands when the run unwinds, not before.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/trace", nil); code != http.StatusConflict {
		t.Fatalf("trace before completion: HTTP %d", code)
	}
	close(release)
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event ph = %q, want X", ev.Ph)
		}
		if ev.Name == "stub.work" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stub span missing from trace: %+v", doc.TraceEvents)
	}
}

func TestProbesArtifactFormat(t *testing.T) {
	probesJSON := []byte(`{"sweeps":[{"label":"groups/mac","backend":"float"}]}`)
	art := Artifacts{
		Text:       "ok\n",
		ProbesCSV:  []byte("sweep,backend\ngroups/mac,float\n"),
		ProbesJSON: probesJSON,
	}
	_, ts := newTestServer(t, Config{}, instantRun(art))
	st, _ := postJob(t, ts, `{"kind":"group-sweep","probes":true}`)
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=probes")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(data) != string(probesJSON) {
		t.Fatalf("probes artifact: HTTP %d, body %q", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("probes Content-Type = %q", ct)
	}

	// The CSV twin the README documents is served as probes-csv.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=probes-csv")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(data) != string(art.ProbesCSV) {
		t.Fatalf("probes-csv artifact: HTTP %d, body %q", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Fatalf("probes-csv Content-Type = %q", ct)
	}

	// A job that did not record probes 404s for both formats instead of
	// serving an empty body.
	_, ts2 := newTestServer(t, Config{}, instantRun(Artifacts{Text: "ok\n"}))
	st2, _ := postJob(t, ts2, `{"kind":"group-sweep"}`)
	waitState(t, ts2, st2.ID, StateDone)
	for _, format := range []string{"probes", "probes-csv"} {
		if code := getJSON(t, ts2.URL+"/v1/jobs/"+st2.ID+"/result?format="+format, nil); code != http.StatusNotFound {
			t.Fatalf("missing %s artifact: HTTP %d", format, code)
		}
	}
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redcane/internal/checkpoint"
	"redcane/internal/core"
	"redcane/internal/datasets"
	"redcane/internal/models"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

// ---- FleetManager unit tests (fake clock) ----

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testFleetManager(ttl time.Duration) (*FleetManager, *fakeClock, *obs.Obs) {
	o := obs.New(obs.Off, nil)
	m := NewFleetManager(o, ttl)
	fc := &fakeClock{t: time.Unix(1000, 0)}
	m.now = fc.Now
	return m, fc, o
}

func testWireSweep(id string, evals, nb int) WireSweep {
	return WireSweep{
		ID: id, JobID: "j000001", SeedBase: 100,
		Scope: core.SweepScope{Group: noise.MACOutputs.String()},
		Evals: evals, NB: nb,
	}
}

func counts(evals, b0 int) []int {
	out := make([]int, evals)
	for i := range out {
		out[i] = b0*10 + i // distinct per (window, eval): fold mix-ups show
	}
	return out
}

func TestFleetManagerLeaseCompleteLifecycle(t *testing.T) {
	m, _, _ := testFleetManager(time.Minute)
	ch, err := m.runSweep(context.Background(), testWireSweep("j1/s1", 2, 3), 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	var leases []Lease
	for i := 0; i < 3; i++ {
		l, ok := m.Lease("w1")
		if !ok {
			t.Fatalf("lease %d refused", i)
		}
		if l.B0 != i || l.B1 != i+1 || l.Sweep.ID != "j1/s1" {
			t.Fatalf("lease %d = %+v", i, l)
		}
		leases = append(leases, l)
	}
	if _, ok := m.Lease("w1"); ok {
		t.Fatal("lease issued with every window already leased")
	}
	st := m.Status()
	if st.Sweeps != 1 || st.WindowsLeased != 3 || st.WindowsPending != 0 {
		t.Fatalf("status = %+v", st)
	}

	for _, l := range leases {
		status, err := m.Complete(completeRequest{
			LeaseID: l.LeaseID, Worker: "w1", SweepID: l.Sweep.ID,
			B0: l.B0, B1: l.B1, Correct: counts(2, l.B0),
		})
		if err != nil || status != CompleteOK {
			t.Fatalf("complete [%d,%d): %q, %v", l.B0, l.B1, status, err)
		}
	}

	got := map[int]core.WindowResult{}
	for r := range ch { // closes once the last window completes
		got[r.B0] = r
	}
	if len(got) != 3 {
		t.Fatalf("folded %d windows, want 3", len(got))
	}
	for b0 := 0; b0 < 3; b0++ {
		r := got[b0]
		want := counts(2, b0)
		if r.B1 != b0+1 || len(r.Correct) != 2 || r.Correct[0] != want[0] || r.Correct[1] != want[1] {
			t.Fatalf("window %d result = %+v", b0, r)
		}
	}

	// The finished sweep is gone: completions 404 and the fleet idles.
	if _, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 0, B1: 1, Correct: counts(2, 0)}); err != errUnknownSweep {
		t.Fatalf("complete after finish: %v", err)
	}
	if st := m.Status(); st.Sweeps != 0 {
		t.Fatalf("status after finish = %+v", st)
	}
}

func TestFleetManagerDuplicateAndUnleasedCompletions(t *testing.T) {
	m, _, o := testFleetManager(time.Minute)
	ch, err := m.runSweep(context.Background(), testWireSweep("j1/s1", 1, 2), 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A completion needs no lease: window counts are deterministic, so
	// whoever computed them is welcome.
	req := completeRequest{Worker: "w1", SweepID: "j1/s1", B0: 0, B1: 1, Correct: []int{7}}
	if status, err := m.Complete(req); err != nil || status != CompleteOK {
		t.Fatalf("unleased complete: %q, %v", status, err)
	}
	// A second completion of a done window is a duplicate, dropped
	// without a second fold.
	if status, err := m.Complete(req); err != nil || status != CompleteDuplicate {
		t.Fatalf("duplicate complete: %q, %v", status, err)
	}
	if v := o.Metrics().Counter("fleet.leases.duplicate").Value(); v != 1 {
		t.Fatalf("duplicate counter = %d", v)
	}

	// Malformed completions are rejected: wrong count width, bogus window.
	if _, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 1, B1: 2, Correct: []int{1, 2}}); err == nil {
		t.Fatal("wrong-width completion accepted")
	}
	if _, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 5, B1: 6, Correct: []int{1}}); err == nil {
		t.Fatal("unknown-window completion accepted")
	}

	if status, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 1, B1: 2, Correct: []int{9}}); err != nil || status != CompleteOK {
		t.Fatalf("second window: %q, %v", status, err)
	}
	n := 0
	for range ch {
		n++
	}
	if n != 2 {
		t.Fatalf("channel delivered %d results, want 2 (the duplicate folded)", n)
	}
}

func TestFleetManagerExpiryReissueAndLateCompletion(t *testing.T) {
	m, fc, o := testFleetManager(time.Second)
	if _, err := m.runSweep(context.Background(), testWireSweep("j1/s1", 1, 2), 0, 1); err != nil {
		t.Fatal(err)
	}

	l1, ok := m.Lease("w1")
	if !ok || l1.B0 != 0 {
		t.Fatalf("first lease = %+v, %v", l1, ok)
	}
	// Within the TTL the window stays with w1; w2 gets the next one.
	l2, ok := m.Lease("w2")
	if !ok || l2.B0 != 1 {
		t.Fatalf("second lease = %+v, %v", l2, ok)
	}

	// w1 dies: its lease outlives the TTL and the window is re-issued.
	fc.Advance(1500 * time.Millisecond)
	l3, ok := m.Lease("w3")
	if !ok || l3.B0 != 0 || l3.LeaseID == l1.LeaseID {
		t.Fatalf("re-issued lease = %+v, %v (original %+v)", l3, ok, l1)
	}
	if v := o.Metrics().Counter("fleet.leases.expired").Value(); v < 1 {
		t.Fatalf("expired counter = %d", v)
	}
	// The dead lease cannot renew...
	if m.Renew(l1.LeaseID, "w1") {
		t.Fatal("re-issued window renewed under the old lease")
	}
	// ...but if w1 was merely slow, its late completion still counts
	// (deterministic counts), and the replacement's becomes the duplicate.
	if status, err := m.Complete(completeRequest{LeaseID: l1.LeaseID, Worker: "w1", SweepID: "j1/s1", B0: 0, B1: 1, Correct: []int{3}}); err != nil || status != CompleteOK {
		t.Fatalf("late complete: %q, %v", status, err)
	}
	if status, err := m.Complete(completeRequest{LeaseID: l3.LeaseID, Worker: "w3", SweepID: "j1/s1", B0: 0, B1: 1, Correct: []int{3}}); err != nil || status != CompleteDuplicate {
		t.Fatalf("replacement complete: %q, %v", status, err)
	}
}

func TestFleetManagerRenewKeepsLeaseAlive(t *testing.T) {
	m, fc, _ := testFleetManager(time.Second)
	if _, err := m.runSweep(context.Background(), testWireSweep("j1/s1", 1, 2), 0, 1); err != nil {
		t.Fatal(err)
	}
	l1, _ := m.Lease("w1")
	fc.Advance(900 * time.Millisecond)
	if !m.Renew(l1.LeaseID, "w1") {
		t.Fatal("live lease refused renewal")
	}
	// Past the original expiry but within the renewed one: the window is
	// not up for grabs.
	fc.Advance(900 * time.Millisecond)
	l2, ok := m.Lease("w2")
	if !ok || l2.B0 == l1.B0 {
		t.Fatalf("renewed window re-issued: %+v, %v", l2, ok)
	}
	if !m.Renew(l1.LeaseID, "w1") {
		t.Fatal("renewed lease refused a second renewal")
	}
	// Renewing a finished or unknown lease reports gone.
	if m.Renew("L999999", "w9") {
		t.Fatal("unknown lease renewed")
	}
}

func TestFleetManagerContextCancelClosesSweep(t *testing.T) {
	m, _, _ := testFleetManager(time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := m.runSweep(ctx, testWireSweep("j1/s1", 1, 3), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case _, open := <-ch:
		if open {
			t.Fatal("cancelled sweep delivered a result")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled sweep's channel never closed")
	}
	if _, ok := m.Lease("w1"); ok {
		t.Fatal("cancelled sweep still leasing windows")
	}
	if _, err := m.Complete(completeRequest{SweepID: "j1/s1", B0: 0, B1: 1, Correct: []int{1}}); err != errUnknownSweep {
		t.Fatalf("complete after cancel: %v", err)
	}

	// A duplicate registration under a live ID is refused.
	ch2, err := m.runSweep(context.Background(), testWireSweep("j1/s2", 1, 1), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.runSweep(context.Background(), testWireSweep("j1/s2", 1, 1), 0, 1); err == nil {
		t.Fatal("duplicate sweep ID registered")
	}
	if status, err := m.Complete(completeRequest{SweepID: "j1/s2", B0: 0, B1: 1, Correct: []int{1}}); err != nil || status != CompleteOK {
		t.Fatalf("complete: %q, %v", status, err)
	}
	for range ch2 {
	}
}

// ---- HTTP handler tests ----

func TestFleetHTTPEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{}, instantRun(Artifacts{Text: "x"}))
	postFleet := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}

	// An idle fleet has no work and says so without a body.
	if resp, _ := postFleet("/v1/fleet/lease", `{"worker":"w1"}`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle lease: HTTP %d", resp.StatusCode)
	}
	// Malformed bodies are 400s.
	if resp, _ := postFleet("/v1/fleet/lease", `{bogus`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed lease: HTTP %d", resp.StatusCode)
	}
	if resp, _ := postFleet("/v1/fleet/complete", `{"sweep_id":"nope","b0":0,"b1":1,"correct":[1]}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-sweep complete: HTTP %d", resp.StatusCode)
	}
	if resp, _ := postFleet("/v1/fleet/renew", `{"lease_id":"L000001"}`); resp.StatusCode != http.StatusGone {
		t.Fatalf("unknown renew: HTTP %d", resp.StatusCode)
	}

	ch, err := s.Fleet().runSweep(context.Background(), testWireSweep("j1/s1", 2, 1), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postFleet("/v1/fleet/lease", `{"worker":"w1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease: HTTP %d, %s", resp.StatusCode, body)
	}
	var lease Lease
	if err := json.Unmarshal(body, &lease); err != nil {
		t.Fatalf("lease body: %v\n%s", err, body)
	}
	if lease.Sweep.ID != "j1/s1" || lease.B0 != 0 || lease.B1 != 1 || lease.TTLMs != DefaultLeaseTTL.Milliseconds() {
		t.Fatalf("lease = %+v", lease)
	}

	var fs FleetStatus
	if code := getJSON(t, ts.URL+"/v1/fleet", &fs); code != http.StatusOK {
		t.Fatalf("fleet status: HTTP %d", code)
	}
	if fs.Sweeps != 1 || fs.WindowsLeased != 1 {
		t.Fatalf("fleet status = %+v", fs)
	}
	if _, ok := fs.Workers["w1"]; !ok {
		t.Fatalf("worker liveness missing: %+v", fs.Workers)
	}

	// Wrong count width bounces with a 400; the real one lands.
	if resp, body := postFleet("/v1/fleet/complete",
		fmt.Sprintf(`{"lease_id":%q,"sweep_id":"j1/s1","b0":0,"b1":1,"correct":[1]}`, lease.LeaseID)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short complete: HTTP %d, %s", resp.StatusCode, body)
	}
	resp, body = postFleet("/v1/fleet/complete",
		fmt.Sprintf(`{"lease_id":%q,"worker":"w1","sweep_id":"j1/s1","b0":0,"b1":1,"correct":[4,9]}`, lease.LeaseID))
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("complete: HTTP %d, %s", resp.StatusCode, body)
	}
	r := <-ch
	if r.Correct[0] != 4 || r.Correct[1] != 9 {
		t.Fatalf("folded result = %+v", r)
	}
	for range ch {
	}
}

// ---- End-to-end distributed sweeps ----

// fleetFixtureOpts are the results-affecting options shared by the
// coordinator fixture and the (stub-resolved) workers.
func fleetFixtureOpts() core.Options {
	return core.Options{
		NMSweep: []float64{0.5, 0.1}, Trials: 1, Batch: 10,
		Threshold: 0.02, Seed: 5, Workers: 1,
	}
}

// fleetFixtureAnalyzer builds a deterministic, cheap analyzer: an
// untrained (seed-initialized) CapsNet over a synthetic dataset. The
// resilience numbers are meaningless — the fleet tests assert byte
// identity of the fold, which only needs determinism, not accuracy.
func fleetFixtureAnalyzer() (*core.Analyzer, error) {
	ds := datasets.MNISTLike(12, 30, 7)
	net, err := models.BuildInference(models.CapsNet([]int{ds.Channels, ds.H, ds.W}, len(ds.ClassNames)), 3)
	if err != nil {
		return nil, err
	}
	return &core.Analyzer{Net: net, Data: ds, Opts: fleetFixtureOpts()}, nil
}

// fixtureWindows is the fixture's total lease count per group-sweep job:
// one sweep per noise group, one single-batch window per eval batch.
func fixtureWindows(t *testing.T) int {
	t.Helper()
	a, err := fleetFixtureAnalyzer()
	if err != nil {
		t.Fatal(err)
	}
	_, nb := a.SweepGrid()
	return len(noise.Groups()) * nb
}

// fleetRunFunc is a RunFunc running the fixture's group analysis — the
// same checkpointed AnalyzeGroups path runSpec drives, minus training.
// The FleetManager is read through a 1-slot channel so restart tests can
// swap in a new server's fleet before the restored job resumes.
func fleetRunFunc(fm chan *FleetManager) RunFunc {
	return func(ctx context.Context, spec JobSpec, jobDir string, o *obs.Obs) (Artifacts, error) {
		a, err := fleetFixtureAnalyzer()
		if err != nil {
			return Artifacts{}, err
		}
		a.Obs = o
		st, _, err := checkpoint.Open(jobDir, "fleet-fixture", a.Opts.Seed, a.Opts.Fingerprint())
		if err != nil {
			return Artifacts{}, err
		}
		a.Checkpoint = st
		if spec.Distributed {
			m := <-fm
			fm <- m
			a.Fleet = m.ForJob(filepath.Base(jobDir), spec.Benchmark, true, 0)
		}
		clean, err := a.CleanAccuracyCtx(ctx)
		if err != nil {
			return Artifacts{}, err
		}
		groups, err := a.AnalyzeGroups(ctx, clean)
		if err != nil {
			return Artifacts{}, err
		}
		data, err := json.MarshalIndent(groups, "", " ")
		if err != nil {
			return Artifacts{}, err
		}
		return Artifacts{Text: string(data) + "\n"}, nil
	}
}

// fleetBaseline runs the fixture analysis single-process, in-process:
// the byte-identity reference every fleet topology must reproduce.
func fleetBaseline(t *testing.T) string {
	t.Helper()
	a, err := fleetFixtureAnalyzer()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := a.CleanAccuracyCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	groups, err := a.AnalyzeGroups(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(groups, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data) + "\n"
}

// fixtureResolve is the worker-side Resolve over the same fixture;
// delay throttles each lease to give tests time to interrupt mid-run.
func fixtureResolve(delay time.Duration) func(WireSweep) (*core.Analyzer, error) {
	return func(ws WireSweep) (*core.Analyzer, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		a, err := fleetFixtureAnalyzer()
		if err != nil {
			return nil, err
		}
		a.Opts = ws.Options.CoreOptions(1)
		return a, nil
	}
}

// startWorker runs an in-process fleet worker against a coordinator URL.
func startWorker(t *testing.T, url, name string, resolve func(WireSweep) (*core.Analyzer, error)) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	wk := &Worker{Base: url, Name: name, Poll: 5 * time.Millisecond, Resolve: resolve}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wk.Run(ctx) //nolint:errcheck // returns ctx.Err() on stop
	}()
	stop = func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

func getResult(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d, %s", resp.StatusCode, data)
	}
	return string(data)
}

// TestDistributedJobByteIdenticalAcrossFleetSizes is the tentpole
// acceptance test: a distributed group-sweep job folded from 1, 2 and 4
// workers must produce byte-identical artifacts to the single-process
// run of the same analysis.
func TestDistributedJobByteIdenticalAcrossFleetSizes(t *testing.T) {
	want := fleetBaseline(t)

	// The same RunFunc without the distributed flag takes the local path.
	fm := make(chan *FleetManager, 1)
	s, ts := newTestServer(t, Config{}, fleetRunFunc(fm))
	fm <- s.Fleet()
	st, _ := postJob(t, ts, `{"kind":"group-sweep"}`)
	waitState(t, ts, st.ID, StateDone)
	if got := getResult(t, ts, st.ID); got != want {
		t.Fatalf("local server run differs from in-process baseline:\n%s\nvs\n%s", got, want)
	}

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			fm := make(chan *FleetManager, 1)
			s, ts := newTestServer(t, Config{}, fleetRunFunc(fm))
			fm <- s.Fleet()
			for i := 0; i < n; i++ {
				startWorker(t, ts.URL, fmt.Sprintf("w%d", i+1), fixtureResolve(0))
			}
			st, resp := postJob(t, ts, `{"kind":"group-sweep","distributed":true}`)
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("submit: HTTP %d", resp.StatusCode)
			}
			waitState(t, ts, st.ID, StateDone)
			if got := getResult(t, ts, st.ID); got != want {
				t.Fatalf("%d-worker fleet differs from single-process run:\n%s\nvs\n%s", n, got, want)
			}
		})
	}
}

// TestDistributedJobSurvivesWorkerCrash kills a worker mid-window: its
// lease expires, the window is re-issued to a healthy worker, and the
// artifacts stay byte-identical.
func TestDistributedJobSurvivesWorkerCrash(t *testing.T) {
	want := fleetBaseline(t)
	o := obs.New(obs.Off, nil)
	fm := make(chan *FleetManager, 1)
	s, ts := newTestServer(t, Config{Obs: o, LeaseTTL: 150 * time.Millisecond}, fleetRunFunc(fm))
	fm <- s.Fleet()

	// The crash worker takes one lease and dies holding it: its context
	// ends mid-window, so it never completes, never renews, and exits.
	crashCtx, crashCancel := context.WithCancel(context.Background())
	defer crashCancel()
	var crashed atomic.Bool
	crashWk := &Worker{
		Base: ts.URL, Name: "doomed", Poll: 2 * time.Millisecond,
		Resolve: func(ws WireSweep) (*core.Analyzer, error) {
			crashed.Store(true)
			crashCancel()
			return fixtureResolve(0)(ws)
		},
	}
	crashDone := make(chan struct{})
	go func() {
		defer close(crashDone)
		crashWk.Run(crashCtx) //nolint:errcheck
	}()

	st, _ := postJob(t, ts, `{"kind":"group-sweep","distributed":true}`)
	select {
	case <-crashDone: // the worker leased a window and died
	case <-time.After(10 * time.Second):
		t.Fatal("crash worker never leased a window")
	}
	if !crashed.Load() {
		t.Fatal("crash worker exited without leasing")
	}

	// Only now does a healthy worker join: the crashed window is
	// genuinely outstanding until its lease expires.
	startWorker(t, ts.URL, "healthy", fixtureResolve(0))
	waitState(t, ts, st.ID, StateDone)
	if got := getResult(t, ts, st.ID); got != want {
		t.Fatalf("post-crash fleet run differs from single-process run:\n%s\nvs\n%s", got, want)
	}
	if v := o.Metrics().Counter("fleet.leases.expired").Value(); v < 1 {
		t.Fatalf("fleet.leases.expired = %d, want >= 1 (the crashed lease)", v)
	}
	if v := o.Metrics().Counter("fleet.leases.completed").Value(); v != int64(fixtureWindows(t)) {
		t.Fatalf("fleet.leases.completed = %d, want %d", v, fixtureWindows(t))
	}
}

// TestDistributedJobResumesAcrossCoordinatorRestart drains a coordinator
// mid-fleet-run (leases outstanding), restarts it over the same state
// dir, and the resumed job folds only the missing windows — with
// byte-identical artifacts.
func TestDistributedJobResumesAcrossCoordinatorRestart(t *testing.T) {
	want := fleetBaseline(t)
	state := t.TempDir()
	total := fixtureWindows(t)

	o1 := obs.New(obs.Off, nil)
	fm := make(chan *FleetManager, 1)
	s1, err := New(Config{StateDir: state, Obs: o1, RunJob: fleetRunFunc(fm)})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	fm <- s1.Fleet()
	stop1 := startWorker(t, ts1.URL, "slow", fixtureResolve(30*time.Millisecond))

	st, resp := postJob(t, ts1, `{"kind":"group-sweep","distributed":true}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	// Let the fleet fold some — not all — windows, then drain with the
	// worker mid-lease.
	deadline := time.Now().Add(20 * time.Second)
	for o1.Metrics().Counter("fleet.leases.completed").Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("fleet never made progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	stop1()
	j, ok := s1.Get(st.ID)
	if !ok || j.state != StateQueued {
		t.Fatalf("drained job state = %+v", j)
	}
	done1 := o1.Metrics().Counter("fleet.leases.completed").Value()
	if done1 >= int64(total) {
		t.Fatalf("drain came too late: all %d windows already folded", total)
	}

	// Restart over the same state dir. The restored job is scheduled
	// inside New and blocks on the fleet channel (emptied here) until the
	// new server's manager is swapped in.
	<-fm
	o2 := obs.New(obs.Off, nil)
	s2, err := New(Config{StateDir: state, Obs: o2, RunJob: fleetRunFunc(fm)})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s2.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	fm <- s2.Fleet()
	startWorker(t, ts2.URL, "fresh", fixtureResolve(0))

	waitState(t, ts2, st.ID, StateDone)
	if got := getResult(t, ts2, st.ID); got != want {
		t.Fatalf("resumed fleet run differs from single-process run:\n%s\nvs\n%s", got, want)
	}
	// The resume folded exactly the windows the first coordinator did
	// not: nothing recomputed, nothing lost.
	done2 := o2.Metrics().Counter("fleet.leases.completed").Value()
	if done1+done2 != int64(total) {
		t.Fatalf("windows folded: %d before + %d after restart, want %d total", done1, done2, total)
	}
}

package obs

import "time"

// Span measures one named phase of work: StartSpan emits a debug event,
// End records the duration into the "span.<name>" timer and emits an
// info event with the rounded duration. When a Trace is attached to the
// Obs, each span carries a unique id (and its parent's id, for spans
// opened with Child), and End additionally records a Chrome trace event.
// A nil Span (from a nil Obs) is valid and End is a no-op, so call sites
// need no guards:
//
//	sp := o.StartSpan("train.fit", obs.F("epochs", n))
//	defer sp.End()
type Span struct {
	o      *Obs
	name   string
	fields []Field
	start  time.Time
	id     uint64
	parent uint64
	tid    int64
}

// StartSpan opens a root span. The fields are attached to both the start
// and end events.
func (o *Obs) StartSpan(name string, fields ...Field) *Span {
	if o == nil {
		return nil
	}
	o.Event(Debug, name+" started", fields...)
	return &Span{o: o, name: name, fields: fields, start: time.Now(), id: o.trace.SpanID()}
}

// Child opens a sub-span of s: same Obs and trace lane, with s recorded
// as the parent in the trace. On a nil span it degrades to a root span
// on a nil Obs (still safe).
func (s *Span) Child(name string, fields ...Field) *Span {
	if s == nil {
		return nil
	}
	c := s.o.StartSpan(name, fields...)
	if c != nil {
		c.parent = s.id
		c.tid = s.tid
	}
	return c
}

// End closes the span and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.o.Timer("span." + s.name).Observe(d)
	if tr := s.o.Trace(); tr != nil {
		args := map[string]any{"id": s.id}
		if s.parent != 0 {
			args["parent"] = s.parent
		}
		tr.Complete(s.name, "span", s.tid, s.start, d, args)
	}
	s.o.Event(Info, s.name+" done", append(s.fields[:len(s.fields):len(s.fields)], F("dur", d.Round(time.Millisecond)))...)
	return d
}

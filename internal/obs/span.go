package obs

import "time"

// Span measures one named phase of work: StartSpan emits a debug event,
// End records the duration into the "span.<name>" timer and emits an
// info event with the rounded duration. A nil Span (from a nil Obs) is
// valid and End is a no-op, so call sites need no guards:
//
//	sp := o.StartSpan("train.fit", obs.F("epochs", n))
//	defer sp.End()
type Span struct {
	o      *Obs
	name   string
	fields []Field
	start  time.Time
}

// StartSpan opens a span. The fields are attached to both the start and
// end events.
func (o *Obs) StartSpan(name string, fields ...Field) *Span {
	if o == nil {
		return nil
	}
	o.Event(Debug, name+" started", fields...)
	return &Span{o: o, name: name, fields: fields, start: time.Now()}
}

// End closes the span and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.o.Timer("span." + s.name).Observe(d)
	s.o.Event(Info, s.name+" done", append(s.fields[:len(s.fields):len(s.fields)], F("dur", d.Round(time.Millisecond)))...)
	return d
}

package obs

import (
	"math"
	"testing"
)

func TestHistBucketEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{math.NaN(), 0},
		{-5, 0},
		{0, 0},
		{0.3, 0},
		{1, 0},      // bucket 0 is [0, 1]
		{1.0001, 1}, // (1, 2]
		{2, 1},      // bounds are inclusive
		{2.0001, 2}, // (2, 4]
		{1024, 10},  // exact power of two: (512, 1024]
		{1025, 11},  // just past it
		{math.Ldexp(1, 48), 48},
		{math.Ldexp(1, 48) + 1e10, histBuckets - 1}, // overflow bucket
		{math.Inf(1), histBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite bucket's bound must map back into that bucket
	// (inclusive upper bounds).
	for i := 0; i < histBuckets-1; i++ {
		if got := histBucket(histBound(i)); got != i {
			t.Errorf("histBucket(histBound(%d)) = %d", i, got)
		}
	}
}

func TestHistogramObserveAndStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.5, 1, 3, 3, 3, 100, 1e20} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 0.5+1+3+3+3+100+1e20 {
		t.Fatalf("sum = %g", got)
	}
	st := h.Stats()
	if st.Count != 7 || st.Sum != h.Sum() {
		t.Fatalf("stats = %+v", st)
	}
	// Buckets are cumulative, non-decreasing, and end with +Inf == count.
	if len(st.Buckets) == 0 {
		t.Fatal("no buckets")
	}
	prev := int64(0)
	for _, b := range st.Buckets {
		if b.Count < prev {
			t.Fatalf("cumulative counts decrease at le=%s: %d < %d", b.LE, b.Count, prev)
		}
		prev = b.Count
	}
	lastB := st.Buckets[len(st.Buckets)-1]
	if lastB.LE != "+Inf" || lastB.Count != 7 {
		t.Fatalf("final bucket = %+v", lastB)
	}
	// The three 3s dominate the middle of the distribution: p50 must land
	// in their bucket, (2, 4].
	if st.P50 <= 2 || st.P50 > 4 {
		t.Fatalf("p50 = %g, want in (2, 4]", st.P50)
	}
	// p99 falls in the overflow bucket (the 1e20 observation), which
	// reports its lower bound.
	if st.P99 != math.Ldexp(1, histBuckets-2) {
		t.Fatalf("p99 = %g", st.P99)
	}
}

func TestHistogramEmptyStats(t *testing.T) {
	var h Histogram
	st := h.Stats()
	if st.Count != 0 || st.Sum != 0 || st.P50 != 0 || len(st.Buckets) != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	var nilH *Histogram
	nilH.Observe(3) // must not panic
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram not inert")
	}
}

func TestHistogramMergeExact(t *testing.T) {
	var a, b, both Histogram
	va := []float64{0.5, 2, 7, 7, 1000}
	vb := []float64{3, 3, 512, 1e6}
	for _, v := range va {
		a.Observe(v)
		both.Observe(v)
	}
	for _, v := range vb {
		b.Observe(v)
		both.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), both.Count())
	}
	for i := range a.buckets {
		if got, want := a.buckets[i].Load(), both.buckets[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
	// The merge adds one float sum to another, so it matches the
	// sequential sum here (same addition order).
	if a.Sum() != both.Sum() {
		t.Fatalf("merged sum = %g, want %g", a.Sum(), both.Sum())
	}
}

func TestTimerPercentilesInSnapshot(t *testing.T) {
	m := NewMetrics()
	tm := m.Timer("t")
	for i := 0; i < 100; i++ {
		tm.Observe(1000) // 1 µs
	}
	s := m.Snapshot()
	ts, ok := s.Timers["t"]
	if !ok {
		t.Fatal("timer missing from snapshot")
	}
	// All observations are 1000 ns; the containing bucket is (512, 1024].
	for _, p := range []float64{ts.P50NS, ts.P90NS, ts.P99NS} {
		if p <= 512 || p > 1024 {
			t.Fatalf("percentile %g outside the 1000 ns bucket", p)
		}
	}
}

func TestValueHistogramInSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Histogram("sweep.job_correct").Observe(5)
	m.Histogram("sweep.job_correct").Observe(17)
	s := m.Snapshot()
	hs, ok := s.Histograms["sweep.job_correct"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 2 || hs.Sum != 22 {
		t.Fatalf("histogram stats = %+v", hs)
	}
}

package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestMetricsConcurrentStress hammers every metric kind from many
// goroutines while snapshots and Prometheus expositions run concurrently.
// Under -race this proves the CAS loops (Gauge.Add, Histogram sums) and
// the registry locking race-free; without -race it still checks the
// totals, which CAS loops must not lose under contention.
func TestMetricsConcurrentStress(t *testing.T) {
	m := NewMetrics()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := m.Gauge("stress.gauge")
			c := m.Counter("stress.counter")
			tm := m.Timer("stress.timer")
			h := m.Histogram("stress.hist")
			for i := 0; i < perWorker; i++ {
				g.Add(0.5)
				c.Inc()
				tm.Observe(time.Duration(i))
				h.Observe(float64(i % 100))
			}
		}()
	}
	// Concurrent readers: snapshots and expositions during the writes.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.Snapshot()
				m.WritePrometheus(io.Discard) //nolint:errcheck
			}
		}()
	}
	wg.Wait()

	const n = workers * perWorker
	if v := m.Counter("stress.counter").Value(); v != n {
		t.Fatalf("counter = %d, want %d", v, n)
	}
	// Every Add is 0.5, so the float CAS loop must land exactly on n/2.
	if v := m.Gauge("stress.gauge").Value(); v != n/2 {
		t.Fatalf("gauge = %g, want %d", v, n/2)
	}
	if v := m.Timer("stress.timer").Count(); v != n {
		t.Fatalf("timer count = %d, want %d", v, n)
	}
	if v := m.Histogram("stress.hist").Count(); v != n {
		t.Fatalf("histogram count = %d, want %d", v, n)
	}
}

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// promName sanitizes a metric name for the Prometheus text exposition
// format: every character outside [a-zA-Z0-9_:] becomes '_', and a
// leading digit gets a '_' prefix.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9': // digits are fine except in front
		default:
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		return "_" + string(b)
	}
	return string(b)
}

// promFloat renders a sample value ('+Inf'/'-Inf'/'NaN' per the text
// format).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// cumulative snapshots the histogram's buckets as cumulative counts.
func (h *Histogram) cumulative() (counts [histBuckets]int64, total int64) {
	if h == nil {
		return
	}
	for i := range h.buckets {
		total += h.buckets[i].Load()
		counts[i] = total
	}
	return
}

// writePromHistogram emits one Prometheus histogram family: cumulative
// _bucket series (le scaled by 1/scale), _sum (also scaled) and _count.
// Buckets after the last observation collapse into le="+Inf".
func writePromHistogram(w io.Writer, name string, h *Histogram, scale float64) {
	counts, total := h.cumulative()
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	last := -1
	for i := range counts[:histBuckets-1] {
		if i == 0 && counts[i] != 0 || i > 0 && counts[i] != counts[i-1] {
			last = i
		}
	}
	for i := 0; i <= last; i++ {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(histBound(i)/scale), counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum()/scale))
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as plain samples, timers
// as "<name>_seconds" histogram families (log2 nanosecond buckets
// rescaled to seconds), and value-domain histograms as histogram
// families in their native units. Families are emitted in sorted name
// order, so the output is deterministic for a registry at rest.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	counters := make(map[string]*Counter, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(m.timers))
	for k, v := range m.timers {
		timers[k] = v
	}
	histograms := make(map[string]*Histogram, len(m.histograms))
	for k, v := range m.histograms {
		histograms[k] = v
	}
	m.mu.Unlock()

	ew := &errWriter{w: w}
	for _, name := range sortedKeys(counters) {
		n := promName(name)
		fmt.Fprintf(ew, "# TYPE %s counter\n%s %d\n", n, n, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		n := promName(name)
		fmt.Fprintf(ew, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(gauges[name].Value()))
	}
	for _, name := range sortedKeys(timers) {
		writePromHistogram(ew, promName(name)+"_seconds", timers[name].Hist(), float64(1e9))
	}
	for _, name := range sortedKeys(histograms) {
		writePromHistogram(ew, promName(name), histograms[name], 1)
	}
	return ew.err
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// errWriter latches the first write error so the exposition loop stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

package obs

import "sync"

// This file adds event fan-out to the telemetry substrate: a MultiSink
// that tees events to several sinks, and a SubSink that retains recent
// events and republishes them to dynamically attached subscribers. The
// analysis service bridges a job's SubSink onto its NDJSON event stream
// (GET /v1/jobs/{id}/events): a subscriber attaching mid-run first
// replays the retained history, then follows live events, with no gap
// and no duplicate because Subscribe snapshots and registers under one
// lock.

// MultiSink returns a Sink forwarding every event to each of the given
// sinks in order. Nil sinks are skipped; zero usable sinks yields nil
// (which Obs treats as "no events").
func MultiSink(sinks ...Sink) Sink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

type multiSink []Sink

// Write implements Sink.
func (m multiSink) Write(e Event) {
	for _, s := range m {
		s.Write(e)
	}
}

// SubSink is a Sink that retains the most recent events (up to a fixed
// capacity) and fans them out to subscribers. Writes never block: a
// subscriber whose channel buffer is full loses that event (counted per
// subscription), so a stalled consumer cannot stall the producing run.
// Methods are safe for concurrent use.
type SubSink struct {
	mu      sync.Mutex
	cap     int
	ring    []Event
	subs    map[*Subscription]struct{}
	closed  bool
	trimmed int64 // events dropped from the ring (history truncation)
}

// DefaultSubSinkCap bounds the retained history when NewSubSink is given
// a non-positive capacity.
const DefaultSubSinkCap = 4096

// NewSubSink returns a SubSink retaining up to capacity events
// (DefaultSubSinkCap when capacity <= 0).
func NewSubSink(capacity int) *SubSink {
	if capacity <= 0 {
		capacity = DefaultSubSinkCap
	}
	return &SubSink{cap: capacity, subs: map[*Subscription]struct{}{}}
}

// Write implements Sink: the event joins the retained history (evicting
// the oldest when full) and is offered to every live subscriber.
func (s *SubSink) Write(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.ring) == s.cap {
		// Shift rather than reslice so the backing array cannot grow
		// without bound across a long run.
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = e
		s.trimmed++
	} else {
		s.ring = append(s.ring, e)
	}
	for sub := range s.subs {
		select {
		case sub.c <- e:
		default:
			sub.dropped++
		}
	}
}

// Trimmed reports how many events have been evicted from the retained
// history.
func (s *SubSink) Trimmed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trimmed
}

// Subscribe attaches a new subscriber with the given live-channel buffer
// (minimum 1). The returned subscription's Replay holds every retained
// event from before the subscription, and C carries events written after
// it; together they form the gapless, duplicate-free stream. On a closed
// SubSink the subscription is returned already terminated (C is closed)
// with the final history in Replay.
func (s *SubSink) Subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	sub := &Subscription{s: s, c: make(chan Event, buf)}
	sub.C = sub.c
	s.mu.Lock()
	defer s.mu.Unlock()
	sub.Replay = append([]Event(nil), s.ring...)
	if s.closed {
		close(sub.c)
		return sub
	}
	s.subs[sub] = struct{}{}
	return sub
}

// Close terminates the sink: subscribers' live channels close (after any
// buffered events drain) and later writes are discarded. The retained
// history stays readable through new Subscribe calls. Close is
// idempotent.
func (s *SubSink) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for sub := range s.subs {
		close(sub.c)
	}
	s.subs = map[*Subscription]struct{}{}
}

// Subscription is one attached consumer of a SubSink.
type Subscription struct {
	// Replay is the retained history from before the subscription.
	Replay []Event
	// C carries events written after the subscription; it closes when
	// the sink closes or the subscription is closed.
	C <-chan Event

	s       *SubSink
	c       chan Event
	dropped int64
}

// Dropped reports how many live events this subscription lost to a full
// buffer.
func (sub *Subscription) Dropped() int64 {
	sub.s.mu.Lock()
	defer sub.s.mu.Unlock()
	return sub.dropped
}

// Close detaches the subscription; C closes after buffered events drain.
// Closing an already-terminated subscription is a no-op.
func (sub *Subscription) Close() {
	sub.s.mu.Lock()
	defer sub.s.mu.Unlock()
	if _, live := sub.s.subs[sub]; !live {
		return
	}
	delete(sub.s.subs, sub)
	close(sub.c)
}

package obs

import "runtime"

// SampleRuntime copies the Go runtime's health signals into gauges:
// goroutine count, heap usage, GC cycles and accumulated GC pause time.
// It calls runtime.ReadMemStats (a brief stop-the-world), so callers
// sample at scrape or snapshot boundaries, not in hot loops. A nil
// registry no-ops.
func SampleRuntime(m *Metrics) {
	if m == nil {
		return
	}
	m.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	m.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	m.Gauge("runtime.sys_bytes").Set(float64(ms.Sys))
	m.Gauge("runtime.gc_runs").Set(float64(ms.NumGC))
	m.Gauge("runtime.gc_pause_total_ns").Set(float64(ms.PauseTotalNs))
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// maxTraceEvents bounds the per-run trace buffer (~8 MB of events). Once
// full, further events are counted as dropped instead of buffered, so a
// long sweep with per-layer tracing cannot exhaust memory.
const maxTraceEvents = 1 << 16

// TraceEvent is one Chrome trace-event record ("X" complete events
// only). Timestamps and durations are microseconds relative to the
// trace start, per the trace-event format consumed by chrome://tracing
// and Perfetto.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace buffers completed spans and kernel timings for one run and
// serializes them as Chrome trace-event JSON. It is safe for concurrent
// use; the buffer is bounded (see maxTraceEvents) with a dropped-event
// counter instead of unbounded growth.
//
// A nil *Trace no-ops everywhere, mirroring the rest of the package.
type Trace struct {
	start   time.Time
	nextID  atomic.Uint64
	dropped atomic.Int64

	mu     sync.Mutex
	events []TraceEvent
}

// NewTrace returns an empty trace anchored at the current time.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// SpanID allocates a fresh nonzero span identifier (0 for a nil trace).
func (t *Trace) SpanID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

// Complete records one finished slice of work on lane tid. args may be
// nil; the map is stored as-is, so callers must not mutate it afterwards.
func (t *Trace) Complete(name, cat string, tid int64, start time.Time, d time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	ev := TraceEvent{
		Name: name,
		Cat:  cat,
		Ph:   "X",
		TS:   float64(start.Sub(t.start)) / float64(time.Microsecond),
		Dur:  float64(d) / float64(time.Microsecond),
		PID:  1,
		TID:  tid,
		Args: args,
	}
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded after the buffer
// filled.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// WriteJSON serializes the trace in Chrome trace-event JSON object form:
// {"traceEvents": [...], ...}. The output loads directly into
// chrome://tracing or Perfetto.
func (t *Trace) WriteJSON(w io.Writer) error {
	events := []TraceEvent{}
	var dropped int64
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		t.mu.Unlock()
		dropped = t.dropped.Load()
	}
	doc := struct {
		TraceEvents     []TraceEvent      `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData,omitempty"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
	}
	if dropped > 0 {
		doc.OtherData = map[string]string{"dropped_events": fmt.Sprint(dropped)}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}

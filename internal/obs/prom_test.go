package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseProm is a minimal parser of the Prometheus text exposition format
// (version 0.0.4): `# TYPE name kind` headers and `name[{labels}] value`
// samples. It fails the test on any line that fits neither shape.
func parseProm(t *testing.T, text string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = map[string]string{}
	samples = map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		key, valStr := line[:i], line[i+1:]
		var val float64
		switch valStr {
		case "+Inf", "-Inf", "NaN":
			val = 0 // representable; the exact value is not asserted here
		default:
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
			val = v
		}
		// The metric name (before any label set) must be a valid
		// Prometheus identifier.
		name := key
		if j := strings.IndexByte(key, '{'); j >= 0 {
			name = key[:j]
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set %q", ln+1, key)
			}
		}
		for i, c := range name {
			ok := c == '_' || c == ':' ||
				c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
				c >= '0' && c <= '9' && i > 0
			if !ok {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
		}
		samples[key] = val
	}
	return types, samples
}

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Counter("sweep.jobs").Add(7)
	m.Gauge("sweep.workers.utilization").Set(0.75)
	for i := 0; i < 10; i++ {
		m.Timer("caps.forward.total").Observe(time.Microsecond)
	}
	h := m.Histogram("sweep.job_correct")
	h.Observe(3)
	h.Observe(17)
	h.Observe(17)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	types, samples := parseProm(t, text)

	if types["sweep_jobs"] != "counter" || samples["sweep_jobs"] != 7 {
		t.Fatalf("counter family wrong: types=%v samples=%v", types, samples)
	}
	if types["sweep_workers_utilization"] != "gauge" || samples["sweep_workers_utilization"] != 0.75 {
		t.Fatalf("gauge family wrong")
	}
	if types["caps_forward_total_seconds"] != "histogram" {
		t.Fatalf("timer not exposed as a histogram: %v", types)
	}
	if types["sweep_job_correct"] != "histogram" {
		t.Fatalf("value histogram missing: %v", types)
	}

	// Histogram contract: _bucket series cumulative and non-decreasing,
	// le="+Inf" bucket equal to _count, _sum present.
	for _, fam := range []struct {
		name string
		sum  float64
		n    float64
	}{
		{"caps_forward_total_seconds", 10 * 1e-6, 10},
		{"sweep_job_correct", 37, 3},
	} {
		if got := samples[fam.name+"_count"]; got != fam.n {
			t.Fatalf("%s_count = %g, want %g", fam.name, got, fam.n)
		}
		if got := samples[fam.name+"_sum"]; got != fam.sum {
			t.Fatalf("%s_sum = %g, want %g", fam.name, got, fam.sum)
		}
		inf := fmt.Sprintf("%s_bucket{le=\"+Inf\"}", fam.name)
		if got, ok := samples[inf]; !ok || got != fam.n {
			t.Fatalf("%s = %g, ok=%v, want %g", inf, got, ok, fam.n)
		}
		// Walk the family's bucket lines in emission order and check
		// monotonicity.
		prev := -1.0
		nb := 0
		for _, line := range strings.Split(text, "\n") {
			if !strings.HasPrefix(line, fam.name+"_bucket{") {
				continue
			}
			nb++
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("%s buckets decrease: %q", fam.name, line)
			}
			prev = v
		}
		if nb < 2 {
			t.Fatalf("%s has %d bucket lines", fam.name, nb)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sweep.jobs":          "sweep_jobs",
		"server.http.GET /v1": "server_http_GET__v1",
		"9lives":              "_9lives",
		"ok_name:total":       "ok_name:total",
		"":                    "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSampleRuntime(t *testing.T) {
	m := NewMetrics()
	SampleRuntime(m)
	if m.Gauge("runtime.goroutines").Value() < 1 {
		t.Fatal("goroutine gauge not sampled")
	}
	if m.Gauge("runtime.heap_alloc_bytes").Value() <= 0 {
		t.Fatal("heap gauge not sampled")
	}
}

package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// collectSink records events for assertions.
type collectSink struct {
	mu sync.Mutex
	ev []Event
}

func (c *collectSink) Write(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ev = append(c.ev, e)
}

func (c *collectSink) msgs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.ev))
	for i, e := range c.ev {
		out[i] = e.Msg
	}
	return out
}

func TestMultiSinkFanOut(t *testing.T) {
	a, b := &collectSink{}, &collectSink{}
	m := MultiSink(a, nil, b)
	m.Write(Event{Msg: "x"})
	if len(a.msgs()) != 1 || len(b.msgs()) != 1 {
		t.Fatalf("fan-out: %v %v", a.msgs(), b.msgs())
	}
	if MultiSink(nil, nil) != nil {
		t.Fatal("all-nil MultiSink should collapse to nil")
	}
	// A single usable sink is returned unwrapped.
	if MultiSink(a, nil) != Sink(a) {
		t.Fatal("single-sink MultiSink should not wrap")
	}
}

func TestSubSinkReplayThenLive(t *testing.T) {
	s := NewSubSink(16)
	s.Write(Event{Msg: "before-1"})
	s.Write(Event{Msg: "before-2"})

	sub := s.Subscribe(8)
	defer sub.Close()
	if len(sub.Replay) != 2 || sub.Replay[0].Msg != "before-1" || sub.Replay[1].Msg != "before-2" {
		t.Fatalf("replay = %+v", sub.Replay)
	}
	s.Write(Event{Msg: "after"})
	select {
	case e := <-sub.C:
		if e.Msg != "after" {
			t.Fatalf("live event = %q", e.Msg)
		}
	case <-time.After(time.Second):
		t.Fatal("live event never arrived")
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped = %d", sub.Dropped())
	}
}

func TestSubSinkRingEviction(t *testing.T) {
	s := NewSubSink(3)
	for i := 0; i < 5; i++ {
		s.Write(Event{Msg: fmt.Sprintf("e%d", i)})
	}
	sub := s.Subscribe(1)
	defer sub.Close()
	if len(sub.Replay) != 3 || sub.Replay[0].Msg != "e2" || sub.Replay[2].Msg != "e4" {
		t.Fatalf("replay after eviction = %+v", sub.Replay)
	}
	if s.Trimmed() != 2 {
		t.Fatalf("trimmed = %d", s.Trimmed())
	}
}

func TestSubSinkSlowSubscriberDropsNotBlocks(t *testing.T) {
	s := NewSubSink(16)
	sub := s.Subscribe(1)
	defer sub.Close()
	// Nobody reads sub.C: the first write fills the buffer, the rest must
	// drop without blocking this goroutine.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			s.Write(Event{Msg: fmt.Sprintf("e%d", i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("writer blocked on a slow subscriber")
	}
	if d := sub.Dropped(); d != 9 {
		t.Fatalf("dropped = %d, want 9", d)
	}
}

func TestSubSinkClose(t *testing.T) {
	s := NewSubSink(8)
	s.Write(Event{Msg: "kept"})
	sub := s.Subscribe(4)
	s.Close()
	s.Close() // idempotent
	if _, open := <-sub.C; open {
		t.Fatal("live channel should close with the sink")
	}
	// Writes after close are discarded.
	s.Write(Event{Msg: "late"})
	// A post-close subscription is returned already terminated, history intact.
	post := s.Subscribe(4)
	if len(post.Replay) != 1 || post.Replay[0].Msg != "kept" {
		t.Fatalf("post-close replay = %+v", post.Replay)
	}
	if _, open := <-post.C; open {
		t.Fatal("post-close subscription channel should be closed")
	}
	post.Close() // no-op on terminated subscription
	sub.Close()
}

func TestSubSinkSubscriptionClose(t *testing.T) {
	s := NewSubSink(8)
	sub := s.Subscribe(4)
	sub.Close()
	sub.Close() // idempotent
	if _, open := <-sub.C; open {
		t.Fatal("closed subscription channel should be closed")
	}
	// The sink keeps working for others.
	s.Write(Event{Msg: "still-alive"})
	other := s.Subscribe(4)
	defer other.Close()
	if len(other.Replay) != 1 {
		t.Fatalf("replay = %+v", other.Replay)
	}
}

func TestSubSinkConcurrentWritersAndSubscribers(t *testing.T) {
	// Race-detector exercise: concurrent writes, subscribes and closes.
	s := NewSubSink(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Write(Event{Msg: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := s.Subscribe(8)
			for i := 0; i < 20; i++ {
				select {
				case <-sub.C:
				case <-time.After(10 * time.Millisecond):
				}
			}
			sub.Close()
		}()
	}
	wg.Wait()
	s.Close()
}

func TestNewWithMetricsSharesRegistry(t *testing.T) {
	shared := NewMetrics()
	a := NewWithMetrics(Info, nil, shared)
	b := NewWithMetrics(Debug, nil, shared)
	a.Counter("jobs").Add(2)
	b.Counter("jobs").Add(3)
	if got := shared.Snapshot().Counters["jobs"]; got != 5 {
		t.Fatalf("shared counter = %d, want 5", got)
	}
	if NewWithMetrics(Info, nil, nil).Metrics() == nil {
		t.Fatal("nil registry should be replaced, not kept")
	}
}

package obs

import (
	"math"
	"strconv"
	"sync/atomic"
)

// histBuckets is the number of finite histogram buckets. Bucket i covers
// (2^(i-1), 2^i] (bucket 0 covers [0, 1]); everything above 2^48 lands in
// the final overflow bucket. 2^48 ns ≈ 78 h and 2^48 ≈ 2.8e14 in the
// value domain, so both duration and value observations fit.
const histBuckets = 50

// Histogram is a log2-bucketed distribution metric: fixed power-of-two
// bucket bounds, atomic bucket counters, and a mergeable representation.
// Fixed bounds make two histograms of the same metric directly
// comparable and mergeable without rebinning — the property the sweep
// engine's worker-count invariance tests rely on.
//
// Determinism contract: like counters, bucket counts and Sum depend only
// on the multiset of observed values, never on observation order or
// scheduling. Value-domain histograms observed from deterministic code
// are therefore scheduling-invariant; duration histograms inherit the
// wall-clock caveat of timers.
//
// A nil *Histogram no-ops everywhere.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 accumulated via CAS
}

// histBucket maps a value to its bucket index: the smallest i with
// v <= 2^i, clamped to the overflow bucket. NaN and values <= 1 land in
// bucket 0.
func histBucket(v float64) int {
	if v != v || v <= 1 {
		return 0
	}
	if v > float64(int64(1)<<(histBuckets-2)) {
		return histBuckets - 1
	}
	e := math.Ilogb(v) // floor(log2 v) for finite positive v
	idx := e
	if math.Ldexp(1, e) != v {
		idx = e + 1 // not an exact power of two: round the exponent up
	}
	return idx
}

// histBound returns bucket i's inclusive upper bound (+Inf for the
// overflow bucket).
func histBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, i)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Merge folds src's observations into h. Bucket bounds are fixed, so the
// merge is an element-wise add and is exact for bucket counts.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+src.Sum())) {
			return
		}
	}
}

// quantile estimates the q-quantile (0 < q <= 1) from bucket counts by
// linear interpolation inside the containing bucket. The overflow bucket
// reports its lower bound.
func quantile(counts *[histBuckets]int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo := 0.0
			if i > 0 {
				lo = math.Ldexp(1, i-1)
			}
			if i == histBuckets-1 {
				return lo
			}
			hi := math.Ldexp(1, i)
			return lo + (hi-lo)*(target-cum)/float64(n)
		}
		cum = next
	}
	return math.Ldexp(1, histBuckets-2)
}

// HistogramBucket is one cumulative bucket of a snapshot: Count is the
// number of observations <= LE (Prometheus-style; the final bucket has
// LE "+Inf" and Count equal to the histogram count).
type HistogramBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramStats is a histogram's snapshot form. Percentiles are
// interpolated from the log2 buckets, so they carry bucket-resolution
// (~2×) error; the bucket list is exact and scheduling-invariant for
// value-domain histograms.
type HistogramStats struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Stats snapshots the histogram. Buckets are cumulative and truncated
// after the last non-empty finite bucket, always ending with "+Inf".
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	var counts [histBuckets]int64
	last := -1
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		if counts[i] != 0 {
			last = i
		}
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	st := HistogramStats{
		Count: h.count.Load(),
		Sum:   h.Sum(),
		P50:   quantile(&counts, total, 0.50),
		P90:   quantile(&counts, total, 0.90),
		P99:   quantile(&counts, total, 0.99),
	}
	if last < 0 {
		return st
	}
	if last > histBuckets-2 {
		last = histBuckets - 2
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		st.Buckets = append(st.Buckets, HistogramBucket{
			LE:    strconv.FormatFloat(histBound(i), 'g', -1, 64),
			Count: cum,
		})
	}
	st.Buckets = append(st.Buckets, HistogramBucket{LE: "+Inf", Count: total})
	return st
}

package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// chromeEvent / chromeTrace mirror the trace-event schema the Chrome
// viewers expect; decoding with DisallowUnknownFields makes the test a
// schema check.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// decodeTrace round-trips a trace through WriteJSON and the schema check.
func decodeTrace(t *testing.T, tr *Trace) chromeTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	dec := json.NewDecoder(&buf)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace JSON does not match the Chrome trace-event schema: %v", err)
	}
	return doc
}

func TestTraceSpanNesting(t *testing.T) {
	o := New(Off, nil)
	tr := NewTrace()
	o.AttachTrace(tr)

	parent := o.StartSpan("outer")
	child := parent.Child("inner")
	child.End()
	parent.End()

	doc := decodeTrace(t, tr)
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(doc.TraceEvents))
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d ph = %q, want X", i, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("event %d ts/dur negative: %+v", i, ev)
		}
		if ev.PID != 1 {
			t.Fatalf("event %d pid = %d", i, ev.PID)
		}
		byName[ev.Name] = i
	}
	outer := doc.TraceEvents[byName["outer"]]
	inner := doc.TraceEvents[byName["inner"]]
	outerID, ok := outer.Args["id"].(float64)
	if !ok || outerID == 0 {
		t.Fatalf("outer args = %v, want nonzero id", outer.Args)
	}
	if _, has := outer.Args["parent"]; has {
		t.Fatalf("root span carries a parent link: %v", outer.Args)
	}
	if p, ok := inner.Args["parent"].(float64); !ok || p != outerID {
		t.Fatalf("inner parent = %v, want %v", inner.Args["parent"], outerID)
	}
	// The child completes inside the parent's window.
	if inner.TS < outer.TS || inner.TS+inner.Dur > outer.TS+outer.Dur+1 {
		t.Fatalf("child [%g, %g] escapes parent [%g, %g]",
			inner.TS, inner.TS+inner.Dur, outer.TS, outer.TS+outer.Dur)
	}
}

func TestTraceNilAndUnattached(t *testing.T) {
	var tr *Trace
	tr.Complete("x", "", 0, time.Now(), time.Second, nil) // must not panic
	if tr.SpanID() != 0 || tr.Len() != 0 {
		t.Fatal("nil trace not inert")
	}
	// Spans without an attached trace still time, just without events.
	o := New(Off, nil)
	sp := o.StartSpan("untraced")
	sp.End()

	// An empty trace still writes a valid document with an empty (not
	// null) event list.
	doc := decodeTrace(t, NewTrace())
	if doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace events = %#v", doc.TraceEvents)
	}
}

func TestTraceBufferBound(t *testing.T) {
	tr := NewTrace()
	now := time.Now()
	for i := 0; i < maxTraceEvents+10; i++ {
		tr.Complete("e", "", 0, now, 0, nil)
	}
	if tr.Len() != maxTraceEvents {
		t.Fatalf("len = %d, want %d", tr.Len(), maxTraceEvents)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
	doc := decodeTrace(t, tr)
	if doc.OtherData["dropped_events"] != "10" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
}

// Package obs is the telemetry substrate of the repository: structured
// leveled events, lock-cheap counters/gauges/timers, and a deterministic
// end-of-run metrics snapshot. It replaces the ad-hoc io.Writer logging
// that used to be threaded through the experiment runner.
//
// Two properties are load-bearing for the rest of the stack:
//
//   - Zero cost when disabled. A nil *Obs is valid everywhere: every
//     method no-ops (and allocates nothing), so instrumented code threads
//     an optional handle without branching. Hot loops that build event
//     fields should still guard with Enabled to skip field construction.
//
//   - Telemetry never alters results. Instrumentation only reads clocks
//     and bumps atomics; the sweep engine's bit-identical determinism
//     guarantee is unaffected. Counter values and timer invocation counts
//     are themselves scheduling-invariant (identical for any worker
//     count); only durations, gauges and event timestamps reflect
//     wall-clock reality.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Level orders event severities. Off suppresses every event while leaving
// metric collection active.
type Level int8

// The levels, least to most severe.
const (
	Debug Level = iota
	Info
	Warn
	Error
	Off
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	case Off:
		return "off"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a flag value to a Level.
func ParseLevel(s string) (Level, error) {
	for _, l := range []Level{Debug, Info, Warn, Error, Off} {
		if s == l.String() {
			return l, nil
		}
	}
	return Off, fmt.Errorf("obs: unknown level %q (want debug|info|warn|error|off)", s)
}

// Field is one structured key/value attachment of an event.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured log record.
type Event struct {
	Time   time.Time
	Level  Level
	Msg    string
	Fields []Field
}

// Sink consumes events. Implementations must be safe for concurrent use.
type Sink interface {
	Write(e Event)
}

// TextSink renders events as single lines ("15:04:05.000 INFO  msg
// key=value ...") to an io.Writer, serializing concurrent writers.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink wraps w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Write implements Sink.
func (s *TextSink) Write(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "%s %-5s %s", e.Time.Format("15:04:05.000"), e.Level, e.Msg)
	for _, f := range e.Fields {
		fmt.Fprintf(s.w, " %s=%v", f.Key, f.Value)
	}
	fmt.Fprintln(s.w)
}

// Obs bundles an event sink with a metrics registry and an optional
// trace buffer. The zero value is not useful; construct with New. A nil
// *Obs disables all telemetry.
type Obs struct {
	level Level
	sink  Sink
	m     *Metrics
	trace *Trace
}

// New returns an Obs emitting events at or above level to sink (nil sink
// suppresses events) with a fresh metrics registry. Metrics are collected
// whenever the Obs itself is non-nil, regardless of level.
func New(level Level, sink Sink) *Obs {
	return NewWithMetrics(level, sink, nil)
}

// NewWithMetrics is New recording into the given shared registry instead
// of a fresh one, so several Obs — e.g. the per-job event streams of the
// analysis service — fold their engine metrics into one process-wide
// snapshot. A nil m gets a fresh registry.
func NewWithMetrics(level Level, sink Sink, m *Metrics) *Obs {
	if m == nil {
		m = NewMetrics()
	}
	return &Obs{level: level, sink: sink, m: m}
}

// Level reports the minimum emitted event level (Off for a nil Obs).
func (o *Obs) Level() Level {
	if o == nil {
		return Off
	}
	return o.level
}

// Enabled reports whether events at level l would be emitted (Off is not
// an event level and is never enabled). It is the guard hot paths use
// before building fields.
func (o *Obs) Enabled(l Level) bool {
	return o != nil && o.sink != nil && l < Off && l >= o.level
}

// Event emits one structured event when its level is enabled.
func (o *Obs) Event(l Level, msg string, fields ...Field) {
	if !o.Enabled(l) {
		return
	}
	o.sink.Write(Event{Time: time.Now(), Level: l, Msg: msg, Fields: fields})
}

// Debug emits a debug-level event.
func (o *Obs) Debug(msg string, fields ...Field) { o.Event(Debug, msg, fields...) }

// Info emits an info-level event.
func (o *Obs) Info(msg string, fields ...Field) { o.Event(Info, msg, fields...) }

// Warn emits a warn-level event.
func (o *Obs) Warn(msg string, fields ...Field) { o.Event(Warn, msg, fields...) }

// Error emits an error-level event.
func (o *Obs) Error(msg string, fields ...Field) { o.Event(Error, msg, fields...) }

// Metrics returns the registry (nil for a nil Obs; all registry methods
// tolerate that).
func (o *Obs) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.m
}

// AttachTrace enables trace collection: spans and instrumented kernels
// record Chrome trace events into t until the Obs is dropped. It mutates
// the Obs without synchronization, so it must be called before the
// handle is shared across goroutines (in practice: right after New).
func (o *Obs) AttachTrace(t *Trace) {
	if o == nil {
		return
	}
	o.trace = t
}

// Trace returns the attached trace buffer (nil when tracing is off or o
// is nil). Hot paths use the nil check as their fast-path guard.
func (o *Obs) Trace() *Trace {
	if o == nil {
		return nil
	}
	return o.trace
}

// Counter returns the named counter handle (nil, and safe, when o is nil).
func (o *Obs) Counter(name string) *Counter { return o.Metrics().Counter(name) }

// Gauge returns the named gauge handle (nil, and safe, when o is nil).
func (o *Obs) Gauge(name string) *Gauge { return o.Metrics().Gauge(name) }

// Timer returns the named timer handle (nil, and safe, when o is nil).
func (o *Obs) Timer(name string) *Timer { return o.Metrics().Timer(name) }

// Histogram returns the named histogram handle (nil, and safe, when o is
// nil).
func (o *Obs) Histogram(name string) *Histogram { return o.Metrics().Histogram(name) }

// LineWriter adapts the Obs to an io.Writer emitting one event per
// written line at the given level — the bridge for legacy io.Writer
// logging hooks (e.g. train.Config.Log). It returns nil when the level is
// disabled, so callers can pass the result straight to an optional-log
// field.
func (o *Obs) LineWriter(l Level) io.Writer {
	if !o.Enabled(l) {
		return nil
	}
	return &lineWriter{o: o, level: l}
}

// lineWriter buffers partial writes and emits completed lines as events.
type lineWriter struct {
	mu    sync.Mutex
	o     *Obs
	level Level
	buf   []byte
}

// Write implements io.Writer.
func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		i := -1
		for j, b := range w.buf {
			if b == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			return len(p), nil
		}
		line := string(w.buf[:i])
		w.buf = w.buf[i+1:]
		if line != "" {
			w.o.Event(w.level, line)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a registry of named counters, gauges and timers. Handle
// lookup takes the registry mutex; updates through a handle are a single
// atomic operation, so hot paths should look handles up once (or accept
// the ~50 ns map hit, which is negligible next to a layer forward).
//
// Determinism contract (relied on by the snapshot tests and CI): counter
// values and timer Counts depend only on the work performed, never on
// scheduling — two runs of the same sweep with different worker counts
// produce identical counters. Gauges and timer durations are wall-clock
// telemetry with no such guarantee.
//
// A nil *Metrics (and the nil handles it returns) is valid everywhere and
// makes every operation a no-op.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		timers:     map[string]*Timer{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (registering on first use) the named counter.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Timer returns (registering on first use) the named timer.
func (m *Metrics) Timer(name string) *Timer {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.timers[name]
	if t == nil {
		t = &Timer{}
		m.timers[name] = t
	}
	return t
}

// Histogram returns (registering on first use) the named histogram.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.histograms[name]
	if h == nil {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric with last-write-wins Set and atomic Add.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates observation count, total duration and a log2
// latency histogram (in nanoseconds), so snapshots report percentiles
// alongside the scheduling-invariant count/total.
type Timer struct {
	n, ns atomic.Int64
	h     Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.n.Add(1)
	t.ns.Add(int64(d))
	t.h.Observe(float64(d))
}

// Hist exposes the timer's nanosecond-domain histogram (nil for a nil
// timer) — the handle the Prometheus exposition reads buckets from.
func (t *Timer) Hist() *Histogram {
	if t == nil {
		return nil
	}
	return &t.h
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// TimerStats is a timer's snapshot form. The percentiles come from the
// timer's log2 histogram, so they carry bucket-resolution (~2×) error.
type TimerStats struct {
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	AvgNS   float64 `json:"avg_ns"`
	P50NS   float64 `json:"p50_ns,omitempty"`
	P90NS   float64 `json:"p90_ns,omitempty"`
	P99NS   float64 `json:"p99_ns,omitempty"`
}

// Snapshot is a point-in-time copy of every metric, JSON-serializable
// with deterministic key order (encoding/json sorts map keys).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Timers     map[string]TimerStats     `json:"timers"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Safe to call concurrently with updates;
// values are read atomically per metric.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Timers:   map[string]TimerStats{},
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range m.timers {
		n, total := t.Count(), t.Total()
		st := TimerStats{Count: n, TotalNS: int64(total)}
		if n > 0 {
			st.AvgNS = float64(total) / float64(n)
			hs := t.h.Stats()
			st.P50NS, st.P90NS, st.P99NS = hs.P50, hs.P90, hs.P99
		}
		s.Timers[name] = st
	}
	if len(m.histograms) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(m.histograms))
		for name, h := range m.histograms {
			s.Histograms[name] = h.Stats()
		}
	}
	return s
}

// WriteJSON serializes the snapshot to w (indented, sorted keys).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: write snapshot: %w", err)
	}
	return nil
}

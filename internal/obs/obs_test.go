package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{Debug, Info, Warn, Error, Off} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("expected error for unknown level")
	}
}

func TestEventLevelFiltering(t *testing.T) {
	var b strings.Builder
	o := New(Warn, NewTextSink(&b))
	o.Debug("d")
	o.Info("i")
	o.Warn("w", F("k", 7))
	o.Error("e")
	out := b.String()
	if strings.Contains(out, " d") || strings.Contains(out, " i") {
		t.Fatalf("sub-threshold events emitted:\n%s", out)
	}
	if !strings.Contains(out, "w k=7") || !strings.Contains(out, "error e") {
		t.Fatalf("expected events missing:\n%s", out)
	}
	if o.Enabled(Info) || !o.Enabled(Warn) {
		t.Fatal("Enabled disagrees with level")
	}
	off := New(Off, NewTextSink(&b))
	if off.Enabled(Error) {
		t.Fatal("Off must suppress every level")
	}
}

func TestNilObsIsSafeAndFree(t *testing.T) {
	var o *Obs
	// Every entry point must tolerate nil.
	o.Debug("x")
	o.Info("x")
	o.Warn("x")
	o.Error("x")
	o.Counter("c").Inc()
	o.Gauge("g").Set(1)
	o.Gauge("g").Add(1)
	o.Timer("t").Observe(time.Second)
	o.StartSpan("s").End()
	if o.LineWriter(Info) != nil {
		t.Fatal("nil obs LineWriter must be nil")
	}
	snap := o.Metrics().Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Timers) != 0 {
		t.Fatalf("nil metrics snapshot non-empty: %+v", snap)
	}
	// The disabled path is the one threaded through the sweep engine's
	// hot loops: it must not allocate.
	if n := testing.AllocsPerRun(200, func() {
		o.Info("x")
		o.Counter("c").Add(1)
		o.Timer("t").Observe(1)
	}); n != 0 {
		t.Fatalf("disabled telemetry allocates %.1f per op", n)
	}
}

func TestCountersGaugesTimers(t *testing.T) {
	m := NewMetrics()
	m.Counter("a").Add(3)
	m.Counter("a").Inc()
	if v := m.Counter("a").Value(); v != 4 {
		t.Fatalf("counter = %d", v)
	}
	m.Gauge("g").Set(2.5)
	m.Gauge("g").Add(0.5)
	if v := m.Gauge("g").Value(); v != 3 {
		t.Fatalf("gauge = %v", v)
	}
	m.Timer("t").Observe(2 * time.Millisecond)
	m.Timer("t").Observe(4 * time.Millisecond)
	tm := m.Timer("t")
	if tm.Count() != 2 || tm.Total() != 6*time.Millisecond {
		t.Fatalf("timer = %d obs, %v total", tm.Count(), tm.Total())
	}
}

func TestMetricsConcurrentUpdates(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Counter("c").Inc()
				m.Gauge("g").Add(1)
				m.Timer("t").Observe(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if v := m.Counter("c").Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if v := m.Gauge("g").Value(); v != 8000 {
		t.Fatalf("gauge = %v, want 8000", v)
	}
	if n := m.Timer("t").Count(); n != 8000 {
		t.Fatalf("timer count = %d, want 8000", n)
	}
}

func TestSnapshotJSON(t *testing.T) {
	o := New(Off, nil)
	o.Counter("sweep.jobs").Add(12)
	o.Gauge("util").Set(0.75)
	o.Timer("fwd").Observe(10 * time.Millisecond)
	var b strings.Builder
	if err := o.Metrics().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, b.String())
	}
	if back.Counters["sweep.jobs"] != 12 || back.Gauges["util"] != 0.75 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	ts := back.Timers["fwd"]
	if ts.Count != 1 || ts.TotalNS != int64(10*time.Millisecond) || ts.AvgNS != float64(10*time.Millisecond) {
		t.Fatalf("timer stats mismatch: %+v", ts)
	}
}

func TestSpanRecordsTimerAndEvent(t *testing.T) {
	var b strings.Builder
	o := New(Info, NewTextSink(&b))
	sp := o.StartSpan("phase", F("k", "v"))
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration = %v", d)
	}
	if o.Timer("span.phase").Count() != 1 {
		t.Fatal("span timer not recorded")
	}
	if !strings.Contains(b.String(), "phase done") || !strings.Contains(b.String(), "k=v") {
		t.Fatalf("span end event missing:\n%s", b.String())
	}
}

func TestLineWriterSplitsLines(t *testing.T) {
	var b strings.Builder
	o := New(Debug, NewTextSink(&b))
	w := o.LineWriter(Debug)
	if w == nil {
		t.Fatal("enabled LineWriter must be non-nil")
	}
	w.Write([]byte("epoch 1/2: loss=0.5\nepo"))
	w.Write([]byte("ch 2/2: loss=0.3\n"))
	out := b.String()
	if !strings.Contains(out, "epoch 1/2: loss=0.5") || !strings.Contains(out, "epoch 2/2: loss=0.3") {
		t.Fatalf("lines not split into events:\n%s", out)
	}
	if o.LineWriter(Off) != nil {
		t.Fatal("LineWriter above threshold must be nil")
	}
}

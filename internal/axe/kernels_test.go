package axe

import (
	"testing"

	"redcane/internal/approx"
	"redcane/internal/tensor"
)

// weirdMul is a deliberately hostile multiplier: mul(0, c) ≠ 0, so the
// code-domain GEMM's padded zero-code products are wrong unless the
// hoisted border correction subtracts them. Only tests use it; real
// approximate multipliers may also violate mul(0, c) = 0.
type weirdMul struct{}

func (weirdMul) mul(a, b uint16) uint32 { return uint32(a)*uint32(b) + uint32(b&7) + 3 }

func requireSameBits(t *testing.T, what string, got, want *tensor.Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v vs %v", what, got.Shape, want.Shape)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", what, i, got.Data[i], want.Data[i])
		}
	}
}

// checkQuantConv runs the optimized kernel against the naive reference
// for one multiplier over a spread of conv shapes, on both the im2col
// GEMM path and the forced streaming fallback, with and without scratch.
func checkQuantConv[M macMul](t *testing.T, name string, m M, bits uint) {
	t.Helper()
	cases := []struct {
		n, c, h, w, oc, k, stride, pad int
	}{
		{1, 1, 5, 5, 1, 3, 1, 0},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 2, 9, 9, 3, 9, 1, 0},
		{2, 4, 8, 8, 6, 3, 2, 1},
		{1, 1, 4, 4, 2, 1, 1, 0},
		{3, 2, 7, 5, 5, 3, 2, 2},
	}
	for i, tc := range cases {
		x := randT(uint64(i+1), tc.n, tc.c, tc.h, tc.w)
		w := randT(uint64(i+100), tc.oc, tc.c, tc.k, tc.k)
		bias := randT(uint64(i+200), tc.oc)
		for _, b := range []*tensor.Tensor{bias, nil} {
			ref := quantConv2DRef(m, x, w, b, tc.stride, tc.pad, bits)
			requireSameBits(t, name+" gemm", quantConv2D(m, x, w, b, tc.stride, tc.pad, bits, nil, nil), ref)

			s := tensor.NewScratch()
			got := quantConv2D(m, x, w, b, tc.stride, tc.pad, bits, s, nil)
			requireSameBits(t, name+" gemm scratch", got, ref)
			s.Release(got)
			requireSameBits(t, name+" gemm scratch reuse", quantConv2D(m, x, w, b, tc.stride, tc.pad, bits, s, nil), ref)

			old := quantGEMMMaxCols
			quantGEMMMaxCols = 0 // force the streaming fallback
			requireSameBits(t, name+" stream", quantConv2D(m, x, w, b, tc.stride, tc.pad, bits, nil, nil), ref)
			quantGEMMMaxCols = old
		}
	}
}

func TestQuantConv2DBitwiseVsRefExact(t *testing.T) { checkQuantConv(t, "exact", exactMul{}, 8) }

func TestQuantConv2DBitwiseVsRefExact12Bit(t *testing.T) {
	checkQuantConv(t, "exact12", exactMul{}, 12)
}

func TestQuantConv2DBitwiseVsRefLUT(t *testing.T) {
	lut := approx.CompileLUT(approx.BrokenCarry{Depth: 6, Compensate: true})
	checkQuantConv(t, "lut", lutMul{lut}, 8)
}

func TestQuantConv2DBitwiseVsRefWeirdMul(t *testing.T) {
	// mul(0, c) ≠ 0: the padded-zero correction must be exact.
	checkQuantConv(t, "weird", weirdMul{}, 8)
}

func TestQuantCapsVotesBitwiseVsRef(t *testing.T) {
	u := randT(31, 3, 18, 8)
	w := randT(32, 18, 10, 16, 8)
	for _, tc := range []struct {
		name string
		run  func() (*tensor.Tensor, *tensor.Tensor)
	}{
		{"exact", func() (*tensor.Tensor, *tensor.Tensor) {
			return quantCapsVotes(exactMul{}, u, w, 8, nil, nil), quantCapsVotesRef(exactMul{}, u, w, 8)
		}},
		{"lut", func() (*tensor.Tensor, *tensor.Tensor) {
			m := lutMul{approx.CompileLUT(approx.BrokenCarry{Depth: 4})}
			return quantCapsVotes(m, u, w, 8, nil, nil), quantCapsVotesRef(m, u, w, 8)
		}},
		{"weird", func() (*tensor.Tensor, *tensor.Tensor) {
			return quantCapsVotes(weirdMul{}, u, w, 8, nil, nil), quantCapsVotesRef(weirdMul{}, u, w, 8)
		}},
	} {
		got, want := tc.run()
		requireSameBits(t, "votes "+tc.name, got, want)
	}
}

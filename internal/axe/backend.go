package axe

import (
	"fmt"
	"sort"

	"redcane/internal/approx"
	"redcane/internal/caps"
	"redcane/internal/fixed"
	"redcane/internal/tensor"
)

// effBits resolves the default wordlength.
func effBits(bits uint) uint {
	if bits == 0 {
		return fixed.DefaultBits
	}
	return bits
}

// QuantExact is the bit-exact quantized backend: every MAC kernel runs on
// b-bit affine-quantized operands with exact multiplication and exact
// accumulation. It is the hardware baseline an approximate design is
// measured against — QuantApprox with no assignments matches it
// bit-for-bit, and at high wordlengths it converges to Float.
type QuantExact struct {
	// Bits is the operand wordlength, 1–16 (default 8 when zero).
	Bits uint
}

// Name implements caps.Backend.
func (b QuantExact) Name() string { return fmt.Sprintf("quant-exact-%d", effBits(b.Bits)) }

// BaseID implements caps.Backend: all b-bit quantized backends share one
// exact baseline.
func (b QuantExact) BaseID() string { return fmt.Sprintf("quant%d", effBits(b.Bits)) }

// ApproxLayer implements caps.Backend: the exact path is the baseline.
func (QuantExact) ApproxLayer(string) bool { return false }

// Conv2D implements caps.Backend.
func (b QuantExact) Conv2D(_ string, x, w, bias *tensor.Tensor, stride, pad int, s *tensor.Scratch) *tensor.Tensor {
	return quantConv2D(exactMul{}, x, w, bias, stride, pad, effBits(b.Bits), s, nil)
}

// CapsVotes implements caps.Backend.
func (b QuantExact) CapsVotes(_ string, u, w *tensor.Tensor, s *tensor.Scratch) *tensor.Tensor {
	return quantCapsVotes(exactMul{}, u, w, effBits(b.Bits), s, nil)
}

// ExactBaseline implements caps.Baseliner: the exact path is its own
// baseline, so probing it yields ranges, moments and overflow only.
func (b QuantExact) ExactBaseline() caps.Backend { return b }

// WithOverflow implements caps.OverflowBackend.
func (b QuantExact) WithOverflow(report func(layer string, n int64)) caps.Backend {
	return overflowQuantExact{QuantExact: b, report: report}
}

// QuantApprox is the approximate-execution backend: b-bit quantized MACs
// where the layers named in the assignment map multiply through a
// behavioral approximate-multiplier LUT, and every other layer runs the
// exact quantized path. An empty assignment map makes it bit-identical
// to QuantExact at the same wordlength.
type QuantApprox struct {
	bits  uint
	luts  map[string]*approx.LUT
	mults map[string]approx.Multiplier
}

// NewQuantApprox compiles an approximate backend from per-layer
// multiplier assignments (a design's MAC-output choices). Each distinct
// multiplier is enumerated into a LUT once, shared across its layers.
// Assignments of approx.Exact (or nil) are dropped — those layers run
// the exact quantized path, so an all-exact design is still bit-identical
// to QuantExact. LUTs are 8-bit, so a non-exact assignment with bits > 8
// is an error.
func NewQuantApprox(bits uint, mults map[string]approx.Multiplier) (*QuantApprox, error) {
	be := &QuantApprox{
		bits:  effBits(bits),
		luts:  map[string]*approx.LUT{},
		mults: map[string]approx.Multiplier{},
	}
	compiled := map[approx.Multiplier]*approx.LUT{}
	for layer, m := range mults {
		if m == nil {
			continue
		}
		if _, exact := m.(approx.Exact); exact {
			continue
		}
		if be.bits > 8 {
			return nil, fmt.Errorf("axe: multiplier LUTs are 8-bit, cannot run layer %q approximately at %d bits", layer, be.bits)
		}
		lut, ok := compiled[m]
		if !ok {
			lut = approx.CompileLUT(m)
			compiled[m] = lut
		}
		be.luts[layer] = lut
		be.mults[layer] = m
	}
	return be, nil
}

// Name implements caps.Backend, listing the approximated layers so two
// designs at the same wordlength stay distinguishable in telemetry.
func (b *QuantApprox) Name() string {
	layers := make([]string, 0, len(b.luts))
	for l := range b.luts {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	return fmt.Sprintf("quant-approx-%d%v", b.bits, layers)
}

// BaseID implements caps.Backend: the exact baseline is QuantExact at
// the same wordlength, so their clean prefixes are interchangeable.
func (b *QuantApprox) BaseID() string { return fmt.Sprintf("quant%d", b.bits) }

// ApproxLayer implements caps.Backend.
func (b *QuantApprox) ApproxLayer(layer string) bool {
	_, ok := b.luts[layer]
	return ok
}

// Conv2D implements caps.Backend.
func (b *QuantApprox) Conv2D(layer string, x, w, bias *tensor.Tensor, stride, pad int, s *tensor.Scratch) *tensor.Tensor {
	if lut, ok := b.luts[layer]; ok {
		return quantConv2D(lutMul{lut}, x, w, bias, stride, pad, b.bits, s, nil)
	}
	return quantConv2D(exactMul{}, x, w, bias, stride, pad, b.bits, s, nil)
}

// CapsVotes implements caps.Backend.
func (b *QuantApprox) CapsVotes(layer string, u, w *tensor.Tensor, s *tensor.Scratch) *tensor.Tensor {
	if lut, ok := b.luts[layer]; ok {
		return quantCapsVotes(lutMul{lut}, u, w, b.bits, s, nil)
	}
	return quantCapsVotes(exactMul{}, u, w, b.bits, s, nil)
}

// ExactBaseline implements caps.Baseliner: QuantExact at the same
// wordlength — the clean signal the probes compute SQNR against.
func (b *QuantApprox) ExactBaseline() caps.Backend { return QuantExact{Bits: b.bits} }

// WithOverflow implements caps.OverflowBackend.
func (b *QuantApprox) WithOverflow(report func(layer string, n int64)) caps.Backend {
	return overflowQuantApprox{inner: b, report: report}
}

// overflowQuantExact is QuantExact with per-call accumulator-overflow
// reporting; outputs are bit-identical to the plain backend.
type overflowQuantExact struct {
	QuantExact
	report func(layer string, n int64)
}

func (b overflowQuantExact) Conv2D(layer string, x, w, bias *tensor.Tensor, stride, pad int, s *tensor.Scratch) *tensor.Tensor {
	var n int64
	out := quantConv2D(exactMul{}, x, w, bias, stride, pad, effBits(b.Bits), s, &n)
	if n > 0 {
		b.report(layer, n)
	}
	return out
}

func (b overflowQuantExact) CapsVotes(layer string, u, w *tensor.Tensor, s *tensor.Scratch) *tensor.Tensor {
	var n int64
	out := quantCapsVotes(exactMul{}, u, w, effBits(b.Bits), s, &n)
	if n > 0 {
		b.report(layer, n)
	}
	return out
}

// overflowQuantApprox is *QuantApprox with per-call accumulator-overflow
// reporting; outputs are bit-identical to the plain backend.
type overflowQuantApprox struct {
	inner  *QuantApprox
	report func(layer string, n int64)
}

func (b overflowQuantApprox) Name() string                  { return b.inner.Name() }
func (b overflowQuantApprox) BaseID() string                { return b.inner.BaseID() }
func (b overflowQuantApprox) ApproxLayer(layer string) bool { return b.inner.ApproxLayer(layer) }

func (b overflowQuantApprox) Conv2D(layer string, x, w, bias *tensor.Tensor, stride, pad int, s *tensor.Scratch) *tensor.Tensor {
	var n int64
	var out *tensor.Tensor
	if lut, ok := b.inner.luts[layer]; ok {
		out = quantConv2D(lutMul{lut}, x, w, bias, stride, pad, b.inner.bits, s, &n)
	} else {
		out = quantConv2D(exactMul{}, x, w, bias, stride, pad, b.inner.bits, s, &n)
	}
	if n > 0 {
		b.report(layer, n)
	}
	return out
}

func (b overflowQuantApprox) CapsVotes(layer string, u, w *tensor.Tensor, s *tensor.Scratch) *tensor.Tensor {
	var n int64
	var out *tensor.Tensor
	if lut, ok := b.inner.luts[layer]; ok {
		out = quantCapsVotes(lutMul{lut}, u, w, b.inner.bits, s, &n)
	} else {
		out = quantCapsVotes(exactMul{}, u, w, b.inner.bits, s, &n)
	}
	if n > 0 {
		b.report(layer, n)
	}
	return out
}

var (
	_ caps.Backend         = QuantExact{}
	_ caps.Backend         = (*QuantApprox)(nil)
	_ caps.OverflowBackend = QuantExact{}
	_ caps.OverflowBackend = (*QuantApprox)(nil)
	_ caps.Baseliner       = QuantExact{}
	_ caps.Baseliner       = (*QuantApprox)(nil)
	_ caps.Backend         = overflowQuantExact{}
	_ caps.Backend         = overflowQuantApprox{}
)

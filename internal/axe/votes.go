package axe

import (
	"redcane/internal/approx"
	"redcane/internal/caps"
	"redcane/internal/fixed"
	"redcane/internal/tensor"
)

// QuantClassCapsVotes computes the fully-connected capsule votes
// û[b,i,j,d] = Σ_e W[i,j,d,e]·u[b,i,e] with quantized operands and the
// given approximate multiplier, mirroring caps.ClassCaps' float path.
// u is [n, inCaps, inDim]; w is [inCaps, outCaps, outDim, inDim].
func QuantClassCapsVotes(u, w *tensor.Tensor, mult approx.Multiplier, bits uint) *tensor.Tensor {
	qu := fixed.Calibrate(u, bits)
	qw := fixed.Calibrate(w, bits)
	lut := approx.CompileLUT(mult)

	n, inCaps, inDim := u.Shape[0], u.Shape[1], u.Shape[2]
	outCaps, outDim := w.Shape[1], w.Shape[2]

	uc := make([]uint8, u.Len())
	for i, v := range u.Data {
		uc[i] = uint8(qu.Quantize(v))
	}
	wc := make([]uint8, w.Len())
	for i, v := range w.Data {
		wc[i] = uint8(qw.Quantize(v))
	}

	su, mu := qu.Step(), qu.Min
	sw, mw := qw.Step(), qw.Min
	votes := tensor.New(n, inCaps, outCaps, outDim, 1)
	for b := 0; b < n; b++ {
		for i := 0; i < inCaps; i++ {
			ubase := (b*inCaps + i) * inDim
			var sumU int64
			for e := 0; e < inDim; e++ {
				sumU += int64(uc[ubase+e])
			}
			for j := 0; j < outCaps; j++ {
				for d := 0; d < outDim; d++ {
					wbase := ((i*outCaps+j)*outDim + d) * inDim
					var lutSum, sumW int64
					for e := 0; e < inDim; e++ {
						lutSum += int64(lut.Mul(uc[ubase+e], wc[wbase+e]))
						sumW += int64(wc[wbase+e])
					}
					acc := su*sw*float64(lutSum) +
						su*mw*float64(sumU) +
						sw*mu*float64(sumW) +
						mu*mw*float64(inDim)
					votes.Data[((b*inCaps+i)*outCaps+j)*outDim+d] = acc
				}
			}
		}
	}
	return votes
}

// forwardRouting handles the two routing layers under approximate vote
// computation (the routing arithmetic itself stays accurate, matching how
// an accelerator would approximate the MAC-heavy vote stage first).
func (e *Engine) forwardRoutingLayer(l caps.Layer, x *tensor.Tensor) (out *tensor.Tensor, handled bool) {
	switch v := l.(type) {
	case *caps.ClassCaps:
		m, ok := e.Mults[v.LayerName]
		if !ok {
			return nil, false
		}
		u := caps.FlattenCaps(x, v.InCaps, v.InDim)
		votes := QuantClassCapsVotes(u, v.W, m, e.bits())
		routed := caps.DynamicRouting(votes, v.LayerName, v.RoutingIterations, nil)
		return routed.Reshape(x.Shape[0], v.OutCaps, v.OutDim), true
	case *caps.ConvCaps3D:
		m, ok := e.Mults[v.LayerName]
		if !ok {
			return nil, false
		}
		n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
		k := v.W.Shape[4]
		spec := tensor.ConvSpec{KH: k, KW: k, Stride: v.Stride, Pad: v.Pad}
		oh, ow := spec.OutSize(h, w)
		xi := x.Reshape(n, v.InCaps, v.InDim, h, w)
		votes := tensor.New(n, v.InCaps, v.OutCaps, v.OutDim, oh*ow)
		wsz := v.OutCaps * v.OutDim * v.InDim * k * k
		for i := 0; i < v.InCaps; i++ {
			sub := tensor.New(n, v.InDim, h, w)
			for b := 0; b < n; b++ {
				src := xi.Data[((b*v.InCaps+i)*v.InDim)*h*w : ((b*v.InCaps+i)*v.InDim+v.InDim)*h*w]
				copy(sub.Data[b*v.InDim*h*w:], src)
			}
			wi := tensor.NewFrom(v.W.Data[i*wsz:(i+1)*wsz], v.OutCaps*v.OutDim, v.InDim, k, k)
			conv := QuantConv2D(sub, wi, nil, v.Stride, v.Pad, m, e.bits())
			for b := 0; b < n; b++ {
				copy(votes.Data[((b*v.InCaps+i)*v.OutCaps*v.OutDim)*oh*ow:],
					conv.Data[b*v.OutCaps*v.OutDim*oh*ow:(b+1)*v.OutCaps*v.OutDim*oh*ow])
			}
		}
		routed := caps.DynamicRouting(votes, v.LayerName, v.RoutingIterations, nil)
		return routed.Reshape(n, v.OutCaps*v.OutDim, oh, ow), true
	default:
		return nil, false
	}
}

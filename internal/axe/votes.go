package axe

import (
	"fmt"

	"redcane/internal/approx"
	"redcane/internal/tensor"
)

// quantCapsVotes computes the fully-connected capsule votes û[b,i,j,d] =
// Σ_e W[i,j,d,e]·u[b,i,e] with b-bit quantized operands and m for every
// product, mirroring caps.ClassCaps' float vote stage. u is [n, inCaps,
// inDim]; w is [inCaps, outCaps, outDim, inDim]. The output may come
// from the scratch arena; callers release it.
func quantCapsVotes[M macMul](m M, u, w *tensor.Tensor, bits uint, s *tensor.Scratch) *tensor.Tensor {
	qu, uc := quantizeCodes(u, bits, s)
	qw, wc := quantizeCodes(w, bits, s)

	n, inCaps, inDim := u.Shape[0], u.Shape[1], u.Shape[2]
	outCaps, outDim := w.Shape[1], w.Shape[2]

	su, mu := qu.Step(), qu.Min
	sw, mw := qw.Step(), qw.Min
	votes := s.Take(n, inCaps, outCaps, outDim, 1)
	for b := 0; b < n; b++ {
		for i := 0; i < inCaps; i++ {
			ubase := (b*inCaps + i) * inDim
			var sumU int64
			for e := 0; e < inDim; e++ {
				sumU += int64(uc[ubase+e])
			}
			for j := 0; j < outCaps; j++ {
				for d := 0; d < outDim; d++ {
					wbase := ((i*outCaps+j)*outDim + d) * inDim
					var lutSum, sumW int64
					for e := 0; e < inDim; e++ {
						lutSum += int64(m.mul(uc[ubase+e], wc[wbase+e]))
						sumW += int64(wc[wbase+e])
					}
					acc := su*sw*float64(lutSum) +
						su*mw*float64(sumU) +
						sw*mu*float64(sumW) +
						mu*mw*float64(inDim)
					votes.Data[((b*inCaps+i)*outCaps+j)*outDim+d] = acc
				}
			}
		}
	}
	s.ReleaseU16(uc, wc)
	return votes
}

// QuantClassCapsVotes computes the fully-connected capsule votes with
// quantized operands and the given approximate multiplier. It is the
// standalone kernel entry point (the backends wrap it with operand-buffer
// reuse); multiplier LUTs are 8-bit, so bits must be ≤ 8.
func QuantClassCapsVotes(u, w *tensor.Tensor, mult approx.Multiplier, bits uint) *tensor.Tensor {
	if bits > 8 {
		panic(fmt.Sprintf("axe: multiplier LUTs are 8-bit, got %d", bits))
	}
	return quantCapsVotes(lutMul{approx.CompileLUT(mult)}, u, w, bits, nil)
}

package axe

import (
	"fmt"

	"redcane/internal/approx"
	"redcane/internal/tensor"
)

// quantCapsVotes computes the fully-connected capsule votes û[b,i,j,d] =
// Σ_e W[i,j,d,e]·u[b,i,e] with b-bit quantized operands and m for every
// product, mirroring caps.ClassCaps' float vote stage. u is [n, inCaps,
// inDim]; w is [inCaps, outCaps, outDim, inDim]. The output may come
// from the scratch arena; callers release it.
//
// The per-(i,j,d) weight-code sums are batch-independent, so they are
// computed once up front instead of inside the innermost loop (the
// reference in axe_ref.go re-derives them per vote); integer sums are
// order-free, so results match the reference exactly.
// A non-nil ovf tallies accumulator overflows (see accSatMax) without
// changing any output bit.
func quantCapsVotes[M macMul](m M, u, w *tensor.Tensor, bits uint, s *tensor.Scratch, ovf *int64) *tensor.Tensor {
	qu, uc := quantizeCodes(u, bits, s)
	qw, wc := quantizeCodes(w, bits, s)

	n, inCaps, inDim := u.Shape[0], u.Shape[1], u.Shape[2]
	outCaps, outDim := w.Shape[1], w.Shape[2]

	wRows := inCaps * outCaps * outDim
	sumW := make([]int64, wRows)
	for r := 0; r < wRows; r++ {
		row := wc[r*inDim : (r+1)*inDim]
		var sw int64
		for _, c := range row {
			sw += int64(c)
		}
		sumW[r] = sw
	}

	su, mu := qu.Step(), qu.Min
	sw, mw := qw.Step(), qw.Min
	satMax := accSatMax(bits)
	votes := s.Take(n, inCaps, outCaps, outDim, 1)
	for b := 0; b < n; b++ {
		for i := 0; i < inCaps; i++ {
			urow := uc[(b*inCaps+i)*inDim : (b*inCaps+i+1)*inDim : (b*inCaps+i+1)*inDim]
			var sumU int64
			for _, c := range urow {
				sumU += int64(c)
			}
			wr := i * outCaps * outDim
			dst := votes.Data[(b*inCaps+i)*outCaps*outDim:]
			for jd := 0; jd < outCaps*outDim; jd++ {
				wrow := wc[(wr+jd)*inDim : (wr+jd+1)*inDim : (wr+jd+1)*inDim]
				var lutSum int64
				for e, xc := range urow {
					lutSum += int64(m.mul(xc, wrow[e]))
				}
				if ovf != nil && (lutSum > satMax || lutSum < -satMax-1) {
					*ovf++
				}
				acc := su*sw*float64(lutSum) +
					su*mw*float64(sumU) +
					sw*mu*float64(sumW[wr+jd]) +
					mu*mw*float64(inDim)
				dst[jd] = acc
			}
		}
	}
	s.ReleaseU16(uc, wc)
	return votes
}

// QuantClassCapsVotes computes the fully-connected capsule votes with
// quantized operands and the given approximate multiplier. It is the
// standalone kernel entry point (the backends wrap it with operand-buffer
// reuse); multiplier LUTs are 8-bit, so bits must be ≤ 8.
func QuantClassCapsVotes(u, w *tensor.Tensor, mult approx.Multiplier, bits uint) *tensor.Tensor {
	if bits > 8 {
		panic(fmt.Sprintf("axe: multiplier LUTs are 8-bit, got %d", bits))
	}
	return quantCapsVotes(lutMul{approx.CompileLUT(mult)}, u, w, bits, nil, nil)
}

package axe

import (
	"math"
	"testing"

	"redcane/internal/approx"
	"redcane/internal/caps"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

func TestProbeBackendInert(t *testing.T) {
	// The probe decorator must pass the wrapped backend's outputs through
	// bit-for-bit — including the overflow-counting variants of the
	// quantized backends — while still accumulating stats.
	net := buildRoutingNet(31)
	x := randT(32, 3, 1, 6, 6)
	for _, be := range []caps.Backend{caps.Float{}, QuantExact{Bits: 8}} {
		ref := net.ForwardExec(x, noise.None{}, be)
		rec := caps.NewProbeRecorder()
		got := net.ForwardExec(x, noise.None{}, caps.NewProbeBackend(be, rec))
		for i := range ref.Data {
			if ref.Data[i] != got.Data[i] {
				t.Fatalf("%s: probed forward diverges at %d: %g vs %g",
					be.Name(), i, got.Data[i], ref.Data[i])
			}
		}
		layers := rec.Layers()
		if len(layers) == 0 {
			t.Fatalf("%s: no layers recorded", be.Name())
		}
		for _, l := range layers {
			if l.Count == 0 || l.Min > l.Max {
				t.Fatalf("%s: bad stats %+v", be.Name(), l)
			}
			if l.RefCount != 0 {
				t.Fatalf("%s: reference stats without a reference pass: %+v", be.Name(), l)
			}
		}
	}
}

func TestProbeRecorderSQNRAgainstReference(t *testing.T) {
	// Reference pass on the exact baseline, observation pass on a crude
	// approximate design: the approximated layer must show a finite
	// positive SQNR and full reference coverage.
	net := buildRoutingNet(33)
	x := randT(34, 3, 1, 6, 6)
	be, err := NewQuantApprox(8, map[string]approx.Multiplier{
		"ClassCaps": approx.OperandTrunc{ABits: 4, BBits: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	bl, ok := caps.Backend(be).(caps.Baseliner)
	if !ok {
		t.Fatal("QuantApprox must implement Baseliner")
	}
	refBe := bl.ExactBaseline()
	if refBe.Name() != (QuantExact{Bits: 8}).Name() {
		t.Fatalf("baseline = %s", refBe.Name())
	}

	rec := caps.NewProbeRecorder()
	rec.StartReference()
	net.ForwardExec(x, noise.None{}, caps.NewProbeBackend(refBe, rec))
	rec.StartObserve()
	net.ForwardExec(x, noise.None{}, caps.NewProbeBackend(be, rec))

	var class *caps.ProbeLayerStats
	for i, l := range rec.Layers() {
		if l.RefCount != l.Count || l.RefCount == 0 {
			t.Fatalf("layer %s: ref coverage %d of %d", l.Layer, l.RefCount, l.Count)
		}
		if l.Layer == "ClassCaps" {
			ls := rec.Layers()[i]
			class = &ls
		}
	}
	if class == nil {
		t.Fatal("ClassCaps not probed")
	}
	if class.ErrSq == 0 {
		t.Fatal("approximated layer shows no error vs the exact baseline")
	}
	db := class.SQNRdB()
	if db <= -caps.SQNRClampDB || db >= caps.SQNRClampDB {
		t.Fatalf("ClassCaps SQNR = %g dB, want finite", db)
	}
	// The shared exact prefix is bit-identical to the reference, so the
	// first layer reports "no measurable error".
	first := rec.Layers()[0]
	if first.SQNRdB() != caps.SQNRClampDB || first.ErrSq != 0 {
		t.Fatalf("exact-prefix layer %s: SQNR %g, ErrSq %g", first.Layer, first.SQNRdB(), first.ErrSq)
	}
}

func TestProbeOverflowCounting(t *testing.T) {
	// At 2-bit operands the modeled accumulator holds 2·2+8 = 12 bits
	// (satMax 2047). A convolution with 288 max-code products of 9 sums
	// to ~2592, so overflows must be counted — and the outputs must stay
	// bit-identical to the unprobed run (the Go kernels never wrap; the
	// counter is diagnostic).
	// One zero pins the quantization range's bottom; every other element
	// sits at the top, so nearly all codes are the 2-bit maximum (3) and
	// nearly every product contributes 9 to the code-domain sum.
	x := tensor.New(1, 32, 5, 5)
	for i := range x.Data {
		x.Data[i] = 1
	}
	x.Data[0] = 0
	w := tensor.New(4, 32, 3, 3)
	for i := range w.Data {
		w.Data[i] = 1
	}
	w.Data[0] = 0
	be := QuantExact{Bits: 2}
	ref := be.Conv2D("conv", x, w, nil, 1, 0, nil)
	rec := caps.NewProbeRecorder()
	pb := caps.NewProbeBackend(be, rec)
	got := pb.Conv2D("conv", x, w, nil, 1, 0, nil)
	for i := range ref.Data {
		if ref.Data[i] != got.Data[i] {
			t.Fatal("overflow counting changed the outputs")
		}
	}
	layers := rec.Layers()
	if len(layers) != 1 || layers[0].Overflow == 0 {
		t.Fatalf("overflow not counted: %+v", layers)
	}
	if layers[0].Overflow > layers[0].Count {
		t.Fatalf("overflow %d exceeds element count %d", layers[0].Overflow, layers[0].Count)
	}

	// The model grants 8 bits (256×) of headroom over a full-scale
	// product; 16·3·3 = 144 accumulation terms fit, so the same data
	// with half the channels must not overflow.
	xs := tensor.NewFrom(x.Data[:16*25], 1, 16, 5, 5)
	ws := tensor.NewFrom(w.Data[:4*16*9], 4, 16, 3, 3)
	recS := caps.NewProbeRecorder()
	caps.NewProbeBackend(be, recS).Conv2D("conv", xs, ws, nil, 1, 0, nil)
	if recS.Layers()[0].Overflow != 0 {
		t.Fatalf("shallow conv reported overflow: %+v", recS.Layers()[0])
	}
}

func TestExactBaselineIdentities(t *testing.T) {
	// QuantExact is its own baseline (stats-only probes); QuantApprox's
	// baseline is QuantExact at the same wordlength.
	qe := QuantExact{Bits: 6}
	if qe.ExactBaseline() != caps.Backend(qe) {
		t.Fatal("QuantExact baseline is not itself")
	}
	qa, err := NewQuantApprox(6, map[string]approx.Multiplier{
		"L": approx.OperandTrunc{ABits: 4, BBits: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, ok := qa.ExactBaseline().(QuantExact)
	if !ok || base.Bits != 6 {
		t.Fatalf("QuantApprox baseline = %#v", qa.ExactBaseline())
	}
}

func TestProbeStatsMoments(t *testing.T) {
	// Mean/variance/merge arithmetic on a known distribution.
	a := caps.ProbeLayerStats{Layer: "l", Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range []float64{1, 2, 3} {
		a.Count++
		a.Min = math.Min(a.Min, v)
		a.Max = math.Max(a.Max, v)
		a.Sum += v
		a.SumSq += v * v
	}
	if a.Mean() != 2 {
		t.Fatalf("mean = %g", a.Mean())
	}
	if got := a.Variance(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("variance = %g", got)
	}
	b := caps.ProbeLayerStats{Layer: "l", Min: 5, Max: 9, Count: 2, Sum: 14, SumSq: 106}
	a.MergeFrom(b)
	if a.Count != 5 || a.Min != 1 || a.Max != 9 || a.Sum != 20 {
		t.Fatalf("merged = %+v", a)
	}
	// SQNR edge cases: no reference, zero error, zero reference energy.
	if (caps.ProbeLayerStats{}).SQNRdB() != 0 {
		t.Fatal("SQNR without reference must be 0")
	}
	if (caps.ProbeLayerStats{RefCount: 1, RefSq: 4}).SQNRdB() != caps.SQNRClampDB {
		t.Fatal("zero-error SQNR must clamp high")
	}
	if (caps.ProbeLayerStats{RefCount: 1, ErrSq: 4}).SQNRdB() != -caps.SQNRClampDB {
		t.Fatal("zero-signal SQNR must clamp low")
	}
}

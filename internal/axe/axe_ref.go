package axe

import "redcane/internal/tensor"

// Naive reference implementations of the quantized kernels (the
// pre-GEMM per-pixel loops), retained as oracles. Integer accumulation
// is associative, so the optimized kernels must match these exactly —
// equal integer sums feed the identical float epilogue expression, and
// the tests demand bitwise equality.

// quantConv2DRef is the 6-deep per-pixel reference: for every
// (b, oy, ox, oc) it walks the kernel window, skipping padded taps, and
// re-derives the valid weight-code sum on border positions.
func quantConv2DRef[M macMul](m M, x, w, bias *tensor.Tensor, stride, pad int, bits uint) *tensor.Tensor {
	qx, xq := quantizeCodes(x, bits, nil)
	qw, wq := quantizeCodes(w, bits, nil)

	spec := tensor.ConvSpec{
		KH: w.Shape[2], KW: w.Shape[3], Stride: stride, Pad: pad,
		OutCh: w.Shape[0], InCh: w.Shape[1],
	}
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)

	k := spec.KH * spec.KW
	patch := spec.InCh * k
	out := tensor.New(n, spec.OutCh, oh, ow)
	sumWq := make([]int64, spec.OutCh)
	for oc := 0; oc < spec.OutCh; oc++ {
		sum := int64(0)
		for i := 0; i < patch; i++ {
			sum += int64(wq[oc*patch+i])
		}
		sumWq[oc] = sum
	}

	sx, mx := qx.Step(), qx.Min
	sw, mw := qw.Step(), qw.Min
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for oc := 0; oc < spec.OutCh; oc++ {
					var lutSum, xSum int64
					var pads int
					wBase := oc * patch
					for ci := 0; ci < spec.InCh; ci++ {
						for ky := 0; ky < spec.KH; ky++ {
							iy := oy*stride + ky - pad
							for kx := 0; kx < spec.KW; kx++ {
								ix := ox*stride + kx - pad
								widx := wBase + (ci*spec.KH+ky)*spec.KW + kx
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									pads++
									// A zero *value* operand: x=0 exactly.
									// Contribution is 0·w = 0; skip.
									continue
								}
								xc := xq[((b*spec.InCh+ci)*h+iy)*wd+ix]
								lutSum += int64(m.mul(xc, wq[widx]))
								xSum += int64(xc)
							}
						}
					}
					// Valid-w sum: subtract the padded weights' codes.
					validWq := sumWq[oc]
					if pads > 0 {
						validWq = 0
						for ci := 0; ci < spec.InCh; ci++ {
							for ky := 0; ky < spec.KH; ky++ {
								iy := oy*stride + ky - pad
								for kx := 0; kx < spec.KW; kx++ {
									ix := ox*stride + kx - pad
									if iy < 0 || iy >= h || ix < 0 || ix >= wd {
										continue
									}
									validWq += int64(wq[wBase+(ci*spec.KH+ky)*spec.KW+kx])
								}
							}
						}
					}
					valid := int64(patch - pads)
					acc := sx*sw*float64(lutSum) +
						sx*mw*float64(xSum) +
						sw*mx*float64(validWq) +
						mx*mw*float64(valid)
					if bias != nil {
						acc += bias.Data[oc]
					}
					out.Data[((b*spec.OutCh+oc)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

// quantCapsVotesRef is the per-vote reference that re-derives the
// weight-code sum inside the innermost loop.
func quantCapsVotesRef[M macMul](m M, u, w *tensor.Tensor, bits uint) *tensor.Tensor {
	qu, uc := quantizeCodes(u, bits, nil)
	qw, wc := quantizeCodes(w, bits, nil)

	n, inCaps, inDim := u.Shape[0], u.Shape[1], u.Shape[2]
	outCaps, outDim := w.Shape[1], w.Shape[2]

	su, mu := qu.Step(), qu.Min
	sw, mw := qw.Step(), qw.Min
	votes := tensor.New(n, inCaps, outCaps, outDim, 1)
	for b := 0; b < n; b++ {
		for i := 0; i < inCaps; i++ {
			ubase := (b*inCaps + i) * inDim
			var sumU int64
			for e := 0; e < inDim; e++ {
				sumU += int64(uc[ubase+e])
			}
			for j := 0; j < outCaps; j++ {
				for d := 0; d < outDim; d++ {
					wbase := ((i*outCaps+j)*outDim + d) * inDim
					var lutSum, sumW int64
					for e := 0; e < inDim; e++ {
						lutSum += int64(m.mul(uc[ubase+e], wc[wbase+e]))
						sumW += int64(wc[wbase+e])
					}
					acc := su*sw*float64(lutSum) +
						su*mw*float64(sumU) +
						sw*mu*float64(sumW) +
						mu*mw*float64(inDim)
					votes.Data[((b*inCaps+i)*outCaps+j)*outDim+d] = acc
				}
			}
		}
	}
	return votes
}

package axe

import (
	"math"
	"testing"

	"redcane/internal/approx"
	"redcane/internal/caps"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

func randT(seed uint64, shape ...int) *tensor.Tensor {
	return tensor.New(shape...).FillNormal(tensor.NewRNG(seed), 0, 0.5)
}

func TestQuantConv2DWithExactMultiplierApproximatesFloatConv(t *testing.T) {
	// With the exact multiplier, the only error is 8-bit quantization —
	// outputs must track the float convolution closely.
	x := randT(1, 2, 3, 8, 8)
	w := randT(2, 4, 3, 3, 3)
	b := randT(3, 4)
	ref := tensor.Conv2D(x, w, b, 1, 1)
	got := QuantConv2D(x, w, b, 1, 1, approx.Exact{}, 8)
	if !got.SameShape(ref) {
		t.Fatalf("shape %v vs %v", got.Shape, ref.Shape)
	}
	refRange := ref.Range()
	for i := range ref.Data {
		if math.Abs(got.Data[i]-ref.Data[i]) > 0.05*refRange {
			t.Fatalf("quantized conv too far at %d: %g vs %g", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestQuantConv2DStride2WithPadding(t *testing.T) {
	x := randT(4, 1, 2, 7, 7)
	w := randT(5, 3, 2, 3, 3)
	ref := tensor.Conv2D(x, w, nil, 2, 1)
	got := QuantConv2D(x, w, nil, 2, 1, approx.Exact{}, 8)
	refRange := ref.Range()
	for i := range ref.Data {
		if math.Abs(got.Data[i]-ref.Data[i]) > 0.05*refRange {
			t.Fatalf("padded quantized conv too far at %d: %g vs %g", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestQuantConv2DApproxWorseThanExact(t *testing.T) {
	x := randT(6, 2, 2, 6, 6)
	w := randT(7, 3, 2, 3, 3)
	ref := tensor.Conv2D(x, w, nil, 1, 0)
	exact := QuantConv2D(x, w, nil, 1, 0, approx.Exact{}, 8)
	crude := QuantConv2D(x, w, nil, 1, 0, approx.OperandTrunc{ABits: 6, BBits: 6, Compensate: true}, 8)
	errOf := func(y *tensor.Tensor) float64 {
		s := 0.0
		for i := range ref.Data {
			s += math.Abs(y.Data[i] - ref.Data[i])
		}
		return s
	}
	if errOf(crude) <= errOf(exact) {
		t.Fatalf("crude multiplier not worse: %g vs %g", errOf(crude), errOf(exact))
	}
}

func TestQuantConv2DRejectsWideWordlength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >8-bit request")
		}
	}()
	QuantConv2D(randT(8, 1, 1, 4, 4), randT(9, 1, 1, 3, 3), nil, 1, 0, approx.Exact{}, 12)
}

func buildTinyNet(seed uint64) *caps.Network {
	mkCaps := func(name string, inCh, cp, dim, k, stride, pad int, s uint64) *caps.ConvCaps2D {
		return &caps.ConvCaps2D{
			LayerName: name, Caps: cp, Dim: dim,
			W:      tensor.New(cp*dim, inCh, k, k).FillGlorot(tensor.NewRNG(s), inCh*k*k, cp*dim*k*k),
			B:      tensor.New(cp * dim),
			Stride: stride, Pad: pad,
		}
	}
	return &caps.Network{
		NetName:    "tiny",
		InputShape: []int{1, 6, 6},
		Layers: []caps.Layer{
			mkCaps("Caps2D1", 1, 2, 4, 3, 2, 1, seed),
			&caps.ClassCaps{
				LayerName: "ClassCaps",
				InCaps:    2 * 3 * 3, InDim: 4, OutCaps: 3, OutDim: 8,
				W: tensor.New(2*3*3, 3, 8, 4).
					FillGlorot(tensor.NewRNG(seed+1), 4, 8),
				RoutingIterations: 3,
			},
		},
	}
}

func TestEngineMatchesAccurateNetworkWithExactMultiplier(t *testing.T) {
	net := buildTinyNet(10)
	x := randT(11, 4, 1, 6, 6)
	clean := net.Classify(x, noise.None{})
	eng := &Engine{Net: net, Mults: map[string]approx.Multiplier{"Caps2D1": approx.Exact{}}}
	got := eng.Classify(x)
	same := 0
	for i := range clean {
		if clean[i] == got[i] {
			same++
		}
	}
	// 8-bit quantization may flip borderline samples but most must agree.
	if same < len(clean)-1 {
		t.Fatalf("exact-multiplier engine disagrees: %v vs %v", got, clean)
	}
}

func TestEngineEmptyMultsIsAccurate(t *testing.T) {
	net := buildTinyNet(12)
	x := randT(13, 3, 1, 6, 6)
	ref := net.Forward(x, noise.None{})
	got := (&Engine{Net: net}).Forward(x)
	for i := range ref.Data {
		if ref.Data[i] != got.Data[i] {
			t.Fatal("engine with no approximate layers must match the float path exactly")
		}
	}
}

func TestEngineAccuracySelfConsistent(t *testing.T) {
	net := buildTinyNet(14)
	x := randT(15, 6, 1, 6, 6)
	eng := &Engine{Net: net, Mults: map[string]approx.Multiplier{"Caps2D1": approx.DRUM{K: 6}}}
	preds := eng.Classify(x)
	if acc := Accuracy(eng, x, preds, 4); acc != 1 {
		t.Fatalf("self-accuracy = %g", acc)
	}
	if Accuracy(eng, tensor.New(0, 1, 6, 6), nil, 4) != 0 {
		t.Fatal("empty accuracy != 0")
	}
}

func TestEngineDefaultBits(t *testing.T) {
	e := &Engine{}
	if e.bits() != 8 {
		t.Fatalf("default bits = %d", e.bits())
	}
	e.Bits = 6
	if e.bits() != 6 {
		t.Fatalf("bits = %d", e.bits())
	}
}

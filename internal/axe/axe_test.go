package axe

import (
	"context"
	"math"
	"strings"
	"testing"

	"redcane/internal/approx"
	"redcane/internal/caps"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

func randT(seed uint64, shape ...int) *tensor.Tensor {
	return tensor.New(shape...).FillNormal(tensor.NewRNG(seed), 0, 0.5)
}

func TestQuantConv2DWithExactMultiplierApproximatesFloatConv(t *testing.T) {
	// With the exact multiplier, the only error is 8-bit quantization —
	// outputs must track the float convolution closely.
	x := randT(1, 2, 3, 8, 8)
	w := randT(2, 4, 3, 3, 3)
	b := randT(3, 4)
	ref := tensor.Conv2D(x, w, b, 1, 1)
	got := QuantConv2D(x, w, b, 1, 1, approx.Exact{}, 8)
	if !got.SameShape(ref) {
		t.Fatalf("shape %v vs %v", got.Shape, ref.Shape)
	}
	refRange := ref.Range()
	for i := range ref.Data {
		if math.Abs(got.Data[i]-ref.Data[i]) > 0.05*refRange {
			t.Fatalf("quantized conv too far at %d: %g vs %g", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestQuantConv2DStride2WithPadding(t *testing.T) {
	x := randT(4, 1, 2, 7, 7)
	w := randT(5, 3, 2, 3, 3)
	ref := tensor.Conv2D(x, w, nil, 2, 1)
	got := QuantConv2D(x, w, nil, 2, 1, approx.Exact{}, 8)
	refRange := ref.Range()
	for i := range ref.Data {
		if math.Abs(got.Data[i]-ref.Data[i]) > 0.05*refRange {
			t.Fatalf("padded quantized conv too far at %d: %g vs %g", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestQuantConv2DApproxWorseThanExact(t *testing.T) {
	x := randT(6, 2, 2, 6, 6)
	w := randT(7, 3, 2, 3, 3)
	ref := tensor.Conv2D(x, w, nil, 1, 0)
	exact := QuantConv2D(x, w, nil, 1, 0, approx.Exact{}, 8)
	crude := QuantConv2D(x, w, nil, 1, 0, approx.OperandTrunc{ABits: 6, BBits: 6, Compensate: true}, 8)
	errOf := func(y *tensor.Tensor) float64 {
		s := 0.0
		for i := range ref.Data {
			s += math.Abs(y.Data[i] - ref.Data[i])
		}
		return s
	}
	if errOf(crude) <= errOf(exact) {
		t.Fatalf("crude multiplier not worse: %g vs %g", errOf(crude), errOf(exact))
	}
}

func TestQuantConv2DRejectsWideWordlength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >8-bit request")
		}
	}()
	QuantConv2D(randT(8, 1, 1, 4, 4), randT(9, 1, 1, 3, 3), nil, 1, 0, approx.Exact{}, 12)
}

func buildTinyNet(seed uint64) *caps.Network {
	mkCaps := func(name string, inCh, cp, dim, k, stride, pad int, s uint64) *caps.ConvCaps2D {
		return &caps.ConvCaps2D{
			LayerName: name, Caps: cp, Dim: dim,
			W:      tensor.New(cp*dim, inCh, k, k).FillGlorot(tensor.NewRNG(s), inCh*k*k, cp*dim*k*k),
			B:      tensor.New(cp * dim),
			Stride: stride, Pad: pad,
		}
	}
	return &caps.Network{
		NetName:    "tiny",
		InputShape: []int{1, 6, 6},
		Layers: []caps.Layer{
			mkCaps("Caps2D1", 1, 2, 4, 3, 2, 1, seed),
			&caps.ClassCaps{
				LayerName: "ClassCaps",
				InCaps:    2 * 3 * 3, InDim: 4, OutCaps: 3, OutDim: 8,
				W: tensor.New(2*3*3, 3, 8, 4).
					FillGlorot(tensor.NewRNG(seed+1), 4, 8),
				RoutingIterations: 3,
			},
		},
	}
}

// buildRoutingNet extends the tiny net with a ConvCaps3D so routing-MAC
// coverage (vote convolutions and class-capsule votes) is exercised.
func buildRoutingNet(seed uint64) *caps.Network {
	return &caps.Network{
		NetName:    "tiny3d",
		InputShape: []int{1, 6, 6},
		Layers: []caps.Layer{
			&caps.ConvCaps2D{
				LayerName: "Caps2D1", Caps: 2, Dim: 4,
				W:      tensor.New(8, 1, 3, 3).FillGlorot(tensor.NewRNG(seed), 9, 72),
				B:      tensor.New(8),
				Stride: 2, Pad: 1,
			},
			&caps.ConvCaps3D{
				LayerName: "Caps3D1",
				InCaps:    2, InDim: 4, OutCaps: 2, OutDim: 4,
				W:      tensor.New(2, 8, 4, 3, 3).FillGlorot(tensor.NewRNG(seed+1), 36, 72),
				Stride: 1, Pad: 1, RoutingIterations: 2,
			},
			&caps.ClassCaps{
				LayerName: "ClassCaps",
				InCaps:    2 * 3 * 3, InDim: 4, OutCaps: 3, OutDim: 8,
				W:                 tensor.New(2*3*3, 3, 8, 4).FillGlorot(tensor.NewRNG(seed+2), 4, 8),
				RoutingIterations: 3,
			},
		},
	}
}

func TestQuantExactHighBitsConvergesToFloat(t *testing.T) {
	// The equivalence ladder's first rung: at a generous wordlength the
	// exact quantized backend must track the float backend closely on the
	// full forward pass.
	net := buildTinyNet(10)
	x := randT(11, 4, 1, 6, 6)
	ref := net.ForwardExec(x, noise.None{}, caps.Float{})
	got := net.ForwardExec(x, noise.None{}, QuantExact{Bits: 16})
	if !got.SameShape(ref) {
		t.Fatalf("shape %v vs %v", got.Shape, ref.Shape)
	}
	refRange := ref.Range()
	for i := range ref.Data {
		if math.Abs(got.Data[i]-ref.Data[i]) > 0.01*refRange {
			t.Fatalf("16-bit forward too far at %d: %g vs %g", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestQuantExactClassifyMostlyMatchesFloat(t *testing.T) {
	net := buildTinyNet(10)
	x := randT(11, 4, 1, 6, 6)
	clean := net.Classify(x, noise.None{})
	got := net.ClassifyFromExec(0, x, noise.None{}, nil, QuantExact{Bits: 8})
	same := 0
	for i := range clean {
		if clean[i] == got[i] {
			same++
		}
	}
	// 8-bit quantization may flip borderline samples but most must agree.
	if same < len(clean)-1 {
		t.Fatalf("quant-exact backend disagrees: %v vs %v", got, clean)
	}
}

func TestQuantApproxExactAssignmentsMatchQuantExactBitwise(t *testing.T) {
	// Exact and nil assignments carry no approximation, so the design
	// backend must collapse to the exact quantized backend bit-for-bit.
	net := buildRoutingNet(12)
	x := randT(13, 3, 1, 6, 6)
	be, err := NewQuantApprox(8, map[string]approx.Multiplier{
		"Caps2D1": approx.Exact{}, "ClassCaps": nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if be.ApproxLayer("Caps2D1") || be.ApproxLayer("ClassCaps") {
		t.Fatal("exact/nil assignments must not mark layers approximate")
	}
	if be.BaseID() != (QuantExact{Bits: 8}).BaseID() {
		t.Fatalf("BaseID %q != %q", be.BaseID(), (QuantExact{Bits: 8}).BaseID())
	}
	ref := net.ForwardExec(x, noise.None{}, QuantExact{Bits: 8})
	got := net.ForwardExec(x, noise.None{}, be)
	for i := range ref.Data {
		if ref.Data[i] != got.Data[i] {
			t.Fatalf("exact-assignment backend diverges at %d: %g vs %g", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestQuantApproxSharedPrefixBitIdenticalToQuantExact(t *testing.T) {
	// Layers before the first approximate site run the exact quantized
	// path — the invariant the sweep engine's prefix cache relies on
	// (equal BaseID => bit-identical prefix).
	net := buildRoutingNet(14)
	x := randT(15, 3, 1, 6, 6)
	be, err := NewQuantApprox(8, map[string]approx.Multiplier{
		"ClassCaps": approx.OperandTrunc{ABits: 5, BBits: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	frontier := net.BackendFrontier(be)
	if frontier != 2 {
		t.Fatalf("frontier = %d, want 2 (ClassCaps)", frontier)
	}
	ref := net.ForwardToExec(frontier, x, noise.None{}, QuantExact{Bits: 8})
	got := net.ForwardToExec(frontier, x, noise.None{}, be)
	for i := range ref.Data {
		if ref.Data[i] != got.Data[i] {
			t.Fatal("exact prefix must be bit-identical across same-BaseID backends")
		}
	}
}

func TestQuantApproxRoutingMACCoverage(t *testing.T) {
	// Approximate multipliers must reach the capsule vote MACs — both the
	// ConvCaps3D vote convolutions and the ClassCaps votes — not only the
	// plain convolution layers.
	net := buildRoutingNet(16)
	x := randT(17, 3, 1, 6, 6)
	ref := net.ForwardExec(x, noise.None{}, QuantExact{Bits: 8})
	for _, layer := range []string{"Caps3D1", "ClassCaps"} {
		be, err := NewQuantApprox(8, map[string]approx.Multiplier{
			layer: approx.OperandTrunc{ABits: 4, BBits: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !be.ApproxLayer(layer) {
			t.Fatalf("ApproxLayer(%q) = false", layer)
		}
		got := net.ForwardExec(x, noise.None{}, be)
		diff := false
		for i := range ref.Data {
			if ref.Data[i] != got.Data[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatalf("approximating %s did not change the forward pass", layer)
		}
	}
}

func TestAccuracyExecWorkerInvariantWithQuantBackend(t *testing.T) {
	// The engine-wide determinism contract extends to quantized backends:
	// identical results for any worker count.
	net := buildRoutingNet(18)
	x := randT(19, 6, 1, 6, 6)
	labels := []int{0, 1, 2, 0, 1, 2}
	be, err := NewQuantApprox(8, map[string]approx.Multiplier{
		"Caps2D1": approx.DRUM{K: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := caps.AccuracyExec(context.Background(), net, x, labels, noise.None{}, be, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := caps.AccuracyExec(context.Background(), net, x, labels, noise.None{}, be, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a3 {
		t.Fatalf("accuracy depends on workers: %g vs %g", a1, a3)
	}
}

func TestNewQuantApproxRejectsWideBitsWithApproximateMults(t *testing.T) {
	_, err := NewQuantApprox(12, map[string]approx.Multiplier{"L": approx.DRUM{K: 6}})
	if err == nil {
		t.Fatal("expected error: 8-bit LUTs cannot serve a 12-bit layer")
	}
	if !strings.Contains(err.Error(), "12") {
		t.Fatalf("error should name the wordlength: %v", err)
	}
	// Exact-only assignments are fine at any width — nothing approximate
	// to realize.
	if _, err := NewQuantApprox(12, map[string]approx.Multiplier{"L": approx.Exact{}}); err != nil {
		t.Fatal(err)
	}
}

func TestNewQuantApproxDedupesLUTCompilation(t *testing.T) {
	m := approx.DRUM{K: 6}
	be, err := NewQuantApprox(8, map[string]approx.Multiplier{"A": m, "B": m})
	if err != nil {
		t.Fatal(err)
	}
	if be.luts["A"] == nil || be.luts["A"] != be.luts["B"] {
		t.Fatal("identical multipliers must share one compiled LUT")
	}
}

func TestBackendNames(t *testing.T) {
	if got := (QuantExact{}).BaseID(); got != "quant8" {
		t.Fatalf("zero-value QuantExact BaseID = %q, want quant8 (DefaultBits)", got)
	}
	if got := (caps.Float{}).BaseID(); got != "float" {
		t.Fatalf("Float BaseID = %q", got)
	}
	be, err := NewQuantApprox(8, map[string]approx.Multiplier{"Conv1": approx.DRUM{K: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(be.Name(), "Conv1") {
		t.Fatalf("QuantApprox name should list approximate layers: %q", be.Name())
	}
}

package axe

import (
	"math"
	"testing"

	"redcane/internal/approx"
	"redcane/internal/caps"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

func TestQuantClassCapsVotesMatchesFloatWithExactMultiplier(t *testing.T) {
	u := randT(20, 2, 6, 4)
	w := tensor.New(6, 3, 8, 4).FillGlorot(tensor.NewRNG(21), 4, 8)
	got := QuantClassCapsVotes(u, w, approx.Exact{}, 8)

	// Float reference via the inference layer's own vote computation:
	// run ClassCaps with identity routing (1 iteration) is not directly
	// the votes, so compute the reference directly.
	want := tensor.New(2, 6, 3, 8, 1)
	for b := 0; b < 2; b++ {
		for i := 0; i < 6; i++ {
			for j := 0; j < 3; j++ {
				for d := 0; d < 8; d++ {
					s := 0.0
					for e := 0; e < 4; e++ {
						s += w.At(i, j, d, e) * u.At(b, i, e)
					}
					want.Set(s, b, i, j, d, 0)
				}
			}
		}
	}
	r := want.Range()
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 0.05*r {
			t.Fatalf("votes[%d] = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestBackendApproximatesClassCapsLayer(t *testing.T) {
	net := buildTinyNet(30)
	x := randT(31, 5, 1, 6, 6)
	clean := net.Classify(x, noise.None{})

	got := net.ClassifyFromExec(0, x, noise.None{}, nil, QuantExact{Bits: 8})
	agree := 0
	for i := range clean {
		if clean[i] == got[i] {
			agree++
		}
	}
	if agree < len(clean)-1 {
		t.Fatalf("quant-exact ClassCaps backend disagrees: %v vs %v", got, clean)
	}

	// A crude multiplier on the routing votes must change the scores.
	crude, err := NewQuantApprox(8, map[string]approx.Multiplier{"ClassCaps": approx.OperandTrunc{ABits: 6, BBits: 6}})
	if err != nil {
		t.Fatal(err)
	}
	ref := net.Forward(x, noise.None{})
	out := net.ForwardExec(x, noise.None{}, crude)
	diff := 0.0
	for i := range ref.Data {
		diff += math.Abs(ref.Data[i] - out.Data[i])
	}
	if diff == 0 {
		t.Fatal("crude routing-vote approximation had no effect")
	}
}

func TestBackendApproximatesConvCaps3D(t *testing.T) {
	c3d := &caps.ConvCaps3D{
		LayerName: "Caps3D",
		InCaps:    2, InDim: 4, OutCaps: 2, OutDim: 4,
		W:      tensor.New(2, 8, 4, 3, 3).FillGlorot(tensor.NewRNG(40), 36, 72),
		Stride: 1, Pad: 1, RoutingIterations: 3,
	}
	net := &caps.Network{
		NetName:    "c3d",
		InputShape: []int{8, 4, 4},
		Layers: []caps.Layer{
			c3d,
			&caps.ClassCaps{
				LayerName: "ClassCaps",
				InCaps:    2 * 4 * 4, InDim: 4, OutCaps: 3, OutDim: 8,
				W:                 tensor.New(2*4*4, 3, 8, 4).FillGlorot(tensor.NewRNG(41), 4, 8),
				RoutingIterations: 3,
			},
		},
	}
	x := randT(42, 3, 8, 4, 4)
	ref := net.Forward(x, noise.None{})

	out := net.ForwardExec(x, noise.None{}, QuantExact{Bits: 8})
	if !ref.SameShape(out) {
		t.Fatalf("shapes %v vs %v", ref.Shape, out.Shape)
	}
	// 8-bit quantization of votes: outputs must stay close.
	r := ref.Range()
	for i := range ref.Data {
		if math.Abs(out.Data[i]-ref.Data[i]) > 0.15*r {
			t.Fatalf("caps3d backend too far at %d: %g vs %g", i, out.Data[i], ref.Data[i])
		}
	}
}

func TestDynamicRoutingExportedMatchesLayer(t *testing.T) {
	votes := randT(50, 1, 3, 2, 4, 1)
	a := caps.DynamicRouting(votes.Clone(), "L", 3, nil)
	b := caps.DynamicRouting(votes.Clone(), "L", 3, noise.None{})
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("nil injector must behave as None")
		}
	}
}

func TestFlattenCapsExportedRoundTrip(t *testing.T) {
	x := randT(51, 2, 8, 3, 3)
	flat := caps.FlattenCaps(x, 2*3*3, 4)
	if flat.Shape[1] != 18 || flat.Shape[2] != 4 {
		t.Fatalf("flatten shape = %v", flat.Shape)
	}
	// Rank-3 passthrough.
	again := caps.FlattenCaps(flat, 18, 4)
	if &again.Data[0] != &flat.Data[0] {
		t.Fatal("rank-3 input must pass through")
	}
}

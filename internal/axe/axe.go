// Package axe is the approximate-execution engine: it runs a trained
// CapsNet's convolutions through genuine 8-bit quantized arithmetic with
// behavioral approximate-multiplier LUTs (int32 accumulation), instead of
// modeling the error as injected Gaussian noise.
//
// The paper validates its noise model by construction (Fig. 6 shows the
// component errors are Gaussian-like); this engine closes the loop
// empirically: accuracy under true approximate arithmetic can be compared
// against the accuracy the noise model predicts for the same components
// (the BenchmarkAblationNoiseVsLUT experiment).
package axe

import (
	"fmt"

	"redcane/internal/approx"
	"redcane/internal/caps"
	"redcane/internal/fixed"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

// QuantConv2D convolves x [n, inCh, h, w] with kernels w [outCh, inCh, k, k]
// using b-bit affine-quantized operands and the given multiplier for every
// partial product, accumulating exactly. Bias (may be nil) is added in
// float. Both quantizers are calibrated per call on the full tensors, the
// same per-array ranging the paper's noise model uses.
func QuantConv2D(x, w, bias *tensor.Tensor, stride, pad int, mult approx.Multiplier, bits uint) *tensor.Tensor {
	if bits > 8 {
		panic(fmt.Sprintf("axe: multiplier LUTs are 8-bit, got %d", bits))
	}
	qx := fixed.Calibrate(x, bits)
	qw := fixed.Calibrate(w, bits)
	lut := approx.CompileLUT(mult)

	spec := tensor.ConvSpec{
		KH: w.Shape[2], KW: w.Shape[3], Stride: stride, Pad: pad,
		OutCh: w.Shape[0], InCh: w.Shape[1],
	}
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)

	// Quantize operands once.
	xq := make([]uint8, x.Len())
	for i, v := range x.Data {
		xq[i] = uint8(qx.Quantize(v))
	}
	wq := make([]uint8, w.Len())
	for i, v := range w.Data {
		wq[i] = uint8(qw.Quantize(v))
	}

	// Zero-point handling: value = min + step·code. The cross terms need
	// Σcode_x and Σcode_w per output; padding contributes code 0 but
	// *value* 0, so pad positions are skipped entirely.
	k := spec.KH * spec.KW
	patch := spec.InCh * k
	out := tensor.New(n, spec.OutCh, oh, ow)
	sumWq := make([]int64, spec.OutCh)
	for oc := 0; oc < spec.OutCh; oc++ {
		s := int64(0)
		for i := 0; i < patch; i++ {
			s += int64(wq[oc*patch+i])
		}
		sumWq[oc] = s
	}

	sx, mx := qx.Step(), qx.Min
	sw, mw := qw.Step(), qw.Min
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				// Gather the patch codes (and track valid positions).
				for oc := 0; oc < spec.OutCh; oc++ {
					var lutSum, xSum int64
					var pads int
					wBase := oc * patch
					for ci := 0; ci < spec.InCh; ci++ {
						for ky := 0; ky < spec.KH; ky++ {
							iy := oy*stride + ky - pad
							for kx := 0; kx < spec.KW; kx++ {
								ix := ox*stride + kx - pad
								widx := wBase + (ci*spec.KH+ky)*spec.KW + kx
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									pads++
									// A zero *value* operand: x=0 exactly.
									// Contribution is 0·w = 0; skip.
									continue
								}
								xc := xq[((b*spec.InCh+ci)*h+iy)*wd+ix]
								lutSum += int64(lut.Mul(xc, wq[widx]))
								xSum += int64(xc)
							}
						}
					}
					// Valid-w sum: subtract the padded weights' codes.
					validWq := sumWq[oc]
					if pads > 0 {
						validWq = 0
						for ci := 0; ci < spec.InCh; ci++ {
							for ky := 0; ky < spec.KH; ky++ {
								iy := oy*stride + ky - pad
								for kx := 0; kx < spec.KW; kx++ {
									ix := ox*stride + kx - pad
									if iy < 0 || iy >= h || ix < 0 || ix >= wd {
										continue
									}
									validWq += int64(wq[wBase+(ci*spec.KH+ky)*spec.KW+kx])
								}
							}
						}
					}
					valid := int64(patch - pads)
					acc := sx*sw*float64(lutSum) +
						sx*mw*float64(xSum) +
						sw*mx*float64(validWq) +
						mx*mw*float64(valid)
					if bias != nil {
						acc += bias.Data[oc]
					}
					out.Data[((b*spec.OutCh+oc)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

// Engine executes a caps.Network with approximate quantized convolutions
// on the layers named in Mults; everything else (squash, routing, the
// remaining layers) runs accurately in float.
type Engine struct {
	Net *caps.Network
	// Mults maps layer names to the multiplier driving their MACs.
	Mults map[string]approx.Multiplier
	// Bits is the operand wordlength (default 8 when zero).
	Bits uint
}

func (e *Engine) bits() uint {
	if e.Bits == 0 {
		return fixed.DefaultBits
	}
	return e.Bits
}

// Forward runs the network, substituting approximate convolutions.
func (e *Engine) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range e.Net.Layers {
		x = e.forwardLayer(l, x)
	}
	return x
}

func (e *Engine) forwardLayer(l caps.Layer, x *tensor.Tensor) *tensor.Tensor {
	if out, handled := e.forwardRoutingLayer(l, x); handled {
		return out
	}
	switch v := l.(type) {
	case *caps.Conv2D:
		if m, ok := e.Mults[v.LayerName]; ok {
			y := QuantConv2D(x, v.W, v.B, v.Stride, v.Pad, m, e.bits())
			if v.ReLU {
				y = tensor.ReLU(y)
			}
			return y
		}
	case *caps.ConvCaps2D:
		if m, ok := e.Mults[v.LayerName]; ok {
			y := QuantConv2D(x, v.W, v.B, v.Stride, v.Pad, m, e.bits())
			n, h, w := y.Shape[0], y.Shape[2], y.Shape[3]
			sq := tensor.Squash(y.Reshape(n, v.Caps, v.Dim, h, w), 2)
			return sq.Reshape(n, v.Caps*v.Dim, h, w)
		}
	case *caps.CapsCell:
		a := e.forwardLayer(v.L1, x)
		main := e.forwardLayer(v.L3, e.forwardLayer(v.L2, a))
		skip := e.forwardLayer(v.Skip, a)
		return tensor.Add(main, skip)
	}
	return l.Forward(x, noise.None{})
}

// Classify returns predicted classes under approximate execution.
func (e *Engine) Classify(x *tensor.Tensor) []int {
	out := e.Forward(x)
	scores := tensor.NormAxis(out, 2)
	batch, classes := scores.Shape[0], scores.Shape[1]
	preds := make([]int, batch)
	for b := 0; b < batch; b++ {
		best, arg := scores.At(b, 0), 0
		for c := 1; c < classes; c++ {
			if v := scores.At(b, c); v > best {
				best, arg = v, c
			}
		}
		preds[b] = arg
	}
	return preds
}

// Accuracy evaluates the approximate design's classification accuracy.
func Accuracy(e *Engine, x *tensor.Tensor, labels []int, batch int) float64 {
	n := x.Shape[0]
	if n == 0 {
		return 0
	}
	if batch <= 0 {
		batch = 32
	}
	sample := x.Len() / n
	correct := 0
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, x.Shape[1:]...)
		xb := tensor.NewFrom(x.Data[lo*sample:hi*sample], shape...)
		for i, p := range e.Classify(xb) {
			if p == labels[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

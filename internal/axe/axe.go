// Package axe provides the quantized execution backends: it runs a
// trained CapsNet's MAC kernels through genuine b-bit affine-quantized
// arithmetic — exactly (QuantExact) or through behavioral
// approximate-multiplier LUTs (QuantApprox) — instead of modeling the
// error as injected Gaussian noise.
//
// The paper validates its noise model by construction (Fig. 6 shows the
// component errors are Gaussian-like); these backends close the loop
// empirically: both implement caps.Backend, so accuracy under true
// approximate arithmetic is measured by the same engine (workers,
// prefix caching, checkpoints, telemetry) that evaluates the noise
// model's prediction, and the two can be compared per group and per
// layer (the `redcane validate` experiment).
package axe

import (
	"fmt"

	"redcane/internal/approx"
	"redcane/internal/fixed"
	"redcane/internal/tensor"
)

// macMul is the multiplier plugged into the quantized MAC kernels. It is
// a type parameter (not an interface field) so the per-product call
// inlines into the inner accumulation loops.
type macMul interface {
	// mul returns the (possibly approximate) product of two operand
	// codes. Codes are ≤ 8 bits for LUT multipliers, ≤ 16 bits exact.
	mul(a, b uint16) uint32
}

// exactMul multiplies operand codes exactly (any wordlength up to 16).
type exactMul struct{}

func (exactMul) mul(a, b uint16) uint32 { return uint32(a) * uint32(b) }

// lutMul multiplies 8-bit operand codes through a compiled behavioral
// LUT.
type lutMul struct{ t *approx.LUT }

func (m lutMul) mul(a, b uint16) uint32 { return uint32(m.t.Mul(uint8(a), uint8(b))) }

// quantizeCodes calibrates a b-bit affine quantizer on t and encodes
// every element into a scratch-recycled code buffer.
func quantizeCodes(t *tensor.Tensor, bits uint, s *tensor.Scratch) (fixed.Quantizer, []uint16) {
	q := fixed.Calibrate(t, bits)
	codes := s.TakeU16(t.Len())
	for i, v := range t.Data {
		codes[i] = q.Quantize(v)
	}
	return q, codes
}

// accSatMax returns the largest magnitude the hardware accumulator model
// holds for b-bit operands: a 2b-bit product register plus 8 guard bits
// (256 guard terms), signed. A raw code-domain product sum beyond
// ±(2^(2b+7)) is an accumulator overflow on such hardware — the numeric
// health probes count these. The Go kernels themselves accumulate in
// int64 and never wrap; the count is diagnostic only.
func accSatMax(bits uint) int64 {
	accBits := 2*bits + 8
	return int64(1)<<(accBits-1) - 1
}

// quantGEMMMaxCols caps the size (in uint16 elements) of the code-domain
// im2col matrix the quantized conv materializes; convolutions whose
// matrix would be larger stream one patch row at a time instead. A
// package variable so tests can force the streaming path. Both paths
// compute identical integer sums, so the cutoff never changes results.
var quantGEMMMaxCols = 1 << 22

// convWindow holds the hoisted per-(oy,ox) border quantities for one
// distinct valid-tap window [kyLo,kyHi)×[kxLo,kxHi): the per-channel
// valid weight-code sums, the per-channel correction for zero-code
// padded products (nonzero only for multipliers with mul(0,c) ≠ 0), and
// the valid tap count. There are at most (KH+1)·(KW+1) distinct windows
// per convolution, so each is computed once instead of re-walking the
// kernel per (oc, oy, ox) as the pre-GEMM kernel did.
type convWindow struct {
	wsum  []int64 // per-oc Σ wq over the valid window
	m0    []int64 // per-oc Σ mul(0, wq) over the *padded* complement
	valid int64
}

// quantConv2D convolves x [n, inCh, h, w] with kernels w [outCh, inCh,
// k, k] using b-bit affine-quantized operands and m for every partial
// product, accumulating exactly. Bias (may be nil) is added in float.
// Both quantizers are calibrated per call on the full tensors, the same
// per-array ranging the paper's noise model uses. The output may come
// from the scratch arena; callers release it.
//
// The kernel is a code-domain integer GEMM: operand codes are gathered
// once into a uint16 im2col matrix (padding as code 0), each patch row's
// Σ x-codes is computed once for all output channels, and the per-product
// multiplier runs over flat contiguous rows. Zero-point cross terms use
// the hoisted convWindow tables on border positions; interior positions
// never test padding. Integer accumulation is order-free, so this is
// exact-equal to the naive reference (axe_ref.go) by construction.
// A non-nil ovf additionally tallies accumulator overflows (see
// accSatMax) without changing any output bit.
func quantConv2D[M macMul](m M, x, w, bias *tensor.Tensor, stride, pad int, bits uint, s *tensor.Scratch, ovf *int64) *tensor.Tensor {
	qx, xq := quantizeCodes(x, bits, s)
	qw, wq := quantizeCodes(w, bits, s)

	spec := tensor.ConvSpec{
		KH: w.Shape[2], KW: w.Shape[3], Stride: stride, Pad: pad,
		OutCh: w.Shape[0], InCh: w.Shape[1],
	}
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)

	k := spec.KH * spec.KW
	patch := spec.InCh * k
	out := s.Take(n, spec.OutCh, oh, ow)
	rows := oh * ow

	// Whole-kernel per-oc sums: Σ wq and Σ mul(0, wq).
	sumWq := make([]int64, spec.OutCh)
	sumM0 := make([]int64, spec.OutCh)
	for oc := 0; oc < spec.OutCh; oc++ {
		wrow := wq[oc*patch : (oc+1)*patch]
		var sw, s0 int64
		for _, c := range wrow {
			sw += int64(c)
			s0 += int64(m.mul(0, c))
		}
		sumWq[oc] = sw
		sumM0[oc] = s0
	}
	interior := &convWindow{wsum: sumWq, valid: int64(patch)}

	// Valid-tap ranges per output row/column and the lazily-built window
	// table for border positions.
	kyLo := make([]int, oh)
	kyHi := make([]int, oh)
	for oy := 0; oy < oh; oy++ {
		kyLo[oy], kyHi[oy] = clampTap(oy, stride, pad, spec.KH, h)
	}
	kxLo := make([]int, ow)
	kxHi := make([]int, ow)
	for ox := 0; ox < ow; ox++ {
		kxLo[ox], kxHi[ox] = clampTap(ox, stride, pad, spec.KW, wd)
	}
	windows := map[int]*convWindow{}
	winFor := func(yLo, yHi, xLo, xHi int) *convWindow {
		if yLo == 0 && yHi == spec.KH && xLo == 0 && xHi == spec.KW {
			return interior
		}
		key := ((yLo*(spec.KH+1)+yHi)*(spec.KW+1)+xLo)*(spec.KW+1) + xHi
		if bw, ok := windows[key]; ok {
			return bw
		}
		bw := &convWindow{
			wsum:  make([]int64, spec.OutCh),
			m0:    make([]int64, spec.OutCh),
			valid: int64(spec.InCh * (yHi - yLo) * (xHi - xLo)),
		}
		for oc := 0; oc < spec.OutCh; oc++ {
			var sw, s0 int64
			for ci := 0; ci < spec.InCh; ci++ {
				for ky := yLo; ky < yHi; ky++ {
					base := oc*patch + (ci*spec.KH+ky)*spec.KW
					for kx := xLo; kx < xHi; kx++ {
						c := wq[base+kx]
						sw += int64(c)
						s0 += int64(m.mul(0, c))
					}
				}
			}
			bw.wsum[oc] = sw
			// Padded complement: zero-code products the flat GEMM row
			// accumulated that the reference never sees.
			bw.m0[oc] = sumM0[oc] - s0
		}
		windows[key] = bw
		return bw
	}

	sx, mx := qx.Step(), qx.Min
	sw, mw := qw.Step(), qw.Min
	var biasData []float64
	if bias != nil {
		biasData = bias.Data
	}
	satMax := accSatMax(bits)

	if n*rows*patch <= quantGEMMMaxCols {
		// Materialize the code im2col matrix once (padding = code 0).
		xcols := s.TakeU16(n * rows * patch)
		r := 0
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gatherCodeRow(xcols[r*patch:(r+1)*patch], xq, b, oy, ox, h, wd, spec)
					r++
				}
			}
		}
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					row := xcols[((b*oh+oy)*ow+ox)*patch:]
					row = row[:patch:patch]
					win := winFor(kyLo[oy], kyHi[oy], kxLo[ox], kxHi[ox])
					quantAccRow(m, row, wq, win, sx, mx, sw, mw, biasData,
						out.Data[b*spec.OutCh*rows+oy*ow+ox:], rows, satMax, ovf)
				}
			}
		}
		s.ReleaseU16(xcols)
	} else {
		// Streaming fallback: gather one patch row at a time. Same
		// integer sums, same hoisted border tables.
		rowBuf := s.TakeU16(patch)
		row := rowBuf[:patch:patch]
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gatherCodeRow(row, xq, b, oy, ox, h, wd, spec)
					win := winFor(kyLo[oy], kyHi[oy], kxLo[ox], kxHi[ox])
					quantAccRow(m, row, wq, win, sx, mx, sw, mw, biasData,
						out.Data[b*spec.OutCh*rows+oy*ow+ox:], rows, satMax, ovf)
				}
			}
		}
		s.ReleaseU16(rowBuf)
	}
	s.ReleaseU16(xq, wq)
	return out
}

// clampTap returns the in-bounds tap range [lo, hi) for output index o:
// taps t with 0 ≤ o*stride + t - pad < size.
func clampTap(o, stride, pad, k, size int) (lo, hi int) {
	lo, hi = pad-o*stride, size+pad-o*stride
	if lo < 0 {
		lo = 0
	}
	if hi > k {
		hi = k
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// gatherCodeRow writes the patch's operand codes for output position
// (b, oy, ox) into dst, with code 0 at padded taps.
func gatherCodeRow(dst []uint16, xq []uint16, b, oy, ox, h, wd int, spec tensor.ConvSpec) {
	i := 0
	for ci := 0; ci < spec.InCh; ci++ {
		chBase := (b*spec.InCh + ci) * h * wd
		for ky := 0; ky < spec.KH; ky++ {
			iy := oy*spec.Stride + ky - spec.Pad
			if iy < 0 || iy >= h {
				for kx := 0; kx < spec.KW; kx++ {
					dst[i] = 0
					i++
				}
				continue
			}
			rowBase := chBase + iy*wd
			for kx := 0; kx < spec.KW; kx++ {
				ix := ox*spec.Stride + kx - spec.Pad
				if ix < 0 || ix >= wd {
					dst[i] = 0
				} else {
					dst[i] = xq[rowBase+ix]
				}
				i++
			}
		}
	}
}

// quantAccRow accumulates one patch row against every output channel:
// the flat code-domain dot through m, the hoisted zero-point cross
// terms, and the float epilogue. dst[oc*dstStride] receives channel oc.
// A non-nil ovf counts raw product sums (before the pad correction —
// hardware accumulates every term) whose magnitude exceeds satMax.
func quantAccRow[M macMul](m M, row, wq []uint16, win *convWindow, sx, mx, sw, mw float64, bias []float64, dst []float64, dstStride int, satMax int64, ovf *int64) {
	var xSum int64
	for _, xc := range row {
		xSum += int64(xc)
	}
	patch := len(row)
	for oc := range win.wsum {
		wrow := wq[oc*patch : (oc+1)*patch : (oc+1)*patch]
		var lutSum int64
		for i, xc := range row {
			lutSum += int64(m.mul(xc, wrow[i]))
		}
		if ovf != nil && (lutSum > satMax || lutSum < -satMax-1) {
			*ovf++
		}
		if win.m0 != nil {
			lutSum -= win.m0[oc]
		}
		acc := sx*sw*float64(lutSum) +
			sx*mw*float64(xSum) +
			sw*mx*float64(win.wsum[oc]) +
			mx*mw*float64(win.valid)
		if bias != nil {
			acc += bias[oc]
		}
		dst[oc*dstStride] = acc
	}
}

// QuantConv2D convolves with b-bit quantized operands and the given
// approximate multiplier for every partial product. It is the standalone
// kernel entry point (the backends wrap it with operand-buffer reuse);
// multiplier LUTs are 8-bit, so bits must be ≤ 8.
func QuantConv2D(x, w, bias *tensor.Tensor, stride, pad int, mult approx.Multiplier, bits uint) *tensor.Tensor {
	if bits > 8 {
		panic(fmt.Sprintf("axe: multiplier LUTs are 8-bit, got %d", bits))
	}
	return quantConv2D(lutMul{approx.CompileLUT(mult)}, x, w, bias, stride, pad, bits, nil, nil)
}

// Package axe provides the quantized execution backends: it runs a
// trained CapsNet's MAC kernels through genuine b-bit affine-quantized
// arithmetic — exactly (QuantExact) or through behavioral
// approximate-multiplier LUTs (QuantApprox) — instead of modeling the
// error as injected Gaussian noise.
//
// The paper validates its noise model by construction (Fig. 6 shows the
// component errors are Gaussian-like); these backends close the loop
// empirically: both implement caps.Backend, so accuracy under true
// approximate arithmetic is measured by the same engine (workers,
// prefix caching, checkpoints, telemetry) that evaluates the noise
// model's prediction, and the two can be compared per group and per
// layer (the `redcane validate` experiment).
package axe

import (
	"fmt"

	"redcane/internal/approx"
	"redcane/internal/fixed"
	"redcane/internal/tensor"
)

// macMul is the multiplier plugged into the quantized MAC kernels. It is
// a type parameter (not an interface field) so the per-product call
// inlines into the inner accumulation loops.
type macMul interface {
	// mul returns the (possibly approximate) product of two operand
	// codes. Codes are ≤ 8 bits for LUT multipliers, ≤ 16 bits exact.
	mul(a, b uint16) uint32
}

// exactMul multiplies operand codes exactly (any wordlength up to 16).
type exactMul struct{}

func (exactMul) mul(a, b uint16) uint32 { return uint32(a) * uint32(b) }

// lutMul multiplies 8-bit operand codes through a compiled behavioral
// LUT.
type lutMul struct{ t *approx.LUT }

func (m lutMul) mul(a, b uint16) uint32 { return uint32(m.t.Mul(uint8(a), uint8(b))) }

// quantizeCodes calibrates a b-bit affine quantizer on t and encodes
// every element into a scratch-recycled code buffer.
func quantizeCodes(t *tensor.Tensor, bits uint, s *tensor.Scratch) (fixed.Quantizer, []uint16) {
	q := fixed.Calibrate(t, bits)
	codes := s.TakeU16(t.Len())
	for i, v := range t.Data {
		codes[i] = q.Quantize(v)
	}
	return q, codes
}

// quantConv2D convolves x [n, inCh, h, w] with kernels w [outCh, inCh,
// k, k] using b-bit affine-quantized operands and m for every partial
// product, accumulating exactly. Bias (may be nil) is added in float.
// Both quantizers are calibrated per call on the full tensors, the same
// per-array ranging the paper's noise model uses. The output may come
// from the scratch arena; callers release it.
func quantConv2D[M macMul](m M, x, w, bias *tensor.Tensor, stride, pad int, bits uint, s *tensor.Scratch) *tensor.Tensor {
	qx, xq := quantizeCodes(x, bits, s)
	qw, wq := quantizeCodes(w, bits, s)

	spec := tensor.ConvSpec{
		KH: w.Shape[2], KW: w.Shape[3], Stride: stride, Pad: pad,
		OutCh: w.Shape[0], InCh: w.Shape[1],
	}
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)

	// Zero-point handling: value = min + step·code. The cross terms need
	// Σcode_x and Σcode_w per output; padding contributes code 0 but
	// *value* 0, so pad positions are skipped entirely.
	k := spec.KH * spec.KW
	patch := spec.InCh * k
	out := s.Take(n, spec.OutCh, oh, ow)
	sumWq := make([]int64, spec.OutCh)
	for oc := 0; oc < spec.OutCh; oc++ {
		sum := int64(0)
		for i := 0; i < patch; i++ {
			sum += int64(wq[oc*patch+i])
		}
		sumWq[oc] = sum
	}

	sx, mx := qx.Step(), qx.Min
	sw, mw := qw.Step(), qw.Min
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				// Gather the patch codes (and track valid positions).
				for oc := 0; oc < spec.OutCh; oc++ {
					var lutSum, xSum int64
					var pads int
					wBase := oc * patch
					for ci := 0; ci < spec.InCh; ci++ {
						for ky := 0; ky < spec.KH; ky++ {
							iy := oy*stride + ky - pad
							for kx := 0; kx < spec.KW; kx++ {
								ix := ox*stride + kx - pad
								widx := wBase + (ci*spec.KH+ky)*spec.KW + kx
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									pads++
									// A zero *value* operand: x=0 exactly.
									// Contribution is 0·w = 0; skip.
									continue
								}
								xc := xq[((b*spec.InCh+ci)*h+iy)*wd+ix]
								lutSum += int64(m.mul(xc, wq[widx]))
								xSum += int64(xc)
							}
						}
					}
					// Valid-w sum: subtract the padded weights' codes.
					validWq := sumWq[oc]
					if pads > 0 {
						validWq = 0
						for ci := 0; ci < spec.InCh; ci++ {
							for ky := 0; ky < spec.KH; ky++ {
								iy := oy*stride + ky - pad
								for kx := 0; kx < spec.KW; kx++ {
									ix := ox*stride + kx - pad
									if iy < 0 || iy >= h || ix < 0 || ix >= wd {
										continue
									}
									validWq += int64(wq[wBase+(ci*spec.KH+ky)*spec.KW+kx])
								}
							}
						}
					}
					valid := int64(patch - pads)
					acc := sx*sw*float64(lutSum) +
						sx*mw*float64(xSum) +
						sw*mx*float64(validWq) +
						mx*mw*float64(valid)
					if bias != nil {
						acc += bias.Data[oc]
					}
					out.Data[((b*spec.OutCh+oc)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	s.ReleaseU16(xq, wq)
	return out
}

// QuantConv2D convolves with b-bit quantized operands and the given
// approximate multiplier for every partial product. It is the standalone
// kernel entry point (the backends wrap it with operand-buffer reuse);
// multiplier LUTs are 8-bit, so bits must be ≤ 8.
func QuantConv2D(x, w, bias *tensor.Tensor, stride, pad int, mult approx.Multiplier, bits uint) *tensor.Tensor {
	if bits > 8 {
		panic(fmt.Sprintf("axe: multiplier LUTs are 8-bit, got %d", bits))
	}
	return quantConv2D(lutMul{approx.CompileLUT(mult)}, x, w, bias, stride, pad, bits, nil)
}

package datasets

import (
	"fmt"
	"math/rand/v2"

	"redcane/internal/tensor"
)

// Dataset is a complete train/test classification benchmark. Images are
// packed NCHW into a single tensor per split.
type Dataset struct {
	Name       string
	ClassNames []string
	Channels   int
	H, W       int
	TrainX     *tensor.Tensor
	TrainY     []int
	TestX      *tensor.Tensor
	TestY      []int
}

// Classes returns the number of classes.
func (d *Dataset) Classes() int { return len(d.ClassNames) }

// Sample returns one train image as its own tensor view [1, C, H, W].
func (d *Dataset) Sample(i int) *tensor.Tensor {
	sz := d.Channels * d.H * d.W
	return tensor.NewFrom(d.TrainX.Data[i*sz:(i+1)*sz], 1, d.Channels, d.H, d.W)
}

// generator renders one sample of class `label` onto a fresh canvas.
type generator func(cv *Canvas, label int, rng *rand.Rand)

// build renders balanced train/test splits with a shared generator.
func build(name string, classNames []string, c, h, w, train, test int, seed uint64, gen generator) *Dataset {
	d := &Dataset{
		Name: name, ClassNames: classNames,
		Channels: c, H: h, W: w,
		TrainX: tensor.New(train, c, h, w), TrainY: make([]int, train),
		TestX: tensor.New(test, c, h, w), TestY: make([]int, test),
	}
	render := func(x *tensor.Tensor, y []int, n int, rng *rand.Rand) {
		for i := 0; i < n; i++ {
			label := i % len(classNames)
			cv := NewCanvas(c, h, w)
			gen(cv, label, rng)
			copy(x.Data[i*c*h*w:], cv.Pix)
			y[i] = label
		}
	}
	render(d.TrainX, d.TrainY, train, tensor.NewRNG(seed))
	render(d.TestX, d.TestY, test, tensor.NewRNG(seed^0xdeadbeef))
	return d
}

// MNISTLike generates a 20×20 grayscale handwritten-digit analogue:
// vector-stroked digits with rotation/scale/translation jitter, stroke
// width variation and pixel noise.
func MNISTLike(train, test int, seed uint64) *Dataset {
	names := make([]string, 10)
	for i := range names {
		names[i] = fmt.Sprintf("digit-%d", i)
	}
	return build("mnist-like", names, 1, 20, 20, train, test, seed,
		func(cv *Canvas, label int, rng *rand.Rand) {
			cv.Jitter(rng, 0.18, 0.12, 0.06)
			width := 1.6 + 0.8*rng.Float64()
			drawDigit(cv, label, width, Gray(0.75+0.25*rng.Float64()))
			cv.AddNoise(rng, 0.03)
		})
}

// FashionLike generates a 20×20 grayscale garment-silhouette analogue of
// Fashion-MNIST.
func FashionLike(train, test int, seed uint64) *Dataset {
	return build("fashion-like", fashionNames, 1, 20, 20, train, test, seed,
		func(cv *Canvas, label int, rng *rand.Rand) {
			cv.Jitter(rng, 0.10, 0.12, 0.05)
			drawGarment(cv, label, Gray(0.6+0.4*rng.Float64()))
			cv.AddNoise(rng, 0.04)
		})
}

// CIFARLike generates a 16×16 RGB analogue of CIFAR-10: ten textured
// shape classes with class-correlated but jittered colors over noisy
// backgrounds — the hardest of the four benchmarks, mirroring the paper's
// accuracy ordering.
func CIFARLike(train, test int, seed uint64) *Dataset {
	baseHue := [][3]float64{
		{0.9, 0.3, 0.3}, {0.3, 0.9, 0.3}, {0.3, 0.4, 0.9}, {0.9, 0.8, 0.3}, {0.8, 0.3, 0.9},
		{0.3, 0.9, 0.9}, {0.9, 0.6, 0.3}, {0.5, 0.9, 0.5}, {0.7, 0.7, 0.9}, {0.9, 0.5, 0.7},
	}
	return build("cifar-like", shapeNames, 3, 16, 16, train, test, seed,
		func(cv *Canvas, label int, rng *rand.Rand) {
			// Random background wash plus a distractor block.
			bg := RGB(0.35*rng.Float64(), 0.35*rng.Float64(), 0.35*rng.Float64())
			cv.FillRect(0, 0, 1, 1, bg)
			x0, y0 := rng.Float64(), rng.Float64()
			cv.FillRect(x0, y0, x0+0.25*rng.Float64(), y0+0.25*rng.Float64(),
				RGB(0.4*rng.Float64(), 0.4*rng.Float64(), 0.4*rng.Float64()))
			cv.Jitter(rng, 0.4, 0.2, 0.1)
			h := baseHue[label]
			jit := func(v float64) float64 {
				v += 0.5 * (rng.Float64() - 0.5)
				if v < 0.05 {
					v = 0.05
				}
				if v > 1 {
					v = 1
				}
				return v
			}
			drawShape(cv, label, RGB(jit(h[0]), jit(h[1]), jit(h[2])))
			cv.AddNoise(rng, 0.06)
		})
}

// SVHNLike generates a 16×16 RGB analogue of SVHN: colored digits over
// cluttered backgrounds with distractor rectangles.
func SVHNLike(train, test int, seed uint64) *Dataset {
	names := make([]string, 10)
	for i := range names {
		names[i] = fmt.Sprintf("housenum-%d", i)
	}
	return build("svhn-like", names, 3, 16, 16, train, test, seed,
		func(cv *Canvas, label int, rng *rand.Rand) {
			// Cluttered background: base wash plus distractor blocks.
			cv.FillRect(0, 0, 1, 1, RGB(0.15+0.3*rng.Float64(), 0.15+0.3*rng.Float64(), 0.15+0.3*rng.Float64()))
			for k := 0; k < 3; k++ {
				x0, y0 := rng.Float64(), rng.Float64()
				cv.FillRect(x0, y0, x0+0.3*rng.Float64(), y0+0.3*rng.Float64(),
					RGB(0.3*rng.Float64(), 0.3*rng.Float64(), 0.3*rng.Float64()))
			}
			cv.Jitter(rng, 0.12, 0.15, 0.06)
			// Bright digit in a random saturated color.
			col := RGB(0.5+0.5*rng.Float64(), 0.5+0.5*rng.Float64(), 0.5+0.5*rng.Float64())
			drawDigit(cv, label, 1.8+0.6*rng.Float64(), col)
			cv.AddNoise(rng, 0.05)
		})
}

// ByName builds the named dataset with the given split sizes, accepting
// both the paper's dataset names and this package's "-like" names.
func ByName(name string, train, test int, seed uint64) (*Dataset, error) {
	switch name {
	case "mnist", "mnist-like":
		return MNISTLike(train, test, seed), nil
	case "fashion-mnist", "fashion", "fashion-like":
		return FashionLike(train, test, seed), nil
	case "cifar10", "cifar-10", "cifar-like":
		return CIFARLike(train, test, seed), nil
	case "svhn", "svhn-like":
		return SVHNLike(train, test, seed), nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
}

package datasets

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"

	"redcane/internal/tensor"
)

// ToImage converts one NCHW sample (shape [1, C, H, W] or [C, H, W]
// flattened view) into an image.Image for visual inspection of the
// synthetic datasets. Values are clamped to [0, 1]; single-channel
// samples render as grayscale.
func ToImage(sample *tensor.Tensor, channels, h, w int) image.Image {
	if sample.Len() != channels*h*w {
		panic(fmt.Sprintf("datasets: sample has %d values, want %d", sample.Len(), channels*h*w))
	}
	clamp := func(v float64) uint8 {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return uint8(v*255 + 0.5)
	}
	if channels == 1 {
		img := image.NewGray(image.Rect(0, 0, w, h))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				img.SetGray(x, y, color.Gray{Y: clamp(sample.Data[y*w+x])})
			}
		}
		return img
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px := color.RGBA{A: 255}
			px.R = clamp(sample.Data[0*h*w+y*w+x])
			if channels > 1 {
				px.G = clamp(sample.Data[1*h*w+y*w+x])
			}
			if channels > 2 {
				px.B = clamp(sample.Data[2*h*w+y*w+x])
			}
			img.SetRGBA(x, y, px)
		}
	}
	return img
}

// SamplePNG encodes train sample i as a PNG file.
func (d *Dataset) SamplePNG(i int, path string) error {
	img := ToImage(d.Sample(i), d.Channels, d.H, d.W)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("datasets: save png: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return fmt.Errorf("datasets: encode png: %w", err)
	}
	return nil
}

// ContactSheet writes one PNG per class (the first train sample of each)
// into dir, named <dataset>-<class>.png — a quick visual sanity check of
// the procedural generators.
func (d *Dataset) ContactSheet(dir string) error {
	seen := map[int]bool{}
	for i, y := range d.TrainY {
		if seen[y] {
			continue
		}
		seen[y] = true
		path := fmt.Sprintf("%s/%s-%s.png", dir, d.Name, d.ClassNames[y])
		if err := d.SamplePNG(i, path); err != nil {
			return err
		}
		if len(seen) == d.Classes() {
			break
		}
	}
	return nil
}

package datasets

// Vector glyph tables: stroke paths in the unit square for the ten digits
// (MNIST/SVHN analogues) and filled-polygon silhouettes for the ten
// Fashion-MNIST-like garment classes.

// digitStrokes holds one or more polylines per digit (flattened x,y pairs).
var digitStrokes = [10][][]float64{
	// 0: oval drawn as closed polyline handled by drawDigit via Ellipse.
	0: nil, // special-cased: ellipse
	1: {{0.35, 0.3, 0.55, 0.12, 0.55, 0.88}},
	2: {{0.22, 0.3, 0.3, 0.14, 0.6, 0.12, 0.75, 0.3, 0.72, 0.45, 0.25, 0.85, 0.78, 0.85}},
	3: {{0.25, 0.15, 0.7, 0.15, 0.45, 0.45, 0.72, 0.62, 0.6, 0.85, 0.25, 0.85}},
	4: {{0.62, 0.88, 0.62, 0.12, 0.22, 0.6, 0.8, 0.6}},
	5: {{0.72, 0.14, 0.3, 0.14, 0.27, 0.48, 0.6, 0.45, 0.72, 0.65, 0.6, 0.86, 0.25, 0.86}},
	6: {{0.68, 0.14, 0.35, 0.35, 0.28, 0.62, 0.4, 0.85, 0.65, 0.82, 0.7, 0.6, 0.52, 0.5, 0.3, 0.58}},
	7: {{0.22, 0.14, 0.78, 0.14, 0.45, 0.88}},
	8: nil, // special-cased: two stacked ellipses
	9: {{0.7, 0.42, 0.48, 0.5, 0.3, 0.4, 0.32, 0.18, 0.55, 0.12, 0.7, 0.25, 0.68, 0.6, 0.55, 0.88}},
}

// drawDigit strokes digit d onto the canvas with the given stroke width
// and color.
func drawDigit(cv *Canvas, d int, width float64, col Color) {
	switch d {
	case 0:
		cv.Ellipse(0.5, 0.5, 0.24, 0.38, width, false, col)
	case 8:
		cv.Ellipse(0.5, 0.3, 0.2, 0.18, width, false, col)
		cv.Ellipse(0.5, 0.68, 0.23, 0.2, width, false, col)
	default:
		for _, path := range digitStrokes[d] {
			cv.Polyline(path, width, col)
		}
	}
}

// fashionNames are the Fashion-MNIST class names, in label order.
var fashionNames = []string{
	"tshirt", "trouser", "pullover", "dress", "coat",
	"sandal", "shirt", "sneaker", "bag", "boot",
}

// drawGarment renders the silhouette for fashion class d.
func drawGarment(cv *Canvas, d int, col Color) {
	switch d {
	case 0: // t-shirt: boxy body + short sleeves
		cv.FillPolygon([]float64{0.3, 0.25, 0.7, 0.25, 0.88, 0.4, 0.75, 0.5, 0.7, 0.42, 0.7, 0.85, 0.3, 0.85, 0.3, 0.42, 0.25, 0.5, 0.12, 0.4}, col)
	case 1: // trousers: two legs
		cv.FillPolygon([]float64{0.3, 0.15, 0.7, 0.15, 0.72, 0.88, 0.56, 0.88, 0.5, 0.4, 0.44, 0.88, 0.28, 0.88}, col)
	case 2: // pullover: long sleeves hugging the body
		cv.FillPolygon([]float64{0.32, 0.2, 0.68, 0.2, 0.8, 0.3, 0.85, 0.8, 0.72, 0.82, 0.68, 0.45, 0.68, 0.88, 0.32, 0.88, 0.32, 0.45, 0.28, 0.82, 0.15, 0.8, 0.2, 0.3}, col)
	case 3: // dress: fitted top, flared skirt
		cv.FillPolygon([]float64{0.4, 0.12, 0.6, 0.12, 0.58, 0.4, 0.78, 0.88, 0.22, 0.88, 0.42, 0.4}, col)
	case 4: // coat: open front (two panels)
		cv.FillPolygon([]float64{0.3, 0.15, 0.47, 0.15, 0.47, 0.88, 0.26, 0.88, 0.22, 0.35}, col)
		cv.FillPolygon([]float64{0.53, 0.15, 0.7, 0.15, 0.78, 0.35, 0.74, 0.88, 0.53, 0.88}, col)
	case 5: // sandal: sole + straps
		cv.FillPolygon([]float64{0.15, 0.7, 0.85, 0.62, 0.88, 0.74, 0.15, 0.8}, col)
		cv.Line(0.3, 0.72, 0.45, 0.45, 1.2, col)
		cv.Line(0.6, 0.66, 0.5, 0.42, 1.2, col)
	case 6: // shirt: collar wedge + body
		cv.FillPolygon([]float64{0.3, 0.2, 0.45, 0.2, 0.5, 0.32, 0.55, 0.2, 0.7, 0.2, 0.82, 0.34, 0.72, 0.44, 0.7, 0.88, 0.3, 0.88, 0.28, 0.44, 0.18, 0.34}, col)
	case 7: // sneaker: low profile with toe cap
		cv.FillPolygon([]float64{0.12, 0.72, 0.3, 0.5, 0.55, 0.5, 0.85, 0.62, 0.88, 0.76, 0.12, 0.8}, col)
		cv.Line(0.35, 0.55, 0.45, 0.68, 0.8, Gray(0))
	case 8: // bag: body + handle
		cv.FillPolygon([]float64{0.2, 0.45, 0.8, 0.45, 0.85, 0.85, 0.15, 0.85}, col)
		cv.Ellipse(0.5, 0.38, 0.15, 0.12, 1.2, false, col)
	case 9: // ankle boot: tall shaft + foot
		cv.FillPolygon([]float64{0.3, 0.15, 0.55, 0.15, 0.55, 0.55, 0.85, 0.68, 0.85, 0.82, 0.28, 0.82}, col)
	}
}

// shapeNames are the CIFAR-like class names, in label order.
var shapeNames = []string{
	"circle", "square", "triangle", "ring", "cross",
	"star", "hstripes", "vstripes", "checker", "diamond",
}

// drawShape renders CIFAR-like class d in the given color.
func drawShape(cv *Canvas, d int, col Color) {
	switch d {
	case 0:
		cv.Ellipse(0.5, 0.5, 0.3, 0.3, 0, true, col)
	case 1:
		cv.FillRect(0.25, 0.25, 0.75, 0.75, col)
	case 2:
		cv.FillPolygon([]float64{0.5, 0.15, 0.85, 0.8, 0.15, 0.8}, col)
	case 3:
		cv.Ellipse(0.5, 0.5, 0.32, 0.32, 2.2, false, col)
	case 4:
		cv.FillRect(0.42, 0.15, 0.58, 0.85, col)
		cv.FillRect(0.15, 0.42, 0.85, 0.58, col)
	case 5: // four-point star
		cv.FillPolygon([]float64{0.5, 0.1, 0.6, 0.4, 0.9, 0.5, 0.6, 0.6, 0.5, 0.9, 0.4, 0.6, 0.1, 0.5, 0.4, 0.4}, col)
	case 6:
		for y := 0.15; y < 0.85; y += 0.25 {
			cv.FillRect(0.12, y, 0.88, y+0.12, col)
		}
	case 7:
		for x := 0.15; x < 0.85; x += 0.25 {
			cv.FillRect(x, 0.12, x+0.12, 0.88, col)
		}
	case 8:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if (i+j)%2 == 0 {
					x0 := 0.14 + float64(i)*0.24
					y0 := 0.14 + float64(j)*0.24
					cv.FillRect(x0, y0, x0+0.24, y0+0.24, col)
				}
			}
		}
	case 9:
		cv.FillPolygon([]float64{0.5, 0.12, 0.85, 0.5, 0.5, 0.88, 0.15, 0.5}, col)
	}
}

// Package datasets synthesizes the four classification benchmarks used in
// the paper's evaluation — MNIST, Fashion-MNIST, CIFAR-10 and SVHN — as
// procedural, offline-generatable analogues (DESIGN.md §2): vector-drawn
// digits, garment silhouettes, colored textured shapes, and digits over
// cluttered color backgrounds. Every generator is deterministic in its
// seed.
package datasets

import (
	"math"
	"math/rand/v2"
)

// Canvas is a small multi-channel raster surface with an affine transform
// applied to all drawing coordinates. Coordinates are in the unit square
// [0,1]²; the transform supports the per-sample jitter (rotation, scale,
// translation) that makes the synthetic classes non-trivial.
type Canvas struct {
	C, H, W int
	// Pix is channel-major: Pix[c*H*W + y*W + x], values in [0, 1].
	Pix []float64

	// Affine transform parameters applied around the canvas center.
	rot    float64
	scale  float64
	dx, dy float64
}

// NewCanvas returns a black canvas with identity transform.
func NewCanvas(c, h, w int) *Canvas {
	return &Canvas{C: c, H: h, W: w, Pix: make([]float64, c*h*w), scale: 1}
}

// Jitter sets a random affine transform: rotation within ±maxRot radians,
// scale within [1−s, 1+s], translation within ±t of the canvas size.
func (cv *Canvas) Jitter(rng *rand.Rand, maxRot, s, t float64) {
	cv.rot = (2*rng.Float64() - 1) * maxRot
	cv.scale = 1 + (2*rng.Float64()-1)*s
	cv.dx = (2*rng.Float64() - 1) * t
	cv.dy = (2*rng.Float64() - 1) * t
}

// xform maps unit-square coordinates through the jitter transform into
// pixel coordinates.
func (cv *Canvas) xform(x, y float64) (px, py float64) {
	// Center, scale, rotate, translate.
	cx, cy := x-0.5, y-0.5
	c, s := math.Cos(cv.rot), math.Sin(cv.rot)
	rx := (cx*c - cy*s) * cv.scale
	ry := (cx*s + cy*c) * cv.scale
	return (rx + 0.5 + cv.dx) * float64(cv.W), (ry + 0.5 + cv.dy) * float64(cv.H)
}

// Color is a per-channel intensity in [0, 1]. For 1-channel canvases only
// the first component is used.
type Color []float64

// Gray returns a single-channel color.
func Gray(v float64) Color { return Color{v} }

// RGB returns a three-channel color.
func RGB(r, g, b float64) Color { return Color{r, g, b} }

// blend adds color scaled by alpha at pixel (x, y), saturating at 1.
func (cv *Canvas) blend(x, y int, col Color, alpha float64) {
	if x < 0 || x >= cv.W || y < 0 || y >= cv.H || alpha <= 0 {
		return
	}
	for c := 0; c < cv.C; c++ {
		v := col[0]
		if c < len(col) {
			v = col[c]
		}
		idx := c*cv.H*cv.W + y*cv.W + x
		nv := cv.Pix[idx] + v*alpha
		if nv > 1 {
			nv = 1
		}
		cv.Pix[idx] = nv
	}
}

// coverage converts a signed distance (negative inside) into an
// anti-aliased alpha over a one-pixel falloff.
func coverage(dist float64) float64 {
	switch {
	case dist <= 0:
		return 1
	case dist >= 1:
		return 0
	default:
		return 1 - dist
	}
}

// Line draws a stroked segment between unit-square endpoints with the
// given stroke width (in pixels).
func (cv *Canvas) Line(x0, y0, x1, y1, width float64, col Color) {
	ax, ay := cv.xform(x0, y0)
	bx, by := cv.xform(x1, y1)
	cv.linePx(ax, ay, bx, by, width, col)
}

func (cv *Canvas) linePx(ax, ay, bx, by, width float64, col Color) {
	r := width / 2
	minX := int(math.Floor(math.Min(ax, bx) - r - 1))
	maxX := int(math.Ceil(math.Max(ax, bx) + r + 1))
	minY := int(math.Floor(math.Min(ay, by) - r - 1))
	maxY := int(math.Ceil(math.Max(ay, by) + r + 1))
	dx, dy := bx-ax, by-ay
	len2 := dx*dx + dy*dy
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float64(x)+0.5, float64(y)+0.5
			t := 0.0
			if len2 > 0 {
				t = ((px-ax)*dx + (py-ay)*dy) / len2
				t = math.Max(0, math.Min(1, t))
			}
			qx, qy := ax+t*dx, ay+t*dy
			d := math.Hypot(px-qx, py-qy) - r
			cv.blend(x, y, col, coverage(d))
		}
	}
}

// Polyline strokes consecutive segments through the given unit-square
// points (flattened x0,y0,x1,y1,...).
func (cv *Canvas) Polyline(pts []float64, width float64, col Color) {
	for i := 0; i+3 < len(pts); i += 2 {
		cv.Line(pts[i], pts[i+1], pts[i+2], pts[i+3], width, col)
	}
}

// Ellipse strokes (or fills) an axis-aligned ellipse centered at (cx, cy)
// with radii (rx, ry) in unit coordinates.
func (cv *Canvas) Ellipse(cx, cy, rx, ry, width float64, fill bool, col Color) {
	// Walk the perimeter as short segments so the affine transform
	// applies uniformly; fill via radial coverage.
	if fill {
		for y := 0; y < cv.H; y++ {
			for x := 0; x < cv.W; x++ {
				// Invert transform approximately by sampling: map the
				// ellipse into pixel space via its bounding points.
				ux, uy := cv.invert(float64(x)+0.5, float64(y)+0.5)
				ex := (ux - cx) / rx
				ey := (uy - cy) / ry
				d := (math.Hypot(ex, ey) - 1) * rx * float64(cv.W)
				cv.blend(x, y, col, coverage(d))
			}
		}
		return
	}
	const segs = 40
	prevX, prevY := cx+rx, cy
	for i := 1; i <= segs; i++ {
		a := 2 * math.Pi * float64(i) / segs
		nx, ny := cx+rx*math.Cos(a), cy+ry*math.Sin(a)
		cv.Line(prevX, prevY, nx, ny, width, col)
		prevX, prevY = nx, ny
	}
}

// invert maps pixel coordinates back to unit-square coordinates through
// the inverse of the jitter transform.
func (cv *Canvas) invert(px, py float64) (x, y float64) {
	ux := px/float64(cv.W) - 0.5 - cv.dx
	uy := py/float64(cv.H) - 0.5 - cv.dy
	c, s := math.Cos(-cv.rot), math.Sin(-cv.rot)
	rx := (ux*c - uy*s) / cv.scale
	ry := (ux*s + uy*c) / cv.scale
	return rx + 0.5, ry + 0.5
}

// FillPolygon fills a polygon given unit-square vertices (flattened
// x0,y0,...), using even-odd coverage against the inverse transform.
func (cv *Canvas) FillPolygon(pts []float64, col Color) {
	n := len(pts) / 2
	if n < 3 {
		return
	}
	for y := 0; y < cv.H; y++ {
		for x := 0; x < cv.W; x++ {
			ux, uy := cv.invert(float64(x)+0.5, float64(y)+0.5)
			if pointInPolygon(ux, uy, pts) {
				cv.blend(x, y, col, 1)
			}
		}
	}
}

func pointInPolygon(x, y float64, pts []float64) bool {
	n := len(pts) / 2
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		xi, yi := pts[2*i], pts[2*i+1]
		xj, yj := pts[2*j], pts[2*j+1]
		if (yi > y) != (yj > y) && x < (xj-xi)*(y-yi)/(yj-yi)+xi {
			inside = !inside
		}
		j = i
	}
	return inside
}

// FillRect fills an axis-aligned rectangle in unit coordinates.
func (cv *Canvas) FillRect(x0, y0, x1, y1 float64, col Color) {
	cv.FillPolygon([]float64{x0, y0, x1, y0, x1, y1, x0, y1}, col)
}

// AddNoise adds zero-mean Gaussian pixel noise with the given std,
// clamping to [0, 1].
func (cv *Canvas) AddNoise(rng *rand.Rand, std float64) {
	for i := range cv.Pix {
		v := cv.Pix[i] + std*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		cv.Pix[i] = v
	}
}

package datasets

import (
	"math"
	"os"
	"testing"

	"redcane/internal/tensor"
)

func TestAllDatasetsBasicInvariants(t *testing.T) {
	for _, d := range []*Dataset{
		MNISTLike(40, 20, 1),
		FashionLike(40, 20, 2),
		CIFARLike(40, 20, 3),
		SVHNLike(40, 20, 4),
	} {
		t.Run(d.Name, func(t *testing.T) {
			if d.Classes() != 10 {
				t.Fatalf("classes = %d", d.Classes())
			}
			if d.TrainX.Shape[0] != 40 || d.TestX.Shape[0] != 20 {
				t.Fatalf("split shapes: %v / %v", d.TrainX.Shape, d.TestX.Shape)
			}
			if d.TrainX.Shape[1] != d.Channels || d.TrainX.Shape[2] != d.H {
				t.Fatalf("image shape mismatch: %v", d.TrainX.Shape)
			}
			lo, hi := d.TrainX.MinMax()
			if lo < 0 || hi > 1 {
				t.Fatalf("pixels out of [0,1]: [%g, %g]", lo, hi)
			}
			if hi == 0 {
				t.Fatal("all-black dataset")
			}
			// Balanced labels.
			counts := make([]int, 10)
			for _, y := range d.TrainY {
				counts[y]++
			}
			for c, n := range counts {
				if n != 4 {
					t.Fatalf("class %d has %d samples, want 4", c, n)
				}
			}
		})
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a := MNISTLike(20, 10, 7)
	b := MNISTLike(20, 10, 7)
	for i := range a.TrainX.Data {
		if a.TrainX.Data[i] != b.TrainX.Data[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
	c := MNISTLike(20, 10, 8)
	same := true
	for i := range a.TrainX.Data {
		if a.TrainX.Data[i] != c.TrainX.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds generated identical data")
	}
}

func TestTrainTestSplitsDiffer(t *testing.T) {
	d := CIFARLike(20, 20, 9)
	same := true
	for i := range d.TrainX.Data {
		if d.TrainX.Data[i] != d.TestX.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train and test splits are identical")
	}
}

// classSeparation verifies classes are visually distinct: the mean image
// of each class must differ from every other class's mean image.
func TestClassesAreSeparable(t *testing.T) {
	for _, d := range []*Dataset{
		MNISTLike(200, 10, 11),
		FashionLike(200, 10, 12),
		CIFARLike(200, 10, 13),
		SVHNLike(200, 10, 14),
	} {
		t.Run(d.Name, func(t *testing.T) {
			sz := d.Channels * d.H * d.W
			means := make([][]float64, 10)
			counts := make([]int, 10)
			for i := range means {
				means[i] = make([]float64, sz)
			}
			for i, y := range d.TrainY {
				for j := 0; j < sz; j++ {
					means[y][j] += d.TrainX.Data[i*sz+j]
				}
				counts[y]++
			}
			for c := range means {
				for j := range means[c] {
					means[c][j] /= float64(counts[c])
				}
			}
			for a := 0; a < 10; a++ {
				for b := a + 1; b < 10; b++ {
					dist := 0.0
					for j := 0; j < sz; j++ {
						dd := means[a][j] - means[b][j]
						dist += dd * dd
					}
					if math.Sqrt(dist) < 0.25 {
						t.Fatalf("classes %d and %d nearly identical (dist %g)", a, b, math.Sqrt(dist))
					}
				}
			}
		})
	}
}

func TestSampleView(t *testing.T) {
	d := MNISTLike(10, 5, 15)
	s := d.Sample(3)
	if s.Shape[0] != 1 || s.Shape[1] != 1 || s.Shape[2] != 20 {
		t.Fatalf("sample shape = %v", s.Shape)
	}
	// View shares the underlying data.
	if &s.Data[0] != &d.TrainX.Data[3*400] {
		t.Fatal("Sample must be a view, not a copy")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"mnist", "fashion-mnist", "cifar10", "svhn", "mnist-like"} {
		d, err := ByName(name, 10, 10, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d == nil || d.TrainX.Shape[0] != 10 {
			t.Fatalf("ByName(%q) returned bad dataset", name)
		}
	}
	if _, err := ByName("imagenet", 1, 1, 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestCanvasPrimitives(t *testing.T) {
	cv := NewCanvas(1, 16, 16)
	cv.Line(0.1, 0.5, 0.9, 0.5, 2, Gray(1))
	sum := 0.0
	for _, v := range cv.Pix {
		sum += v
	}
	if sum == 0 {
		t.Fatal("Line drew nothing")
	}

	cv2 := NewCanvas(3, 16, 16)
	cv2.FillRect(0.25, 0.25, 0.75, 0.75, RGB(1, 0.5, 0))
	r := tensor.NewFrom(cv2.Pix[:256], 256).Sum()
	g := tensor.NewFrom(cv2.Pix[256:512], 256).Sum()
	b := tensor.NewFrom(cv2.Pix[512:], 256).Sum()
	if r <= 0 || g <= 0 || b != 0 {
		t.Fatalf("FillRect channel sums r=%g g=%g b=%g", r, g, b)
	}
	if math.Abs(g/r-0.5) > 0.05 {
		t.Fatalf("color scaling wrong: g/r = %g", g/r)
	}

	cv3 := NewCanvas(1, 16, 16)
	cv3.Ellipse(0.5, 0.5, 0.3, 0.3, 0, true, Gray(1))
	center := cv3.Pix[8*16+8]
	corner := cv3.Pix[0]
	if center != 1 || corner != 0 {
		t.Fatalf("filled ellipse: center=%g corner=%g", center, corner)
	}
}

func TestPointInPolygon(t *testing.T) {
	square := []float64{0, 0, 1, 0, 1, 1, 0, 1}
	if !pointInPolygon(0.5, 0.5, square) {
		t.Fatal("center not inside square")
	}
	if pointInPolygon(1.5, 0.5, square) {
		t.Fatal("outside point reported inside")
	}
}

func TestJitterKeepsDigitsVisible(t *testing.T) {
	// Jittered digits must stay mostly on-canvas: every generated digit
	// image needs a minimum amount of ink.
	d := MNISTLike(100, 1, 21)
	sz := d.H * d.W
	for i := 0; i < 100; i++ {
		ink := 0.0
		for _, v := range d.TrainX.Data[i*sz : (i+1)*sz] {
			ink += v
		}
		if ink < 5 {
			t.Fatalf("sample %d (class %d) nearly empty: ink=%g", i, d.TrainY[i], ink)
		}
	}
}

func TestToImageGrayAndRGB(t *testing.T) {
	d1 := MNISTLike(5, 1, 30)
	img := ToImage(d1.Sample(0), 1, 20, 20)
	if img.Bounds().Dx() != 20 || img.Bounds().Dy() != 20 {
		t.Fatalf("gray image bounds = %v", img.Bounds())
	}
	d3 := CIFARLike(5, 1, 31)
	rgb := ToImage(d3.Sample(0), 3, 16, 16)
	if rgb.Bounds().Dx() != 16 {
		t.Fatalf("rgb image bounds = %v", rgb.Bounds())
	}
	// Some pixel must be non-black.
	nonBlack := false
	for y := 0; y < 16 && !nonBlack; y++ {
		for x := 0; x < 16; x++ {
			r, g, b, _ := rgb.At(x, y).RGBA()
			if r+g+b > 0 {
				nonBlack = true
				break
			}
		}
	}
	if !nonBlack {
		t.Fatal("rendered image is all black")
	}
}

func TestToImageWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ToImage(tensor.New(10), 1, 20, 20)
}

func TestSamplePNGAndContactSheet(t *testing.T) {
	dir := t.TempDir()
	d := FashionLike(20, 1, 32)
	if err := d.SamplePNG(0, dir+"/one.png"); err != nil {
		t.Fatal(err)
	}
	if err := d.ContactSheet(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 11 { // one.png + 10 classes
		t.Fatalf("contact sheet wrote %d files", len(entries))
	}
}

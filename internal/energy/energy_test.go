package energy

import (
	"math"
	"strings"
	"testing"
)

func TestCountsPlusScaleTotal(t *testing.T) {
	a := Counts{Add: 1, Mul: 2, Div: 3, Exp: 4, Sqrt: 5}
	b := a.Plus(a)
	if b.Mul != 4 || b.Sqrt != 10 {
		t.Fatalf("Plus = %+v", b)
	}
	s := a.Scale(3)
	if s.Add != 3 || s.Exp != 12 {
		t.Fatalf("Scale = %+v", s)
	}
	if a.Total() != 15 {
		t.Fatalf("Total = %g", a.Total())
	}
}

func TestTableIValues(t *testing.T) {
	// The embedded unit energies must match the paper's Table I exactly.
	if TableI.Add != 0.0202 || TableI.Mul != 0.5354 || TableI.Div != 1.0717 ||
		TableI.Exp != 0.1578 || TableI.Sqrt != 0.7805 {
		t.Fatalf("TableI = %+v", TableI)
	}
}

func TestEnergyLinearity(t *testing.T) {
	c := Counts{Add: 100, Mul: 10}
	e := Energy(c, TableI)
	want := 100*0.0202 + 10*0.5354
	if math.Abs(e-want) > 1e-12 {
		t.Fatalf("Energy = %g, want %g", e, want)
	}
	if Energy(c.Scale(2), TableI) != 2*e {
		t.Fatal("Energy must be linear in counts")
	}
}

func TestBreakdownSharesSumToOne(t *testing.T) {
	c := Counts{Add: 1.91e9, Mul: 2.15e9, Div: 4.17e6, Exp: 175e3, Sqrt: 502e3}
	b := ComputeBreakdown(c, TableI)
	sum := b.MulShare + b.AddShare + b.OtherShare
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %g", sum)
	}
}

func TestBreakdownMatchesPaperFig4(t *testing.T) {
	// With the paper's own Table I counts, multipliers must take ≈96 %
	// of energy, adders ≈3 %, the rest <1 % — exactly Fig. 4.
	c := Counts{Add: 1.91e9, Mul: 2.15e9, Div: 4.17e6, Exp: 175e3, Sqrt: 502e3}
	b := ComputeBreakdown(c, TableI)
	if b.MulShare < 0.95 || b.MulShare > 0.97 {
		t.Fatalf("mul share = %g, want ≈0.96", b.MulShare)
	}
	if b.AddShare < 0.02 || b.AddShare > 0.04 {
		t.Fatalf("add share = %g, want ≈0.03", b.AddShare)
	}
	if b.OtherShare >= 0.01 {
		t.Fatalf("other share = %g, want <0.01", b.OtherShare)
	}
}

func TestBreakdownEmptyCounts(t *testing.T) {
	if b := ComputeBreakdown(Counts{}, TableI); b.MulShare != 0 {
		t.Fatalf("empty breakdown = %+v", b)
	}
}

func TestScenariosFig5Shape(t *testing.T) {
	// NGR multiplier: −29.4 % power; 5LT-style adder: −63 %. On the
	// paper's Table I counts this must land near Fig. 5's bars:
	// XM ≈ −28.3 %, XA ≈ −1.9 %, XAM ≈ −30.2 %.
	c := Counts{Add: 1.91e9, Mul: 2.15e9, Div: 4.17e6, Exp: 175e3, Sqrt: 502e3}
	res := EvaluateScenarios(c, TableI, Scenarios(1-0.294, 0.37))
	byName := map[string]ScenarioResult{}
	for _, r := range res {
		byName[r.Scenario.Name] = r
	}
	if s := byName["Acc"].SavingVsAcc; s != 0 {
		t.Fatalf("Acc saving = %g", s)
	}
	if s := byName["XM"].SavingVsAcc; math.Abs(s-(-0.283)) > 0.01 {
		t.Fatalf("XM saving = %g, want ≈ -0.283", s)
	}
	if s := byName["XA"].SavingVsAcc; math.Abs(s-(-0.019)) > 0.01 {
		t.Fatalf("XA saving = %g, want ≈ -0.019", s)
	}
	if s := byName["XAM"].SavingVsAcc; math.Abs(s-(-0.302)) > 0.015 {
		t.Fatalf("XAM saving = %g, want ≈ -0.302", s)
	}
	// XAM must save more than XM, which saves far more than XA.
	if !(byName["XAM"].SavingVsAcc < byName["XM"].SavingVsAcc &&
		byName["XM"].SavingVsAcc < byName["XA"].SavingVsAcc) {
		t.Fatalf("scenario ordering broken: %+v", byName)
	}
}

func TestConv2DOps(t *testing.T) {
	c := Conv2DOps(4, 4, 8, 3, 3, 3)
	wantMACs := float64(4 * 4 * 8 * 3 * 3 * 3)
	if c.Mul != wantMACs || c.Add != wantMACs {
		t.Fatalf("Conv2DOps = %+v, want %g MACs", c, wantMACs)
	}
	if c.Div != 0 || c.Exp != 0 || c.Sqrt != 0 {
		t.Fatalf("conv must not use div/exp/sqrt: %+v", c)
	}
}

func TestSquashOpsPerVector(t *testing.T) {
	c := SquashOps(10, 8)
	if c.Sqrt != 10 {
		t.Fatalf("squash sqrt count = %g", c.Sqrt)
	}
	if c.Mul != 160 || c.Add != 80 || c.Div != 80 {
		t.Fatalf("SquashOps = %+v", c)
	}
}

func TestSoftmaxOps(t *testing.T) {
	c := SoftmaxOps(5, 10)
	if c.Exp != 50 || c.Div != 50 || c.Add != 45 {
		t.Fatalf("SoftmaxOps = %+v", c)
	}
}

func TestReLUOpsFree(t *testing.T) {
	if ReLUOps(1000).Total() != 0 {
		t.Fatal("ReLU must be free in the Table I op classes")
	}
}

func TestRoutingOpsComposition(t *testing.T) {
	c := RoutingOps(32, 10, 16)
	// Must include the softmax exps and the squash sqrts.
	if c.Exp != 320 {
		t.Fatalf("routing exp = %g", c.Exp)
	}
	if c.Sqrt != 10 {
		t.Fatalf("routing sqrt = %g", c.Sqrt)
	}
	// MACs: 2·32·10·16 from weighted sum + agreement, plus squash muls.
	if c.Mul < 2*32*10*16 {
		t.Fatalf("routing mul = %g too small", c.Mul)
	}
}

func TestCapsVotesOps(t *testing.T) {
	c := CapsVotesOps(512, 10, 8, 16)
	want := float64(512 * 10 * 8 * 16)
	if c.Mul != want || c.Add != want {
		t.Fatalf("CapsVotesOps = %+v", c)
	}
}

func TestFormatCountsHumanSuffixes(t *testing.T) {
	c := Counts{Add: 1.91e9, Mul: 2.15e9, Div: 4.17e6, Exp: 175e3, Sqrt: 502e3}
	s := FormatCounts(c, TableI)
	for _, want := range []string{"1.91 G", "2.15 G", "4.17 M", "175 K", "502 K"} {
		if !strings.Contains(s, want) {
			t.Fatalf("FormatCounts missing %q:\n%s", want, s)
		}
	}
}

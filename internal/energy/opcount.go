package energy

// Operation-count formulas for the building blocks of a CapsNet
// computational path. These are used by internal/models to walk an
// architecture spec and produce the Table I tallies.

// Conv2DOps counts the MAC operations of a 2D convolution producing an
// oh×ow×outCh output from an inCh input with kh×kw kernels (bias included
// as one extra add per output element).
func Conv2DOps(oh, ow, outCh, inCh, kh, kw int) Counts {
	outs := float64(oh * ow * outCh)
	macs := outs * float64(inCh*kh*kw)
	return Counts{Mul: macs, Add: macs /* kh·kw·inCh-1 adds + 1 bias add */}
}

// SquashOps counts the squashing nonlinearity over `vectors` capsule
// vectors of dimension dim. Per vector: dim multiplications and dim−1
// additions for the squared norm, one square root, one addition and one
// division for the scale factor, and dim multiplications (with the scale
// folded into one division per element on a hardware datapath, we charge
// dim divisions, matching how accelerators implement x/(const)·x̂).
func SquashOps(vectors, dim int) Counts {
	v := float64(vectors)
	d := float64(dim)
	return Counts{
		Mul:  v * 2 * d,
		Add:  v * d, // d−1 norm adds + 1 for (1+‖s‖²)
		Div:  v * d, // elementwise scale application
		Sqrt: v,
	}
}

// SquashVariantOps counts the approximate squash variants of
// internal/approx. sqnorm drops the exact square root for the one-segment
// LinearSqrt chord — an exponent shift, one multiply and one add per
// vector — leaving the rest of the tally unchanged. Unknown or exact
// names fall through to the exact SquashOps tally.
func SquashVariantOps(name string, vectors, dim int) Counts {
	if name != "sqnorm" {
		return SquashOps(vectors, dim)
	}
	c := SquashOps(vectors, dim)
	v := float64(vectors)
	c.Sqrt -= v
	c.Mul += v // 2m/3 chord slope
	c.Add += v // + 1/3 chord intercept (the exponent shift rides free)
	return c
}

// SoftmaxOps counts softmax over groups of n logits each.
func SoftmaxOps(groups, n int) Counts {
	g := float64(groups)
	return Counts{
		Exp: g * float64(n),
		Add: g * float64(n-1),
		Div: g * float64(n),
	}
}

// SoftmaxVariantOps counts the approximate softmax variants of
// internal/approx. base2 replaces every exponential with a barrel shift
// of the exponent field — charged as one add, the cheapest Table I class,
// since a shifter's energy is of that order. pwl additionally reads the
// mantissa chord 1+f, one more add per logit. Unknown or exact names fall
// through to the exact SoftmaxOps tally.
func SoftmaxVariantOps(name string, groups, n int) Counts {
	g := float64(groups)
	gn := g * float64(n)
	switch name {
	case "base2":
		return Counts{
			Add: gn + g*float64(n-1), // shift per logit + normalization adds
			Div: gn,
		}
	case "pwl":
		return Counts{
			Add: 2*gn + g*float64(n-1), // shift + chord add per logit
			Div: gn,
		}
	default:
		return SoftmaxOps(groups, n)
	}
}

// ReLUOps counts a ReLU activation: comparisons only, no arithmetic
// energy in the Table I classes.
func ReLUOps(elements int) Counts { return Counts{} }

// RoutingOps counts one iteration of dynamic routing between inCaps input
// capsules and outCaps output capsules of dimension dim (per spatial
// position; multiply by positions before calling, or fold positions into
// inCaps/outCaps):
//
//	k = softmax(b)          — SoftmaxOps(inCaps, outCaps)
//	s_j = Σ_i k_ij û_ij     — inCaps·outCaps·dim MACs
//	v_j = squash(s_j)       — SquashOps(outCaps, dim)
//	b_ij += û_ij · v_j      — inCaps·outCaps·dim MACs + inCaps·outCaps adds
func RoutingOps(inCaps, outCaps, dim int) Counts {
	macs := float64(inCaps * outCaps * dim)
	c := Counts{Mul: 2 * macs, Add: 2*macs + float64(inCaps*outCaps)}
	c = c.Plus(SoftmaxOps(inCaps, outCaps))
	c = c.Plus(SquashOps(outCaps, dim))
	return c
}

// CapsVotesOps counts the vote computation û_ij = W_ij · u_i of a
// fully-connected capsule layer: one dInxdOut matrix-vector product per
// (input capsule, output capsule) pair.
func CapsVotesOps(inCaps, outCaps, dIn, dOut int) Counts {
	macs := float64(inCaps * outCaps * dIn * dOut)
	return Counts{Mul: macs, Add: macs}
}

// Package energy implements the energy model of Sec. III-A of the ReD-CaNe
// paper: operation counting over a CapsNet's computational path, the
// per-operation unit energies of Table I (8-bit fixed point, 45 nm,
// Synopsys DC — embedded as published constants), the energy breakdown of
// Fig. 4, and the approximate-component scenarios of Fig. 5
// (Acc / XM / XA / XAM).
package energy

import (
	"fmt"
	"strings"
)

// Counts tallies the basic arithmetic operations on a CapsNet's
// computational path. Values are operation counts (may be fractional after
// scaling, hence float64).
type Counts struct {
	Add  float64
	Mul  float64
	Div  float64
	Exp  float64
	Sqrt float64
}

// Plus returns the elementwise sum of two tallies.
func (c Counts) Plus(o Counts) Counts {
	return Counts{
		Add:  c.Add + o.Add,
		Mul:  c.Mul + o.Mul,
		Div:  c.Div + o.Div,
		Exp:  c.Exp + o.Exp,
		Sqrt: c.Sqrt + o.Sqrt,
	}
}

// Scale returns the tally multiplied by k (e.g. routing iterations).
func (c Counts) Scale(k float64) Counts {
	return Counts{Add: c.Add * k, Mul: c.Mul * k, Div: c.Div * k, Exp: c.Exp * k, Sqrt: c.Sqrt * k}
}

// Total returns the total number of operations.
func (c Counts) Total() float64 {
	return c.Add + c.Mul + c.Div + c.Exp + c.Sqrt
}

// UnitEnergy holds per-operation energies in picojoules.
type UnitEnergy struct {
	Add  float64
	Mul  float64
	Div  float64
	Exp  float64
	Sqrt float64
}

// TableI is the paper's Table I: unit energies of 8-bit fixed-point
// operators synthesized in 45 nm CMOS with Synopsys Design Compiler.
// These are published inputs to the analysis, embedded verbatim.
var TableI = UnitEnergy{
	Add:  0.0202,
	Mul:  0.5354,
	Div:  1.0717,
	Exp:  0.1578,
	Sqrt: 0.7805,
}

// Energy returns the total energy in picojoules of executing the counted
// operations at the given unit energies.
func Energy(c Counts, u UnitEnergy) float64 {
	return c.Add*u.Add + c.Mul*u.Mul + c.Div*u.Div + c.Exp*u.Exp + c.Sqrt*u.Sqrt
}

// Breakdown is the per-operation-class share of total energy (Fig. 4).
type Breakdown struct {
	MulShare   float64
	AddShare   float64
	OtherShare float64 // div + exp + sqrt
}

// ComputeBreakdown returns the Fig. 4 energy shares.
func ComputeBreakdown(c Counts, u UnitEnergy) Breakdown {
	total := Energy(c, u)
	if total == 0 {
		return Breakdown{}
	}
	return Breakdown{
		MulShare:   c.Mul * u.Mul / total,
		AddShare:   c.Add * u.Add / total,
		OtherShare: (c.Div*u.Div + c.Exp*u.Exp + c.Sqrt*u.Sqrt) / total,
	}
}

// Scenario scales the multiplier and adder energies to model deploying
// approximate components, reproducing Fig. 5:
//
//	Acc — accurate everything; XM — approximate multipliers only;
//	XA — approximate adders only; XAM — both.
type Scenario struct {
	Name string
	// MulScale and AddScale multiply the accurate unit energies; 1 means
	// accurate, e.g. 0.71 models the NGR multiplier (−29 % power).
	MulScale float64
	AddScale float64
}

// Scenarios builds the four Fig. 5 configurations from a multiplier power
// scale and an adder power scale.
func Scenarios(mulScale, addScale float64) []Scenario {
	return []Scenario{
		{Name: "Acc", MulScale: 1, AddScale: 1},
		{Name: "XM", MulScale: mulScale, AddScale: 1},
		{Name: "XA", MulScale: 1, AddScale: addScale},
		{Name: "XAM", MulScale: mulScale, AddScale: addScale},
	}
}

// ScenarioResult is one bar of Fig. 5.
type ScenarioResult struct {
	Scenario Scenario
	EnergyPJ float64
	// SavingVsAcc is negative for savings, e.g. -0.283 for −28.3 %.
	SavingVsAcc float64
}

// EvaluateScenarios computes the Fig. 5 bars for the given op counts.
func EvaluateScenarios(c Counts, u UnitEnergy, scenarios []Scenario) []ScenarioResult {
	acc := Energy(c, u)
	out := make([]ScenarioResult, 0, len(scenarios))
	for _, s := range scenarios {
		su := u
		su.Mul *= s.MulScale
		su.Add *= s.AddScale
		e := Energy(c, su)
		saving := 0.0
		if acc > 0 {
			saving = e/acc - 1
		}
		out = append(out, ScenarioResult{Scenario: s, EnergyPJ: e, SavingVsAcc: saving})
	}
	return out
}

// FormatCounts renders a Table I-style operations table.
func FormatCounts(c Counts, u UnitEnergy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %12s\n", "OPERATION", "# OPS", "Unit E [pJ]")
	row := func(name string, n, e float64) {
		fmt.Fprintf(&b, "%-12s %14s %12.4f\n", name, human(n), e)
	}
	row("Addition", c.Add, u.Add)
	row("Multiplication", c.Mul, u.Mul)
	row("Division", c.Div, u.Div)
	row("Exponential", c.Exp, u.Exp)
	row("Square Root", c.Sqrt, u.Sqrt)
	return b.String()
}

// human renders an op count with G/M/K suffixes like the paper's Table I.
func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f G", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f M", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0f K", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

package energy

import "testing"

func TestSoftmaxVariantOpsFallThrough(t *testing.T) {
	exact := SoftmaxOps(5, 10)
	for _, name := range []string{"", "exact", "bogus"} {
		if got := SoftmaxVariantOps(name, 5, 10); got != exact {
			t.Fatalf("SoftmaxVariantOps(%q) = %+v, want exact %+v", name, got, exact)
		}
	}
	if got := SquashVariantOps("", 10, 8); got != SquashOps(10, 8) {
		t.Fatalf("SquashVariantOps fall-through = %+v", got)
	}
}

func TestSoftmaxVariantOpsShape(t *testing.T) {
	// base2 trades every exponential for a shift (charged as an add);
	// pwl adds the mantissa-chord add on top. Neither uses Exp at all.
	b2 := SoftmaxVariantOps("base2", 5, 10)
	if b2.Exp != 0 || b2.Div != 50 || b2.Add != 50+45 {
		t.Fatalf("base2 ops = %+v", b2)
	}
	pwl := SoftmaxVariantOps("pwl", 5, 10)
	if pwl.Exp != 0 || pwl.Add != 100+45 {
		t.Fatalf("pwl ops = %+v", pwl)
	}
}

func TestSquashVariantOpsShape(t *testing.T) {
	// sqnorm drops the exact square root for one multiply and one add per
	// vector (the LinearSqrt chord).
	c := SquashVariantOps("sqnorm", 10, 8)
	if c.Sqrt != 0 {
		t.Fatalf("sqnorm still counts %g sqrts", c.Sqrt)
	}
	exact := SquashOps(10, 8)
	if c.Mul != exact.Mul+10 || c.Add != exact.Add+10 || c.Div != exact.Div {
		t.Fatalf("sqnorm ops = %+v vs exact %+v", c, exact)
	}
}

func TestApproximateVariantsAreCheaperUnderTableI(t *testing.T) {
	// The point of the approximations: under the paper's unit energies
	// every variant must cost strictly less than its exact counterpart.
	exactSm := Energy(SoftmaxOps(64, 10), TableI)
	for _, name := range []string{"base2", "pwl"} {
		if e := Energy(SoftmaxVariantOps(name, 64, 10), TableI); e >= exactSm {
			t.Errorf("%s softmax energy %.3f pJ >= exact %.3f pJ", name, e, exactSm)
		}
	}
	exactSq := Energy(SquashOps(64, 16), TableI)
	if e := Energy(SquashVariantOps("sqnorm", 64, 16), TableI); e >= exactSq {
		t.Errorf("sqnorm squash energy %.3f pJ >= exact %.3f pJ", e, exactSq)
	}
}

package params

import (
	"path/filepath"
	"testing"

	"redcane/internal/tensor"
)

func TestPutGetNames(t *testing.T) {
	s := NewStore()
	s.Put("a/W", tensor.New(2, 2).Fill(1))
	s.Put("b/W", tensor.New(3))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, ok := s.Get("a/W")
	if !ok || got.Len() != 4 {
		t.Fatal("Get failed")
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get of missing key succeeded")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a/W" || names[1] != "b/W" {
		t.Fatalf("Names = %v", names)
	}
}

func TestFromParamsDeepCopies(t *testing.T) {
	w := tensor.New(2).Fill(5)
	s := FromParams(map[string]*tensor.Tensor{"l/W": w})
	w.Data[0] = 9
	got, _ := s.Get("l/W")
	if got.Data[0] != 5 {
		t.Fatal("FromParams must deep-copy")
	}
}

func TestLoadInto(t *testing.T) {
	src := tensor.NewFrom([]float64{1, 2, 3, 4}, 2, 2)
	s := NewStore()
	s.Put("l/W", src)
	dst := tensor.New(2, 2)
	if err := s.LoadInto(map[string]*tensor.Tensor{"l/W": dst}); err != nil {
		t.Fatal(err)
	}
	if dst.Data[3] != 4 {
		t.Fatalf("LoadInto copied wrong data: %v", dst.Data)
	}
}

func TestLoadIntoMissingTensor(t *testing.T) {
	s := NewStore()
	err := s.LoadInto(map[string]*tensor.Tensor{"l/W": tensor.New(1)})
	if err == nil {
		t.Fatal("expected error for missing tensor")
	}
}

func TestLoadIntoShapeMismatch(t *testing.T) {
	s := NewStore()
	s.Put("l/W", tensor.New(2, 3))
	err := s.LoadInto(map[string]*tensor.Tensor{"l/W": tensor.New(3, 2)})
	if err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weights.gob")
	s := NewStore()
	s.Put("conv/W", tensor.New(2, 3).FillNormal(tensor.NewRNG(1), 0, 1))
	s.Put("conv/B", tensor.New(3).Fill(0.5))
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d tensors", loaded.Len())
	}
	orig, _ := s.Get("conv/W")
	got, _ := loaded.Get("conv/W")
	if !got.SameShape(orig) {
		t.Fatalf("shape %v vs %v", got.Shape, orig.Shape)
	}
	for i := range orig.Data {
		if got.Data[i] != orig.Data[i] {
			t.Fatal("round trip altered data")
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// Package params provides a named-tensor store used to move trained
// weights between the trainer, the inference network and disk (gob
// encoding). Names follow the "<layer>/<tensor>" convention used by the
// caps and train packages.
package params

import (
	"encoding/gob"
	"fmt"
	"os"
	"sort"

	"redcane/internal/tensor"
)

// Store is a set of named tensors.
type Store struct {
	tensors map[string]*tensor.Tensor
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tensors: make(map[string]*tensor.Tensor)}
}

// Put registers t under name, replacing any previous entry.
func (s *Store) Put(name string, t *tensor.Tensor) {
	s.tensors[name] = t
}

// Get returns the tensor stored under name.
func (s *Store) Get(name string) (*tensor.Tensor, bool) {
	t, ok := s.tensors[name]
	return t, ok
}

// Names returns the stored names in sorted order.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.tensors))
	for k := range s.tensors {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored tensors.
func (s *Store) Len() int { return len(s.tensors) }

// FromParams builds a store from a parameter map (as returned by
// caps.Network.Params), deep-copying every tensor.
func FromParams(params map[string]*tensor.Tensor) *Store {
	s := NewStore()
	for k, v := range params {
		s.Put(k, v.Clone())
	}
	return s
}

// LoadInto copies stored values into the destination parameter map. Every
// destination tensor must have a stored counterpart with an identical
// shape; extra stored tensors are ignored.
func (s *Store) LoadInto(params map[string]*tensor.Tensor) error {
	for name, dst := range params {
		src, ok := s.tensors[name]
		if !ok {
			return fmt.Errorf("params: missing tensor %q", name)
		}
		if !src.SameShape(dst) {
			return fmt.Errorf("params: shape mismatch for %q: stored %v, want %v", name, src.Shape, dst.Shape)
		}
		copy(dst.Data, src.Data)
	}
	return nil
}

// encoded is the gob wire format.
type encoded struct {
	Names  []string
	Shapes [][]int
	Data   [][]float64
}

// Save writes the store to path.
func (s *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("params: save: %w", err)
	}
	defer f.Close()
	var e encoded
	for _, name := range s.Names() {
		t := s.tensors[name]
		e.Names = append(e.Names, name)
		e.Shapes = append(e.Shapes, t.Shape)
		e.Data = append(e.Data, t.Data)
	}
	if err := gob.NewEncoder(f).Encode(e); err != nil {
		return fmt.Errorf("params: encode: %w", err)
	}
	return nil
}

// Load reads a store previously written by Save.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("params: load: %w", err)
	}
	defer f.Close()
	var e encoded
	if err := gob.NewDecoder(f).Decode(&e); err != nil {
		return nil, fmt.Errorf("params: decode: %w", err)
	}
	if len(e.Names) != len(e.Shapes) || len(e.Names) != len(e.Data) {
		return nil, fmt.Errorf("params: corrupt store %q", path)
	}
	s := NewStore()
	for i, name := range e.Names {
		s.Put(name, tensor.NewFrom(e.Data[i], e.Shapes[i]...))
	}
	return s, nil
}

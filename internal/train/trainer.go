package train

import (
	"context"
	"fmt"
	"io"
	"math"

	"redcane/internal/datasets"
	"redcane/internal/tensor"
)

// Config controls a training run.
type Config struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      uint64
	// GradClip caps the global gradient L2 norm (0 disables clipping).
	GradClip float64
	// Log, if non-nil, receives one line per epoch.
	Log io.Writer
	// Decoder, if non-nil, adds Sabour et al.'s reconstruction
	// regularizer with the given weight (ReconWeight defaults to
	// 0.0005 per pixel-sum, the original setting, when zero).
	Decoder     *Decoder
	ReconWeight float64
}

// Result summarizes a training run.
type Result struct {
	FinalLoss     float64
	TrainAccuracy float64
	TestAccuracy  float64
	Epochs        int
}

// Fit trains the model on the dataset with Adam and the margin loss.
func Fit(m *Model, ds *datasets.Dataset, cfg Config) Result {
	res, err := FitCtx(context.Background(), m, ds, cfg)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	return res
}

// FitCtx is Fit with cancellation: when ctx is cancelled training stops
// at the next batch boundary and returns ctx's error. The model then
// holds partially trained weights — callers must not cache them as a
// finished run (training is restarted, not resumed, on a rerun).
func FitCtx(ctx context.Context, m *Model, ds *datasets.Dataset, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	if cfg.ReconWeight == 0 {
		cfg.ReconWeight = 0.0005 * 784 // Sabour et al.: 0.0005 × SSE
	}
	opt := NewAdam(cfg.LR)
	rng := tensor.NewRNG(cfg.Seed)
	n := ds.TrainX.Shape[0]
	sample := ds.Channels * ds.H * ds.W
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		batches := 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			if err := ctx.Err(); err != nil {
				return Result{FinalLoss: lastLoss, Epochs: epoch}, err
			}
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			bs := hi - lo
			xb := tensor.New(bs, ds.Channels, ds.H, ds.W)
			yb := make([]int, bs)
			for i := 0; i < bs; i++ {
				idx := order[lo+i]
				copy(xb.Data[i*sample:], ds.TrainX.Data[idx*sample:(idx+1)*sample])
				yb[i] = ds.TrainY[idx]
			}
			m.ZeroGrad()
			out := m.Forward(xb)
			loss, grad := MarginLoss(out, yb)
			params := m.Params()
			if cfg.Decoder != nil {
				cfg.Decoder.ZeroGrad()
				recon := cfg.Decoder.Reconstruct(out, yb)
				flat := xb.Reshape(bs, sample)
				rl, gv := cfg.Decoder.Loss(recon, flat, yb, cfg.ReconWeight/float64(sample))
				loss += rl
				grad.AddInPlace(gv)
				params = append(params, cfg.Decoder.Params()...)
			}
			m.Backward(grad)
			if cfg.GradClip > 0 {
				clipGrads(params, cfg.GradClip)
			}
			opt.Step(params)
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %d/%d: loss=%.4f\n", epoch+1, cfg.Epochs, lastLoss)
		}
	}
	return Result{
		FinalLoss:     lastLoss,
		TrainAccuracy: Evaluate(m, ds.TrainX, ds.TrainY, cfg.BatchSize),
		TestAccuracy:  Evaluate(m, ds.TestX, ds.TestY, cfg.BatchSize),
		Epochs:        cfg.Epochs,
	}, nil
}

// clipGrads rescales all gradients so their global L2 norm is at most c.
func clipGrads(params []*Param, c float64) {
	total := 0.0
	for _, p := range params {
		for _, g := range p.G.Data {
			total += g * g
		}
	}
	if total <= c*c {
		return
	}
	scale := c / math.Sqrt(total)
	for _, p := range params {
		p.G.ScaleInPlace(scale)
	}
}

// Evaluate computes classification accuracy of the training model.
func Evaluate(m *Model, x *tensor.Tensor, labels []int, batch int) float64 {
	n := x.Shape[0]
	if n == 0 {
		return 0
	}
	if batch <= 0 {
		batch = 32
	}
	sample := x.Len() / n
	correct := 0
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, x.Shape[1:]...)
		xb := tensor.NewFrom(x.Data[lo*sample:hi*sample], shape...)
		preds := Predict(m.Forward(xb))
		for i, p := range preds {
			if p == labels[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

package train

import (
	"math"

	"redcane/internal/tensor"
)

// LSUVInit performs a layer-sequential unit-variance style initialization
// (Mishkin & Matas, ICLR 2016) on the model: for each layer in forward
// order, its weights are rescaled until the standard deviation of its
// pre-activation (pre-squash MAC outputs, or routing votes) reaches
// `target` on the calibration batch x.
//
// Deep capsule stacks need this because the squashing nonlinearity damps
// small vectors quadratically: with plain Glorot initialization the
// activations of a 17-layer DeepCaps collapse to ~1e-40 by the last cell
// and no gradient survives. The reference DeepCaps implementation solves
// this with batch normalization; rescaling the initial weights achieves
// the same signal propagation without adding inference-time machinery.
func LSUVInit(m *Model, x *tensor.Tensor, target float64) {
	for _, l := range m.Layers {
		x = lsuvLayer(l, x, target)
	}
}

// lsuvLayer calibrates one layer (recursing into cells) and returns its
// output on the calibration batch.
func lsuvLayer(l Layer, x *tensor.Tensor, target float64) *tensor.Tensor {
	if cell, ok := l.(*CapsCell); ok {
		a := lsuvLayer(cell.L1, x, target)
		b := lsuvLayer(cell.L2, a, target)
		main := lsuvLayer(cell.L3, b, target)
		skip := lsuvLayer(cell.Skip, a, target)
		return tensor.Add(main, skip)
	}
	const maxIters = 8
	var y *tensor.Tensor
	for it := 0; it < maxIters; it++ {
		y = l.Forward(x)
		std := preActStd(l)
		if std <= 0 {
			return y
		}
		scale := target / std
		if math.Abs(scale-1) < 0.02 {
			return y
		}
		for _, p := range l.Params() {
			p.W.ScaleInPlace(scale)
		}
	}
	return l.Forward(x)
}

// preActStd reports the pre-activation std of a freshly Forwarded layer.
func preActStd(l Layer) float64 {
	switch v := l.(type) {
	case *Conv2D:
		return v.pre.Std()
	case *ConvCaps2D:
		return v.pre.Std()
	case *ConvCaps3D:
		return v.cache.votes.Std()
	case *ClassCaps:
		return v.cache.votes.Std()
	default:
		return 0
	}
}

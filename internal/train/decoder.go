package train

import (
	"math"

	"redcane/internal/tensor"
)

// This file implements the reconstruction regularizer of Sabour et al.:
// the true class's capsule vector is fed through a small fully-connected
// decoder that must reproduce the input image, and the masked MSE is
// added to the margin loss with a small weight. The ReD-CaNe paper
// excludes the decoder from its *resilience analysis* (it is training-only
// machinery), but the CapsNets it analyzes are trained with it, so the
// training substrate provides it.

// Dense is a fully-connected trainable layer with an optional activation.
type Dense struct {
	LayerName  string
	W, B       *Param
	Activation Activation

	x, pre *tensor.Tensor
}

// Activation selects the elementwise nonlinearity of a Dense layer.
type Activation int

const (
	// Linear applies no nonlinearity.
	Linear Activation = iota
	// ReLUAct applies max(x, 0).
	ReLUAct
	// SigmoidAct applies 1/(1+e^{-x}) — the decoder output layer.
	SigmoidAct
)

// NewDense builds a Glorot-initialized fully-connected layer mapping
// in → out features.
func NewDense(name string, in, out int, act Activation, seed uint64) *Dense {
	w := tensor.New(out, in).FillGlorot(tensor.NewRNG(seed), in, out)
	return &Dense{
		LayerName:  name,
		W:          newParam(name+"/W", w),
		B:          newParam(name+"/B", tensor.New(out)),
		Activation: act,
	}
}

// Name implements Layer.
func (l *Dense) Name() string { return l.LayerName }

// Forward implements Layer for a rank-2 input [n, in].
func (l *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	out, in := l.W.W.Shape[0], l.W.W.Shape[1]
	n := x.Shape[0]
	y := tensor.MatMulT(x.Reshape(n, in), l.W.W) // [n, out]
	for b := 0; b < n; b++ {
		row := y.Data[b*out : (b+1)*out]
		for j := range row {
			row[j] += l.B.W.Data[j]
		}
	}
	l.pre = y
	switch l.Activation {
	case ReLUAct:
		return tensor.ReLU(y)
	case SigmoidAct:
		return y.Map(sigmoid)
	default:
		return y
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Backward implements Layer.
func (l *Dense) Backward(gy *tensor.Tensor) *tensor.Tensor {
	out, in := l.W.W.Shape[0], l.W.W.Shape[1]
	n := l.x.Shape[0]
	gpre := gy
	switch l.Activation {
	case ReLUAct:
		gpre = tensor.ReLUBackward(l.pre, gy)
	case SigmoidAct:
		gpre = tensor.New(gy.Shape...)
		for i, v := range l.pre.Data {
			s := sigmoid(v)
			gpre.Data[i] = gy.Data[i] * s * (1 - s)
		}
	}
	g2 := gpre.Reshape(n, out)
	x2 := l.x.Reshape(n, in)
	// gW[o, i] = Σ_b g[b, o]·x[b, i]
	gw := tensor.MatMulAT(g2, x2) // [out, in]
	l.W.G.AddInPlace(gw)
	for b := 0; b < n; b++ {
		for j := 0; j < out; j++ {
			l.B.G.Data[j] += g2.Data[b*out+j]
		}
	}
	// gx = g2 · W  ([n, out]·[out, in])
	return tensor.MatMul(g2, l.W.W)
}

// Params implements Layer.
func (l *Dense) Params() []*Param { return []*Param{l.W, l.B} }

// Decoder reconstructs the input image from the true class's capsule
// vector through two hidden ReLU layers and a sigmoid output, as in
// Sabour et al.
type Decoder struct {
	Classes, Dim int
	OutSize      int // C·H·W of the input image
	H1, H2, Out  *Dense

	masked *tensor.Tensor
	labels []int
}

// NewDecoder builds the decoder with the given hidden widths.
func NewDecoder(classes, dim, hidden1, hidden2, outSize int, seed uint64) *Decoder {
	return &Decoder{
		Classes: classes, Dim: dim, OutSize: outSize,
		H1:  NewDense("Decoder1", classes*dim, hidden1, ReLUAct, seed),
		H2:  NewDense("Decoder2", hidden1, hidden2, ReLUAct, seed+1),
		Out: NewDense("DecoderOut", hidden2, outSize, SigmoidAct, seed+2),
	}
}

// Reconstruct masks v [n, classes, dim] to the labeled class and decodes
// an image reconstruction [n, outSize].
func (d *Decoder) Reconstruct(v *tensor.Tensor, labels []int) *tensor.Tensor {
	n := v.Shape[0]
	masked := tensor.New(n, d.Classes*d.Dim)
	for b := 0; b < n; b++ {
		base := (b*d.Classes + labels[b]) * d.Dim
		copy(masked.Data[b*d.Classes*d.Dim+labels[b]*d.Dim:], v.Data[base:base+d.Dim])
	}
	d.masked = masked
	d.labels = labels
	return d.Out.Forward(d.H2.Forward(d.H1.Forward(masked)))
}

// Loss computes the reconstruction MSE against the flattened input images
// x [n, outSize] and returns the loss plus the gradient with respect to
// the class capsules v (nonzero only at the labeled class's capsule).
func (d *Decoder) Loss(recon, x *tensor.Tensor, labels []int, weight float64) (float64, *tensor.Tensor) {
	n := recon.Shape[0]
	grad := tensor.New(recon.Shape...)
	loss := 0.0
	for i := range recon.Data {
		diff := recon.Data[i] - x.Data[i]
		loss += diff * diff
		grad.Data[i] = 2 * weight * diff / float64(n)
	}
	loss = loss * weight / float64(n)

	gMasked := d.H1.Backward(d.H2.Backward(d.Out.Backward(grad)))
	// Scatter back to [n, classes, dim], only the labeled capsule.
	gv := tensor.New(n, d.Classes, d.Dim)
	for b := 0; b < n; b++ {
		src := gMasked.Data[b*d.Classes*d.Dim+labels[b]*d.Dim:]
		dst := gv.Data[(b*d.Classes+labels[b])*d.Dim:]
		copy(dst[:d.Dim], src[:d.Dim])
	}
	return loss, gv
}

// Params returns the decoder's trainable parameters.
func (d *Decoder) Params() []*Param {
	var out []*Param
	out = append(out, d.H1.Params()...)
	out = append(out, d.H2.Params()...)
	out = append(out, d.Out.Params()...)
	return out
}

// ZeroGrad clears the decoder's gradients.
func (d *Decoder) ZeroGrad() {
	for _, p := range d.Params() {
		p.ZeroGrad()
	}
}

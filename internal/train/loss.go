package train

import (
	"math"

	"redcane/internal/tensor"
)

// Margin-loss constants from Sabour et al. (NIPS 2017).
const (
	marginPlus  = 0.9
	marginMinus = 0.1
	marginDown  = 0.5 // λ: down-weight of absent-class loss
)

// MarginLoss computes the capsule margin loss over a batch of class
// capsules v [n, classes, dim] with integer labels, returning the mean
// loss and the gradient with respect to v.
//
//	L_k = T_k·max(0, m⁺−‖v_k‖)² + λ(1−T_k)·max(0, ‖v_k‖−m⁻)²
func MarginLoss(v *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, classes, dim := v.Shape[0], v.Shape[1], v.Shape[2]
	grad = tensor.New(v.Shape...)
	const eps = 1e-12
	for b := 0; b < n; b++ {
		for k := 0; k < classes; k++ {
			base := (b*classes + k) * dim
			norm2 := 0.0
			for d := 0; d < dim; d++ {
				norm2 += v.Data[base+d] * v.Data[base+d]
			}
			norm := math.Sqrt(norm2 + eps)
			var dLdNorm float64
			if k == labels[b] {
				if m := marginPlus - norm; m > 0 {
					loss += m * m
					dLdNorm = -2 * m
				}
			} else {
				if m := norm - marginMinus; m > 0 {
					loss += marginDown * m * m
					dLdNorm = marginDown * 2 * m
				}
			}
			if dLdNorm != 0 {
				for d := 0; d < dim; d++ {
					grad.Data[base+d] = dLdNorm * v.Data[base+d] / norm
				}
			}
		}
	}
	inv := 1.0 / float64(n)
	loss *= inv
	grad.ScaleInPlace(inv)
	return loss, grad
}

// Predict returns the argmax class (largest capsule norm) for each sample
// of v [n, classes, dim].
func Predict(v *tensor.Tensor) []int {
	norms := tensor.NormAxis(v, 2)
	n, classes := norms.Shape[0], norms.Shape[1]
	out := make([]int, n)
	for b := 0; b < n; b++ {
		best, arg := norms.At(b, 0), 0
		for k := 1; k < classes; k++ {
			if nv := norms.At(b, k); nv > best {
				best, arg = nv, k
			}
		}
		out[b] = arg
	}
	return out
}

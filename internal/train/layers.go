// Package train implements training for the CapsNet architectures: mirror
// layers with hand-written backward passes (conv via im2col/col2im, squash
// and softmax Jacobians, dynamic routing with straight-through coupling
// coefficients), the margin loss of Sabour et al., and SGD/Adam optimizers.
//
// Training exists to produce realistic weights for the resilience analysis
// — the paper trains in TensorFlow on GPUs; here the whole stack is pure
// Go (DESIGN.md §2). Layer parameter names match the inference layers in
// internal/caps exactly, so a trained model transfers via internal/params.
package train

import (
	"fmt"

	"redcane/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

// newParam allocates a zeroed gradient for w.
func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Fill(0) }

// Layer is a differentiable training layer. Forward caches whatever
// Backward needs; Backward accumulates parameter gradients and returns the
// input gradient. Layers are stateful and not safe for concurrent use.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(gy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Conv2D is the trainable convolution (+ optional ReLU) layer.
type Conv2D struct {
	LayerName string
	W, B      *Param
	Stride    int
	Pad       int
	ReLU      bool

	x, pre  *tensor.Tensor  // caches
	scratch *tensor.Scratch // recycles im2col/matmul temporaries across steps
}

// arena lazily builds the layer's scratch arena. Layers are documented as
// not safe for concurrent use, so a private per-layer arena needs no
// locking; forward outputs are cached across the step and therefore never
// released into it — only internal temporaries recycle.
func (l *Conv2D) arena() *tensor.Scratch {
	if l.scratch == nil {
		l.scratch = tensor.NewScratch()
	}
	return l.scratch
}

// NewConv2D builds a trainable convolution with Glorot-initialized
// weights.
func NewConv2D(name string, inCh, outCh, k, stride, pad int, relu bool, seed uint64) *Conv2D {
	w := tensor.New(outCh, inCh, k, k).FillGlorot(tensor.NewRNG(seed), inCh*k*k, outCh*k*k)
	return &Conv2D{
		LayerName: name,
		W:         newParam(name+"/W", w),
		B:         newParam(name+"/B", tensor.New(outCh)),
		Stride:    stride, Pad: pad, ReLU: relu,
	}
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.LayerName }

// Forward implements Layer.
func (l *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	y := tensor.Conv2DScratch(x, l.W.W, l.B.W, l.Stride, l.Pad, l.arena())
	l.pre = y
	if l.ReLU {
		return tensor.ReLU(y)
	}
	return y
}

// Backward implements Layer.
func (l *Conv2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	if l.ReLU {
		gy = tensor.ReLUBackward(l.pre, gy)
	}
	gx, gw, gb := tensor.Conv2DBackwardScratch(l.x, l.W.W, gy, l.Stride, l.Pad, l.arena())
	l.W.G.AddInPlace(gw)
	l.B.G.AddInPlace(gb)
	return gx
}

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }

// ConvCaps2D is the trainable convolutional capsule layer: convolution
// followed by a squash over each capsule's components.
type ConvCaps2D struct {
	LayerName string
	Caps, Dim int
	W, B      *Param
	Stride    int
	Pad       int

	x, pre  *tensor.Tensor
	scratch *tensor.Scratch
}

// arena lazily builds the layer's scratch arena (see Conv2D.arena).
func (l *ConvCaps2D) arena() *tensor.Scratch {
	if l.scratch == nil {
		l.scratch = tensor.NewScratch()
	}
	return l.scratch
}

// NewConvCaps2D builds a trainable ConvCaps2D.
func NewConvCaps2D(name string, inCh, caps, dim, k, stride, pad int, seed uint64) *ConvCaps2D {
	w := tensor.New(caps*dim, inCh, k, k).FillGlorot(tensor.NewRNG(seed), inCh*k*k, caps*dim*k*k)
	return &ConvCaps2D{
		LayerName: name, Caps: caps, Dim: dim,
		W:      newParam(name+"/W", w),
		B:      newParam(name+"/B", tensor.New(caps*dim)),
		Stride: stride, Pad: pad,
	}
}

// Name implements Layer.
func (l *ConvCaps2D) Name() string { return l.LayerName }

// Forward implements Layer.
func (l *ConvCaps2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	y := tensor.Conv2DScratch(x, l.W.W, l.B.W, l.Stride, l.Pad, l.arena())
	n, h, w := y.Shape[0], y.Shape[2], y.Shape[3]
	l.pre = y.Reshape(n, l.Caps, l.Dim, h, w)
	sq := tensor.Squash(l.pre, 2)
	return sq.Reshape(n, l.Caps*l.Dim, h, w)
}

// Backward implements Layer.
func (l *ConvCaps2D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	n, h, w := l.pre.Shape[0], l.pre.Shape[3], l.pre.Shape[4]
	g5 := gy.Reshape(n, l.Caps, l.Dim, h, w)
	gpre := tensor.SquashBackward(l.pre, g5, 2)
	gconv := gpre.Reshape(n, l.Caps*l.Dim, h, w)
	gx, gw, gb := tensor.Conv2DBackwardScratch(l.x, l.W.W, gconv, l.Stride, l.Pad, l.arena())
	l.W.G.AddInPlace(gw)
	l.B.G.AddInPlace(gb)
	return gx
}

// Params implements Layer.
func (l *ConvCaps2D) Params() []*Param { return []*Param{l.W, l.B} }

// CapsCell mirrors the DeepCaps residual cell: out = L3(L2(L1(x))) +
// Skip(L1(x)).
type CapsCell struct {
	CellName   string
	L1, L2, L3 Layer
	Skip       Layer
}

// Name implements Layer.
func (c *CapsCell) Name() string { return c.CellName }

// Forward implements Layer.
func (c *CapsCell) Forward(x *tensor.Tensor) *tensor.Tensor {
	a := c.L1.Forward(x)
	main := c.L3.Forward(c.L2.Forward(a))
	skip := c.Skip.Forward(a)
	if !main.SameShape(skip) {
		panic(fmt.Sprintf("train: cell %s branch shapes %v vs %v", c.CellName, main.Shape, skip.Shape))
	}
	return tensor.Add(main, skip)
}

// Backward implements Layer.
func (c *CapsCell) Backward(gy *tensor.Tensor) *tensor.Tensor {
	gaMain := c.L2.Backward(c.L3.Backward(gy))
	gaSkip := c.Skip.Backward(gy)
	return c.L1.Backward(tensor.Add(gaMain, gaSkip))
}

// Params implements Layer.
func (c *CapsCell) Params() []*Param {
	var out []*Param
	for _, l := range []Layer{c.L1, c.L2, c.L3, c.Skip} {
		out = append(out, l.Params()...)
	}
	return out
}

// Model is an ordered stack of trainable layers.
type Model struct {
	ModelName string
	Layers    []Layer
}

// Forward runs all layers.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the output gradient through all layers.
func (m *Model) Backward(gy *tensor.Tensor) {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		gy = m.Layers[i].Backward(gy)
	}
}

// Params collects every layer's parameters.
func (m *Model) Params() []*Param {
	var out []*Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all gradients.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// ParamMap exposes the weights keyed by name, matching the inference
// network's Params() keys for transfer via internal/params.
func (m *Model) ParamMap() map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{}
	for _, p := range m.Params() {
		out[p.Name] = p.W
	}
	return out
}

package train

import (
	"context"
	"errors"
	"math"
	"testing"

	"redcane/internal/datasets"
	"redcane/internal/tensor"
)

// numericCheck verifies an analytic gradient against central differences
// for a scalar objective sum(out · dir).
func numericCheck(t *testing.T, name string, forward func() *tensor.Tensor, target *tensor.Tensor, analytic *tensor.Tensor, dir *tensor.Tensor, tol float64) {
	t.Helper()
	const eps = 1e-5
	stride := 1
	if target.Len() > 200 {
		stride = target.Len() / 200
	}
	for i := 0; i < target.Len(); i += stride {
		orig := target.Data[i]
		target.Data[i] = orig + eps
		plus := tensor.Mul(forward(), dir).Sum()
		target.Data[i] = orig - eps
		minus := tensor.Mul(forward(), dir).Sum()
		target.Data[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(analytic.Data[i]-numeric) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("%s grad[%d] = %g, numeric %g", name, i, analytic.Data[i], numeric)
		}
	}
}

func TestConv2DLayerGradients(t *testing.T) {
	l := NewConv2D("c", 2, 3, 3, 1, 1, true, 1)
	x := tensor.New(2, 2, 5, 5).FillNormal(tensor.NewRNG(2), 0, 1)
	out := l.Forward(x)
	dir := tensor.New(out.Shape...).FillNormal(tensor.NewRNG(3), 0, 1)
	l.W.ZeroGrad()
	l.B.ZeroGrad()
	gx := l.Backward(dir)

	fw := func() *tensor.Tensor { return l.Forward(x) }
	numericCheck(t, "conv/x", fw, x, gx, dir, 1e-4)
	numericCheck(t, "conv/W", fw, l.W.W, l.W.G, dir, 1e-4)
	numericCheck(t, "conv/B", fw, l.B.W, l.B.G, dir, 1e-4)
}

func TestConvCaps2DLayerGradients(t *testing.T) {
	l := NewConvCaps2D("cc", 2, 2, 4, 3, 2, 1, 4)
	x := tensor.New(1, 2, 6, 6).FillNormal(tensor.NewRNG(5), 0, 1)
	out := l.Forward(x)
	dir := tensor.New(out.Shape...).FillNormal(tensor.NewRNG(6), 0, 1)
	l.W.ZeroGrad()
	l.B.ZeroGrad()
	gx := l.Backward(dir)

	fw := func() *tensor.Tensor { return l.Forward(x) }
	numericCheck(t, "caps2d/x", fw, x, gx, dir, 1e-4)
	numericCheck(t, "caps2d/W", fw, l.W.W, l.W.G, dir, 1e-4)
}

func TestClassCapsGradientsStraightThrough(t *testing.T) {
	// With a single routing iteration the coupling coefficients are
	// constants (uniform), so the straight-through gradient is exact.
	l := NewClassCaps("cls", 6, 4, 3, 4, 1, 7)
	x := tensor.New(2, 6, 4).FillNormal(tensor.NewRNG(8), 0, 1)
	out := l.Forward(x)
	dir := tensor.New(out.Shape...).FillNormal(tensor.NewRNG(9), 0, 1)
	l.W.ZeroGrad()
	gx := l.Backward(dir)

	fw := func() *tensor.Tensor { return l.Forward(x) }
	numericCheck(t, "classcaps/x", fw, x, gx, dir, 1e-4)
	numericCheck(t, "classcaps/W", fw, l.W.W, l.W.G, dir, 1e-4)
}

func TestConvCaps3DGradientsStraightThrough(t *testing.T) {
	l := NewConvCaps3D("c3d", 2, 4, 2, 4, 3, 1, 1, 1, 10)
	x := tensor.New(1, 8, 4, 4).FillNormal(tensor.NewRNG(11), 0, 1)
	out := l.Forward(x)
	dir := tensor.New(out.Shape...).FillNormal(tensor.NewRNG(12), 0, 1)
	l.W.ZeroGrad()
	gx := l.Backward(dir)

	fw := func() *tensor.Tensor { return l.Forward(x) }
	numericCheck(t, "caps3d/x", fw, x, gx, dir, 1e-4)
	numericCheck(t, "caps3d/W", fw, l.W.W, l.W.G, dir, 1e-4)
}

func TestMarginLossValueAndGradient(t *testing.T) {
	// Perfect prediction: correct capsule at norm ≥ 0.9, others ≤ 0.1.
	v := tensor.New(1, 2, 2)
	v.Set(0.95, 0, 0, 0) // class 0 norm 0.95
	v.Set(0.05, 0, 1, 0) // class 1 norm 0.05
	loss, grad := MarginLoss(v, []int{0})
	if loss != 0 {
		t.Fatalf("perfect-prediction loss = %g", loss)
	}
	for _, g := range grad.Data {
		if g != 0 {
			t.Fatalf("perfect-prediction grad = %v", grad.Data)
		}
	}

	// Worst case: correct capsule at 0, wrong capsule at 1.
	v2 := tensor.New(1, 2, 2)
	v2.Set(1.0, 0, 1, 0)
	loss2, _ := MarginLoss(v2, []int{0})
	want := 0.9*0.9 + 0.5*0.9*0.9
	if math.Abs(loss2-want) > 1e-5 {
		t.Fatalf("worst-case loss = %g, want %g", loss2, want)
	}
}

func TestMarginLossGradientNumeric(t *testing.T) {
	v := tensor.New(3, 4, 5).FillNormal(tensor.NewRNG(13), 0, 0.5)
	labels := []int{0, 2, 3}
	_, grad := MarginLoss(v, labels)
	const eps = 1e-6
	for i := 0; i < v.Len(); i += 7 {
		orig := v.Data[i]
		v.Data[i] = orig + eps
		lp, _ := MarginLoss(v, labels)
		v.Data[i] = orig - eps
		lm, _ := MarginLoss(v, labels)
		v.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(grad.Data[i]-numeric) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("margin grad[%d] = %g, numeric %g", i, grad.Data[i], numeric)
		}
	}
}

func TestPredictPicksLargestNorm(t *testing.T) {
	v := tensor.New(2, 3, 2)
	v.Set(0.9, 0, 1, 0) // sample 0 → class 1
	v.Set(0.8, 1, 2, 1) // sample 1 → class 2
	preds := Predict(v)
	if preds[0] != 1 || preds[1] != 2 {
		t.Fatalf("Predict = %v", preds)
	}
}

func TestSGDStepDirection(t *testing.T) {
	p := newParam("p", tensor.NewFrom([]float64{1, 1}, 2))
	p.G.Data[0] = 2
	NewSGD(0.1, 0).Step([]*Param{p})
	if math.Abs(p.W.Data[0]-0.8) > 1e-12 || p.W.Data[1] != 1 {
		t.Fatalf("SGD step = %v", p.W.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := newParam("p", tensor.New(1))
	opt := NewSGD(0.1, 0.9)
	p.G.Data[0] = 1
	opt.Step([]*Param{p})
	first := p.W.Data[0]
	opt.Step([]*Param{p})
	second := p.W.Data[0] - first
	if !(second < first) { // velocity grows in magnitude
		t.Fatalf("momentum not accumulating: steps %g then %g", first, second)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² with Adam.
	p := newParam("p", tensor.New(1))
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.G.Data[0] = 2 * (p.W.Data[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]-3) > 0.01 {
		t.Fatalf("Adam converged to %g, want 3", p.W.Data[0])
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	x := tensor.New(2, 8, 3, 3).FillNormal(tensor.NewRNG(14), 0, 1)
	flat := FlattenToCaps(x, 2*3*3, 4)
	back := UnflattenFromCaps(flat, x.Shape, 4)
	for i := range x.Data {
		if math.Abs(back.Data[i]-x.Data[i]) > 1e-15 {
			t.Fatal("flatten/unflatten not inverse")
		}
	}
}

func TestClipGrads(t *testing.T) {
	p := newParam("p", tensor.New(2))
	p.G.Data[0], p.G.Data[1] = 3, 4 // norm 5
	clipGrads([]*Param{p}, 1)
	norm := math.Hypot(p.G.Data[0], p.G.Data[1])
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("clipped norm = %g", norm)
	}
	// Under the cap: untouched.
	p.G.Data[0], p.G.Data[1] = 0.1, 0.1
	clipGrads([]*Param{p}, 1)
	if p.G.Data[0] != 0.1 {
		t.Fatal("clip must not touch small gradients")
	}
}

func TestFitLearnsTinyProblem(t *testing.T) {
	// A small CapsNet must fit a 3-class subset of the digit dataset far
	// above chance within a few epochs.
	if testing.Short() {
		t.Skip("training smoke test")
	}
	ds := datasets.MNISTLike(120, 60, 42)
	// Reduce to 3 classes for speed.
	ds = filterClasses(ds, 3)
	m := &Model{ModelName: "tiny", Layers: []Layer{
		NewConv2D("Conv2D", 1, 8, 9, 1, 0, true, 1),
		NewConvCaps2D("Primary", 8, 4, 8, 9, 2, 0, 2),
		NewClassCaps("ClassCaps", 4*2*2, 8, 3, 8, 3, 3),
	}}
	res := Fit(m, ds, Config{Epochs: 12, BatchSize: 12, LR: 2e-3, Seed: 7, GradClip: 5})
	if res.TestAccuracy < 0.7 {
		t.Fatalf("tiny CapsNet failed to learn: test acc %.2f, loss %.4f", res.TestAccuracy, res.FinalLoss)
	}
}

// filterClasses keeps only samples with label < k.
func filterClasses(d *datasets.Dataset, k int) *datasets.Dataset {
	sz := d.Channels * d.H * d.W
	pick := func(x *tensor.Tensor, y []int) (*tensor.Tensor, []int) {
		var idxs []int
		for i, label := range y {
			if label < k {
				idxs = append(idxs, i)
			}
		}
		nx := tensor.New(len(idxs), d.Channels, d.H, d.W)
		ny := make([]int, len(idxs))
		for j, i := range idxs {
			copy(nx.Data[j*sz:], x.Data[i*sz:(i+1)*sz])
			ny[j] = y[i]
		}
		return nx, ny
	}
	out := &datasets.Dataset{
		Name: d.Name, ClassNames: d.ClassNames[:k],
		Channels: d.Channels, H: d.H, W: d.W,
	}
	out.TrainX, out.TrainY = pick(d.TrainX, d.TrainY)
	out.TestX, out.TestY = pick(d.TestX, d.TestY)
	return out
}

func TestFitCtxCancellation(t *testing.T) {
	ds := datasets.MNISTLike(60, 20, 42)
	ds = filterClasses(ds, 3)
	m := &Model{ModelName: "tiny", Layers: []Layer{
		NewConv2D("Conv2D", 1, 4, 9, 2, 0, true, 1),
		NewClassCaps("ClassCaps", 4*6*6/4, 4, 3, 6, 3, 3),
	}}

	// A pre-cancelled context stops before the first batch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := FitCtx(ctx, m, ds, Config{Epochs: 2, BatchSize: 12, LR: 1e-3, Seed: 7})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res.Epochs != 0 {
		t.Fatalf("cancelled run reported %d epochs", res.Epochs)
	}

	// A background context behaves exactly like the legacy Fit wrapper.
	if _, err := FitCtx(context.Background(), m, ds, Config{Epochs: 1, BatchSize: 12, LR: 1e-3, Seed: 7}); err != nil {
		t.Fatal(err)
	}
}

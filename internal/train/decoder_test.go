package train

import (
	"math"
	"testing"

	"redcane/internal/datasets"
	"redcane/internal/tensor"
)

func TestDenseForwardShapeAndBias(t *testing.T) {
	l := NewDense("d", 4, 3, Linear, 1)
	l.W.W.Fill(0)
	l.B.W.Data[0], l.B.W.Data[1], l.B.W.Data[2] = 1, 2, 3
	y := l.Forward(tensor.New(2, 4))
	if y.Shape[0] != 2 || y.Shape[1] != 3 {
		t.Fatalf("dense shape = %v", y.Shape)
	}
	if y.At(0, 0) != 1 || y.At(1, 2) != 3 {
		t.Fatalf("bias not applied: %v", y.Data)
	}
}

func TestDenseGradientsAllActivations(t *testing.T) {
	for _, act := range []Activation{Linear, ReLUAct, SigmoidAct} {
		l := NewDense("d", 5, 4, act, 2)
		x := tensor.New(3, 5).FillNormal(tensor.NewRNG(3), 0, 1)
		out := l.Forward(x)
		dir := tensor.New(out.Shape...).FillNormal(tensor.NewRNG(4), 0, 1)
		l.W.ZeroGrad()
		l.B.ZeroGrad()
		gx := l.Backward(dir)
		fw := func() *tensor.Tensor { return l.Forward(x) }
		numericCheck(t, "dense/x", fw, x, gx, dir, 1e-4)
		numericCheck(t, "dense/W", fw, l.W.W, l.W.G, dir, 1e-4)
		numericCheck(t, "dense/B", fw, l.B.W, l.B.G, dir, 1e-4)
	}
}

func TestSigmoidRange(t *testing.T) {
	l := NewDense("d", 2, 2, SigmoidAct, 5)
	x := tensor.New(4, 2).FillNormal(tensor.NewRNG(6), 0, 10)
	y := l.Forward(x)
	for _, v := range y.Data {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output %g out of (0,1)", v)
		}
	}
}

func TestDecoderMasksToLabeledClass(t *testing.T) {
	d := NewDecoder(3, 4, 8, 8, 16, 7)
	v := tensor.New(2, 3, 4).Fill(0.5)
	d.Reconstruct(v, []int{1, 2})
	// The masked input must be zero except at the labeled capsule.
	for b, label := range []int{1, 2} {
		for c := 0; c < 3; c++ {
			for k := 0; k < 4; k++ {
				got := d.masked.At(b, c*4+k)
				if c == label && got != 0.5 {
					t.Fatalf("labeled capsule not copied: %g", got)
				}
				if c != label && got != 0 {
					t.Fatalf("unlabeled capsule leaked: %g", got)
				}
			}
		}
	}
}

func TestDecoderGradientFlowsOnlyToLabeledCapsule(t *testing.T) {
	d := NewDecoder(3, 4, 8, 8, 16, 8)
	v := tensor.New(1, 3, 4).FillNormal(tensor.NewRNG(9), 0, 0.3)
	x := tensor.New(1, 16).FillUniform(tensor.NewRNG(10), 0, 1)
	recon := d.Reconstruct(v, []int{1})
	_, gv := d.Loss(recon, x, []int{1}, 1)
	for c := 0; c < 3; c++ {
		for k := 0; k < 4; k++ {
			g := gv.At(0, c, k)
			if c != 1 && g != 0 {
				t.Fatalf("gradient leaked to class %d: %g", c, g)
			}
		}
	}
	// Labeled capsule must receive some gradient.
	sum := 0.0
	for k := 0; k < 4; k++ {
		sum += math.Abs(gv.At(0, 1, k))
	}
	if sum == 0 {
		t.Fatal("no gradient to labeled capsule")
	}
}

func TestDecoderLossNumericGradient(t *testing.T) {
	d := NewDecoder(2, 3, 6, 6, 9, 11)
	v := tensor.New(2, 2, 3).FillNormal(tensor.NewRNG(12), 0, 0.5)
	x := tensor.New(2, 9).FillUniform(tensor.NewRNG(13), 0, 1)
	labels := []int{0, 1}

	lossOf := func() float64 {
		recon := d.Reconstruct(v, labels)
		n := recon.Shape[0]
		loss := 0.0
		for i := range recon.Data {
			diff := recon.Data[i] - x.Data[i]
			loss += diff * diff
		}
		return loss / float64(n)
	}
	d.ZeroGrad()
	recon := d.Reconstruct(v, labels)
	_, gv := d.Loss(recon, x, labels, 1)

	const eps = 1e-5
	for i := 0; i < v.Len(); i += 2 {
		orig := v.Data[i]
		v.Data[i] = orig + eps
		plus := lossOf()
		v.Data[i] = orig - eps
		minus := lossOf()
		v.Data[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(gv.Data[i]-numeric) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("decoder gv[%d] = %g, numeric %g", i, gv.Data[i], numeric)
		}
	}
}

func TestFitWithReconstructionStillLearns(t *testing.T) {
	ds := datasets.MNISTLike(120, 60, 42)
	ds = filterClasses(ds, 3)
	m := &Model{ModelName: "tiny", Layers: []Layer{
		NewConv2D("Conv2D", 1, 8, 9, 1, 0, true, 1),
		NewConvCaps2D("Primary", 8, 4, 8, 9, 2, 0, 2),
		NewClassCaps("ClassCaps", 4*2*2, 8, 3, 8, 3, 3),
	}}
	dec := NewDecoder(3, 8, 32, 32, 400, 4)
	res := Fit(m, ds, Config{
		Epochs: 10, BatchSize: 12, LR: 2e-3, Seed: 7, GradClip: 5,
		Decoder: dec,
	})
	if res.TestAccuracy < 0.7 {
		t.Fatalf("reconstruction-regularized training failed: %.2f", res.TestAccuracy)
	}
	// The decoder must actually reconstruct better than a constant
	// 0.5 image after training.
	x := tensor.NewFrom(ds.TestX.Data[:5*400], 5, 1, 20, 20)
	out := m.Forward(x)
	recon := dec.Reconstruct(out, ds.TestY[:5])
	mse := 0.0
	base := 0.0
	for i := range recon.Data {
		d1 := recon.Data[i] - x.Data[i]
		d2 := 0.5 - x.Data[i]
		mse += d1 * d1
		base += d2 * d2
	}
	if mse >= base {
		t.Fatalf("decoder reconstruction (MSE %g) no better than constant (%g)", mse, base)
	}
}

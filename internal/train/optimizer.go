package train

import (
	"math"

	"redcane/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*Param]*tensor.Tensor{}}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			for i := range p.W.Data {
				p.W.Data[i] -= o.LR * p.G.Data[i]
			}
			continue
		}
		v := o.vel[p]
		if v == nil {
			v = tensor.New(p.W.Shape...)
			o.vel[p] = v
		}
		for i := range p.W.Data {
			v.Data[i] = o.Momentum*v.Data[i] - o.LR*p.G.Data[i]
			p.W.Data[i] += v.Data[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with standard defaults for the betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param]*tensor.Tensor{}, v: map[*Param]*tensor.Tensor{},
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = tensor.New(p.W.Shape...)
			v = tensor.New(p.W.Shape...)
			o.m[p], o.v[p] = m, v
		}
		for i := range p.W.Data {
			g := p.G.Data[i]
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.W.Data[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
	}
}

package train

import (
	"redcane/internal/tensor"
)

// routingCache holds what the straight-through backward pass needs: the
// final-iteration coupling coefficients (treated as constants), the
// pre-squash weighted sum and the votes shape.
type routingCache struct {
	votes *tensor.Tensor // [n, inCaps, outCaps, outDim, pos]
	k     *tensor.Tensor // [n, inCaps, outCaps, pos], final iteration
	s     *tensor.Tensor // [n, outCaps, outDim, pos], pre-squash
}

// routeForward runs dynamic routing and returns the routed output
// [n, outCaps, outDim, pos] plus the cache for backward.
func routeForward(votes *tensor.Tensor, iterations int) (*tensor.Tensor, routingCache) {
	if iterations < 1 {
		iterations = 1
	}
	n, inCaps, outCaps := votes.Shape[0], votes.Shape[1], votes.Shape[2]
	outDim, pos := votes.Shape[3], votes.Shape[4]
	logits := tensor.New(n, inCaps, outCaps, pos)
	var k, s, v *tensor.Tensor
	for it := 0; it < iterations; it++ {
		k = tensor.Softmax(logits, 2)
		s = tensor.New(n, outCaps, outDim, pos)
		for b := 0; b < n; b++ {
			for i := 0; i < inCaps; i++ {
				for j := 0; j < outCaps; j++ {
					kRow := k.Data[((b*inCaps+i)*outCaps+j)*pos:]
					for d := 0; d < outDim; d++ {
						vRow := votes.Data[(((b*inCaps+i)*outCaps+j)*outDim+d)*pos:]
						sRow := s.Data[((b*outCaps+j)*outDim+d)*pos:]
						for p := 0; p < pos; p++ {
							sRow[p] += kRow[p] * vRow[p]
						}
					}
				}
			}
		}
		v = tensor.Squash(s, 2)
		if it == iterations-1 {
			break
		}
		for b := 0; b < n; b++ {
			for i := 0; i < inCaps; i++ {
				for j := 0; j < outCaps; j++ {
					lRow := logits.Data[((b*inCaps+i)*outCaps+j)*pos:]
					for d := 0; d < outDim; d++ {
						uRow := votes.Data[(((b*inCaps+i)*outCaps+j)*outDim+d)*pos:]
						vRow := v.Data[((b*outCaps+j)*outDim+d)*pos:]
						for p := 0; p < pos; p++ {
							lRow[p] += uRow[p] * vRow[p]
						}
					}
				}
			}
		}
	}
	return v, routingCache{votes: votes, k: k, s: s}
}

// routeBackward propagates gv through squash and the coefficient-weighted
// sum, treating the coupling coefficients as constants (straight-through);
// it returns the gradient with respect to the votes.
func routeBackward(c routingCache, gv *tensor.Tensor) *tensor.Tensor {
	n, inCaps, outCaps := c.votes.Shape[0], c.votes.Shape[1], c.votes.Shape[2]
	outDim, pos := c.votes.Shape[3], c.votes.Shape[4]
	gs := tensor.SquashBackward(c.s, gv, 2)
	gvotes := tensor.New(c.votes.Shape...)
	for b := 0; b < n; b++ {
		for i := 0; i < inCaps; i++ {
			for j := 0; j < outCaps; j++ {
				kRow := c.k.Data[((b*inCaps+i)*outCaps+j)*pos:]
				for d := 0; d < outDim; d++ {
					gRow := gs.Data[((b*outCaps+j)*outDim+d)*pos:]
					dst := gvotes.Data[(((b*inCaps+i)*outCaps+j)*outDim+d)*pos:]
					for p := 0; p < pos; p++ {
						dst[p] = kRow[p] * gRow[p]
					}
				}
			}
		}
	}
	return gvotes
}

// ConvCaps3D is the trainable 3D convolutional capsule layer with dynamic
// routing (straight-through coefficients in backward).
type ConvCaps3D struct {
	LayerName         string
	InCaps, InDim     int
	OutCaps, OutDim   int
	W                 *Param // [inCaps, outCaps*outDim, inDim, k, k]
	Stride, Pad       int
	RoutingIterations int

	x       *tensor.Tensor
	subs    []*tensor.Tensor // per-input-capsule inputs
	cache   routingCache
	oh      int
	ow      int
	scratch *tensor.Scratch // recycles per-capsule conv temporaries
}

// arena lazily builds the layer's scratch arena (see Conv2D.arena).
func (l *ConvCaps3D) arena() *tensor.Scratch {
	if l.scratch == nil {
		l.scratch = tensor.NewScratch()
	}
	return l.scratch
}

// NewConvCaps3D builds a trainable ConvCaps3D.
func NewConvCaps3D(name string, inCaps, inDim, outCaps, outDim, k, stride, pad, iters int, seed uint64) *ConvCaps3D {
	w := tensor.New(inCaps, outCaps*outDim, inDim, k, k).
		FillGlorot(tensor.NewRNG(seed), inDim*k*k, outCaps*outDim*k*k)
	return &ConvCaps3D{
		LayerName: name,
		InCaps:    inCaps, InDim: inDim, OutCaps: outCaps, OutDim: outDim,
		W:      newParam(name+"/W", w),
		Stride: stride, Pad: pad, RoutingIterations: iters,
	}
}

// Name implements Layer.
func (l *ConvCaps3D) Name() string { return l.LayerName }

// Forward implements Layer.
func (l *ConvCaps3D) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	k := l.W.W.Shape[4]
	spec := tensor.ConvSpec{KH: k, KW: k, Stride: l.Stride, Pad: l.Pad}
	oh, ow := spec.OutSize(h, w)
	l.oh, l.ow = oh, ow
	xi := x.Reshape(n, l.InCaps, l.InDim, h, w)
	votes := tensor.New(n, l.InCaps, l.OutCaps, l.OutDim, oh*ow)
	l.subs = make([]*tensor.Tensor, l.InCaps)
	wsz := l.OutCaps * l.OutDim * l.InDim * k * k
	for i := 0; i < l.InCaps; i++ {
		sub := tensor.New(n, l.InDim, h, w)
		for b := 0; b < n; b++ {
			src := xi.Data[((b*l.InCaps+i)*l.InDim)*h*w : ((b*l.InCaps+i)*l.InDim+l.InDim)*h*w]
			copy(sub.Data[b*l.InDim*h*w:], src)
		}
		l.subs[i] = sub
		wi := tensor.NewFrom(l.W.W.Data[i*wsz:(i+1)*wsz], l.OutCaps*l.OutDim, l.InDim, k, k)
		out := tensor.Conv2DScratch(sub, wi, nil, l.Stride, l.Pad, l.arena())
		for b := 0; b < n; b++ {
			copy(votes.Data[((b*l.InCaps+i)*l.OutCaps*l.OutDim)*oh*ow:],
				out.Data[b*l.OutCaps*l.OutDim*oh*ow:(b+1)*l.OutCaps*l.OutDim*oh*ow])
		}
		l.scratch.Release(out) // copied out above; recycle for the next capsule
	}
	v, cache := routeForward(votes, l.RoutingIterations)
	l.cache = cache
	return v.Reshape(n, l.OutCaps*l.OutDim, oh, ow)
}

// Backward implements Layer.
func (l *ConvCaps3D) Backward(gy *tensor.Tensor) *tensor.Tensor {
	n, h, w := l.x.Shape[0], l.x.Shape[2], l.x.Shape[3]
	k := l.W.W.Shape[4]
	oh, ow := l.oh, l.ow
	gv := gy.Reshape(n, l.OutCaps, l.OutDim, oh*ow)
	gvotes := routeBackward(l.cache, gv)

	gx := tensor.New(l.x.Shape...)
	gxi := gx.Reshape(n, l.InCaps, l.InDim, h, w)
	wsz := l.OutCaps * l.OutDim * l.InDim * k * k
	for i := 0; i < l.InCaps; i++ {
		// Gather this capsule's vote gradients as [n, outCh, oh, ow];
		// the copies below overwrite every element of the recycled buffer.
		gout := l.arena().Take(n, l.OutCaps*l.OutDim, oh, ow)
		for b := 0; b < n; b++ {
			copy(gout.Data[b*l.OutCaps*l.OutDim*oh*ow:],
				gvotes.Data[((b*l.InCaps+i)*l.OutCaps*l.OutDim)*oh*ow:((b*l.InCaps+i)*l.OutCaps*l.OutDim+l.OutCaps*l.OutDim)*oh*ow])
		}
		wi := tensor.NewFrom(l.W.W.Data[i*wsz:(i+1)*wsz], l.OutCaps*l.OutDim, l.InDim, k, k)
		gsub, gw, _ := tensor.Conv2DBackwardScratch(l.subs[i], wi, gout, l.Stride, l.Pad, l.arena())
		// Accumulate weight gradient slice.
		giw := l.W.G.Data[i*wsz : (i+1)*wsz]
		for j, v := range gw.Data {
			giw[j] += v
		}
		// Scatter input gradient back.
		for b := 0; b < n; b++ {
			dst := gxi.Data[((b*l.InCaps+i)*l.InDim)*h*w : ((b*l.InCaps+i)*l.InDim+l.InDim)*h*w]
			src := gsub.Data[b*l.InDim*h*w : (b+1)*l.InDim*h*w]
			copy(dst, src)
		}
		l.scratch.Release(gsub, gw, gout) // all copied/accumulated above
	}
	return gx
}

// Params implements Layer.
func (l *ConvCaps3D) Params() []*Param { return []*Param{l.W} }

// ClassCaps is the trainable fully-connected capsule layer with dynamic
// routing.
type ClassCaps struct {
	LayerName         string
	InCaps, InDim     int
	OutCaps, OutDim   int
	W                 *Param // [inCaps, outCaps, outDim, inDim]
	RoutingIterations int

	xShape []int
	u      *tensor.Tensor
	cache  routingCache
}

// NewClassCaps builds a trainable ClassCaps.
func NewClassCaps(name string, inCaps, inDim, outCaps, outDim, iters int, seed uint64) *ClassCaps {
	w := tensor.New(inCaps, outCaps, outDim, inDim).FillGlorot(tensor.NewRNG(seed), inDim, outDim)
	return &ClassCaps{
		LayerName: name,
		InCaps:    inCaps, InDim: inDim, OutCaps: outCaps, OutDim: outDim,
		W:                 newParam(name+"/W", w),
		RoutingIterations: iters,
	}
}

// Name implements Layer.
func (l *ClassCaps) Name() string { return l.LayerName }

// Forward implements Layer.
func (l *ClassCaps) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.xShape = append([]int(nil), x.Shape...)
	n := x.Shape[0]
	l.u = FlattenToCaps(x, l.InCaps, l.InDim)
	votes := tensor.New(n, l.InCaps, l.OutCaps, l.OutDim, 1)
	for b := 0; b < n; b++ {
		for i := 0; i < l.InCaps; i++ {
			ui := l.u.Data[(b*l.InCaps+i)*l.InDim : (b*l.InCaps+i+1)*l.InDim]
			for j := 0; j < l.OutCaps; j++ {
				wij := l.W.W.Data[((i*l.OutCaps+j)*l.OutDim)*l.InDim:]
				base := ((b*l.InCaps+i)*l.OutCaps + j) * l.OutDim
				for d := 0; d < l.OutDim; d++ {
					s := 0.0
					row := wij[d*l.InDim : (d+1)*l.InDim]
					for e, uv := range ui {
						s += row[e] * uv
					}
					votes.Data[base+d] = s
				}
			}
		}
	}
	v, cache := routeForward(votes, l.RoutingIterations)
	l.cache = cache
	return v.Reshape(n, l.OutCaps, l.OutDim)
}

// Backward implements Layer.
func (l *ClassCaps) Backward(gy *tensor.Tensor) *tensor.Tensor {
	n := l.xShape[0]
	gv := gy.Reshape(n, l.OutCaps, l.OutDim, 1)
	gvotes := routeBackward(l.cache, gv)

	gu := tensor.New(n, l.InCaps, l.InDim)
	for b := 0; b < n; b++ {
		for i := 0; i < l.InCaps; i++ {
			ui := l.u.Data[(b*l.InCaps+i)*l.InDim : (b*l.InCaps+i+1)*l.InDim]
			gui := gu.Data[(b*l.InCaps+i)*l.InDim : (b*l.InCaps+i+1)*l.InDim]
			for j := 0; j < l.OutCaps; j++ {
				base := ((b*l.InCaps+i)*l.OutCaps + j) * l.OutDim
				for d := 0; d < l.OutDim; d++ {
					g := gvotes.Data[base+d]
					if g == 0 {
						continue
					}
					wRow := l.W.W.Data[((i*l.OutCaps+j)*l.OutDim+d)*l.InDim:]
					gwRow := l.W.G.Data[((i*l.OutCaps+j)*l.OutDim+d)*l.InDim:]
					for e := 0; e < l.InDim; e++ {
						gwRow[e] += g * ui[e]
						gui[e] += g * wRow[e]
					}
				}
			}
		}
	}
	return UnflattenFromCaps(gu, l.xShape, l.InDim)
}

// Params implements Layer.
func (l *ClassCaps) Params() []*Param { return []*Param{l.W} }

// FlattenToCaps reinterprets an NCHW tensor as [n, inCaps, inDim] with the
// same layout convention as the inference network (position-major per
// capsule type). Rank-3 inputs pass through.
func FlattenToCaps(x *tensor.Tensor, inCaps, inDim int) *tensor.Tensor {
	if x.Rank() == 3 {
		return x
	}
	n := x.Shape[0]
	ctypes := x.Shape[1] / inDim
	h, w := x.Shape[2], x.Shape[3]
	out := tensor.New(n, inCaps, inDim)
	idx := 0
	for b := 0; b < n; b++ {
		for c := 0; c < ctypes; c++ {
			for p := 0; p < h*w; p++ {
				for d := 0; d < inDim; d++ {
					out.Data[idx] = x.Data[((b*ctypes*inDim)+(c*inDim+d))*h*w+p]
					idx++
				}
			}
		}
	}
	return out
}

// UnflattenFromCaps is the inverse scatter of FlattenToCaps for gradients.
func UnflattenFromCaps(g *tensor.Tensor, xShape []int, inDim int) *tensor.Tensor {
	if len(xShape) == 3 {
		return g
	}
	n, ch, h, w := xShape[0], xShape[1], xShape[2], xShape[3]
	ctypes := ch / inDim
	out := tensor.New(n, ch, h, w)
	idx := 0
	for b := 0; b < n; b++ {
		for c := 0; c < ctypes; c++ {
			for p := 0; p < h*w; p++ {
				for d := 0; d < inDim; d++ {
					out.Data[((b*ctypes*inDim)+(c*inDim+d))*h*w+p] = g.Data[idx]
					idx++
				}
			}
		}
	}
	return out
}

package train

import (
	"math"
	"testing"

	"redcane/internal/tensor"
)

// deepStack builds a deliberately deep caps stack that collapses without
// LSUV.
func deepStack() *Model {
	layers := []Layer{NewConv2D("Conv2D", 1, 8, 3, 1, 1, true, 1)}
	in := 8
	for i := 1; i <= 6; i++ {
		layers = append(layers, NewConvCaps2D(layerName(i), in, 2, 4, 3, 1, 1, uint64(i+1)))
		in = 8
	}
	return &Model{ModelName: "deep", Layers: layers}
}

func layerName(i int) string {
	return "Caps2D" + string(rune('0'+i))
}

func TestLSUVRestoresSignalPropagation(t *testing.T) {
	m := deepStack()
	x := tensor.New(8, 1, 10, 10).FillUniform(tensor.NewRNG(9), 0, 1)

	before := m.Forward(x).Std()
	LSUVInit(m, x, 0.5)
	after := m.Forward(x).Std()
	if after <= before {
		t.Fatalf("LSUV did not amplify collapsed activations: %g -> %g", before, after)
	}
	// The final layer's pre-activation std must sit near the target.
	last := m.Layers[len(m.Layers)-1].(*ConvCaps2D)
	if math.Abs(last.pre.Std()-0.5) > 0.05 {
		t.Fatalf("final pre-activation std = %g, want ≈0.5", last.pre.Std())
	}
}

func TestLSUVHandlesCells(t *testing.T) {
	cell := &CapsCell{
		CellName: "Cell1",
		L1:       NewConvCaps2D("Caps2D1", 8, 2, 4, 3, 2, 1, 11),
		L2:       NewConvCaps2D("Caps2D2", 8, 2, 4, 3, 1, 1, 12),
		L3:       NewConvCaps2D("Caps2D3", 8, 2, 4, 3, 1, 1, 13),
		Skip:     NewConvCaps2D("Caps2D4", 8, 2, 4, 3, 1, 1, 14),
	}
	m := &Model{ModelName: "cellnet", Layers: []Layer{
		NewConv2D("Conv2D", 1, 8, 3, 1, 1, true, 10),
		cell,
	}}
	x := tensor.New(4, 1, 8, 8).FillUniform(tensor.NewRNG(15), 0, 1)
	LSUVInit(m, x, 0.5)
	// Verify every inner layer was calibrated to a sane band by
	// re-running the stack and probing pre-activation stds.
	m.Forward(x)
	for _, l := range []Layer{cell.L1, cell.L2, cell.L3, cell.Skip} {
		std := preActStd(l)
		if std < 0.2 || std > 1.0 {
			t.Fatalf("%s pre-activation std = %g after LSUV", l.Name(), std)
		}
	}
}

func TestCapsCellForwardBackwardShapes(t *testing.T) {
	cell := &CapsCell{
		CellName: "Cell1",
		L1:       NewConvCaps2D("Caps2D1", 4, 2, 4, 3, 2, 1, 21),
		L2:       NewConvCaps2D("Caps2D2", 8, 2, 4, 3, 1, 1, 22),
		L3:       NewConvCaps2D("Caps2D3", 8, 2, 4, 3, 1, 1, 23),
		Skip:     NewConvCaps2D("Caps2D4", 8, 2, 4, 3, 1, 1, 24),
	}
	if cell.Name() != "Cell1" {
		t.Fatal("cell name")
	}
	x := tensor.New(2, 4, 8, 8).FillNormal(tensor.NewRNG(25), 0, 0.5)
	y := cell.Forward(x)
	if y.Shape[1] != 8 || y.Shape[2] != 4 {
		t.Fatalf("cell output shape = %v", y.Shape)
	}
	gy := tensor.New(y.Shape...).FillNormal(tensor.NewRNG(26), 0, 1)
	gx := cell.Backward(gy)
	if !gx.SameShape(x) {
		t.Fatalf("cell gx shape = %v", gx.Shape)
	}
	if len(cell.Params()) != 8 {
		t.Fatalf("cell params = %d", len(cell.Params()))
	}
}

func TestCapsCellGradientNumeric(t *testing.T) {
	cell := &CapsCell{
		CellName: "C",
		L1:       NewConvCaps2D("a", 2, 1, 4, 3, 1, 1, 31),
		L2:       NewConvCaps2D("b", 4, 1, 4, 3, 1, 1, 32),
		L3:       NewConvCaps2D("c", 4, 1, 4, 3, 1, 1, 33),
		Skip:     NewConvCaps2D("d", 4, 1, 4, 3, 1, 1, 34),
	}
	x := tensor.New(1, 2, 4, 4).FillNormal(tensor.NewRNG(35), 0, 1)
	out := cell.Forward(x)
	dir := tensor.New(out.Shape...).FillNormal(tensor.NewRNG(36), 0, 1)
	for _, p := range cell.Params() {
		p.ZeroGrad()
	}
	gx := cell.Backward(dir)
	fw := func() *tensor.Tensor { return cell.Forward(x) }
	numericCheck(t, "cell/x", fw, x, gx, dir, 1e-4)
	l1 := cell.L1.(*ConvCaps2D)
	numericCheck(t, "cell/L1.W", fw, l1.W.W, l1.W.G, dir, 1e-4)
}

func TestCellBranchMismatchPanics(t *testing.T) {
	cell := &CapsCell{
		CellName: "bad",
		L1:       NewConvCaps2D("a", 2, 2, 4, 3, 2, 1, 41),
		L2:       NewConvCaps2D("b", 8, 2, 4, 3, 1, 1, 42),
		L3:       NewConvCaps2D("c", 8, 2, 4, 3, 1, 1, 43),
		Skip:     NewConvCaps2D("d", 8, 2, 4, 3, 2, 1, 44), // extra stride
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cell.Forward(tensor.New(1, 2, 8, 8).FillNormal(tensor.NewRNG(45), 0, 1))
}

func TestParamMapAndNames(t *testing.T) {
	m := &Model{Layers: []Layer{
		NewConv2D("Conv2D", 1, 2, 3, 1, 1, false, 51),
		NewConvCaps3D("Caps3D", 2, 1, 2, 2, 3, 1, 1, 2, 52),
		NewClassCaps("ClassCaps", 4, 2, 2, 4, 2, 53),
	}}
	pm := m.ParamMap()
	for _, want := range []string{"Conv2D/W", "Conv2D/B", "Caps3D/W", "ClassCaps/W"} {
		if _, ok := pm[want]; !ok {
			t.Fatalf("ParamMap missing %q: %v", want, pm)
		}
	}
	if m.Layers[1].Name() != "Caps3D" || m.Layers[2].Name() != "ClassCaps" {
		t.Fatal("layer names wrong")
	}
}

// Package fixed implements the b-bit fixed-point quantization used to map
// floating-point CapsNet tensors onto the integer datapath of an
// approximate hardware accelerator.
//
// It implements Eq. 1 of the ReD-CaNe paper:
//
//	Q(x) = (x - min(x)) / (max(x) - min(x)) · (2^b - 1)
//
// i.e. affine (asymmetric) quantization of a float range onto [0, 2^b-1],
// together with the inverse mapping and a calibrated per-tensor Quantizer.
// The paper (and the CapsAcc accelerator it targets) uses b = 8.
package fixed

import (
	"fmt"
	"math"

	"redcane/internal/tensor"
)

// DefaultBits is the wordlength the paper uses throughout: 8-bit operands,
// shown to be accurate enough for the CapsNet computational path.
const DefaultBits = 8

// Quantizer maps floats in [Min, Max] onto b-bit unsigned codes.
// The zero value is unusable; build one with NewQuantizer or Calibrate.
type Quantizer struct {
	Min, Max float64
	Bits     uint
}

// NewQuantizer returns a quantizer for the given float range and wordlength.
// It panics if the range is empty or bits is not in [1, 16].
func NewQuantizer(min, max float64, bits uint) Quantizer {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("fixed: unsupported wordlength %d", bits))
	}
	if !(max > min) {
		panic(fmt.Sprintf("fixed: empty quantization range [%g, %g]", min, max))
	}
	return Quantizer{Min: min, Max: max, Bits: bits}
}

// Calibrate builds a quantizer covering the observed range of t.
// Degenerate (constant) tensors get an epsilon-wide range so the mapping
// stays well-defined.
func Calibrate(t *tensor.Tensor, bits uint) Quantizer {
	lo, hi := t.MinMax()
	if hi <= lo {
		hi = lo + 1e-9
	}
	return NewQuantizer(lo, hi, bits)
}

// Levels returns the number of representable codes, 2^Bits.
func (q Quantizer) Levels() int { return 1 << q.Bits }

// Step returns the float width of one quantization level.
func (q Quantizer) Step() float64 {
	return (q.Max - q.Min) / float64(q.Levels()-1)
}

// Quantize maps x to its nearest b-bit code, clamping to the range.
func (q Quantizer) Quantize(x float64) uint16 {
	maxCode := float64(q.Levels() - 1)
	v := (x - q.Min) / (q.Max - q.Min) * maxCode
	v = math.Round(v)
	if v < 0 {
		v = 0
	}
	if v > maxCode {
		v = maxCode
	}
	return uint16(v)
}

// Dequantize maps a code back to the center of its float level.
func (q Quantizer) Dequantize(code uint16) float64 {
	return q.Min + float64(code)*q.Step()
}

// RoundTripError returns |x - Dequantize(Quantize(x))| for an in-range x.
// It is bounded by Step()/2 for x within [Min, Max].
func (q Quantizer) RoundTripError(x float64) float64 {
	return math.Abs(x - q.Dequantize(q.Quantize(x)))
}

// QTensor is a quantized tensor: b-bit codes plus the quantizer that
// produced them. It is the operand format of the approximate execution
// engine (internal/axe).
type QTensor struct {
	Shape []int
	Codes []uint16
	Q     Quantizer
}

// QuantizeTensor quantizes every element of t under q.
func QuantizeTensor(t *tensor.Tensor, q Quantizer) *QTensor {
	codes := make([]uint16, t.Len())
	for i, v := range t.Data {
		codes[i] = q.Quantize(v)
	}
	return &QTensor{Shape: append([]int(nil), t.Shape...), Codes: codes, Q: q}
}

// Dequantize reconstructs the float tensor from the codes.
func (qt *QTensor) Dequantize() *tensor.Tensor {
	out := tensor.New(qt.Shape...)
	for i, c := range qt.Codes {
		out.Data[i] = qt.Q.Dequantize(c)
	}
	return out
}

// QuantizationNoise returns the elementwise error introduced by one
// quantize/dequantize round trip of t under a freshly calibrated b-bit
// quantizer. This is the "software approximation" error source of
// Sec. II-C, useful as a baseline against approximate-component noise.
func QuantizationNoise(t *tensor.Tensor, bits uint) *tensor.Tensor {
	q := Calibrate(t, bits)
	rt := QuantizeTensor(t, q).Dequantize()
	return tensor.Sub(rt, t)
}

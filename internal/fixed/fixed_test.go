package fixed

import (
	"math"
	"testing"
	"testing/quick"

	"redcane/internal/tensor"
)

func TestQuantizeEndpoints(t *testing.T) {
	q := NewQuantizer(-1, 1, 8)
	if q.Quantize(-1) != 0 {
		t.Fatalf("Quantize(min) = %d", q.Quantize(-1))
	}
	if q.Quantize(1) != 255 {
		t.Fatalf("Quantize(max) = %d", q.Quantize(1))
	}
	if q.Levels() != 256 {
		t.Fatalf("Levels = %d", q.Levels())
	}
}

func TestQuantizeClamps(t *testing.T) {
	q := NewQuantizer(0, 10, 8)
	if q.Quantize(-5) != 0 || q.Quantize(100) != 255 {
		t.Fatal("out-of-range values must clamp")
	}
}

func TestDequantizeInverse(t *testing.T) {
	q := NewQuantizer(-2, 2, 8)
	for code := 0; code < q.Levels(); code += 17 {
		c := uint16(code)
		if got := q.Quantize(q.Dequantize(c)); got != c {
			t.Fatalf("Quantize(Dequantize(%d)) = %d", c, got)
		}
	}
}

func TestRoundTripErrorBound(t *testing.T) {
	q := NewQuantizer(-3, 5, 8)
	half := q.Step()/2 + 1e-12
	f := func(raw float64) bool {
		x := math.Mod(raw, 8)
		if math.IsNaN(x) {
			x = 0
		}
		x = -3 + math.Abs(x) // in [-3, 5]
		return q.RoundTripError(x) <= half
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMoreBitsLessError(t *testing.T) {
	x := tensor.New(1000).FillUniform(tensor.NewRNG(1), -1, 1)
	var prev float64 = math.Inf(1)
	for _, bits := range []uint{4, 6, 8, 10} {
		noise := QuantizationNoise(x, bits)
		var maxErr float64
		for _, v := range noise.Data {
			if a := math.Abs(v); a > maxErr {
				maxErr = a
			}
		}
		if maxErr >= prev {
			t.Fatalf("quantization error did not shrink at %d bits: %g >= %g", bits, maxErr, prev)
		}
		prev = maxErr
	}
}

func TestCalibrateDegenerate(t *testing.T) {
	x := tensor.New(4).Fill(3)
	q := Calibrate(x, 8)
	if !(q.Max > q.Min) {
		t.Fatal("degenerate calibration must widen range")
	}
	if q.Quantize(3) != 0 {
		t.Fatalf("constant input should map to code 0, got %d", q.Quantize(3))
	}
}

func TestQuantizeTensorRoundTrip(t *testing.T) {
	x := tensor.New(2, 3).FillUniform(tensor.NewRNG(2), -4, 4)
	q := Calibrate(x, 8)
	qt := QuantizeTensor(x, q)
	if len(qt.Codes) != 6 || qt.Shape[0] != 2 {
		t.Fatalf("QTensor shape/codes wrong: %v %d", qt.Shape, len(qt.Codes))
	}
	back := qt.Dequantize()
	for i := range x.Data {
		if math.Abs(back.Data[i]-x.Data[i]) > q.Step()/2+1e-12 {
			t.Fatalf("round-trip error too large at %d: %g vs %g", i, back.Data[i], x.Data[i])
		}
	}
}

func TestNewQuantizerValidation(t *testing.T) {
	for _, tc := range []struct {
		min, max float64
		bits     uint
	}{
		{0, 0, 8},  // empty range
		{1, -1, 8}, // inverted range
		{0, 1, 0},  // zero bits
		{0, 1, 17}, // too wide
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", tc)
				}
			}()
			NewQuantizer(tc.min, tc.max, tc.bits)
		}()
	}
}

func TestQuantizationNoiseZeroMeanish(t *testing.T) {
	x := tensor.New(100000).FillUniform(tensor.NewRNG(3), 0, 1)
	noise := QuantizationNoise(x, 8)
	if m := math.Abs(noise.Mean()); m > 1e-4 {
		t.Fatalf("quantization noise mean = %g, want ~0", m)
	}
	// Uniform quantization noise std ~ step/sqrt(12).
	step := 1.0 / 255.0
	want := step / math.Sqrt(12)
	if got := noise.Std(); math.Abs(got-want) > 0.2*want {
		t.Fatalf("noise std = %g, want ~%g", got, want)
	}
}

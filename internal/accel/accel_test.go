package accel

import (
	"math"
	"strings"
	"testing"

	"redcane/internal/models"
)

func TestAnalyzeMACsMatchOpWalk(t *testing.T) {
	net, err := models.BuildInference(models.FullDeepCaps(), 1)
	if err != nil {
		t.Fatal(err)
	}
	reports, s := Analyze(net, DefaultConfig(), 1)
	if len(reports) != 18 { // Conv2D + 15 Caps2D + Caps3D + ClassCaps
		t.Fatalf("layer reports = %d, want 18", len(reports))
	}
	// The mapped MACs must equal the mul count of the op walk (every
	// multiplication on the inference path is a MAC or a vector op; the
	// array only executes the MAC part).
	ops := net.Ops(1)
	if s.MACs > ops.Mul {
		t.Fatalf("mapped MACs %g exceed total muls %g", s.MACs, ops.Mul)
	}
	if s.MACs < 0.9*ops.Mul {
		t.Fatalf("mapped MACs %g < 90%% of muls %g — mapping lost work", s.MACs, ops.Mul)
	}
}

func TestUtilizationBounds(t *testing.T) {
	net, err := models.BuildInference(models.FullDeepCaps(), 1)
	if err != nil {
		t.Fatal(err)
	}
	reports, s := Analyze(net, DefaultConfig(), 1)
	for _, r := range reports {
		if r.Utilization < 0 || r.Utilization > 1+1e-9 {
			t.Fatalf("%s: utilization %g out of [0,1]", r.Layer, r.Utilization)
		}
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		t.Fatalf("summary utilization %g", s.Utilization)
	}
}

func TestApproxMultiplierScalesOnlyCompute(t *testing.T) {
	net, err := models.BuildInference(models.FullDeepCaps(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	_, acc := Analyze(net, cfg, 1)
	_, ngr := Analyze(net, cfg, 1-0.294)
	if ngr.ComputePJ >= acc.ComputePJ {
		t.Fatal("approximate multiplier did not reduce compute energy")
	}
	if ngr.SRAMPJ != acc.SRAMPJ || ngr.DRAMPJ != acc.DRAMPJ {
		t.Fatal("memory energy must be unaffected by the multiplier choice")
	}
	// System-level saving must be smaller than the compute-only saving.
	sysSaving := 1 - ngr.TotalPJ()/acc.TotalPJ()
	computeSaving := 1 - ngr.ComputePJ/acc.ComputePJ
	if sysSaving >= computeSaving {
		t.Fatalf("system saving %g should be < compute saving %g", sysSaving, computeSaving)
	}
	if sysSaving <= 0 {
		t.Fatalf("system saving %g should be positive", sysSaving)
	}
}

func TestBiggerArrayFewerCycles(t *testing.T) {
	net, err := models.BuildInference(models.FullDeepCaps(), 1)
	if err != nil {
		t.Fatal(err)
	}
	small := DefaultConfig()
	small.Rows, small.Cols = 8, 8
	big := DefaultConfig()
	big.Rows, big.Cols = 32, 32
	_, s8 := Analyze(net, small, 1)
	_, s32 := Analyze(net, big, 1)
	if s32.Cycles >= s8.Cycles {
		t.Fatalf("32×32 array (%g cycles) not faster than 8×8 (%g)", s32.Cycles, s8.Cycles)
	}
}

func TestSmallSRAMMoreDRAMTraffic(t *testing.T) {
	net, err := models.BuildInference(models.FullDeepCaps(), 1)
	if err != nil {
		t.Fatal(err)
	}
	bigBuf := DefaultConfig()
	bigBuf.SRAMBytes = 16 << 20
	tinyBuf := DefaultConfig()
	tinyBuf.SRAMBytes = 4 << 10
	_, big := Analyze(net, bigBuf, 1)
	_, tiny := Analyze(net, tinyBuf, 1)
	if tiny.DRAMPJ <= big.DRAMPJ {
		t.Fatalf("tiny SRAM (%g pJ DRAM) should spill more than big (%g)", tiny.DRAMPJ, big.DRAMPJ)
	}
}

func TestFormatReports(t *testing.T) {
	net, err := models.BuildInference(models.DeepCaps([]int{3, 16, 16}, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	reports, s := Analyze(net, DefaultConfig(), 1)
	out := FormatReports(reports, s)
	for _, want := range []string{"Conv2D", "Caps3D", "ClassCaps", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	cases := [][3]float64{{10, 3, 4}, {9, 3, 3}, {1, 16, 1}, {0, 4, 0}, {5, 0, 0}}
	for _, c := range cases {
		if got := ceilDiv(c[0], c[1]); math.Abs(got-c[2]) > 0 {
			t.Fatalf("ceilDiv(%g, %g) = %g, want %g", c[0], c[1], got, c[2])
		}
	}
}

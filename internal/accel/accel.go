// Package accel is an analytical model of a CapsAcc-style CapsNet
// accelerator (Marchisio et al., DATE 2019 — the paper's reference [17]
// and the deployment target of the ReD-CaNe methodology): a weight-reuse
// systolic MAC array fed by on-chip SRAM, with off-chip DRAM behind it.
//
// The model maps every layer of a caps.Network onto the PE array and
// reports cycles, utilization, memory traffic and an energy breakdown
// (compute / SRAM / DRAM). Compute energy uses the paper's Table I unit
// energies; memory energies are documented modeling constants in the
// 45 nm ballpark (Horowitz, ISSCC 2014). The model exists to answer the
// system-level question behind Fig. 5: how much of a multiplier-power
// saving survives once memory energy is accounted for.
package accel

import (
	"fmt"
	"strings"

	"redcane/internal/caps"
	"redcane/internal/energy"
)

// Config describes the accelerator instance.
type Config struct {
	// Rows×Cols is the PE array (CapsAcc uses 16×16).
	Rows, Cols int
	// SRAMBytes is the unified on-chip buffer capacity.
	SRAMBytes int
	// Unit energies, picojoules.
	Units energy.UnitEnergy
	// SRAMReadPJ/SRAMWritePJ are per byte of on-chip traffic.
	SRAMReadPJ, SRAMWritePJ float64
	// DRAMPJ is per byte of off-chip traffic (read or write).
	DRAMPJ float64
	// WordBytes is the operand width in bytes (1 for the 8-bit datapath
	// the paper assumes).
	WordBytes int
}

// DefaultConfig returns a CapsAcc-like 16×16 array with a 256 KiB buffer
// and 45 nm-ballpark memory energies.
func DefaultConfig() Config {
	return Config{
		Rows: 16, Cols: 16,
		SRAMBytes:  256 << 10,
		Units:      energy.TableI,
		SRAMReadPJ: 1.0, SRAMWritePJ: 1.2,
		DRAMPJ:    62.5,
		WordBytes: 1,
	}
}

// LayerReport is the per-layer outcome of the mapping.
type LayerReport struct {
	Layer string
	// MACs actually executed.
	MACs float64
	// Cycles on the PE array (vector ops run on a Cols-wide unit).
	Cycles float64
	// Utilization = MACs / (Cycles·Rows·Cols), in [0, 1].
	Utilization float64
	// SRAMBytes / DRAMBytes of traffic attributed to the layer.
	SRAMBytes, DRAMBytes float64
	// Energy breakdown in picojoules.
	ComputePJ, SRAMPJ, DRAMPJ float64
}

// TotalPJ returns the layer's total energy.
func (l LayerReport) TotalPJ() float64 { return l.ComputePJ + l.SRAMPJ + l.DRAMPJ }

// Summary aggregates the whole network.
type Summary struct {
	Cycles                    float64
	MACs                      float64
	Utilization               float64
	ComputePJ, SRAMPJ, DRAMPJ float64
}

// TotalPJ returns the network's total energy.
func (s Summary) TotalPJ() float64 { return s.ComputePJ + s.SRAMPJ + s.DRAMPJ }

// Analyze maps the network onto the accelerator for a batch-1 inference.
// The multiplier energy can be scaled (mulScale < 1 models an approximate
// multiplier; 1 is accurate) — memory and non-multiplier energies are
// unaffected, which is exactly why system-level savings are smaller than
// the computational-path savings of Fig. 5.
func Analyze(net *caps.Network, cfg Config, mulScale float64) ([]LayerReport, Summary) {
	shape := append([]int{1}, net.InputShape...)
	var reports []LayerReport
	for _, l := range net.Layers {
		reports, shape = analyzeLayer(l, shape, cfg, mulScale, reports)
	}
	var s Summary
	denom := 0.0
	for _, r := range reports {
		s.Cycles += r.Cycles
		s.MACs += r.MACs
		s.ComputePJ += r.ComputePJ
		s.SRAMPJ += r.SRAMPJ
		s.DRAMPJ += r.DRAMPJ
		denom += r.Cycles * float64(cfg.Rows*cfg.Cols)
	}
	if denom > 0 {
		s.Utilization = s.MACs / denom
	}
	return reports, s
}

// analyzeLayer dispatches per layer kind, recursing into cells.
func analyzeLayer(l caps.Layer, inShape []int, cfg Config, mulScale float64, acc []LayerReport) ([]LayerReport, []int) {
	switch v := l.(type) {
	case *caps.CapsCell:
		var aShape, bShape, outShape []int
		_, aShape = v.L1.Ops(inShape)
		acc, _ = analyzeLayer(v.L1, inShape, cfg, mulScale, acc)
		_, bShape = v.L2.Ops(aShape)
		acc, _ = analyzeLayer(v.L2, aShape, cfg, mulScale, acc)
		_, outShape = v.L3.Ops(bShape)
		acc, _ = analyzeLayer(v.L3, bShape, cfg, mulScale, acc)
		acc, _ = analyzeLayer(v.Skip, aShape, cfg, mulScale, acc)
		return acc, outShape
	case *caps.Conv2D:
		r, outShape := mapConv(v.Name(), inShape, v.W.Shape, v.Stride, v.Pad, cfg, mulScale)
		return append(acc, r), outShape
	case *caps.ConvCaps2D:
		r, outShape := mapConv(v.Name(), inShape, v.W.Shape, v.Stride, v.Pad, cfg, mulScale)
		// Squash runs on the vector unit; add its op energy and cycles.
		ops, _ := v.Ops(inShape)
		addVectorOps(&r, ops, cfg, mulScale)
		return append(acc, r), outShape
	case *caps.ConvCaps3D:
		// The vote stage is InCaps independent convolutions.
		k := v.W.Shape[4]
		sub := []int{inShape[0], v.InDim, inShape[2], inShape[3]}
		wShape := []int{v.OutCaps * v.OutDim, v.InDim, k, k}
		total := LayerReport{Layer: v.Name()}
		var outShape []int
		for i := 0; i < v.InCaps; i++ {
			r, os := mapConv(v.Name(), sub, wShape, v.Stride, v.Pad, cfg, mulScale)
			total.MACs += r.MACs
			total.Cycles += r.Cycles
			total.SRAMBytes += r.SRAMBytes
			total.DRAMBytes += r.DRAMBytes
			total.ComputePJ += r.ComputePJ
			total.SRAMPJ += r.SRAMPJ
			total.DRAMPJ += r.DRAMPJ
			outShape = os
		}
		ops, netOut := v.Ops(inShape)
		// Routing (softmax/squash/update) on the vector unit: the op
		// tally minus the vote MACs already mapped.
		routingOps := ops
		routingOps.Mul -= total.MACs
		routingOps.Add -= total.MACs
		addVectorOps(&total, routingOps, cfg, mulScale)
		if total.Cycles > 0 {
			total.Utilization = total.MACs / (total.Cycles * float64(cfg.Rows*cfg.Cols))
		}
		_ = outShape
		return append(acc, total), netOut
	case *caps.ClassCaps:
		// Votes are a [InCaps·OutCaps·OutDim × InDim] matrix working
		// against the input capsules: map as a matmul on the array.
		macs := float64(v.InCaps * v.OutCaps * v.OutDim * v.InDim)
		r := LayerReport{Layer: v.Name(), MACs: macs}
		rows := float64(v.InCaps)
		colsWork := float64(v.OutCaps * v.OutDim)
		tileR := ceilDiv(rows, float64(cfg.Rows))
		tileC := ceilDiv(colsWork, float64(cfg.Cols))
		r.Cycles = tileR * tileC * float64(v.InDim)
		weightBytes := macs / float64(v.InCaps) * float64(v.InCaps) // = full W
		inBytes := float64(v.InCaps * v.InDim * cfg.WordBytes)
		outBytes := float64(v.OutCaps * v.OutDim * cfg.WordBytes)
		r.SRAMBytes = weightBytes*float64(cfg.WordBytes) + inBytes + outBytes
		r.DRAMBytes = dramTraffic(weightBytes*float64(cfg.WordBytes), inBytes, outBytes, cfg)
		r.ComputePJ = macs * (cfg.Units.Mul*mulScale + cfg.Units.Add)
		r.SRAMPJ = r.SRAMBytes * cfg.SRAMReadPJ
		r.DRAMPJ = r.DRAMBytes * cfg.DRAMPJ
		ops, outShape := v.Ops([]int{1, v.InCaps, v.InDim})
		routingOps := ops
		routingOps.Mul -= macs
		routingOps.Add -= macs
		addVectorOps(&r, routingOps, cfg, mulScale)
		if r.Cycles > 0 {
			r.Utilization = r.MACs / (r.Cycles * float64(cfg.Rows*cfg.Cols))
		}
		return append(acc, r), outShape
	default:
		ops, outShape := l.Ops(inShape)
		r := LayerReport{Layer: l.Name()}
		addVectorOps(&r, ops, cfg, mulScale)
		return append(acc, r), outShape
	}
}

// mapConv maps one convolution onto the PE array with an output-
// stationary tiling: output channels across columns, spatial positions
// across rows, K²·InCh reduction cycles per tile.
func mapConv(name string, inShape, wShape []int, stride, pad int, cfg Config, mulScale float64) (LayerReport, []int) {
	outCh, inCh, kh, kw := wShape[0], wShape[1], wShape[2], wShape[3]
	h, w := inShape[2], inShape[3]
	spec := tensorConvOut(h, w, kh, stride, pad)
	oh, ow := spec[0], spec[1]
	positions := float64(oh * ow)
	macs := positions * float64(outCh*inCh*kh*kw)

	r := LayerReport{Layer: name, MACs: macs}
	tileC := ceilDiv(float64(outCh), float64(cfg.Cols))
	tileR := ceilDiv(positions, float64(cfg.Rows))
	r.Cycles = tileC * tileR * float64(inCh*kh*kw)
	r.Utilization = macs / (r.Cycles * float64(cfg.Rows*cfg.Cols))

	wb := float64(cfg.WordBytes)
	weightBytes := float64(outCh*inCh*kh*kw) * wb
	// im2col input reads: each output position reads its K²·InCh patch.
	inBytes := positions * float64(inCh*kh*kw) * wb
	outBytes := positions * float64(outCh) * wb
	r.SRAMBytes = weightBytes + inBytes + outBytes
	r.DRAMBytes = dramTraffic(weightBytes, float64(inCh*h*w)*wb, outBytes, cfg)

	r.ComputePJ = macs * (cfg.Units.Mul*mulScale + cfg.Units.Add)
	r.SRAMPJ = r.SRAMBytes * cfg.SRAMReadPJ
	r.DRAMPJ = r.DRAMBytes * cfg.DRAMPJ
	return r, []int{1, outCh, oh, ow}
}

// dramTraffic models off-chip traffic: each unique operand crosses DRAM
// once when the layer's working set fits in SRAM; otherwise weights are
// refetched once per spatial tile (the dominant spill pattern of an
// output-stationary dataflow).
func dramTraffic(weightBytes, inBytes, outBytes float64, cfg Config) float64 {
	workingSet := weightBytes + inBytes + outBytes
	if workingSet <= float64(cfg.SRAMBytes) {
		return weightBytes + inBytes + outBytes
	}
	spill := ceilDiv(workingSet, float64(cfg.SRAMBytes))
	return weightBytes*spill + inBytes + outBytes
}

// addVectorOps charges non-MAC operations (squash, softmax, updates) to a
// Cols-wide SIMD unit: energy from Table I, one op per lane per cycle.
func addVectorOps(r *LayerReport, ops energy.Counts, cfg Config, mulScale float64) {
	if ops.Mul < 0 {
		ops.Mul = 0
	}
	if ops.Add < 0 {
		ops.Add = 0
	}
	u := cfg.Units
	u.Mul *= mulScale
	r.ComputePJ += energy.Energy(ops, u)
	r.Cycles += ceilDiv(ops.Total(), float64(cfg.Cols))
}

func ceilDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	n := a / b
	if float64(int64(n)) != n {
		return float64(int64(n) + 1)
	}
	return n
}

// tensorConvOut avoids importing tensor for one formula.
func tensorConvOut(h, w, k, stride, pad int) [2]int {
	return [2]int{(h+2*pad-k)/stride + 1, (w+2*pad-k)/stride + 1}
}

// FormatReports renders the per-layer table plus the summary.
func FormatReports(reports []LayerReport, s Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %6s %12s %12s %12s\n",
		"layer", "MACs", "cycles", "util", "compute[µJ]", "SRAM[µJ]", "DRAM[µJ]")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-10s %10.3g %10.3g %5.1f%% %12.2f %12.2f %12.2f\n",
			r.Layer, r.MACs, r.Cycles, 100*r.Utilization,
			r.ComputePJ/1e6, r.SRAMPJ/1e6, r.DRAMPJ/1e6)
	}
	fmt.Fprintf(&b, "%-10s %10.3g %10.3g %5.1f%% %12.2f %12.2f %12.2f   total %.2f µJ\n",
		"TOTAL", s.MACs, s.Cycles, 100*s.Utilization,
		s.ComputePJ/1e6, s.SRAMPJ/1e6, s.DRAMPJ/1e6, s.TotalPJ()/1e6)
	return b.String()
}

package tensor

import (
	"math"
	"math/rand/v2"
)

// NewRNG returns a deterministic PCG-backed RNG for the given seed.
// Every stochastic routine in this repository threads one of these
// explicitly so experiments are reproducible.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// FillUniform fills t with samples from U[lo, hi) and returns t.
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// FillNormal fills t with samples from N(mean, std²) and returns t.
func (t *Tensor) FillNormal(rng *rand.Rand, mean, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// FillGlorot fills t with the Glorot/Xavier uniform initialization for a
// layer with the given fan-in and fan-out, and returns t.
func (t *Tensor) FillGlorot(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return t.FillUniform(rng, -limit, limit)
}

// FillHe fills t with the He-normal initialization for the given fan-in
// (suits ReLU layers) and returns t.
func (t *Tensor) FillHe(rng *rand.Rand, fanIn int) *Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	return t.FillNormal(rng, 0, std)
}

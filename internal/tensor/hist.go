package tensor

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Histogram is a fixed-bin histogram over a numeric range, used to render
// the distribution figures of the paper (Fig. 6 error profiles, Fig. 11
// input distributions) in text form.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int // total observations, including clamped outliers
}

// NewHistogram creates a histogram with `bins` equal-width bins over
// [lo, hi]. Observations outside the range are clamped into the edge bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("tensor: invalid histogram [%g, %g] with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	b := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.N++
}

// ObserveAll adds every element of the slice.
func (h *Histogram) ObserveAll(vs []float64) {
	for _, v := range vs {
		h.Observe(v)
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Frequency returns the fraction of observations in bin i.
func (h *Histogram) Frequency(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// Render draws an ASCII bar chart of the histogram, `width` characters at
// the tallest bin.
func (h *Histogram) Render(width int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%10.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// GaussianFit holds the maximum-likelihood Gaussian parameters of a sample
// and a goodness-of-fit score.
type GaussianFit struct {
	Mean, Std float64
	// KS is the Kolmogorov–Smirnov statistic of the sample against
	// N(Mean, Std²): the sup-distance between empirical and model CDFs.
	// Values near 0 indicate a close fit.
	KS float64
}

// FitGaussian estimates mean and std of vs and computes the KS distance
// between the empirical distribution and the fitted Gaussian. vs is
// reordered (sorted) in place.
func FitGaussian(vs []float64) GaussianFit {
	n := len(vs)
	if n == 0 {
		return GaussianFit{}
	}
	mean := 0.0
	for _, v := range vs {
		mean += v
	}
	mean /= float64(n)
	varSum := 0.0
	for _, v := range vs {
		d := v - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(n))

	sortFloats(vs)
	ks := 0.0
	if std > 0 {
		for i, v := range vs {
			z := (v - mean) / std
			cdf := 0.5 * math.Erfc(-z/math.Sqrt2)
			lo := float64(i) / float64(n)
			hi := float64(i+1) / float64(n)
			d := math.Max(math.Abs(cdf-lo), math.Abs(cdf-hi))
			if d > ks {
				ks = d
			}
		}
	} else {
		ks = 1
	}
	return GaussianFit{Mean: mean, Std: std, KS: ks}
}

func sortFloats(vs []float64) {
	slices.Sort(vs)
}

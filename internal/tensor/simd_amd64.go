//go:build amd64

package tensor

import "os"

// useAVX gates the hand-written AVX kernels in simd_amd64.s. Every AVX
// kernel is bit-identical to its scalar counterpart (same summation
// order, no FMA), so this flag trades speed only — results are the same
// on every machine, which the sweep engine's cross-run determinism
// relies on. Setting REDCANE_NOSIMD=1 (any non-empty value) forces the
// scalar paths; the kernel tests flip the variable directly to compare
// both implementations.
var useAVX = avxSupported() && os.Getenv("REDCANE_NOSIMD") == ""

// avxSupported reports whether the CPU has AVX and the OS saves the YMM
// state (CPUID.1:ECX OSXSAVE+AVX, then XCR0 bits 1 and 2 via XGETBV).
func avxSupported() bool {
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidx(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	lo, _ := xgetbv0()
	return lo&6 == 6
}

// Implemented in simd_amd64.s.

func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)
func gemm8LanesAVX(a, w *float64, wStride, k4 int, lanes *[32]float64)
func fused3RowsAVX(dst, x *float64, rows, n int, dstStride, xStride int, w0, w1, w2 float64)
func fused3Rows2AVX(dst0, dst1, x *float64, rows, n int, dstStride, xStride int, u0, u1, u2, v0, v1, v2 float64)

package tensor

import (
	"fmt"
	"math"
)

// AxisStrides computes, for a reduction/normalization along `axis` of a
// tensor with the given shape, the iteration decomposition
// (outer, axisLen, inner) such that the flat index of element
// (o, a, i) is (o*axisLen+a)*inner + i.
func AxisStrides(shape []int, axis int) (outer, axisLen, inner int) {
	if axis < 0 || axis >= len(shape) {
		panic(fmt.Sprintf("tensor: axis %d out of range for shape %v", axis, shape))
	}
	outer, inner = 1, 1
	for i := 0; i < axis; i++ {
		outer *= shape[i]
	}
	axisLen = shape[axis]
	for i := axis + 1; i < len(shape); i++ {
		inner *= shape[i]
	}
	return outer, axisLen, inner
}

// SumAxis sums t along the given axis, producing a tensor whose shape is t's
// shape with that axis removed (rank reduced by one).
func SumAxis(t *Tensor, axis int) *Tensor {
	outer, n, inner := AxisStrides(t.Shape, axis)
	shape := make([]int, 0, len(t.Shape)-1)
	shape = append(shape, t.Shape[:axis]...)
	shape = append(shape, t.Shape[axis+1:]...)
	out := New(shape...)
	for o := 0; o < outer; o++ {
		for a := 0; a < n; a++ {
			src := t.Data[(o*n+a)*inner : (o*n+a+1)*inner]
			dst := out.Data[o*inner : (o+1)*inner]
			for i, v := range src {
				dst[i] += v
			}
		}
	}
	return out
}

// Softmax computes the softmax of t along the given axis, returning a new
// tensor of the same shape. It is numerically stabilized by max-subtraction.
func Softmax(t *Tensor, axis int) *Tensor {
	outer, n, inner := AxisStrides(t.Shape, axis)
	out := New(t.Shape...)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			maxv := math.Inf(-1)
			for a := 0; a < n; a++ {
				v := t.Data[(o*n+a)*inner+i]
				if v > maxv {
					maxv = v
				}
			}
			sum := 0.0
			for a := 0; a < n; a++ {
				e := math.Exp(t.Data[(o*n+a)*inner+i] - maxv)
				out.Data[(o*n+a)*inner+i] = e
				sum += e
			}
			for a := 0; a < n; a++ {
				out.Data[(o*n+a)*inner+i] /= sum
			}
		}
	}
	return out
}

// Squash applies the capsule squashing nonlinearity along `axis`:
//
//	squash(s) = (‖s‖² / (1+‖s‖²)) · s/‖s‖
//
// It bounds each capsule vector's norm to [0, 1) while preserving
// orientation (Sabour et al., NIPS 2017). eps guards the zero vector.
func Squash(t *Tensor, axis int) *Tensor {
	const eps = 1e-12
	outer, n, inner := AxisStrides(t.Shape, axis)
	out := New(t.Shape...)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			norm2 := 0.0
			for a := 0; a < n; a++ {
				v := t.Data[(o*n+a)*inner+i]
				norm2 += v * v
			}
			norm := math.Sqrt(norm2 + eps)
			scale := norm2 / (1 + norm2) / norm
			for a := 0; a < n; a++ {
				idx := (o*n+a)*inner + i
				out.Data[idx] = t.Data[idx] * scale
			}
		}
	}
	return out
}

// SquashBackward computes the gradient of Squash along `axis`: given the
// forward input x and upstream gradient gy, it returns gx.
//
// With n = ‖x‖, squash(x) = n/(1+n²) · x/1 ... written as f(n)·x with
// f(n) = 1/(1+n²) · n/n = n²/(1+n²)/n. The Jacobian is
// f(n)·I + f'(n)/n · x xᵀ where f(n) = n/(1+n²), i.e. the usual
// radial-tangential decomposition.
func SquashBackward(x, gy *Tensor, axis int) *Tensor {
	const eps = 1e-12
	outer, n, inner := AxisStrides(x.Shape, axis)
	gx := New(x.Shape...)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			norm2 := 0.0
			dot := 0.0
			for a := 0; a < n; a++ {
				idx := (o*n+a)*inner + i
				norm2 += x.Data[idx] * x.Data[idx]
				dot += x.Data[idx] * gy.Data[idx]
			}
			norm := math.Sqrt(norm2 + eps)
			// s(x) = f(norm) * x with f(r) = r/(1+r²) applied radially:
			// squash(x) = (norm/(1+norm²)) * (x/norm) * norm = norm/(1+norm²)·x̂·norm
			// Using g(r) = r/(1+r²) on the unit direction:
			// squash(x) = g2(r)·x where g2(r) = r/(1+r²)/1 ... = 1/(1+r²)·r/r.
			// Concretely scale = norm²/(1+norm²)/norm = norm/(1+norm²).
			scale := norm / (1 + norm2)
			// d scale/d norm = (1+norm²-2norm²)/(1+norm²)² = (1-norm²)/(1+norm²)²
			dscale := (1 - norm2) / ((1 + norm2) * (1 + norm2))
			for a := 0; a < n; a++ {
				idx := (o*n+a)*inner + i
				gx.Data[idx] = scale*gy.Data[idx] + dscale*(dot/norm)*x.Data[idx]
			}
		}
	}
	return gx
}

// ReLU returns max(x, 0) elementwise as a new tensor.
func ReLU(t *Tensor) *Tensor {
	return t.Map(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// ReLUBackward masks the upstream gradient gy by the sign of the forward
// input x.
func ReLUBackward(x, gy *Tensor) *Tensor {
	mustSameShape(x, gy, "ReLUBackward")
	gx := New(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			gx.Data[i] = gy.Data[i]
		}
	}
	return gx
}

// NormAxis returns the Euclidean norm of each vector along `axis`
// (shape = t's shape with that axis removed).
func NormAxis(t *Tensor, axis int) *Tensor {
	outer, n, inner := AxisStrides(t.Shape, axis)
	shape := make([]int, 0, len(t.Shape)-1)
	shape = append(shape, t.Shape[:axis]...)
	shape = append(shape, t.Shape[axis+1:]...)
	out := New(shape...)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			s := 0.0
			for a := 0; a < n; a++ {
				v := t.Data[(o*n+a)*inner+i]
				s += v * v
			}
			out.Data[o*inner+i] = math.Sqrt(s)
		}
	}
	return out
}

// PercentileRange returns the spread between the lo-th and hi-th
// percentiles of t's values (lo, hi in [0, 100]), a robust alternative to
// the min/max Range for heavy-tailed tensors.
func PercentileRange(t *Tensor, lo, hi float64) float64 {
	n := len(t.Data)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), t.Data...)
	sortFloats(s)
	idx := func(p float64) float64 {
		i := int(p / 100 * float64(n-1))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return s[i]
	}
	return idx(hi) - idx(lo)
}

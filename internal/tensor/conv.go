package tensor

import "fmt"

// ConvSpec describes a 2D convolution: kernel size, stride and symmetric
// zero padding. Tensors use NCHW layout. Grouped convolution is not
// supported.
type ConvSpec struct {
	KH, KW int // kernel height and width
	Stride int // same stride for both spatial dims
	Pad    int // symmetric zero padding
	OutCh  int // number of output channels
	InCh   int // number of input channels (must match the input tensor)
}

// OutSize returns the spatial output size for an input of size h×w.
func (c ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*c.Pad-c.KH)/c.Stride + 1
	ow = (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// Im2Col unfolds x (shape [N, C, H, W]) into a matrix of shape
// [N*OH*OW, C*KH*KW] so that convolution becomes a matrix product with the
// flattened kernel. Out-of-bounds (padding) positions contribute zeros.
func Im2Col(x *Tensor, spec ConvSpec) *Tensor {
	return Im2ColScratch(x, spec, nil)
}

// Im2ColScratch is Im2Col with the column matrix taken from an optional
// scratch arena (nil allocates fresh). Every element is written, so a
// recycled buffer needs no zeroing.
func Im2ColScratch(x *Tensor, spec ConvSpec, s *Scratch) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != spec.InCh {
		panic(fmt.Sprintf("tensor: Im2Col input channels %d != spec.InCh %d", c, spec.InCh))
	}
	oh, ow := spec.OutSize(h, w)
	cols := s.Take(n*oh*ow, c*spec.KH*spec.KW)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := cols.Data[row*cols.Shape[1]:]
				k := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < spec.KH; ky++ {
						iy := oy*spec.Stride + ky - spec.Pad
						for kx := 0; kx < spec.KW; kx++ {
							ix := ox*spec.Stride + kx - spec.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								dst[k] = x.Data[chBase+iy*w+ix]
							} else {
								dst[k] = 0
							}
							k++
						}
					}
				}
				row++
			}
		}
	}
	return cols
}

// Col2Im folds a column matrix (as produced by Im2Col, shape
// [N*OH*OW, C*KH*KW]) back into an [N, C, H, W] tensor, accumulating
// overlapping contributions. It is the adjoint of Im2Col and is used for
// convolution input gradients.
func Col2Im(cols *Tensor, n, c, h, w int, spec ConvSpec) *Tensor {
	oh, ow := spec.OutSize(h, w)
	if cols.Shape[0] != n*oh*ow || cols.Shape[1] != c*spec.KH*spec.KW {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with n=%d c=%d h=%d w=%d spec=%+v", cols.Shape, n, c, h, w, spec))
	}
	x := New(n, c, h, w)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := cols.Data[row*cols.Shape[1]:]
				k := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < spec.KH; ky++ {
						iy := oy*spec.Stride + ky - spec.Pad
						for kx := 0; kx < spec.KW; kx++ {
							ix := ox*spec.Stride + kx - spec.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								x.Data[chBase+iy*w+ix] += src[k]
							}
							k++
						}
					}
				}
				row++
			}
		}
	}
	return x
}

// Conv2D computes a standard 2D convolution (really cross-correlation, as in
// every DL framework) of x [N, InCh, H, W] with kernel w
// [OutCh, InCh, KH, KW] plus bias b [OutCh] (nil for no bias).
// The result has shape [N, OutCh, OH, OW].
func Conv2D(x, w, b *Tensor, stride, pad int) *Tensor {
	return Conv2DScratch(x, w, b, stride, pad, nil)
}

// Conv2DScratch is Conv2D with its temporaries taken from (and released
// back to) an optional scratch arena, so repeated forward passes stop
// churning the allocator. The returned output tensor is always freshly
// allocated — it escapes to the caller and must survive arena reuse.
//
// Dispatch is by shape only (never by CPU features), so a given
// convolution always takes the same numeric path on every machine:
// 3×3 stride-1 kernels on wide-enough planes run the fused im2col-free
// direct path, 1×1 stride-1 unpadded kernels run the channel-axpy direct
// path, and everything else goes through im2col + the blocked GEMM with
// a fused bias+transpose epilogue. Each path is bit-identical to its
// reference oracle in conv_ref.go.
func Conv2DScratch(x, w, b *Tensor, stride, pad int, s *Scratch) *Tensor {
	kh, kw := w.Shape[2], w.Shape[3]
	switch {
	case kh == 3 && kw == 3 && stride == 1 && use3x3Direct(x.Shape[3]):
		return conv2DDirect3x3(x, w, b, pad)
	case kh == 1 && kw == 1 && stride == 1 && pad == 0:
		return conv2DDirect1x1(x, w, b)
	default:
		return conv2DGEMM(x, w, b, stride, pad, s)
	}
}

// use3x3Direct decides — from the input width alone, so dispatch stays a
// pure shape rule — whether a 3×3 stride-1 convolution takes the fused
// direct path. The direct kernel amortizes its per-(ci, ky) row-pass
// setup over the fully-in-bounds interior columns; on narrow planes
// (DeepCaps' deep cells run at 8×8 down to 2×2) border columns dominate
// and the im2col GEMM is several times faster, so those shapes keep the
// GEMM path.
func use3x3Direct(wd int) bool {
	// wd-2 is the count of output columns whose three kx taps are all in
	// bounds, for any padding.
	return wd-2 >= 10
}

// conv2DGEMM is the general path: im2col, then each output position's
// patch row is multiplied against blocks of eight kernel rows (the
// shared-load dot8 tile), with bias add and the [row, OutCh] →
// [N, OutCh, OH, OW] transpose fused into the epilogue instead of
// materializing a product matrix.
func conv2DGEMM(x, w, b *Tensor, stride, pad int, s *Scratch) *Tensor {
	spec := ConvSpec{
		KH: w.Shape[2], KW: w.Shape[3],
		Stride: stride, Pad: pad,
		OutCh: w.Shape[0], InCh: w.Shape[1],
	}
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)
	cols := Im2ColScratch(x, spec, s) // [N*OH*OW, patch]
	patch := spec.InCh * spec.KH * spec.KW
	out := New(n, spec.OutCh, oh, ow)
	rows := oh * ow
	oc8 := spec.OutCh &^ 7
	parallelRows(n*rows, func(r0, r1 int) {
		var dots [8]float64
		for r := r0; r < r1; r++ {
			bIdx, p := r/rows, r%rows
			crow := cols.Data[r*patch : (r+1)*patch]
			outB := out.Data[bIdx*spec.OutCh*rows:]
			for oc0 := 0; oc0 < oc8; oc0 += 8 {
				dot8Into(dots[:], crow, w.Data[oc0*patch:], patch)
				for j := 0; j < 8; j++ {
					v := dots[j]
					if b != nil {
						v += b.Data[oc0+j]
					}
					outB[(oc0+j)*rows+p] = v
				}
			}
			for oc := oc8; oc < spec.OutCh; oc++ {
				v := Dot(crow, w.Data[oc*patch:(oc+1)*patch])
				if b != nil {
					v += b.Data[oc]
				}
				outB[oc*rows+p] = v
			}
		}
	})
	s.Release(cols)
	return out
}

// fused3Row adds one 3-tap row pass to dst: dst[i] += ((x[i]*w0 +
// x[i+1]*w1) + x[i+2]*w2). Scalar twin of one fused3RowsAVX row.
func fused3Row(dst, x []float64, w0, w1, w2 float64) {
	x = x[:len(dst)+2]
	for i := range dst {
		dst[i] += (x[i]*w0 + x[i+1]*w1) + x[i+2]*w2
	}
}

// edge3Cols accumulates the partially-padded left ([0, lo)) and right
// ([hi, ow)) output columns of one (ci, ky) tap triple. An edge column of
// a 3×3 kernel has at most two in-bounds kx taps, so each column gets a
// branch-free strided pass down the rows; the per-element order is still
// the reference's t := 0 then += per valid tap in ascending kx. Deep
// DeepCaps cells run on 4×4 and 2×2 planes where every column is an edge
// column, which makes this the hot loop of small feature maps.
func edge3Cols(plane, xplane []float64, oyLo, oyHi, ky, pad, ow, wd, lo, hi int, wk [3]float64) {
	nRows := oyHi - oyLo
	edgeCol := func(ox int) {
		kxLo, kxHi := pad-ox, wd+pad-ox
		if kxLo < 0 {
			kxLo = 0
		}
		if kxHi > 3 {
			kxHi = 3
		}
		if kxHi <= kxLo {
			return // column fully padded on this tap row
		}
		xoff := (oyLo+ky-pad)*wd + ox + kxLo - pad
		poff := oyLo*ow + ox
		if kxHi-kxLo == 1 {
			w0 := wk[kxLo]
			for r := 0; r < nRows; r++ {
				t := 0.0
				t += xplane[xoff] * w0
				plane[poff] += t
				poff += ow
				xoff += wd
			}
			return
		}
		w0, w1 := wk[kxLo], wk[kxLo+1]
		for r := 0; r < nRows; r++ {
			t := 0.0
			t += xplane[xoff] * w0
			t += xplane[xoff+1] * w1
			plane[poff] += t
			poff += ow
			xoff += wd
		}
	}
	for ox := 0; ox < lo; ox++ {
		edgeCol(ox)
	}
	for ox := hi; ox < ow; ox++ {
		edgeCol(ox)
	}
}

// conv2DDirect3x3 is the fused, im2col-free fast path for 3×3 stride-1
// convolutions (the bulk of DeepCaps). Each output plane starts at its
// bias and accumulates one fused 3-tap row pass per (inCh, ky), two
// output channels at a time so the input loads are shared; the
// partially-padded border columns are handled separately so interior
// pixels never test padding. The per-element summation order — bias
// first, then one fused tap triple per (ci, ky) in ascending order — is
// exactly Conv2DRef's direct order.
func conv2DDirect3x3(x, w, bias *Tensor, pad int) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outCh := w.Shape[0]
	oh, ow := h+2*pad-2, wd+2*pad-2
	out := New(n, outCh, oh, ow)
	rows := oh * ow

	// Interior columns: all three kx taps in bounds.
	lo, hi := pad, wd+pad-2
	if lo > ow {
		lo = ow
	}
	if hi < lo {
		hi = lo
	}
	if hi > ow {
		hi = ow
	}

	// tapRange returns the valid output-row range for tap row ky.
	tapRange := func(ky int) (oyLo, oyHi int) {
		oyLo, oyHi = pad-ky, h+pad-ky
		if oyLo < 0 {
			oyLo = 0
		}
		if oyHi > oh {
			oyHi = oh
		}
		return oyLo, oyHi
	}

	for b := 0; b < n; b++ {
		for oc := 0; oc < outCh; oc++ {
			if bias != nil {
				plane := out.Data[(b*outCh+oc)*rows : (b*outCh+oc+1)*rows]
				bv := bias.Data[oc]
				for i := range plane {
					plane[i] = bv
				}
			}
		}
		oc := 0
		for ; oc+1 < outCh; oc += 2 {
			p0 := out.Data[(b*outCh+oc)*rows : (b*outCh+oc+1)*rows]
			p1 := out.Data[(b*outCh+oc+1)*rows : (b*outCh+oc+2)*rows]
			for ci := 0; ci < c; ci++ {
				xplane := x.Data[(b*c+ci)*h*wd : (b*c+ci+1)*h*wd]
				for ky := 0; ky < 3; ky++ {
					oyLo, oyHi := tapRange(ky)
					if oyHi <= oyLo {
						continue
					}
					wb0 := ((oc*c+ci)*3 + ky) * 3
					wb1 := (((oc+1)*c+ci)*3 + ky) * 3
					u := [3]float64{w.Data[wb0], w.Data[wb0+1], w.Data[wb0+2]}
					v := [3]float64{w.Data[wb1], w.Data[wb1+1], w.Data[wb1+2]}
					if hi > lo {
						nCols := hi - lo
						xoff := (oyLo+ky-pad)*wd + lo - pad
						if useAVX {
							fused3Rows2AVX(&p0[oyLo*ow+lo], &p1[oyLo*ow+lo], &xplane[xoff],
								oyHi-oyLo, nCols, ow, wd,
								u[0], u[1], u[2], v[0], v[1], v[2])
						} else {
							for oy := oyLo; oy < oyHi; oy++ {
								xr := xplane[(oy+ky-pad)*wd+lo-pad:]
								fused3Row(p0[oy*ow+lo:oy*ow+hi], xr, u[0], u[1], u[2])
								fused3Row(p1[oy*ow+lo:oy*ow+hi], xr, v[0], v[1], v[2])
							}
						}
					}
					edge3Cols(p0, xplane, oyLo, oyHi, ky, pad, ow, wd, lo, hi, u)
					edge3Cols(p1, xplane, oyLo, oyHi, ky, pad, ow, wd, lo, hi, v)
				}
			}
		}
		if oc < outCh {
			p0 := out.Data[(b*outCh+oc)*rows : (b*outCh+oc+1)*rows]
			for ci := 0; ci < c; ci++ {
				xplane := x.Data[(b*c+ci)*h*wd : (b*c+ci+1)*h*wd]
				for ky := 0; ky < 3; ky++ {
					oyLo, oyHi := tapRange(ky)
					if oyHi <= oyLo {
						continue
					}
					wb := ((oc*c+ci)*3 + ky) * 3
					u := [3]float64{w.Data[wb], w.Data[wb+1], w.Data[wb+2]}
					if hi > lo {
						xoff := (oyLo+ky-pad)*wd + lo - pad
						if useAVX {
							fused3RowsAVX(&p0[oyLo*ow+lo], &xplane[xoff],
								oyHi-oyLo, hi-lo, ow, wd, u[0], u[1], u[2])
						} else {
							for oy := oyLo; oy < oyHi; oy++ {
								fused3Row(p0[oy*ow+lo:oy*ow+hi], xplane[(oy+ky-pad)*wd+lo-pad:], u[0], u[1], u[2])
							}
						}
					}
					edge3Cols(p0, xplane, oyLo, oyHi, ky, pad, ow, wd, lo, hi, u)
				}
			}
		}
	}
	return out
}

// conv2DDirect1x1 is the pointwise fast path: each output plane is the
// bias plus a channel-axpy over input planes in ascending ci order.
func conv2DDirect1x1(x, w, bias *Tensor) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outCh := w.Shape[0]
	out := New(n, outCh, h, wd)
	plane := h * wd
	for b := 0; b < n; b++ {
		for oc := 0; oc < outCh; oc++ {
			dst := out.Data[(b*outCh+oc)*plane : (b*outCh+oc+1)*plane]
			if bias != nil {
				bv := bias.Data[oc]
				for i := range dst {
					dst[i] = bv
				}
			}
			for ci := 0; ci < c; ci++ {
				wv := w.Data[oc*c+ci]
				src := x.Data[(b*c+ci)*plane : (b*c+ci+1)*plane : (b*c+ci+1)*plane]
				for i := range dst {
					dst[i] += src[i] * wv
				}
			}
		}
	}
	return out
}

// Conv2DBackward computes gradients of a Conv2D with respect to its input,
// kernel and bias, given the upstream gradient gy [N, OutCh, OH, OW].
// Any of the returned gradients the caller does not need can be ignored.
func Conv2DBackward(x, w, gy *Tensor, stride, pad int) (gx, gw, gb *Tensor) {
	return Conv2DBackwardScratch(x, w, gy, stride, pad, nil)
}

// Conv2DBackwardScratch is Conv2DBackward with the im2col and matmul
// temporaries taken from (and released back to) an optional scratch
// arena, mirroring the forward path — a training step no longer
// allocates fresh column/product matrices. The returned gradients are
// always freshly allocated.
func Conv2DBackwardScratch(x, w, gy *Tensor, stride, pad int, s *Scratch) (gx, gw, gb *Tensor) {
	spec := ConvSpec{
		KH: w.Shape[2], KW: w.Shape[3],
		Stride: stride, Pad: pad,
		OutCh: w.Shape[0], InCh: w.Shape[1],
	}
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)
	rows := oh * ow

	// Rearrange gy from [N, OutCh, OH, OW] to [N*OH*OW, OutCh].
	gyMat := s.Take(n*rows, spec.OutCh)
	for bIdx := 0; bIdx < n; bIdx++ {
		for oc := 0; oc < spec.OutCh; oc++ {
			src := gy.Data[(bIdx*spec.OutCh+oc)*rows : (bIdx*spec.OutCh+oc+1)*rows]
			for p, v := range src {
				gyMat.Data[(bIdx*rows+p)*spec.OutCh+oc] = v
			}
		}
	}

	cols := Im2ColScratch(x, spec, s) // [N*OH*OW, InCh*KH*KW]

	// gw = gyMat^T · cols  -> [OutCh, InCh*KH*KW]
	gwMat := MatMulAT(gyMat, cols)
	gw = gwMat.Reshape(spec.OutCh, spec.InCh, spec.KH, spec.KW)

	// gb = column sums of gyMat.
	gb = New(spec.OutCh)
	for r := 0; r < gyMat.Shape[0]; r++ {
		src := gyMat.Data[r*spec.OutCh : (r+1)*spec.OutCh]
		for oc, v := range src {
			gb.Data[oc] += v
		}
	}

	// gcols = gyMat · kmat -> [N*OH*OW, InCh*KH*KW]; then fold back.
	kmat := w.Reshape(spec.OutCh, spec.InCh*spec.KH*spec.KW)
	gcols := MatMulScratch(gyMat, kmat, s)
	gx = Col2Im(gcols, n, c, h, wd, spec)
	s.Release(gyMat, cols, gcols)
	return gx, gw, gb
}

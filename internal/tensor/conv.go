package tensor

import "fmt"

// ConvSpec describes a 2D convolution: kernel size, stride and symmetric
// zero padding. Tensors use NCHW layout. Grouped convolution is not
// supported.
type ConvSpec struct {
	KH, KW int // kernel height and width
	Stride int // same stride for both spatial dims
	Pad    int // symmetric zero padding
	OutCh  int // number of output channels
	InCh   int // number of input channels (must match the input tensor)
}

// OutSize returns the spatial output size for an input of size h×w.
func (c ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*c.Pad-c.KH)/c.Stride + 1
	ow = (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// Im2Col unfolds x (shape [N, C, H, W]) into a matrix of shape
// [N*OH*OW, C*KH*KW] so that convolution becomes a matrix product with the
// flattened kernel. Out-of-bounds (padding) positions contribute zeros.
func Im2Col(x *Tensor, spec ConvSpec) *Tensor {
	return Im2ColScratch(x, spec, nil)
}

// Im2ColScratch is Im2Col with the column matrix taken from an optional
// scratch arena (nil allocates fresh). Every element is written, so a
// recycled buffer needs no zeroing.
func Im2ColScratch(x *Tensor, spec ConvSpec, s *Scratch) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != spec.InCh {
		panic(fmt.Sprintf("tensor: Im2Col input channels %d != spec.InCh %d", c, spec.InCh))
	}
	oh, ow := spec.OutSize(h, w)
	cols := s.Take(n*oh*ow, c*spec.KH*spec.KW)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := cols.Data[row*cols.Shape[1]:]
				k := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < spec.KH; ky++ {
						iy := oy*spec.Stride + ky - spec.Pad
						for kx := 0; kx < spec.KW; kx++ {
							ix := ox*spec.Stride + kx - spec.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								dst[k] = x.Data[chBase+iy*w+ix]
							} else {
								dst[k] = 0
							}
							k++
						}
					}
				}
				row++
			}
		}
	}
	return cols
}

// Col2Im folds a column matrix (as produced by Im2Col, shape
// [N*OH*OW, C*KH*KW]) back into an [N, C, H, W] tensor, accumulating
// overlapping contributions. It is the adjoint of Im2Col and is used for
// convolution input gradients.
func Col2Im(cols *Tensor, n, c, h, w int, spec ConvSpec) *Tensor {
	oh, ow := spec.OutSize(h, w)
	if cols.Shape[0] != n*oh*ow || cols.Shape[1] != c*spec.KH*spec.KW {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with n=%d c=%d h=%d w=%d spec=%+v", cols.Shape, n, c, h, w, spec))
	}
	x := New(n, c, h, w)
	row := 0
	for b := 0; b < n; b++ {
		base := b * c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := cols.Data[row*cols.Shape[1]:]
				k := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < spec.KH; ky++ {
						iy := oy*spec.Stride + ky - spec.Pad
						for kx := 0; kx < spec.KW; kx++ {
							ix := ox*spec.Stride + kx - spec.Pad
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								x.Data[chBase+iy*w+ix] += src[k]
							}
							k++
						}
					}
				}
				row++
			}
		}
	}
	return x
}

// Conv2D computes a standard 2D convolution (really cross-correlation, as in
// every DL framework) of x [N, InCh, H, W] with kernel w
// [OutCh, InCh, KH, KW] plus bias b [OutCh] (nil for no bias).
// The result has shape [N, OutCh, OH, OW].
func Conv2D(x, w, b *Tensor, stride, pad int) *Tensor {
	return Conv2DScratch(x, w, b, stride, pad, nil)
}

// Conv2DScratch is Conv2D with the im2col and product temporaries taken
// from (and released back to) an optional scratch arena, so repeated
// forward passes stop churning the allocator. The returned output tensor
// is always freshly allocated — it escapes to the caller and must survive
// arena reuse.
func Conv2DScratch(x, w, b *Tensor, stride, pad int, s *Scratch) *Tensor {
	spec := ConvSpec{
		KH: w.Shape[2], KW: w.Shape[3],
		Stride: stride, Pad: pad,
		OutCh: w.Shape[0], InCh: w.Shape[1],
	}
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)
	cols := Im2ColScratch(x, spec, s)
	// cols: [N*OH*OW, InCh*KH*KW]; kernel matrix: [OutCh, InCh*KH*KW]
	kmat := w.Reshape(spec.OutCh, spec.InCh*spec.KH*spec.KW)
	// out rows are per spatial position; produce [N*OH*OW, OutCh] then permute.
	prod := MatMulTScratch(cols, kmat, s) // [N*OH*OW, OutCh]
	out := New(n, spec.OutCh, oh, ow)
	rows := oh * ow
	for bIdx := 0; bIdx < n; bIdx++ {
		for p := 0; p < rows; p++ {
			src := prod.Data[(bIdx*rows+p)*spec.OutCh:]
			for oc := 0; oc < spec.OutCh; oc++ {
				v := src[oc]
				if b != nil {
					v += b.Data[oc]
				}
				out.Data[((bIdx*spec.OutCh+oc)*rows)+p] = v
			}
		}
	}
	s.Release(cols, prod)
	return out
}

// Conv2DBackward computes gradients of a Conv2D with respect to its input,
// kernel and bias, given the upstream gradient gy [N, OutCh, OH, OW].
// Any of the returned gradients the caller does not need can be ignored.
func Conv2DBackward(x, w, gy *Tensor, stride, pad int) (gx, gw, gb *Tensor) {
	spec := ConvSpec{
		KH: w.Shape[2], KW: w.Shape[3],
		Stride: stride, Pad: pad,
		OutCh: w.Shape[0], InCh: w.Shape[1],
	}
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)
	rows := oh * ow

	// Rearrange gy from [N, OutCh, OH, OW] to [N*OH*OW, OutCh].
	gyMat := New(n*rows, spec.OutCh)
	for bIdx := 0; bIdx < n; bIdx++ {
		for oc := 0; oc < spec.OutCh; oc++ {
			src := gy.Data[(bIdx*spec.OutCh+oc)*rows:]
			for p := 0; p < rows; p++ {
				gyMat.Data[(bIdx*rows+p)*spec.OutCh+oc] = src[p]
			}
		}
	}

	cols := Im2Col(x, spec) // [N*OH*OW, InCh*KH*KW]

	// gw = gyMat^T · cols  -> [OutCh, InCh*KH*KW]
	gwMat := MatMulAT(gyMat, cols)
	gw = gwMat.Reshape(spec.OutCh, spec.InCh, spec.KH, spec.KW)

	// gb = column sums of gyMat.
	gb = New(spec.OutCh)
	for r := 0; r < gyMat.Shape[0]; r++ {
		src := gyMat.Data[r*spec.OutCh:]
		for oc := 0; oc < spec.OutCh; oc++ {
			gb.Data[oc] += src[oc]
		}
	}

	// gcols = gyMat · kmat -> [N*OH*OW, InCh*KH*KW]; then fold back.
	kmat := w.Reshape(spec.OutCh, spec.InCh*spec.KH*spec.KW)
	gcols := MatMul(gyMat, kmat)
	gx = Col2Im(gcols, n, c, h, wd, spec)
	return gx, gw, gb
}

package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumAxis(t *testing.T) {
	x := NewFrom([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s0 := SumAxis(x, 0)
	if s0.Shape[0] != 3 || s0.Data[0] != 5 || s0.Data[2] != 9 {
		t.Fatalf("SumAxis 0 = %v %v", s0.Shape, s0.Data)
	}
	s1 := SumAxis(x, 1)
	if s1.Shape[0] != 2 || s1.Data[0] != 6 || s1.Data[1] != 15 {
		t.Fatalf("SumAxis 1 = %v %v", s1.Shape, s1.Data)
	}
}

func TestSumAxisMiddle(t *testing.T) {
	x := New(2, 3, 4).FillUniform(NewRNG(1), -1, 1)
	s := SumAxis(x, 1)
	if s.Shape[0] != 2 || s.Shape[1] != 4 {
		t.Fatalf("shape %v", s.Shape)
	}
	want := x.At(1, 0, 2) + x.At(1, 1, 2) + x.At(1, 2, 2)
	if !almostEqual(s.At(1, 2), want, 1e-12) {
		t.Fatalf("middle-axis sum = %g, want %g", s.At(1, 2), want)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	x := New(3, 5, 2).FillNormal(NewRNG(2), 0, 3)
	sm := Softmax(x, 1)
	for o := 0; o < 3; o++ {
		for i := 0; i < 2; i++ {
			s := 0.0
			for a := 0; a < 5; a++ {
				v := sm.At(o, a, i)
				if v < 0 || v > 1 {
					t.Fatalf("softmax out of [0,1]: %g", v)
				}
				s += v
			}
			if !almostEqual(s, 1, 1e-12) {
				t.Fatalf("softmax slice sums to %g", s)
			}
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Very large logits must not overflow.
	x := NewFrom([]float64{1000, 1001, 999}, 3)
	sm := Softmax(x, 0)
	for _, v := range sm.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax unstable: %v", sm.Data)
		}
	}
	if sm.Argmax() != 1 {
		t.Fatalf("softmax argmax = %d", sm.Argmax())
	}
}

func TestSoftmaxUniformOnEqualLogits(t *testing.T) {
	x := New(4).Fill(3.3)
	sm := Softmax(x, 0)
	for _, v := range sm.Data {
		if !almostEqual(v, 0.25, 1e-12) {
			t.Fatalf("softmax of constant = %v", sm.Data)
		}
	}
}

func TestSquashNormBounded(t *testing.T) {
	f := func(raw [8]float64) bool {
		x := NewFrom(clipSlice(raw[:]), 2, 4)
		sq := Squash(x, 1)
		for o := 0; o < 2; o++ {
			n := 0.0
			for a := 0; a < 4; a++ {
				v := sq.At(o, a)
				n += v * v
			}
			if math.Sqrt(n) >= 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSquashPreservesDirection(t *testing.T) {
	x := NewFrom([]float64{3, 4}, 1, 2)
	sq := Squash(x, 1)
	// Direction (3,4)/5 preserved; norm = 25/26.
	wantNorm := 25.0 / 26.0
	gotNorm := math.Hypot(sq.At(0, 0), sq.At(0, 1))
	if !almostEqual(gotNorm, wantNorm, 1e-9) {
		t.Fatalf("squash norm = %g, want %g", gotNorm, wantNorm)
	}
	if !almostEqual(sq.At(0, 0)/sq.At(0, 1), 3.0/4.0, 1e-9) {
		t.Fatalf("squash changed direction: %v", sq.Data)
	}
}

func TestSquashZeroVector(t *testing.T) {
	x := New(1, 4)
	sq := Squash(x, 1)
	for _, v := range sq.Data {
		if math.IsNaN(v) || v != 0 {
			t.Fatalf("squash(0) = %v", sq.Data)
		}
	}
}

func TestSquashMonotoneInNorm(t *testing.T) {
	// Larger input norms map to larger output norms (saturating to 1).
	prev := -1.0
	for _, scale := range []float64{0.1, 0.5, 1, 2, 10, 100} {
		x := NewFrom([]float64{scale, 0}, 1, 2)
		n := math.Hypot(Squash(x, 1).At(0, 0), Squash(x, 1).At(0, 1))
		if n <= prev {
			t.Fatalf("squash norm not monotone at scale %g: %g <= %g", scale, n, prev)
		}
		prev = n
	}
}

func TestSquashBackwardNumeric(t *testing.T) {
	x := randTensor(61, 2, 5, 3)
	gy := randTensor(62, 2, 5, 3)
	gx := SquashBackward(x, gy, 1)
	const eps = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		plus := Mul(Squash(x, 1), gy).Sum()
		x.Data[i] = orig - eps
		minus := Mul(Squash(x, 1), gy).Sum()
		x.Data[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if !almostEqual(gx.Data[i], numeric, 1e-4*(1+math.Abs(numeric))) {
			t.Fatalf("squash grad[%d] = %g, numeric %g", i, gx.Data[i], numeric)
		}
	}
}

func TestReLU(t *testing.T) {
	x := NewFrom([]float64{-1, 0, 2}, 3)
	r := ReLU(x)
	if r.Data[0] != 0 || r.Data[1] != 0 || r.Data[2] != 2 {
		t.Fatalf("ReLU = %v", r.Data)
	}
}

func TestReLUBackward(t *testing.T) {
	x := NewFrom([]float64{-1, 0.5, 2, 0}, 4)
	gy := NewFrom([]float64{10, 10, 10, 10}, 4)
	gx := ReLUBackward(x, gy)
	want := []float64{0, 10, 10, 0}
	for i := range want {
		if gx.Data[i] != want[i] {
			t.Fatalf("ReLUBackward = %v, want %v", gx.Data, want)
		}
	}
}

func TestNormAxis(t *testing.T) {
	x := NewFrom([]float64{3, 4, 0, 0, 5, 12}, 3, 2)
	n := NormAxis(x, 1)
	want := []float64{5, 0, 13}
	for i := range want {
		if !almostEqual(n.Data[i], want[i], 1e-12) {
			t.Fatalf("NormAxis = %v, want %v", n.Data, want)
		}
	}
}

func TestAxisOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SumAxis(New(2, 2), 2)
}

func TestHistogramBinsAndClamp(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.ObserveAll([]float64{-5, 0.5, 5.5, 9.9, 50})
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0] != 2 { // -5 clamps into bin 0 alongside 0.5
		t.Fatalf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 50
		t.Fatalf("bin 9 = %d", h.Counts[9])
	}
	if !almostEqual(h.BinCenter(0), 0.5, 1e-12) {
		t.Fatalf("BinCenter(0) = %g", h.BinCenter(0))
	}
	if !almostEqual(h.Frequency(0), 0.4, 1e-12) {
		t.Fatalf("Frequency(0) = %g", h.Frequency(0))
	}
	if h.Render(20) == "" {
		t.Fatal("Render returned empty")
	}
}

func TestFitGaussianRecoversParameters(t *testing.T) {
	rng := NewRNG(7)
	vs := make([]float64, 20000)
	for i := range vs {
		vs[i] = 3 + 2*rng.NormFloat64()
	}
	fit := FitGaussian(vs)
	if !almostEqual(fit.Mean, 3, 0.05) || !almostEqual(fit.Std, 2, 0.05) {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.KS > 0.02 {
		t.Fatalf("KS too large for true Gaussian: %g", fit.KS)
	}
}

func TestFitGaussianDetectsNonGaussian(t *testing.T) {
	// A two-point distribution is maximally non-Gaussian.
	vs := make([]float64, 1000)
	for i := range vs {
		if i%2 == 0 {
			vs[i] = -1
		} else {
			vs[i] = 1
		}
	}
	fit := FitGaussian(vs)
	if fit.KS < 0.2 {
		t.Fatalf("KS should flag bimodal sample, got %g", fit.KS)
	}
}

func TestFitGaussianDegenerate(t *testing.T) {
	if fit := FitGaussian(nil); fit.Mean != 0 || fit.Std != 0 {
		t.Fatalf("empty fit = %+v", fit)
	}
	fit := FitGaussian([]float64{5, 5, 5})
	if fit.Std != 0 || fit.KS != 1 {
		t.Fatalf("constant fit = %+v", fit)
	}
}

func TestFillDeterminism(t *testing.T) {
	a := New(100).FillNormal(NewRNG(9), 0, 1)
	b := New(100).FillNormal(NewRNG(9), 0, 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must reproduce identical fills")
		}
	}
	c := New(100).FillNormal(NewRNG(10), 0, 1)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fills")
	}
}

func TestFillUniformRange(t *testing.T) {
	x := New(1000).FillUniform(NewRNG(3), -2, 5)
	lo, hi := x.MinMax()
	if lo < -2 || hi >= 5 {
		t.Fatalf("uniform fill out of range: [%g, %g]", lo, hi)
	}
}

func TestGlorotHeScale(t *testing.T) {
	g := New(10000).FillGlorot(NewRNG(4), 100, 100)
	limit := math.Sqrt(6.0 / 200.0)
	lo, hi := g.MinMax()
	if lo < -limit || hi > limit {
		t.Fatalf("glorot out of [-%g, %g]", limit, limit)
	}
	h := New(10000).FillHe(NewRNG(5), 50)
	wantStd := math.Sqrt(2.0 / 50.0)
	if !almostEqual(h.Std(), wantStd, 0.01) {
		t.Fatalf("he std = %g, want %g", h.Std(), wantStd)
	}
}

func TestPercentileRange(t *testing.T) {
	// 0..100 uniform grid: full range 100, robust range trims outliers.
	data := make([]float64, 101)
	for i := range data {
		data[i] = float64(i)
	}
	data[100] = 1e6 // outlier
	x := NewFrom(data, 101)
	if r := PercentileRange(x, 0, 100); r != 1e6 {
		t.Fatalf("full percentile range = %g", r)
	}
	robust := PercentileRange(x, 1, 99)
	if robust < 90 || robust > 100 {
		t.Fatalf("robust range = %g, want ≈98", robust)
	}
	if PercentileRange(New(0), 0, 100) != 0 {
		t.Fatal("empty percentile range != 0")
	}
}

package tensor

import (
	"runtime"
	"testing"
)

// The optimized kernels must match their naive *_ref.go oracles
// bit-for-bit — identical summation order, not a tolerance. See
// matmul_ref.go and conv_ref.go for the order each oracle defines.

// lcg is a tiny deterministic generator for property-test shapes.
type lcg uint64

func (r *lcg) next(n int) int {
	*r = *r*6364136223846793005 + 1442695040888963407
	return int(uint64(*r)>>33) % n
}

// zeroSome forces exact zeros into t (as ReLU activations produce), so
// the ±0 reasoning in the oracle docs is exercised, not just assumed.
func zeroSome(t *Tensor, r *lcg) {
	for i := range t.Data {
		if r.next(4) == 0 {
			t.Data[i] = 0
		}
	}
}

func requireSameBits(t *testing.T, what string, got, want *Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v vs %v", what, got.Shape, want.Shape)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", what, i, got.Data[i], want.Data[i])
		}
	}
}

func TestDotBitwiseVsRef(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 144, 145, 146, 147, 513} {
		a := New(n+1).FillNormal(NewRNG(uint64(n+1)), 0, 1)
		b := New(n+1).FillNormal(NewRNG(uint64(n+77)), 0, 1)
		got := Dot(a.Data[:n], b.Data[:n])
		want := DotRef(a.Data[:n], b.Data[:n])
		if got != want {
			t.Fatalf("n=%d: Dot %v != DotRef %v", n, got, want)
		}
	}
}

func FuzzDot(f *testing.F) {
	f.Add(int64(1), 17)
	f.Add(int64(99), 256)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 0 || n > 4096 {
			t.Skip()
		}
		a := New(n+1).FillNormal(NewRNG(uint64(seed)), 0, 1)
		b := New(n+1).FillNormal(NewRNG(uint64(seed)+13), 0, 1)
		if got, want := Dot(a.Data[:n], b.Data[:n]), DotRef(a.Data[:n], b.Data[:n]); got != want {
			t.Fatalf("n=%d: Dot %v != DotRef %v", n, got, want)
		}
	})
}

func TestMatMulVariantsBitwiseVsRef(t *testing.T) {
	r := lcg(42)
	for it := 0; it < 40; it++ {
		m, k, n := 1+r.next(40), 1+r.next(50), 1+r.next(40)
		a := New(m, k).FillNormal(NewRNG(uint64(it+1)), 0, 1)
		b := New(k, n).FillNormal(NewRNG(uint64(it+100)), 0, 1)
		zeroSome(a, &r)
		zeroSome(b, &r)

		requireSameBits(t, "MatMul", MatMul(a, b), MatMulRef(a, b))

		bT := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bT.Data[j*k+i] = b.Data[i*n+j]
			}
		}
		requireSameBits(t, "MatMulT", MatMulT(a, bT), MatMulTRef(a, bT))

		s := NewScratch()
		got := MatMulTScratch(a, bT, s)
		requireSameBits(t, "MatMulTScratch", got, MatMulTRef(a, bT))
		s.Release(got)
		// Second call reuses the arena buffer; must still be exact.
		requireSameBits(t, "MatMulTScratch reuse", MatMulTScratch(a, bT, s), MatMulTRef(a, bT))

		aT := New(k, m)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				aT.Data[j*m+i] = a.Data[i*k+j]
			}
		}
		requireSameBits(t, "MatMulAT", MatMulAT(aT, b), MatMulATRef(aT, b))
	}
}

func TestMatVecTBitwiseVsRef(t *testing.T) {
	r := lcg(9)
	for it := 0; it < 25; it++ {
		rows, k := 1+r.next(30), 1+r.next(40)
		a := New(k).FillNormal(NewRNG(uint64(it+1)), 0, 1)
		w := New(rows, k).FillNormal(NewRNG(uint64(it+50)), 0, 1)
		zeroSome(a, &r)
		dst := make([]float64, rows)
		MatVecT(dst, a.Data, w.Data, k)
		for j := 0; j < rows; j++ {
			if want := DotRef(a.Data, w.Data[j*k:(j+1)*k]); dst[j] != want {
				t.Fatalf("it=%d row %d: %v != %v", it, j, dst[j], want)
			}
		}
	}
}

func TestMatMulDeterministicAcrossWorkers(t *testing.T) {
	// parallelRows splits by GOMAXPROCS; results must not depend on it.
	a := New(128, 33).FillNormal(NewRNG(1), 0, 1)
	b := New(128, 17).FillNormal(NewRNG(2), 0, 1)
	c := New(9, 17).FillNormal(NewRNG(3), 0, 1)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	one := MatMulAT(a, b)
	oneT := MatMulT(b, c)
	runtime.GOMAXPROCS(4)
	many := MatMulAT(a, b)
	manyT := MatMulT(b, c)
	requireSameBits(t, "MatMulAT workers", many, one)
	requireSameBits(t, "MatMulT workers", manyT, oneT)
}

func TestConv2DBitwiseVsRef(t *testing.T) {
	cases := []struct {
		n, c, h, w, oc, k, stride, pad int
	}{
		// Direct 3×3 stride-1 path (wide planes), even/odd outCh, pads 0..2.
		{3, 2, 16, 16, 8, 3, 1, 1},
		{1, 2, 6, 14, 5, 3, 1, 0},
		{2, 1, 5, 13, 3, 3, 1, 2},
		{1, 4, 3, 12, 2, 3, 1, 1},
		{1, 1, 1, 16, 1, 3, 1, 1}, // height 1: partial tap rows only
		// 3×3 stride-1 on narrow planes: routed to the GEMM path.
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 2, 6, 7, 5, 3, 1, 0},
		{2, 1, 5, 5, 3, 3, 1, 2},
		{1, 2, 4, 1, 2, 3, 1, 1},
		// Direct 1×1 path.
		{2, 3, 5, 6, 4, 1, 1, 0},
		{1, 1, 4, 4, 3, 1, 1, 0},
		// GEMM path: other kernels, strides, pads.
		{1, 2, 9, 9, 3, 9, 1, 0},
		{2, 4, 8, 8, 6, 3, 2, 1},
		{1, 3, 10, 10, 17, 5, 2, 2}, // outCh not a multiple of 8
		{2, 2, 7, 5, 2, 3, 2, 1},
		{1, 1, 6, 6, 9, 1, 2, 0}, // 1×1 stride 2 goes through GEMM
		{1, 2, 8, 8, 16, 4, 3, 1},
	}
	r := lcg(7)
	for i, tc := range cases {
		x := New(tc.n, tc.c, tc.h, tc.w).FillNormal(NewRNG(uint64(i+1)), 0, 1)
		zeroSome(x, &r) // ReLU-style exact zeros
		w := New(tc.oc, tc.c, tc.k, tc.k).FillNormal(NewRNG(uint64(i+100)), 0, 1)
		bias := New(tc.oc).FillNormal(NewRNG(uint64(i+200)), 0, 1)
		for _, b := range []*Tensor{bias, nil} {
			ref := Conv2DRef(x, w, b, tc.stride, tc.pad)
			requireSameBits(t, "Conv2D", Conv2D(x, w, b, tc.stride, tc.pad), ref)
			s := NewScratch()
			got := Conv2DScratch(x, w, b, tc.stride, tc.pad, s)
			requireSameBits(t, "Conv2DScratch", got, ref)
			// Reuse the arena: recycled im2col buffers must not leak state.
			requireSameBits(t, "Conv2DScratch reuse", Conv2DScratch(x, w, b, tc.stride, tc.pad, s), ref)
		}
	}
}

func TestConv2DRandomShapesBitwise(t *testing.T) {
	r := lcg(1234)
	for it := 0; it < 60; it++ {
		n := 1 + r.next(3)
		c := 1 + r.next(5)
		k := []int{1, 3, 3, 3, 5, 9}[r.next(6)]
		stride := 1 + r.next(3)
		pad := r.next(3)
		h := k + r.next(10)
		w := k + r.next(10)
		oc := 1 + r.next(18)
		if (h+2*pad-k)/stride+1 <= 0 || (w+2*pad-k)/stride+1 <= 0 {
			continue
		}
		x := New(n, c, h, w).FillNormal(NewRNG(uint64(it+1)), 0, 1)
		zeroSome(x, &r)
		wt := New(oc, c, k, k).FillNormal(NewRNG(uint64(it+500)), 0, 1)
		var bias *Tensor
		if r.next(2) == 0 {
			bias = New(oc).FillNormal(NewRNG(uint64(it+900)), 0, 1)
		}
		requireSameBits(t, "Conv2D random", Conv2D(x, wt, bias, stride, pad), Conv2DRef(x, wt, bias, stride, pad))
	}
}

// TestAVXMatchesScalar re-runs the conv and matmul kernels with the AVX
// kernels disabled and demands bit-identical output — the guarantee that
// lets dispatch stay shape-only without breaking cross-machine
// determinism.
func TestAVXMatchesScalar(t *testing.T) {
	if !useAVX {
		t.Skip("AVX not in use on this machine")
	}
	x := New(2, 4, 12, 14).FillNormal(NewRNG(3), 0, 1)
	zeroSome(x, new(lcg))
	w3 := New(7, 4, 3, 3).FillNormal(NewRNG(4), 0, 1)
	w9 := New(9, 4, 5, 5).FillNormal(NewRNG(5), 0, 1)
	bias := New(7).FillNormal(NewRNG(6), 0, 1)
	a := New(31, 53).FillNormal(NewRNG(7), 0, 1)
	b := New(26, 53).FillNormal(NewRNG(8), 0, 1)

	avxConv3 := Conv2D(x, w3, bias, 1, 1)
	avxConv9 := Conv2D(x, w9, nil, 2, 2)
	avxMM := MatMulT(a, b)

	useAVX = false
	defer func() { useAVX = true }()
	requireSameBits(t, "conv 3x3 AVX vs scalar", avxConv3, Conv2D(x, w3, bias, 1, 1))
	requireSameBits(t, "conv GEMM AVX vs scalar", avxConv9, Conv2D(x, w9, nil, 2, 2))
	requireSameBits(t, "MatMulT AVX vs scalar", avxMM, MatMulT(a, b))
}

func TestConv2DBackwardScratchMatchesFresh(t *testing.T) {
	x := New(2, 3, 7, 6).FillNormal(NewRNG(11), 0, 1)
	w := New(4, 3, 3, 3).FillNormal(NewRNG(12), 0, 1)
	out := Conv2D(x, w, nil, 2, 1)
	gy := New(out.Shape...).FillNormal(NewRNG(13), 0, 1)

	gx0, gw0, gb0 := Conv2DBackward(x, w, gy, 2, 1)
	s := NewScratch()
	for round := 0; round < 2; round++ { // round 2 hits recycled buffers
		gx, gw, gb := Conv2DBackwardScratch(x, w, gy, 2, 1, s)
		requireSameBits(t, "gx", gx, gx0)
		requireSameBits(t, "gw", gw, gw0)
		requireSameBits(t, "gb", gb, gb0)
	}
	if s.Stats().Reuses == 0 {
		t.Fatal("backward scratch arena never reused a buffer")
	}
}

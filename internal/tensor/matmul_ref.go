package tensor

// Naive reference implementations of the matmul kernels, retained as the
// oracles the optimized paths are tested against (bitwise, not within a
// tolerance). They define the canonical summation order:
//
//   - DotRef: four accumulator lanes by index mod 4, combined as
//     (l0+l1)+(l2+l3). The blocked scalar and AVX kernels keep exactly
//     this order, so equality is exact.
//   - MatMulRef/MatMulATRef: output elements accumulate over the inner
//     dimension in ascending order. The optimized paths skip inner terms
//     whose a-coefficient is exactly zero; such a term contributes ±0,
//     and an accumulator that starts at +0 can never become -0 under
//     round-to-nearest (x + (-x) = +0), so adding or skipping it leaves
//     every finite result bit-identical.

// DotRef is the readable form of the canonical 4-lane dot product.
func DotRef(a, b []float64) float64 {
	var lanes [4]float64
	for p := range a {
		lanes[p&3] += a[p] * b[p]
	}
	return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

// MatMulRef is the naive triple loop for a [M, K] · b [K, N].
func MatMulRef(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[i*k+p]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

// MatMulTRef is the naive a [M, K] · bᵀ for b [N, K], one DotRef per
// output element.
func MatMulTRef(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = DotRef(a.Data[i*k:(i+1)*k], b.Data[j*k:(j+1)*k])
		}
	}
	return out
}

// MatMulATRef is the naive aᵀ [K, M] · b [K, N].
func MatMulATRef(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[p*m+i]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// The float matmul/conv kernels share one canonical summation order, so
// every implementation tier (naive reference in matmul_ref.go, blocked
// scalar, AVX assembly) produces bit-identical results:
//
//   - Dot products accumulate into four lanes by index mod 4 and combine
//     as (l0+l1)+(l2+l3). One AVX YMM register holds exactly those four
//     lanes, so the vector kernel is the same arithmetic.
//   - Row-times-matrix products (MatMul, MatMulAT) accumulate output
//     rows by ascending inner index, independent of worker scheduling.

// Dot returns the inner product of a and b (len(a) elements of each) in
// the canonical 4-lane order. It is the scalar reference kernel that
// gemm8LanesAVX reproduces bit-for-bit.
func Dot(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var l0, l1, l2, l3 float64
	p := 0
	for ; p+4 <= n; p += 4 {
		l0 += a[p] * b[p]
		l1 += a[p+1] * b[p+1]
		l2 += a[p+2] * b[p+2]
		l3 += a[p+3] * b[p+3]
	}
	switch n - p {
	case 3:
		l0 += a[p] * b[p]
		l1 += a[p+1] * b[p+1]
		l2 += a[p+2] * b[p+2]
	case 2:
		l0 += a[p] * b[p]
		l1 += a[p+1] * b[p+1]
	case 1:
		l0 += a[p] * b[p]
	}
	return (l0 + l1) + (l2 + l3)
}

// dot8Into computes dst[j] = Dot(a, w[j*wStride:...]) for j in [0, 8),
// through the shared-load AVX tile when available. The eight rows of w
// must be valid for wStride*7+len(a) elements.
func dot8Into(dst []float64, a, w []float64, wStride int) {
	_ = dst[7]
	if !useAVX {
		for j := 0; j < 8; j++ {
			dst[j] = Dot(a, w[j*wStride:j*wStride+len(a)])
		}
		return
	}
	k := len(a)
	k4 := k &^ 3
	var lanes [32]float64
	if k4 > 0 {
		gemm8LanesAVX(&a[0], &w[0], wStride, k4, &lanes)
	}
	for j := 0; j < 8; j++ {
		l := lanes[j*4 : j*4+4 : j*4+4]
		wrow := w[j*wStride:]
		for p := k4; p < k; p++ {
			l[p&3] += a[p] * wrow[p]
		}
		dst[j] = (l[0] + l[1]) + (l[2] + l[3])
	}
}

// MatMul returns a·b for 2D tensors a [M, K] and b [K, N].
func MatMul(a, b *Tensor) *Tensor {
	return MatMulScratch(a, b, nil)
}

// MatMulScratch is MatMul with the output taken from an optional scratch
// arena (nil allocates fresh).
func MatMulScratch(a, b *Tensor, s *Scratch) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := s.TakeZero(m, n)
	parallelRows(m, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					// 0·b[p][j] adds ±0, which never changes an
					// accumulator that started at +0 (see matmul_ref.go).
					continue
				}
				brow := b.Data[p*n : (p+1)*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulT returns a·bᵀ for a [M, K] and b [N, K].
// This layout is cache-friendly for conv kernels stored as [OutCh, K].
func MatMulT(a, b *Tensor) *Tensor {
	return MatMulTScratch(a, b, nil)
}

// MatMulTScratch is MatMulT with the output taken from an optional scratch
// arena (nil allocates fresh). Every output element is overwritten, so a
// recycled buffer needs no zeroing. Output rows are computed as blocks of
// eight b-row dot products sharing each a load (the AVX tile), with the
// canonical Dot order per element.
func MatMulTScratch(a, b *Tensor, s *Scratch) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", k, k2))
	}
	out := s.Take(m, n)
	n8 := n &^ 7
	parallelRows(m, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n : (i+1)*n]
			for j := 0; j < n8; j += 8 {
				dot8Into(orow[j:j+8], arow, b.Data[j*k:], k)
			}
			for j := n8; j < n; j++ {
				orow[j] = Dot(arow, b.Data[j*k:(j+1)*k])
			}
		}
	})
	return out
}

// MatVecT computes dst[r] = Dot(a, w[r*wStride : r*wStride+len(a)]) for
// every r in [0, len(dst)) — one vector against the rows of a row-major
// matrix — through the shared-load 8-row tile. The capsule vote stage is
// exactly this shape: one input capsule against outCaps·outDim weight rows.
func MatVecT(dst, a, w []float64, wStride int) {
	rows := len(dst)
	r8 := rows &^ 7
	for r := 0; r < r8; r += 8 {
		dot8Into(dst[r:r+8:r+8], a, w[r*wStride:], wStride)
	}
	for r := r8; r < rows; r++ {
		dst[r] = Dot(a, w[r*wStride:r*wStride+len(a)])
	}
}

// MatMulAT returns aᵀ·b for a [K, M] and b [K, N]. Output rows accumulate
// over the K dimension in ascending order regardless of how many workers
// run, so the result is bit-deterministic (the sweep engine's
// worker-count invariance depends on that).
func MatMulAT(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAT outer dims %d vs %d", k, k2))
	}
	out := New(m, n)
	parallelRows(m, func(i0, i1 int) {
		for p := 0; p < k; p++ {
			arow := a.Data[p*m : (p+1)*m]
			brow := b.Data[p*n : (p+1)*n : (p+1)*n]
			for i := i0; i < i1; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.Data[i*n : (i+1)*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// parallelRows splits [0, n) into contiguous chunks and runs body on each
// chunk, using up to GOMAXPROCS goroutines. Small n runs inline.
func parallelRows(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// MatMul returns a·b for 2D tensors a [M, K] and b [K, N].
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	parallelRows(m, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulT returns a·bᵀ for a [M, K] and b [N, K].
// This layout is cache-friendly for conv kernels stored as [OutCh, K].
func MatMulT(a, b *Tensor) *Tensor {
	return MatMulTScratch(a, b, nil)
}

// MatMulTScratch is MatMulT with the output taken from an optional scratch
// arena (nil allocates fresh). Every output element is overwritten, so a
// recycled buffer needs no zeroing.
func MatMulTScratch(a, b *Tensor, s *Scratch) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", k, k2))
	}
	out := s.Take(m, n)
	parallelRows(m, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				s := 0.0
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// MatMulAT returns aᵀ·b for a [K, M] and b [K, N].
func MatMulAT(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAT outer dims %d vs %d", k, k2))
	}
	out := New(m, n)
	var mu sync.Mutex
	parallelRows(k, func(p0, p1 int) {
		local := make([]float64, m*n)
		for p := p0; p < p1; p++ {
			arow := a.Data[p*m : (p+1)*m]
			brow := b.Data[p*n : (p+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				lrow := local[i*n : (i+1)*n]
				for j, bv := range brow {
					lrow[j] += av * bv
				}
			}
		}
		mu.Lock()
		for i, v := range local {
			out.Data[i] += v
		}
		mu.Unlock()
	})
	return out
}

// parallelRows splits [0, n) into contiguous chunks and runs body on each
// chunk, using up to GOMAXPROCS goroutines. Small n runs inline.
func parallelRows(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

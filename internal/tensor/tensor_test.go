package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 || x.Rank() != 2 {
		t.Fatalf("got len=%d rank=%d", x.Len(), x.Rank())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatalf("New not zero-filled: %v", x.Data)
		}
	}
}

func TestNewFromValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewFrom([]float64{1, 2, 3}, 2, 2)
}

func TestNegativeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dim")
		}
	}()
	New(2, -1)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	// Row-major: offset of (1,2,3) = (1*3+2)*4+3 = 23.
	if x.Data[23] != 7.5 {
		t.Fatalf("row-major offset wrong: %v", x.Data)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := NewFrom([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 99
	if x.Data[0] != 99 {
		t.Fatal("Reshape must share the backing buffer")
	}
}

func TestReshapeInfer(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Shape[1] != 12 {
		t.Fatalf("inferred dim = %d, want 12", y.Shape[1])
	}
}

func TestReshapeIncompatiblePanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := NewFrom([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := NewFrom([]float64{1, 2, 3}, 3)
	b := NewFrom([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 2).Data; got[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := NewFrom([]float64{1, 2}, 2)
	a.AddInPlace(NewFrom([]float64{1, 1}, 2))
	a.SubInPlace(NewFrom([]float64{0, 1}, 2))
	a.MulInPlace(NewFrom([]float64{3, 3}, 2))
	a.ScaleInPlace(0.5)
	if a.Data[0] != 3 || a.Data[1] != 3 {
		t.Fatalf("in-place chain = %v", a.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2), New(3))
}

func TestStats(t *testing.T) {
	x := NewFrom([]float64{-1, 0, 1, 4}, 4)
	if x.Sum() != 4 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if x.Mean() != 1 {
		t.Fatalf("Mean = %g", x.Mean())
	}
	lo, hi := x.MinMax()
	if lo != -1 || hi != 4 {
		t.Fatalf("MinMax = %g, %g", lo, hi)
	}
	if x.Range() != 5 {
		t.Fatalf("Range = %g", x.Range())
	}
	want := math.Sqrt((4 + 1 + 0 + 9) / 4.0)
	if !almostEqual(x.Std(), want, 1e-12) {
		t.Fatalf("Std = %g, want %g", x.Std(), want)
	}
}

func TestArgmax(t *testing.T) {
	x := NewFrom([]float64{0.1, 0.9, 0.5}, 3)
	if x.Argmax() != 1 {
		t.Fatalf("Argmax = %d", x.Argmax())
	}
}

func TestEmptyTensorStats(t *testing.T) {
	x := New(0)
	if x.Mean() != 0 || x.Std() != 0 || x.Range() != 0 {
		t.Fatal("empty tensor stats must be zero")
	}
}

// Property: Range is invariant under adding a constant and scales with
// multiplication by a positive constant.
func TestRangeProperties(t *testing.T) {
	f := func(vals [8]float64, shift float64) bool {
		data := make([]float64, 8)
		for i, v := range vals {
			data[i] = math.Mod(v, 1e6) // keep finite and moderate
			if math.IsNaN(data[i]) {
				data[i] = 0
			}
		}
		x := NewFrom(data, 8)
		r := x.Range()
		shifted := x.Map(func(v float64) float64 { return v + math.Mod(shift, 1e6) })
		if !almostEqual(shifted.Range(), r, 1e-6*(1+r)) {
			return false
		}
		scaled := Scale(x, 3)
		return almostEqual(scaled.Range(), 3*r, 1e-6*(1+r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(Add(a,b),b) == a.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b [6]float64) bool {
		ta := NewFrom(clipSlice(a[:]), 6)
		tb := NewFrom(clipSlice(b[:]), 6)
		ab := Add(ta, tb)
		ba := Add(tb, ta)
		for i := range ab.Data {
			if ab.Data[i] != ba.Data[i] {
				return false
			}
		}
		back := Sub(ab, tb)
		for i := range back.Data {
			if !almostEqual(back.Data[i], ta.Data[i], 1e-9*(1+math.Abs(ta.Data[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clipSlice(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out[i] = math.Mod(v, 1e6)
	}
	return out
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewFrom([]float64{1, 2}, 2)
	if small.String() == "" {
		t.Fatal("empty String for small tensor")
	}
	large := New(100).Fill(1)
	if large.String() == "" {
		t.Fatal("empty String for large tensor")
	}
}

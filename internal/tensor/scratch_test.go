package tensor

import "testing"

func TestScratchReusesBuffers(t *testing.T) {
	s := NewScratch()
	a := s.Take(4, 8)
	buf := a.Data
	for i := range buf {
		buf[i] = 3
	}
	s.Release(a)
	b := s.Take(8, 4) // same length, different shape → same backing buffer
	if &b.Data[0] != &buf[0] {
		t.Fatal("Take after Release did not recycle the buffer")
	}
	c := s.Take(8, 4) // pool empty again → fresh buffer
	if &c.Data[0] == &buf[0] {
		t.Fatal("second Take handed out a buffer still in use")
	}
	z := s.TakeZero(4, 8)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("TakeZero[%d] = %g, want 0", i, v)
		}
	}
}

func TestScratchStats(t *testing.T) {
	s := NewScratch()
	a := s.Take(4, 8) // fresh: 32 elements = 256 bytes
	s.Release(a)
	s.Take(8, 4) // recycled
	s.Take(2)    // fresh: 2 elements = 16 bytes
	got := s.Stats()
	want := ScratchStats{Takes: 3, Reuses: 1, Allocs: 2, AllocBytes: 256 + 16, Releases: 1}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	if sum := got.Plus(got); sum.Takes != 6 || sum.AllocBytes != 2*(256+16) {
		t.Fatalf("Plus = %+v", sum)
	}
	var nilS *Scratch
	if nilS.Stats() != (ScratchStats{}) {
		t.Fatal("nil Scratch stats must be zero")
	}
}

func TestScratchNilIsValid(t *testing.T) {
	var s *Scratch
	a := s.Take(2, 3)
	if a.Len() != 6 {
		t.Fatalf("nil Take len = %d", a.Len())
	}
	s.Release(a) // no-op
	if z := s.TakeZero(3); z.Len() != 3 {
		t.Fatal("nil TakeZero")
	}
}

func TestConv2DScratchMatchesConv2D(t *testing.T) {
	x := New(2, 3, 7, 7).FillNormal(NewRNG(1), 0, 1)
	w := New(4, 3, 3, 3).FillNormal(NewRNG(2), 0, 1)
	b := New(4).FillUniform(NewRNG(3), -1, 1)
	want := Conv2D(x, w, b, 2, 1)
	s := NewScratch()
	for rep := 0; rep < 3; rep++ { // repeated calls exercise buffer reuse
		got := Conv2DScratch(x, w, b, 2, 1, s)
		if !got.SameShape(want) {
			t.Fatalf("shape %v vs %v", got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("rep %d: element %d = %g, want %g", rep, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTScratchMatches(t *testing.T) {
	a := New(65, 9).FillNormal(NewRNG(4), 0, 1) // >64 rows → parallel path
	b := New(5, 9).FillNormal(NewRNG(5), 0, 1)
	want := MatMulT(a, b)
	s := NewScratch()
	prev := s.Take(65, 5).Fill(123)
	s.Release(prev) // poison the pool with a dirty same-size buffer
	got := MatMulTScratch(a, b, s)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

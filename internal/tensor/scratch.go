package tensor

import "sync/atomic"

// Scratch is a grow-only arena of reusable float64 buffers for the
// convolution kernels. Repeated forward passes (the ReD-CaNe noise sweeps
// re-run inference thousands of times) spend a measurable fraction of
// their time allocating and garbage-collecting the im2col and product
// matrices; a Scratch lets those temporaries be recycled across calls.
//
// Buffers are pooled by exact length, so steady-state workloads (fixed
// batch and layer shapes) stop allocating entirely after the first pass.
// A nil *Scratch is valid everywhere and falls back to fresh allocation,
// so call sites can thread an optional arena without branching.
//
// A Scratch is NOT safe for concurrent use; give each worker goroutine
// its own.
type Scratch struct {
	id      int64
	free    map[int][][]float64
	freeU16 map[int][][]uint16
	stats   ScratchStats
}

// scratchSeq hands out process-unique arena IDs.
var scratchSeq atomic.Int64

// ScratchStats tallies an arena's traffic: how many buffer requests were
// served from the free list versus freshly allocated, and how many bytes
// the arena grew by. The sweep engine merges worker arenas' stats into
// the telemetry gauges; the split between Reuses and Allocs depends on
// job scheduling, so these are reported as gauges, never counters.
type ScratchStats struct {
	Takes      int64 // buffers requested
	Reuses     int64 // requests served from the free list
	Allocs     int64 // requests that allocated fresh memory
	AllocBytes int64 // bytes of fresh allocation (arena growth)
	Releases   int64 // buffers returned for reuse
}

// Plus returns the element-wise sum of two stats.
func (a ScratchStats) Plus(b ScratchStats) ScratchStats {
	return ScratchStats{
		Takes:      a.Takes + b.Takes,
		Reuses:     a.Reuses + b.Reuses,
		Allocs:     a.Allocs + b.Allocs,
		AllocBytes: a.AllocBytes + b.AllocBytes,
		Releases:   a.Releases + b.Releases,
	}
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch {
	return &Scratch{
		id:      scratchSeq.Add(1),
		free:    make(map[int][][]float64),
		freeU16: make(map[int][][]uint16),
	}
}

// ID returns the arena's process-unique identifier (0 for a nil
// Scratch). Arenas are per-worker, so the ID doubles as a stable lane
// key for trace timelines.
func (s *Scratch) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Stats returns the arena's traffic tallies (zero for a nil Scratch).
func (s *Scratch) Stats() ScratchStats {
	if s == nil {
		return ScratchStats{}
	}
	return s.stats
}

// take returns a buffer of length n, recycled when possible. The contents
// are undefined.
func (s *Scratch) take(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	s.stats.Takes++
	if bufs := s.free[n]; len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		s.free[n] = bufs[:len(bufs)-1]
		s.stats.Reuses++
		return buf
	}
	s.stats.Allocs++
	s.stats.AllocBytes += 8 * int64(n)
	return make([]float64, n)
}

// Take returns a tensor of the given shape backed by a recycled buffer.
// The contents are UNDEFINED — use TakeZero when the caller accumulates
// into the tensor rather than overwriting every element.
func (s *Scratch) Take(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: s.take(n)}
}

// TakeZero is Take with the buffer cleared to zero.
func (s *Scratch) TakeZero(shape ...int) *Tensor {
	t := s.Take(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// Release returns tensors' buffers to the arena for reuse. The tensors
// (and any views sharing their buffers) must not be used afterwards.
// Releasing to a nil Scratch is a no-op.
func (s *Scratch) Release(ts ...*Tensor) {
	if s == nil {
		return
	}
	for _, t := range ts {
		if t == nil || len(t.Data) == 0 {
			continue
		}
		n := len(t.Data)
		s.free[n] = append(s.free[n], t.Data)
		s.stats.Releases++
	}
}

// TakeU16 returns a uint16 buffer of length n, recycled when possible.
// The contents are undefined. Quantized execution backends use these for
// operand codes, which would otherwise be fresh garbage on every layer of
// every batch. A nil Scratch allocates fresh.
func (s *Scratch) TakeU16(n int) []uint16 {
	if s == nil {
		return make([]uint16, n)
	}
	s.stats.Takes++
	if bufs := s.freeU16[n]; len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		s.freeU16[n] = bufs[:len(bufs)-1]
		s.stats.Reuses++
		return buf
	}
	s.stats.Allocs++
	s.stats.AllocBytes += 2 * int64(n)
	return make([]uint16, n)
}

// ReleaseU16 returns uint16 buffers to the arena for reuse. The buffers
// must not be used afterwards. Releasing to a nil Scratch is a no-op.
func (s *Scratch) ReleaseU16(bufs ...[]uint16) {
	if s == nil {
		return
	}
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		s.freeU16[len(b)] = append(s.freeU16[len(b)], b)
		s.stats.Releases++
	}
}

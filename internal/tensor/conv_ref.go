package tensor

// Conv2DRef is the naive reference oracle for Conv2D. It mirrors the
// shape-only dispatch of Conv2DScratch — direct summation order for the
// shapes the direct paths handle, im2col + MatMulTRef order otherwise —
// so the optimized kernels are tested against it bitwise, not within a
// tolerance.
//
// Canonical orders (for finite inputs):
//
//   - Direct 3×3 / 1×1: out = bias, then += one tap group per (ci, ky)
//     in ascending order; a tap group sums its in-bounds kx taps left to
//     right. The fused fast path evaluates a full group as
//     ((x0*w0 + x1*w1) + x2*w2) while this reference starts each group
//     at 0.0; the two differ only in the sign of an all-zero group, and
//     adding +0 or -0 to an accumulator that started at +0 never changes
//     its bits under round-to-nearest, so results are identical.
//   - GEMM: out[oc] = DotRef(patch row, kernel row) + bias, the 4-lane
//     canonical dot order.
func Conv2DRef(x, w, b *Tensor, stride, pad int) *Tensor {
	kh, kw := w.Shape[2], w.Shape[3]
	switch {
	case kh == 3 && kw == 3 && stride == 1 && use3x3Direct(x.Shape[3]),
		kh == 1 && kw == 1 && stride == 1 && pad == 0:
		return conv2DDirectRef(x, w, b, stride, pad)
	default:
		return conv2DGEMMRef(x, w, b, stride, pad)
	}
}

// conv2DDirectRef is the direct-path oracle: per output element, bias
// plus one in-order tap-group sum per (ci, ky).
func conv2DDirectRef(x, w, b *Tensor, stride, pad int) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outCh, kh, kw := w.Shape[0], w.Shape[2], w.Shape[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (wd+2*pad-kw)/stride + 1
	out := New(n, outCh, oh, ow)
	for bi := 0; bi < n; bi++ {
		for oc := 0; oc < outCh; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					if b != nil {
						s = b.Data[oc]
					}
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							t := 0.0
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= wd {
									continue
								}
								t += x.Data[((bi*c+ci)*h+iy)*wd+ix] * w.Data[((oc*c+ci)*kh+ky)*kw+kx]
							}
							s += t
						}
					}
					out.Data[((bi*outCh+oc)*oh+oy)*ow+ox] = s
				}
			}
		}
	}
	return out
}

// conv2DGEMMRef is the GEMM-path oracle: im2col followed by one DotRef
// per (position, output channel) with the bias added after the dot.
func conv2DGEMMRef(x, w, b *Tensor, stride, pad int) *Tensor {
	spec := ConvSpec{
		KH: w.Shape[2], KW: w.Shape[3],
		Stride: stride, Pad: pad,
		OutCh: w.Shape[0], InCh: w.Shape[1],
	}
	n, h, wd := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := spec.OutSize(h, wd)
	cols := Im2Col(x, spec)
	patch := spec.InCh * spec.KH * spec.KW
	rows := oh * ow
	out := New(n, spec.OutCh, oh, ow)
	for bi := 0; bi < n; bi++ {
		for p := 0; p < rows; p++ {
			crow := cols.Data[(bi*rows+p)*patch : (bi*rows+p+1)*patch]
			for oc := 0; oc < spec.OutCh; oc++ {
				v := DotRef(crow, w.Data[oc*patch:(oc+1)*patch])
				if b != nil {
					v += b.Data[oc]
				}
				out.Data[(bi*spec.OutCh+oc)*rows+p] = v
			}
		}
	}
	return out
}

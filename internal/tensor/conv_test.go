package tensor

import (
	"math"
	"testing"
)

// naiveConv2D is an independent direct-loop implementation used as the
// reference oracle for the im2col fast path.
func naiveConv2D(x, w, b *Tensor, stride, pad int) *Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oc, kh, kw := w.Shape[0], w.Shape[2], w.Shape[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (wd+2*pad-kw)/stride + 1
	out := New(n, oc, oh, ow)
	for bi := 0; bi < n; bi++ {
		for o := 0; o < oc; o++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy := oy*stride + ky - pad
								ix := ox*stride + kx - pad
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								s += x.At(bi, ci, iy, ix) * w.At(o, ci, ky, kx)
							}
						}
					}
					if b != nil {
						s += b.Data[o]
					}
					out.Set(s, bi, o, oy, ox)
				}
			}
		}
	}
	return out
}

func randTensor(seed uint64, shape ...int) *Tensor {
	return New(shape...).FillNormal(NewRNG(seed), 0, 1)
}

func TestConv2DMatchesNaive(t *testing.T) {
	cases := []struct {
		n, c, h, w, oc, k, stride, pad int
	}{
		{1, 1, 5, 5, 1, 3, 1, 0},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 2, 9, 9, 3, 9, 1, 0},
		{2, 4, 8, 8, 6, 3, 2, 1},
		{1, 1, 4, 4, 2, 1, 1, 0},
		{3, 2, 7, 5, 2, 3, 2, 1},
	}
	for i, tc := range cases {
		x := randTensor(uint64(i+1), tc.n, tc.c, tc.h, tc.w)
		w := randTensor(uint64(i+100), tc.oc, tc.c, tc.k, tc.k)
		b := randTensor(uint64(i+200), tc.oc)
		fast := Conv2D(x, w, b, tc.stride, tc.pad)
		ref := naiveConv2D(x, w, b, tc.stride, tc.pad)
		if !fast.SameShape(ref) {
			t.Fatalf("case %d: shape %v vs %v", i, fast.Shape, ref.Shape)
		}
		for j := range fast.Data {
			if !almostEqual(fast.Data[j], ref.Data[j], 1e-9) {
				t.Fatalf("case %d: element %d = %g, want %g", i, j, fast.Data[j], ref.Data[j])
			}
		}
	}
}

func TestConv2DNilBias(t *testing.T) {
	x := randTensor(1, 1, 1, 4, 4)
	w := randTensor(2, 2, 1, 3, 3)
	got := Conv2D(x, w, nil, 1, 0)
	ref := naiveConv2D(x, w, nil, 1, 0)
	for j := range got.Data {
		if !almostEqual(got.Data[j], ref.Data[j], 1e-9) {
			t.Fatalf("element %d = %g, want %g", j, got.Data[j], ref.Data[j])
		}
	}
}

func TestConvSpecOutSize(t *testing.T) {
	spec := ConvSpec{KH: 3, KW: 3, Stride: 2, Pad: 1}
	oh, ow := spec.OutSize(8, 8)
	if oh != 4 || ow != 4 {
		t.Fatalf("OutSize = %d,%d want 4,4", oh, ow)
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y — the defining property
	// of an adjoint pair, which is exactly what conv backward relies on.
	spec := ConvSpec{KH: 3, KW: 3, Stride: 2, Pad: 1, InCh: 2, OutCh: 1}
	n, c, h, w := 2, 2, 6, 6
	x := randTensor(11, n, c, h, w)
	cols := Im2Col(x, spec)
	y := randTensor(12, cols.Shape[0], cols.Shape[1])
	lhs := Mul(cols, y).Sum()
	back := Col2Im(y, n, c, h, w, spec)
	rhs := Mul(x, back).Sum()
	if !almostEqual(lhs, rhs, 1e-6*(1+math.Abs(lhs))) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

// numericGrad estimates d out.Sum()/d in[i] by central differences.
func numericGradConv(x, w, b *Tensor, stride, pad int, target *Tensor, weight *Tensor) []float64 {
	const eps = 1e-5
	grads := make([]float64, target.Len())
	for i := range target.Data {
		orig := target.Data[i]
		target.Data[i] = orig + eps
		plus := Mul(Conv2D(x, w, b, stride, pad), weight).Sum()
		target.Data[i] = orig - eps
		minus := Mul(Conv2D(x, w, b, stride, pad), weight).Sum()
		target.Data[i] = orig
		grads[i] = (plus - minus) / (2 * eps)
	}
	return grads
}

func TestConv2DBackwardNumeric(t *testing.T) {
	x := randTensor(21, 1, 2, 5, 5)
	w := randTensor(22, 3, 2, 3, 3)
	b := randTensor(23, 3)
	out := Conv2D(x, w, b, 1, 1)
	// Random linear functional L = <gy, out> so gradients are nontrivial.
	gy := randTensor(24, out.Shape...)

	gx, gw, gb := Conv2DBackward(x, w, gy, 1, 1)

	for name, pair := range map[string]struct {
		analytic *Tensor
		target   *Tensor
	}{
		"input":  {gx, x},
		"kernel": {gw, w},
		"bias":   {gb, b},
	} {
		numeric := numericGradConv(x, w, b, 1, 1, pair.target, gy)
		for i := range numeric {
			if !almostEqual(pair.analytic.Data[i], numeric[i], 1e-4*(1+math.Abs(numeric[i]))) {
				t.Fatalf("%s grad[%d] = %g, numeric %g", name, i, pair.analytic.Data[i], numeric[i])
			}
		}
	}
}

func TestConv2DBackwardStride2(t *testing.T) {
	x := randTensor(31, 2, 1, 6, 6)
	w := randTensor(32, 2, 1, 3, 3)
	b := randTensor(33, 2)
	out := Conv2D(x, w, b, 2, 1)
	gy := randTensor(34, out.Shape...)
	gx, _, _ := Conv2DBackward(x, w, gy, 2, 1)
	numeric := numericGradConv(x, w, b, 2, 1, x, gy)
	for i := range numeric {
		if !almostEqual(gx.Data[i], numeric[i], 1e-4*(1+math.Abs(numeric[i]))) {
			t.Fatalf("gx[%d] = %g, numeric %g", i, gx.Data[i], numeric[i])
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a := NewFrom([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := NewFrom([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", got.Data, want)
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	a := randTensor(41, 7, 5)
	b := randTensor(42, 5, 9)
	ref := MatMul(a, b)

	// MatMulT(a, bT) where bT = transpose(b)
	bT := New(9, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 9; j++ {
			bT.Set(b.At(i, j), j, i)
		}
	}
	viaT := MatMulT(a, bT)

	// MatMulAT(aT, b) where aT = transpose(a)
	aT := New(5, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			aT.Set(a.At(i, j), j, i)
		}
	}
	viaAT := MatMulAT(aT, b)

	for i := range ref.Data {
		if !almostEqual(viaT.Data[i], ref.Data[i], 1e-9) {
			t.Fatalf("MatMulT disagrees at %d: %g vs %g", i, viaT.Data[i], ref.Data[i])
		}
		if !almostEqual(viaAT.Data[i], ref.Data[i], 1e-9) {
			t.Fatalf("MatMulAT disagrees at %d: %g vs %g", i, viaAT.Data[i], ref.Data[i])
		}
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulLargeParallel(t *testing.T) {
	// Exercises the parallel path (n >= 64 rows).
	a := randTensor(51, 128, 16)
	b := randTensor(52, 16, 8)
	got := MatMul(a, b)
	// Spot-check a handful of entries against direct dot products.
	for _, ij := range [][2]int{{0, 0}, {63, 7}, {127, 3}, {64, 0}} {
		i, j := ij[0], ij[1]
		s := 0.0
		for k := 0; k < 16; k++ {
			s += a.At(i, k) * b.At(k, j)
		}
		if !almostEqual(got.At(i, j), s, 1e-9) {
			t.Fatalf("parallel MatMul (%d,%d) = %g, want %g", i, j, got.At(i, j), s)
		}
	}
}

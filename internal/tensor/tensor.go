// Package tensor implements a small dense tensor library used as the
// numerical substrate for the ReD-CaNe CapsNet stack.
//
// Tensors are row-major float64 buffers with an explicit shape. The package
// provides the kernels the rest of the repository builds on: elementwise
// arithmetic, im2col-based 2D convolution (forward and backward), batched
// matrix products, axis reductions, softmax, and range statistics. Everything
// is deterministic; randomized fills take an explicit RNG.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float64 array with an explicit shape.
// The zero value is an empty scalar-less tensor; use New or NewFrom.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data is the row-major backing buffer; len(Data) == product(Shape).
	Data []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// NewFrom wraps data in a tensor with the given shape. The slice is used
// directly (not copied). It panics if len(data) does not match the shape.
func NewFrom(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float64) *Tensor {
	return &Tensor{Shape: []int{}, Data: []float64{v}}
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if u.Shape[i] != d {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t's data under a new shape. One dimension may be
// -1, in which case it is inferred. The data buffer is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in Reshape", d))
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension for Reshape %v of %d elements", shape, len(t.Data)))
		}
		shape[infer] = len(t.Data) / n
		n *= shape[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape %v incompatible with %d elements", shape, len(t.Data)))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Apply replaces every element x with f(x) and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	c := New(t.Shape...)
	for i, v := range t.Data {
		c.Data[i] = f(v)
	}
	return c
}

// AddInPlace adds u elementwise into t and returns t.
// Shapes must match exactly.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	mustSameShape(t, u, "AddInPlace")
	for i, v := range u.Data {
		t.Data[i] += v
	}
	return t
}

// SubInPlace subtracts u elementwise from t and returns t.
func (t *Tensor) SubInPlace(u *Tensor) *Tensor {
	mustSameShape(t, u, "SubInPlace")
	for i, v := range u.Data {
		t.Data[i] -= v
	}
	return t
}

// MulInPlace multiplies t elementwise by u and returns t.
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	mustSameShape(t, u, "MulInPlace")
	for i, v := range u.Data {
		t.Data[i] *= v
	}
	return t
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// Add returns t + u elementwise as a new tensor.
func Add(t, u *Tensor) *Tensor {
	mustSameShape(t, u, "Add")
	c := New(t.Shape...)
	for i := range t.Data {
		c.Data[i] = t.Data[i] + u.Data[i]
	}
	return c
}

// Sub returns t - u elementwise as a new tensor.
func Sub(t, u *Tensor) *Tensor {
	mustSameShape(t, u, "Sub")
	c := New(t.Shape...)
	for i := range t.Data {
		c.Data[i] = t.Data[i] - u.Data[i]
	}
	return c
}

// Mul returns t * u elementwise as a new tensor.
func Mul(t, u *Tensor) *Tensor {
	mustSameShape(t, u, "Mul")
	c := New(t.Shape...)
	for i := range t.Data {
		c.Data[i] = t.Data[i] * u.Data[i]
	}
	return c
}

// Scale returns s*t as a new tensor.
func Scale(t *Tensor, s float64) *Tensor {
	c := New(t.Shape...)
	for i, v := range t.Data {
		c.Data[i] = s * v
	}
	return c
}

func mustSameShape(t, u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.Shape, u.Shape))
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 {
	n := len(t.Data)
	if n == 0 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.Data {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// MinMax returns the minimum and maximum elements.
// For an empty tensor it returns (0, 0).
func (t *Tensor) MinMax() (lo, hi float64) {
	if len(t.Data) == 0 {
		return 0, 0
	}
	lo, hi = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Range returns the dynamic range R(X) = max(X) - min(X) used by the
// ReD-CaNe noise model (paper Sec. III-B).
func (t *Tensor) Range() float64 {
	lo, hi := t.MinMax()
	return hi - lo
}

// Argmax returns the index of the largest element in the flat buffer.
func (t *Tensor) Argmax() int {
	best, arg := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}

// String renders a compact, shape-prefixed description of the tensor.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.Shape)
	if len(t.Data) <= 8 {
		fmt.Fprintf(&b, "%v", t.Data)
	} else {
		fmt.Fprintf(&b, "[%g %g %g ... %g]", t.Data[0], t.Data[1], t.Data[2], t.Data[len(t.Data)-1])
	}
	return b.String()
}

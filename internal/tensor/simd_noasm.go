//go:build !amd64

package tensor

// Non-amd64 builds always take the scalar kernel paths, which define the
// canonical summation order the AVX kernels reproduce bit-for-bit.
var useAVX = false

func gemm8LanesAVX(a, w *float64, wStride, k4 int, lanes *[32]float64) {
	panic("tensor: gemm8LanesAVX without AVX support")
}

func fused3RowsAVX(dst, x *float64, rows, n int, dstStride, xStride int, w0, w1, w2 float64) {
	panic("tensor: fused3RowsAVX without AVX support")
}

func fused3Rows2AVX(dst0, dst1, x *float64, rows, n int, dstStride, xStride int, u0, u1, u2, v0, v1, v2 float64) {
	panic("tensor: fused3Rows2AVX without AVX support")
}

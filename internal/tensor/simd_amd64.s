#include "textflag.h"

// AVX kernels for the float64 hot paths. Every kernel reproduces the
// scalar reference summation order bit-for-bit: vector lanes map to the
// canonical (index mod 4) accumulator lanes of dot4, and the fused conv
// taps use plain VMULPD/VADDPD (never FMA, which would change rounding).

// func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemm8LanesAVX(a *float64, w *float64, wStride, k4 int, lanes *[32]float64)
//
// Eight dot products of one a row against w rows 0..7 (row j starts at
// w + j*wStride elements), sharing every a load. Each product keeps the
// four dot4 accumulator lanes (index mod 4); lanes[j*4+l] receives dot
// j's lane l. k4 must be a multiple of 4 (0 is fine). The eight
// independent VADDPD chains hide the add latency that bounds a single
// accumulator.
TEXT ·gemm8LanesAVX(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ w+8(FP), AX
	MOVQ wStride+16(FP), DX
	MOVQ k4+24(FP), CX
	MOVQ lanes+32(FP), DI
	SHLQ $3, DX              // element stride -> byte stride
	MOVQ AX, R8
	LEAQ (AX)(DX*1), R9
	LEAQ (R9)(DX*1), R10
	LEAQ (R10)(DX*1), R11
	LEAQ (R11)(DX*1), R12
	LEAQ (R12)(DX*1), R13
	LEAQ (R13)(DX*1), R14
	LEAQ (R14)(DX*1), R15
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ BX, BX
	CMPQ CX, $0
	JE g8done
g8loop:
	VMOVUPD (SI)(BX*8), Y8
	VMOVUPD (R8)(BX*8), Y9
	VMULPD Y8, Y9, Y9
	VADDPD Y9, Y0, Y0
	VMOVUPD (R9)(BX*8), Y9
	VMULPD Y8, Y9, Y9
	VADDPD Y9, Y1, Y1
	VMOVUPD (R10)(BX*8), Y9
	VMULPD Y8, Y9, Y9
	VADDPD Y9, Y2, Y2
	VMOVUPD (R11)(BX*8), Y9
	VMULPD Y8, Y9, Y9
	VADDPD Y9, Y3, Y3
	VMOVUPD (R12)(BX*8), Y9
	VMULPD Y8, Y9, Y9
	VADDPD Y9, Y4, Y4
	VMOVUPD (R13)(BX*8), Y9
	VMULPD Y8, Y9, Y9
	VADDPD Y9, Y5, Y5
	VMOVUPD (R14)(BX*8), Y9
	VMULPD Y8, Y9, Y9
	VADDPD Y9, Y6, Y6
	VMOVUPD (R15)(BX*8), Y9
	VMULPD Y8, Y9, Y9
	VADDPD Y9, Y7, Y7
	ADDQ $4, BX
	CMPQ BX, CX
	JLT g8loop
g8done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD Y4, 128(DI)
	VMOVUPD Y5, 160(DI)
	VMOVUPD Y6, 192(DI)
	VMOVUPD Y7, 224(DI)
	VZEROUPPER
	RET

// func fused3RowsAVX(dst, x *float64, rows, n int, dstStride, xStride int, w0, w1, w2 float64)
//
// For each of rows rows: dst[i] += ((x[i]*w0 + x[i+1]*w1) + x[i+2]*w2)
// for i in [0, n) — one (ci, ky) tap triple of a stride-1 3×3 direct
// convolution over a block of output rows. Strides are in elements. The
// n%4 tail runs on the VEX scalar ops so the arithmetic (and hence the
// bits) match the vector body exactly.
TEXT ·fused3RowsAVX(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ rows+16(FP), R8
	MOVQ n+24(FP), R9
	MOVQ dstStride+32(FP), R10
	MOVQ xStride+40(FP), R11
	SHLQ $3, R10             // element strides -> byte strides
	SHLQ $3, R11
	VBROADCASTSD w0+48(FP), Y4
	VBROADCASTSD w1+56(FP), Y5
	VBROADCASTSD w2+64(FP), Y6
	MOVQ R9, R12
	ANDQ $-4, R12            // vector count
rowloop:
	XORQ BX, BX
	CMPQ R12, $0
	JE tail
vecloop:
	VMOVUPD (SI)(BX*8), Y0
	VMOVUPD 8(SI)(BX*8), Y1
	VMOVUPD 16(SI)(BX*8), Y2
	VMULPD Y4, Y0, Y0
	VMULPD Y5, Y1, Y1
	VADDPD Y1, Y0, Y0
	VMULPD Y6, Y2, Y2
	VADDPD Y2, Y0, Y0
	VMOVUPD (DI)(BX*8), Y3
	VADDPD Y0, Y3, Y3
	VMOVUPD Y3, (DI)(BX*8)
	ADDQ $4, BX
	CMPQ BX, R12
	JLT vecloop
tail:
	CMPQ BX, R9
	JGE nextrow
	VMOVSD (SI)(BX*8), X0
	VMOVSD 8(SI)(BX*8), X1
	VMOVSD 16(SI)(BX*8), X2
	VMULSD X4, X0, X0
	VMULSD X5, X1, X1
	VADDSD X1, X0, X0
	VMULSD X6, X2, X2
	VADDSD X2, X0, X0
	VMOVSD (DI)(BX*8), X3
	VADDSD X0, X3, X3
	VMOVSD X3, (DI)(BX*8)
	INCQ BX
	JMP tail
nextrow:
	ADDQ R10, DI
	ADDQ R11, SI
	DECQ R8
	JNZ rowloop
	VZEROUPPER
	RET

// func fused3Rows2AVX(dst0, dst1, x *float64, rows, n int, dstStride, xStride int, u0, u1, u2, v0, v1, v2 float64)
//
// Two-output-channel variant of fused3RowsAVX: dst0 gets taps (u0,u1,u2)
// and dst1 gets (v0,v1,v2), sharing the three x loads per step — the
// direct-conv workhorse (halves input bandwidth vs two single-plane
// passes).
TEXT ·fused3Rows2AVX(SB), NOSPLIT, $0-104
	MOVQ dst0+0(FP), DI
	MOVQ dst1+8(FP), R13
	MOVQ x+16(FP), SI
	MOVQ rows+24(FP), R8
	MOVQ n+32(FP), R9
	MOVQ dstStride+40(FP), R10
	MOVQ xStride+48(FP), R11
	SHLQ $3, R10
	SHLQ $3, R11
	VBROADCASTSD u0+56(FP), Y10
	VBROADCASTSD u1+64(FP), Y11
	VBROADCASTSD u2+72(FP), Y12
	VBROADCASTSD v0+80(FP), Y13
	VBROADCASTSD v1+88(FP), Y14
	VBROADCASTSD v2+96(FP), Y15
	MOVQ R9, R12
	ANDQ $-4, R12
f2rowloop:
	XORQ BX, BX
	CMPQ R12, $0
	JE f2tail
f2vecloop:
	VMOVUPD (SI)(BX*8), Y0
	VMOVUPD 8(SI)(BX*8), Y1
	VMOVUPD 16(SI)(BX*8), Y2
	VMULPD Y10, Y0, Y3
	VMULPD Y11, Y1, Y5
	VADDPD Y5, Y3, Y3
	VMULPD Y12, Y2, Y5
	VADDPD Y5, Y3, Y3
	VMOVUPD (DI)(BX*8), Y5
	VADDPD Y3, Y5, Y5
	VMOVUPD Y5, (DI)(BX*8)
	VMULPD Y13, Y0, Y4
	VMULPD Y14, Y1, Y5
	VADDPD Y5, Y4, Y4
	VMULPD Y15, Y2, Y5
	VADDPD Y5, Y4, Y4
	VMOVUPD (R13)(BX*8), Y5
	VADDPD Y4, Y5, Y5
	VMOVUPD Y5, (R13)(BX*8)
	ADDQ $4, BX
	CMPQ BX, R12
	JLT f2vecloop
f2tail:
	CMPQ BX, R9
	JGE f2nextrow
	VMOVSD (SI)(BX*8), X0
	VMOVSD 8(SI)(BX*8), X1
	VMOVSD 16(SI)(BX*8), X2
	VMULSD X10, X0, X3
	VMULSD X11, X1, X5
	VADDSD X5, X3, X3
	VMULSD X12, X2, X5
	VADDSD X5, X3, X3
	VMOVSD (DI)(BX*8), X5
	VADDSD X3, X5, X5
	VMOVSD X5, (DI)(BX*8)
	VMULSD X13, X0, X4
	VMULSD X14, X1, X5
	VADDSD X5, X4, X4
	VMULSD X15, X2, X5
	VADDSD X5, X4, X4
	VMOVSD (R13)(BX*8), X5
	VADDSD X4, X5, X5
	VMOVSD X5, (R13)(BX*8)
	INCQ BX
	JMP f2tail
f2nextrow:
	ADDQ R10, DI
	ADDQ R10, R13
	ADDQ R11, SI
	DECQ R8
	JNZ f2rowloop
	VZEROUPPER
	RET

package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type section struct {
	Correct []int `json:"correct"`
	Done    bool  `json:"done"`
}

func TestOpenFreshPutGetReload(t *testing.T) {
	dir := t.TempDir()
	st, resumed, err := Open(dir, "capsnet-mnist-like-quick", 42, Fingerprint("opts-v1"))
	if err != nil || resumed {
		t.Fatalf("fresh open: resumed=%v err=%v", resumed, err)
	}
	if st.Get("sweep-1", &section{}) {
		t.Fatal("fresh store reported a section")
	}
	want := section{Correct: []int{3, 1, 4}, Done: true}
	if err := st.Put("sweep-1", want); err != nil {
		t.Fatal(err)
	}

	// A fresh handle (new process) must see the persisted section.
	st2, resumed, err := Open(dir, "capsnet-mnist-like-quick", 42, Fingerprint("opts-v1"))
	if err != nil || !resumed {
		t.Fatalf("reopen: resumed=%v err=%v", resumed, err)
	}
	var got section
	if !st2.Get("sweep-1", &got) {
		t.Fatal("section lost across reopen")
	}
	if !got.Done || len(got.Correct) != 3 || got.Correct[2] != 4 {
		t.Fatalf("section = %+v", got)
	}
}

func TestKeyMismatchIgnoresFile(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := Open(dir, "b", 1, Fingerprint("a"))
	if err := st.Put("x", section{Done: true}); err != nil {
		t.Fatal(err)
	}
	// Different fingerprint → same options key no longer matches; the
	// old state must not leak into the new run.
	st2, resumed, err := Open(dir, "b", 1, Fingerprint("b"))
	if err != nil {
		t.Fatal(err)
	}
	if resumed || st2.Get("x", &section{}) {
		t.Fatal("mismatched fingerprint resumed stale state")
	}
	// Same goes for seed.
	st3, resumed, _ := Open(dir, "b", 2, Fingerprint("a"))
	if resumed || st3.Get("x", &section{}) {
		t.Fatal("mismatched seed resumed stale state")
	}
}

func TestCorruptFileReportsErrorButStaysUsable(t *testing.T) {
	dir := t.TempDir()
	path := Path(dir, "b", 1, Fingerprint("a"))
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, resumed, err := Open(dir, "b", 1, Fingerprint("a"))
	if err == nil || resumed {
		t.Fatalf("corrupt file: resumed=%v err=%v", resumed, err)
	}
	// The fresh store still works and overwrites the corrupt file.
	if err := st.Put("x", section{Done: true}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, "b", 1, Fingerprint("a")); err != nil {
		t.Fatalf("overwritten checkpoint still corrupt: %v", err)
	}
}

func TestAtomicSaveLeavesNoTempFile(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := Open(dir, "b", 1, Fingerprint("a"))
	if err := st.Put("x", section{}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestPathSanitizesName(t *testing.T) {
	p := Path("d", "caps net/µ", 1, "f")
	if base := filepath.Base(p); strings.ContainsAny(base, " /µ") {
		t.Fatalf("unsanitized path %q", base)
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	if Fingerprint("a") != Fingerprint("a") {
		t.Fatal("fingerprint not deterministic")
	}
	if Fingerprint("a") == Fingerprint("b") {
		t.Fatal("distinct inputs collided")
	}
	if len(Fingerprint("a")) != 16 {
		t.Fatalf("fingerprint length %d", len(Fingerprint("a")))
	}
}

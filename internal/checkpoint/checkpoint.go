// Package checkpoint persists completed analysis work so interrupted
// runs resume without recomputation. A Store is a single versioned JSON
// file keyed by (name, seed, options-fingerprint); callers persist
// opaque sections ("clean", "groups", "sweep-<n>", …) as they complete
// and read them back on restart. Because the key fingerprints every
// results-affecting option and the sweep engine is counter-seeded, a
// resumed run reproduces an uninterrupted one bit-for-bit.
//
// Writes are crash-safe: the file is rewritten to a temporary sibling
// and renamed into place, so a checkpoint is either the previous
// consistent state or the new one, never a torn write. A file whose
// (name, seed, fingerprint) no longer matches — the options changed —
// is ignored and overwritten on the next Put.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Version is the checkpoint file schema version. Files with a different
// version are ignored (treated as absent), never migrated.
const Version = 1

// state is the on-disk form of a Store.
type state struct {
	Version     int                        `json:"version"`
	Name        string                     `json:"name"`
	Seed        uint64                     `json:"seed"`
	Fingerprint string                     `json:"fingerprint"`
	Sections    map[string]json.RawMessage `json:"sections"`
}

// Store is one checkpoint file. Methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	path  string
	state state
}

// Path returns the checkpoint file path for a key, without touching the
// filesystem.
func Path(dir, name string, seed uint64, fingerprint string) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%s-seed%d-%s.json", sanitize(name), seed, fingerprint))
}

// sanitize keeps file names portable.
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			out[i] = '-'
		}
	}
	return string(out)
}

// Open loads the checkpoint for (name, seed, fingerprint) under dir.
// The returned Store is always usable; resumed reports whether an
// existing matching checkpoint was loaded. A checkpoint whose key does
// not match (the options changed since it was written) is ignored. A
// present-but-corrupt file yields a fresh Store plus the parse error, so
// callers can surface the loss instead of silently recomputing.
func Open(dir, name string, seed uint64, fingerprint string) (st *Store, resumed bool, err error) {
	st = &Store{
		path: Path(dir, name, seed, fingerprint),
		state: state{
			Version: Version, Name: name, Seed: seed, Fingerprint: fingerprint,
			Sections: map[string]json.RawMessage{},
		},
	}
	data, err := os.ReadFile(st.path)
	if errors.Is(err, fs.ErrNotExist) {
		return st, false, nil
	}
	if err != nil {
		return st, false, fmt.Errorf("checkpoint: read %s: %w", st.path, err)
	}
	var loaded state
	if err := json.Unmarshal(data, &loaded); err != nil {
		return st, false, fmt.Errorf("checkpoint: corrupt file %s: %w", st.path, err)
	}
	if loaded.Version != Version || loaded.Name != name ||
		loaded.Seed != seed || loaded.Fingerprint != fingerprint {
		return st, false, nil
	}
	if loaded.Sections == nil {
		loaded.Sections = map[string]json.RawMessage{}
	}
	st.state = loaded
	return st, true, nil
}

// Path returns the file this store persists to.
func (s *Store) Path() string { return s.path }

// Get unmarshals the named section into v, reporting whether the
// section exists and decoded cleanly.
func (s *Store) Get(key string, v any) bool {
	s.mu.Lock()
	raw, ok := s.state.Sections[key]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, v) == nil
}

// Put stores v under key and atomically rewrites the checkpoint file.
func (s *Store) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encode section %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state.Sections[key] = raw
	return s.save()
}

// save writes the whole state via a temp file + rename (crash-safe).
// Callers hold s.mu.
func (s *Store) save() error {
	data, err := json.MarshalIndent(&s.state, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(s.path), 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Fingerprint hashes a canonical description of the results-affecting
// configuration into a short stable hex key (FNV-1a 64).
func Fingerprint(canonical string) string {
	h := fnv.New64a()
	h.Write([]byte(canonical))
	return fmt.Sprintf("%016x", h.Sum64())
}

package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"redcane/internal/approx"
	"redcane/internal/noise"
)

func TestRefineMeetsTargetByUpgrading(t *testing.T) {
	a := sharedAnalyzer(t)
	clean := a.CleanAccuracy()
	profiles := ProfileLibrary(approx.Uniform{}, 9, 2000, 3)

	// Deliberately bad starting design: the crudest component everywhere.
	sorted := append([]ComponentProfile(nil), profiles...)
	worst := sorted[0]
	for _, p := range sorted {
		if p.NM > worst.NM {
			worst = p
		}
	}
	var choices []Choice
	for _, g := range noise.Groups() {
		for _, s := range a.ExtractGroups()[g] {
			choices = append(choices, Choice{
				Site: s, Component: worst.Component, ComponentNM: worst.NM,
			})
		}
	}

	res, err := a.Refine(context.Background(), choices, profiles, clean, 0.05, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("refinement did not reach target: final acc %.3f vs clean %.3f (%d steps)",
			res.Accuracy, clean, len(res.Steps))
	}
	if len(res.Steps) == 0 {
		t.Fatal("expected at least one upgrade from the all-worst design")
	}
	// Upgrades must move to lower-NM components.
	for _, s := range res.Steps {
		if s.From == s.To {
			t.Fatalf("no-op upgrade: %+v", s)
		}
	}
	if out := FormatRefine(res); !strings.Contains(out, "target met: true") {
		t.Fatalf("format broken:\n%s", out)
	}
}

func TestRefineNoopWhenAlreadyGood(t *testing.T) {
	a := sharedAnalyzer(t)
	clean := a.CleanAccuracy()
	profiles := ProfileLibrary(approx.Uniform{}, 9, 2000, 3)
	// All-exact design: already meets any target.
	exact := profiles[0]
	var choices []Choice
	for _, g := range noise.Groups() {
		for _, s := range a.ExtractGroups()[g] {
			choices = append(choices, Choice{Site: s, Component: exact.Component, ComponentNM: 0})
		}
	}
	res, err := a.Refine(context.Background(), choices, profiles, clean, 0.02, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || len(res.Steps) != 0 {
		t.Fatalf("all-exact design should pass immediately: %+v", res)
	}
}

func TestRefineGivesUpAtExact(t *testing.T) {
	a := sharedAnalyzer(t)
	profiles := ProfileLibrary(approx.Uniform{}, 9, 2000, 3)
	exact := profiles[0]
	var choices []Choice
	for _, g := range noise.Groups() {
		for _, s := range a.ExtractGroups()[g] {
			choices = append(choices, Choice{Site: s, Component: exact.Component, ComponentNM: 0})
		}
	}
	// Impossible target (above clean accuracy + 1): loop must terminate
	// without panicking and report Met=false.
	res, err := a.Refine(context.Background(), choices, profiles, 2.0, 0.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("impossible target reported as met")
	}
}

func TestReportJSONExport(t *testing.T) {
	a := sharedAnalyzer(t)
	profiles := ProfileLibrary(approx.Uniform{}, 9, 2000, 3)
	r := a.Run(profiles)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if decoded["network"] != "capsnet" {
		t.Fatalf("network field = %v", decoded["network"])
	}
	choices, ok := decoded["choices"].([]any)
	if !ok || len(choices) == 0 {
		t.Fatalf("choices missing: %v", decoded["choices"])
	}
	first := choices[0].(map[string]any)
	for _, key := range []string{"layer", "group", "component", "power_uw"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("choice missing %q: %v", key, first)
		}
	}
}

package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"redcane/internal/axe"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

func TestSweepProbesInert(t *testing.T) {
	// The tentpole inertness guarantee: enabling probes changes no
	// result bit. Same sweep, probes off vs on — identical points; and
	// with checkpointing, byte-identical checkpoint files.
	filter := noise.ForGroup(noise.MACOutputs)
	const clean = 0.9

	dirOff := t.TempDir()
	off := derived(t)
	st, _ := resumeStore(t, dirOff, off.Opts)
	off.Checkpoint = st
	want := mustSweep(t, off, filter, clean, 11)

	dirOn := t.TempDir()
	on := derived(t)
	st2, _ := resumeStore(t, dirOn, on.Opts)
	on.Checkpoint = st2
	on.Probes = NewProbeSet()
	on.ProbeLabel = "groups/mac"
	got := mustSweep(t, on, filter, clean, 11)

	samePoints(t, "probes on vs off", want, got)
	sameDirBytes(t, dirOff, dirOn)

	// And the probes actually recorded something useful.
	sweeps := on.Probes.Sweeps()
	if len(sweeps) != 1 || sweeps[0].Label != "groups/mac" || sweeps[0].Backend != "float" {
		t.Fatalf("sweeps = %+v", sweeps)
	}
	if len(sweeps[0].Points) == 0 {
		t.Fatal("no probe points")
	}
	for _, pt := range sweeps[0].Points {
		if len(pt.Layers) == 0 {
			t.Fatalf("point NM=%g has no layers", pt.NM)
		}
		for _, l := range pt.Layers {
			if l.Count == 0 || l.Min > l.Max {
				t.Fatalf("bad layer stats %+v", l)
			}
			if l.RefCount != l.Count {
				t.Fatalf("layer %s: reference covered %d of %d", l.Layer, l.RefCount, l.Count)
			}
			if l.Overflow != 0 {
				t.Fatalf("float path reported overflow: %+v", l)
			}
		}
	}
}

// sameDirBytes compares every regular file under two directories.
func sameDirBytes(t *testing.T, a, b string) {
	t.Helper()
	la := listFiles(t, a)
	lb := listFiles(t, b)
	if !reflect.DeepEqual(la, lb) {
		t.Fatalf("file sets differ: %v vs %v", la, lb)
	}
	for _, rel := range la {
		da, err := os.ReadFile(filepath.Join(a, rel))
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(b, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Fatalf("checkpoint file %s differs with probes on", rel)
		}
	}
}

func listFiles(t *testing.T, root string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.Mode().IsRegular() {
			rel, _ := filepath.Rel(root, path)
			out = append(out, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSweepProbesWorkerInvariant(t *testing.T) {
	// Probe aggregation merges per-job recorders in ascending job order,
	// so the emitted stats — float sums included — must be bit-identical
	// for any worker count.
	filter := noise.ForGroup(noise.MACOutputs)
	const clean = 0.9
	run := func(workers int) []ProbeSweep {
		a := derived(t)
		a.Opts.Workers = workers
		a.Probes = NewProbeSet()
		mustSweep(t, a, filter, clean, 13)
		return a.Probes.Sweeps()
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d probe stats diverge:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}

func TestJobCorrectHistogramWorkerInvariant(t *testing.T) {
	// The sweep.job_correct value histogram is observed in the
	// deterministic merge loop, so its buckets (and sum: a fixed-order
	// float accumulation) must be identical across worker counts.
	filter := noise.ForGroup(noise.Softmax)
	const clean = 0.9
	run := func(workers int) obs.HistogramStats {
		a := derived(t)
		a.Opts.Workers = workers
		a.Obs = obs.New(obs.Off, nil)
		mustSweep(t, a, filter, clean, 17)
		return a.Obs.Metrics().Histogram("sweep.job_correct").Stats()
	}
	want := run(1)
	if want.Count == 0 {
		t.Fatal("job_correct histogram empty")
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d histogram diverges:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}

func TestEvalBackendProbes(t *testing.T) {
	// Backend evaluations probe too: QuantExact is its own baseline
	// (stats only, no reference pass), QuantApprox gets a reference pass
	// against QuantExact at the same width. Probing must not change the
	// measured accuracy.
	a := derived(t)
	be := axe.QuantExact{Bits: 8}
	want, err := a.EvalBackend(context.Background(), be, "probe-eval")
	if err != nil {
		t.Fatal(err)
	}

	b := derived(t)
	b.Probes = NewProbeSet()
	got, err := b.EvalBackend(context.Background(), be, "probe-eval")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("probed accuracy %g != %g", got, want)
	}
	sweeps := b.Probes.Sweeps()
	if len(sweeps) != 1 || sweeps[0].Backend != be.Name() || len(sweeps[0].Points) != 1 {
		t.Fatalf("sweeps = %+v", sweeps)
	}
	if sweeps[0].Label != "backend/"+be.Name() {
		t.Fatalf("label = %q", sweeps[0].Label)
	}
	for _, l := range sweeps[0].Points[0].Layers {
		// Same-name baseline: no reference pass, stats only.
		if l.RefCount != 0 || l.Count == 0 {
			t.Fatalf("QuantExact probe layer = %+v", l)
		}
	}

	// An approximate design gets SQNR against its exact baseline.
	c := derived(t)
	c.Probes = NewProbeSet()
	dbe := designBackend(t, c)
	if _, err := c.EvalBackend(context.Background(), dbe, "probe-eval-approx"); err != nil {
		t.Fatal(err)
	}
	ds := c.Probes.Sweeps()
	if len(ds) != 1 {
		t.Fatalf("sweeps = %+v", ds)
	}
	sawRef := false
	for _, l := range ds[0].Points[0].Layers {
		if l.RefCount > 0 {
			sawRef = true
		}
	}
	if !sawRef {
		t.Fatal("approximate backend probes carry no reference comparison")
	}
}

package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"redcane/internal/approx"
	"redcane/internal/axe"
	"redcane/internal/caps"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

func TestWithDefaultsNormalizesNMSweep(t *testing.T) {
	// Callers may hand the grid in any order; SelectComponents and the
	// resilience marking assume NMSweep[0] is the maximum.
	o := Options{NMSweep: []float64{0.1, 0.5, -1, 0.5, 0, 0.25}}.WithDefaults()
	want := []float64{0.5, 0.25, 0.1, 0}
	if !reflect.DeepEqual(o.NMSweep, want) {
		t.Fatalf("normalized grid = %v, want %v", o.NMSweep, want)
	}
	// An already-normalized grid round-trips unchanged, keeping default
	// fingerprints stable.
	o2 := Options{NMSweep: append([]float64(nil), PaperNMSweep...)}.WithDefaults()
	if !reflect.DeepEqual(o2.NMSweep, PaperNMSweep) {
		t.Fatalf("paper grid changed: %v", o2.NMSweep)
	}
	// A grid with nothing usable falls back to the paper default instead
	// of leaving an empty sweep.
	o3 := Options{NMSweep: []float64{-3, -0.5}}.WithDefaults()
	if !reflect.DeepEqual(o3.NMSweep, PaperNMSweep) {
		t.Fatalf("all-negative grid = %v, want paper default", o3.NMSweep)
	}
}

func TestExtractGroupsMemoized(t *testing.T) {
	// Step 1's instrumented forward pass runs once per analyzer; repeated
	// callers (SelectComponents per site, Refine, experiments) share it.
	a := derived(t)
	a.sites = nil
	g1 := a.ExtractGroups()
	g2 := a.ExtractGroups()
	if reflect.ValueOf(g1).Pointer() != reflect.ValueOf(g2).Pointer() {
		t.Fatal("ExtractGroups rebuilt the site map on a repeated call")
	}
}

func TestMACAssignmentsOnlyMACSites(t *testing.T) {
	choices := []Choice{
		{Site: noise.Site{Layer: "Conv1", Group: noise.MACOutputs},
			Component: approx.Component{Name: "drum6", Model: approx.DRUM{K: 6}}},
		{Site: noise.Site{Layer: "Conv1", Group: noise.Activations},
			Component: approx.Component{Name: "relu-approx", Model: approx.OperandTrunc{ABits: 4, BBits: 4}}},
		{Site: noise.Site{Layer: "ClassCaps", Group: noise.MACOutputs},
			Component: approx.Component{Name: "exact", Model: approx.Exact{}}},
	}
	got := MACAssignments(choices)
	if len(got) != 2 {
		t.Fatalf("assignments = %v, want Conv1 and ClassCaps only", got)
	}
	if _, ok := got["Conv1"].(approx.DRUM); !ok {
		t.Fatalf("Conv1 = %#v", got["Conv1"])
	}
	// Exact choices stay in the map (the backend drops them) so the keys
	// cover every MAC layer of the design.
	if _, ok := got["ClassCaps"].(approx.Exact); !ok {
		t.Fatalf("ClassCaps = %#v", got["ClassCaps"])
	}
}

// designBackend builds a small approximate design over the fixture's MAC
// sites for the EvalBackend tests.
func designBackend(t *testing.T, a *Analyzer) caps.Backend {
	t.Helper()
	macs := a.ExtractGroups()[noise.MACOutputs]
	if len(macs) == 0 {
		t.Fatal("fixture has no MAC sites")
	}
	// Approximate the last MAC layer so the backend has a non-trivial
	// exact prefix (several windows to cache, checkpoint and resume).
	choices := []Choice{{
		Site:      macs[len(macs)-1],
		Component: approx.Component{Name: "drum6", Model: approx.DRUM{K: 6}},
	}}
	be, err := DesignBackend(choices, 8)
	if err != nil {
		t.Fatal(err)
	}
	return be
}

func TestEvalBackendMatchesAccuracyExec(t *testing.T) {
	// EvalBackend is the sweep-engine form of caps.AccuracyExec: same
	// samples, same backend, same result — the windows, workers and
	// prefix replay must not change the measurement.
	a := derived(t)
	be := axe.QuantExact{Bits: 8}
	got, err := a.EvalBackend(context.Background(), be, "eval-vs-accuracy")
	if err != nil {
		t.Fatal(err)
	}
	x, y := a.evalData()
	want, err := caps.AccuracyExec(context.Background(), a.Net, x, y, noise.None{}, be, a.Opts.Batch, a.Opts.Workers)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("EvalBackend = %g, AccuracyExec = %g", got, want)
	}
}

func TestEvalBackendWorkerInvariant(t *testing.T) {
	a := derived(t)
	be := designBackend(t, a)
	a.Opts.Workers = 1
	want, err := a.EvalBackend(context.Background(), be, "workers")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		b := derived(t)
		b.Opts.Workers = workers
		got, err := b.EvalBackend(context.Background(), be, "workers")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d accuracy %g != %g", workers, got, want)
		}
	}
}

func TestEvalBackendResumeMatchesUninterrupted(t *testing.T) {
	// Interrupt a backend evaluation after its first window, resume from
	// the checkpoint, and the final accuracy must be bit-identical to an
	// uninterrupted run.
	dir := t.TempDir()
	const section = "validate-test"

	want := derived(t)
	want.Opts.PrefixCacheMB = -1
	be := designBackend(t, want)
	wantAcc, err := want.EvalBackend(context.Background(), be, section)
	if err != nil {
		t.Fatal(err)
	}

	a := derived(t)
	a.Opts.PrefixCacheMB = -1
	st, resumed := resumeStore(t, dir, a.Opts)
	if resumed {
		t.Fatal("fresh store reported resumed")
	}
	a.Checkpoint = st
	ctx, cancel := context.WithCancel(context.Background())
	a.afterWindow = func(done, total int) {
		if done == 1 {
			cancel()
		}
	}
	if _, err := a.EvalBackend(ctx, be, section); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted eval error = %v", err)
	}

	b := derived(t)
	b.Opts.PrefixCacheMB = -1
	b.Obs = obs.New(obs.Off, nil)
	st2, resumed := resumeStore(t, dir, b.Opts)
	if !resumed {
		t.Fatal("store with checkpointed data reported fresh")
	}
	b.Checkpoint = st2
	gotAcc, err := b.EvalBackend(context.Background(), be, section)
	if err != nil {
		t.Fatal(err)
	}
	if gotAcc != wantAcc {
		t.Fatalf("resumed accuracy %g != uninterrupted %g", gotAcc, wantAcc)
	}
}

func TestPickChainLen(t *testing.T) {
	cases := []struct{ depth, want int }{
		{9, 9}, {81, 81}, {20, 9}, {500, 81}, {0, 9}, {1, 9},
	}
	for _, c := range cases {
		if got := PickChainLen(LibraryChainLens, c.depth); got != c.want {
			t.Errorf("PickChainLen(%v, %d) = %d, want %d", LibraryChainLens, c.depth, got, c.want)
		}
	}
	// An empty availability list returns the depth itself.
	if got := PickChainLen(nil, 50); got != 50 {
		t.Errorf("empty library = %d, want 50", got)
	}
}

func TestProfilesForDepth(t *testing.T) {
	mk := func(name string, cl int) ComponentProfile {
		return ComponentProfile{Component: approx.Component{Name: name}, ChainLen: cl}
	}
	profiles := []ComponentProfile{mk("a9", 9), mk("a81", 81), mk("agnostic", 0), mk("b9", 9)}
	deep := profilesForDepth(profiles, 200)
	names := map[string]bool{}
	for _, p := range deep {
		names[p.Component.Name] = true
	}
	if !names["a81"] || !names["agnostic"] || names["a9"] || names["b9"] {
		t.Fatalf("depth 200 subset = %v", names)
	}
	// Unknown depth or a single-depth library returns the input unchanged.
	if got := profilesForDepth(profiles, 0); len(got) != len(profiles) {
		t.Fatalf("depth 0 filtered to %d profiles", len(got))
	}
	single := []ComponentProfile{mk("a9", 9), mk("b9", 9)}
	if got := profilesForDepth(single, 200); len(got) != 2 {
		t.Fatalf("single-depth library filtered to %d profiles", len(got))
	}
}

package core

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"redcane/internal/checkpoint"
	"redcane/internal/noise"
	"redcane/internal/obs"
	"redcane/internal/tensor"
)

func TestRunJobsRecoversPanicSerial(t *testing.T) {
	err := runJobs(context.Background(), nil, 1, 6, func(j int, _ *tensor.Scratch) {
		if j == 3 {
			panic("boom")
		}
	})
	var wp *workerPanic
	if !errors.As(err, &wp) {
		t.Fatalf("error = %v, want *workerPanic", err)
	}
	if wp.Job != 3 || wp.Value != "boom" || len(wp.Stack) == 0 {
		t.Fatalf("panic capture = %+v", wp)
	}
}

func TestRunJobsRecoversPanicParallel(t *testing.T) {
	var ran atomic.Int64
	err := runJobs(context.Background(), nil, 4, 64, func(j int, _ *tensor.Scratch) {
		ran.Add(1)
		if j == 10 {
			panic("kaboom")
		}
	})
	var wp *workerPanic
	if !errors.As(err, &wp) {
		t.Fatalf("error = %v, want *workerPanic", err)
	}
	if wp.Value != "kaboom" {
		t.Fatalf("panic value = %v", wp.Value)
	}
	// Dispatch stops once a panic is recorded: far fewer than all jobs run.
	if n := ran.Load(); n == 0 || n > 64 {
		t.Fatalf("ran = %d jobs", n)
	}
}

func TestRunJobsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := runJobs(ctx, nil, 2, 1000, func(j int, _ *tensor.Scratch) {
		if ran.Add(1) == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch: ran %d", n)
	}
}

// panicAfter returns a MAC-outputs filter that panics once it has been
// consulted more than n times. InjectionFrontier probes the filter outside
// the worker pool, so n must exceed one frontier scan; the overflow then
// fires inside a sweep worker's injection path.
func panicAfter(n int64) noise.Filter {
	var calls atomic.Int64
	inner := noise.ForGroup(noise.MACOutputs)
	return func(s noise.Site) bool {
		if calls.Add(1) > n {
			panic("injector exploded")
		}
		return inner(s)
	}
}

func TestSweepSurfacesWorkerPanicWithCoordinates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		a := derived(t)
		a.Opts.Workers = workers
		_, err := a.sweep(context.Background(), panicAfter(50), 0.9, 1)
		var jp *JobPanicError
		if !errors.As(err, &jp) {
			t.Fatalf("workers=%d: error = %v, want *JobPanicError", workers, err)
		}
		if jp.Point < 0 || jp.Point >= len(a.Opts.NMSweep) ||
			jp.Trial < 0 || jp.Trial >= a.Opts.Trials || jp.Batch < 0 {
			t.Fatalf("workers=%d: coordinates out of range: %+v", workers, jp)
		}
		if jp.NM != a.Opts.NMSweep[jp.Point] {
			t.Fatalf("workers=%d: NM %g does not match point %d", workers, jp.NM, jp.Point)
		}
		msg := jp.Error()
		for _, want := range []string{"worker panic", "point=", "trial=", "batch=", "injector exploded"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("workers=%d: error message missing %q: %s", workers, want, msg)
			}
		}
	}
}

func TestSweepCancelledMidRunReturnsContextError(t *testing.T) {
	a := derived(t)
	a.Opts.PrefixCacheMB = -1 // single-batch windows: several cancellation points
	ctx, cancel := context.WithCancel(context.Background())
	var windows int
	a.afterWindow = func(done, total int) {
		windows++
		cancel()
	}
	_, err := a.sweep(ctx, noise.ForGroup(noise.MACOutputs), 0.9, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if windows != 1 {
		t.Fatalf("sweep continued after cancellation: %d windows", windows)
	}
}

// resumeStore opens a checkpoint store in dir for the derived fixture.
func resumeStore(t *testing.T, dir string, opts Options) (*checkpoint.Store, bool) {
	t.Helper()
	st, resumed, err := checkpoint.Open(dir, "test", 5, opts.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	return st, resumed
}

func TestSweepResumeMatchesUninterrupted(t *testing.T) {
	// The tentpole acceptance test at the engine level: interrupt a sweep
	// after its first batch window, resume it from the checkpoint, and the
	// final points must be bit-identical to an uninterrupted run.
	dir := t.TempDir()
	filter := noise.ForGroup(noise.Softmax)
	const clean = 0.9

	want := derived(t)
	want.Opts.PrefixCacheMB = -1
	wantPts := mustSweep(t, want, filter, clean, 9)

	// Interrupted run: cancel after the first checkpointed window.
	a := derived(t)
	a.Opts.PrefixCacheMB = -1
	st, resumed := resumeStore(t, dir, a.Opts)
	if resumed {
		t.Fatal("fresh store reported resumed")
	}
	a.Checkpoint = st
	ctx, cancel := context.WithCancel(context.Background())
	a.afterWindow = func(done, total int) {
		if done == 1 {
			cancel()
		}
	}
	if _, err := a.sweep(ctx, filter, clean, 9); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error = %v", err)
	}

	// Resumed run: a fresh analyzer over the same store skips the finished
	// window (visible in sweep.resumed_jobs) and completes identically.
	b := derived(t)
	b.Opts.PrefixCacheMB = -1
	b.Obs = obs.New(obs.Off, nil)
	st2, resumed := resumeStore(t, dir, b.Opts)
	if !resumed {
		t.Fatal("store with checkpointed data reported fresh")
	}
	b.Checkpoint = st2
	gotPts := mustSweep(t, b, filter, clean, 9)
	samePoints(t, "resumed vs uninterrupted", wantPts, gotPts)
	if v := b.Obs.Counter("sweep.resumed_jobs").Value(); v <= 0 {
		t.Fatalf("sweep.resumed_jobs = %d, want > 0", v)
	}

	// Fully-finished sweep: a third run resumes the Done state and repeats
	// no jobs at all.
	c := derived(t)
	c.Opts.PrefixCacheMB = -1
	c.Obs = obs.New(obs.Off, nil)
	st3, _ := resumeStore(t, dir, c.Opts)
	c.Checkpoint = st3
	again := mustSweep(t, c, filter, clean, 9)
	samePoints(t, "fully resumed", wantPts, again)
	total := int64(0)
	for _, nm := range c.Opts.NMSweep {
		if nm != 0 {
			total += int64(c.Opts.Trials)
		}
	}
	nb := int64((c.Data.TestX.Shape[0] + c.Opts.Batch - 1) / c.Opts.Batch)
	if v := c.Obs.Counter("sweep.resumed_jobs").Value(); v != total*nb {
		t.Fatalf("fully resumed sweep.resumed_jobs = %d, want %d", v, total*nb)
	}
}

func TestSweepIgnoresCheckpointFromOtherOptions(t *testing.T) {
	// A store opened under a different fingerprint must not leak state: the
	// identity is part of the file key, so Open returns a fresh store.
	dir := t.TempDir()
	a := derived(t)
	st, _ := resumeStore(t, dir, a.Opts)
	a.Checkpoint = st
	mustSweep(t, a, noise.ForGroup(noise.MACOutputs), 0.9, 2)

	b := derived(t)
	b.Opts.Trials = a.Opts.Trials + 1 // results-affecting change
	if fp := b.Opts.Fingerprint(); fp == a.Opts.Fingerprint() {
		t.Fatal("fingerprint ignored Trials")
	}
	_, resumed := resumeStore(t, dir, b.Opts)
	if resumed {
		t.Fatal("checkpoint resumed across a results-affecting options change")
	}
}

func TestAnalyzeGroupsAndLayersResumeFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	a := derived(t)
	st, _ := resumeStore(t, dir, a.Opts)
	a.Checkpoint = st
	ctx := context.Background()
	clean, err := a.CleanAccuracyCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := a.AnalyzeGroups(ctx, clean)
	if err != nil {
		t.Fatal(err)
	}
	layers, err := a.AnalyzeLayers(ctx, groups, clean)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh analyzer over the same store must reproduce every step
	// without scheduling a single sweep.
	b := derived(t)
	b.Obs = obs.New(obs.Off, nil)
	st2, resumed := resumeStore(t, dir, b.Opts)
	if !resumed {
		t.Fatal("store not resumed")
	}
	b.Checkpoint = st2
	clean2, err := b.CleanAccuracyCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if clean2 != clean {
		t.Fatalf("resumed clean accuracy %g != %g", clean2, clean)
	}
	groups2, err := b.AnalyzeGroups(ctx, clean2)
	if err != nil {
		t.Fatal(err)
	}
	layers2, err := b.AnalyzeLayers(ctx, groups2, clean2)
	if err != nil {
		t.Fatal(err)
	}
	if v := b.Obs.Counter("sweep.sweeps").Value(); v != 0 {
		t.Fatalf("resumed analysis ran %d sweeps, want 0", v)
	}
	if len(groups2) != len(groups) || len(layers2) != len(layers) {
		t.Fatalf("resumed shapes differ: %d/%d groups, %d/%d layers",
			len(groups2), len(groups), len(layers2), len(layers))
	}
	for i := range groups {
		if groups2[i].Group != groups[i].Group || groups2[i].Resilient != groups[i].Resilient ||
			groups2[i].ToleratedNM != groups[i].ToleratedNM {
			t.Fatalf("group %d differs: %+v vs %+v", i, groups2[i], groups[i])
		}
		samePoints(t, "resumed group points", groups[i].Points, groups2[i].Points)
	}
	for i := range layers {
		if layers2[i].Layer != layers[i].Layer || layers2[i].Group != layers[i].Group ||
			layers2[i].Resilient != layers[i].Resilient || layers2[i].ToleratedNM != layers[i].ToleratedNM {
			t.Fatalf("layer %d differs: %+v vs %+v", i, layers2[i], layers[i])
		}
		samePoints(t, "resumed layer points", layers[i].Points, layers2[i].Points)
	}
}

func TestRefinedJSONRoundTrip(t *testing.T) {
	base := &Report{
		Network: "capsnet", Dataset: "mnist-like",
		CleanAccuracy: 0.95, ValidatedAccuracy: 0.80, MulEnergySaving: 0.4,
		Groups: []GroupResult{{Group: noise.Softmax, ToleratedNM: 0.5, Resilient: true}},
		Choices: []Choice{{
			Site:        noise.Site{Layer: "ClassCaps", Group: noise.Softmax},
			ComponentNM: 0.3, BudgetNM: 0.5,
		}},
	}
	base.Choices[0].Component.Name = "mul8u_Z"
	ref := RefineResult{
		Choices:  append([]Choice(nil), base.Choices...),
		Accuracy: 0.94,
		Met:      true,
		Steps: []RefineStep{{
			Round: 0, Site: base.Choices[0].Site,
			From: "mul8u_Z", To: "mul8u_Y", Accuracy: 0.94,
		}},
	}
	ref.Choices[0].Component.Name = "mul8u_Y"
	ref.Choices[0].ComponentNM = 0.1

	var b strings.Builder
	if err := WriteRefinedJSON(&b, base, ref); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ValidatedAccuracy float64 `json:"validated_accuracy"`
		Choices           []struct {
			Component string `json:"component"`
		} `json:"choices"`
		Refinement struct {
			Accuracy float64 `json:"accuracy"`
			Met      bool    `json:"met"`
			Steps    []struct {
				Round int    `json:"round"`
				Layer string `json:"layer"`
				From  string `json:"from"`
				To    string `json:"to"`
			} `json:"steps"`
		} `json:"refinement"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	// The refined JSON must carry the POST-refinement design, not the
	// pre-refinement report (the bug this guards against).
	if decoded.ValidatedAccuracy != 0.94 {
		t.Fatalf("validated_accuracy = %g, want the refined 0.94", decoded.ValidatedAccuracy)
	}
	if len(decoded.Choices) != 1 || decoded.Choices[0].Component != "mul8u_Y" {
		t.Fatalf("choices = %+v, want the upgraded component", decoded.Choices)
	}
	if !decoded.Refinement.Met || decoded.Refinement.Accuracy != 0.94 {
		t.Fatalf("refinement = %+v", decoded.Refinement)
	}
	if len(decoded.Refinement.Steps) != 1 || decoded.Refinement.Steps[0].To != "mul8u_Y" {
		t.Fatalf("steps = %+v", decoded.Refinement.Steps)
	}

	// With no repair steps the trace must render as [] rather than null.
	var empty strings.Builder
	if err := WriteRefinedJSON(&empty, base, RefineResult{Choices: base.Choices, Accuracy: 0.8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), `"steps": []`) {
		t.Fatalf("empty steps not rendered as []:\n%s", empty.String())
	}
}

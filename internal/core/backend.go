package core

import (
	"context"
	"errors"
	"fmt"

	"redcane/internal/approx"
	"redcane/internal/axe"
	"redcane/internal/caps"
	"redcane/internal/noise"
	"redcane/internal/obs"
	"redcane/internal/tensor"
)

// This file closes the methodology's model-vs-reality loop: a Step 6
// design (a []Choice) compiles into an execution backend that runs the
// chosen multipliers bit-accurately, and EvalBackend measures it with
// the same engine the noise sweeps use — workers, prefix caching over
// the exact prefix before the first approximate site, checkpoint/resume,
// and telemetry spans.

// MACAssignments extracts a design's per-layer multiplier assignments:
// the MAC-output choices, which are the only Table III group a
// multiplier substitution physically realizes (softmax, activations and
// logits-update approximations live in other datapath units). Exact
// assignments are kept — the backend drops them itself — so the map's
// keys cover every MAC layer of the design.
func MACAssignments(choices []Choice) map[string]approx.Multiplier {
	out := map[string]approx.Multiplier{}
	for _, c := range choices {
		if c.Site.Group != noise.MACOutputs {
			continue
		}
		out[c.Site.Layer] = c.Component.Model
	}
	return out
}

// DesignBackend compiles a selected design into a bit-accurate execution
// backend: b-bit quantized MACs with each layer's chosen approximate
// multiplier (exact choices and non-MAC sites run the exact quantized
// path).
func DesignBackend(choices []Choice, bits uint) (caps.Backend, error) {
	return axe.NewQuantApprox(bits, MACAssignments(choices))
}

// EvalBackend measures test accuracy under the given execution backend.
// It mirrors the sweep engine's evaluation loop: batches run as
// independent jobs over the worker pool (bit-identical for any worker
// count), the exact prefix before the backend's first approximate layer
// is computed once per window and replayed, cancellation stops at a
// window boundary, and with a non-nil a.Checkpoint the per-window
// correct-counts persist under the given section key so an interrupted
// evaluation resumes where it left off. Distinct backends must use
// distinct section keys.
func (a *Analyzer) EvalBackend(ctx context.Context, be caps.Backend, section string) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if be == nil {
		be = caps.Float{}
	}
	a.Opts = a.Opts.WithDefaults()
	o := a.Opts
	// The analyzer's softmax/squash variants apply to backend evaluations
	// too, so a design measured under an approximate nonlinearity is
	// compared against sweeps run under the same one.
	be, err := a.execBackend(be)
	if err != nil {
		return 0, err
	}
	x, y := a.evalData()
	n := x.Shape[0]
	if n == 0 {
		return 0, nil
	}
	nb := (n + o.Batch - 1) / o.Batch
	frontier := a.Net.BackendFrontier(be)

	sp := a.Obs.StartSpan("backend.eval",
		obs.F("backend", be.Name()), obs.F("frontier", frontier), obs.F("section", section))
	defer sp.End()

	// Numeric-health probes (opt-in, inert): the reference for SQNR is
	// the backend's own exact baseline (caps.Baseliner) — e.g. QuantExact
	// at the same wordlength for a QuantApprox design. A backend that is
	// its own baseline skips the reference pass; its probes carry ranges,
	// moments and overflow counts only. Probing bypasses the prefix
	// replay (jobs run the full forward, which the replay guarantee makes
	// bit-identical) so every layer's MAC outputs cross the probe seam,
	// not just the suffix after the first approximate site.
	probing := a.Probes != nil
	var probeAcc *probeAccum
	var refBe caps.Backend
	if probing {
		probeAcc = newProbeAccum()
		refBe = be
		if bl, ok := be.(caps.Baseliner); ok {
			refBe = bl.ExactBaseline()
		}
		frontier = 0
	}

	correct := make([]int, 1)
	startBatch := 0
	if a.Checkpoint != nil {
		var st sweepState
		if a.Checkpoint.Get(section, &st) && len(st.Correct) == 1 &&
			st.BatchesDone >= 0 && st.BatchesDone <= nb {
			copy(correct, st.Correct)
			startBatch = st.BatchesDone
			if st.Done {
				startBatch = nb
			}
			a.Obs.Info("backend eval resumed from checkpoint",
				obs.F("section", section),
				obs.F("batches", fmt.Sprintf("%d/%d", startBatch, nb)))
			if probing && startBatch > 0 {
				// Probe stats are never checkpointed, so they can only
				// cover the windows this process actually runs.
				a.Obs.Warn("probe stats cover only the un-resumed windows",
					obs.F("section", section), obs.F("skipped_batches", startBatch))
			}
		}
	}

	window := a.prefixWindow(frontier, nb)
	for b0 := startBatch; b0 < nb; b0 += window {
		if err := ctx.Err(); err != nil {
			a.Obs.Warn("backend eval cancelled",
				obs.F("section", section),
				obs.F("batches", fmt.Sprintf("%d/%d", b0, nb)))
			return 0, err
		}
		b1 := b0 + window
		if b1 > nb {
			b1 = nb
		}
		acts, err := a.prefixActivations(ctx, frontier, x, b0, b1, nb, be)
		if err != nil {
			return 0, err
		}
		jobCorrect := make([]int, b1-b0)
		var jobProbes []*caps.ProbeRecorder
		if probing {
			jobProbes = make([]*caps.ProbeRecorder, len(jobCorrect))
		}
		err = runJobs(ctx, a.Obs, o.sweepWorkers(), len(jobCorrect), func(j int, s *tensor.Scratch) {
			bi := b0 + j
			var pred []int
			if probing {
				rec := caps.NewProbeRecorder()
				if refBe.Name() != be.Name() {
					rec.StartReference()
					a.Net.ClassifyFromExec(frontier, acts[j], noise.None{}, s, caps.NewProbeBackend(refBe, rec))
				}
				rec.StartObserve()
				pred = a.Net.ClassifyFromExec(frontier, acts[j], noise.None{}, s, caps.NewProbeBackend(be, rec))
				jobProbes[j] = rec
			} else {
				pred = a.Net.ClassifyFromExec(frontier, acts[j], noise.None{}, s, be)
			}
			lo := bi * o.Batch
			c := 0
			for i, p := range pred {
				if p == y[lo+i] {
					c++
				}
			}
			jobCorrect[j] = c
		})
		if err != nil {
			var wp *workerPanic
			if errors.As(err, &wp) {
				return 0, &JobPanicError{Point: -1, Trial: -1, Batch: b0 + wp.Job, Value: wp.Value, Stack: wp.Stack}
			}
			a.Obs.Warn("backend eval cancelled",
				obs.F("section", section),
				obs.F("batches", fmt.Sprintf("%d/%d", b0, nb)))
			return 0, err
		}
		for _, c := range jobCorrect {
			correct[0] += c
		}
		if probing {
			// Ascending job order within ascending windows: bit-identical
			// aggregation for any worker count.
			for _, rec := range jobProbes {
				if rec != nil {
					probeAcc.merge(rec.Layers())
				}
			}
		}
		if a.Checkpoint != nil {
			a.checkpointPut(section, sweepState{Correct: correct, BatchesDone: b1, Done: b1 == nb})
		}
		if a.afterWindow != nil {
			a.afterWindow(b1, nb)
		}
	}
	if a.Checkpoint != nil && startBatch < nb {
		a.checkpointPut(section, sweepState{Correct: correct, BatchesDone: nb, Done: true})
	}
	if probing && len(probeAcc.layers) > 0 {
		label := a.ProbeLabel
		if label == "" {
			label = "backend/" + be.Name()
		}
		a.Probes.add(ProbeSweep{
			Label:   label,
			Backend: be.Name(),
			Points:  []ProbePoint{{NM: 0, Layers: probeAcc.emit()}},
		})
	}
	return float64(correct[0]) / float64(n), nil
}

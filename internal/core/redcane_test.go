package core

import (
	"context"
	"strings"
	"testing"

	"redcane/internal/approx"
	"redcane/internal/caps"
	"redcane/internal/datasets"
	"redcane/internal/models"
	"redcane/internal/noise"
	"redcane/internal/params"
	"redcane/internal/tensor"
	"redcane/internal/train"
)

// trainedAnalyzer builds a small trained CapsNet on a 3-class digit
// problem once, shared across the package's tests.
var shared *Analyzer

func sharedAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	if shared != nil {
		return shared
	}
	full := datasets.MNISTLike(150, 60, 42)
	ds := filterClasses(full, 3)
	spec := models.CapsNet([]int{1, 20, 20}, 3)
	m, err := models.BuildTrainer(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	sz := ds.Channels * ds.H * ds.W
	calib := tensor.NewFrom(ds.TrainX.Data[:16*sz], 16, ds.Channels, ds.H, ds.W)
	train.LSUVInit(m, calib, 0.5)
	res := train.Fit(m, ds, train.Config{Epochs: 10, BatchSize: 12, LR: 2e-3, Seed: 1, GradClip: 5})
	if res.TestAccuracy < 0.8 {
		t.Fatalf("fixture model too weak: %.2f", res.TestAccuracy)
	}
	net, err := models.BuildInference(spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := params.FromParams(m.ParamMap()).LoadInto(net.Params()); err != nil {
		t.Fatal(err)
	}
	shared = &Analyzer{
		Net:  net,
		Data: ds,
		Opts: Options{
			NMSweep:   []float64{0.5, 0.1, 0.01, 0},
			Trials:    2,
			Batch:     20,
			Threshold: 0.02,
			Seed:      5,
		},
	}
	return shared
}

func filterClasses(d *datasets.Dataset, k int) *datasets.Dataset {
	sz := d.Channels * d.H * d.W
	pick := func(x *tensor.Tensor, y []int) (*tensor.Tensor, []int) {
		var idxs []int
		for i, label := range y {
			if label < k {
				idxs = append(idxs, i)
			}
		}
		nx := tensor.New(len(idxs), d.Channels, d.H, d.W)
		ny := make([]int, len(idxs))
		for j, i := range idxs {
			copy(nx.Data[j*sz:], x.Data[i*sz:(i+1)*sz])
			ny[j] = y[i]
		}
		return nx, ny
	}
	out := &datasets.Dataset{
		Name: d.Name, ClassNames: d.ClassNames[:k],
		Channels: d.Channels, H: d.H, W: d.W,
	}
	out.TrainX, out.TrainY = pick(d.TrainX, d.TrainY)
	out.TestX, out.TestY = pick(d.TestX, d.TestY)
	return out
}

func TestExtractGroupsMatchesTableIII(t *testing.T) {
	a := sharedAnalyzer(t)
	groups := a.ExtractGroups()
	// CapsNet: Conv2D (MAC+act), Primary (MAC+act), ClassCaps (all 4).
	if len(groups[noise.MACOutputs]) != 3 {
		t.Fatalf("MAC sites = %v", groups[noise.MACOutputs])
	}
	if len(groups[noise.Activations]) != 3 {
		t.Fatalf("activation sites = %v", groups[noise.Activations])
	}
	if len(groups[noise.Softmax]) != 1 || groups[noise.Softmax][0].Layer != "ClassCaps" {
		t.Fatalf("softmax sites = %v", groups[noise.Softmax])
	}
	if len(groups[noise.LogitsUpdate]) != 1 {
		t.Fatalf("logits sites = %v", groups[noise.LogitsUpdate])
	}
}

func TestGroupwiseResilienceOrdering(t *testing.T) {
	// The paper's headline: routing groups (softmax, logits update)
	// tolerate more noise than MAC outputs.
	a := sharedAnalyzer(t)
	x, y := a.evalData()
	clean := caps.Accuracy(a.Net, x, y, noise.None{}, a.Opts.Batch)
	groups, err := a.AnalyzeGroups(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	tol := map[noise.Group]float64{}
	for _, g := range groups {
		tol[g.Group] = g.ToleratedNM
	}
	if tol[noise.Softmax] < tol[noise.MACOutputs] {
		t.Fatalf("softmax tolerated NM %.3f < MAC %.3f", tol[noise.Softmax], tol[noise.MACOutputs])
	}
	if tol[noise.LogitsUpdate] < tol[noise.MACOutputs] {
		t.Fatalf("logits tolerated NM %.3f < MAC %.3f", tol[noise.LogitsUpdate], tol[noise.MACOutputs])
	}
}

func TestSweepMonotoneAtExtremes(t *testing.T) {
	// Accuracy at the largest NM must not exceed clean accuracy by more
	// than noise jitter, and NM=0 must equal clean accuracy exactly.
	a := sharedAnalyzer(t)
	x, y := a.evalData()
	clean := caps.Accuracy(a.Net, x, y, noise.None{}, a.Opts.Batch)
	pts := mustSweep(t, a, noise.ForGroup(noise.MACOutputs), clean, 1)
	if pts[len(pts)-1].NM != 0 || pts[len(pts)-1].Accuracy != clean {
		t.Fatalf("zero-NM point = %+v, clean %g", pts[len(pts)-1], clean)
	}
	if pts[0].Accuracy > pts[len(pts)-1].Accuracy {
		t.Fatalf("NM=0.5 MAC-output noise did not hurt: %+v", pts)
	}
}

func TestToleratedNM(t *testing.T) {
	pts := []SweepPoint{
		{NM: 0.5, Drop: -0.5},
		{NM: 0.1, Drop: -0.05},
		{NM: 0.01, Drop: -0.005},
		{NM: 0, Drop: 0},
	}
	if got := toleratedNM(pts, 0.01); got != 0.01 {
		t.Fatalf("toleratedNM = %g, want 0.01", got)
	}
	if got := toleratedNM(pts, 0.1); got != 0.1 {
		t.Fatalf("toleratedNM = %g, want 0.1", got)
	}
	if got := toleratedNM(pts, 0.9); got != 0.5 {
		t.Fatalf("toleratedNM = %g, want 0.5", got)
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median of empty != 0")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("median wrong")
	}
}

func TestProfileLibraryCoversAllComponents(t *testing.T) {
	profiles := ProfileLibrary(approx.Uniform{}, 9, 2000, 3)
	if len(profiles) != len(approx.Library()) {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if profiles[0].Component.Name != "mul8u_1JFF" || profiles[0].NM != 0 {
		t.Fatalf("accurate profile = %+v", profiles[0])
	}
}

func TestFullRunReportShape(t *testing.T) {
	a := sharedAnalyzer(t)
	profiles := ProfileLibrary(approx.Uniform{}, 9, 2000, 3)
	r := a.Run(profiles)

	if r.CleanAccuracy < 0.8 {
		t.Fatalf("clean accuracy %.2f", r.CleanAccuracy)
	}
	if len(r.Groups) != 4 {
		t.Fatalf("groups = %d", len(r.Groups))
	}
	// Every site must receive a component.
	siteCount := 0
	for _, g := range noise.Groups() {
		siteCount += len(a.ExtractGroups()[g])
	}
	if len(r.Choices) != siteCount {
		t.Fatalf("choices = %d, sites = %d", len(r.Choices), siteCount)
	}
	// Components must fit their budgets (or be the accurate fallback).
	for _, c := range r.Choices {
		if c.ComponentNM > c.BudgetNM && c.Component.Name != "mul8u_1JFF" {
			t.Fatalf("choice %+v exceeds budget", c)
		}
	}
	// The validated design must not collapse: within 10 pp of clean.
	if r.ValidatedAccuracy < r.CleanAccuracy-0.10 {
		t.Fatalf("validated %.3f vs clean %.3f", r.ValidatedAccuracy, r.CleanAccuracy)
	}
	if r.MulEnergySaving < 0 || r.MulEnergySaving > 1 {
		t.Fatalf("saving = %g", r.MulEnergySaving)
	}

	text := FormatReport(r)
	for _, want := range []string{"clean accuracy", "group-wise resilience", "selected components", "validated accuracy"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

func TestResilientGroupsGetAggressiveComponents(t *testing.T) {
	a := sharedAnalyzer(t)
	profiles := ProfileLibrary(approx.Uniform{}, 9, 2000, 3)
	r := a.Run(profiles)

	power := map[noise.Group]float64{}
	count := map[noise.Group]int{}
	for _, c := range r.Choices {
		power[c.Site.Group] += c.Component.PowerUW
		count[c.Site.Group]++
	}
	avg := func(g noise.Group) float64 { return power[g] / float64(count[g]) }
	// Softmax sites must on average get cheaper components than MAC
	// output sites — the paper's design outcome.
	if avg(noise.Softmax) > avg(noise.MACOutputs) {
		t.Fatalf("softmax avg power %.0f > MAC avg power %.0f", avg(noise.Softmax), avg(noise.MACOutputs))
	}
}

func TestPerSiteInjectorOnlyTouchesConfiguredSites(t *testing.T) {
	inj := noise.NewPerSite(map[noise.Site]noise.Params{
		{Layer: "A", Group: noise.MACOutputs}: {NM: 0.5},
	}, 1)
	x := tensor.New(50).FillUniform(tensor.NewRNG(2), 0, 1)
	before := x.Clone()
	inj.Inject(noise.Site{Layer: "B", Group: noise.MACOutputs}, x)
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			t.Fatal("unconfigured site perturbed")
		}
	}
	inj.Inject(noise.Site{Layer: "A", Group: noise.MACOutputs}, x)
	changed := false
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("configured site not perturbed")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if len(o.NMSweep) != len(PaperNMSweep) || o.Trials != 1 || o.Batch != 32 || o.Threshold != 0.01 {
		t.Fatalf("defaults = %+v", o)
	}
}

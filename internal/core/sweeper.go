package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"redcane/internal/caps"
	"redcane/internal/noise"
	"redcane/internal/obs"
	"redcane/internal/tensor"
)

// This file implements the sweep engine: the hot path of the methodology.
// Steps 2 and 4 re-run full test-set inference for every (group or layer)
// × noise-magnitude point × trial, which dominates the total analysis
// cost (the paper skips resilient groups for exactly this reason). Three
// accelerations apply:
//
//  1. Clean-prefix activation caching. Noise is injected only at the
//     sites selected by the sweep's filter, so every layer before the
//     first active site (the injection frontier) produces bit-identical
//     clean activations at every sweep point and trial. The engine
//     computes each batch's clean activation up to the frontier once and
//     replays only the suffix per evaluation. For late frontiers
//     (ClassCaps-targeted layer sweeps, the softmax / logits-update
//     groups) this skips the bulk of the forward pass.
//  2. Deterministic parallel evaluation. Work is scheduled as
//     independent (sweep point × trial × batch) jobs over a
//     GOMAXPROCS-aware worker pool (Options.Workers). Each job draws its
//     noise from a counter-seeded RNG stream derived from (Options.Seed,
//     sweep-call counter, point, trial, batch index) via
//     noise.StreamSeed, so results are bit-identical for any worker
//     count and any scheduling order.
//  3. Scratch-arena reuse. Each worker owns a tensor.Scratch, so the
//     im2col / product / routing temporaries of repeated suffix forwards
//     recycle instead of churning the garbage collector.
//
// The cache is memory-bounded by Options.PrefixCacheMB: when the whole
// evaluation set's frontier activations fit, they are computed once and
// also retained on the Analyzer for back-to-back sweeps sharing a
// frontier (e.g. the softmax and logits-update group sweeps); otherwise
// batches are processed in windows that fit the bound, re-deriving the
// prefix per window.
//
// The engine is additionally fault-tolerant: a panic inside a worker is
// recovered and surfaced as a *JobPanicError naming the failing (point,
// trial, batch) job instead of crashing the process, cancellation via
// context stops dispatch at a batch boundary (in-flight jobs drain), and
// when the Analyzer carries a checkpoint.Store each completed batch
// window persists its per-(point, trial) correct-counts so a restarted
// run resumes bit-identically where it left off.

// prefixCache retains the clean activations at one frontier for the whole
// evaluation set, one tensor per batch. base is the producing backend's
// BaseID: backends sharing a baseline produce bit-identical prefixes, so
// a cache keyed (frontier, base) is shared across designs with the same
// exact arithmetic (e.g. every 8-bit quantized design), but never across
// arithmetic families (float vs quant8).
type prefixCache struct {
	frontier int
	base     string
	acts     []*tensor.Tensor
}

// sweepWorkers resolves the configured worker bound.
func (o Options) sweepWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// JobPanicError reports a panic recovered inside a sweep-engine worker,
// carrying the coordinates of the failing evaluation job. Point indexes
// Options.NMSweep; Point and Trial are -1 for clean-prefix jobs, which
// evaluate no sweep point.
type JobPanicError struct {
	Point int
	NM    float64
	Trial int
	Batch int
	// Value is the recovered panic value; Stack the worker's stack at
	// the point of the panic.
	Value any
	Stack []byte
}

// Error implements error.
func (e *JobPanicError) Error() string {
	if e.Point < 0 {
		return fmt.Sprintf("sweep: worker panic computing clean prefix of batch %d: %v", e.Batch, e.Value)
	}
	return fmt.Sprintf("sweep: worker panic at point=%d (NM=%g) trial=%d batch=%d: %v",
		e.Point, e.NM, e.Trial, e.Batch, e.Value)
}

// workerPanic is runJobs' internal panic capture; callers translate the
// flat job index into domain coordinates.
type workerPanic struct {
	Job   int
	Value any
	Stack []byte
}

func (e *workerPanic) Error() string {
	return fmt.Sprintf("worker panic on job %d: %v", e.Job, e.Value)
}

// runJobs executes fn(j) for j in [0, jobs) on up to `workers`
// goroutines, handing each worker a private scratch arena. fn must write
// only to its own job's result slot; under that contract the outcome is
// independent of scheduling.
//
// The pool is panic-safe and cancellable: a panic inside fn is recovered
// and returned as a *workerPanic (first one wins; later jobs stop being
// dispatched), and when ctx is cancelled dispatch stops at the next job
// boundary while in-flight jobs drain, returning ctx.Err(). Partial
// results are therefore incomplete whenever runJobs returns non-nil —
// callers must discard them.
//
// With a non-nil o, each worker's busy time (wall time spent inside fn)
// and its scratch arena's traffic are folded into the worker-pool gauges
// after the pool drains; with a nil o the loop is untouched.
func runJobs(ctx context.Context, o *obs.Obs, workers, jobs int, fn func(j int, s *tensor.Scratch)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	m := o.Metrics()
	var start time.Time
	var busy []time.Duration
	if m != nil {
		start = time.Now()
		busy = make([]time.Duration, workers)
	}

	var failed atomic.Bool
	var failMu sync.Mutex
	var fail *workerPanic
	record := func(j int, v any, stack []byte) {
		failMu.Lock()
		if fail == nil {
			fail = &workerPanic{Job: j, Value: v, Stack: stack}
		}
		failMu.Unlock()
		failed.Store(true)
	}

	scratches := make([]*tensor.Scratch, workers)
	runOn := func(w, j int, s *tensor.Scratch) {
		if m != nil {
			t0 := time.Now()
			defer func() { busy[w] += time.Since(t0) }()
		}
		defer func() {
			if v := recover(); v != nil {
				record(j, v, debug.Stack())
			}
		}()
		fn(j, s)
	}
	var cancelErr error
	if workers == 1 {
		s := tensor.NewScratch()
		scratches[0] = s
		for j := 0; j < jobs; j++ {
			if err := ctx.Err(); err != nil {
				cancelErr = err
				break
			}
			if failed.Load() {
				break
			}
			runOn(0, j, s)
		}
	} else {
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := tensor.NewScratch()
				scratches[w] = s
				for j := range ch {
					runOn(w, j, s)
				}
			}(w)
		}
	dispatch:
		for j := 0; j < jobs; j++ {
			if failed.Load() {
				break
			}
			select {
			case ch <- j:
			case <-ctx.Done():
				cancelErr = ctx.Err()
				break dispatch
			}
		}
		close(ch)
		wg.Wait()
	}
	if m != nil {
		wall := time.Since(start)
		var total time.Duration
		for _, b := range busy {
			total += b
		}
		m.Gauge("sweep.workers.busy_ns").Add(float64(total))
		m.Gauge("sweep.workers.wall_ns").Add(float64(wall))
		m.Gauge("sweep.workers.count").Set(float64(workers))
		if wall > 0 && workers > 0 {
			m.Gauge("sweep.workers.utilization").Set(float64(total) / (float64(wall) * float64(workers)))
		}
		var st tensor.ScratchStats
		for _, s := range scratches {
			st = st.Plus(s.Stats())
		}
		m.Gauge("tensor.scratch.takes").Add(float64(st.Takes))
		m.Gauge("tensor.scratch.reuses").Add(float64(st.Reuses))
		m.Gauge("tensor.scratch.allocs").Add(float64(st.Allocs))
		m.Gauge("tensor.scratch.alloc_bytes").Add(float64(st.AllocBytes))
	}
	if fail != nil {
		return fail
	}
	return cancelErr
}

// prefixBytesPerBatch estimates the byte size of one batch's clean
// activation at the frontier from the layers' static shape arithmetic.
func (a *Analyzer) prefixBytesPerBatch(frontier, batch int) int {
	shape := append([]int{batch}, a.Net.InputShape...)
	for _, l := range a.Net.Layers[:frontier] {
		_, shape = l.Ops(shape)
	}
	elems := 1
	for _, d := range shape {
		elems *= d
	}
	return 8 * elems
}

// prefixWindow returns how many batches of frontier activations fit the
// configured memory bound (always at least one).
func (a *Analyzer) prefixWindow(frontier, nb int) int {
	per := a.prefixBytesPerBatch(frontier, a.Opts.Batch)
	budget := a.Opts.PrefixCacheMB * 1 << 20
	if budget < 0 {
		// Negative PrefixCacheMB means "smallest possible windows"; the
		// byte budget itself must never go negative.
		budget = 0
	}
	w := 1
	if per > 0 {
		w = budget / per
	}
	if w < 1 {
		w = 1
	}
	if w > nb {
		w = nb
	}
	return w
}

// prefixActivations returns the clean activations at the frontier for
// batches [b0, b1), computed under the given execution backend. When the
// window spans the whole evaluation set the result is retained on the
// Analyzer and reused by subsequent evaluations with the same frontier
// and backend baseline. frontier == 0 returns zero-copy views of x.
func (a *Analyzer) prefixActivations(ctx context.Context, frontier int, x *tensor.Tensor, b0, b1, nb int, be caps.Backend) ([]*tensor.Tensor, error) {
	n := x.Shape[0]
	sample := x.Len() / n
	batch := a.Opts.Batch
	view := func(bi int) *tensor.Tensor {
		lo := bi * batch
		hi := lo + batch
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, x.Shape[1:]...)
		return tensor.NewFrom(x.Data[lo*sample:hi*sample], shape...)
	}

	acts := make([]*tensor.Tensor, b1-b0)
	if frontier == 0 {
		a.Obs.Counter("sweep.prefix_cache.bypass").Inc()
		for bi := b0; bi < b1; bi++ {
			acts[bi-b0] = view(bi)
		}
		return acts, nil
	}
	whole := b0 == 0 && b1 == nb
	if whole && a.pcache != nil && a.pcache.frontier == frontier && a.pcache.base == be.BaseID() {
		a.Obs.Counter("sweep.prefix_cache.hits").Inc()
		return a.pcache.acts, nil
	}
	a.Obs.Counter("sweep.prefix_cache.misses").Inc()
	err := runJobs(ctx, a.Obs, a.Opts.sweepWorkers(), b1-b0, func(j int, _ *tensor.Scratch) {
		acts[j] = a.Net.ForwardToExec(frontier, view(b0+j), noise.None{}, be)
	})
	if err != nil {
		var wp *workerPanic
		if errors.As(err, &wp) {
			return nil, &JobPanicError{Point: -1, Trial: -1, Batch: b0 + wp.Job, Value: wp.Value, Stack: wp.Stack}
		}
		return nil, err
	}
	if whole {
		a.pcache = &prefixCache{frontier: frontier, base: be.BaseID(), acts: acts}
		var bytes int64
		for _, t := range acts {
			bytes += 8 * int64(len(t.Data))
		}
		a.Obs.Gauge("sweep.prefix_cache.retained_bytes").Set(float64(bytes))
		a.Obs.Debug("prefix cache retained",
			obs.F("frontier", frontier), obs.F("batches", len(acts)), obs.F("bytes", bytes))
	}
	return acts, nil
}

// Sweep measures accuracy across the NM grid with the given site filter.
// seedBase namespaces the RNG streams of distinct sweeps; reuse the same
// value to reproduce a sweep bit-for-bit. Cancelling ctx stops the sweep
// at a batch-window boundary with ctx's error; a worker panic surfaces
// as a *JobPanicError naming the failing (point, trial, batch) job.
func (a *Analyzer) Sweep(ctx context.Context, filter noise.Filter, clean float64, seedBase uint64) ([]SweepPoint, error) {
	return a.sweep(ctx, filter, clean, seedBase)
}

// sweepState is the checkpointed progress of one sweep: the per-(point,
// trial) correct-counts summed over the first BatchesDone batches.
type sweepState struct {
	Correct     []int `json:"correct"`
	BatchesDone int   `json:"batches_done"`
	Done        bool  `json:"done"`
}

// sweep measures accuracy across the NM grid with the given site filter.
// seedBase is a per-sweep counter folded into every job's RNG stream, so
// distinct sweeps draw independent noise while identical configurations
// reproduce bit-for-bit, regardless of Options.Workers.
//
// With a non-nil a.Checkpoint, the per-(point, trial) correct-counts are
// persisted after every completed batch window under the key
// "sweep-<seedBase>"; a later call with the same options resumes after
// the last persisted window (or returns immediately when the sweep had
// completed), producing bit-identical points because every job's noise
// is a pure function of (seed, seedBase, point, trial, batch).
func (a *Analyzer) sweep(ctx context.Context, filter noise.Filter, clean float64, seedBase uint64) ([]SweepPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := a.Opts
	if _, err := o.Noise.Normalize(); err != nil {
		return nil, err
	}
	be, err := a.execBackend(caps.Float{})
	if err != nil {
		return nil, err
	}
	x, y := a.evalData()
	n := x.Shape[0]
	nb := (n + o.Batch - 1) / o.Batch
	frontier := a.Net.InjectionFrontier(filter)
	// A non-exact nonlinearity perturbs every routing layer, so the clean
	// prefix must stop before the first affected one (Float never shortens
	// this: its ApproxLayer is constant-false).
	if nf := a.Net.BackendFrontier(be); nf < frontier {
		frontier = nf
	}

	evals := sweepEvals(o)
	correct := make([]int, len(evals)) // per (point, trial), summed over batches
	totalJobs := len(evals) * nb

	// Numeric-health probes: opt-in, never checkpointed, provably inert
	// (the probed pass is the result pass; see probe.go). probeAcc[pi]
	// accumulates per-layer stats for sweep point pi in ascending
	// (window, job) order, which keeps every float sum bit-identical
	// across worker counts.
	probing := a.Probes != nil
	var probeAcc []*probeAccum
	if probing {
		probeAcc = make([]*probeAccum, len(o.NMSweep))
	}

	// Resume from the checkpointed window boundary, if any.
	ckey := fmt.Sprintf("sweep-%d", seedBase)
	startBatch := 0
	if a.Checkpoint != nil {
		var st sweepState
		if a.Checkpoint.Get(ckey, &st) && len(st.Correct) == len(evals) &&
			st.BatchesDone >= 0 && st.BatchesDone <= nb {
			copy(correct, st.Correct)
			startBatch = st.BatchesDone
			if st.Done {
				startBatch = nb
			}
			skipped := startBatch * len(evals)
			a.Obs.Counter("sweep.resumed_jobs").Add(int64(skipped))
			a.Obs.Info("sweep resumed from checkpoint",
				obs.F("sweep", ckey),
				obs.F("batches", fmt.Sprintf("%d/%d", startBatch, nb)),
				obs.F("skipped_jobs", skipped))
			if probing && startBatch > 0 {
				// Probe stats are never checkpointed, so they can only
				// cover the windows this process actually runs.
				a.Obs.Warn("probe stats cover only the un-resumed windows",
					obs.F("sweep", ckey), obs.F("skipped_batches", startBatch))
			}
		}
	}

	window := a.prefixWindow(frontier, nb)
	start := time.Now()
	doneJobs := startBatch * len(evals)
	a.Obs.Counter("sweep.sweeps").Inc()
	a.Obs.Counter("sweep.jobs").Add(int64(totalJobs - doneJobs))
	for b0 := startBatch; b0 < nb; b0 += window {
		if err := ctx.Err(); err != nil {
			a.Obs.Warn("sweep cancelled",
				obs.F("sweep", ckey),
				obs.F("batches", fmt.Sprintf("%d/%d", b0, nb)))
			return nil, err
		}
		b1 := b0 + window
		if b1 > nb {
			b1 = nb
		}
		tw0 := time.Now()
		jobCorrect, jobProbes, err := a.windowJobs(ctx, filter, evals, x, y, frontier, seedBase, b0, b1, nb, probing, be)
		if err != nil {
			var jp *JobPanicError
			if !errors.As(err, &jp) {
				a.Obs.Warn("sweep cancelled",
					obs.F("sweep", ckey),
					obs.F("batches", fmt.Sprintf("%d/%d", b0, nb)))
			}
			return nil, err
		}
		nbw := b1 - b0
		// Merge in ascending job order: correct-counts, the value-domain
		// job-correct histogram (integer observations, so bucket counts
		// and sum are scheduling-invariant), and the probe stats.
		hist := a.Obs.Histogram("sweep.job_correct")
		for j, c := range jobCorrect {
			correct[j/nbw] += c
			hist.Observe(float64(c))
		}
		if probing {
			for j, rec := range jobProbes {
				if rec == nil {
					continue
				}
				pi := evals[j/nbw].pi
				if probeAcc[pi] == nil {
					probeAcc[pi] = newProbeAccum()
				}
				probeAcc[pi].merge(rec.Layers())
			}
		}
		doneJobs += len(jobCorrect)
		if tr := a.Obs.Trace(); tr != nil {
			tr.Complete("sweep.window", "sweep", 0, tw0, time.Since(tw0),
				map[string]any{"sweep": ckey, "batches": fmt.Sprintf("%d-%d/%d", b0, b1, nb), "jobs": len(jobCorrect)})
		}
		if a.Checkpoint != nil {
			a.checkpointPut(ckey, sweepState{Correct: correct, BatchesDone: b1, Done: b1 == nb})
		}
		if a.afterWindow != nil {
			a.afterWindow(b1, nb)
		}
		if a.Obs.Enabled(obs.Debug) && doneJobs < totalJobs {
			elapsed := time.Since(start)
			rate := float64(doneJobs) / elapsed.Seconds()
			fields := []obs.Field{
				obs.F("jobs", fmt.Sprintf("%d/%d", doneJobs, totalJobs)),
				obs.F("jobs_per_sec", fmt.Sprintf("%.1f", rate)),
			}
			// A zero rate (clock granularity, resumed runs doing no new
			// work yet) would make the ETA division yield +Inf.
			if rate > 0 {
				eta := time.Duration(float64(totalJobs-doneJobs) / rate * float64(time.Second))
				fields = append(fields, obs.F("eta", eta.Round(time.Second)))
			}
			a.Obs.Debug("sweep progress", fields...)
		}
	}
	if a.Checkpoint != nil && startBatch < nb {
		a.checkpointPut(ckey, sweepState{Correct: correct, BatchesDone: nb, Done: true})
	}
	if dur := time.Since(start); totalJobs > 0 {
		a.Obs.Timer("sweep.duration").Observe(dur)
		rate := float64(totalJobs) / dur.Seconds()
		a.Obs.Gauge("sweep.last_jobs_per_sec").Set(rate)
		a.Obs.Debug("sweep complete",
			obs.F("frontier", frontier), obs.F("jobs", totalJobs),
			obs.F("dur", dur.Round(time.Millisecond)),
			obs.F("jobs_per_sec", fmt.Sprintf("%.1f", rate)))
	}

	if probing {
		label := a.ProbeLabel
		if label == "" {
			label = ckey
		}
		swp := ProbeSweep{Label: label, Backend: be.Name()}
		for pi, nm := range o.NMSweep {
			if probeAcc[pi] == nil {
				continue
			}
			swp.Points = append(swp.Points, ProbePoint{NM: nm, Layers: probeAcc[pi].emit()})
		}
		if len(swp.Points) > 0 {
			a.Probes.add(swp)
		}
	}

	return assemblePoints(o, correct, clean, n), nil
}

// evalIdx names one noisy (point, trial) evaluation of a sweep; NM = 0 is
// the clean point and is never enumerated.
type evalIdx struct{ pi, trial int }

// sweepEvals enumerates the (point, trial) evaluations of one sweep in
// the canonical order every fold path assumes: ascending point index,
// then ascending trial.
func sweepEvals(o Options) []evalIdx {
	var evals []evalIdx
	for pi, nm := range o.NMSweep {
		if nm == 0 {
			continue
		}
		for trial := 0; trial < o.Trials; trial++ {
			evals = append(evals, evalIdx{pi, trial})
		}
	}
	return evals
}

// windowJobs evaluates every (point, trial) × batch job of the batch
// window [b0, b1): the per-job correct counts (eval-major, batch-minor)
// plus, when probing, the per-job probe recorders. This is the one code
// path that turns a window into counts — the local sweep loop and the
// worker-side EvalWindow both call it, which is what makes a leased
// window's counts bit-identical to the in-process ones.
func (a *Analyzer) windowJobs(ctx context.Context, filter noise.Filter, evals []evalIdx, x *tensor.Tensor, y []int, frontier int, seedBase uint64, b0, b1, nb int, probing bool, be caps.Backend) ([]int, []*caps.ProbeRecorder, error) {
	o := a.Opts
	acts, err := a.prefixActivations(ctx, frontier, x, b0, b1, nb, be)
	if err != nil {
		return nil, nil, err
	}
	// One job per (point, trial, batch); each job owns its result slot.
	nbw := b1 - b0
	jobCorrect := make([]int, len(evals)*nbw)
	var jobProbes []*caps.ProbeRecorder
	if probing {
		jobProbes = make([]*caps.ProbeRecorder, len(jobCorrect))
	}
	err = runJobs(ctx, a.Obs, o.sweepWorkers(), len(jobCorrect), func(j int, s *tensor.Scratch) {
		e := evals[j/nbw]
		bi := b0 + j%nbw
		nm := o.NMSweep[e.pi]
		seed := noise.StreamSeed(o.Seed, seedBase, uint64(e.pi), uint64(e.trial), uint64(bi))
		inj := o.Noise.Injector(nm, o.NA, filter, seed)
		var pred []int
		if probing {
			// Reference pass: the clean suffix, recorded at the Backend
			// seam. noise.None draws nothing from inj, and the kernels
			// write scratch buffers before reading them, so the extra
			// pass cannot perturb the result pass below.
			rec := caps.NewProbeRecorder()
			rec.StartReference()
			a.Net.ClassifyFromExec(frontier, acts[bi-b0], noise.None{}, s, caps.NewProbeBackend(be, rec))
			rec.StartObserve()
			pred = a.Net.ClassifyFromExec(frontier, acts[bi-b0], inj, s, caps.NewProbeBackend(be, rec))
			jobProbes[j] = rec
		} else {
			pred = a.Net.ClassifyFromExec(frontier, acts[bi-b0], inj, s, be)
		}
		lo := bi * o.Batch
		c := 0
		for i, p := range pred {
			if p == y[lo+i] {
				c++
			}
		}
		jobCorrect[j] = c
	})
	if err != nil {
		var wp *workerPanic
		if errors.As(err, &wp) {
			e := evals[wp.Job/nbw]
			return nil, nil, &JobPanicError{
				Point: e.pi, NM: o.NMSweep[e.pi], Trial: e.trial, Batch: b0 + wp.Job%nbw,
				Value: wp.Value, Stack: wp.Stack,
			}
		}
		return nil, nil, err
	}
	return jobCorrect, jobProbes, nil
}

// assemblePoints turns the folded per-(point, trial) correct counts into
// the sweep's points. Shared by the local and fleet sweep paths so a
// distributed sweep's report is assembled by exactly the in-process code.
func assemblePoints(o Options, correct []int, clean float64, n int) []SweepPoint {
	points := make([]SweepPoint, len(o.NMSweep))
	ei := 0
	for pi, nm := range o.NMSweep {
		acc := clean
		if nm != 0 {
			total := 0
			for trial := 0; trial < o.Trials; trial++ {
				total += correct[ei]
				ei++
			}
			acc = float64(total) / float64(o.Trials*n)
		}
		points[pi] = SweepPoint{NM: nm, Accuracy: acc, Drop: acc - clean}
	}
	return points
}

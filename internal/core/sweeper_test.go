package core

import (
	"context"
	"testing"

	"redcane/internal/caps"
	"redcane/internal/noise"
)

// mustSweep runs a sweep with a background context, failing the test on
// error — the ergonomic form for the many tests that never cancel.
func mustSweep(t *testing.T, a *Analyzer, filter noise.Filter, clean float64, seedBase uint64) []SweepPoint {
	t.Helper()
	pts, err := a.sweep(context.Background(), filter, clean, seedBase)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return pts
}

// derived returns a copy of the shared analyzer with its own cold prefix
// cache and a small batch size (the fixture's eval set is ~18 samples, so
// batch 5 yields several batches to schedule and cache), so tests can
// vary Options without touching the shared fixture.
func derived(t *testing.T) *Analyzer {
	t.Helper()
	b := *sharedAnalyzer(t)
	b.pcache = nil
	b.Opts = b.Opts.WithDefaults()
	b.Opts.Batch = 5
	return &b
}

func samePoints(t *testing.T, label string, a, b []SweepPoint) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d points", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: point %d = %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	// The tentpole determinism requirement: sweep results must be
	// bit-identical for any worker count, because every (point, trial,
	// batch) job draws from its own counter-seeded RNG stream.
	a := derived(t)
	x, y := a.evalData()
	clean := caps.Accuracy(a.Net, x, y, noise.None{}, a.Opts.Batch)
	for _, filter := range []noise.Filter{
		noise.ForGroup(noise.MACOutputs), // frontier 0: no prefix to cache
		noise.ForGroup(noise.Softmax),    // late frontier: cached prefixes
	} {
		base := derived(t)
		base.Opts.Workers = 1
		want := mustSweep(t, base, filter, clean, 3)
		for _, workers := range []int{2, 8} {
			b := derived(t)
			b.Opts.Workers = workers
			samePoints(t, "workers", want, mustSweep(t, b, filter, clean, 3))
		}
	}
}

func TestSweepWindowedMatchesCached(t *testing.T) {
	// A memory bound too small for even one extra batch degenerates to
	// single-batch windows with no whole-set cache; results must still be
	// bit-identical to the fully cached run.
	a := derived(t)
	x, y := a.evalData()
	clean := caps.Accuracy(a.Net, x, y, noise.None{}, a.Opts.Batch)
	filter := noise.ForGroup(noise.Softmax)

	cached := derived(t)
	cached.Opts.PrefixCacheMB = 1 << 10
	want := mustSweep(t, cached, filter, clean, 4)
	if cached.pcache == nil {
		t.Fatal("large budget did not retain the whole-set prefix cache")
	}

	windowed := derived(t)
	windowed.Opts.PrefixCacheMB = -1 // below any real budget: window of 1
	frontier := windowed.Net.InjectionFrontier(filter)
	nb := (x.Shape[0] + windowed.Opts.Batch - 1) / windowed.Opts.Batch
	if nb < 2 {
		t.Fatalf("fixture too small to exercise windowing: %d batches", nb)
	}
	if w := windowed.prefixWindow(frontier, nb); w != 1 {
		t.Fatalf("window = %d, want 1", w)
	}
	samePoints(t, "windowed vs cached", want, mustSweep(t, windowed, filter, clean, 4))
	if windowed.pcache != nil {
		t.Fatal("windowed run must not retain a partial prefix cache")
	}
}

func TestSweepPrefixCacheReuse(t *testing.T) {
	// Back-to-back sweeps sharing a frontier (softmax and logits update
	// both front at the routing layer) must reuse the retained prefixes
	// and still reproduce a cold-cache sweep bit-for-bit.
	a := derived(t)
	x, y := a.evalData()
	clean := caps.Accuracy(a.Net, x, y, noise.None{}, a.Opts.Batch)

	softmax := mustSweep(t, a, noise.ForGroup(noise.Softmax), clean, 5)
	if a.pcache == nil || a.pcache.frontier == 0 {
		t.Fatalf("no prefix cache after softmax sweep: %+v", a.pcache)
	}
	first := a.pcache
	logits := mustSweep(t, a, noise.ForGroup(noise.LogitsUpdate), clean, 6)
	if a.pcache != first {
		t.Fatal("logits-update sweep rebuilt the cache despite equal frontier")
	}

	cold := derived(t)
	samePoints(t, "warm vs cold (softmax)", softmax, mustSweep(t, cold, noise.ForGroup(noise.Softmax), clean, 5))
	cold2 := derived(t)
	samePoints(t, "warm vs cold (logits)", logits, mustSweep(t, cold2, noise.ForGroup(noise.LogitsUpdate), clean, 6))

	// A frontier-0 sweep must bypass (and preserve) the cache.
	mustSweep(t, a, noise.ForGroup(noise.MACOutputs), clean, 7)
	if a.pcache != first {
		t.Fatal("frontier-0 sweep disturbed the prefix cache")
	}
}

func TestPrefixWindowBounds(t *testing.T) {
	a := derived(t)
	a.Opts = a.Opts.WithDefaults()
	frontier := a.Net.InjectionFrontier(noise.ForGroup(noise.Softmax))
	if frontier == 0 {
		t.Fatal("softmax frontier unexpectedly 0")
	}
	if per := a.prefixBytesPerBatch(frontier, a.Opts.Batch); per <= 0 {
		t.Fatalf("prefix bytes = %d", per)
	}
	// The default 256 MiB budget dwarfs the fixture: whole set in one window.
	nb := (a.Data.TestX.Shape[0] + a.Opts.Batch - 1) / a.Opts.Batch
	if w := a.prefixWindow(frontier, nb); w != nb {
		t.Fatalf("window = %d, want %d", w, nb)
	}
}

func TestOptionsWorkerDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Workers < 1 {
		t.Fatalf("Workers default = %d", o.Workers)
	}
	if o.PrefixCacheMB != 256 {
		t.Fatalf("PrefixCacheMB default = %d", o.PrefixCacheMB)
	}
	if kept := (Options{Workers: 5, PrefixCacheMB: 7}).WithDefaults(); kept.Workers != 5 || kept.PrefixCacheMB != 7 {
		t.Fatalf("explicit values overridden: %+v", kept)
	}
}

func TestOptionsPrefixCacheClamped(t *testing.T) {
	// Regression: WithDefaults left negative PrefixCacheMB values as-is,
	// so a stray -5 flowed into the sweeper as a negative byte budget.
	// Every negative now normalizes to the canonical -1 ("single-batch
	// windows") and the derived byte budget is floored at zero.
	for _, mb := range []int{-1, -5, -1 << 30} {
		o := (Options{PrefixCacheMB: mb}).WithDefaults()
		if o.PrefixCacheMB != -1 {
			t.Fatalf("WithDefaults(PrefixCacheMB=%d) = %d, want -1", mb, o.PrefixCacheMB)
		}
	}
	a := derived(t)
	a.Opts.PrefixCacheMB = -7 // bypasses WithDefaults: the sweeper must still clamp
	frontier := a.Net.InjectionFrontier(noise.ForGroup(noise.Softmax))
	nb := (a.Data.TestX.Shape[0] + a.Opts.Batch - 1) / a.Opts.Batch
	if w := a.prefixWindow(frontier, nb); w != 1 {
		t.Fatalf("negative budget window = %d, want 1", w)
	}
}

package core

import (
	"context"
	"fmt"
	"time"

	"redcane/internal/caps"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

// This file is the engine's distribution seam. A sweep is a pure fold of
// integer correct-counts over (point, trial, batch) jobs whose noise is a
// counter-seeded function of (Options.Seed, seedBase, point, trial,
// batch) — no state flows between jobs — so any process that can rebuild
// the network and evaluation split can compute any batch window's counts
// bit-identically. The Fleet interface hands contiguous batch windows to
// such remote processes and streams their per-(point, trial) counts
// back; the coordinator folds them in ascending window order through the
// same checkpointed accumulator the local loop uses, which is what makes
// an N-worker fleet's artifacts byte-identical to a single-process run.

// SweepScope names a sweep's site filter in wire-friendly form: the
// Table III group plus, for layer-wise sweeps, the layer. It is the
// serializable counterpart of noise.ForGroup / noise.ForLayerGroup —
// closures cannot cross a process boundary, scopes can.
type SweepScope struct {
	Group string `json:"group"`
	Layer string `json:"layer,omitempty"`
}

// ScopeForGroup names a group-wise sweep's filter.
func ScopeForGroup(g noise.Group) SweepScope {
	return SweepScope{Group: g.String()}
}

// ScopeForLayer names a layer-wise sweep's filter.
func ScopeForLayer(layer string, g noise.Group) SweepScope {
	return SweepScope{Group: g.String(), Layer: layer}
}

// Filter resolves the scope back to the site filter it names.
func (s SweepScope) Filter() (noise.Filter, error) {
	g, ok := groupByName(s.Group)
	if !ok {
		return nil, fmt.Errorf("sweep scope names unknown group %q", s.Group)
	}
	if s.Layer != "" {
		return noise.ForLayerGroup(s.Layer, g), nil
	}
	return noise.ForGroup(g), nil
}

// String renders the scope for logs and metrics labels.
func (s SweepScope) String() string {
	if s.Layer != "" {
		return s.Layer + "/" + s.Group
	}
	return s.Group
}

// SweepJob describes one sweep for remote execution. Everything a worker
// needs to reproduce a window bit-identically travels here: the scope,
// the seed namespace, and the results-affecting options. Evals and NB are
// the coordinator's view of the evaluation grid; workers recompute both
// and refuse mismatches, which catches drift (different dataset size,
// options, or code) before a wrong count is folded.
type SweepJob struct {
	// Key is the sweep's checkpoint key ("sweep-<seedBase>"), unique
	// within one analysis.
	Key string `json:"key"`
	// SeedBase namespaces the sweep's RNG streams (noise.StreamSeed).
	SeedBase uint64     `json:"seed_base"`
	Scope    SweepScope `json:"scope"`
	Opts     Options    `json:"opts"`
	// Evals is the number of noisy (point, trial) evaluations; every
	// window result carries exactly this many counts.
	Evals int `json:"evals"`
	// NB is the total batch count of the evaluation split.
	NB int `json:"nb"`
	// Examples is the evaluation-split size, which bounds each window's
	// correct counts (the last batch is usually short of Opts.Batch); the
	// coordinator uses it to reject impossible completions.
	Examples int `json:"examples"`
	// Window is the lease granularity in batches (>= 1).
	Window int `json:"window"`
}

// WindowResult is one completed batch window [B0, B1): the per-(point,
// trial) correct counts summed over the window's batches, in the
// canonical sweepEvals order.
type WindowResult struct {
	B0      int   `json:"b0"`
	B1      int   `json:"b1"`
	Correct []int `json:"correct"`
}

// Fleet distributes a sweep's batch windows to remote executors.
// RunSweep must deliver every window of [start, job.NB) exactly once, in
// any order, then close the channel; when ctx is cancelled it may close
// the channel early. The coordinator owns ordering and folding — a Fleet
// only moves windows out and counts back.
type Fleet interface {
	RunSweep(ctx context.Context, job SweepJob, start int) (<-chan WindowResult, error)
}

// EvalWindow is the worker-side entry point of distributed sweeps: it
// evaluates every (point, trial) job of the batch window [b0, b1) and
// returns the per-(point, trial) correct counts summed over the window's
// batches — the exact integers the local engine folds, computed by the
// same windowJobs path, so a fleet fold is bit-identical to a
// single-process run.
func (a *Analyzer) EvalWindow(ctx context.Context, scope SweepScope, seedBase uint64, b0, b1 int) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	a.Opts = a.Opts.WithDefaults()
	o := a.Opts
	if _, err := o.Noise.Normalize(); err != nil {
		return nil, err
	}
	filter, err := scope.Filter()
	if err != nil {
		return nil, err
	}
	be, err := a.execBackend(caps.Float{})
	if err != nil {
		return nil, err
	}
	x, y := a.evalData()
	n := x.Shape[0]
	nb := (n + o.Batch - 1) / o.Batch
	if b0 < 0 || b1 <= b0 || b1 > nb {
		return nil, fmt.Errorf("window [%d, %d) out of range (nb=%d)", b0, b1, nb)
	}
	frontier := a.Net.InjectionFrontier(filter)
	if nf := a.Net.BackendFrontier(be); nf < frontier {
		frontier = nf
	}
	evals := sweepEvals(o)
	jobCorrect, _, err := a.windowJobs(ctx, filter, evals, x, y, frontier, seedBase, b0, b1, nb, false, be)
	if err != nil {
		return nil, err
	}
	nbw := b1 - b0
	out := make([]int, len(evals))
	for j, c := range jobCorrect {
		out[j/nbw] += c
	}
	return out, nil
}

// SweepGrid returns the coordinator's view of a sweep's work grid under
// the analyzer's options: the number of noisy (point, trial) evaluations
// and the total batch count. Workers recompute the same pair as a drift
// guard.
func (a *Analyzer) SweepGrid() (evals, nb int) {
	o := a.Opts.WithDefaults()
	x, _ := a.evalData()
	n := x.Shape[0]
	return len(sweepEvals(o)), (n + o.Batch - 1) / o.Batch
}

// sweepScoped runs one named sweep: through the fleet when the analyzer
// has one, locally otherwise. The filter-based sweep entry points are
// untouched — only the named group/layer sweeps of the methodology can
// be distributed, because only they have wire-representable scopes.
func (a *Analyzer) sweepScoped(ctx context.Context, scope SweepScope, clean float64, seedBase uint64) ([]SweepPoint, error) {
	filter, err := scope.Filter()
	if err != nil {
		return nil, err
	}
	if a.Fleet == nil {
		return a.sweep(ctx, filter, clean, seedBase)
	}
	return a.sweepFleet(ctx, scope, clean, seedBase)
}

// sweepFleet is the coordinator side of a distributed sweep. It reuses
// the local path's checkpoint format and key ("sweep-<seedBase>", prefix
// of completed batches): windows may complete out of order, so results
// are buffered and folded in ascending window order, each contiguous
// prefix extension checkpointed exactly as the local loop would — a
// coordinator restart resumes after the last contiguous window, and a
// fleet run can resume a local checkpoint (and vice versa).
func (a *Analyzer) sweepFleet(ctx context.Context, scope SweepScope, clean float64, seedBase uint64) ([]SweepPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := a.Opts
	x, _ := a.evalData()
	n := x.Shape[0]
	nb := (n + o.Batch - 1) / o.Batch
	evals := sweepEvals(o)
	correct := make([]int, len(evals))
	if a.Probes != nil {
		// Probe recorders live on the workers' passes and never travel the
		// wire; a distributed sweep records no probe stats.
		a.Obs.Warn("probes are not collected over a fleet", obs.F("sweep", scope.String()))
	}

	ckey := fmt.Sprintf("sweep-%d", seedBase)
	startBatch := 0
	if a.Checkpoint != nil {
		var st sweepState
		if a.Checkpoint.Get(ckey, &st) && len(st.Correct) == len(evals) &&
			st.BatchesDone >= 0 && st.BatchesDone <= nb {
			copy(correct, st.Correct)
			startBatch = st.BatchesDone
			if st.Done {
				startBatch = nb
			}
			a.Obs.Info("fleet sweep resumed from checkpoint",
				obs.F("sweep", ckey),
				obs.F("batches", fmt.Sprintf("%d/%d", startBatch, nb)))
		}
	}

	if startBatch < nb {
		job := SweepJob{
			Key: ckey, SeedBase: seedBase, Scope: scope,
			Opts: o, Evals: len(evals), NB: nb, Examples: n, Window: 1,
		}
		start := time.Now()
		a.Obs.Counter("sweep.sweeps").Inc()
		a.Obs.Info("sweep distributed to fleet",
			obs.F("sweep", ckey), obs.F("scope", scope.String()),
			obs.F("windows", nb-startBatch), obs.F("evals", len(evals)))
		ch, err := a.Fleet.RunSweep(ctx, job, startBatch)
		if err != nil {
			return nil, err
		}
		// Fold in ascending window order, buffering early arrivals, so the
		// checkpoint is always a contiguous batch prefix.
		pending := map[int]WindowResult{}
		next := startBatch
		for res := range ch {
			if len(res.Correct) != len(evals) {
				return nil, fmt.Errorf("fleet window [%d, %d) returned %d counts, want %d",
					res.B0, res.B1, len(res.Correct), len(evals))
			}
			pending[res.B0] = res
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				for i, c := range r.Correct {
					correct[i] += c
				}
				next = r.B1
				if a.Checkpoint != nil {
					a.checkpointPut(ckey, sweepState{Correct: correct, BatchesDone: next, Done: next == nb})
				}
				if a.afterWindow != nil {
					a.afterWindow(next, nb)
				}
			}
		}
		if next < nb {
			// The fleet closed the channel short of the full grid — the
			// sweep was cancelled (coordinator drain/shutdown) or the fleet
			// failed; the checkpoint holds the folded prefix either way.
			if err := ctx.Err(); err != nil {
				a.Obs.Warn("fleet sweep cancelled",
					obs.F("sweep", ckey),
					obs.F("batches", fmt.Sprintf("%d/%d", next, nb)))
				return nil, err
			}
			return nil, fmt.Errorf("fleet sweep %s incomplete: %d/%d batches folded", ckey, next, nb)
		}
		dur := time.Since(start)
		a.Obs.Timer("sweep.duration").Observe(dur)
		a.Obs.Debug("fleet sweep complete",
			obs.F("sweep", ckey), obs.F("windows", nb-startBatch),
			obs.F("dur", dur.Round(time.Millisecond)))
	}

	return assemblePoints(o, correct, clean, n), nil
}

// Package core implements the ReD-CaNe methodology itself (Fig. 7 of the
// paper): the six steps that turn a trained CapsNet plus a library of
// approximate components into an approximated CapsNet design —
//
//  1. Group Extraction — partition the inference operations into the
//     Table III groups by running one instrumented forward pass.
//  2. Group-Wise Resilience Analysis — sweep the noise magnitude per
//     group and monitor the test-accuracy drop.
//  3. Mark Resilient Groups — groups whose accuracy survives the largest
//     swept noise magnitude.
//  4. Layer-Wise Resilience Analysis — per-layer sweeps inside each
//     non-resilient group (skipping resilient groups saves exploration
//     time, exactly as the paper notes).
//  5. Mark Resilient Layers — per-layer tolerated noise magnitudes.
//  6. Select Approximate Components — for every operation site, the
//     cheapest library component whose measured noise magnitude fits the
//     site's tolerated budget.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"redcane/internal/approx"
	"redcane/internal/caps"
	"redcane/internal/checkpoint"
	"redcane/internal/datasets"
	"redcane/internal/noise"
	"redcane/internal/obs"
	"redcane/internal/tensor"
)

// PaperNMSweep is the noise-magnitude grid of the paper's experiments
// (Sec. VI-A): NM ∈ [0.5 … 0.001] plus the noiseless point.
var PaperNMSweep = []float64{0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0}

// DefaultFaultSweep is the default severity grid for fault-model sweeps
// (bit-flip probability or stuck-cell fraction): faults at the paper's
// Gaussian magnitudes would wipe out accuracy entirely, so the fault grid
// sits two decades lower, plus the fault-free point.
var DefaultFaultSweep = []float64{0.02, 0.01, 0.005, 0.002, 0.001, 0.0005, 0.0002, 0.0001, 0}

// Options parameterizes an analysis run.
type Options struct {
	// NMSweep is the descending noise-magnitude grid; defaults to
	// PaperNMSweep.
	NMSweep []float64
	// NA is the noise average (paper uses 0 for the general case).
	NA float64
	// Trials is the number of independent noise seeds averaged per
	// sweep point.
	Trials int
	// Batch is the evaluation batch size.
	Batch int
	// Threshold is the tolerable accuracy drop (fraction, e.g. 0.01)
	// used to mark resilience and set NM budgets.
	Threshold float64
	// Seed drives all injected noise.
	Seed uint64
	// Noise selects the injector kind the sweep grid drives: the zero
	// value is the paper's Gaussian model; the fault kinds (bit-flip,
	// stuck-at) reinterpret NMSweep as their severity grid (flip
	// probability, stuck fraction). See noise.Spec.
	Noise noise.Spec
	// Softmax and Squash name the nonlinearity variants every evaluation
	// runs under ("" or "exact" is the bit-exact default; see
	// approx.SoftmaxNames / approx.SquashNames for the approximate
	// variants). Non-default variants shorten the clean-prefix frontier
	// to the first affected layer and fold into the checkpoint
	// fingerprint.
	Softmax string
	Squash  string
	// MaxEval caps the number of test samples evaluated per sweep point
	// (0 = all).
	MaxEval int
	// Workers bounds the sweep engine's evaluation goroutines
	// (0 = runtime.GOMAXPROCS(0)). Scheduling never affects results:
	// sweeps are bit-identical for any worker count.
	Workers int
	// PrefixCacheMB bounds the memory (in MiB) of the clean-prefix
	// activation cache used by the sweep engine (0 = 256; negative forces
	// single-batch windows, the smallest possible — window layout never
	// affects results, only scheduling). WithDefaults normalizes every
	// negative value to -1, and the sweeper floors the derived byte
	// budget at zero, so a stray negative can never flow into the window
	// arithmetic as a negative byte count.
	PrefixCacheMB int
}

// WithDefaults fills unset options with the paper's defaults and
// normalizes the noise-magnitude grid: negatives are dropped, duplicates
// removed, and the grid sorted descending. SelectComponents and the
// resilience marking assume NMSweep[0] is the grid maximum, so callers
// may supply the grid in any order.
func (o Options) WithDefaults() Options {
	o.NMSweep = normalizeNMSweep(o.NMSweep)
	if len(o.NMSweep) == 0 {
		o.NMSweep = PaperNMSweep
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Batch <= 0 {
		o.Batch = 32
	}
	if o.Threshold == 0 {
		o.Threshold = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.PrefixCacheMB == 0 {
		o.PrefixCacheMB = 256
	} else if o.PrefixCacheMB < 0 {
		o.PrefixCacheMB = -1
	}
	if n, err := o.Noise.Normalize(); err == nil && !n.IsGaussian() {
		// Canonicalize non-default kinds only: the gaussian default keeps
		// its zero value so pre-existing fingerprints and wire forms are
		// untouched. Invalid specs pass through and fail loudly in the
		// sweep entry points.
		o.Noise = n
	}
	if o.Softmax == "exact" {
		o.Softmax = ""
	}
	if o.Squash == "exact" {
		o.Squash = ""
	}
	return o
}

// normalizeNMSweep returns the grid sorted descending with negative
// magnitudes dropped and duplicates removed. An already-normalized grid
// (like PaperNMSweep) round-trips unchanged, so default fingerprints are
// stable.
func normalizeNMSweep(grid []float64) []float64 {
	out := make([]float64, 0, len(grid))
	for _, v := range grid {
		if v >= 0 {
			out = append(out, v)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// Fingerprint hashes the results-affecting options into a short stable
// key for checkpoint identity. Workers and PrefixCacheMB are deliberately
// excluded: they alter scheduling and window layout only, never results,
// so a run checkpointed at one worker count resumes bit-identically at
// another.
func (o Options) Fingerprint() string {
	o = o.WithDefaults()
	s := fmt.Sprintf(
		"opts-v1|nm=%v|na=%g|trials=%d|batch=%d|thr=%g|seed=%d|maxeval=%d",
		o.NMSweep, o.NA, o.Trials, o.Batch, o.Threshold, o.Seed, o.MaxEval)
	// The new sweep dimensions append only when non-default, so every
	// pre-existing checkpoint keeps its fingerprint: a gaussian sweep
	// under exact nonlinearities hashes the exact pre-dimension string.
	if !o.Noise.IsGaussian() {
		s += "|noise=" + o.Noise.String()
	}
	if o.Softmax != "" {
		s += "|softmax=" + o.Softmax
	}
	if o.Squash != "" {
		s += "|squash=" + o.Squash
	}
	return checkpoint.Fingerprint(s)
}

// ResolveNonlinearity resolves softmax/squash variant names into the
// caps.Nonlinearity the execution paths thread through routing. Empty or
// "exact" names resolve to the exact operator (a zero Nonlinearity when
// both are default); unknown names error listing the valid variants.
func ResolveNonlinearity(softmax, squash string) (caps.Nonlinearity, error) {
	smFn, err := approx.SoftmaxByName(softmax)
	if err != nil {
		return caps.Nonlinearity{}, err
	}
	sqFn, err := approx.SquashByName(squash)
	if err != nil {
		return caps.Nonlinearity{}, err
	}
	var nl caps.Nonlinearity
	if smFn != nil {
		nl.SoftmaxName, nl.SoftmaxFn = softmax, caps.NonlinearFn(smFn)
	}
	if sqFn != nil {
		nl.SquashName, nl.SquashFn = squash, caps.NonlinearFn(sqFn)
	}
	return nl, nil
}

// SweepPoint is one (NM, accuracy) measurement.
type SweepPoint struct {
	NM       float64
	Accuracy float64
	// Drop is Accuracy − CleanAccuracy (negative when noise hurts).
	Drop float64
}

// GroupResult is the Step 2/3 outcome for one operation group.
type GroupResult struct {
	Group  noise.Group
	Points []SweepPoint
	// Resilient marks the groups that tolerate strictly more noise than
	// the median group (Step 3). The paper marks resilient groups to
	// skip their layer-wise analysis ("a considerable amount of unuseful
	// testing can be skipped"); groups tolerating the full sweep are
	// always resilient.
	Resilient bool
	// ToleratedNM is the largest swept NM whose drop is within the
	// threshold.
	ToleratedNM float64
}

// LayerResult is the Step 4/5 outcome for one (layer, group) pair.
type LayerResult struct {
	Layer       string
	Group       noise.Group
	Points      []SweepPoint
	ToleratedNM float64
	// Resilient marks layers tolerating at least the median tolerated
	// NM of their group (Step 5's "more resilient" labeling).
	Resilient bool
}

// Choice is one Step 6 component assignment.
type Choice struct {
	Site      noise.Site
	Component approx.Component
	// ComponentNM is the component's measured noise magnitude used for
	// the fit test.
	ComponentNM float64
	// BudgetNM is the site's tolerated noise magnitude.
	BudgetNM float64
}

// Report is the full output of a ReD-CaNe run.
type Report struct {
	Network       string
	Dataset       string
	CleanAccuracy float64
	Groups        []GroupResult
	Layers        []LayerResult
	Choices       []Choice
	// MulEnergySaving is the predicted energy saving on the multiplier
	// share from the selected components, as a fraction of multiplier
	// energy.
	MulEnergySaving float64
	// ValidatedAccuracy is the test accuracy with every site
	// simultaneously injected at its selected component's NM/NA.
	ValidatedAccuracy float64
}

// Analyzer runs the methodology against one trained network + dataset.
type Analyzer struct {
	Net  *caps.Network
	Data *datasets.Dataset
	Opts Options
	// Obs, when non-nil, receives the sweep engine's telemetry: structured
	// progress events (per-group/per-layer sweeps with rates and ETAs) and
	// the engine metrics (prefix-cache hits/misses, jobs scheduled,
	// worker-pool busy time, scratch-arena traffic). Telemetry never
	// alters results; a nil Obs disables it at the cost of one branch.
	Obs *obs.Obs
	// Checkpoint, when non-nil, persists completed work (clean accuracy,
	// per-window sweep counts, finished group/layer analyses) so an
	// interrupted run resumes bit-identically. Open the store keyed by
	// (benchmark, seed, Options.Fingerprint()); a store opened under a
	// different fingerprint ignores its stale contents. A nil Checkpoint
	// disables persistence entirely.
	Checkpoint *checkpoint.Store
	// Probes, when non-nil, turns on the numeric-health probes: every
	// sweep and backend evaluation records per-layer activation
	// statistics (range, moments, SQNR vs the clean reference,
	// saturation/overflow) into the set. Probing is inert — reports and
	// checkpoints are byte-identical with probes on or off — and the
	// aggregation is bit-identical across worker counts. It roughly
	// doubles evaluation cost (a clean reference pass per job). Probes
	// is not part of Options, so checkpoint fingerprints are unaffected.
	Probes *ProbeSet
	// ProbeLabel names the next sweep's or backend evaluation's probe
	// record; the analysis steps set it per scope ("groups/<group>",
	// "layers/<layer>/<group>"). Empty falls back to a derived label.
	ProbeLabel string
	// Fleet, when non-nil, distributes the named group/layer sweeps of
	// the methodology as leased batch windows instead of running them on
	// this process's worker pool. Results are byte-identical either way:
	// workers compute the same counter-seeded integer counts the local
	// loop would, and the coordinator folds them in ascending window
	// order through the same checkpoint. A nil Fleet keeps every sweep
	// local.
	Fleet Fleet

	sites  map[noise.Group][]noise.Site // Step 1 cache
	pcache *prefixCache                 // sweep engine's whole-set clean-prefix cache
	// afterWindow, when non-nil, runs after every completed (and
	// checkpointed) sweep batch window — a test seam for deterministic
	// mid-sweep interruption.
	afterWindow func(batchesDone, totalBatches int)
}

// checkpointPut persists one checkpoint section; persistence failures
// degrade to a warning (the run continues, it just cannot resume).
func (a *Analyzer) checkpointPut(key string, v any) {
	if err := a.Checkpoint.Put(key, v); err != nil {
		a.Obs.Warn("checkpoint write failed", obs.F("section", key), obs.F("err", err))
	}
}

// execBackend resolves the analyzer's configured softmax/squash variants
// and wraps the given backend with them. The exact default returns be
// unchanged, so default runs execute exactly the pre-seam code path.
func (a *Analyzer) execBackend(be caps.Backend) (caps.Backend, error) {
	nl, err := ResolveNonlinearity(a.Opts.Softmax, a.Opts.Squash)
	if err != nil {
		return nil, err
	}
	return caps.WithNonlinearity(be, nl), nil
}

// ckptClean is the checkpointed clean-accuracy section.
type ckptClean struct {
	Accuracy float64 `json:"accuracy"`
}

// CleanAccuracy evaluates the noiseless test accuracy under the
// analyzer's evaluation cap.
func (a *Analyzer) CleanAccuracy() float64 {
	acc, err := a.CleanAccuracyCtx(context.Background())
	if err != nil {
		panic(err) // unreachable: a background context never cancels
	}
	return acc
}

// CleanAccuracyCtx is CleanAccuracy with cancellation (stops at a batch
// boundary with ctx's error) and checkpointing: with a non-nil
// a.Checkpoint the measured value persists under the "clean" section and
// later runs skip the evaluation.
func (a *Analyzer) CleanAccuracyCtx(ctx context.Context) (float64, error) {
	a.Opts = a.Opts.WithDefaults()
	if a.Checkpoint != nil {
		var c ckptClean
		if a.Checkpoint.Get("clean", &c) {
			a.Obs.Info("clean accuracy resumed from checkpoint", obs.F("accuracy", c.Accuracy))
			return c.Accuracy, nil
		}
	}
	x, y := a.evalData()
	be, err := a.execBackend(caps.Float{})
	if err != nil {
		return 0, err
	}
	acc, err := caps.AccuracyExec(ctx, a.Net, x, y, noise.None{}, be, a.Opts.Batch, a.Opts.Workers)
	if err != nil {
		return 0, err
	}
	if a.Checkpoint != nil {
		a.checkpointPut("clean", ckptClean{Accuracy: acc})
	}
	return acc, nil
}

// evalData returns the (possibly truncated) test split.
func (a *Analyzer) evalData() (*tensor.Tensor, []int) {
	x, y := a.Data.TestX, a.Data.TestY
	if a.Opts.MaxEval > 0 && a.Opts.MaxEval < x.Shape[0] {
		n := a.Opts.MaxEval
		sample := x.Len() / x.Shape[0]
		x = tensor.NewFrom(x.Data[:n*sample], append([]int{n}, x.Shape[1:]...)...)
		y = y[:n]
	}
	return x, y
}

// ExtractGroups is Step 1: one instrumented forward pass enumerates the
// injection sites, partitioned by Table III group.
func (a *Analyzer) ExtractGroups() map[noise.Group][]noise.Site {
	if a.sites != nil {
		return a.sites
	}
	rec := noise.NewSiteRecorder()
	x, _ := a.evalData()
	sample := x.Len() / x.Shape[0]
	one := tensor.NewFrom(x.Data[:sample], append([]int{1}, x.Shape[1:]...)...)
	a.Net.Forward(one, rec)
	a.sites = rec.ByGroup()
	return a.sites
}

// toleratedNM returns the largest NM whose drop stays within the
// threshold (the grid is descending; 0 is always tolerated).
func toleratedNM(points []SweepPoint, threshold float64) float64 {
	best := 0.0
	for _, p := range points {
		if p.Drop >= -threshold && p.NM > best {
			best = p.NM
		}
	}
	return best
}

// ckptGroup / ckptLayer are the checkpointed forms of a finished group
// or layer analysis (groups serialize by their stable paper name).
type ckptGroup struct {
	Group       string       `json:"group"`
	Points      []SweepPoint `json:"points"`
	ToleratedNM float64      `json:"tolerated_nm"`
	Resilient   bool         `json:"resilient"`
}

type ckptLayer struct {
	Layer       string       `json:"layer"`
	Group       string       `json:"group"`
	Points      []SweepPoint `json:"points"`
	ToleratedNM float64      `json:"tolerated_nm"`
	Resilient   bool         `json:"resilient"`
}

// groupByName resolves a checkpointed group name back to its Group.
func groupByName(name string) (noise.Group, bool) {
	for _, g := range noise.Groups() {
		if g.String() == name {
			return g, true
		}
	}
	return 0, false
}

// AnalyzeGroups is Step 2 + Step 3. With a non-nil a.Checkpoint a
// finished analysis persists under the "groups" section (each individual
// sweep checkpoints its own windows) and later runs return it directly.
func (a *Analyzer) AnalyzeGroups(ctx context.Context, clean float64) ([]GroupResult, error) {
	o := a.Opts
	if a.Checkpoint != nil {
		var recs []ckptGroup
		if a.Checkpoint.Get("groups", &recs) && len(recs) > 0 {
			out := make([]GroupResult, 0, len(recs))
			ok := true
			for _, r := range recs {
				g, found := groupByName(r.Group)
				if !found {
					ok = false
					break
				}
				out = append(out, GroupResult{
					Group: g, Points: r.Points, ToleratedNM: r.ToleratedNM, Resilient: r.Resilient,
				})
			}
			if ok {
				a.Obs.Info("group analysis resumed from checkpoint", obs.F("groups", len(out)))
				if a.Probes != nil {
					// Probe stats are never checkpointed: a fully resumed
					// analysis executes nothing and records nothing.
					a.Obs.Warn("group analysis fully resumed; no probe stats recorded",
						obs.F("hint", "use -checkpoint=false or a fresh -dir for a full probe capture"))
				}
				return out, nil
			}
		}
	}
	groups := a.ExtractGroups()
	total := 0
	for _, g := range noise.Groups() {
		if len(groups[g]) > 0 {
			total++
		}
	}
	start := time.Now()
	// Stable order: Table III order, skipping absent groups.
	var out []GroupResult
	var tols []float64
	for gi, g := range noise.Groups() {
		if len(groups[g]) == 0 {
			continue
		}
		a.ProbeLabel = "groups/" + g.String()
		pts, err := a.sweepScoped(ctx, ScopeForGroup(g), clean, uint64(gi)*100000)
		if err != nil {
			return nil, fmt.Errorf("group sweep %s: %w", g, err)
		}
		tol := toleratedNM(pts, o.Threshold)
		tols = append(tols, tol)
		out = append(out, GroupResult{Group: g, Points: pts, ToleratedNM: tol})
		a.progress("group sweep done", g.String(), len(out), total, start,
			obs.F("tolerated_nm", tol))
	}
	// Step 3: a group is resilient when it tolerates strictly more noise
	// than the median group (or the entire sweep).
	med := median(tols)
	maxNM := o.NMSweep[0]
	for i := range out {
		out[i].Resilient = out[i].ToleratedNM >= maxNM ||
			(out[i].ToleratedNM > med && out[i].ToleratedNM > 0)
	}
	if a.Checkpoint != nil {
		recs := make([]ckptGroup, 0, len(out))
		for _, g := range out {
			recs = append(recs, ckptGroup{
				Group: g.Group.String(), Points: g.Points,
				ToleratedNM: g.ToleratedNM, Resilient: g.Resilient,
			})
		}
		a.checkpointPut("groups", recs)
	}
	return out, nil
}

// AnalyzeLayers is Step 4 + Step 5: per-layer sweeps for each
// non-resilient group. A finished analysis persists under the "layers"
// checkpoint section, mirroring AnalyzeGroups.
func (a *Analyzer) AnalyzeLayers(ctx context.Context, groups []GroupResult, clean float64) ([]LayerResult, error) {
	o := a.Opts
	if a.Checkpoint != nil {
		var recs []ckptLayer
		if a.Checkpoint.Get("layers", &recs) {
			out := make([]LayerResult, 0, len(recs))
			ok := true
			for _, r := range recs {
				g, found := groupByName(r.Group)
				if !found {
					ok = false
					break
				}
				out = append(out, LayerResult{
					Layer: r.Layer, Group: g, Points: r.Points,
					ToleratedNM: r.ToleratedNM, Resilient: r.Resilient,
				})
			}
			if ok {
				a.Obs.Info("layer analysis resumed from checkpoint", obs.F("layers", len(out)))
				if a.Probes != nil {
					a.Obs.Warn("layer analysis fully resumed; no probe stats recorded",
						obs.F("hint", "use -checkpoint=false or a fresh -dir for a full probe capture"))
				}
				return out, nil
			}
		}
	}
	sitesByGroup := a.ExtractGroups()
	total := 0
	for _, gr := range groups {
		if !gr.Resilient {
			total += len(sitesByGroup[gr.Group])
		}
	}
	began := time.Now()
	var out []LayerResult
	for gi, gr := range groups {
		if gr.Resilient {
			continue
		}
		var tols []float64
		start := len(out)
		for li, site := range sitesByGroup[gr.Group] {
			a.ProbeLabel = "layers/" + site.Layer + "/" + gr.Group.String()
			pts, err := a.sweepScoped(ctx, ScopeForLayer(site.Layer, gr.Group), clean,
				uint64(gi+1)*10000000+uint64(li)*100000)
			if err != nil {
				return nil, fmt.Errorf("layer sweep %s/%s: %w", site.Layer, gr.Group, err)
			}
			tol := toleratedNM(pts, o.Threshold)
			tols = append(tols, tol)
			out = append(out, LayerResult{
				Layer: site.Layer, Group: gr.Group,
				Points: pts, ToleratedNM: tol,
			})
			a.progress("layer sweep done", site.Layer+"/"+gr.Group.String(),
				len(out), total, began, obs.F("tolerated_nm", tol))
		}
		// Step 5: mark layers at or above their group's median tolerance.
		med := median(tols)
		for i := start; i < len(out); i++ {
			out[i].Resilient = out[i].ToleratedNM >= med && med > 0
		}
	}
	if a.Checkpoint != nil {
		recs := make([]ckptLayer, 0, len(out))
		for _, l := range out {
			recs = append(recs, ckptLayer{
				Layer: l.Layer, Group: l.Group.String(), Points: l.Points,
				ToleratedNM: l.ToleratedNM, Resilient: l.Resilient,
			})
		}
		a.checkpointPut("layers", recs)
	}
	return out, nil
}

// progress emits one info-level progress line for a finished sweep,
// with the engine's evaluation rate and the ETA for the remaining sweeps
// of the current analysis step.
func (a *Analyzer) progress(msg, target string, done, total int, start time.Time, extra ...obs.Field) {
	if !a.Obs.Enabled(obs.Info) {
		return
	}
	fields := []obs.Field{
		obs.F("target", target),
		obs.F("progress", fmt.Sprintf("%d/%d", done, total)),
		obs.F("jobs_per_sec", fmt.Sprintf("%.1f", a.Obs.Gauge("sweep.last_jobs_per_sec").Value())),
	}
	if done > 0 && done < total {
		elapsed := time.Since(start)
		eta := elapsed / time.Duration(done) * time.Duration(total-done)
		fields = append(fields, obs.F("eta", eta.Round(time.Second)))
	}
	a.Obs.Info(msg, append(fields, extra...)...)
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// ComponentProfile pairs a library component with its measured noise
// parameters under a representative input distribution (see
// approx.Characterize). ChainLen records the MAC-accumulation depth the
// profile was measured at; 0 means depth-agnostic (legacy single-depth
// libraries), matching any site.
type ComponentProfile struct {
	Component approx.Component
	NM, NA    float64
	ChainLen  int
}

// LibraryChainLens is the default set of accumulation depths the
// component library is characterized at: the paper's Fig. 6 profiles use
// 9-MAC chains (3×3 kernels) and the deep 81-MAC chains of 9×9 kernels
// and wide conv layers.
var LibraryChainLens = []int{9, 81}

// ProfileLibrary characterizes every library component under the given
// distribution at the given MAC-chain length, ready for SelectComponents.
func ProfileLibrary(dist approx.InputDist, chainLen, samples int, seed uint64) []ComponentProfile {
	lib := approx.Library()
	out := make([]ComponentProfile, 0, len(lib))
	for _, c := range lib {
		p := approx.Characterize(c.Model, dist, chainLen, samples, seed)
		out = append(out, ComponentProfile{Component: c, NM: p.NM, NA: p.NA, ChainLen: chainLen})
	}
	return out
}

// ProfileLibraryDepths characterizes the library at every given chain
// length, so SelectComponents can match each site against the profile
// measured at the depth closest to the site's real accumulation depth
// (caps.Network.MACDepths) instead of a single hardcoded chain.
func ProfileLibraryDepths(dist approx.InputDist, chainLens []int, samples int, seed uint64) []ComponentProfile {
	var out []ComponentProfile
	for _, cl := range chainLens {
		out = append(out, ProfileLibrary(dist, cl, samples, seed)...)
	}
	return out
}

// PickChainLen returns the available chain length closest (in log scale,
// since error accumulation scales multiplicatively with depth) to the
// site's accumulation depth. An empty availability list returns depth
// itself.
func PickChainLen(available []int, depth int) int {
	if depth < 1 {
		depth = 1
	}
	if len(available) == 0 {
		return depth
	}
	best, bestD := available[0], math.Inf(1)
	for _, c := range available {
		if c < 1 {
			continue
		}
		d := math.Abs(math.Log(float64(c)) - math.Log(float64(depth)))
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// profilesForDepth filters profiles to those characterized at the chain
// length best matching the given accumulation depth. Depth-agnostic
// profiles (ChainLen 0) always survive; a single-depth library or an
// unknown depth passes through unchanged.
func profilesForDepth(profiles []ComponentProfile, depth int) []ComponentProfile {
	if depth <= 0 {
		return profiles
	}
	var lens []int
	seen := map[int]bool{}
	for _, p := range profiles {
		if p.ChainLen > 0 && !seen[p.ChainLen] {
			seen[p.ChainLen] = true
			lens = append(lens, p.ChainLen)
		}
	}
	if len(lens) <= 1 {
		return profiles
	}
	pick := PickChainLen(lens, depth)
	out := make([]ComponentProfile, 0, len(profiles))
	for _, p := range profiles {
		if p.ChainLen == 0 || p.ChainLen == pick {
			out = append(out, p)
		}
	}
	return out
}

// SelectComponents is Step 6: for every site, pick the lowest-power
// component whose measured NM fits the site's tolerated budget. Sites in
// resilient groups get the full budget of the largest swept NM; sites in
// non-resilient groups use their layer's tolerated NM. When the profile
// library carries multiple characterization depths, each site consults
// the profiles measured at the depth closest to its layer's real MAC
// accumulation depth.
func (a *Analyzer) SelectComponents(groups []GroupResult, layers []LayerResult, profiles []ComponentProfile) []Choice {
	o := a.Opts
	maxNM := o.NMSweep[0]
	sitesByGroup := a.ExtractGroups()
	depths := a.Net.MACDepths()

	budget := map[noise.Site]float64{}
	for _, gr := range groups {
		tol := gr.ToleratedNM
		if tol > maxNM {
			tol = maxNM
		}
		for _, s := range sitesByGroup[gr.Group] {
			budget[s] = tol
		}
	}
	for _, lr := range layers {
		budget[noise.Site{Layer: lr.Layer, Group: lr.Group}] = lr.ToleratedNM
	}

	// Cheapest-first scan.
	sorted := append([]ComponentProfile(nil), profiles...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Component.PowerUW < sorted[j].Component.PowerUW
	})

	sites := []noise.Site{}
	for _, g := range noise.Groups() {
		sites = append(sites, sitesByGroup[g]...)
	}

	var out []Choice
	for _, s := range sites {
		b := budget[s]
		cands := profilesForDepth(sorted, depths[s.Layer])
		chosen := cands[len(cands)-1] // fallback: most accurate
		for _, p := range cands {
			if p.NM <= b {
				chosen = p
				break
			}
		}
		if b == 0 {
			// No tolerance measured: force the accurate component.
			for _, p := range cands {
				if p.NM == 0 {
					chosen = p
					break
				}
			}
		}
		out = append(out, Choice{
			Site:        s,
			Component:   chosen.Component,
			ComponentNM: chosen.NM,
			BudgetNM:    b,
		})
	}
	return out
}

// NewPerSiteInjector builds the validation injector: each site receives
// its selected component's NM (NA = 0 as in the paper's general case).
func NewPerSiteInjector(choices []Choice, seed uint64) *noise.PerSite {
	params := map[noise.Site]noise.Params{}
	for _, c := range choices {
		params[c.Site] = noise.Params{NM: c.ComponentNM, NA: 0}
	}
	return noise.NewPerSite(params, seed)
}

// Run executes the full 6-step methodology and assembles the report.
// It is RunMethodology without cancellation; a worker panic (the only
// failure mode left) propagates as a panic, preserving the historical
// behavior for callers that never pass a context.
func (a *Analyzer) Run(profiles []ComponentProfile) *Report {
	r, err := a.RunMethodology(context.Background(), profiles)
	if err != nil {
		panic(err)
	}
	return r
}

// RunMethodology executes the full 6-step methodology and assembles the
// report. Cancelling ctx stops the run at the next batch boundary with
// ctx's error; with a non-nil a.Checkpoint, completed steps persist and
// a rerun resumes bit-identically after the last checkpointed window.
func (a *Analyzer) RunMethodology(ctx context.Context, profiles []ComponentProfile) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	a.Opts = a.Opts.WithDefaults()
	run := a.Obs.StartSpan("methodology.run",
		obs.F("network", a.Net.Name()), obs.F("dataset", a.Data.Name))
	x, y := a.evalData()
	sp := run.Child("methodology.clean_eval")
	clean, err := a.CleanAccuracyCtx(ctx)
	sp.End()
	if err != nil {
		return nil, err
	}

	sp = run.Child("methodology.groups")
	groups, err := a.AnalyzeGroups(ctx, clean)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = run.Child("methodology.layers")
	layers, err := a.AnalyzeLayers(ctx, groups, clean)
	sp.End()
	if err != nil {
		return nil, err
	}
	choices := a.SelectComponents(groups, layers, profiles)

	// Predicted multiplier-energy saving, weighted by per-layer MAC ops.
	mulOps := a.Net.OpsByLayer(1)
	var totalMul, savedMul float64
	for _, c := range choices {
		if c.Site.Group != noise.MACOutputs {
			continue
		}
		m := mulOps[c.Site.Layer].Mul
		totalMul += m
		savedMul += m * c.Component.PowerReduction()
	}
	saving := 0.0
	if totalMul > 0 {
		saving = savedMul / totalMul
	}

	inj := NewPerSiteInjector(choices, a.Opts.Seed+777)
	be, err := a.execBackend(caps.Float{})
	if err != nil {
		return nil, err
	}
	sp = run.Child("methodology.validate")
	validated, err := caps.AccuracyExec(ctx, a.Net, x, y, inj, be, a.Opts.Batch, a.Opts.Workers)
	sp.End()
	if err != nil {
		return nil, err
	}
	run.End()

	return &Report{
		Network:           a.Net.Name(),
		Dataset:           a.Data.Name,
		CleanAccuracy:     clean,
		Groups:            groups,
		Layers:            layers,
		Choices:           choices,
		MulEnergySaving:   saving,
		ValidatedAccuracy: validated,
	}, nil
}

// FormatReport renders a human-readable summary.
func FormatReport(r *Report) string {
	s := fmt.Sprintf("ReD-CaNe report: %s on %s\nclean accuracy: %.2f%%\n\ngroup-wise resilience:\n",
		r.Network, r.Dataset, 100*r.CleanAccuracy)
	for _, g := range r.Groups {
		status := "non-resilient"
		if g.Resilient {
			status = "RESILIENT"
		}
		s += fmt.Sprintf("  %-14s tolerated NM=%.3f  [%s]\n", g.Group, g.ToleratedNM, status)
	}
	if len(r.Layers) > 0 {
		s += "\nlayer-wise (non-resilient groups):\n"
		for _, l := range r.Layers {
			mark := ""
			if l.Resilient {
				mark = "  (resilient)"
			}
			s += fmt.Sprintf("  %-10s %-14s tolerated NM=%.3f%s\n", l.Layer, l.Group, l.ToleratedNM, mark)
		}
	}
	s += "\nselected components:\n"
	for _, c := range r.Choices {
		s += fmt.Sprintf("  %-10s %-14s -> %-12s (NM=%.4f, budget=%.3f, power %-4.0f µW)\n",
			c.Site.Layer, c.Site.Group, c.Component.Name, c.ComponentNM, c.BudgetNM, c.Component.PowerUW)
	}
	s += fmt.Sprintf("\npredicted multiplier-energy saving: %.1f%%\nvalidated accuracy: %.2f%% (drop %.2f pp)\n",
		100*r.MulEnergySaving, 100*r.ValidatedAccuracy, 100*(r.ValidatedAccuracy-r.CleanAccuracy))
	return s
}

package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"redcane/internal/caps"
	"redcane/internal/checkpoint"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

// faultAnalyzer derives the shared fixture with a fault injector and a
// severity grid sized for probabilities/fractions instead of noise
// magnitudes.
func faultAnalyzer(t *testing.T, spec noise.Spec) *Analyzer {
	t.Helper()
	a := derived(t)
	a.Opts.Noise = spec
	a.Opts.NMSweep = []float64{0.05, 0.01, 0}
	a.Opts = a.Opts.WithDefaults()
	return a
}

func TestFaultSweepDeterministicAcrossWorkers(t *testing.T) {
	// The worker-count invariance must hold for every injector kind, not
	// just the Gaussian model: bit flips draw per-stream, stuck-at cells
	// are stream-independent by construction.
	for _, spec := range []noise.Spec{
		{Kind: noise.KindBitFlip},
		{Kind: noise.KindStuckAt0},
		{Kind: noise.KindStuckAt1},
	} {
		a := faultAnalyzer(t, spec)
		x, y := a.evalData()
		clean := caps.Accuracy(a.Net, x, y, noise.None{}, a.Opts.Batch)
		filter := noise.ForGroup(noise.MACOutputs)
		base := faultAnalyzer(t, spec)
		base.Opts.Workers = 1
		want := mustSweep(t, base, filter, clean, 3)
		if want[len(want)-1].Accuracy != clean {
			t.Fatalf("%s: zero-severity point %+v != clean %g", spec, want[len(want)-1], clean)
		}
		for _, workers := range []int{2, 8} {
			b := faultAnalyzer(t, spec)
			b.Opts.Workers = workers
			samePoints(t, spec.String()+" workers", want, mustSweep(t, b, filter, clean, 3))
		}
	}
}

func TestFaultSweepCheckpointResumeByteIdentical(t *testing.T) {
	// Interrupt a fault sweep after its first window and resume it from
	// the checkpoint: the folded points must match an uninterrupted run
	// bit-for-bit for both fault families.
	for _, spec := range []noise.Spec{
		{Kind: noise.KindBitFlip, Bits: 8},
		{Kind: noise.KindStuckAt1},
	} {
		dir := t.TempDir()
		scope := ScopeForGroup(noise.MACOutputs)
		const clean, seedBase = 0.9, 13

		want := faultAnalyzer(t, spec)
		want.Opts.PrefixCacheMB = -1
		wantPts, err := want.sweepScoped(context.Background(), scope, clean, seedBase)
		if err != nil {
			t.Fatal(err)
		}

		a := faultAnalyzer(t, spec)
		a.Opts.PrefixCacheMB = -1
		st, _ := resumeStore(t, dir, a.Opts)
		a.Checkpoint = st
		ctx, cancel := context.WithCancel(context.Background())
		a.afterWindow = func(done, total int) {
			if done == 1 {
				cancel()
			}
		}
		if _, err := a.sweepScoped(ctx, scope, clean, seedBase); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: interrupted sweep error = %v", spec, err)
		}

		b := faultAnalyzer(t, spec)
		b.Opts.PrefixCacheMB = -1
		b.Obs = obs.New(obs.Off, nil)
		st2, resumed := resumeStore(t, dir, b.Opts)
		if !resumed {
			t.Fatalf("%s: checkpointed store reported fresh", spec)
		}
		b.Checkpoint = st2
		gotPts, err := b.sweepScoped(context.Background(), scope, clean, seedBase)
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, spec.String()+" resume", wantPts, gotPts)
	}
}

func TestFleetFaultSweepMatchesLocal(t *testing.T) {
	// Fault campaigns distribute like Gaussian sweeps: the full Options —
	// including the injector spec — travel in the SweepJob, so a fleet
	// fold out of order is byte-identical to the local run.
	spec := noise.Spec{Kind: noise.KindBitFlip}
	local := faultAnalyzer(t, spec)
	scope := ScopeForGroup(noise.MACOutputs)
	want, err := local.sweepScoped(context.Background(), scope, 0.9, 19)
	if err != nil {
		t.Fatal(err)
	}
	fl := &stubFleet{worker: derived(t), reverse: true}
	coord := faultAnalyzer(t, spec)
	coord.Fleet = fl
	got, err := coord.sweepScoped(context.Background(), scope, 0.9, 19)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "fleet fault sweep", want, got)
}

func TestSweepRejectsUnknownInjectorKind(t *testing.T) {
	a := derived(t)
	a.Opts.Noise = noise.Spec{Kind: "cosmic-ray"}
	_, err := a.sweep(context.Background(), noise.ForGroup(noise.MACOutputs), 0.9, 1)
	if err == nil || !strings.Contains(err.Error(), noise.KindBitFlip) {
		t.Fatalf("sweep with bad kind: err = %v, want the valid-kind list", err)
	}
	b := derived(t)
	b.Opts.Noise = noise.Spec{Kind: "cosmic-ray"}
	if _, err := b.EvalWindow(context.Background(), ScopeForGroup(noise.MACOutputs), 1, 0, 1); err == nil {
		t.Fatal("EvalWindow accepted an unknown injector kind")
	}
}

func TestFingerprintBackCompat(t *testing.T) {
	base := Options{NMSweep: []float64{0.5, 0}, Trials: 2, Batch: 8, Threshold: 0.02, Seed: 5, Workers: 1}

	// The acceptance pin: a default (gaussian, exact-nonlinearity) option
	// set must hash the exact pre-dimension format string, so every
	// checkpoint written before the seam existed still resumes.
	o := base.WithDefaults()
	legacy := checkpoint.Fingerprint(fmt.Sprintf(
		"opts-v1|nm=%v|na=%g|trials=%d|batch=%d|thr=%g|seed=%d|maxeval=%d",
		o.NMSweep, o.NA, o.Trials, o.Batch, o.Threshold, o.Seed, o.MaxEval))
	if got := base.Fingerprint(); got != legacy {
		t.Fatalf("default fingerprint %q != legacy format %q", got, legacy)
	}

	// Spelling the defaults out loud changes nothing.
	explicit := base
	explicit.Noise = noise.Spec{Kind: noise.KindGaussian}
	explicit.Softmax, explicit.Squash = "exact", "exact"
	if explicit.Fingerprint() != legacy {
		t.Fatal("explicit gaussian/exact options changed the fingerprint")
	}

	// Every new dimension separates resume state.
	seen := map[string]string{"default": legacy}
	for label, vary := range map[string]func(*Options){
		"bit-flip":   func(o *Options) { o.Noise = noise.Spec{Kind: noise.KindBitFlip} },
		"bit-flip/4": func(o *Options) { o.Noise = noise.Spec{Kind: noise.KindBitFlip, Bits: 4} },
		"stuck-at-0": func(o *Options) { o.Noise = noise.Spec{Kind: noise.KindStuckAt0} },
		"base2":      func(o *Options) { o.Softmax = "base2" },
		"sqnorm":     func(o *Options) { o.Squash = "sqnorm" },
	} {
		v := base
		vary(&v)
		fp := v.Fingerprint()
		for prev, pfp := range seen {
			if fp == pfp {
				t.Fatalf("%s and %s share fingerprint %q", label, prev, fp)
			}
		}
		seen[label] = fp
	}
}

func TestExplicitGaussianSweepMatchesDefault(t *testing.T) {
	// The byte-identity acceptance criterion at the engine level: naming
	// the gaussian kind explicitly runs the identical injector stream as
	// the pre-refactor zero-value path.
	a := derived(t)
	x, y := a.evalData()
	clean := caps.Accuracy(a.Net, x, y, noise.None{}, a.Opts.Batch)
	want := mustSweep(t, derived(t), noise.ForGroup(noise.MACOutputs), clean, 7)
	b := derived(t)
	b.Opts.Noise = noise.Spec{Kind: noise.KindGaussian}
	samePoints(t, "explicit gaussian vs default", want, mustSweep(t, b, noise.ForGroup(noise.MACOutputs), clean, 7))
}

func TestApproxNonlinearitySweepDiffersButZeroPointMatchesItsClean(t *testing.T) {
	// An approximate softmax changes the sweep (the operators really are
	// swapped) but stays internally consistent: the zero-severity point
	// equals the clean accuracy measured under the same operators.
	a := derived(t)
	a.Opts.Softmax = "base2"
	a.Opts = a.Opts.WithDefaults()
	be, err := a.execBackend(caps.Float{})
	if err != nil {
		t.Fatal(err)
	}
	x, y := a.evalData()
	cleanApprox, err := caps.AccuracyExec(context.Background(), a.Net, x, y, noise.None{}, be, a.Opts.Batch, a.Opts.Workers)
	if err != nil {
		t.Fatal(err)
	}
	pts := mustSweep(t, a, noise.ForGroup(noise.MACOutputs), cleanApprox, 11)
	if pts[len(pts)-1].Accuracy != cleanApprox {
		t.Fatalf("zero point %+v != approx clean %g", pts[len(pts)-1], cleanApprox)
	}
	if bad := a.Opts.Fingerprint(); bad == derived(t).Opts.Fingerprint() {
		t.Fatal("approximate-softmax run shares resume state with the exact run")
	}
}

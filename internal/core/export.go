package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// exportedReport is the stable JSON schema of a ReD-CaNe report, for
// downstream tooling (e.g. an accelerator generator consuming the
// per-operation component assignment).
type exportedReport struct {
	Network           string           `json:"network"`
	Dataset           string           `json:"dataset"`
	CleanAccuracy     float64          `json:"clean_accuracy"`
	ValidatedAccuracy float64          `json:"validated_accuracy"`
	MulEnergySaving   float64          `json:"mul_energy_saving"`
	Groups            []exportedGroup  `json:"groups"`
	Layers            []exportedLayer  `json:"layers,omitempty"`
	Choices           []exportedChoice `json:"choices"`
}

type exportedGroup struct {
	Group       string  `json:"group"`
	ToleratedNM float64 `json:"tolerated_nm"`
	Resilient   bool    `json:"resilient"`
}

type exportedLayer struct {
	Layer       string  `json:"layer"`
	Group       string  `json:"group"`
	ToleratedNM float64 `json:"tolerated_nm"`
	Resilient   bool    `json:"resilient"`
}

type exportedChoice struct {
	Layer       string  `json:"layer"`
	Group       string  `json:"group"`
	Component   string  `json:"component"`
	ComponentNM float64 `json:"component_nm"`
	BudgetNM    float64 `json:"budget_nm"`
	PowerUW     float64 `json:"power_uw"`
	AreaUM2     float64 `json:"area_um2"`
}

// WriteJSON serializes the report to w (indented, stable field order).
func (r *Report) WriteJSON(w io.Writer) error {
	e := exportedReport{
		Network:           r.Network,
		Dataset:           r.Dataset,
		CleanAccuracy:     r.CleanAccuracy,
		ValidatedAccuracy: r.ValidatedAccuracy,
		MulEnergySaving:   r.MulEnergySaving,
	}
	for _, g := range r.Groups {
		e.Groups = append(e.Groups, exportedGroup{
			Group: g.Group.String(), ToleratedNM: g.ToleratedNM, Resilient: g.Resilient,
		})
	}
	for _, l := range r.Layers {
		e.Layers = append(e.Layers, exportedLayer{
			Layer: l.Layer, Group: l.Group.String(),
			ToleratedNM: l.ToleratedNM, Resilient: l.Resilient,
		})
	}
	for _, c := range r.Choices {
		e.Choices = append(e.Choices, exportedChoice{
			Layer: c.Site.Layer, Group: c.Site.Group.String(),
			Component: c.Component.Name, ComponentNM: c.ComponentNM,
			BudgetNM: c.BudgetNM,
			PowerUW:  c.Component.PowerUW, AreaUM2: c.Component.AreaUM2,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		return fmt.Errorf("core: export report: %w", err)
	}
	return nil
}

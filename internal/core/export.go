package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// exportedReport is the stable JSON schema of a ReD-CaNe report, for
// downstream tooling (e.g. an accelerator generator consuming the
// per-operation component assignment).
type exportedReport struct {
	Network           string           `json:"network"`
	Dataset           string           `json:"dataset"`
	CleanAccuracy     float64          `json:"clean_accuracy"`
	ValidatedAccuracy float64          `json:"validated_accuracy"`
	MulEnergySaving   float64          `json:"mul_energy_saving"`
	Groups            []exportedGroup  `json:"groups"`
	Layers            []exportedLayer  `json:"layers,omitempty"`
	Choices           []exportedChoice `json:"choices"`
}

type exportedGroup struct {
	Group       string  `json:"group"`
	ToleratedNM float64 `json:"tolerated_nm"`
	Resilient   bool    `json:"resilient"`
}

type exportedLayer struct {
	Layer       string  `json:"layer"`
	Group       string  `json:"group"`
	ToleratedNM float64 `json:"tolerated_nm"`
	Resilient   bool    `json:"resilient"`
}

type exportedChoice struct {
	Layer       string  `json:"layer"`
	Group       string  `json:"group"`
	Component   string  `json:"component"`
	ComponentNM float64 `json:"component_nm"`
	BudgetNM    float64 `json:"budget_nm"`
	PowerUW     float64 `json:"power_uw"`
	AreaUM2     float64 `json:"area_um2"`
}

// exportReport builds the stable JSON form of a report.
func exportReport(r *Report) exportedReport {
	e := exportedReport{
		Network:           r.Network,
		Dataset:           r.Dataset,
		CleanAccuracy:     r.CleanAccuracy,
		ValidatedAccuracy: r.ValidatedAccuracy,
		MulEnergySaving:   r.MulEnergySaving,
	}
	for _, g := range r.Groups {
		e.Groups = append(e.Groups, exportedGroup{
			Group: g.Group.String(), ToleratedNM: g.ToleratedNM, Resilient: g.Resilient,
		})
	}
	for _, l := range r.Layers {
		e.Layers = append(e.Layers, exportedLayer{
			Layer: l.Layer, Group: l.Group.String(),
			ToleratedNM: l.ToleratedNM, Resilient: l.Resilient,
		})
	}
	for _, c := range r.Choices {
		e.Choices = append(e.Choices, exportedChoice{
			Layer: c.Site.Layer, Group: c.Site.Group.String(),
			Component: c.Component.Name, ComponentNM: c.ComponentNM,
			BudgetNM: c.BudgetNM,
			PowerUW:  c.Component.PowerUW, AreaUM2: c.Component.AreaUM2,
		})
	}
	return e
}

// WriteJSON serializes the report to w (indented, stable field order).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(exportReport(r)); err != nil {
		return fmt.Errorf("core: export report: %w", err)
	}
	return nil
}

// exportedRefined extends the report schema with the refinement trace.
// The embedded report carries the POST-refinement choices and validated
// accuracy; the original pre-refinement selection is recoverable from
// the repair steps.
type exportedRefined struct {
	exportedReport
	Refinement exportedRefinement `json:"refinement"`
}

type exportedRefinement struct {
	Steps    []exportedRefineStep `json:"steps"`
	Accuracy float64              `json:"accuracy"`
	Met      bool                 `json:"met"`
}

type exportedRefineStep struct {
	Round    int     `json:"round"`
	Layer    string  `json:"layer"`
	Group    string  `json:"group"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	Accuracy float64 `json:"accuracy"`
}

// WriteRefinedJSON serializes the refined design: the base report with
// its choices and validated accuracy replaced by the refinement outcome,
// plus the repair trace under "refinement".
func WriteRefinedJSON(w io.Writer, base *Report, ref RefineResult) error {
	refined := *base
	refined.Choices = ref.Choices
	refined.ValidatedAccuracy = ref.Accuracy
	out := exportedRefined{exportedReport: exportReport(&refined)}
	out.Refinement.Accuracy = ref.Accuracy
	out.Refinement.Met = ref.Met
	out.Refinement.Steps = []exportedRefineStep{} // [] rather than null when no repairs
	for _, s := range ref.Steps {
		out.Refinement.Steps = append(out.Refinement.Steps, exportedRefineStep{
			Round: s.Round, Layer: s.Site.Layer, Group: s.Site.Group.String(),
			From: s.From, To: s.To, Accuracy: s.Accuracy,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("core: export refined report: %w", err)
	}
	return nil
}

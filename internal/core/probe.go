package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"redcane/internal/caps"
)

// This file aggregates the numeric-health probes (caps.ProbeRecorder)
// collected by the sweep engine into a reportable artifact. The probes
// are opt-in (Analyzer.Probes == nil keeps every evaluation untouched)
// and provably inert: the probed classification pass is the result pass
// — the decorator returns outputs unchanged — so reports and
// checkpoints are byte-identical with probing on or off. Aggregation is
// deterministic: per-job recorders are merged in ascending job index
// within each batch window, windows ascend, and layers keep forward
// order, so every float sum is bit-identical across worker counts.
//
// Probe data is never checkpointed. A sweep resumed from a checkpoint
// only probes the windows it actually re-runs; the emitted stats then
// cover the un-resumed remainder (the engine warns in that case).

// ProbeLayer is the emitted numeric health of one layer at one sweep
// point. SQNRdB is clamped to ±caps.SQNRClampDB (JSON cannot carry
// ±Inf) and meaningful only when RefCount > 0; Saturated counts outputs
// outside the reference pass's [min, max]; Overflow counts accumulator
// saturations under the fixed-point backends' hardware model (always 0
// on the float path).
type ProbeLayer struct {
	Layer     string  `json:"layer"`
	Count     int64   `json:"count"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	Mean      float64 `json:"mean"`
	Variance  float64 `json:"variance"`
	SQNRdB    float64 `json:"sqnr_db"`
	RefCount  int64   `json:"ref_count"`
	Saturated int64   `json:"saturated"`
	Overflow  int64   `json:"overflow"`
}

// ProbePoint is one sweep point's per-layer health, in forward order.
type ProbePoint struct {
	NM     float64      `json:"nm"`
	Layers []ProbeLayer `json:"layers"`
}

// ProbeSweep is the probe record of one sweep (or one backend
// evaluation, which is a single point at NM = 0).
type ProbeSweep struct {
	Label   string       `json:"label"`
	Backend string       `json:"backend"`
	Points  []ProbePoint `json:"points"`
}

// ProbeSet collects probe sweeps across an analysis run. It is safe for
// concurrent use (distinct sweeps may come from concurrent jobs of the
// analysis service); within one sweep, aggregation order is fixed by
// the engine.
type ProbeSet struct {
	mu     sync.Mutex
	sweeps []ProbeSweep
}

// NewProbeSet returns an empty collection.
func NewProbeSet() *ProbeSet { return &ProbeSet{} }

// add appends one completed sweep's record.
func (ps *ProbeSet) add(sw ProbeSweep) {
	if ps == nil {
		return
	}
	ps.mu.Lock()
	ps.sweeps = append(ps.sweeps, sw)
	ps.mu.Unlock()
}

// Sweeps returns a copy of the collected records in collection order.
func (ps *ProbeSet) Sweeps() []ProbeSweep {
	if ps == nil {
		return nil
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return append([]ProbeSweep(nil), ps.sweeps...)
}

// WriteJSON serializes the collection as {"sweeps": [...]} (indented).
func (ps *ProbeSet) WriteJSON(w io.Writer) error {
	doc := struct {
		Sweeps []ProbeSweep `json:"sweeps"`
	}{Sweeps: ps.Sweeps()}
	if doc.Sweeps == nil {
		doc.Sweeps = []ProbeSweep{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("core: write probes: %w", err)
	}
	return nil
}

// WriteCSV serializes the collection as one row per (sweep, point,
// layer).
func (ps *ProbeSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"label", "backend", "nm", "layer", "count",
		"min", "max", "mean", "variance",
		"sqnr_db", "ref_count", "saturated", "overflow",
	}); err != nil {
		return fmt.Errorf("core: write probes csv: %w", err)
	}
	for _, sw := range ps.Sweeps() {
		for _, pt := range sw.Points {
			for _, l := range pt.Layers {
				rec := []string{
					sw.Label, sw.Backend,
					fmt.Sprintf("%g", pt.NM),
					l.Layer,
					fmt.Sprintf("%d", l.Count),
					fmt.Sprintf("%g", l.Min),
					fmt.Sprintf("%g", l.Max),
					fmt.Sprintf("%g", l.Mean),
					fmt.Sprintf("%g", l.Variance),
					fmt.Sprintf("%g", l.SQNRdB),
					fmt.Sprintf("%d", l.RefCount),
					fmt.Sprintf("%d", l.Saturated),
					fmt.Sprintf("%d", l.Overflow),
				}
				if err := cw.Write(rec); err != nil {
					return fmt.Errorf("core: write probes csv: %w", err)
				}
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("core: write probes csv: %w", err)
	}
	return nil
}

// probeAccum merges per-job layer stats for one sweep point, keeping
// layers in first-seen (forward) order so the merged result — float
// sums included — is bit-identical for any worker count.
type probeAccum struct {
	layers []caps.ProbeLayerStats
	index  map[string]int
}

func newProbeAccum() *probeAccum { return &probeAccum{index: map[string]int{}} }

// merge folds one job's stats in. Jobs run the same forward sequence,
// so the layer order is identical across jobs.
func (p *probeAccum) merge(stats []caps.ProbeLayerStats) {
	for _, st := range stats {
		i, ok := p.index[st.Layer]
		if !ok {
			i = len(p.layers)
			p.index[st.Layer] = i
			p.layers = append(p.layers, caps.ProbeLayerStats{
				Layer: st.Layer,
				Min:   math.Inf(1),
				Max:   math.Inf(-1),
			})
		}
		p.layers[i].MergeFrom(st)
	}
}

// emit converts the merged sums into the reportable form.
func (p *probeAccum) emit() []ProbeLayer {
	if p == nil {
		return nil
	}
	out := make([]ProbeLayer, len(p.layers))
	for i, st := range p.layers {
		pl := ProbeLayer{
			Layer:     st.Layer,
			Count:     st.Count,
			Mean:      st.Mean(),
			Variance:  st.Variance(),
			SQNRdB:    st.SQNRdB(),
			RefCount:  st.RefCount,
			Saturated: st.Saturated,
			Overflow:  st.Overflow,
		}
		if st.Count > 0 {
			pl.Min, pl.Max = st.Min, st.Max
		}
		out[i] = pl
	}
	return out
}

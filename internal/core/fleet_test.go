package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"redcane/internal/noise"
	"redcane/internal/obs"
)

// stubFleet is an in-process Fleet: it evaluates every window through a
// second analyzer's EvalWindow — the exact code path a remote worker
// runs — and can deliver the results out of order or stop short, which
// is how the coordinator's fold loop gets exercised without HTTP.
type stubFleet struct {
	worker  *Analyzer
	reverse bool // deliver windows in descending order
	limit   int  // deliver at most this many windows (0 = all)

	gotStart  int
	delivered int
}

func (f *stubFleet) RunSweep(ctx context.Context, job SweepJob, start int) (<-chan WindowResult, error) {
	f.gotStart = start
	var results []WindowResult
	for b0 := start; b0 < job.NB; b0 += job.Window {
		b1 := b0 + job.Window
		if b1 > job.NB {
			b1 = job.NB
		}
		f.worker.Opts = job.Opts
		correct, err := f.worker.EvalWindow(ctx, job.Scope, job.SeedBase, b0, b1)
		if err != nil {
			return nil, err
		}
		results = append(results, WindowResult{B0: b0, B1: b1, Correct: correct})
	}
	if f.reverse {
		for i, j := 0, len(results)-1; i < j; i, j = i+1, j-1 {
			results[i], results[j] = results[j], results[i]
		}
	}
	if f.limit > 0 && len(results) > f.limit {
		results = results[:f.limit]
	}
	f.delivered = len(results)
	ch := make(chan WindowResult, len(results))
	for _, r := range results {
		ch <- r
	}
	close(ch)
	return ch, nil
}

func TestScopeFilterRoundTrip(t *testing.T) {
	gf, err := ScopeForGroup(noise.MACOutputs).Filter()
	if err != nil {
		t.Fatal(err)
	}
	if !gf(noise.Site{Layer: "Conv2D", Group: noise.MACOutputs}) ||
		gf(noise.Site{Layer: "Conv2D", Group: noise.Softmax}) {
		t.Fatal("group scope filter does not match noise.ForGroup")
	}
	lf, err := ScopeForLayer("Conv2D", noise.MACOutputs).Filter()
	if err != nil {
		t.Fatal(err)
	}
	if !lf(noise.Site{Layer: "Conv2D", Group: noise.MACOutputs}) ||
		lf(noise.Site{Layer: "Primary", Group: noise.MACOutputs}) {
		t.Fatal("layer scope filter does not match noise.ForLayerGroup")
	}
	if _, err := (SweepScope{Group: "bogus"}).Filter(); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestEvalWindowFoldsLikeOneBigWindow(t *testing.T) {
	// Summing single-batch windows must equal one full-range window: the
	// per-batch counts are independent integers (the fleet invariant).
	a := derived(t)
	scope := ScopeForGroup(noise.MACOutputs)
	_, nb := a.SweepGrid()
	if nb < 2 {
		t.Fatalf("fixture yields %d batches; need >= 2", nb)
	}
	whole, err := a.EvalWindow(context.Background(), scope, 31, 0, nb)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]int, len(whole))
	for b := 0; b < nb; b++ {
		w, err := derived(t).EvalWindow(context.Background(), scope, 31, b, b+1)
		if err != nil {
			t.Fatal(err)
		}
		if len(w) != len(sum) {
			t.Fatalf("window [%d,%d) returned %d counts, want %d", b, b+1, len(w), len(sum))
		}
		for i, c := range w {
			sum[i] += c
		}
	}
	for i := range sum {
		if sum[i] != whole[i] {
			t.Fatalf("eval %d: windowed sum %d != whole-range %d", i, sum[i], whole[i])
		}
	}

	// Out-of-range windows are refused, not silently clamped.
	for _, bad := range [][2]int{{-1, 1}, {2, 2}, {0, nb + 1}} {
		if _, err := a.EvalWindow(context.Background(), scope, 31, bad[0], bad[1]); err == nil {
			t.Fatalf("window [%d,%d) accepted with nb=%d", bad[0], bad[1], nb)
		}
	}
}

func TestFleetSweepMatchesLocalSweep(t *testing.T) {
	// The tentpole identity: a sweep folded from fleet windows — delivered
	// out of order — must be bit-identical to the local single-process run.
	for _, scope := range []SweepScope{
		ScopeForGroup(noise.MACOutputs),
		ScopeForLayer("Conv2D", noise.MACOutputs),
	} {
		local := derived(t)
		want, err := local.sweepScoped(context.Background(), scope, 0.9, 17)
		if err != nil {
			t.Fatal(err)
		}

		fl := &stubFleet{worker: derived(t), reverse: true}
		coord := derived(t)
		coord.Fleet = fl
		got, err := coord.sweepScoped(context.Background(), scope, 0.9, 17)
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, "fleet vs local ("+scope.String()+")", want, got)
		if fl.gotStart != 0 {
			t.Fatalf("fresh fleet sweep started at batch %d", fl.gotStart)
		}
	}
}

func TestFleetSweepResumesLocalCheckpoint(t *testing.T) {
	// Local and fleet sweeps share one checkpoint format: interrupt a
	// LOCAL run after its first batch window, then finish it over the
	// fleet — only the unfolded suffix is distributed and the points are
	// bit-identical to an uninterrupted local run.
	dir := t.TempDir()
	scope := ScopeForGroup(noise.Softmax)
	const clean, seedBase = 0.9, 9

	want := derived(t)
	want.Opts.PrefixCacheMB = -1
	wantPts, err := want.sweepScoped(context.Background(), scope, clean, seedBase)
	if err != nil {
		t.Fatal(err)
	}

	a := derived(t)
	a.Opts.PrefixCacheMB = -1 // single-batch windows: checkpoint after batch 1
	st, _ := resumeStore(t, dir, a.Opts)
	a.Checkpoint = st
	ctx, cancel := context.WithCancel(context.Background())
	a.afterWindow = func(done, total int) {
		if done == 1 {
			cancel()
		}
	}
	if _, err := a.sweepScoped(ctx, scope, clean, seedBase); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error = %v", err)
	}

	fl := &stubFleet{worker: derived(t)}
	b := derived(t)
	b.Opts.PrefixCacheMB = -1
	b.Obs = obs.New(obs.Off, nil)
	st2, resumed := resumeStore(t, dir, b.Opts)
	if !resumed {
		t.Fatal("store with checkpointed data reported fresh")
	}
	b.Checkpoint = st2
	b.Fleet = fl
	gotPts, err := b.sweepScoped(context.Background(), scope, clean, seedBase)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "fleet resume vs uninterrupted local", wantPts, gotPts)
	if fl.gotStart != 1 {
		t.Fatalf("fleet resumed at batch %d, want 1 (the local checkpoint)", fl.gotStart)
	}

	// And back the other way: a local analyzer finishes instantly from the
	// fleet-written checkpoint, scheduling nothing.
	c := derived(t)
	c.Opts.PrefixCacheMB = -1
	c.Obs = obs.New(obs.Off, nil)
	st3, _ := resumeStore(t, dir, c.Opts)
	c.Checkpoint = st3
	again, err := c.sweepScoped(context.Background(), scope, clean, seedBase)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "local resume of fleet checkpoint", wantPts, again)
	evals := 0
	for _, nm := range c.Opts.NMSweep {
		if nm != 0 {
			evals += c.Opts.Trials
		}
	}
	nb := (c.Data.TestX.Shape[0] + c.Opts.Batch - 1) / c.Opts.Batch
	if v := c.Obs.Counter("sweep.resumed_jobs").Value(); v != int64(evals*nb) {
		t.Fatalf("local resume of fleet checkpoint repeated jobs: resumed %d, want %d", v, evals*nb)
	}
}

func TestFleetSweepIncompleteIsAnError(t *testing.T) {
	// A fleet that closes the results channel short of the full grid (a
	// coordinator shutdown, a fleet failure) must surface an error, never
	// assemble points from a partial fold — the folded prefix stays in the
	// checkpoint for the next attempt.
	dir := t.TempDir()
	a := derived(t)
	st, _ := resumeStore(t, dir, a.Opts)
	a.Checkpoint = st
	fl := &stubFleet{worker: derived(t), limit: 1}
	a.Fleet = fl
	scope := ScopeForGroup(noise.MACOutputs)
	_, err := a.sweepScoped(context.Background(), scope, 0.9, 23)
	if err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("partial fleet delivery: err = %v, want incomplete", err)
	}

	// The next attempt resumes after the folded prefix and completes.
	want, err := derived(t).sweepScoped(context.Background(), scope, 0.9, 23)
	if err != nil {
		t.Fatal(err)
	}
	b := derived(t)
	st2, _ := resumeStore(t, dir, b.Opts)
	b.Checkpoint = st2
	fl2 := &stubFleet{worker: derived(t)}
	b.Fleet = fl2
	got, err := b.sweepScoped(context.Background(), scope, 0.9, 23)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "retry after incomplete fleet run", want, got)
	if fl2.gotStart != 1 {
		t.Fatalf("retry started at batch %d, want 1", fl2.gotStart)
	}
}

package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"redcane/internal/caps"
	"redcane/internal/noise"
)

// RefineStep records one repair action of the refinement loop.
type RefineStep struct {
	Round    int
	Site     noise.Site
	From, To string
	// Accuracy is the validated accuracy after the upgrade.
	Accuracy float64
}

// RefineResult is the outcome of Refine.
type RefineResult struct {
	Choices []Choice
	Steps   []RefineStep
	// Final validated accuracy and whether the target was met.
	Accuracy float64
	Met      bool
}

// Refine extends the methodology's Step 6 with a validate-and-repair
// loop (a natural extension the paper leaves open): the full approximate
// design is validated by simultaneous per-site injection; while the
// accuracy drop exceeds maxDrop, the active site with the largest noise
// magnitude is upgraded to the next more accurate library component, and
// validation repeats. This closes the gap between per-site budgets
// (measured in isolation) and their composed effect.
//
// Cancelling ctx stops the loop at the next validation batch boundary
// with ctx's error. Refinement rounds are not checkpointed: the loop
// restarts from the design's original choices on rerun (each round is a
// single validation pass, cheap next to the sweeps that produced the
// design).
func (a *Analyzer) Refine(ctx context.Context, choices []Choice, profiles []ComponentProfile, clean, maxDrop float64, maxRounds int) (RefineResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	a.Opts = a.Opts.WithDefaults()
	x, y := a.evalData()

	// Profiles ordered by ascending NM = the upgrade ladder. With a
	// multi-depth library the ladder is narrowed per upgrade to the
	// profiles characterized at the failing site's accumulation depth, so
	// a component's rank reflects its error at that site, not at some
	// other chain length.
	ladder := append([]ComponentProfile(nil), profiles...)
	sort.Slice(ladder, func(i, j int) bool { return ladder[i].NM < ladder[j].NM })
	depths := a.Net.MACDepths()
	ladderFor := func(site noise.Site, component string) ([]ComponentProfile, int) {
		sub := profilesForDepth(ladder, depths[site.Layer])
		for i, p := range sub {
			if p.Component.Name == component {
				return sub, i
			}
		}
		// Component missing from the depth-matched subset (e.g. choices
		// made against a different library): fall back to the full ladder.
		for i, p := range ladder {
			if p.Component.Name == component {
				return ladder, i
			}
		}
		return ladder, 0
	}

	cur := append([]Choice(nil), choices...)
	res := RefineResult{}
	for round := 0; round < maxRounds; round++ {
		inj := NewPerSiteInjector(cur, a.Opts.Seed+900+uint64(round))
		acc, err := caps.AccuracyCtx(ctx, a.Net, x, y, inj, a.Opts.Batch, a.Opts.Workers)
		if err != nil {
			res.Choices = cur
			return res, err
		}
		res.Accuracy = acc
		if acc >= clean-maxDrop {
			res.Met = true
			break
		}
		// Upgrade the noisiest non-exact choice.
		worst := -1
		for i, c := range cur {
			if c.ComponentNM == 0 {
				continue
			}
			if worst < 0 || c.ComponentNM > cur[worst].ComponentNM {
				worst = i
			}
		}
		if worst < 0 {
			break // everything already exact; nothing to repair
		}
		sub, r := ladderFor(cur[worst].Site, cur[worst].Component.Name)
		if r == 0 {
			break
		}
		next := sub[r-1]
		step := RefineStep{
			Round: round,
			Site:  cur[worst].Site,
			From:  cur[worst].Component.Name,
			To:    next.Component.Name,
		}
		cur[worst].Component = next.Component
		cur[worst].ComponentNM = next.NM
		inj2 := NewPerSiteInjector(cur, a.Opts.Seed+900+uint64(round))
		acc2, err := caps.AccuracyCtx(ctx, a.Net, x, y, inj2, a.Opts.Batch, a.Opts.Workers)
		if err != nil {
			res.Choices = cur
			return res, err
		}
		step.Accuracy = acc2
		res.Steps = append(res.Steps, step)
		res.Accuracy = step.Accuracy
		if step.Accuracy >= clean-maxDrop {
			res.Met = true
			break
		}
	}
	res.Choices = cur
	return res, nil
}

// FormatRefine renders the refinement trace.
func FormatRefine(r RefineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "refinement: %d upgrades, final accuracy %.2f%%, target met: %v\n",
		len(r.Steps), 100*r.Accuracy, r.Met)
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "  round %d: %s/%s  %s -> %s  (acc %.2f%%)\n",
			s.Round, s.Site.Layer, s.Site.Group, s.From, s.To, 100*s.Accuracy)
	}
	return b.String()
}

package core

import (
	"testing"

	"redcane/internal/caps"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

// instrumented runs three representative sweeps (cached frontier, warm
// reuse of that frontier, and a frontier-0 bypass) with a fresh Obs at
// the given worker count, returning the metrics snapshot and the sweep
// points.
func instrumented(t *testing.T, workers int) (obs.Snapshot, [][]SweepPoint) {
	t.Helper()
	a := derived(t)
	o := obs.New(obs.Off, nil) // metrics only, no events
	a.Obs = o
	a.Net.Obs = o
	defer func() { a.Net.Obs = nil }()
	a.Opts.Workers = workers
	x, y := a.evalData()
	clean := caps.Accuracy(a.Net, x, y, noise.None{}, a.Opts.Batch)
	pts := [][]SweepPoint{
		mustSweep(t, a, noise.ForGroup(noise.Softmax), clean, 3),
		mustSweep(t, a, noise.ForGroup(noise.LogitsUpdate), clean, 4),
		mustSweep(t, a, noise.ForGroup(noise.MACOutputs), clean, 5),
	}
	return o.Metrics().Snapshot(), pts
}

func TestMetricsSnapshotDeterministicAcrossWorkers(t *testing.T) {
	// The obs determinism contract: counter values and timer invocation
	// counts depend only on the work performed, never on how it was
	// scheduled — a sweep instrumented at -workers 1 and -workers 8 must
	// produce identical counters and timer counts (durations and gauges
	// are wall-clock telemetry and exempt).
	base, basePts := instrumented(t, 1)
	for _, workers := range []int{2, 8} {
		snap, pts := instrumented(t, workers)
		for i := range basePts {
			samePoints(t, "instrumented sweep", basePts[i], pts[i])
		}
		if len(snap.Counters) != len(base.Counters) {
			t.Fatalf("counter sets differ: %d vs %d", len(snap.Counters), len(base.Counters))
		}
		for name, want := range base.Counters {
			if got := snap.Counters[name]; got != want {
				t.Errorf("workers=%d: counter %s = %d, want %d", workers, name, got, want)
			}
		}
		if len(snap.Timers) != len(base.Timers) {
			t.Fatalf("timer sets differ: %d vs %d", len(snap.Timers), len(base.Timers))
		}
		for name, want := range base.Timers {
			if got := snap.Timers[name]; got.Count != want.Count {
				t.Errorf("workers=%d: timer %s count = %d, want %d", workers, name, got.Count, want.Count)
			}
		}
	}
}

func TestSweepResultsUnchangedByTelemetry(t *testing.T) {
	// Instrumentation must never alter numerical results: an instrumented
	// sweep is bit-identical to a bare one.
	bare := derived(t)
	x, y := bare.evalData()
	clean := caps.Accuracy(bare.Net, x, y, noise.None{}, bare.Opts.Batch)
	want := [][]SweepPoint{
		mustSweep(t, bare, noise.ForGroup(noise.Softmax), clean, 3),
		mustSweep(t, bare, noise.ForGroup(noise.LogitsUpdate), clean, 4),
		mustSweep(t, bare, noise.ForGroup(noise.MACOutputs), clean, 5),
	}
	_, got := instrumented(t, 4)
	for i := range want {
		samePoints(t, "telemetry on vs off", want[i], got[i])
	}
}

func TestSweepEngineMetricValues(t *testing.T) {
	snap, _ := instrumented(t, 4)
	// Softmax sweep computes the prefix (miss + retain), logits-update
	// reuses it (hit), MAC-outputs fronts at layer 0 (bypass).
	if v := snap.Counters["sweep.prefix_cache.misses"]; v < 1 {
		t.Errorf("prefix-cache misses = %d, want >= 1", v)
	}
	if v := snap.Counters["sweep.prefix_cache.hits"]; v < 1 {
		t.Errorf("prefix-cache hits = %d, want >= 1", v)
	}
	if v := snap.Counters["sweep.prefix_cache.bypass"]; v < 1 {
		t.Errorf("prefix-cache bypass = %d, want >= 1", v)
	}
	if v := snap.Counters["sweep.sweeps"]; v != 3 {
		t.Errorf("sweeps = %d, want 3", v)
	}
	if v := snap.Counters["sweep.jobs"]; v < 1 {
		t.Errorf("jobs = %d, want >= 1", v)
	}
	if v := snap.Gauges["sweep.prefix_cache.retained_bytes"]; v <= 0 {
		t.Errorf("retained_bytes = %v, want > 0", v)
	}
	if v := snap.Gauges["sweep.workers.utilization"]; v <= 0 || v > 1 {
		t.Errorf("utilization = %v, want in (0, 1]", v)
	}
	if v := snap.Gauges["tensor.scratch.takes"]; v <= 0 {
		t.Errorf("scratch takes = %v, want > 0", v)
	}
	// Per-layer forward timers split by pass kind: the suffix replays and
	// the prefix computations must both appear.
	sawSuffix, sawPrefix := false, false
	for name, ts := range snap.Timers {
		if ts.Count <= 0 {
			t.Errorf("timer %s has count %d", name, ts.Count)
		}
		if len(name) > len("caps.forward.suffix.") && name[:len("caps.forward.suffix.")] == "caps.forward.suffix." {
			sawSuffix = true
		}
		if len(name) > len("caps.forward.prefix.") && name[:len("caps.forward.prefix.")] == "caps.forward.prefix." {
			sawPrefix = true
		}
	}
	if !sawSuffix || !sawPrefix {
		t.Errorf("per-layer forward timers missing: suffix=%v prefix=%v (timers: %v)",
			sawSuffix, sawPrefix, snap.Timers)
	}
	if ts := snap.Timers["sweep.duration"]; ts.Count != 3 {
		t.Errorf("sweep.duration count = %d, want 3", ts.Count)
	}
}

package caps

import (
	"math"
	"testing"
)

func TestOpsByLayerDecomposesCells(t *testing.T) {
	cell := buildTinyCell(70)
	net := &Network{
		NetName:    "cellnet",
		InputShape: []int{8, 8, 8},
		Layers: []Layer{
			cell,
			newClassCaps("ClassCaps", 2*4*4, 4, 3, 8, 3, 71),
		},
	}
	byLayer := net.OpsByLayer(1)
	// The cell contributes its four inner layers, not itself.
	if _, ok := byLayer["Cell1"]; ok {
		t.Fatal("cell must be decomposed, not reported as one layer")
	}
	for _, want := range []string{"Caps2D1", "Caps2D2", "Caps2D3", "Caps2D4", "ClassCaps"} {
		if byLayer[want].Mul <= 0 {
			t.Fatalf("layer %s missing from OpsByLayer: %+v", want, byLayer)
		}
	}
	// Per-layer muls must sum to (total − the residual add, which has no
	// muls), so mul totals match exactly.
	total := net.Ops(1)
	sum := 0.0
	for _, c := range byLayer {
		sum += c.Mul
	}
	if math.Abs(sum-total.Mul) > 1e-9 {
		t.Fatalf("per-layer mul sum %g != total %g", sum, total.Mul)
	}
}

func TestOpsByLayerScalesWithBatch(t *testing.T) {
	net := &Network{
		NetName:    "n",
		InputShape: []int{1, 8, 8},
		Layers:     []Layer{newConv("Conv2D", 1, 4, 3, 1, 1, true, 72)},
	}
	one := net.OpsByLayer(1)["Conv2D"]
	four := net.OpsByLayer(4)["Conv2D"]
	if math.Abs(four.Mul-4*one.Mul) > 1e-9 {
		t.Fatalf("ops not linear in batch: %g vs %g", four.Mul, one.Mul)
	}
}

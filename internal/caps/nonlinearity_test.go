package caps

import (
	"math"
	"testing"

	"redcane/internal/noise"
	"redcane/internal/tensor"
)

// halvedSoftmax is a visibly-wrong softmax stand-in for seam tests: it
// returns the exact softmax scaled by 1/2, so affected outputs are easy
// to detect without depending on internal/approx (which would cycle).
func halvedSoftmax(t *tensor.Tensor, axis int) *tensor.Tensor {
	out := tensor.Softmax(t, axis)
	for i := range out.Data {
		out.Data[i] *= 0.5
	}
	return out
}

func halvedSquash(t *tensor.Tensor, axis int) *tensor.Tensor {
	out := tensor.Squash(t, axis)
	for i := range out.Data {
		out.Data[i] *= 0.5
	}
	return out
}

// nlNet is a CapsNet-shaped fixture: conv → primary caps → routed caps.
func nlNet() *Network {
	return &Network{Layers: []Layer{
		newConv("Conv2D", 1, 4, 3, 1, 1, true, 1),
		newCaps2D("Primary", 4, 2, 4, 3, 2, 1, 2),
		// 12×12 input → Primary (stride 2) leaves 6×6 positions of 2
		// capsules: 72 input capsules of dim 4 at the routing layer.
		newClassCaps("ClassCaps", 2*6*6, 4, 3, 4, 3, 3),
	}}
}

func TestWithNonlinearityExactIsIdentity(t *testing.T) {
	// The acceptance invariant: the exact pair is not just bit-identical
	// to the undecorated backend — it IS the undecorated backend, so the
	// default path cannot drift from the pre-seam code.
	be := Float{}
	if got := WithNonlinearity(be, Nonlinearity{}); got != Backend(be) {
		t.Fatalf("exact decoration returned %T, want the backend unchanged", got)
	}
	if !(Nonlinearity{}).Exact() || (Nonlinearity{}).Tag() != "" {
		t.Fatal("zero Nonlinearity is not the exact pair")
	}
}

func TestNonlinearityTagAndName(t *testing.T) {
	nl := Nonlinearity{
		SoftmaxName: "base2", SoftmaxFn: halvedSoftmax,
		SquashName: "sqnorm", SquashFn: halvedSquash,
	}
	if nl.Tag() != "sm=base2,sq=sqnorm" {
		t.Fatalf("Tag = %q", nl.Tag())
	}
	be := WithNonlinearity(Float{}, nl)
	if be.Name() != "float+sm=base2,sq=sqnorm" {
		t.Fatalf("Name = %q", be.Name())
	}
	// BaseID is the inner backend's: the prefix cache may be shared.
	if be.BaseID() != (Float{}).BaseID() {
		t.Fatalf("BaseID = %q, want %q", be.BaseID(), (Float{}).BaseID())
	}
}

func TestNonlinearityFrontierPositions(t *testing.T) {
	n := nlNet()
	exact := n.NonlinearityFrontier(Nonlinearity{})
	if exact != len(n.Layers) {
		t.Fatalf("exact frontier = %d, want %d", exact, len(n.Layers))
	}
	// A swapped squash reaches the first capsule layer (Primary, index 1);
	// a swapped softmax only the routing layer (ClassCaps, index 2).
	sq := n.NonlinearityFrontier(Nonlinearity{SquashName: "x", SquashFn: halvedSquash})
	if sq != 1 {
		t.Fatalf("squash frontier = %d, want 1", sq)
	}
	sm := n.NonlinearityFrontier(Nonlinearity{SoftmaxName: "x", SoftmaxFn: halvedSoftmax})
	if sm != 2 {
		t.Fatalf("softmax frontier = %d, want 2", sm)
	}
	// BackendFrontier folds the nonlinearity frontier into the sweep
	// engine's clamp.
	be := WithNonlinearity(Float{}, Nonlinearity{SoftmaxName: "x", SoftmaxFn: halvedSoftmax})
	if got := n.BackendFrontier(be); got != 2 {
		t.Fatalf("BackendFrontier = %d, want 2", got)
	}
	if got := n.BackendFrontier(Float{}); got != len(n.Layers) {
		t.Fatalf("exact BackendFrontier = %d, want %d", got, len(n.Layers))
	}
}

func TestNonlinearityAffectsOnlyLayersPastFrontier(t *testing.T) {
	// Activations before the frontier are bit-identical with and without
	// the swapped operators — the invariant the prefix cache rests on.
	n := nlNet()
	x := rt(11, 3, 1, 12, 12)
	nl := Nonlinearity{SoftmaxName: "x", SoftmaxFn: halvedSoftmax}
	be := WithNonlinearity(Float{}, nl)
	frontier := n.NonlinearityFrontier(nl)

	exactPrefix := n.ForwardTo(frontier, x, noise.None{})
	nlPrefix := n.ForwardToExec(frontier, x, noise.None{}, be)
	for i := range exactPrefix.Data {
		if exactPrefix.Data[i] != nlPrefix.Data[i] {
			t.Fatalf("prefix activation %d differs under swapped softmax", i)
		}
	}

	exactOut := n.Forward(x, noise.None{})
	nlOut := n.ForwardExec(x, noise.None{}, be)
	changed := false
	for i := range exactOut.Data {
		if exactOut.Data[i] != nlOut.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("swapped softmax did not change routed outputs")
	}
}

func TestNonlinearitySurvivesProbeWrapping(t *testing.T) {
	// ProbeBackend must delegate the carrier interface, or probing would
	// silently revert an approximate-nonlinearity run to exact operators.
	nl := Nonlinearity{SoftmaxName: "x", SoftmaxFn: halvedSoftmax}
	be := WithNonlinearity(Float{}, nl)
	probed := NewProbeBackend(be, NewProbeRecorder())
	c, ok := Backend(probed).(NonlinearityCarrier)
	if !ok {
		t.Fatal("probe-wrapped backend lost the NonlinearityCarrier interface")
	}
	if got := c.Nonlinearity(); got.SoftmaxName != "x" || got.SoftmaxFn == nil {
		t.Fatalf("probe-wrapped nonlinearity = %+v", got)
	}
	n := nlNet()
	x := rt(12, 2, 1, 12, 12)
	want := n.ForwardExec(x, noise.None{}, be)
	got := n.ForwardExec(x, noise.None{}, probed)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("probed forward differs from unprobed at %d", i)
		}
	}
}

func TestSwappedSquashStillBoundsNorms(t *testing.T) {
	// A squash substitute flows through every capsule layer; the routing
	// outputs must still be finite (a numerically exploding variant would
	// corrupt every sweep silently).
	nl := Nonlinearity{SquashName: "x", SquashFn: func(t *tensor.Tensor, axis int) *tensor.Tensor {
		return tensor.Squash(t, axis)
	}}
	n := nlNet()
	x := rt(13, 2, 1, 12, 12)
	be := WithNonlinearity(Float{}, nl)
	out := n.ForwardExec(x, noise.None{}, be)
	want := n.Forward(x, noise.None{})
	for i := range out.Data {
		if math.IsNaN(out.Data[i]) || math.IsInf(out.Data[i], 0) {
			t.Fatalf("non-finite output at %d", i)
		}
		// This variant is the exact kernel under the seam: outputs must be
		// bit-identical, proving the seam adds no numeric detour.
		if out.Data[i] != want.Data[i] {
			t.Fatalf("seam-threaded exact squash differs at %d", i)
		}
	}
}

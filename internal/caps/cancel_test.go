package caps

import (
	"context"
	"errors"
	"testing"

	"redcane/internal/noise"
	"redcane/internal/tensor"
)

// statefulInjector is an Injector without Split: it forces AccuracyCtx
// onto the sequential shared-stream path.
type statefulInjector struct{}

func (statefulInjector) Inject(_ noise.Site, x *tensor.Tensor) *tensor.Tensor { return x }

func TestAccuracyCtxCancellation(t *testing.T) {
	net := parallelTestNet()
	x := rt(31, 8, 1, 8, 8)
	labels := make([]int, 8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// All three scheduling paths must honor a cancelled context: the
	// splittable serial and parallel pools, and the stateful fallback.
	cases := []struct {
		name    string
		inj     noise.Injector
		workers int
	}{
		{"splittable serial", noise.None{}, 1},
		{"splittable parallel", noise.None{}, 4},
		{"stateful", statefulInjector{}, 1},
	}
	for _, c := range cases {
		if _, err := AccuracyCtx(ctx, net, x, labels, c.inj, 2, c.workers); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error = %v, want context.Canceled", c.name, err)
		}
	}

	// A background context reproduces the legacy wrapper bit-for-bit.
	want := AccuracyWorkers(net, x, labels, noise.None{}, 2, 1)
	got, err := AccuracyCtx(context.Background(), net, x, labels, noise.None{}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("AccuracyCtx = %g, AccuracyWorkers = %g", got, want)
	}
}

package caps

import (
	"testing"

	"redcane/internal/noise"
)

// parallelTestNet builds a small network with a conv stem, a capsule cell
// and both routing layers, so every layer kind appears in the split- and
// parallel-forward tests.
func parallelTestNet() *Network {
	return &Network{
		NetName:    "ptest",
		InputShape: []int{1, 8, 8},
		Layers: []Layer{
			newConv("Conv2D", 1, 4, 3, 1, 1, true, 10),
			newCaps2D("Caps2D1", 4, 4, 4, 3, 2, 1, 11),
			newCaps3D("Caps3D", 4, 4, 3, 4, 3, 2, 1, 2, 12),
			newClassCaps("ClassCaps", 3*2*2, 4, 3, 6, 3, 13),
		},
	}
}

func TestForwardFromAdjoint(t *testing.T) {
	// Splitting a clean forward pass at ANY boundary k must be
	// bit-identical to the unsplit pass.
	net := parallelTestNet()
	x := rt(20, 5, 1, 8, 8)
	want := net.Forward(x, noise.None{})
	for k := 0; k <= len(net.Layers); k++ {
		prefix := net.ForwardTo(k, x, noise.None{})
		got := net.ForwardFrom(k, prefix, noise.None{})
		if !got.SameShape(want) {
			t.Fatalf("k=%d: shape %v vs %v", k, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("k=%d: element %d = %g, want %g", k, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestForwardFromMatchesFullForwardUnderInjection(t *testing.T) {
	// For an injector active only at sites of layer k and beyond, replaying
	// the clean prefix up to the frontier must reproduce the noisy pass
	// bit-for-bit (same RNG consumption on the suffix).
	net := parallelTestNet()
	x := rt(21, 3, 1, 8, 8)
	for _, layer := range []string{"Caps3D", "ClassCaps"} {
		filter := noise.ForLayerGroup(layer, noise.MACOutputs)
		k := net.InjectionFrontier(filter)
		if k == 0 || k >= len(net.Layers) {
			t.Fatalf("frontier for %s = %d", layer, k)
		}
		want := net.Forward(x, noise.NewGaussian(0.1, 0, filter, 99))
		prefix := net.ForwardTo(k, x, noise.None{})
		got := net.ForwardFrom(k, prefix, noise.NewGaussian(0.1, 0, filter, 99))
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("layer %s: suffix replay diverged at %d", layer, i)
			}
		}
	}
}

func TestInjectionFrontier(t *testing.T) {
	net := parallelTestNet()
	cases := []struct {
		filter noise.Filter
		want   int
	}{
		{noise.All(), 0},
		{noise.ForGroup(noise.MACOutputs), 0},
		{noise.ForGroup(noise.Softmax), 2}, // first routing layer
		{noise.ForLayerGroup("ClassCaps", noise.LogitsUpdate), 3},
		{noise.ForSites(), len(net.Layers)}, // matches nothing
	}
	for i, c := range cases {
		if got := net.InjectionFrontier(c.filter); got != c.want {
			t.Fatalf("case %d: frontier = %d, want %d", i, got, c.want)
		}
	}
}

func TestAccuracyParallelMatchesSerial(t *testing.T) {
	// The satellite determinism requirement: with a seeded Gaussian
	// injector, the batch-parallel accuracy path must equal the serial
	// path bit-for-bit, because batch i always evaluates under stream i.
	net := parallelTestNet()
	n := 13 // deliberately not a batch multiple
	x := rt(22, n, 1, 8, 8)
	labels := net.Classify(x, noise.None{})
	inj := noise.NewGaussian(0.3, 0.05, noise.ForGroup(noise.MACOutputs), 7)
	serial := AccuracyWorkers(net, x, labels, inj, 4, 1)
	for _, workers := range []int{2, 4, 8} {
		if par := AccuracyWorkers(net, x, labels, inj, 4, workers); par != serial {
			t.Fatalf("workers=%d: accuracy %.6f != serial %.6f", workers, par, serial)
		}
	}
	// Noise at this magnitude must actually flip something relative to the
	// self-labels, or the test proves nothing.
	if serial == 1 {
		t.Fatal("injector had no effect; determinism check is vacuous")
	}
}

func TestAccuracyStatefulInjectorStaysSerial(t *testing.T) {
	// A non-Splitter injector (the site recorder) must still see every
	// site in forward order through the sequential fallback.
	net := parallelTestNet()
	x := rt(23, 6, 1, 8, 8)
	labels := make([]int, 6)
	rec := noise.NewSiteRecorder()
	Accuracy(net, x, labels, rec, 2)
	if len(rec.Order) != len(net.Sites()) {
		t.Fatalf("recorder saw %d sites, want %d", len(rec.Order), len(net.Sites()))
	}
}

func TestScratchForwardMatchesPlainForward(t *testing.T) {
	// Repeated forwards through the pooled scratch arena must be
	// bit-identical to each other (buffer recycling must never leak state).
	net := parallelTestNet()
	x := rt(24, 4, 1, 8, 8)
	want := net.Forward(x, noise.None{})
	for rep := 0; rep < 3; rep++ {
		got := net.Forward(x, noise.None{})
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("rep %d: forward not reproducible at %d", rep, i)
			}
		}
	}
}

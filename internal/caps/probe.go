package caps

import (
	"math"

	"redcane/internal/tensor"
)

// This file is the numeric-health probe seam: a Backend decorator that
// observes every MAC-kernel output (plain convolutions, convolutional
// capsule votes, class-capsule votes) flowing through the Backend
// interface and folds it into per-layer statistics — range, moments,
// SQNR against a clean reference pass, saturation against the reference
// range, and accumulator-overflow counts reported by the fixed-point
// backends. The decorator returns the wrapped backend's outputs
// untouched, so probing is provably inert: the probed pass produces the
// same bits as the unprobed one.

// ProbeLayerStats accumulates the numeric health of one layer's MAC
// outputs. All fields are raw sums so that stats from different jobs
// merge exactly; derived values (mean, variance, SQNR) are computed at
// emission time.
type ProbeLayerStats struct {
	Layer string  // layer name (the Backend call's layer argument)
	Count int64   // observed output elements
	Min   float64 // smallest observed output (+Inf when Count == 0)
	Max   float64 // largest observed output (-Inf when Count == 0)
	Sum   float64 // Σ out
	SumSq float64 // Σ out²

	// Reference comparison (zero when no reference pass ran).
	RefCount  int64   // elements compared against the reference
	RefSq     float64 // Σ ref² over compared elements
	ErrSq     float64 // Σ (out-ref)² over compared elements
	Saturated int64   // outputs outside the reference [min, max] range

	// Overflow counts accumulator saturations reported by the backend
	// (see OverflowBackend); always zero on the float path.
	Overflow int64
}

// Mean returns the mean observed output (0 when empty).
func (s ProbeLayerStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Variance returns the population variance of the observed outputs
// (0 when empty), clamped to be non-negative against rounding.
func (s ProbeLayerStats) Variance() float64 {
	if s.Count == 0 {
		return 0
	}
	m := s.Mean()
	v := s.SumSq/float64(s.Count) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// SQNRClampDB bounds reported SQNR values so they stay JSON-encodable
// (±Inf is not valid JSON). +SQNRClampDB means "no measurable error";
// -SQNRClampDB means "error with a silent reference".
const SQNRClampDB = 400.0

// SQNRdB returns the signal-to-quantization-noise ratio of the observed
// outputs against the reference, in dB, clamped to ±SQNRClampDB. With no
// reference comparison it returns 0 alongside RefCount == 0.
func (s ProbeLayerStats) SQNRdB() float64 {
	if s.RefCount == 0 {
		return 0
	}
	if s.ErrSq == 0 {
		return SQNRClampDB
	}
	if s.RefSq == 0 {
		return -SQNRClampDB
	}
	db := 10 * math.Log10(s.RefSq/s.ErrSq)
	return math.Max(-SQNRClampDB, math.Min(SQNRClampDB, db))
}

// MergeFrom folds o's sums into s. Both sides must describe the same
// layer. Merging in a fixed order keeps the float sums bit-identical
// across worker counts — the sweep engine merges per-job stats in
// ascending job order within each window.
func (s *ProbeLayerStats) MergeFrom(o ProbeLayerStats) {
	s.Count += o.Count
	s.Min = math.Min(s.Min, o.Min)
	s.Max = math.Max(s.Max, o.Max)
	s.Sum += o.Sum
	s.SumSq += o.SumSq
	s.RefCount += o.RefCount
	s.RefSq += o.RefSq
	s.ErrSq += o.ErrSq
	s.Saturated += o.Saturated
	s.Overflow += o.Overflow
}

// probeRef is one recorded reference output, matched to observation
// calls by sequence position.
type probeRef struct {
	layer    string
	data     []float64
	min, max float64
}

// ProbeRecorder collects per-layer statistics for one classification
// pass (one job). It is single-goroutine state — each worker job uses
// its own recorder — and works in two phases: a reference phase that
// copies the clean outputs of every Backend call, then an observation
// phase that compares the probed pass's outputs call-by-call against
// those copies. The reference phase is optional; without it the
// observation phase still records ranges and moments (and overflow),
// just no SQNR or saturation.
type ProbeRecorder struct {
	layers    []ProbeLayerStats
	index     map[string]int
	refs      []probeRef
	refPos    int
	recording bool
}

// NewProbeRecorder returns an empty recorder in observation mode.
func NewProbeRecorder() *ProbeRecorder {
	return &ProbeRecorder{index: map[string]int{}}
}

// StartReference switches the recorder to the reference phase: Backend
// outputs are copied, not measured.
func (r *ProbeRecorder) StartReference() {
	r.recording = true
	r.refs = r.refs[:0]
	r.refPos = 0
}

// StartObserve switches the recorder to the observation phase, matching
// subsequent Backend calls against the recorded references in order.
func (r *ProbeRecorder) StartObserve() {
	r.recording = false
	r.refPos = 0
}

// layerAt returns the stats slot for the named layer, creating it in
// first-seen order. Every job runs the same forward sequence, so the
// order — and therefore the merged aggregation — is identical across
// jobs and worker counts.
func (r *ProbeRecorder) layerAt(layer string) *ProbeLayerStats {
	if i, ok := r.index[layer]; ok {
		return &r.layers[i]
	}
	r.index[layer] = len(r.layers)
	r.layers = append(r.layers, ProbeLayerStats{
		Layer: layer,
		Min:   math.Inf(1),
		Max:   math.Inf(-1),
	})
	return &r.layers[len(r.layers)-1]
}

// observe processes one Backend output.
func (r *ProbeRecorder) observe(layer string, out *tensor.Tensor) {
	if r.recording {
		ref := probeRef{layer: layer, data: append([]float64(nil), out.Data...), min: math.Inf(1), max: math.Inf(-1)}
		for _, v := range out.Data {
			ref.min = math.Min(ref.min, v)
			ref.max = math.Max(ref.max, v)
		}
		r.refs = append(r.refs, ref)
		return
	}
	st := r.layerAt(layer)
	st.Count += int64(len(out.Data))
	for _, v := range out.Data {
		st.Min = math.Min(st.Min, v)
		st.Max = math.Max(st.Max, v)
		st.Sum += v
		st.SumSq += v * v
	}
	if r.refPos < len(r.refs) {
		ref := r.refs[r.refPos]
		r.refPos++
		if ref.layer == layer && len(ref.data) == len(out.Data) {
			st.RefCount += int64(len(out.Data))
			for i, v := range out.Data {
				d := v - ref.data[i]
				st.ErrSq += d * d
				st.RefSq += ref.data[i] * ref.data[i]
				if v < ref.min || v > ref.max {
					st.Saturated++
				}
			}
		}
	}
}

// addOverflow accumulates backend-reported accumulator overflows for a
// layer (no-op during the reference phase: the reference backend's own
// overflows are not the probed signal).
func (r *ProbeRecorder) addOverflow(layer string, n int64) {
	if r.recording {
		return
	}
	r.layerAt(layer).Overflow += n
}

// Layers returns a copy of the accumulated per-layer stats in
// first-seen (forward) order.
func (r *ProbeRecorder) Layers() []ProbeLayerStats {
	return append([]ProbeLayerStats(nil), r.layers...)
}

// OverflowBackend is implemented by backends whose MAC kernels can
// saturate a finite accumulator (the fixed-point paths in internal/axe).
// WithOverflow returns a backend that behaves identically but reports
// the number of overflowing output elements per kernel call.
type OverflowBackend interface {
	Backend
	WithOverflow(report func(layer string, n int64)) Backend
}

// Baseliner is implemented by backends that can name their own exact
// reference: the backend whose outputs serve as the "clean" signal for
// SQNR (e.g. QuantApprox's baseline is QuantExact at the same width).
// A backend that returns itself gets no reference pass — its probes
// carry ranges, moments and overflow only.
type Baseliner interface {
	ExactBaseline() Backend
}

// ProbeBackend decorates a Backend with a ProbeRecorder. Outputs pass
// through untouched.
type ProbeBackend struct {
	inner Backend
	rec   *ProbeRecorder
}

// NewProbeBackend wraps inner so every MAC output is observed by rec.
// When inner reports accumulator overflow (OverflowBackend), the counts
// flow into the recorder too.
func NewProbeBackend(inner Backend, rec *ProbeRecorder) *ProbeBackend {
	if ob, ok := inner.(OverflowBackend); ok {
		inner = ob.WithOverflow(rec.addOverflow)
	}
	return &ProbeBackend{inner: inner, rec: rec}
}

// Name implements Backend.
func (p *ProbeBackend) Name() string { return p.inner.Name() }

// BaseID implements Backend.
func (p *ProbeBackend) BaseID() string { return p.inner.BaseID() }

// ApproxLayer implements Backend.
func (p *ProbeBackend) ApproxLayer(layer string) bool { return p.inner.ApproxLayer(layer) }

// Nonlinearity implements NonlinearityCarrier by delegating to the
// wrapped backend, so a probed pass applies the same softmax/squash
// variants as the unprobed one (the zero value is the exact pair).
func (p *ProbeBackend) Nonlinearity() Nonlinearity {
	if c, ok := p.inner.(NonlinearityCarrier); ok {
		return c.Nonlinearity()
	}
	return Nonlinearity{}
}

// Conv2D implements Backend: delegate, observe, pass through.
func (p *ProbeBackend) Conv2D(layer string, x, w, bias *tensor.Tensor, stride, pad int, s *tensor.Scratch) *tensor.Tensor {
	out := p.inner.Conv2D(layer, x, w, bias, stride, pad, s)
	p.rec.observe(layer, out)
	return out
}

// CapsVotes implements Backend: delegate, observe, pass through.
func (p *ProbeBackend) CapsVotes(layer string, u, w *tensor.Tensor, s *tensor.Scratch) *tensor.Tensor {
	out := p.inner.CapsVotes(layer, u, w, s)
	p.rec.observe(layer, out)
	return out
}

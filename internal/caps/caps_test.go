package caps

import (
	"math"
	"testing"

	"redcane/internal/noise"
	"redcane/internal/tensor"
)

func rt(seed uint64, shape ...int) *tensor.Tensor {
	return tensor.New(shape...).FillNormal(tensor.NewRNG(seed), 0, 0.5)
}

func newConv(name string, in, out, k, stride, pad int, relu bool, seed uint64) *Conv2D {
	return &Conv2D{
		LayerName: name,
		W:         tensor.New(out, in, k, k).FillGlorot(tensor.NewRNG(seed), in*k*k, out*k*k),
		B:         tensor.New(out),
		Stride:    stride, Pad: pad, ReLU: relu,
	}
}

func newCaps2D(name string, inCh, caps, dim, k, stride, pad int, seed uint64) *ConvCaps2D {
	return &ConvCaps2D{
		LayerName: name, Caps: caps, Dim: dim,
		W:      tensor.New(caps*dim, inCh, k, k).FillGlorot(tensor.NewRNG(seed), inCh*k*k, caps*dim*k*k),
		B:      tensor.New(caps * dim),
		Stride: stride, Pad: pad,
	}
}

func newCaps3D(name string, inCaps, inDim, outCaps, outDim, k, stride, pad, iters int, seed uint64) *ConvCaps3D {
	return &ConvCaps3D{
		LayerName: name,
		InCaps:    inCaps, InDim: inDim, OutCaps: outCaps, OutDim: outDim,
		W:      tensor.New(inCaps, outCaps*outDim, inDim, k, k).FillGlorot(tensor.NewRNG(seed), inDim*k*k, outCaps*outDim*k*k),
		Stride: stride, Pad: pad, RoutingIterations: iters,
	}
}

func newClassCaps(name string, inCaps, inDim, outCaps, outDim, iters int, seed uint64) *ClassCaps {
	return &ClassCaps{
		LayerName: name,
		InCaps:    inCaps, InDim: inDim, OutCaps: outCaps, OutDim: outDim,
		W:                 tensor.New(inCaps, outCaps, outDim, inDim).FillGlorot(tensor.NewRNG(seed), inDim, outDim),
		RoutingIterations: iters,
	}
}

func TestConv2DForwardShapeAndSites(t *testing.T) {
	l := newConv("Conv2D", 3, 8, 3, 1, 1, true, 1)
	x := rt(2, 2, 3, 8, 8)
	y := l.Forward(x, noise.None{})
	want := []int{2, 8, 8, 8}
	for i, d := range want {
		if y.Shape[i] != d {
			t.Fatalf("shape = %v, want %v", y.Shape, want)
		}
	}
	sites := l.Sites()
	if len(sites) != 2 || sites[0].Group != noise.MACOutputs || sites[1].Group != noise.Activations {
		t.Fatalf("sites = %+v", sites)
	}
	// ReLU output must be nonnegative.
	for _, v := range y.Data {
		if v < 0 {
			t.Fatal("ReLU output negative")
		}
	}
}

func TestConv2DNoReLUSingleSite(t *testing.T) {
	l := newConv("C", 1, 2, 3, 1, 0, false, 3)
	if len(l.Sites()) != 1 {
		t.Fatalf("sites = %+v", l.Sites())
	}
}

func TestConvCaps2DSquashBoundsNorms(t *testing.T) {
	l := newCaps2D("Caps2D1", 4, 3, 4, 3, 2, 1, 4)
	x := rt(5, 2, 4, 8, 8)
	y := l.Forward(x, noise.None{})
	if y.Shape[1] != 12 {
		t.Fatalf("channels = %d, want caps*dim=12", y.Shape[1])
	}
	n, h, w := y.Shape[0], y.Shape[2], y.Shape[3]
	v := y.Reshape(n, 3, 4, h, w)
	norms := tensor.NormAxis(v, 2)
	for _, nv := range norms.Data {
		if nv >= 1 {
			t.Fatalf("capsule norm %g >= 1 after squash", nv)
		}
	}
}

func TestConvCaps2DSkipSquash(t *testing.T) {
	l := newCaps2D("C", 2, 2, 4, 3, 1, 1, 6)
	l.SkipSquash = true
	if len(l.Sites()) != 1 {
		t.Fatalf("skip-squash layer should expose only MAC site, got %+v", l.Sites())
	}
}

func TestConvCaps3DForwardShapeAndRouting(t *testing.T) {
	l := newCaps3D("Caps3D", 4, 4, 5, 6, 3, 1, 1, 3, 7)
	x := rt(8, 2, 16, 4, 4) // 4 caps × 4 dim
	y := l.Forward(x, noise.None{})
	want := []int{2, 30, 4, 4} // 5 caps × 6 dim
	for i, d := range want {
		if y.Shape[i] != d {
			t.Fatalf("shape = %v, want %v", y.Shape, want)
		}
	}
	// Routed outputs are squashed: norms < 1.
	v := y.Reshape(2, 5, 6, 4, 4)
	norms := tensor.NormAxis(v, 2)
	for _, nv := range norms.Data {
		if nv >= 1 {
			t.Fatalf("routed capsule norm %g >= 1", nv)
		}
	}
}

func TestRoutingLayersExposeAllFourGroups(t *testing.T) {
	for _, l := range []Layer{
		newCaps3D("Caps3D", 2, 4, 3, 4, 3, 1, 1, 3, 9),
		newClassCaps("ClassCaps", 8, 4, 10, 16, 3, 10),
	} {
		groups := map[noise.Group]bool{}
		for _, s := range l.Sites() {
			groups[s.Group] = true
		}
		for _, g := range noise.Groups() {
			if !groups[g] {
				t.Fatalf("%s missing group %v", l.Name(), g)
			}
		}
	}
}

func TestNonRoutingLayersHaveNoRoutingGroups(t *testing.T) {
	for _, l := range []Layer{
		newConv("Conv2D", 3, 4, 3, 1, 1, true, 11),
		newCaps2D("Caps2D1", 3, 2, 4, 3, 1, 1, 12),
	} {
		for _, s := range l.Sites() {
			if s.Group == noise.Softmax || s.Group == noise.LogitsUpdate {
				t.Fatalf("%s exposes routing group %v", l.Name(), s.Group)
			}
		}
	}
}

func TestClassCapsForwardShape(t *testing.T) {
	l := newClassCaps("ClassCaps", 2*3*3, 4, 10, 16, 3, 13)
	x := rt(14, 2, 8, 3, 3) // 2 caps × 4 dim at 3×3
	y := l.Forward(x, noise.None{})
	want := []int{2, 10, 16}
	for i, d := range want {
		if y.Shape[i] != d {
			t.Fatalf("shape = %v, want %v", y.Shape, want)
		}
	}
}

func TestClassCapsAcceptsRank3Input(t *testing.T) {
	l := newClassCaps("ClassCaps", 6, 4, 3, 8, 3, 15)
	x := rt(16, 2, 6, 4)
	y := l.Forward(x, noise.None{})
	if y.Shape[1] != 3 || y.Shape[2] != 8 {
		t.Fatalf("shape = %v", y.Shape)
	}
}

func TestRoutingCouplingCoefficientsSeenByInjector(t *testing.T) {
	l := newClassCaps("CC", 4, 4, 3, 4, 3, 17)
	x := rt(18, 1, 4, 4)
	rec := noise.NewSiteRecorder()
	l.Forward(x, rec)
	byGroup := rec.ByGroup()
	for _, g := range noise.Groups() {
		if len(byGroup[g]) == 0 {
			t.Fatalf("group %v never injected during routing forward", g)
		}
	}
}

func TestRoutingIterationsChangeOutput(t *testing.T) {
	// More routing iterations must actually change the output — guards
	// against accidentally ignoring the iteration count.
	x := rt(19, 1, 16, 4, 4)
	l1 := newCaps3D("C", 4, 4, 4, 4, 3, 1, 1, 1, 20)
	l3 := newCaps3D("C", 4, 4, 4, 4, 3, 1, 1, 3, 20)
	y1 := l1.Forward(x, noise.None{})
	y3 := l3.Forward(x, noise.None{})
	diff := 0.0
	for i := range y1.Data {
		diff += math.Abs(y1.Data[i] - y3.Data[i])
	}
	if diff == 0 {
		t.Fatal("routing iterations had no effect")
	}
}

func TestDynamicRoutingUniformCouplingFirstIteration(t *testing.T) {
	// With one iteration, routing reduces to a uniform average of votes
	// followed by squash (softmax of zero logits is uniform).
	inCaps, outCaps, outDim := 3, 2, 4
	votes := rt(21, 1, inCaps, outCaps, outDim, 1)
	got := dynamicRouting(votes, "L", 1, noise.None{}, nil, Nonlinearity{})
	// Manual: s_j = (1/outCaps)·Σ_i? No — softmax over j of zeros gives
	// 1/outCaps per (i, j); s_j = Σ_i (1/outCaps)·û_ij.
	s := tensor.New(1, outCaps, outDim, 1)
	for i := 0; i < inCaps; i++ {
		for j := 0; j < outCaps; j++ {
			for d := 0; d < outDim; d++ {
				s.Data[(j*outDim + d)] += votes.At(0, i, j, d, 0) / float64(outCaps)
			}
		}
	}
	want := tensor.Squash(s, 2)
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("routing[%d] = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func buildTinyCell(seed uint64) *CapsCell {
	l1 := newCaps2D("Caps2D1", 8, 2, 4, 3, 2, 1, seed)
	l2 := newCaps2D("Caps2D2", 8, 2, 4, 3, 1, 1, seed+1)
	l3 := newCaps2D("Caps2D3", 8, 2, 4, 3, 1, 1, seed+2)
	skip := newCaps2D("Caps2D4", 8, 2, 4, 3, 1, 1, seed+3)
	return &CapsCell{CellName: "Cell1", L1: l1, L2: l2, L3: l3, Skip: skip}
}

func TestCapsCellForwardAndSites(t *testing.T) {
	cell := buildTinyCell(22)
	x := rt(23, 2, 8, 8, 8)
	y := cell.Forward(x, noise.None{})
	want := []int{2, 8, 4, 4}
	for i, d := range want {
		if y.Shape[i] != d {
			t.Fatalf("cell output shape = %v, want %v", y.Shape, want)
		}
	}
	if len(cell.Sites()) != 8 { // 4 layers × (MAC + activation)
		t.Fatalf("cell sites = %d, want 8", len(cell.Sites()))
	}
	if len(cell.Params()) != 8 { // 4 layers × (W + B)
		t.Fatalf("cell params = %d, want 8", len(cell.Params()))
	}
}

func TestNetworkForwardSitesParamsOps(t *testing.T) {
	net := &Network{
		NetName:    "tiny",
		InputShape: []int{1, 8, 8},
		Layers: []Layer{
			newConv("Conv2D", 1, 8, 3, 1, 1, true, 30),
			newCaps2D("Caps2D1", 8, 2, 4, 3, 2, 1, 31),
			newClassCaps("ClassCaps", 2*4*4, 4, 3, 8, 3, 32),
		},
	}
	x := rt(33, 4, 1, 8, 8)
	out := net.Forward(x, nil)
	if out.Shape[0] != 4 || out.Shape[1] != 3 || out.Shape[2] != 8 {
		t.Fatalf("net output shape = %v", out.Shape)
	}
	names := net.LayerNames()
	if len(names) != 3 || names[0] != "Conv2D" || names[2] != "ClassCaps" {
		t.Fatalf("layer names = %v", names)
	}
	if len(net.Params()) != 5 {
		t.Fatalf("params = %d, want 5", len(net.Params()))
	}
	ops := net.Ops(1)
	if ops.Mul <= 0 || ops.Sqrt <= 0 || ops.Exp <= 0 {
		t.Fatalf("ops = %+v", ops)
	}
	// Ops must scale linearly with batch.
	ops2 := net.Ops(2)
	if math.Abs(ops2.Mul-2*ops.Mul) > 1e-6 {
		t.Fatalf("ops not linear in batch: %g vs %g", ops2.Mul, ops.Mul)
	}
}

func TestNetworkClassifyAndAccuracy(t *testing.T) {
	net := &Network{
		NetName:    "tiny",
		InputShape: []int{1, 6, 6},
		Layers: []Layer{
			newCaps2D("Caps2D1", 1, 2, 4, 3, 2, 1, 40),
			newClassCaps("ClassCaps", 2*3*3, 4, 3, 8, 3, 41),
		},
	}
	x := rt(42, 6, 1, 6, 6)
	preds := net.Classify(x, noise.None{})
	if len(preds) != 6 {
		t.Fatalf("preds = %v", preds)
	}
	for _, p := range preds {
		if p < 0 || p >= 3 {
			t.Fatalf("class %d out of range", p)
		}
	}
	// Accuracy against the network's own predictions is 1.
	if acc := Accuracy(net, x, preds, noise.None{}, 2); acc != 1 {
		t.Fatalf("self-accuracy = %g", acc)
	}
	// Accuracy against shifted labels is 0..<1.
	wrong := make([]int, len(preds))
	for i, p := range preds {
		wrong[i] = (p + 1) % 3
	}
	if acc := Accuracy(net, x, wrong, noise.None{}, 4); acc != 0 {
		t.Fatalf("wrong-label accuracy = %g", acc)
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	net := &Network{NetName: "n", InputShape: []int{1, 2, 2}}
	if acc := Accuracy(net, tensor.New(0, 1, 2, 2), nil, noise.None{}, 4); acc != 0 {
		t.Fatalf("empty accuracy = %g", acc)
	}
}

func TestNoiseInMACOutputsPerturbsPredictionsMoreThanSoftmax(t *testing.T) {
	// A miniature version of the paper's headline claim: at equal NM,
	// injecting into MAC outputs disturbs class scores more than
	// injecting into routing softmax coefficients.
	net := &Network{
		NetName:    "tiny",
		InputShape: []int{1, 6, 6},
		Layers: []Layer{
			newCaps2D("Caps2D1", 1, 4, 4, 3, 2, 1, 50),
			newClassCaps("ClassCaps", 4*3*3, 4, 3, 8, 3, 51),
		},
	}
	x := rt(52, 8, 1, 6, 6)
	clean := net.ClassScores(x, noise.None{})

	drift := func(g noise.Group) float64 {
		d := 0.0
		for trial := uint64(0); trial < 5; trial++ {
			inj := noise.NewGaussian(0.3, 0, noise.ForGroup(g), 100+trial)
			noisy := net.ClassScores(x, inj)
			for i := range clean.Data {
				d += math.Abs(noisy.Data[i] - clean.Data[i])
			}
		}
		return d
	}
	macDrift := drift(noise.MACOutputs)
	smDrift := drift(noise.Softmax)
	if macDrift <= smDrift {
		t.Fatalf("MAC drift %g <= softmax drift %g; resilience ordering violated", macDrift, smDrift)
	}
}

func TestCellBranchShapeMismatchPanics(t *testing.T) {
	cell := buildTinyCell(60)
	cell.Skip = newCaps2D("Caps2D4", 8, 2, 4, 3, 2, 1, 61) // stride 2 → mismatch
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on branch shape mismatch")
		}
	}()
	cell.Forward(rt(62, 1, 8, 8, 8), noise.None{})
}

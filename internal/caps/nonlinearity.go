package caps

import (
	"redcane/internal/tensor"
)

// This file is the nonlinearity seam: softmax and squash — the two
// routing-datapath operators the Backend interface deliberately leaves
// in float — become pluggable here, so behavioral models of
// hardware-approximated nonlinearities (internal/approx: base-2 and
// piecewise-linear softmax, Newton-free squash) run through the same
// forward paths, injection sites, probes and prefix caching as the exact
// defaults. The seam mirrors the Backend seam's invariants: a backend
// carrying a non-exact Nonlinearity changes activations only from the
// first layer that applies a swapped operator onward
// (Network.NonlinearityFrontier), so everything before that layer stays
// cacheable under the backend's BaseID.

// NonlinearFn is the shape of a softmax/squash operator: a normalization
// along one axis returning a new tensor (matching tensor.Softmax and
// tensor.Squash).
type NonlinearFn func(t *tensor.Tensor, axis int) *tensor.Tensor

// Nonlinearity selects the routing nonlinearity implementations. The
// zero value is the exact pair (tensor.Softmax / tensor.Squash): nil
// functions keep the bit-exact default paths, so existing construction
// sites need no changes.
type Nonlinearity struct {
	// SoftmaxName / SquashName label the variants for telemetry, probe
	// output and fingerprints ("" means exact).
	SoftmaxName, SquashName string
	// SoftmaxFn / SquashFn are the operator implementations; nil selects
	// the exact tensor kernels.
	SoftmaxFn, SquashFn NonlinearFn
}

// Exact reports whether both operators are the bit-exact defaults.
func (nl Nonlinearity) Exact() bool { return nl.SoftmaxFn == nil && nl.SquashFn == nil }

// Tag renders the non-exact selections compactly ("sm=base2,sq=sqnorm"),
// empty for the exact pair. It feeds backend names and fingerprints.
func (nl Nonlinearity) Tag() string {
	tag := ""
	if nl.SoftmaxFn != nil {
		tag = "sm=" + nl.SoftmaxName
	}
	if nl.SquashFn != nil {
		if tag != "" {
			tag += ","
		}
		tag += "sq=" + nl.SquashName
	}
	return tag
}

// softmax applies the selected softmax operator.
func (nl Nonlinearity) softmax(t *tensor.Tensor, axis int) *tensor.Tensor {
	if nl.SoftmaxFn == nil {
		return tensor.Softmax(t, axis)
	}
	return nl.SoftmaxFn(t, axis)
}

// squash applies the selected squash operator.
func (nl Nonlinearity) squash(t *tensor.Tensor, axis int) *tensor.Tensor {
	if nl.SquashFn == nil {
		return tensor.Squash(t, axis)
	}
	return nl.SquashFn(t, axis)
}

// NonlinearityCarrier is implemented by backends that select non-exact
// routing nonlinearities. Forward paths query it via nonlinearityOf;
// decorators (ProbeBackend) must delegate it so the selection survives
// wrapping.
type NonlinearityCarrier interface {
	Nonlinearity() Nonlinearity
}

// nonlinearityOf extracts a backend's nonlinearity selection; backends
// without the carrier interface run the exact pair.
func nonlinearityOf(be Backend) Nonlinearity {
	if c, ok := be.(NonlinearityCarrier); ok {
		return c.Nonlinearity()
	}
	return Nonlinearity{}
}

// WithNonlinearity decorates be so forward passes use nl's softmax and
// squash. An exact nl returns be unchanged — the decorated and
// undecorated exact paths are not just bit-identical but the same code.
// The decorated backend keeps be's BaseID (activations before the
// nonlinearity frontier are unaffected, so prefix caches may still be
// shared with be) but extends its Name, keeping telemetry and probe
// reference passes distinct.
func WithNonlinearity(be Backend, nl Nonlinearity) Backend {
	if nl.Exact() {
		return be
	}
	return &nlBackend{Backend: be, nl: nl}
}

// nlBackend is the Nonlinearity-carrying Backend decorator. MAC kernels
// delegate untouched; only the carrier interface (read by the routing
// and squash code) changes behavior.
type nlBackend struct {
	Backend
	nl Nonlinearity
}

// Nonlinearity implements NonlinearityCarrier.
func (b *nlBackend) Nonlinearity() Nonlinearity { return b.nl }

// Name implements Backend: the inner name plus the variant tag, so
// telemetry and probe output distinguish the approximated run.
func (b *nlBackend) Name() string { return b.Backend.Name() + "+" + b.nl.Tag() }

// ExactBaseline implements Baseliner: the reference for an approximated
// nonlinearity is the inner backend's own baseline with exact operators,
// so probe SQNR measures the full approximation (MACs and nonlinearity)
// against the exact signal.
func (b *nlBackend) ExactBaseline() Backend {
	if bl, ok := b.Backend.(Baseliner); ok {
		return bl.ExactBaseline()
	}
	return b.Backend
}

// WithOverflow implements OverflowBackend by re-wrapping the inner
// backend's overflow-reporting variant; backends without accumulator
// overflow return the receiver unchanged.
func (b *nlBackend) WithOverflow(report func(layer string, n int64)) Backend {
	if ob, ok := b.Backend.(OverflowBackend); ok {
		return &nlBackend{Backend: ob.WithOverflow(report), nl: b.nl}
	}
	return b
}

// NonlinearityFrontier returns the index of the first layer whose output
// depends on nl's swapped operators, or len(n.Layers) for the exact
// pair. A swapped squash reaches every capsule layer; a swapped softmax
// only the dynamic-routing layers. Layers before the frontier produce
// bit-identical activations with or without nl — the invariant that lets
// the sweep engine keep its clean-prefix cache (keyed by the backend's
// BaseID) across nonlinearity variants.
func (n *Network) NonlinearityFrontier(nl Nonlinearity) int {
	if nl.Exact() {
		return len(n.Layers)
	}
	var affected func(l Layer) bool
	affected = func(l Layer) bool {
		switch t := l.(type) {
		case *ConvCaps2D:
			return nl.SquashFn != nil && !t.SkipSquash
		case *ConvCaps3D, *ClassCaps:
			// Routing layers apply both operators every iteration.
			return true
		case *CapsCell:
			return affected(t.L1) || affected(t.L2) || affected(t.L3) || affected(t.Skip)
		default:
			return false
		}
	}
	for li, l := range n.Layers {
		if affected(l) {
			return li
		}
	}
	return len(n.Layers)
}

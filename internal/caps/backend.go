package caps

import "redcane/internal/tensor"

// Backend is a pluggable execution strategy for the MAC-heavy kernels of
// a capsule network: plain convolutions, convolutional capsule votes and
// fully-connected capsule votes. The float reference path, the bit-exact
// quantized path and the approximate-multiplier path (internal/axe) are
// all implementations; the layer graph, squash/routing arithmetic and
// noise-injection sites stay in this package and are shared by every
// backend, so the noise-model prediction and the bit-accurate measurement
// run through one engine.
//
// Backends must be stateless per call (safe for concurrent use by worker
// goroutines) and deterministic: the same inputs produce the same bits
// regardless of scheduling, which the sweep engine's worker-count
// invariance relies on.
type Backend interface {
	// Name identifies the backend in telemetry and reports.
	Name() string
	// BaseID identifies the backend's exact-arithmetic baseline. Two
	// backends with equal BaseID produce bit-identical activations on
	// every layer for which neither reports ApproxLayer — the invariant
	// behind sharing cached clean-prefix activations across designs (all
	// b-bit quantized backends share "quant<b>"; the float path is
	// "float").
	BaseID() string
	// ApproxLayer reports whether the named layer's MAC kernels deviate
	// from the BaseID baseline. The first such layer is the backend's
	// injection frontier: everything before it can be cached and replayed.
	ApproxLayer(layer string) bool
	// Conv2D convolves x [n, inCh, h, w] with kernels w [outCh, inCh, kh,
	// kw] plus optional bias [outCh] (nil = none). The result may come
	// from the scratch arena; callers release it when done.
	Conv2D(layer string, x, w, bias *tensor.Tensor, stride, pad int, s *tensor.Scratch) *tensor.Tensor
	// CapsVotes computes fully-connected capsule votes û[b,i,j,d] =
	// Σ_e W[i,j,d,e]·u[b,i,e] for u [n, inCaps, inDim] and w [inCaps,
	// outCaps, outDim, inDim], returning [n, inCaps, outCaps, outDim, 1].
	// The result may come from the scratch arena; callers release it.
	CapsVotes(layer string, u, w *tensor.Tensor, s *tensor.Scratch) *tensor.Tensor
}

// Float is the reference backend: exact IEEE-754 float64 arithmetic.
// It is the zero-cost default everywhere a Backend is optional.
type Float struct{}

// Name implements Backend.
func (Float) Name() string { return "float" }

// BaseID implements Backend.
func (Float) BaseID() string { return "float" }

// ApproxLayer implements Backend: the float path is the baseline itself.
func (Float) ApproxLayer(string) bool { return false }

// Conv2D implements Backend via the im2col float kernel.
func (Float) Conv2D(_ string, x, w, bias *tensor.Tensor, stride, pad int, s *tensor.Scratch) *tensor.Tensor {
	return tensor.Conv2DScratch(x, w, bias, stride, pad, s)
}

// CapsVotes implements Backend. For one input capsule, the outCaps·outDim
// weight rows are contiguous with stride inDim, which is exactly the
// MatVecT shape — the vote stage rides the shared-load dot tile.
func (Float) CapsVotes(_ string, u, w *tensor.Tensor, s *tensor.Scratch) *tensor.Tensor {
	n, inCaps, inDim := u.Shape[0], u.Shape[1], u.Shape[2]
	outCaps, outDim := w.Shape[1], w.Shape[2]
	votes := s.Take(n, inCaps, outCaps, outDim, 1)
	rows := outCaps * outDim
	for b := 0; b < n; b++ {
		for i := 0; i < inCaps; i++ {
			ui := u.Data[(b*inCaps+i)*inDim : (b*inCaps+i+1)*inDim]
			dst := votes.Data[(b*inCaps+i)*rows : (b*inCaps+i+1)*rows]
			tensor.MatVecT(dst, ui, w.Data[i*rows*inDim:], inDim)
		}
	}
	return votes
}

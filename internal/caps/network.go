package caps

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"redcane/internal/energy"
	"redcane/internal/noise"
	"redcane/internal/obs"
	"redcane/internal/tensor"
)

// CapsCell is DeepCaps' residual capsule cell: three sequential ConvCaps2D
// layers plus one skip ConvCaps layer from the first layer's output, with
// the two branches summed (Fig. 2 of the paper; the final cell uses the
// ConvCaps3D routing layer as its skip branch). Each inner ConvCaps layer
// applies its own squash, as in the reference DeepCaps implementation, so
// the cell itself adds no extra injection site.
type CapsCell struct {
	CellName   string
	L1, L2, L3 *ConvCaps2D
	// Skip is either a *ConvCaps2D or the *ConvCaps3D routing layer.
	Skip Layer
}

// Name implements Layer.
func (c *CapsCell) Name() string { return c.CellName }

// Forward implements Layer.
func (c *CapsCell) Forward(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	return c.ForwardExec(x, inj, nil, Float{})
}

// ForwardExec runs the cell under an execution backend, threading the
// scratch arena through all four branch layers and recycling the branch
// activations once summed.
func (c *CapsCell) ForwardExec(x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend) *tensor.Tensor {
	a := forwardLayer(c.L1, x, inj, s, be)
	b := forwardLayer(c.L2, a, inj, s, be)
	main := forwardLayer(c.L3, b, inj, s, be)
	skip := forwardLayer(c.Skip, a, inj, s, be)
	if !main.SameShape(skip) {
		panic(fmt.Sprintf("caps: cell %s branch shapes %v vs %v", c.CellName, main.Shape, skip.Shape))
	}
	out := tensor.Add(main, skip)
	s.Release(a, b, main, skip)
	return out
}

// Sites implements Layer.
func (c *CapsCell) Sites() []noise.Site {
	var s []noise.Site
	s = append(s, c.L1.Sites()...)
	s = append(s, c.L2.Sites()...)
	s = append(s, c.L3.Sites()...)
	s = append(s, c.Skip.Sites()...)
	return s
}

// Params implements Layer.
func (c *CapsCell) Params() map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{}
	for _, l := range []Layer{c.L1, c.L2, c.L3, c.Skip} {
		for k, v := range l.Params() {
			out[k] = v
		}
	}
	return out
}

// Ops implements Layer.
func (c *CapsCell) Ops(inShape []int) (energy.Counts, []int) {
	c1, aShape := c.L1.Ops(inShape)
	c2, bShape := c.L2.Ops(aShape)
	c3, outShape := c.L3.Ops(bShape)
	c4, skipShape := c.Skip.Ops(aShape)
	_ = skipShape
	total := c1.Plus(c2).Plus(c3).Plus(c4)
	// Residual add: one addition per output element.
	n := 1
	for _, d := range outShape {
		n *= d
	}
	total = total.Plus(energy.Counts{Add: float64(n)})
	return total, outShape
}

// Network is an ordered stack of layers ending in a capsule layer whose
// output vector norms are the class scores.
type Network struct {
	NetName string
	// InputShape is [channels, height, width] of a single sample.
	InputShape []int
	Layers     []Layer
	// Obs, when non-nil, receives per-layer forward wall time and
	// invocation counts under "caps.forward.<kind>.<layer>" timers, where
	// kind is "full" (whole-network pass), "prefix" (clean-prefix half of
	// a split pass) or "suffix" (replay from a cached prefix). Set it
	// before concurrent use; timing never alters numerical results, and a
	// nil Obs costs one branch per forward pass.
	Obs *obs.Obs
}

// Name returns the network's name.
func (n *Network) Name() string { return n.NetName }

// execForwarder is implemented by layers whose forward pass can recycle
// temporaries through a scratch arena and run on a pluggable execution
// backend. Layers without it fall back to plain Forward (float only).
type execForwarder interface {
	ForwardExec(x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend) *tensor.Tensor
}

// scratchPool recycles per-forward scratch arenas across calls. Each
// Forward borrows one arena for its whole pass, so concurrent forwards
// never share buffers.
var scratchPool = sync.Pool{New: func() any { return tensor.NewScratch() }}

// forwardLayer runs one layer, threading the scratch arena and execution
// backend when the layer supports them.
func forwardLayer(l Layer, x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend) *tensor.Tensor {
	if ef, ok := l.(execForwarder); ok {
		return ef.ForwardExec(x, inj, s, be)
	}
	return l.Forward(x, inj)
}

// forwardRange runs layers [lo, hi) on x under inj with scratch s and
// backend be. kind labels the pass for telemetry ("full", "prefix" or
// "suffix"); with a nil Obs the timed path is skipped entirely.
func (n *Network) forwardRange(lo, hi int, x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend, kind string) *tensor.Tensor {
	if inj == nil {
		inj = noise.None{}
	}
	if be == nil {
		be = Float{}
	}
	o := n.Obs
	if o == nil {
		for _, l := range n.Layers[lo:hi] {
			x = forwardLayer(l, x, inj, s, be)
		}
		return x
	}
	tr := o.Trace()
	for _, l := range n.Layers[lo:hi] {
		t0 := time.Now()
		x = forwardLayer(l, x, inj, s, be)
		d := time.Since(t0)
		name := "caps.forward." + kind + "." + l.Name()
		o.Timer(name).Observe(d)
		if tr != nil {
			// One lane per scratch arena, i.e. per worker goroutine.
			tr.Complete(name, "forward", s.ID(), t0, d, nil)
		}
	}
	return x
}

// forwardKind labels a suffix pass: replaying from boundary 0 is just a
// full forward.
func forwardKind(k int) string {
	if k == 0 {
		return "full"
	}
	return "suffix"
}

// Forward runs all layers under the given injector. Pass noise.None{} for
// accurate inference.
func (n *Network) Forward(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	return n.ForwardExec(x, inj, Float{})
}

// ForwardExec is Forward under an execution backend: the noise-model path
// (Float plus an active injector) and the bit-accurate path (a quantized
// backend) share every layer, site, and telemetry hook.
func (n *Network) ForwardExec(x *tensor.Tensor, inj noise.Injector, be Backend) *tensor.Tensor {
	s := scratchPool.Get().(*tensor.Scratch)
	defer scratchPool.Put(s)
	return n.forwardRange(0, len(n.Layers), x, inj, s, be, "full")
}

// ForwardTo runs only the prefix layers [0, k) — the clean-prefix half of
// a split forward pass. ForwardTo(k, x, noise.None{}) followed by
// ForwardFrom(k, ·, inj) is bit-identical to Forward(x, inj) whenever inj
// is inactive on every site before layer k (see Network.InjectionFrontier).
func (n *Network) ForwardTo(k int, x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	return n.ForwardToExec(k, x, inj, Float{})
}

// ForwardToExec is ForwardTo under an execution backend. For backends
// whose frontier (see BackendFrontier) is at or beyond k, the prefix is
// bit-identical to the backend's BaseID baseline and may be cached across
// designs sharing that baseline.
func (n *Network) ForwardToExec(k int, x *tensor.Tensor, inj noise.Injector, be Backend) *tensor.Tensor {
	s := scratchPool.Get().(*tensor.Scratch)
	defer scratchPool.Put(s)
	return n.forwardRange(0, k, x, inj, s, be, "prefix")
}

// ForwardFrom runs the suffix layers [k, len(Layers)) on x, which must be
// the activation produced at boundary k (e.g. by ForwardTo). The sweep
// engine replays cached clean prefixes through this entry point. x is
// never mutated, so one cached activation can be replayed many times.
func (n *Network) ForwardFrom(k int, x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	s := scratchPool.Get().(*tensor.Scratch)
	defer scratchPool.Put(s)
	return n.ForwardFromExec(k, x, inj, s, Float{})
}

// ForwardFromScratch is ForwardFrom with a caller-owned scratch arena,
// for worker loops that evaluate many batches back to back.
func (n *Network) ForwardFromScratch(k int, x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch) *tensor.Tensor {
	return n.ForwardFromExec(k, x, inj, s, Float{})
}

// ForwardFromExec is ForwardFromScratch under an execution backend.
func (n *Network) ForwardFromExec(k int, x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend) *tensor.Tensor {
	return n.forwardRange(k, len(n.Layers), x, inj, s, be, forwardKind(k))
}

// InjectionFrontier returns the index of the first layer owning an
// injection site accepted by the filter, or len(n.Layers) when no layer
// matches. Every layer before the frontier produces bit-identical clean
// activations under an injector restricted to that filter — the
// invariant the sweep engine's clean-prefix cache relies on.
func (n *Network) InjectionFrontier(accept noise.Filter) int {
	for li, l := range n.Layers {
		for _, site := range l.Sites() {
			if accept(site) {
				return li
			}
		}
	}
	return len(n.Layers)
}

// BackendFrontier returns the index of the first layer whose output the
// backend computes approximately — through approximate MAC kernels
// (Backend.ApproxLayer) or a carried non-exact nonlinearity
// (NonlinearityCarrier) — or len(n.Layers) when the backend is exact
// everywhere. Layers before the frontier produce bit-identical
// activations under any backend sharing be's BaseID, so their clean
// activations can be cached and replayed — the same invariant
// InjectionFrontier provides for noise injectors.
func (n *Network) BackendFrontier(be Backend) int {
	f := n.InjectionFrontier(func(s noise.Site) bool {
		return be.ApproxLayer(s.Layer)
	})
	if nf := n.NonlinearityFrontier(nonlinearityOf(be)); nf < f {
		f = nf
	}
	return f
}

// MACDepths maps each MAC-bearing layer name to its accumulation depth:
// the number of products summed into one MAC output (conv layers:
// inCh·kh·kw; capsule votes: inDim·k·k or inDim). This is the chain
// length at which an approximate multiplier's error profile should be
// characterized for that layer (Fig. 6 of the paper shows NM/NA shifting
// with accumulation depth). Cells are broken into their constituent
// capsule layers.
func (n *Network) MACDepths() map[string]int {
	out := map[string]int{}
	var visit func(l Layer)
	visit = func(l Layer) {
		switch t := l.(type) {
		case *Conv2D:
			out[t.LayerName] = t.W.Shape[1] * t.W.Shape[2] * t.W.Shape[3]
		case *ConvCaps2D:
			out[t.LayerName] = t.W.Shape[1] * t.W.Shape[2] * t.W.Shape[3]
		case *ConvCaps3D:
			k := t.W.Shape[3]
			out[t.LayerName] = t.InDim * k * k
		case *ClassCaps:
			out[t.LayerName] = t.InDim
		case *CapsCell:
			visit(t.L1)
			visit(t.L2)
			visit(t.L3)
			visit(t.Skip)
		}
	}
	for _, l := range n.Layers {
		visit(l)
	}
	return out
}

// Sites enumerates every injection point in forward order.
func (n *Network) Sites() []noise.Site {
	var s []noise.Site
	for _, l := range n.Layers {
		s = append(s, l.Sites()...)
	}
	return s
}

// LayerNames returns the distinct site layer names in forward order —
// the row labels of the paper's layer-wise analysis (Fig. 10).
func (n *Network) LayerNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range n.Sites() {
		if !seen[s.Layer] {
			seen[s.Layer] = true
			names = append(names, s.Layer)
		}
	}
	return names
}

// Params merges every layer's parameters.
func (n *Network) Params() map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{}
	for _, l := range n.Layers {
		for k, v := range l.Params() {
			out[k] = v
		}
	}
	return out
}

// Ops tallies the network's arithmetic for a batch of the given size
// (Table I of the paper uses batch 1).
func (n *Network) Ops(batch int) energy.Counts {
	shape := append([]int{batch}, n.InputShape...)
	total := energy.Counts{}
	for _, l := range n.Layers {
		var c energy.Counts
		c, shape = l.Ops(shape)
		total = total.Plus(c)
	}
	return total
}

// OpsByLayer tallies arithmetic per layer name (cells are broken into
// their constituent capsule layers), for energy-weighted analyses.
func (n *Network) OpsByLayer(batch int) map[string]energy.Counts {
	shape := append([]int{batch}, n.InputShape...)
	out := map[string]energy.Counts{}
	for _, l := range n.Layers {
		if cell, ok := l.(*CapsCell); ok {
			c1, aShape := cell.L1.Ops(shape)
			c2, bShape := cell.L2.Ops(aShape)
			c3, outShape := cell.L3.Ops(bShape)
			c4, _ := cell.Skip.Ops(aShape)
			out[cell.L1.Name()] = out[cell.L1.Name()].Plus(c1)
			out[cell.L2.Name()] = out[cell.L2.Name()].Plus(c2)
			out[cell.L3.Name()] = out[cell.L3.Name()].Plus(c3)
			out[cell.Skip.Name()] = out[cell.Skip.Name()].Plus(c4)
			shape = outShape
			continue
		}
		var c energy.Counts
		c, shape = l.Ops(shape)
		out[l.Name()] = out[l.Name()].Plus(c)
	}
	return out
}

// ClassScores returns the per-class capsule norms [batch, classes] for a
// batch of inputs.
func (n *Network) ClassScores(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	out := n.Forward(x, inj)
	if out.Rank() != 3 {
		panic(fmt.Sprintf("caps: network %s output rank %d, want [batch, caps, dim]", n.NetName, out.Rank()))
	}
	return tensor.NormAxis(out, 2)
}

// Classify returns the argmax class for each sample in the batch.
func (n *Network) Classify(x *tensor.Tensor, inj noise.Injector) []int {
	s := scratchPool.Get().(*tensor.Scratch)
	defer scratchPool.Put(s)
	return n.ClassifyFrom(0, x, inj, s)
}

// ClassifyFrom classifies a batch by running only the suffix layers
// [k, len(Layers)) on x (the activation at boundary k), with an optional
// scratch arena (nil allocates fresh). It is the sweep engine's
// evaluation primitive: cached clean prefixes classify via
// ClassifyFrom(frontier, prefix, inj, scratch).
func (n *Network) ClassifyFrom(k int, x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch) []int {
	return n.ClassifyFromExec(k, x, inj, s, Float{})
}

// ClassifyFromExec is ClassifyFrom under an execution backend.
func (n *Network) ClassifyFromExec(k int, x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend) []int {
	out := n.ForwardFromExec(k, x, inj, s, be)
	if out.Rank() != 3 {
		panic(fmt.Sprintf("caps: network %s output rank %d, want [batch, caps, dim]", n.NetName, out.Rank()))
	}
	scores := tensor.NormAxis(out, 2)
	batch, classes := scores.Shape[0], scores.Shape[1]
	pred := make([]int, batch)
	for b := 0; b < batch; b++ {
		best, arg := scores.At(b, 0), 0
		for c := 1; c < classes; c++ {
			if v := scores.At(b, c); v > best {
				best, arg = v, c
			}
		}
		pred[b] = arg
	}
	return pred
}

// batchView slices samples [lo, hi) of x as a view (no copy).
func batchView(x *tensor.Tensor, sample, lo, hi int) *tensor.Tensor {
	shape := append([]int{hi - lo}, x.Shape[1:]...)
	return tensor.NewFrom(x.Data[lo*sample:hi*sample], shape...)
}

// Accuracy evaluates classification accuracy over a dataset, processing
// `batch` samples per forward pass. X is [n, c, h, w]; labels has length n.
//
// When the injector supports noise.Splitter, batches evaluate under
// independent counter-seeded injector streams and may run concurrently;
// the result is bit-identical for any worker count (batch i always runs
// under inj.Split(i)). Stateful injectors without Split evaluate
// sequentially with the shared injector, preserving its visit order.
func Accuracy(net *Network, x *tensor.Tensor, labels []int, inj noise.Injector, batch int) float64 {
	return AccuracyWorkers(net, x, labels, inj, batch, runtime.GOMAXPROCS(0))
}

// AccuracyWorkers is Accuracy with an explicit worker bound (values < 1
// mean serial). The worker count affects scheduling only, never results.
func AccuracyWorkers(net *Network, x *tensor.Tensor, labels []int, inj noise.Injector, batch, workers int) float64 {
	acc, err := AccuracyCtx(context.Background(), net, x, labels, inj, batch, workers)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	return acc
}

// AccuracyCtx is AccuracyWorkers with cancellation: when ctx is
// cancelled the evaluation stops dispatching at the next batch boundary,
// drains in-flight batches, and returns ctx's error. The accuracy value
// is only meaningful when the error is nil.
func AccuracyCtx(ctx context.Context, net *Network, x *tensor.Tensor, labels []int, inj noise.Injector, batch, workers int) (float64, error) {
	return AccuracyExec(ctx, net, x, labels, inj, Float{}, batch, workers)
}

// AccuracyExec is AccuracyCtx under an execution backend: the same
// cancellable, deterministically-parallel evaluation loop measures the
// noise model (Float + injector) and the bit-accurate hardware model (a
// quantized backend) — the worker-count invariance carries over because
// backends are stateless and batch i always evaluates under inj.Split(i).
func AccuracyExec(ctx context.Context, net *Network, x *tensor.Tensor, labels []int, inj noise.Injector, be Backend, batch, workers int) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if be == nil {
		be = Float{}
	}
	n := x.Shape[0]
	if n == 0 {
		return 0, nil
	}
	if batch <= 0 {
		batch = 32
	}
	if inj == nil {
		inj = noise.None{}
	}
	sample := x.Len() / n
	nb := (n + batch - 1) / batch

	splitter, splittable := inj.(noise.Splitter)
	if !splittable {
		// Stateful injector: one shared RNG stream across all batches.
		s := scratchPool.Get().(*tensor.Scratch)
		defer scratchPool.Put(s)
		correct := 0
		for lo := 0; lo < n; lo += batch {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			hi := lo + batch
			if hi > n {
				hi = n
			}
			pred := net.ClassifyFromExec(0, batchView(x, sample, lo, hi), inj, s, be)
			for i, p := range pred {
				if p == labels[lo+i] {
					correct++
				}
			}
		}
		return float64(correct) / float64(n), nil
	}

	if workers > nb {
		workers = nb
	}
	if workers < 1 {
		workers = 1
	}
	var cancelErr error
	counts := make([]int, nb)
	evalBatch := func(bi int, s *tensor.Scratch) {
		lo := bi * batch
		hi := lo + batch
		if hi > n {
			hi = n
		}
		pred := net.ClassifyFromExec(0, batchView(x, sample, lo, hi), splitter.Split(uint64(bi)), s, be)
		c := 0
		for i, p := range pred {
			if p == labels[lo+i] {
				c++
			}
		}
		counts[bi] = c
	}
	if workers == 1 {
		s := scratchPool.Get().(*tensor.Scratch)
		for bi := 0; bi < nb; bi++ {
			if cancelErr = ctx.Err(); cancelErr != nil {
				break
			}
			evalBatch(bi, s)
		}
		scratchPool.Put(s)
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := scratchPool.Get().(*tensor.Scratch)
				defer scratchPool.Put(s)
				for bi := range jobs {
					evalBatch(bi, s)
				}
			}()
		}
	dispatch:
		for bi := 0; bi < nb; bi++ {
			select {
			case jobs <- bi:
			case <-ctx.Done():
				cancelErr = ctx.Err()
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
	}
	if cancelErr != nil {
		return 0, cancelErr
	}
	correct := 0
	for _, c := range counts {
		correct += c
	}
	return float64(correct) / float64(n), nil
}

package caps

import (
	"fmt"

	"redcane/internal/energy"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

// CapsCell is DeepCaps' residual capsule cell: three sequential ConvCaps2D
// layers plus one skip ConvCaps layer from the first layer's output, with
// the two branches summed (Fig. 2 of the paper; the final cell uses the
// ConvCaps3D routing layer as its skip branch). Each inner ConvCaps layer
// applies its own squash, as in the reference DeepCaps implementation, so
// the cell itself adds no extra injection site.
type CapsCell struct {
	CellName   string
	L1, L2, L3 *ConvCaps2D
	// Skip is either a *ConvCaps2D or the *ConvCaps3D routing layer.
	Skip Layer
}

// Name implements Layer.
func (c *CapsCell) Name() string { return c.CellName }

// Forward implements Layer.
func (c *CapsCell) Forward(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	a := c.L1.Forward(x, inj)
	b := c.L2.Forward(a, inj)
	main := c.L3.Forward(b, inj)
	skip := c.Skip.Forward(a, inj)
	if !main.SameShape(skip) {
		panic(fmt.Sprintf("caps: cell %s branch shapes %v vs %v", c.CellName, main.Shape, skip.Shape))
	}
	return tensor.Add(main, skip)
}

// Sites implements Layer.
func (c *CapsCell) Sites() []noise.Site {
	var s []noise.Site
	s = append(s, c.L1.Sites()...)
	s = append(s, c.L2.Sites()...)
	s = append(s, c.L3.Sites()...)
	s = append(s, c.Skip.Sites()...)
	return s
}

// Params implements Layer.
func (c *CapsCell) Params() map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{}
	for _, l := range []Layer{c.L1, c.L2, c.L3, c.Skip} {
		for k, v := range l.Params() {
			out[k] = v
		}
	}
	return out
}

// Ops implements Layer.
func (c *CapsCell) Ops(inShape []int) (energy.Counts, []int) {
	c1, aShape := c.L1.Ops(inShape)
	c2, bShape := c.L2.Ops(aShape)
	c3, outShape := c.L3.Ops(bShape)
	c4, skipShape := c.Skip.Ops(aShape)
	_ = skipShape
	total := c1.Plus(c2).Plus(c3).Plus(c4)
	// Residual add: one addition per output element.
	n := 1
	for _, d := range outShape {
		n *= d
	}
	total = total.Plus(energy.Counts{Add: float64(n)})
	return total, outShape
}

// Network is an ordered stack of layers ending in a capsule layer whose
// output vector norms are the class scores.
type Network struct {
	NetName string
	// InputShape is [channels, height, width] of a single sample.
	InputShape []int
	Layers     []Layer
}

// Name returns the network's name.
func (n *Network) Name() string { return n.NetName }

// Forward runs all layers under the given injector. Pass noise.None{} for
// accurate inference.
func (n *Network) Forward(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	if inj == nil {
		inj = noise.None{}
	}
	for _, l := range n.Layers {
		x = l.Forward(x, inj)
	}
	return x
}

// Sites enumerates every injection point in forward order.
func (n *Network) Sites() []noise.Site {
	var s []noise.Site
	for _, l := range n.Layers {
		s = append(s, l.Sites()...)
	}
	return s
}

// LayerNames returns the distinct site layer names in forward order —
// the row labels of the paper's layer-wise analysis (Fig. 10).
func (n *Network) LayerNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range n.Sites() {
		if !seen[s.Layer] {
			seen[s.Layer] = true
			names = append(names, s.Layer)
		}
	}
	return names
}

// Params merges every layer's parameters.
func (n *Network) Params() map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{}
	for _, l := range n.Layers {
		for k, v := range l.Params() {
			out[k] = v
		}
	}
	return out
}

// Ops tallies the network's arithmetic for a batch of the given size
// (Table I of the paper uses batch 1).
func (n *Network) Ops(batch int) energy.Counts {
	shape := append([]int{batch}, n.InputShape...)
	total := energy.Counts{}
	for _, l := range n.Layers {
		var c energy.Counts
		c, shape = l.Ops(shape)
		total = total.Plus(c)
	}
	return total
}

// OpsByLayer tallies arithmetic per layer name (cells are broken into
// their constituent capsule layers), for energy-weighted analyses.
func (n *Network) OpsByLayer(batch int) map[string]energy.Counts {
	shape := append([]int{batch}, n.InputShape...)
	out := map[string]energy.Counts{}
	for _, l := range n.Layers {
		if cell, ok := l.(*CapsCell); ok {
			c1, aShape := cell.L1.Ops(shape)
			c2, bShape := cell.L2.Ops(aShape)
			c3, outShape := cell.L3.Ops(bShape)
			c4, _ := cell.Skip.Ops(aShape)
			out[cell.L1.Name()] = out[cell.L1.Name()].Plus(c1)
			out[cell.L2.Name()] = out[cell.L2.Name()].Plus(c2)
			out[cell.L3.Name()] = out[cell.L3.Name()].Plus(c3)
			out[cell.Skip.Name()] = out[cell.Skip.Name()].Plus(c4)
			shape = outShape
			continue
		}
		var c energy.Counts
		c, shape = l.Ops(shape)
		out[l.Name()] = out[l.Name()].Plus(c)
	}
	return out
}

// ClassScores returns the per-class capsule norms [batch, classes] for a
// batch of inputs.
func (n *Network) ClassScores(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	out := n.Forward(x, inj)
	if out.Rank() != 3 {
		panic(fmt.Sprintf("caps: network %s output rank %d, want [batch, caps, dim]", n.NetName, out.Rank()))
	}
	return tensor.NormAxis(out, 2)
}

// Classify returns the argmax class for each sample in the batch.
func (n *Network) Classify(x *tensor.Tensor, inj noise.Injector) []int {
	scores := n.ClassScores(x, inj)
	batch, classes := scores.Shape[0], scores.Shape[1]
	out := make([]int, batch)
	for b := 0; b < batch; b++ {
		best, arg := scores.At(b, 0), 0
		for c := 1; c < classes; c++ {
			if v := scores.At(b, c); v > best {
				best, arg = v, c
			}
		}
		out[b] = arg
	}
	return out
}

// Accuracy evaluates classification accuracy over a dataset, processing
// `batch` samples per forward pass. X is [n, c, h, w]; labels has length n.
func Accuracy(net *Network, x *tensor.Tensor, labels []int, inj noise.Injector, batch int) float64 {
	n := x.Shape[0]
	if n == 0 {
		return 0
	}
	if batch <= 0 {
		batch = 32
	}
	sample := x.Len() / n
	correct := 0
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, x.Shape[1:]...)
		xb := tensor.NewFrom(x.Data[lo*sample:hi*sample], shape...)
		pred := net.Classify(xb, inj)
		for i, p := range pred {
			if p == labels[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

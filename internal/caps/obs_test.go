package caps

import (
	"testing"

	"redcane/internal/noise"
	"redcane/internal/obs"
)

func TestForwardTimingNeverAltersResults(t *testing.T) {
	// Per-layer timing must be invisible numerically: the same forward
	// pass with and without an Obs attached is bit-identical.
	bare := parallelTestNet()
	x := rt(30, 4, 1, 8, 8)
	want := bare.Forward(x, noise.NewGaussian(0.1, 0, noise.All(), 7))

	timed := parallelTestNet()
	timed.Obs = obs.New(obs.Off, nil)
	got := timed.Forward(x, noise.NewGaussian(0.1, 0, noise.All(), 7))
	if !got.SameShape(want) {
		t.Fatalf("shape %v vs %v", got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestForwardTimersSplitByPassKind(t *testing.T) {
	net := parallelTestNet()
	o := obs.New(obs.Off, nil)
	net.Obs = o
	x := rt(31, 4, 1, 8, 8)

	net.Forward(x, noise.None{})
	k := 2
	prefix := net.ForwardTo(k, x, noise.None{})
	net.ForwardFrom(k, prefix, noise.None{})

	snap := o.Metrics().Snapshot()
	// Full pass: every layer once. Prefix: layers [0, k). Suffix: [k, n).
	for i, l := range net.Layers {
		if c := snap.Timers["caps.forward.full."+l.Name()].Count; c != 1 {
			t.Errorf("full timer for %s count = %d, want 1", l.Name(), c)
		}
		kind := "prefix"
		if i >= k {
			kind = "suffix"
		}
		if c := snap.Timers["caps.forward."+kind+"."+l.Name()].Count; c != 1 {
			t.Errorf("%s timer for %s count = %d, want 1", kind, l.Name(), c)
		}
	}
	// ForwardFrom(0, ...) is a full pass, not a suffix replay.
	net.ForwardFrom(0, x, noise.None{})
	snap = o.Metrics().Snapshot()
	if c := snap.Timers["caps.forward.full."+net.Layers[0].Name()].Count; c != 2 {
		t.Errorf("boundary-0 replay not counted as full: count = %d, want 2", c)
	}
}

// Package caps implements Capsule Network inference: convolutional and
// capsule layers (including DeepCaps' residual capsule cells, the 3D
// convolutional capsule layer, and fully-connected class capsules with
// dynamic routing), all instrumented with the noise-injection sites of the
// ReD-CaNe methodology.
//
// Every tensor crossing a layer boundary is NCHW ([batch, channels,
// height, width]); capsule layers interpret channels as caps·dim. Each
// operation that the paper's Table III classifies (MAC outputs,
// activations, softmax, logits update) passes its output through the
// active noise.Injector before flowing downstream.
package caps

import (
	"redcane/internal/energy"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

// Layer is one inference stage of a capsule network.
type Layer interface {
	// Name returns the unique layer name used in injection sites.
	Name() string
	// Forward runs the layer, passing every instrumented intermediate
	// tensor through inj.
	Forward(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor
	// Sites enumerates the layer's injection points in visit order.
	Sites() []noise.Site
	// Params exposes the layer's weights keyed by a stable name, for
	// loading and saving. Layers without weights return nil.
	Params() map[string]*tensor.Tensor
	// Ops counts the layer's arithmetic for an input of the given shape
	// and returns the op tally plus the output shape.
	Ops(inShape []int) (energy.Counts, []int)
}

// Conv2D is a standard convolution with an optional ReLU, the stem layer
// of both CapsNet and DeepCaps.
type Conv2D struct {
	LayerName string
	W         *tensor.Tensor // [outCh, inCh, k, k]
	B         *tensor.Tensor // [outCh]
	Stride    int
	Pad       int
	ReLU      bool
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.LayerName }

// Forward implements Layer.
func (l *Conv2D) Forward(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	return l.ForwardExec(x, inj, nil, Float{})
}

// ForwardExec runs the layer under an execution backend, with an optional
// scratch arena for the convolution temporaries (nil allocates fresh).
func (l *Conv2D) ForwardExec(x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend) *tensor.Tensor {
	y := be.Conv2D(l.LayerName, x, l.W, l.B, l.Stride, l.Pad, s)
	y = inj.Inject(noise.Site{Layer: l.LayerName, Group: noise.MACOutputs}, y)
	if l.ReLU {
		r := tensor.ReLU(y)
		s.Release(y)
		y = inj.Inject(noise.Site{Layer: l.LayerName, Group: noise.Activations}, r)
	}
	return y
}

// Sites implements Layer.
func (l *Conv2D) Sites() []noise.Site {
	s := []noise.Site{{Layer: l.LayerName, Group: noise.MACOutputs}}
	if l.ReLU {
		s = append(s, noise.Site{Layer: l.LayerName, Group: noise.Activations})
	}
	return s
}

// Params implements Layer.
func (l *Conv2D) Params() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{
		l.LayerName + "/W": l.W,
		l.LayerName + "/B": l.B,
	}
}

// Ops implements Layer.
func (l *Conv2D) Ops(inShape []int) (energy.Counts, []int) {
	n, h, w := inShape[0], inShape[2], inShape[3]
	spec := tensor.ConvSpec{KH: l.W.Shape[2], KW: l.W.Shape[3], Stride: l.Stride, Pad: l.Pad}
	oh, ow := spec.OutSize(h, w)
	c := energy.Conv2DOps(oh, ow, l.W.Shape[0], l.W.Shape[1], l.W.Shape[2], l.W.Shape[3])
	return c.Scale(float64(n)), []int{n, l.W.Shape[0], oh, ow}
}

// ConvCaps2D is a 2D convolutional capsule layer: a convolution producing
// Caps·Dim channels followed by a squash over each capsule's Dim
// components (DeepCaps' building block, and CapsNet's PrimaryCaps).
type ConvCaps2D struct {
	LayerName string
	Caps, Dim int
	W         *tensor.Tensor // [caps*dim, inCh, k, k]
	B         *tensor.Tensor // [caps*dim]
	Stride    int
	Pad       int
	// SkipSquash leaves the output unsquashed; DeepCaps cells squash
	// once after the residual sum instead.
	SkipSquash bool
}

// Name implements Layer.
func (l *ConvCaps2D) Name() string { return l.LayerName }

// Forward implements Layer.
func (l *ConvCaps2D) Forward(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	return l.ForwardExec(x, inj, nil, Float{})
}

// ForwardExec runs the layer under an execution backend, with an optional
// scratch arena for the convolution temporaries (nil allocates fresh).
func (l *ConvCaps2D) ForwardExec(x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend) *tensor.Tensor {
	y := be.Conv2D(l.LayerName, x, l.W, l.B, l.Stride, l.Pad, s)
	y = inj.Inject(noise.Site{Layer: l.LayerName, Group: noise.MACOutputs}, y)
	if l.SkipSquash {
		return y
	}
	return squashCaps(y, l.Caps, l.Dim, l.LayerName, inj, s, nonlinearityOf(be))
}

// squashCaps squashes an NCHW tensor whose channels are caps·dim capsule
// components (through nl's squash operator) and injects the Activations
// site. The pre-squash tensor is released back to the scratch arena.
func squashCaps(y *tensor.Tensor, caps, dim int, layer string, inj noise.Injector, s *tensor.Scratch, nl Nonlinearity) *tensor.Tensor {
	n, h, w := y.Shape[0], y.Shape[2], y.Shape[3]
	v := y.Reshape(n, caps, dim, h, w)
	sq := nl.squash(v, 2)
	s.Release(y)
	sq = inj.Inject(noise.Site{Layer: layer, Group: noise.Activations}, sq)
	return sq.Reshape(n, caps*dim, h, w)
}

// Sites implements Layer.
func (l *ConvCaps2D) Sites() []noise.Site {
	s := []noise.Site{{Layer: l.LayerName, Group: noise.MACOutputs}}
	if !l.SkipSquash {
		s = append(s, noise.Site{Layer: l.LayerName, Group: noise.Activations})
	}
	return s
}

// Params implements Layer.
func (l *ConvCaps2D) Params() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{
		l.LayerName + "/W": l.W,
		l.LayerName + "/B": l.B,
	}
}

// Ops implements Layer.
func (l *ConvCaps2D) Ops(inShape []int) (energy.Counts, []int) {
	n, h, w := inShape[0], inShape[2], inShape[3]
	spec := tensor.ConvSpec{KH: l.W.Shape[2], KW: l.W.Shape[3], Stride: l.Stride, Pad: l.Pad}
	oh, ow := spec.OutSize(h, w)
	c := energy.Conv2DOps(oh, ow, l.W.Shape[0], l.W.Shape[1], l.W.Shape[2], l.W.Shape[3])
	if !l.SkipSquash {
		c = c.Plus(energy.SquashOps(l.Caps*oh*ow, l.Dim))
	}
	return c.Scale(float64(n)), []int{n, l.Caps * l.Dim, oh, ow}
}

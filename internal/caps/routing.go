package caps

import (
	"redcane/internal/energy"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

// ConvCaps3D is DeepCaps' 3D convolutional capsule layer: each input
// capsule type votes, through its own convolution, for every output
// capsule, and the votes are combined by dynamic routing at each spatial
// position. This is one of the two routing layers the paper identifies as
// especially resilient (Sec. VI-D).
type ConvCaps3D struct {
	LayerName         string
	InCaps, InDim     int
	OutCaps, OutDim   int
	W                 *tensor.Tensor // [inCaps, outCaps*outDim, inDim, k, k]
	Stride, Pad       int
	RoutingIterations int
}

// Name implements Layer.
func (l *ConvCaps3D) Name() string { return l.LayerName }

// Forward implements Layer.
func (l *ConvCaps3D) Forward(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	return l.ForwardExec(x, inj, nil, Float{})
}

// ForwardExec runs the layer under an execution backend, with an optional
// scratch arena for the vote and routing temporaries (nil allocates fresh).
// The per-capsule vote convolutions run on the backend; routing-by-agreement
// stays in float, matching the paper's split between MAC arrays and the
// routing datapath.
func (l *ConvCaps3D) ForwardExec(x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend) *tensor.Tensor {
	votes, oh, ow := l.votes(x, s, be)
	votes = inj.Inject(noise.Site{Layer: l.LayerName, Group: noise.MACOutputs}, votes)
	v := dynamicRouting(votes, l.LayerName, l.RoutingIterations, inj, s, nonlinearityOf(be))
	s.Release(votes)
	n := x.Shape[0]
	return v.Reshape(n, l.OutCaps*l.OutDim, oh, ow)
}

// votes computes the per-input-capsule convolution votes, shape
// [n, inCaps, outCaps, outDim, oh*ow]. The returned tensor comes from the
// scratch arena (every element is overwritten); the caller releases it.
func (l *ConvCaps3D) votes(x *tensor.Tensor, s *tensor.Scratch, be Backend) (v *tensor.Tensor, oh, ow int) {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	k := l.W.Shape[3]
	spec := tensor.ConvSpec{KH: k, KW: k, Stride: l.Stride, Pad: l.Pad}
	oh, ow = spec.OutSize(h, w)
	xi := x.Reshape(n, l.InCaps, l.InDim, h, w)
	votes := s.Take(n, l.InCaps, l.OutCaps, l.OutDim, oh*ow)
	sub := s.Take(n, l.InDim, h, w)
	for i := 0; i < l.InCaps; i++ {
		// Slice input capsule i: [n, inDim, h, w].
		for b := 0; b < n; b++ {
			src := xi.Data[((b*l.InCaps+i)*l.InDim)*h*w : ((b*l.InCaps+i)*l.InDim+l.InDim)*h*w]
			copy(sub.Data[b*l.InDim*h*w:], src)
		}
		wi := tensor.NewFrom(
			l.W.Data[i*l.OutCaps*l.OutDim*l.InDim*k*k:(i+1)*l.OutCaps*l.OutDim*l.InDim*k*k],
			l.OutCaps*l.OutDim, l.InDim, k, k)
		out := be.Conv2D(l.LayerName, sub, wi, nil, l.Stride, l.Pad, s) // [n, outCaps*outDim, oh, ow]
		for b := 0; b < n; b++ {
			src := out.Data[b*l.OutCaps*l.OutDim*oh*ow : (b+1)*l.OutCaps*l.OutDim*oh*ow]
			dst := votes.Data[((b*l.InCaps+i)*l.OutCaps*l.OutDim)*oh*ow:]
			copy(dst, src)
		}
		s.Release(out)
	}
	s.Release(sub)
	return votes, oh, ow
}

// Sites implements Layer.
func (l *ConvCaps3D) Sites() []noise.Site {
	return routingSites(l.LayerName)
}

// Params implements Layer.
func (l *ConvCaps3D) Params() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{l.LayerName + "/W": l.W}
}

// Ops implements Layer.
func (l *ConvCaps3D) Ops(inShape []int) (energy.Counts, []int) {
	n, h, w := inShape[0], inShape[2], inShape[3]
	k := l.W.Shape[3]
	spec := tensor.ConvSpec{KH: k, KW: k, Stride: l.Stride, Pad: l.Pad}
	oh, ow := spec.OutSize(h, w)
	votes := energy.Conv2DOps(oh, ow, l.OutCaps*l.OutDim, l.InDim, k, k).Scale(float64(l.InCaps))
	routing := energy.RoutingOps(l.InCaps, l.OutCaps, l.OutDim).
		Scale(float64(oh * ow * l.RoutingIterations))
	c := votes.Plus(routing).Scale(float64(n))
	return c, []int{n, l.OutCaps * l.OutDim, oh, ow}
}

// ClassCaps is the fully-connected capsule layer with dynamic routing
// (CapsNet's DigitCaps / DeepCaps' final layer). The input NCHW tensor is
// interpreted as one capsule of dimension InDim per (channel-group,
// position); each votes for every output class capsule through a learned
// InDim×OutDim matrix.
type ClassCaps struct {
	LayerName         string
	InCaps, InDim     int // InCaps counts capsules after flattening spatially
	OutCaps, OutDim   int
	W                 *tensor.Tensor // [inCaps, outCaps, outDim, inDim]
	RoutingIterations int
}

// Name implements Layer.
func (l *ClassCaps) Name() string { return l.LayerName }

// Forward implements Layer. The input may be [n, caps*dim, h, w] (capsule
// types replicated over positions) or already [n, inCaps, inDim].
func (l *ClassCaps) Forward(x *tensor.Tensor, inj noise.Injector) *tensor.Tensor {
	return l.ForwardExec(x, inj, nil, Float{})
}

// ForwardExec runs the layer under an execution backend, with an optional
// scratch arena for the vote and routing temporaries (nil allocates fresh).
// The vote MACs run on the backend; routing-by-agreement stays in float.
func (l *ClassCaps) ForwardExec(x *tensor.Tensor, inj noise.Injector, s *tensor.Scratch, be Backend) *tensor.Tensor {
	n := x.Shape[0]
	u := flattenToCaps(x, l.InCaps, l.InDim)
	votes := be.CapsVotes(l.LayerName, u, l.W, s)
	votes = inj.Inject(noise.Site{Layer: l.LayerName, Group: noise.MACOutputs}, votes)
	v := dynamicRouting(votes, l.LayerName, l.RoutingIterations, inj, s, nonlinearityOf(be))
	if u != x {
		s.Release(u) // u was a flattening copy, not the caller's input
	}
	s.Release(votes)
	return v.Reshape(n, l.OutCaps, l.OutDim)
}

// FlattenCaps reinterprets x as [n, inCaps, inDim] with the network's
// capsule layout (position-major per type, inCaps = caps·h·w). Exported
// for external executors that mirror ClassCaps' vote stage.
func FlattenCaps(x *tensor.Tensor, inCaps, inDim int) *tensor.Tensor {
	return flattenToCaps(x, inCaps, inDim)
}

// flattenToCaps reinterprets x as [n, inCaps, inDim]. For a spatial input
// [n, caps·dim, h, w], capsules are laid out position-major per type so
// that inCaps = caps·h·w.
func flattenToCaps(x *tensor.Tensor, inCaps, inDim int) *tensor.Tensor {
	n := x.Shape[0]
	if x.Rank() == 3 {
		return x
	}
	ctypes := x.Shape[1] / inDim
	h, w := x.Shape[2], x.Shape[3]
	out := tensor.New(n, inCaps, inDim)
	idx := 0
	for b := 0; b < n; b++ {
		for c := 0; c < ctypes; c++ {
			for p := 0; p < h*w; p++ {
				for d := 0; d < inDim; d++ {
					out.Data[idx] = x.Data[((b*ctypes*inDim)+(c*inDim+d))*h*w+p]
					idx++
				}
			}
		}
	}
	return out
}

// Sites implements Layer.
func (l *ClassCaps) Sites() []noise.Site {
	return routingSites(l.LayerName)
}

// Params implements Layer.
func (l *ClassCaps) Params() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{l.LayerName + "/W": l.W}
}

// Ops implements Layer.
func (l *ClassCaps) Ops(inShape []int) (energy.Counts, []int) {
	n := inShape[0]
	c := energy.CapsVotesOps(l.InCaps, l.OutCaps, l.InDim, l.OutDim)
	c = c.Plus(energy.RoutingOps(l.InCaps, l.OutCaps, l.OutDim).Scale(float64(l.RoutingIterations)))
	return c.Scale(float64(n)), []int{n, l.OutCaps, l.OutDim}
}

// routingSites lists the four Table III sites of a dynamic-routing layer.
func routingSites(layer string) []noise.Site {
	return []noise.Site{
		{Layer: layer, Group: noise.MACOutputs},
		{Layer: layer, Group: noise.Softmax},
		{Layer: layer, Group: noise.Activations},
		{Layer: layer, Group: noise.LogitsUpdate},
	}
}

// DynamicRouting exposes the routing-by-agreement kernel for external
// executors (e.g. the quantized approximate-execution engine), which
// compute the votes themselves and route them accurately with the exact
// nonlinearities.
// votes is [n, inCaps, outCaps, outDim, positions]; the result is
// [n, outCaps, outDim, positions].
func DynamicRouting(votes *tensor.Tensor, layer string, iterations int, inj noise.Injector) *tensor.Tensor {
	if inj == nil {
		inj = noise.None{}
	}
	return dynamicRouting(votes, layer, iterations, inj, nil, Nonlinearity{})
}

// dynamicRouting runs routing-by-agreement over votes of shape
// [n, inCaps, outCaps, outDim, positions] and returns the routed capsules
// [n, outCaps, outDim, positions]. Each Table III operation passes through
// the injector every iteration, exactly as the modified-TensorFlow-graph
// implementation of the paper injects at every executed node (Sec. V-B).
// The coupling softmax and output squash run through nl, so approximate
// nonlinearity variants flow through the identical loop and sites.
// Per-iteration temporaries recycle through the optional scratch arena.
func dynamicRouting(votes *tensor.Tensor, layer string, iterations int, inj noise.Injector, sc *tensor.Scratch, nl Nonlinearity) *tensor.Tensor {
	if iterations < 1 {
		iterations = 1
	}
	n, inCaps, outCaps := votes.Shape[0], votes.Shape[1], votes.Shape[2]
	outDim, pos := votes.Shape[3], votes.Shape[4]

	logits := sc.TakeZero(n, inCaps, outCaps, pos)
	var v *tensor.Tensor
	for it := 0; it < iterations; it++ {
		// Coupling coefficients k = softmax over output capsules.
		k := nl.softmax(logits, 2)
		k = inj.Inject(noise.Site{Layer: layer, Group: noise.Softmax}, k)

		// s[b, j, d, p] = Σ_i k[b, i, j, p] · û[b, i, j, d, p]
		s := sc.TakeZero(n, outCaps, outDim, pos)
		for b := 0; b < n; b++ {
			for i := 0; i < inCaps; i++ {
				for j := 0; j < outCaps; j++ {
					kOff := ((b*inCaps+i)*outCaps + j) * pos
					kRow := k.Data[kOff : kOff+pos : kOff+pos]
					for d := 0; d < outDim; d++ {
						vOff := ((((b*inCaps+i)*outCaps+j)*outDim + d) * pos)
						vRow := votes.Data[vOff : vOff+pos : vOff+pos]
						sOff := ((b*outCaps+j)*outDim + d) * pos
						sRow := s.Data[sOff : sOff+pos : sOff+pos]
						for p, kv := range kRow {
							sRow[p] += kv * vRow[p]
						}
					}
				}
			}
		}

		// v = squash(s) along the capsule dimension.
		prev := v
		v = nl.squash(s, 2)
		v = inj.Inject(noise.Site{Layer: layer, Group: noise.Activations}, v)
		sc.Release(k, s, prev)

		if it == iterations-1 {
			break
		}
		// Agreement update: b[b,i,j,p] += Σ_d û[b,i,j,d,p]·v[b,j,d,p].
		for b := 0; b < n; b++ {
			for i := 0; i < inCaps; i++ {
				for j := 0; j < outCaps; j++ {
					lOff := ((b*inCaps+i)*outCaps + j) * pos
					lRow := logits.Data[lOff : lOff+pos : lOff+pos]
					for d := 0; d < outDim; d++ {
						uOff := ((((b*inCaps+i)*outCaps+j)*outDim + d) * pos)
						uRow := votes.Data[uOff : uOff+pos : uOff+pos]
						vOff := ((b*outCaps+j)*outDim + d) * pos
						vRow := v.Data[vOff : vOff+pos : vOff+pos]
						for p, uv := range uRow {
							lRow[p] += uv * vRow[p]
						}
					}
				}
			}
		}
		logits = inj.Inject(noise.Site{Layer: layer, Group: noise.LogitsUpdate}, logits)
	}
	sc.Release(logits)
	return v
}

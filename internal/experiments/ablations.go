package experiments

import (
	"fmt"
	"sort"
	"strings"

	"redcane/internal/approx"
	"redcane/internal/axe"
	"redcane/internal/caps"
	"redcane/internal/core"
	"redcane/internal/fixed"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

// RoutingIterationsResult is the ablation behind the paper's explanation
// for routing-layer resilience: "the coefficients are updated dynamically
// at run-time, thus they can adapt to the noise" (Sec. VI-A). If that is
// the mechanism, resilience to routing-group noise should grow with the
// number of routing iterations.
type RoutingIterationsResult struct {
	Benchmark Benchmark
	NM        float64
	// DropByIters maps routing iteration count → accuracy drop under
	// noise injected into the softmax + logits-update groups.
	DropByIters map[int]float64
	Clean       float64
}

// AblationRoutingIterations measures routing-noise resilience at 1, 2 and
// 3 routing iterations on the trained DeepCaps.
func (r *Runner) AblationRoutingIterations() (*RoutingIterationsResult, error) {
	t, err := r.Trained(Benchmarks[0])
	if err != nil {
		return nil, err
	}
	// Locate the mutable routing layers.
	var routing []*int
	for _, l := range t.Net.Layers {
		switch v := l.(type) {
		case *caps.ClassCaps:
			routing = append(routing, &v.RoutingIterations)
		case *caps.CapsCell:
			if c3d, ok := v.Skip.(*caps.ConvCaps3D); ok {
				routing = append(routing, &c3d.RoutingIterations)
			}
		}
	}
	orig := make([]int, len(routing))
	for i, p := range routing {
		orig[i] = *p
	}
	defer func() {
		for i, p := range routing {
			*p = orig[i]
		}
	}()

	const nm = 0.1
	// Double the usual evaluation cap: this ablation compares three drop
	// estimates against each other, so it needs tighter error bars than a
	// single sweep point (quick mode's 60 samples quantize at 1.7 pp).
	x, y := capEval(t, 2*r.evalCap())
	// Inject into the routing layers' vote tensors (MAC outputs): if the
	// paper's adaptation mechanism holds, extra routing iterations give
	// the coupling coefficients more chances to steer around the noise.
	filter := func(s noise.Site) bool {
		return s.Group == noise.MACOutputs && (s.Layer == "Caps3D" || s.Layer == "ClassCaps")
	}
	out := &RoutingIterationsResult{
		Benchmark:   t.Benchmark,
		NM:          nm,
		DropByIters: map[int]float64{},
	}
	for _, iters := range []int{1, 2, 3} {
		for _, p := range routing {
			*p = iters
		}
		clean := caps.Accuracy(t.Net, x, y, noise.None{}, 32)
		noisy := 0.0
		// This ablation compares three drop estimates against each other,
		// so it needs a steadier average than the sweep default (quick
		// mode's single trial of 60 samples jitters by whole percent).
		trials := r.trials()
		if trials < 3 {
			trials = 3
		}
		for tr := 0; tr < trials; tr++ {
			inj := noise.NewGaussian(nm, 0, filter, r.Cfg.Seed+31+uint64(tr))
			noisy += caps.Accuracy(t.Net, x, y, inj, 32)
		}
		noisy /= float64(trials)
		out.DropByIters[iters] = noisy - clean
		if iters == orig[0] {
			out.Clean = clean
		}
	}
	return out, nil
}

// Render formats the iteration ablation.
func (a *RoutingIterationsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — routing iterations vs routing-noise resilience (NM=%.2f)\n", a.NM)
	for _, it := range []int{1, 2, 3} {
		fmt.Fprintf(&b, "  %d iterations: accuracy drop %+0.2f%%\n", it, 100*a.DropByIters[it])
	}
	return b.String()
}

// NoiseVsLUTRow compares, for one component, the accuracy under genuine
// quantized approximate-multiplier execution against the accuracy the
// Gaussian noise model predicts for the same component.
type NoiseVsLUTRow struct {
	Component string
	// LUTAccuracy runs every convolution through the component's LUT.
	LUTAccuracy float64
	// ModelAccuracy injects the component's measured NM at every conv
	// MAC-output site.
	ModelAccuracy float64
}

// NoiseVsLUTResult validates the paper's central modeling assumption.
type NoiseVsLUTResult struct {
	Benchmark Benchmark
	Clean     float64
	Rows      []NoiseVsLUTRow
}

// AblationNoiseVsLUT runs the comparison on the trained CapsNet (small
// enough for LUT execution of every conv).
func (r *Runner) AblationNoiseVsLUT() (*NoiseVsLUTResult, error) {
	t, err := r.Trained(Benchmarks[4]) // capsnet / mnist-like
	if err != nil {
		return nil, err
	}
	x, y := capEval(t, min(r.evalCap(), 100))
	clean := caps.Accuracy(t.Net, x, y, noise.None{}, 32)

	// Characterize against this network's own operand distribution, as
	// the methodology prescribes (Sec. III-B: NM is application
	// dependent).
	poolA, poolB := operandPools(t, x)
	dist := approx.EmpiricalDist(poolA, poolB)

	convLayers := []string{"Conv2D", "Primary"}
	depths := t.Net.MACDepths()
	out := &NoiseVsLUTResult{Benchmark: t.Benchmark, Clean: clean}
	for _, name := range []string{"mul8u_NGR", "mul8u_DM1", "mul8u_JV3", "mul8u_QKX"} {
		c, err := approx.ByName(name)
		if err != nil {
			return nil, err
		}
		mults := map[string]approx.Multiplier{}
		for _, l := range convLayers {
			mults[l] = c.Model
		}
		// True execution: the shared engine runs the convs through the
		// component's LUT — cancellable and worker-parallel like every
		// other evaluation.
		be, err := axe.NewQuantApprox(fixed.DefaultBits, mults)
		if err != nil {
			return nil, err
		}
		lutAcc, err := caps.AccuracyExec(r.ctx(), t.Net, x, y, noise.None{}, be, 32, r.Cfg.Workers)
		if err != nil {
			return nil, err
		}

		// Noise-model prediction: per-site NM/NA characterized at each
		// layer's own accumulation depth (Fig. 6: the error profile
		// shifts with chain length).
		profByLen := map[int]approx.ErrorProfile{}
		params := map[noise.Site]noise.Params{}
		for _, l := range convLayers {
			cl := core.PickChainLen(core.LibraryChainLens, depths[l])
			prof, ok := profByLen[cl]
			if !ok {
				prof = approx.Characterize(c.Model, dist, cl, 20000, r.Cfg.Seed+41)
				profByLen[cl] = prof
			}
			params[noise.Site{Layer: l, Group: noise.MACOutputs}] = noise.Params{NM: prof.NM, NA: prof.NA}
		}
		inj := noise.NewPerSite(params, r.Cfg.Seed+42)
		modelAcc, err := caps.AccuracyExec(r.ctx(), t.Net, x, y, inj, caps.Float{}, 32, r.Cfg.Workers)
		if err != nil {
			return nil, err
		}

		out.Rows = append(out.Rows, NoiseVsLUTRow{
			Component:     c.Name,
			LUTAccuracy:   lutAcc,
			ModelAccuracy: modelAcc,
		})
	}
	return out, nil
}

// Render formats the validation table.
func (a *NoiseVsLUTResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — Gaussian noise model vs true LUT execution (%s on %s, clean %.2f%%)\n",
		a.Benchmark.Arch, a.Benchmark.Dataset, 100*a.Clean)
	fmt.Fprintf(&b, "%-12s %14s %16s\n", "component", "LUT acc [%]", "model acc [%]")
	for _, row := range a.Rows {
		fmt.Fprintf(&b, "%-12s %14.2f %16.2f\n", row.Component, 100*row.LUTAccuracy, 100*row.ModelAccuracy)
	}
	return b.String()
}

// NoiseAverageResult extends the paper's NA = 0 choice: accuracy drop as
// a function of the noise average at fixed NM, showing how biased
// components (large |NA|) hurt more than unbiased ones.
type NoiseAverageResult struct {
	Benchmark Benchmark
	NM        float64
	// Points maps NA → accuracy drop.
	NAs   []float64
	Drops []float64
}

// AblationNoiseAverage sweeps NA at fixed NM on the MAC outputs of the
// trained DeepCaps.
func (r *Runner) AblationNoiseAverage() (*NoiseAverageResult, error) {
	t, err := r.Trained(Benchmarks[0])
	if err != nil {
		return nil, err
	}
	x, y := capEval(t, r.evalCap())
	clean := caps.Accuracy(t.Net, x, y, noise.None{}, 32)
	const nm = 0.005
	out := &NoiseAverageResult{Benchmark: t.Benchmark, NM: nm}
	for _, na := range []float64{-0.05, -0.02, -0.005, 0, 0.005, 0.02, 0.05} {
		inj := noise.NewGaussian(nm, na, noise.ForGroup(noise.MACOutputs), r.Cfg.Seed+51)
		acc := caps.Accuracy(t.Net, x, y, inj, 32)
		out.NAs = append(out.NAs, na)
		out.Drops = append(out.Drops, acc-clean)
	}
	return out, nil
}

// Render formats the NA sweep.
func (a *NoiseAverageResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — noise average sensitivity at NM=%.3f (MAC outputs)\n", a.NM)
	for i, na := range a.NAs {
		fmt.Fprintf(&b, "  NA=%+0.3f: accuracy drop %+0.2f%%\n", na, 100*a.Drops[i])
	}
	return b.String()
}

// operandPools captures the quantized conv-input activations and weights
// of a trained network on the given inputs (the "real" operand
// distribution of Sec. III-B).
func operandPools(t *Trained, x *tensor.Tensor) (poolA, poolB []uint8) {
	capAct := newCapture(noise.Activations, 20000)
	t.Net.Forward(x, capAct)
	vals := make([]float64, 0, 20000)
	for i := 0; i < x.Len() && len(vals) < 20000; i += 7 {
		vals = append(vals, x.Data[i])
	}
	capAct.values["Input"] = vals

	layers := make([]string, 0, len(capAct.values))
	for l := range capAct.values {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	for _, l := range layers {
		vs := capAct.values[l]
		q := fixed.Calibrate(tensor.NewFrom(append([]float64(nil), vs...), len(vs)), 8)
		for _, v := range vs {
			poolA = append(poolA, uint8(q.Quantize(v)))
		}
	}

	names := make([]string, 0)
	allParams := t.Net.Params()
	for n := range allParams {
		if strings.HasSuffix(n, "/W") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		w := allParams[n]
		q := fixed.Calibrate(w, 8)
		for i := 0; i < w.Len(); i += 3 {
			poolB = append(poolB, uint8(q.Quantize(w.Data[i])))
		}
	}
	return poolA, poolB
}

// capEval slices the first n test samples of a trained benchmark.
func capEval(t *Trained, n int) (*tensor.Tensor, []int) {
	total := t.Data.TestX.Shape[0]
	if n > total || n <= 0 {
		n = total
	}
	sample := t.Data.TestX.Len() / total
	x := tensor.NewFrom(t.Data.TestX.Data[:n*sample], append([]int{n}, t.Data.TestX.Shape[1:]...)...)
	return x, t.Data.TestY[:n]
}

package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV writers for the sweep-style results, so the figures can be re-drawn
// with external plotting tools. One row per measurement; headers match
// the paper's axis labels.

// WriteCSV emits the group-wise sweep as
// (benchmark, group, nm, accuracy, drop).
func (g *GroupSweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arch", "dataset", "group", "nm", "accuracy", "drop"}); err != nil {
		return err
	}
	for _, gr := range g.Groups {
		for _, p := range gr.Points {
			rec := []string{
				g.Benchmark.Arch, g.Benchmark.Dataset, gr.Group.String(),
				fmt.Sprintf("%g", p.NM),
				fmt.Sprintf("%g", p.Accuracy),
				fmt.Sprintf("%g", p.Drop),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the fault campaign as
// (arch, dataset, kind, group, severity, accuracy, drop).
func (f *FaultSweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arch", "dataset", "kind", "group", "severity", "accuracy", "drop"}); err != nil {
		return err
	}
	for _, gr := range f.Groups {
		for _, p := range gr.Points {
			rec := []string{
				f.Benchmark.Arch, f.Benchmark.Dataset, f.Spec.String(), gr.Group.String(),
				fmt.Sprintf("%g", p.NM),
				fmt.Sprintf("%g", p.Accuracy),
				fmt.Sprintf("%g", p.Drop),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the layer-wise sweep as
// (layer, group, nm, accuracy, drop, tolerated_nm).
func (f *Fig10Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"layer", "group", "nm", "accuracy", "drop", "tolerated_nm"}); err != nil {
		return err
	}
	for _, l := range f.Layers {
		for _, p := range l.Points {
			rec := []string{
				l.Layer, l.Group.String(),
				fmt.Sprintf("%g", p.NM),
				fmt.Sprintf("%g", p.Accuracy),
				fmt.Sprintf("%g", p.Drop),
				fmt.Sprintf("%g", l.ToleratedNM),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits Table IV as one row per component.
func (t *Table4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"component", "power_uw", "area_um2",
		"modeled_na", "modeled_nm", "real_na", "real_nm",
		"paper_modeled_nm", "paper_modeled_na",
	}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := []string{
			r.Name,
			fmt.Sprintf("%g", r.PowerUW), fmt.Sprintf("%g", r.AreaUM2),
			fmt.Sprintf("%g", r.ModeledNA), fmt.Sprintf("%g", r.ModeledNM),
			fmt.Sprintf("%g", r.RealNA), fmt.Sprintf("%g", r.RealNM),
			fmt.Sprintf("%g", r.PaperModeledNM), fmt.Sprintf("%g", r.PaperModeledNA),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the error-model validation as one row per scope:
// (scope, name, component, sites, mac_sites, predicted_acc, measured_acc,
// gap, realizable).
func (v *ValidateResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"scope", "name", "component", "sites", "mac_sites",
		"predicted_acc", "measured_acc", "gap", "realizable",
	}); err != nil {
		return err
	}
	for _, r := range v.Rows {
		rec := []string{
			r.Scope, r.Name, r.Component,
			fmt.Sprintf("%d", r.Sites), fmt.Sprintf("%d", r.MACSites),
			fmt.Sprintf("%g", r.Predicted), fmt.Sprintf("%g", r.Measured),
			fmt.Sprintf("%g", r.Gap()), fmt.Sprintf("%v", r.Realizable),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Fig. 6 error profiles as
// (component, chain_len, mean, std, ks, nm, na).
func (f *Fig6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"component", "chain_len", "mean", "std", "ks", "nm", "na"}); err != nil {
		return err
	}
	for _, p := range f.Profiles {
		rec := []string{
			p.Component, fmt.Sprintf("%d", p.ChainLen),
			fmt.Sprintf("%g", p.Fit.Mean), fmt.Sprintf("%g", p.Fit.Std),
			fmt.Sprintf("%g", p.Fit.KS),
			fmt.Sprintf("%g", p.NM), fmt.Sprintf("%g", p.NA),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package experiments

import (
	"fmt"
	"strings"

	"redcane/internal/core"
	"redcane/internal/noise"
	"redcane/internal/plot"
)

// This file is the fault-campaign experiment: the group-wise resilience
// analysis of the methodology driven by a fault injector (bit flips,
// stuck-at cells) instead of the paper's Gaussian noise model. The sweep
// grid's severity axis is reinterpreted per kind — flip probability or
// stuck fraction — and everything else (counter seeding, prefix caching,
// checkpoint resume, fleet distribution) is the shared engine.

// FaultSweepResult holds one benchmark's group-wise fault campaign.
type FaultSweepResult struct {
	Benchmark Benchmark
	Spec      noise.Spec
	Clean     float64
	Groups    []core.GroupResult
}

// FaultSweep runs the group-wise resilience analysis under the given
// fault model. A zero spec injects the default Gaussian model on the
// fault severity grid; ov.NMSweep replaces that grid (it is the severity
// grid: flip probability for bit-flip, stuck fraction for stuck-at).
func (r *Runner) FaultSweep(b Benchmark, spec noise.Spec, ov Overrides) (*FaultSweepResult, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	t, err := r.Trained(b)
	if err != nil {
		return nil, err
	}
	opts := ov.apply(r.nonlinearize(core.Options{
		NMSweep:   core.DefaultFaultSweep,
		Noise:     spec,
		Trials:    r.trials(),
		Batch:     32,
		Threshold: r.threshold(),
		Seed:      r.Cfg.Seed + 26,
		MaxEval:   r.evalCap(),
		Workers:   r.Cfg.Workers,
	})).WithDefaults()
	a := &core.Analyzer{
		Net: t.Net, Data: t.Data, Obs: r.obs(), Opts: opts,
		Checkpoint: r.analysisCheckpoint(b, opts),
		Probes:     r.Cfg.Probes,
		Fleet:      r.Cfg.Fleet,
	}
	ctx := r.ctx()
	clean, err := a.CleanAccuracyCtx(ctx)
	if err != nil {
		return nil, err
	}
	groups, err := a.AnalyzeGroups(ctx, clean)
	if err != nil {
		return nil, err
	}
	return &FaultSweepResult{
		Benchmark: b,
		Spec:      spec,
		Clean:     clean,
		Groups:    groups,
	}, nil
}

// Render formats the fault campaign's accuracy-drop curves, labeling the
// severity axis by the injector kind.
func (f *FaultSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault campaign [%s] — %s on %s (clean %.2f%%)\n",
		f.Spec, f.Benchmark.Arch, f.Benchmark.Dataset, 100*f.Clean)
	fmt.Fprintf(&b, "%-14s", f.Spec.SeverityLabel())
	for _, p := range f.Groups[0].Points {
		fmt.Fprintf(&b, "%8.3g", p.NM)
	}
	b.WriteString("\n")
	for _, gr := range f.Groups {
		fmt.Fprintf(&b, "%-14s", gr.Group)
		for _, p := range gr.Points {
			fmt.Fprintf(&b, "%+8.1f", 100*p.Drop)
		}
		status := ""
		if gr.Resilient {
			status = "  [RESILIENT]"
		}
		fmt.Fprintf(&b, "  (accuracy drop %%)%s\n", status)
	}
	b.WriteString("\n")
	b.WriteString(f.Chart().Render())
	return b.String()
}

// Chart builds the accuracy-drop line chart of the campaign.
func (f *FaultSweepResult) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  fmt.Sprintf("accuracy drop [%%] vs %s (%s)", f.Spec.SeverityLabel(), f.Spec),
		XLabel: f.Spec.SeverityLabel() + " (descending)",
		Height: 12,
	}
	for _, p := range f.Groups[0].Points {
		c.XTicks = append(c.XTicks, fmt.Sprintf("%.3g", p.NM))
	}
	c.Width = 6 * len(c.XTicks)
	for _, gr := range f.Groups {
		s := plot.Series{Name: gr.Group.String()}
		for _, p := range gr.Points {
			s.Values = append(s.Values, 100*p.Drop)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// Package experiments regenerates every table and figure of the ReD-CaNe
// paper's evaluation (Tables I–IV, Figs. 4–6 and 9–12), plus the ablation
// studies listed in DESIGN.md, against the pure-Go CapsNet stack and the
// synthetic benchmark datasets. Each experiment returns a structured
// result with a Render method producing the text form recorded in
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"redcane/internal/caps"
	"redcane/internal/checkpoint"
	"redcane/internal/core"
	"redcane/internal/datasets"
	"redcane/internal/models"
	"redcane/internal/noise"
	"redcane/internal/obs"
	"redcane/internal/params"
	"redcane/internal/tensor"
	"redcane/internal/train"
)

// Config controls dataset sizes, training effort and evaluation depth.
type Config struct {
	// Dir caches trained weights (and, with Checkpoint set, analysis
	// checkpoints) between runs ("" disables caching).
	Dir string
	// Quick shrinks datasets, epochs and evaluation sizes so the whole
	// suite runs in CI/benchmark time budgets.
	Quick bool
	// Seed drives dataset synthesis, weight init and noise.
	Seed uint64
	// Obs, when non-nil, receives the runner's telemetry: structured
	// progress events (training phases, sweep stages with rates and ETAs)
	// and the engine/per-layer metrics. Telemetry never alters results.
	Obs *obs.Obs
	// Probes, when non-nil, records per-layer numeric-health statistics
	// (core.ProbeSet) for every sweep and backend evaluation the runner
	// performs. Probing never alters results or checkpoints; it roughly
	// doubles evaluation cost.
	Probes *core.ProbeSet
	// Log is the legacy progress hook: when set and Obs is nil, NewRunner
	// bridges it to an info-level text-event Obs writing to this writer.
	// Prefer Obs.
	Log io.Writer
	// Workers bounds the sweep engine's evaluation goroutines
	// (0 = runtime.GOMAXPROCS(0)); results are identical for any value.
	Workers int
	// Ctx, when non-nil, cancels long-running work (training epochs,
	// resilience sweeps, refinement rounds) at the next batch boundary.
	// A nil Ctx means run to completion (context.Background()).
	Ctx context.Context
	// Checkpoint persists completed analysis work (sweep windows,
	// finished methodology steps) under Dir, keyed by (benchmark, seed,
	// options fingerprint), so an interrupted design/refine/experiment
	// run resumes bit-identically. Requires Dir (or CheckpointDir);
	// cancellation works without it, resume does not.
	Checkpoint bool
	// CheckpointDir, when set, overrides where analysis checkpoints are
	// written while the weight cache stays under Dir. The analysis
	// service keys each job's checkpoints by its job directory so
	// concurrent jobs with identical (benchmark, seed, options) never
	// share — or clobber — a checkpoint file.
	CheckpointDir string
	// TrainMu, when non-nil, serializes Trained across runners sharing a
	// weight-cache Dir (the analysis service's concurrent jobs): only
	// one runner at a time trains or loads, so two jobs never race to
	// write the same cache file or redundantly train the same benchmark.
	TrainMu *sync.Mutex
	// Fleet, when non-nil, distributes the group/layer sweeps of the
	// sweep and methodology entry points to remote workers instead of the
	// local pool (core.Analyzer.Fleet). Results are byte-identical either
	// way; a nil Fleet keeps everything in-process.
	Fleet core.Fleet
	// Softmax and Squash select the nonlinearity variants every analysis
	// entry point evaluates under ("" or "exact" keeps the bit-exact
	// operators; see approx.SoftmaxNames / approx.SquashNames). Non-default
	// variants fold into checkpoint fingerprints, so approximate and exact
	// runs never share a resume state.
	Softmax string
	Squash  string
}

// Benchmark is one (architecture, dataset) pair of the paper's Table II.
type Benchmark struct {
	Arch    string // "deepcaps" or "capsnet"
	Dataset string // "cifar-like", "svhn-like", "mnist-like", "fashion-like"
	// PaperAccuracy is the paper's Table II reference, for reporting.
	PaperAccuracy float64
}

// Key is the cache identity of the benchmark.
func (b Benchmark) Key() string { return b.Arch + "-" + b.Dataset }

// Benchmarks lists the five pairs evaluated in the paper, in Table II
// order.
var Benchmarks = []Benchmark{
	{Arch: "deepcaps", Dataset: "cifar-like", PaperAccuracy: 92.74},
	{Arch: "deepcaps", Dataset: "svhn-like", PaperAccuracy: 97.56},
	{Arch: "deepcaps", Dataset: "mnist-like", PaperAccuracy: 99.72},
	{Arch: "capsnet", Dataset: "fashion-like", PaperAccuracy: 92.88},
	{Arch: "capsnet", Dataset: "mnist-like", PaperAccuracy: 99.67},
}

// DefaultBenchmark is the benchmark used when a job or CLI command names
// none: CapsNet on the MNIST-like dataset, the paper's primary case
// study. Resolved by key at init, not by slice index, so reordering or
// extending Benchmarks can never silently change the default.
var DefaultBenchmark = mustBenchmark("capsnet-mnist-like")

func mustBenchmark(key string) Benchmark {
	b, err := FindBenchmark(key)
	if err != nil {
		panic(err)
	}
	return b
}

// BenchmarkKeys lists the benchmark keys in Table II order.
func BenchmarkKeys() []string {
	keys := make([]string, len(Benchmarks))
	for i, b := range Benchmarks {
		keys[i] = b.Key()
	}
	return keys
}

// FindBenchmark resolves a benchmark key case-insensitively. An unknown
// key errors naming every valid one, so a typo at the CLI or in a job
// submission is diagnosable without a round-trip through 'redcane list'.
func FindBenchmark(key string) (Benchmark, error) {
	for _, b := range Benchmarks {
		if strings.EqualFold(b.Key(), key) {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("experiments: unknown benchmark %q (valid: %s)",
		key, strings.Join(BenchmarkKeys(), ", "))
}

// Trained is a ready-to-analyze benchmark: inference network with trained
// weights plus its dataset.
type Trained struct {
	Benchmark Benchmark
	Net       *caps.Network
	Data      *datasets.Dataset
	TestAcc   float64
}

// Runner builds and caches trained benchmarks and exposes the experiment
// generators.
type Runner struct {
	Cfg       Config
	cache     map[string]*Trained
	fig11Memo *Fig11Result
}

// NewRunner returns a Runner for the given config.
func NewRunner(cfg Config) *Runner {
	if cfg.Obs == nil && cfg.Log != nil {
		cfg.Obs = obs.New(obs.Info, obs.NewTextSink(cfg.Log))
	}
	return &Runner{Cfg: cfg, cache: map[string]*Trained{}}
}

// obs returns the runner's telemetry handle (nil-safe everywhere).
func (r *Runner) obs() *obs.Obs { return r.Cfg.Obs }

// ctx returns the runner's cancellation context (never nil).
func (r *Runner) ctx() context.Context {
	if r.Cfg.Ctx != nil {
		return r.Cfg.Ctx
	}
	return context.Background()
}

// mode is the cache-key suffix distinguishing quick from full runs.
func (r *Runner) mode() string {
	if r.Cfg.Quick {
		return "quick"
	}
	return "full"
}

// analysisCheckpoint opens (or resumes) the on-disk checkpoint store for
// one benchmark's analysis, keyed by (benchmark+mode, seed, options
// fingerprint) under CheckpointDir (falling back to Dir). Returns nil
// when checkpointing is off or no directory is configured; open failures
// degrade to no checkpointing with a warning, never an aborted run.
func (r *Runner) analysisCheckpoint(b Benchmark, opts core.Options) *checkpoint.Store {
	dir := r.Cfg.CheckpointDir
	if dir == "" {
		dir = r.Cfg.Dir
	}
	if !r.Cfg.Checkpoint || dir == "" {
		return nil
	}
	name := b.Key() + "-" + r.mode()
	st, resumed, err := checkpoint.Open(dir, name, r.Cfg.Seed, opts.Fingerprint())
	if err != nil {
		r.obs().Warn("checkpoint open failed; continuing without resume",
			obs.F("benchmark", name), obs.F("err", err))
	}
	if st == nil {
		return nil
	}
	if resumed {
		r.obs().Info("resuming analysis from checkpoint",
			obs.F("benchmark", name), obs.F("path", st.Path()))
	}
	return st
}

func (r *Runner) splitSizes() (trainN, testN int) {
	if r.Cfg.Quick {
		return 500, 150
	}
	return 1500, 400
}

func (r *Runner) epochs(arch string) int {
	if arch == "deepcaps" {
		if r.Cfg.Quick {
			return 3
		}
		return 4
	}
	if r.Cfg.Quick {
		return 2
	}
	return 3
}

// evalCap bounds how many test samples a resilience sweep point uses.
func (r *Runner) evalCap() int {
	if r.Cfg.Quick {
		return 60
	}
	return 200
}

// threshold is the tolerable accuracy drop used to mark resilience; the
// quick mode widens it because its small evaluation split quantizes
// accuracy coarsely.
func (r *Runner) threshold() float64 {
	if r.Cfg.Quick {
		return 0.02
	}
	return 0.01
}

// nonlinearize folds the configured softmax/squash variants into an
// analysis option set. Every analyzer the runner builds goes through
// here, so one Config selection applies uniformly across sweeps, designs
// and validations.
func (r *Runner) nonlinearize(opts core.Options) core.Options {
	opts.Softmax = r.Cfg.Softmax
	opts.Squash = r.Cfg.Squash
	return opts
}

// trials is the number of noise seeds averaged per sweep point.
func (r *Runner) trials() int {
	if r.Cfg.Quick {
		return 1
	}
	return 2
}

func (r *Runner) dataset(name string) (*datasets.Dataset, error) {
	trainN, testN := r.splitSizes()
	return datasets.ByName(name, trainN, testN, r.Cfg.Seed+hashString(name))
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (r *Runner) spec(arch string, ds *datasets.Dataset) (models.Spec, error) {
	shape := []int{ds.Channels, ds.H, ds.W}
	switch arch {
	case "deepcaps":
		return models.DeepCaps(shape, ds.Classes()), nil
	case "capsnet":
		return models.CapsNet(shape, ds.Classes()), nil
	default:
		return models.Spec{}, fmt.Errorf("experiments: unknown architecture %q", arch)
	}
}

// Trained returns the trained benchmark, training it on first use and
// caching weights in memory and (when Dir is set) on disk. With a
// non-nil Cfg.TrainMu the load-or-train path runs under that lock.
func (r *Runner) Trained(b Benchmark) (*Trained, error) {
	key := b.Key()
	if t, ok := r.cache[key]; ok {
		return t, nil
	}
	if r.Cfg.TrainMu != nil {
		r.Cfg.TrainMu.Lock()
		defer r.Cfg.TrainMu.Unlock()
	}
	sp := r.obs().StartSpan("train.dataset", obs.F("dataset", b.Dataset))
	ds, err := r.dataset(b.Dataset)
	sp.End()
	if err != nil {
		return nil, err
	}
	spec, err := r.spec(b.Arch, ds)
	if err != nil {
		return nil, err
	}
	net, err := models.BuildInference(spec, r.Cfg.Seed+11)
	if err != nil {
		return nil, err
	}

	var cachePath string
	if r.Cfg.Dir != "" {
		cachePath = filepath.Join(r.Cfg.Dir, fmt.Sprintf("%s-%s-seed%d.gob", key, r.mode(), r.Cfg.Seed))
		if store, err := params.Load(cachePath); err == nil {
			if err := store.LoadInto(net.Params()); err == nil {
				r.obs().Debug("weight cache hit", obs.F("benchmark", key), obs.F("path", cachePath))
				t, err := r.finish(b, net, ds)
				if err != nil {
					return nil, err
				}
				r.cache[key] = t
				return t, nil
			} else {
				// A present-but-incompatible cache (e.g. stale layout after a
				// model change) is discarded and retrained — loudly, so users
				// know why the run is slow and can delete the file.
				r.obs().Warn("weight cache present but unusable; retraining",
					obs.F("benchmark", key), obs.F("path", cachePath), obs.F("err", err))
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			// Same for a file that exists but cannot even be decoded.
			r.obs().Warn("weight cache present but unusable; retraining",
				obs.F("benchmark", key), obs.F("path", cachePath), obs.F("err", err))
		}
	}

	r.obs().Info("training benchmark", obs.F("benchmark", key),
		obs.F("samples", ds.TrainX.Shape[0]), obs.F("epochs", r.epochs(b.Arch)))
	total := r.obs().StartSpan("train.benchmark", obs.F("benchmark", key))
	m, err := models.BuildTrainer(spec, r.Cfg.Seed+11)
	if err != nil {
		return nil, err
	}
	sz := ds.Channels * ds.H * ds.W
	calibN := 32
	if calibN > ds.TrainX.Shape[0] {
		calibN = ds.TrainX.Shape[0]
	}
	calib := tensor.NewFrom(ds.TrainX.Data[:calibN*sz], calibN, ds.Channels, ds.H, ds.W)
	sp = r.obs().StartSpan("train.lsuv", obs.F("benchmark", key))
	train.LSUVInit(m, calib, 0.5)
	sp.End()
	sp = r.obs().StartSpan("train.fit", obs.F("benchmark", key))
	_, err = train.FitCtx(r.ctx(), m, ds, train.Config{
		Epochs:    r.epochs(b.Arch),
		BatchSize: 32,
		LR:        1.5e-3,
		Seed:      r.Cfg.Seed + 1,
		GradClip:  5,
		Log:       r.obs().LineWriter(obs.Debug),
	})
	sp.End()
	if err != nil {
		// Cancelled mid-training: the weights are partial, so nothing is
		// cached — a rerun restarts this benchmark's training from scratch.
		return nil, fmt.Errorf("train %s: %w", key, err)
	}
	store := params.FromParams(m.ParamMap())
	if err := store.LoadInto(net.Params()); err != nil {
		return nil, err
	}
	if cachePath != "" {
		// Cache write failures are non-fatal, but never silent: a broken
		// cache dir means every future run retrains from scratch.
		if err := os.MkdirAll(r.Cfg.Dir, 0o755); err != nil {
			r.obs().Warn("weight-cache dir create failed",
				obs.F("dir", r.Cfg.Dir), obs.F("err", err))
		} else if err := store.Save(cachePath); err != nil {
			r.obs().Warn("weight-cache save failed",
				obs.F("path", cachePath), obs.F("err", err))
		}
	}
	t, err := r.finish(b, net, ds)
	if err != nil {
		return nil, err
	}
	total.End()
	r.obs().Info("trained benchmark", obs.F("benchmark", key),
		obs.F("test_acc", fmt.Sprintf("%.2f%%", 100*t.TestAcc)))
	r.cache[key] = t
	return t, nil
}

func (r *Runner) finish(b Benchmark, net *caps.Network, ds *datasets.Dataset) (*Trained, error) {
	net.Obs = r.obs()
	sp := r.obs().StartSpan("train.eval", obs.F("benchmark", b.Key()))
	acc, err := caps.AccuracyCtx(r.ctx(), net, ds.TestX, ds.TestY, noise.None{}, 32, 0)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("evaluate %s: %w", b.Key(), err)
	}
	return &Trained{Benchmark: b, Net: net, Data: ds, TestAcc: acc}, nil
}

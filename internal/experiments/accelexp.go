package experiments

import (
	"fmt"
	"strings"

	"redcane/internal/accel"
	"redcane/internal/approx"
	"redcane/internal/models"
)

// AccelResult extends Fig. 5 to the accelerator level: when the full
// CapsAcc-style system (PE array + SRAM + DRAM) is modeled, how much of
// each multiplier's power saving survives? The paper's Fig. 5 covers the
// computational path only; a designer deciding on approximate components
// needs the system number too.
type AccelResult struct {
	Reports []accel.LayerReport
	Acc     accel.Summary
	// Rows holds per-component system-level savings.
	Rows []AccelRow
}

// AccelRow is one multiplier's accelerator-level outcome.
type AccelRow struct {
	Component string
	// ComputeSaving is the compute-energy saving (≈ Fig. 5's XM view).
	ComputeSaving float64
	// SystemSaving includes SRAM + DRAM energy.
	SystemSaving float64
}

// Accel analyzes the full-size DeepCaps on the default accelerator for
// the accurate multiplier and a set of approximate ones.
func Accel() (*AccelResult, error) {
	net, err := models.BuildInference(models.FullDeepCaps(), 1)
	if err != nil {
		return nil, err
	}
	cfg := accel.DefaultConfig()
	reports, acc := accel.Analyze(net, cfg, 1)
	out := &AccelResult{Reports: reports, Acc: acc}
	for _, name := range []string{"mul8u_NGR", "mul8u_DM1", "mul8u_12N4", "mul8u_QKX"} {
		c, err := approx.ByName(name)
		if err != nil {
			return nil, err
		}
		_, s := accel.Analyze(net, cfg, 1-c.PowerReduction())
		out.Rows = append(out.Rows, AccelRow{
			Component:     c.Name,
			ComputeSaving: 1 - s.ComputePJ/acc.ComputePJ,
			SystemSaving:  1 - s.TotalPJ()/acc.TotalPJ(),
		})
	}
	return out, nil
}

// Render formats the per-layer mapping and the component comparison.
func (a *AccelResult) Render() string {
	var b strings.Builder
	b.WriteString("Accelerator-level analysis (CapsAcc-style 16×16 array, full DeepCaps)\n")
	b.WriteString(accel.FormatReports(a.Reports, a.Acc))
	b.WriteString("\ncomponent savings at the system level:\n")
	fmt.Fprintf(&b, "%-12s %16s %16s\n", "multiplier", "compute saving", "system saving")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-12s %15.1f%% %15.1f%%\n", r.Component, 100*r.ComputeSaving, 100*r.SystemSaving)
	}
	return b.String()
}

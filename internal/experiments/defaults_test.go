package experiments

import "testing"

// The default benchmark was once spelled Benchmarks[4] — a magic index
// that silently changes meaning whenever the table is reordered. The
// named default must stay pinned to the CapsNet/MNIST-like entry every
// defaulting path (CLI commands, server job specs) relies on.
func TestDefaultBenchmarkIsCapsnetMNISTLike(t *testing.T) {
	if got := DefaultBenchmark.Key(); got != "capsnet-mnist-like" {
		t.Fatalf("DefaultBenchmark = %q, want capsnet-mnist-like", got)
	}
	b, err := FindBenchmark(DefaultBenchmark.Key())
	if err != nil {
		t.Fatal(err)
	}
	if b != DefaultBenchmark {
		t.Fatalf("FindBenchmark(%q) = %+v, differs from DefaultBenchmark %+v",
			DefaultBenchmark.Key(), b, DefaultBenchmark)
	}
}

package experiments

import (
	"fmt"
	"math"
	"strings"

	"redcane/internal/caps"
	"redcane/internal/core"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

// StabilityResult quantifies how robust the headline result is to the
// injected-noise seed: the group-wise tolerated NMs are re-measured under
// several independent seeds on the same trained network, and the fraction
// of seeds preserving the routing-groups-more-resilient ordering is
// reported. The paper reports single runs; this extension adds the error
// bars.
type StabilityResult struct {
	Benchmark Benchmark
	Seeds     int
	// MeanTol / StdTol per group, across seeds.
	MeanTol map[noise.Group]float64
	StdTol  map[noise.Group]float64
	// OrderingHolds counts seeds where min(softmax, logits) ≥
	// max(MAC outputs, activations).
	OrderingHolds int
}

// Stability re-runs the group-wise analysis under n independent seeds.
func (r *Runner) Stability(b Benchmark, n int) (*StabilityResult, error) {
	t, err := r.Trained(b)
	if err != nil {
		return nil, err
	}
	sums := map[noise.Group][]float64{}
	holds := 0
	for s := 0; s < n; s++ {
		a := &core.Analyzer{
			Net: t.Net, Data: t.Data, Obs: r.obs(),
			Opts: core.Options{
				Trials:    1,
				Batch:     32,
				Threshold: r.threshold(),
				Seed:      r.Cfg.Seed + 1000*uint64(s+1),
				MaxEval:   r.evalCap(),
				Workers:   r.Cfg.Workers,
			}.WithDefaults(),
		}
		clean, err := a.CleanAccuracyCtx(r.ctx())
		if err != nil {
			return nil, err
		}
		groups, err := a.AnalyzeGroups(r.ctx(), clean)
		if err != nil {
			return nil, err
		}
		tol := map[noise.Group]float64{}
		for _, g := range groups {
			tol[g.Group] = g.ToleratedNM
			sums[g.Group] = append(sums[g.Group], g.ToleratedNM)
		}
		routing := math.Min(tol[noise.Softmax], tol[noise.LogitsUpdate])
		conv := math.Max(tol[noise.MACOutputs], tol[noise.Activations])
		if routing >= conv {
			holds++
		}
	}
	out := &StabilityResult{
		Benchmark: b, Seeds: n,
		MeanTol: map[noise.Group]float64{}, StdTol: map[noise.Group]float64{},
		OrderingHolds: holds,
	}
	for g, vs := range sums {
		tv := tensor.NewFrom(append([]float64(nil), vs...), len(vs))
		out.MeanTol[g] = tv.Mean()
		out.StdTol[g] = tv.Std()
	}
	return out, nil
}

// Render formats the per-group statistics.
func (s *StabilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stability — tolerated NM across %d noise seeds (%s on %s)\n",
		s.Seeds, s.Benchmark.Arch, s.Benchmark.Dataset)
	for _, g := range noise.Groups() {
		fmt.Fprintf(&b, "  %-14s %.3f ± %.3f\n", g, s.MeanTol[g], s.StdTol[g])
	}
	fmt.Fprintf(&b, "  routing ≥ conv ordering held in %d/%d seeds\n", s.OrderingHolds, s.Seeds)
	return b.String()
}

// RangeEstimatorResult is the R(X)-estimator ablation: the paper's Eq. 3
// normalizes noise by the min/max range, which a single outlier inflates;
// this compares the accuracy drop at fixed NM under the min/max estimator
// versus a robust 0.1–99.9 percentile spread.
type RangeEstimatorResult struct {
	Benchmark Benchmark
	NM        float64
	// Drops per estimator name.
	Drops map[string]float64
}

// AblationRangeEstimator measures both estimators on the MAC outputs.
func (r *Runner) AblationRangeEstimator(b Benchmark) (*RangeEstimatorResult, error) {
	t, err := r.Trained(b)
	if err != nil {
		return nil, err
	}
	x, y := capEval(t, r.evalCap())
	clean := caps.Accuracy(t.Net, x, y, noise.None{}, 32)
	const nm = 0.02
	out := &RangeEstimatorResult{Benchmark: b, NM: nm, Drops: map[string]float64{}}

	minmax := noise.NewGaussian(nm, 0, noise.ForGroup(noise.MACOutputs), r.Cfg.Seed+81)
	out.Drops["minmax"] = caps.Accuracy(t.Net, x, y, minmax, 32) - clean

	robust := noise.NewGaussian(nm, 0, noise.ForGroup(noise.MACOutputs), r.Cfg.Seed+81)
	robust.RangeFn = func(v *tensor.Tensor) float64 { return tensor.PercentileRange(v, 0.1, 99.9) }
	out.Drops["p99.9"] = caps.Accuracy(t.Net, x, y, robust, 32) - clean
	return out, nil
}

// Render formats the comparison.
func (a *RangeEstimatorResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — R(X) estimator at NM=%.3f (MAC outputs, %s on %s)\n",
		a.NM, a.Benchmark.Arch, a.Benchmark.Dataset)
	for _, name := range []string{"minmax", "p99.9"} {
		fmt.Fprintf(&b, "  %-8s accuracy drop %+0.2f%%\n", name, 100*a.Drops[name])
	}
	return b.String()
}

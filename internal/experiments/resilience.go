package experiments

import (
	"fmt"
	"strings"

	"redcane/internal/approx"
	"redcane/internal/core"
	"redcane/internal/noise"
	"redcane/internal/plot"
)

// Table2Result reproduces Table II: clean classification accuracy of the
// five (architecture, dataset) benchmarks with accurate multipliers.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one benchmark's accuracy.
type Table2Row struct {
	Benchmark Benchmark
	Accuracy  float64 // ours, in percent
}

// Table2 trains (or loads) all five benchmarks and evaluates them.
func (r *Runner) Table2() (*Table2Result, error) {
	var out Table2Result
	for _, b := range Benchmarks {
		t, err := r.Trained(b)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table2Row{Benchmark: b, Accuracy: 100 * t.TestAcc})
	}
	return &out, nil
}

// Render formats Table II with the paper's reference column.
func (t *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table II — clean accuracy with accurate multipliers\n")
	fmt.Fprintf(&b, "%-10s %-14s %10s %12s\n", "arch", "dataset", "ours [%]", "paper [%]")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-10s %-14s %10.2f %12.2f\n",
			row.Benchmark.Arch, row.Benchmark.Dataset, row.Accuracy, row.Benchmark.PaperAccuracy)
	}
	return b.String()
}

// Table3Result reproduces Table III: the partition of CapsNet inference
// operations into groups, as extracted from the DeepCaps network.
type Table3Result struct {
	Groups []Table3Group
}

// Table3Group is one group row with its member sites.
type Table3Group struct {
	Group noise.Group
	Sites []noise.Site
}

// Table3 extracts the operation groups from the trained DeepCaps.
func (r *Runner) Table3() (*Table3Result, error) {
	t, err := r.Trained(Benchmarks[0])
	if err != nil {
		return nil, err
	}
	a := &core.Analyzer{Net: t.Net, Data: t.Data, Obs: r.obs(), Opts: core.Options{MaxEval: 1}}
	byGroup := a.ExtractGroups()
	var out Table3Result
	for _, g := range noise.Groups() {
		out.Groups = append(out.Groups, Table3Group{Group: g, Sites: byGroup[g]})
	}
	return &out, nil
}

// Render formats the group table.
func (t *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table III — grouping of the CapsNet inference operations\n")
	fmt.Fprintf(&b, "%-3s %-14s %-60s %5s\n", "#", "group", "description", "sites")
	for i, g := range t.Groups {
		fmt.Fprintf(&b, "%-3d %-14s %-60s %5d\n", i+1, g.Group, g.Group.Description(), len(g.Sites))
	}
	return b.String()
}

// GroupSweepResult holds one benchmark's group-wise resilience curves
// (Fig. 9 for DeepCaps/CIFAR, Fig. 12 for the other four benchmarks).
type GroupSweepResult struct {
	Benchmark Benchmark
	Clean     float64
	Groups    []core.GroupResult
}

// Overrides optionally replaces the analysis knobs of a job-shaped sweep
// entry point. The zero value reproduces the paper defaults, so results
// submitted without overrides are byte-identical to the corresponding CLI
// experiment (same seed, same options fingerprint).
type Overrides struct {
	// NMSweep replaces the noise-magnitude grid (nil keeps
	// core.PaperNMSweep). The grid is normalized by Options.WithDefaults.
	NMSweep []float64
	// NA replaces the noise average (paper default 0).
	NA float64
}

// apply folds the overrides into opts.
func (ov Overrides) apply(opts core.Options) core.Options {
	if ov.NMSweep != nil {
		opts.NMSweep = ov.NMSweep
	}
	opts.NA = ov.NA
	return opts
}

// GroupSweep runs methodology Steps 1–3 (the group-wise resilience
// analysis of Fig. 9/12) on one benchmark. It is the job-shaped entry
// point shared by the CLI experiments and the analysis service: it
// returns the structured result (Render/WriteCSV produce the CLI's
// artifacts) instead of printing.
func (r *Runner) GroupSweep(b Benchmark, ov Overrides) (*GroupSweepResult, error) {
	t, err := r.Trained(b)
	if err != nil {
		return nil, err
	}
	opts := ov.apply(r.nonlinearize(core.Options{
		NMSweep:   core.PaperNMSweep,
		Trials:    r.trials(),
		Batch:     32,
		Threshold: r.threshold(),
		Seed:      r.Cfg.Seed + 21,
		MaxEval:   r.evalCap(),
		Workers:   r.Cfg.Workers,
	})).WithDefaults()
	a := &core.Analyzer{
		Net: t.Net, Data: t.Data, Obs: r.obs(), Opts: opts,
		Checkpoint: r.analysisCheckpoint(b, opts),
		Probes:     r.Cfg.Probes,
		Fleet:      r.Cfg.Fleet,
	}
	ctx := r.ctx()
	clean, err := a.CleanAccuracyCtx(ctx)
	if err != nil {
		return nil, err
	}
	groups, err := a.AnalyzeGroups(ctx, clean)
	if err != nil {
		return nil, err
	}
	return &GroupSweepResult{
		Benchmark: b,
		Clean:     clean,
		Groups:    groups,
	}, nil
}

// Fig9 is the group-wise resilience of DeepCaps on the CIFAR-like
// dataset.
func (r *Runner) Fig9() (*GroupSweepResult, error) {
	return r.GroupSweep(Benchmarks[0], Overrides{})
}

// Fig12 is the group-wise resilience of the other four benchmarks.
func (r *Runner) Fig12() ([]*GroupSweepResult, error) {
	var out []*GroupSweepResult
	for _, b := range Benchmarks[1:] {
		res, err := r.GroupSweep(b, Overrides{})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Render formats the accuracy-drop curves as a table plus an ASCII chart
// (the text analogue of the paper's Fig. 9/12 panels).
func (g *GroupSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "group-wise resilience — %s on %s (clean %.2f%%)\n",
		g.Benchmark.Arch, g.Benchmark.Dataset, 100*g.Clean)
	fmt.Fprintf(&b, "%-14s", "NM")
	for _, p := range g.Groups[0].Points {
		fmt.Fprintf(&b, "%8.3g", p.NM)
	}
	b.WriteString("\n")
	for _, gr := range g.Groups {
		fmt.Fprintf(&b, "%-14s", gr.Group)
		for _, p := range gr.Points {
			fmt.Fprintf(&b, "%+8.1f", 100*p.Drop)
		}
		status := ""
		if gr.Resilient {
			status = "  [RESILIENT]"
		}
		fmt.Fprintf(&b, "  (accuracy drop %%)%s\n", status)
	}
	b.WriteString("\n")
	b.WriteString(g.Chart().Render())
	return b.String()
}

// Chart builds the accuracy-drop line chart of the sweep.
func (g *GroupSweepResult) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  "accuracy drop [%] vs noise magnitude",
		XLabel: "NM (descending)",
		Height: 12,
	}
	for _, p := range g.Groups[0].Points {
		c.XTicks = append(c.XTicks, fmt.Sprintf("%.3g", p.NM))
	}
	c.Width = 6 * len(c.XTicks)
	for _, gr := range g.Groups {
		s := plot.Series{Name: gr.Group.String()}
		for _, p := range gr.Points {
			s.Values = append(s.Values, 100*p.Drop)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// Fig10Result is the layer-wise resilience of the non-resilient groups
// (DeepCaps on the CIFAR-like dataset).
type Fig10Result struct {
	Benchmark Benchmark
	Clean     float64
	Layers    []core.LayerResult
}

// Fig10 runs methodology Steps 4–5 on the Fig. 9 outcome.
func (r *Runner) Fig10() (*Fig10Result, error) {
	return r.LayerSweep(Benchmarks[0], Overrides{})
}

// LayerSweep runs methodology Steps 1–5 (group-wise plus the layer-wise
// resilience analysis of the non-resilient groups, Fig. 10) on one
// benchmark — the job-shaped generalization of Fig10.
func (r *Runner) LayerSweep(b Benchmark, ov Overrides) (*Fig10Result, error) {
	t, err := r.Trained(b)
	if err != nil {
		return nil, err
	}
	opts := ov.apply(r.nonlinearize(core.Options{
		NMSweep:   core.PaperNMSweep,
		Trials:    r.trials(),
		Batch:     32,
		Threshold: r.threshold(),
		Seed:      r.Cfg.Seed + 22,
		MaxEval:   r.evalCap(),
		Workers:   r.Cfg.Workers,
	})).WithDefaults()
	a := &core.Analyzer{
		Net: t.Net, Data: t.Data, Obs: r.obs(), Opts: opts,
		Checkpoint: r.analysisCheckpoint(b, opts),
		Probes:     r.Cfg.Probes,
		Fleet:      r.Cfg.Fleet,
	}
	ctx := r.ctx()
	clean, err := a.CleanAccuracyCtx(ctx)
	if err != nil {
		return nil, err
	}
	groups, err := a.AnalyzeGroups(ctx, clean)
	if err != nil {
		return nil, err
	}
	layers, err := a.AnalyzeLayers(ctx, groups, clean)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Benchmark: b, Clean: clean, Layers: layers}, nil
}

// Render formats the per-layer tolerated noise magnitudes.
func (f *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 — layer-wise resilience of non-resilient groups (%s on %s)\n",
		f.Benchmark.Arch, f.Benchmark.Dataset)
	fmt.Fprintf(&b, "%-10s %-14s %12s %s\n", "layer", "group", "tolerated NM", "")
	for _, l := range f.Layers {
		mark := ""
		if l.Resilient {
			mark = "(resilient)"
		}
		fmt.Fprintf(&b, "%-10s %-14s %12.3f %s\n", l.Layer, l.Group, l.ToleratedNM, mark)
	}
	return b.String()
}

// DesignResult wraps the full 6-step methodology outcome for one
// benchmark (the paper's final output: an approximate CapsNet design).
type DesignResult struct {
	Report *core.Report
	// profiles are kept for RefineDesign.
	profiles []core.ComponentProfile
}

// Design runs the complete ReD-CaNe methodology on one benchmark using
// the real conv-input distribution for component characterization.
func (r *Runner) Design(b Benchmark) (*DesignResult, error) {
	t, err := r.Trained(b)
	if err != nil {
		return nil, err
	}
	fig11, err := r.Fig11()
	if err != nil {
		return nil, err
	}
	samples := 20000
	if r.Cfg.Quick {
		samples = 5000
	}
	// Characterize the library at every standard accumulation depth so
	// Step 6 matches each site against the profile measured at the chain
	// length closest to its layer's real MAC fan-in (Fig. 6).
	profiles := core.ProfileLibraryDepths(
		approx.EmpiricalDist(fig11.PoolA, fig11.PoolB), core.LibraryChainLens, samples, r.Cfg.Seed+9)
	opts := r.nonlinearize(core.Options{
		Trials:    r.trials(),
		Batch:     32,
		Threshold: r.threshold(),
		Seed:      r.Cfg.Seed + 23,
		MaxEval:   r.evalCap(),
		Workers:   r.Cfg.Workers,
	}).WithDefaults()
	a := &core.Analyzer{
		Net: t.Net, Data: t.Data, Obs: r.obs(), Opts: opts,
		Checkpoint: r.analysisCheckpoint(b, opts),
		Probes:     r.Cfg.Probes,
		Fleet:      r.Cfg.Fleet,
	}
	report, err := a.RunMethodology(r.ctx(), profiles)
	if err != nil {
		return nil, err
	}
	return &DesignResult{Report: report, profiles: profiles}, nil
}

// Render formats the design report.
func (d *DesignResult) Render() string { return core.FormatReport(d.Report) }

// RefineDesign applies the validate-and-repair extension (core.Refine) to
// an existing design: while the composed approximate CapsNet exceeds the
// tolerable accuracy drop, the noisiest component assignment is upgraded.
func (r *Runner) RefineDesign(b Benchmark, d *DesignResult) (core.RefineResult, error) {
	t, err := r.Trained(b)
	if err != nil {
		return core.RefineResult{}, err
	}
	a := &core.Analyzer{
		Net: t.Net, Data: t.Data, Obs: r.obs(),
		Opts: r.nonlinearize(core.Options{
			Trials:    r.trials(),
			Batch:     32,
			Threshold: r.threshold(),
			Seed:      r.Cfg.Seed + 24,
			MaxEval:   r.evalCap(),
			Workers:   r.Cfg.Workers,
		}),
	}
	return a.Refine(r.ctx(), d.Report.Choices, d.profiles, d.Report.CleanAccuracy, r.threshold(), 50)
}

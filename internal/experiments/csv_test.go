package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestGroupSweepCSV(t *testing.T) {
	res, err := runner(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 + len(res.Groups)*len(res.Groups[0].Points)
	if len(rows) != wantRows {
		t.Fatalf("csv rows = %d, want %d", len(rows), wantRows)
	}
	if rows[0][2] != "group" || rows[1][0] != "deepcaps" {
		t.Fatalf("csv header/first row: %v / %v", rows[0], rows[1])
	}
}

func TestFig10CSV(t *testing.T) {
	res, err := runner(t).Fig10()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 || rows[0][0] != "layer" {
		t.Fatalf("fig10 csv malformed: %v", rows[:1])
	}
}

func TestTable4AndFig6CSV(t *testing.T) {
	r := runner(t)
	t4, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := t4.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // header + 15 components
		t.Fatalf("table4 csv rows = %d", len(rows))
	}

	f6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := f6.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err = csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // header + 2 components × 3 chains
		t.Fatalf("fig6 csv rows = %d", len(rows))
	}
}

func TestAblationFaultTypes(t *testing.T) {
	res, err := runner(t).AblationFaultTypes()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3+3+6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	bySeverity := map[string][]float64{}
	for _, row := range res.Rows {
		bySeverity[row.Kind] = append(bySeverity[row.Kind], row.Drop)
		if row.Drop > 0.1 {
			t.Fatalf("fault injection improved accuracy implausibly: %+v", row)
		}
	}
	// Severity must not *reduce* damage dramatically within each kind
	// (allowing small non-monotonicity from sampling noise).
	for kind, drops := range bySeverity {
		first, last := drops[0], drops[len(drops)-1]
		if last > first+0.05 {
			t.Fatalf("%s: damage shrank with severity: %v", kind, drops)
		}
	}
	if !strings.Contains(res.Render(), "stuck-at-1") {
		t.Fatal("render missing rows")
	}
}

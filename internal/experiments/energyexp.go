package experiments

import (
	"fmt"
	"strings"

	"redcane/internal/approx"
	"redcane/internal/energy"
	"redcane/internal/models"
)

// PaperTableICounts are the operation counts the paper reports for the
// full DeepCaps inference (Table I), kept for side-by-side reporting.
var PaperTableICounts = energy.Counts{
	Add:  1.91e9,
	Mul:  2.15e9,
	Div:  4.17e6,
	Exp:  175e3,
	Sqrt: 502e3,
}

// Table1Result reproduces Table I: operation counts of the full-size
// DeepCaps plus the unit energies.
type Table1Result struct {
	Ours  energy.Counts
	Paper energy.Counts
	Units energy.UnitEnergy
}

// Table1 walks the paper-scale DeepCaps spec and tallies its arithmetic.
func Table1() (*Table1Result, error) {
	net, err := models.BuildInference(models.FullDeepCaps(), 1)
	if err != nil {
		return nil, err
	}
	return &Table1Result{
		Ours:  net.Ops(1),
		Paper: PaperTableICounts,
		Units: energy.TableI,
	}, nil
}

// Render formats the table with both count columns.
func (t *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table I — operations of one full DeepCaps inference\n")
	fmt.Fprintf(&b, "%-15s %12s %12s %12s\n", "OPERATION", "# OPS (ours)", "# OPS (paper)", "Unit E [pJ]")
	row := func(name string, ours, paper, e float64) {
		fmt.Fprintf(&b, "%-15s %12s %12s %12.4f\n", name, human(ours), human(paper), e)
	}
	row("Addition", t.Ours.Add, t.Paper.Add, t.Units.Add)
	row("Multiplication", t.Ours.Mul, t.Paper.Mul, t.Units.Mul)
	row("Division", t.Ours.Div, t.Paper.Div, t.Units.Div)
	row("Exponential", t.Ours.Exp, t.Paper.Exp, t.Units.Exp)
	row("Square Root", t.Ours.Sqrt, t.Paper.Sqrt, t.Units.Sqrt)
	return b.String()
}

func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f G", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f M", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0f K", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Fig4Result reproduces Fig. 4: the energy breakdown per operation class.
type Fig4Result struct {
	Ours  energy.Breakdown
	Paper energy.Breakdown
}

// Fig4 computes the energy shares for our counts and the paper's counts.
func Fig4() (*Fig4Result, error) {
	t, err := Table1()
	if err != nil {
		return nil, err
	}
	return &Fig4Result{
		Ours:  energy.ComputeBreakdown(t.Ours, t.Units),
		Paper: energy.ComputeBreakdown(t.Paper, t.Units),
	}, nil
}

// Render formats the two breakdowns.
func (f *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 4 — energy breakdown of the DeepCaps computational path\n")
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "class", "ours", "paper")
	fmt.Fprintf(&b, "%-8s %9.1f%% %9.1f%%\n", "Mult", 100*f.Ours.MulShare, 100*f.Paper.MulShare)
	fmt.Fprintf(&b, "%-8s %9.1f%% %9.1f%%\n", "Add", 100*f.Ours.AddShare, 100*f.Paper.AddShare)
	fmt.Fprintf(&b, "%-8s %9.1f%% %9.1f%%\n", "Other", 100*f.Ours.OtherShare, 100*f.Paper.OtherShare)
	return b.String()
}

// Fig5Result reproduces Fig. 5: the Acc / XM / XA / XAM optimization
// potential with the NGR approximate multiplier and 5LT-style adder.
type Fig5Result struct {
	Results []energy.ScenarioResult
	// PaperSavings are the paper's reported bars for reference.
	PaperSavings map[string]float64
}

// NGRPowerReduction is the paper's Fig. 6 caption value for the NGR
// multiplier (−29.4 % power).
const NGRPowerReduction = 0.294

// Fig5 evaluates the four scenarios over the full DeepCaps op counts.
func Fig5() (*Fig5Result, error) {
	t, err := Table1()
	if err != nil {
		return nil, err
	}
	adder, _ := approx.AdderByName("add8u_5LT")
	res := energy.EvaluateScenarios(t.Ours, t.Units,
		energy.Scenarios(1-NGRPowerReduction, adder.EnergyScale))
	return &Fig5Result{
		Results: res,
		PaperSavings: map[string]float64{
			"Acc": 0, "XM": -0.283, "XA": -0.019, "XAM": -0.302,
		},
	}, nil
}

// Render formats the scenario bars.
func (f *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5 — optimization potential of approximate components\n")
	fmt.Fprintf(&b, "%-5s %14s %10s %10s\n", "cfg", "energy [µJ]", "ours", "paper")
	for _, r := range f.Results {
		fmt.Fprintf(&b, "%-5s %14.2f %9.1f%% %9.1f%%\n",
			r.Scenario.Name, r.EnergyPJ/1e6, 100*r.SavingVsAcc, 100*f.PaperSavings[r.Scenario.Name])
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"redcane/internal/approx"
	"redcane/internal/fixed"
	"redcane/internal/noise"
	"redcane/internal/tensor"
)

// Fig6Result reproduces Fig. 6: arithmetic-error distributions of the NGR
// and DM1 multiplier models for 1, 9 and 81 accumulated MACs, with their
// Gaussian interpolations.
type Fig6Result struct {
	Profiles []approx.ErrorProfile // 2 components × 3 chain lengths
}

// Fig6 characterizes the two paper-featured components.
func (r *Runner) Fig6() (*Fig6Result, error) {
	samples := 100000 // |I| = 10⁵ per scenario, as in the paper
	if r.Cfg.Quick {
		samples = 10000
	}
	var out Fig6Result
	for _, name := range []string{"mul8u_NGR", "mul8u_DM1"} {
		c, err := approx.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, chain := range []int{1, 9, 81} {
			p := approx.Characterize(c.Model, approx.Uniform{}, chain, samples, r.Cfg.Seed+3)
			p.Component = c.Name
			out.Profiles = append(out.Profiles, p)
		}
	}
	return &out, nil
}

// Render formats the Gaussian fits and one histogram per component.
func (f *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 6 — arithmetic-error distributions and Gaussian fits\n")
	fmt.Fprintf(&b, "%-12s %6s %12s %12s %8s\n", "component", "MACs", "mean", "std", "KS")
	for _, p := range f.Profiles {
		fmt.Fprintf(&b, "%-12s %6d %12.2f %12.2f %8.3f\n",
			p.Component, p.ChainLen, p.Fit.Mean, p.Fit.Std, p.Fit.KS)
	}
	for _, p := range f.Profiles {
		if p.ChainLen != 9 {
			continue
		}
		fmt.Fprintf(&b, "\n%s, 9 MACs (error histogram):\n%s", p.Component, p.Hist.Render(40))
	}
	return b.String()
}

// captureGroup records (a sample of) the tensor values flowing through
// one operation group during forward passes.
type captureGroup struct {
	group  noise.Group
	values map[string][]float64
	cap    int
	stride int
}

func newCapture(g noise.Group, perLayerCap int) *captureGroup {
	return &captureGroup{group: g, values: map[string][]float64{}, cap: perLayerCap, stride: 7}
}

// Inject implements noise.Injector; it subsamples deterministically.
func (c *captureGroup) Inject(s noise.Site, x *tensor.Tensor) *tensor.Tensor {
	if s.Group != c.group {
		return x
	}
	vs := c.values[s.Layer]
	if len(vs) >= c.cap {
		return x
	}
	for i := 0; i < len(x.Data) && len(vs) < c.cap; i += c.stride {
		vs = append(vs, x.Data[i])
	}
	c.values[s.Layer] = vs
	return x
}

// Fig11Result reproduces Fig. 11: the distribution of (quantized) inputs
// to the convolutions of the trained DeepCaps on the CIFAR-like dataset.
type Fig11Result struct {
	// Overall is the 8-bit-code histogram over all conv inputs.
	Overall *tensor.Histogram
	// PerLayer holds code histograms for selected layers.
	PerLayer map[string]*tensor.Histogram
	// Pools are the quantized operand pools reused by Table IV's "real
	// distribution" column: activations (A) and weights (B).
	PoolA, PoolB []uint8
}

// Fig11 runs the trained DeepCaps on test images with a capture injector,
// then quantizes each layer's conv-input values to 8-bit codes.
func (r *Runner) Fig11() (*Fig11Result, error) {
	if r.fig11Memo != nil {
		return r.fig11Memo, nil
	}
	t, err := r.Trained(Benchmarks[0]) // deepcaps / cifar-like
	if err != nil {
		return nil, err
	}
	capAct := newCapture(noise.Activations, 40000)
	n := r.evalCap()
	sample := t.Data.TestX.Len() / t.Data.TestX.Shape[0]
	if n > t.Data.TestX.Shape[0] {
		n = t.Data.TestX.Shape[0]
	}
	x := tensor.NewFrom(t.Data.TestX.Data[:n*sample], append([]int{n}, t.Data.TestX.Shape[1:]...)...)
	t.Net.Forward(x, capAct)

	// The network input is also a conv input.
	imgVals := make([]float64, 0, 40000)
	for i := 0; i < x.Len() && len(imgVals) < 40000; i += 7 {
		imgVals = append(imgVals, x.Data[i])
	}
	capAct.values["Input"] = imgVals

	overall := tensor.NewHistogram(0, 256, 64)
	perLayer := map[string]*tensor.Histogram{}
	var poolA []uint8
	layerNames := make([]string, 0, len(capAct.values))
	for layer := range capAct.values {
		layerNames = append(layerNames, layer)
	}
	sort.Strings(layerNames)
	for _, layer := range layerNames {
		vs := capAct.values[layer]
		tv := tensor.NewFrom(append([]float64(nil), vs...), len(vs))
		q := fixed.Calibrate(tv, 8)
		h := tensor.NewHistogram(0, 256, 64)
		for _, v := range vs {
			code := q.Quantize(v)
			h.Observe(float64(code))
			overall.Observe(float64(code))
			poolA = append(poolA, uint8(code))
		}
		perLayer[layer] = h
	}

	// Weight pool from every conv kernel in the network.
	var poolB []uint8
	pnames := make([]string, 0)
	allParams := t.Net.Params()
	for name := range allParams {
		if strings.HasSuffix(name, "/W") {
			pnames = append(pnames, name)
		}
	}
	sort.Strings(pnames)
	for _, name := range pnames {
		w := allParams[name]
		q := fixed.Calibrate(w, 8)
		for i := 0; i < w.Len(); i += 3 {
			poolB = append(poolB, uint8(q.Quantize(w.Data[i])))
		}
	}
	res := &Fig11Result{Overall: overall, PerLayer: perLayer, PoolA: poolA, PoolB: poolB}
	r.fig11Memo = res
	return res, nil
}

// Render formats the overall histogram and a focus on early caps layers.
func (f *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 11 — distribution of conv-input samples (8-bit codes)\n")
	b.WriteString(f.Overall.Render(40))
	for _, layer := range []string{"Conv2D", "Caps2D1", "Caps2D5", "Caps2D9"} {
		h, ok := f.PerLayer[layer]
		if !ok {
			continue
		}
		peak, peakBin := 0, 0
		for i, c := range h.Counts {
			if c > peak {
				peak, peakBin = c, i
			}
		}
		fmt.Fprintf(&b, "layer %-8s: peak at code ≈ %.0f (%.1f%% of samples)\n",
			layer, h.BinCenter(peakBin), 100*h.Frequency(peakBin))
	}
	return b.String()
}

// Table4Row is one component row of Table IV.
type Table4Row struct {
	Name             string
	PowerUW, AreaUM2 float64
	PowerRed         float64
	// Modeled NM/NA use the uniform input distribution; Real use the
	// captured conv-input/weight pools.
	ModeledNA, ModeledNM float64
	RealNA, RealNM       float64
	// PaperModeledNM/NA are the paper's values for this component name.
	PaperModeledNM, PaperModeledNA float64
}

// Table4Result reproduces Table IV.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 characterizes every library component under the modeled and the
// real input distributions.
func (r *Runner) Table4() (*Table4Result, error) {
	fig11, err := r.Fig11()
	if err != nil {
		return nil, err
	}
	real := approx.Empirical{Label: "deepcaps-cifar-conv-inputs", A: fig11.PoolA, B: fig11.PoolB}
	samples := 30000
	if r.Cfg.Quick {
		samples = 8000
	}
	var out Table4Result
	for _, c := range approx.Library() {
		modeled, measured := approx.CharacterizeComponent(c, real, 9, samples, r.Cfg.Seed+5)
		out.Rows = append(out.Rows, Table4Row{
			Name:    c.Name,
			PowerUW: c.PowerUW, AreaUM2: c.AreaUM2,
			PowerRed:  c.PowerReduction(),
			ModeledNA: modeled.NA, ModeledNM: modeled.NM,
			RealNA: measured.NA, RealNM: measured.NM,
			PaperModeledNM: c.PaperNM, PaperModeledNA: c.PaperNA,
		})
	}
	return &out, nil
}

// Render formats the component table.
func (t *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table IV — power, area and noise parameters of the multiplier library\n")
	fmt.Fprintf(&b, "%-12s %7s %7s | %9s %9s | %9s %9s | %9s\n",
		"multiplier", "µW", "µm²", "mod. NA", "mod. NM", "real NA", "real NM", "paper NM")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %4.0f(-%2.0f%%) %6.0f | %+9.4f %9.4f | %+9.4f %9.4f | %9.4f\n",
			r.Name, r.PowerUW, 100*r.PowerRed, r.AreaUM2,
			r.ModeledNA, r.ModeledNM, r.RealNA, r.RealNM, r.PaperModeledNM)
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"redcane/internal/axe"
	"redcane/internal/caps"
	"redcane/internal/checkpoint"
	"redcane/internal/core"
	"redcane/internal/noise"
	"redcane/internal/obs"
)

// This file is the error-model-validation experiment: it closes the loop
// between the methodology's noise-model predictions and bit-accurate
// execution. The selected design (Step 6) is evaluated twice per scope —
// once with per-site Gaussian injection at the components' measured
// NM/NA (the prediction) and once on a quantized execution backend
// actually running the chosen multipliers (the measurement) — for the
// whole design, each Table III group, and each MAC layer. Related work
// shows error propagation through deep pipelines is exactly where simple
// noise models drift; this experiment quantifies that drift per scope.

// ValidateRow compares predicted and measured accuracy for one subset of
// the design's component choices.
type ValidateRow struct {
	// Scope is "design", "group" or "layer".
	Scope string
	// Name identifies the subset: the group or layer name ("all" for the
	// whole design).
	Name string
	// Component is the chosen component for single-choice subsets ("" when
	// the subset spans several).
	Component string
	// Sites counts the injection sites active in the prediction; MACSites
	// counts how many of them are MAC outputs (the sites a multiplier
	// substitution physically realizes).
	Sites, MACSites int
	// Predicted is the noise model's accuracy (per-site Gaussian injection
	// on the float engine); Measured is the backend's bit-accurate
	// accuracy.
	Predicted, Measured float64
	// Realizable marks rows whose measured backend runs exactly the
	// predicted subset: quant-approx measurements of MAC-only subsets.
	// Non-realizable rows still calibrate the model (the backend runs the
	// subset's MAC choices; non-MAC noise has no hardware counterpart).
	Realizable bool
}

// Gap is Measured − Predicted: positive when the noise model is
// pessimistic, negative when it underestimates the real damage.
func (v ValidateRow) Gap() float64 { return v.Measured - v.Predicted }

// ValidateResult is the full model-validation outcome for one benchmark.
type ValidateResult struct {
	Benchmark Benchmark
	// Backend names the measurement backend ("float", "quant-exact",
	// "quant-approx"); Bits its operand wordlength.
	Backend string
	Bits    uint
	// Clean is the float clean accuracy; QuantBaseline the quantized-exact
	// accuracy at Bits (the quantization-only drop every quantized
	// measurement includes).
	Clean         float64
	QuantBaseline float64
	Rows          []ValidateRow
}

// ValidBackends lists the -backend flag values accepted by Validate.
var ValidBackends = []string{"float", "quant-exact", "quant-approx"}

// backendFor resolves a backend name into a constructor over a design
// subset. The name is validated eagerly so a typo fails before any
// training or analysis runs.
func backendFor(name string, bits uint) (func(choices []core.Choice) (caps.Backend, error), error) {
	switch name {
	case "float":
		return func([]core.Choice) (caps.Backend, error) { return caps.Float{}, nil }, nil
	case "quant-exact":
		return func([]core.Choice) (caps.Backend, error) { return axe.QuantExact{Bits: bits}, nil }, nil
	case "quant-approx":
		return func(choices []core.Choice) (caps.Backend, error) {
			return core.DesignBackend(choices, bits)
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown backend %q (valid: %s)",
			name, strings.Join(ValidBackends, ", "))
	}
}

// choicesKey canonicalizes a choice subset for checkpoint identity.
func choicesKey(choices []core.Choice) string {
	parts := make([]string, 0, len(choices))
	for _, c := range choices {
		parts = append(parts, fmt.Sprintf("%s/%s=%s", c.Site.Layer, c.Site.Group, c.Component.Name))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Validate runs the model-validation experiment: the benchmark's selected
// design is re-evaluated bit-accurately on the named backend and compared
// with the noise model's prediction per design, group, and MAC layer.
// The measurement runs on the shared engine, so it is cancellable,
// worker-parallel, checkpoint-resumable and telemetered like every sweep.
func (r *Runner) Validate(b Benchmark, backendName string, bits uint) (*ValidateResult, error) {
	if bits == 0 {
		bits = 8
	}
	makeBackend, err := backendFor(backendName, bits)
	if err != nil {
		return nil, err
	}
	d, err := r.Design(b)
	if err != nil {
		return nil, err
	}
	t, err := r.Trained(b)
	if err != nil {
		return nil, err
	}

	// Bit-accurate execution is the scalar quantized path — far slower
	// than the float engine — so the evaluation split is capped tighter
	// than the sweeps'.
	maxEval := r.evalCap()
	if maxEval > 100 {
		maxEval = 100
	}
	opts := r.nonlinearize(core.Options{
		Trials:    r.trials(),
		Batch:     32,
		Threshold: r.threshold(),
		Seed:      r.Cfg.Seed + 25,
		MaxEval:   maxEval,
		Workers:   r.Cfg.Workers,
	}).WithDefaults()
	// The prediction passes run under the same softmax/squash variants as
	// the analyzer's measurements, so an approximate-nonlinearity
	// validation compares like with like.
	nl, err := core.ResolveNonlinearity(opts.Softmax, opts.Squash)
	if err != nil {
		return nil, err
	}
	predBe := caps.WithNonlinearity(caps.Float{}, nl)
	a := &core.Analyzer{
		Net: t.Net, Data: t.Data, Obs: r.obs(), Opts: opts,
		Checkpoint: r.analysisCheckpoint(b, opts),
		Probes:     r.Cfg.Probes,
	}
	ctx := r.ctx()
	sp := r.obs().StartSpan("experiment.validate",
		obs.F("benchmark", b.Key()), obs.F("backend", backendName), obs.F("bits", bits))
	defer sp.End()

	clean, err := a.CleanAccuracyCtx(ctx)
	if err != nil {
		return nil, err
	}
	out := &ValidateResult{Benchmark: b, Backend: backendName, Bits: bits, Clean: clean}

	// Quantization-only baseline: exact arithmetic at the target
	// wordlength, no approximate components.
	section := func(scope, name string, choices []core.Choice) string {
		return "validate-" + checkpoint.Fingerprint(fmt.Sprintf(
			"validate|be=%s|bits=%d|scope=%s|name=%s|choices=%s",
			backendName, bits, scope, name, choicesKey(choices)))
	}
	baseline, err := a.EvalBackend(ctx, axe.QuantExact{Bits: bits}, section("baseline", "quant-exact", nil))
	if err != nil {
		return nil, err
	}
	out.QuantBaseline = baseline

	x, y := capEval(t, maxEval)
	choices := d.Report.Choices
	row := func(scope, name string, subset []core.Choice) error {
		macSites := 0
		for _, c := range subset {
			if c.Site.Group == noise.MACOutputs {
				macSites++
			}
		}
		inj := core.NewPerSiteInjector(subset, opts.Seed+777)
		predicted, err := caps.AccuracyExec(ctx, t.Net, x, y, inj, predBe, opts.Batch, opts.Workers)
		if err != nil {
			return err
		}
		be, err := makeBackend(subset)
		if err != nil {
			return err
		}
		measured, err := a.EvalBackend(ctx, be, section(scope, name, subset))
		if err != nil {
			return err
		}
		component := ""
		if len(subset) == 1 {
			component = subset[0].Component.Name
		}
		out.Rows = append(out.Rows, ValidateRow{
			Scope: scope, Name: name, Component: component,
			Sites: len(subset), MACSites: macSites,
			Predicted: predicted, Measured: measured,
			Realizable: backendName == "quant-approx" && macSites == len(subset) && macSites > 0,
		})
		return nil
	}

	// Whole design.
	if err := row("design", "all", choices); err != nil {
		return nil, err
	}
	// Per Table III group.
	for _, g := range noise.Groups() {
		var subset []core.Choice
		for _, c := range choices {
			if c.Site.Group == g {
				subset = append(subset, c)
			}
		}
		if len(subset) == 0 {
			continue
		}
		if err := row("group", g.String(), subset); err != nil {
			return nil, err
		}
	}
	// Per MAC layer (the scopes a multiplier substitution realizes
	// one-to-one, so prediction gaps localize to a layer).
	for _, c := range choices {
		if c.Site.Group != noise.MACOutputs {
			continue
		}
		if err := row("layer", c.Site.Layer, []core.Choice{c}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Render formats the validation table.
func (v *ValidateResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Error-model validation — %s on %s, backend %s (%d-bit)\n",
		v.Benchmark.Arch, v.Benchmark.Dataset, v.Backend, v.Bits)
	fmt.Fprintf(&b, "clean %.2f%%, quantized-exact baseline %.2f%%\n",
		100*v.Clean, 100*v.QuantBaseline)
	fmt.Fprintf(&b, "%-8s %-14s %-14s %6s %10s %10s %8s %s\n",
		"scope", "name", "component", "sites", "pred [%]", "meas [%]", "gap", "")
	for _, row := range v.Rows {
		mark := ""
		if row.Realizable {
			mark = "(realizable)"
		}
		comp := row.Component
		if comp == "" {
			comp = "-"
		}
		fmt.Fprintf(&b, "%-8s %-14s %-14s %6d %10.2f %10.2f %+8.2f %s\n",
			row.Scope, row.Name, comp, row.Sites,
			100*row.Predicted, 100*row.Measured, 100*row.Gap(), mark)
	}
	return b.String()
}

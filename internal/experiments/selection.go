package experiments

import (
	"fmt"
	"strings"

	"redcane/internal/caps"
	"redcane/internal/core"
	"redcane/internal/noise"
)

// SelectionRow is one design point of the selection-strategy comparison.
type SelectionRow struct {
	Design string
	// Accuracy is the validated accuracy with all sites injected.
	Accuracy float64
	// MulSaving is the multiplier-energy saving of the design.
	MulSaving float64
}

// SelectionResult compares ReD-CaNe's heterogeneous per-operation
// component selection against uniform designs that deploy one library
// component everywhere — the homogeneous baselines implicit in prior CNN
// work (e.g. ALWANN-style single-component substitution). The methodology
// earns its keep if its design dominates the uniform frontier: more
// saving at equal accuracy, or more accuracy at equal saving.
type SelectionResult struct {
	Benchmark Benchmark
	Clean     float64
	ReDCaNe   SelectionRow
	Uniform   []SelectionRow
}

// AblationSelectionStrategy evaluates the frontier on one benchmark.
func (r *Runner) AblationSelectionStrategy(b Benchmark) (*SelectionResult, error) {
	t, err := r.Trained(b)
	if err != nil {
		return nil, err
	}
	design, err := r.Design(b)
	if err != nil {
		return nil, err
	}
	x, y := capEval(t, r.evalCap())
	clean := caps.Accuracy(t.Net, x, y, noise.None{}, 32)

	out := &SelectionResult{
		Benchmark: b,
		Clean:     clean,
		ReDCaNe: SelectionRow{
			Design:    "red-cane (heterogeneous)",
			Accuracy:  design.Report.ValidatedAccuracy,
			MulSaving: design.Report.MulEnergySaving,
		},
	}

	// Uniform designs: every site carries one component's noise. The
	// multi-depth library profiles each component at several chain
	// lengths, so the rows group by component and every site draws the NM
	// measured at the depth closest to its layer's MAC fan-in.
	sites := t.Net.Sites()
	mulOps := t.Net.OpsByLayer(1)
	var totalMul float64
	for _, c := range mulOps {
		totalMul += c.Mul
	}
	depths := t.Net.MACDepths()
	var order []string
	byName := map[string][]core.ComponentProfile{}
	for _, p := range design.Profiles() {
		if _, ok := byName[p.Component.Name]; !ok {
			order = append(order, p.Component.Name)
		}
		byName[p.Component.Name] = append(byName[p.Component.Name], p)
	}
	for _, name := range order {
		ps := byName[name]
		var lens []int
		for _, p := range ps {
			if p.ChainLen > 0 {
				lens = append(lens, p.ChainLen)
			}
		}
		params := map[noise.Site]noise.Params{}
		for _, s := range sites {
			best := ps[0]
			if len(ps) > 1 {
				pick := core.PickChainLen(lens, depths[s.Layer])
				for _, p := range ps {
					if p.ChainLen == pick {
						best = p
						break
					}
				}
			}
			params[s] = noise.Params{NM: best.NM, NA: 0}
		}
		inj := noise.NewPerSite(params, r.Cfg.Seed+71)
		acc := caps.Accuracy(t.Net, x, y, inj, 32)
		out.Uniform = append(out.Uniform, SelectionRow{
			Design:    "uniform " + name,
			Accuracy:  acc,
			MulSaving: ps[0].Component.PowerReduction(),
		})
	}
	return out, nil
}

// Profiles exposes the component profiles a design was built from.
func (d *DesignResult) Profiles() []core.ComponentProfile { return d.profiles }

// Render formats the frontier comparison.
func (s *SelectionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — selection strategy frontier (%s on %s, clean %.2f%%)\n",
		s.Benchmark.Arch, s.Benchmark.Dataset, 100*s.Clean)
	fmt.Fprintf(&b, "%-28s %12s %14s\n", "design", "accuracy", "mul saving")
	row := func(r SelectionRow) {
		fmt.Fprintf(&b, "%-28s %11.2f%% %13.1f%%\n", r.Design, 100*r.Accuracy, 100*r.MulSaving)
	}
	row(s.ReDCaNe)
	for _, u := range s.Uniform {
		row(u)
	}
	return b.String()
}

// Dominates reports whether the ReD-CaNe design beats every uniform
// design that achieves at least the same accuracy minus the tolerance.
func (s *SelectionResult) Dominates(tolerance float64) bool {
	for _, u := range s.Uniform {
		if u.Accuracy >= s.ReDCaNe.Accuracy-tolerance && u.MulSaving > s.ReDCaNe.MulSaving {
			return false
		}
	}
	return true
}

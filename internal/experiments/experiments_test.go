package experiments

import (
	"math"
	"os"
	"strings"
	"testing"

	"redcane/internal/noise"
)

// sharedRunner trains quick-mode benchmarks once for the whole package.
var sharedRunner *Runner

func runner(t *testing.T) *Runner {
	t.Helper()
	if sharedRunner == nil {
		dir, err := os.MkdirTemp("", "redcane-test-cache")
		if err != nil {
			t.Fatal(err)
		}
		sharedRunner = NewRunner(Config{Dir: dir, Quick: true, Seed: 42})
	}
	return sharedRunner
}

func TestTable1CountsShape(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: mul and add dominate and sit within 2× of each other;
	// div/exp/sqrt are orders of magnitude rarer.
	if res.Ours.Mul < 1e8 {
		t.Fatalf("mul count = %g", res.Ours.Mul)
	}
	ratio := res.Ours.Mul / res.Ours.Add
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("mul/add = %g", ratio)
	}
	if res.Ours.Div > res.Ours.Mul/100 || res.Ours.Exp > res.Ours.Div {
		t.Fatalf("op mix off: %+v", res.Ours)
	}
	if !strings.Contains(res.Render(), "Multiplication") {
		t.Fatal("render missing rows")
	}
}

func TestFig4MultipliersDominate(t *testing.T) {
	res, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ours.MulShare < 0.90 {
		t.Fatalf("mul share = %g, want ≥ 0.90 (paper: 0.96)", res.Ours.MulShare)
	}
	if res.Ours.AddShare > 0.08 {
		t.Fatalf("add share = %g", res.Ours.AddShare)
	}
	if res.Paper.MulShare < 0.95 || res.Paper.MulShare > 0.97 {
		t.Fatalf("paper-counts mul share = %g, want ≈0.96", res.Paper.MulShare)
	}
}

func TestFig5ScenarioOrdering(t *testing.T) {
	res, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	saving := map[string]float64{}
	for _, r := range res.Results {
		saving[r.Scenario.Name] = r.SavingVsAcc
	}
	// XM ≈ −28 %, XA small, XAM ≈ XM + XA.
	if saving["XM"] > -0.20 || saving["XM"] < -0.35 {
		t.Fatalf("XM saving = %g", saving["XM"])
	}
	if saving["XA"] < -0.08 || saving["XA"] > 0 {
		t.Fatalf("XA saving = %g", saving["XA"])
	}
	if !(saving["XAM"] < saving["XM"] && saving["XM"] < saving["XA"]) {
		t.Fatalf("ordering broken: %+v", saving)
	}
}

func TestFig6GaussianAndSqrtGrowth(t *testing.T) {
	res, err := runner(t).Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 6 {
		t.Fatalf("profiles = %d", len(res.Profiles))
	}
	byKey := map[string]map[int]float64{}
	for _, p := range res.Profiles {
		if byKey[p.Component] == nil {
			byKey[p.Component] = map[int]float64{}
		}
		byKey[p.Component][p.ChainLen] = p.Fit.Std
		if p.ChainLen == 81 && p.Fit.KS > 0.1 {
			t.Fatalf("%s @81 MACs not Gaussian-like: KS=%g", p.Component, p.Fit.KS)
		}
	}
	for comp, stds := range byKey {
		if !(stds[1] < stds[9] && stds[9] < stds[81]) {
			t.Fatalf("%s: std not growing with MAC chain: %v", comp, stds)
		}
	}
	// DM1 is the more aggressive component: wider errors than NGR.
	if byKey["mul8u_DM1"][9] <= byKey["mul8u_NGR"][9] {
		t.Fatalf("DM1 std %g <= NGR std %g", byKey["mul8u_DM1"][9], byKey["mul8u_NGR"][9])
	}
}

func TestTable2AccuraciesAndOrdering(t *testing.T) {
	res, err := runner(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	acc := map[string]float64{}
	for _, row := range res.Rows {
		if row.Accuracy < 60 {
			t.Fatalf("%s/%s accuracy %.1f%% too low to analyze",
				row.Benchmark.Arch, row.Benchmark.Dataset, row.Accuracy)
		}
		acc[row.Benchmark.Key()] = row.Accuracy
	}
	// Paper ordering: MNIST easiest, CIFAR hardest for DeepCaps.
	if acc["deepcaps-cifar-like"] > acc["deepcaps-mnist-like"] {
		t.Fatalf("cifar (%.1f) should be harder than mnist (%.1f)",
			acc["deepcaps-cifar-like"], acc["deepcaps-mnist-like"])
	}
}

func TestTable3GroupsComplete(t *testing.T) {
	res, err := runner(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	// DeepCaps: 16 conv-ish MAC sites + 2 routing MAC sites = 18.
	if n := len(res.Groups[0].Sites); n != 18 {
		t.Fatalf("MAC sites = %d, want 18", n)
	}
	// Softmax and logits update appear exactly at the 2 routing layers.
	for _, gi := range []int{2, 3} {
		if n := len(res.Groups[gi].Sites); n != 2 {
			t.Fatalf("%v sites = %d, want 2", res.Groups[gi].Group, n)
		}
	}
}

func TestFig9RoutingGroupsMoreResilient(t *testing.T) {
	res, err := runner(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	tol := map[noise.Group]float64{}
	for _, g := range res.Groups {
		tol[g.Group] = g.ToleratedNM
	}
	if tol[noise.Softmax] < tol[noise.MACOutputs] || tol[noise.LogitsUpdate] < tol[noise.MACOutputs] {
		t.Fatalf("routing groups not more resilient: %+v", tol)
	}
	// MAC outputs at NM=0.5 must collapse hard (paper: −80 %).
	for _, g := range res.Groups {
		if g.Group == noise.MACOutputs && g.Points[0].Drop > -0.3 {
			t.Fatalf("MAC outputs at NM=0.5 dropped only %.2f", g.Points[0].Drop)
		}
	}
}

func TestFig10FirstConvLeastResilient(t *testing.T) {
	res, err := runner(t).Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) == 0 {
		t.Fatal("no layer results — were all groups resilient?")
	}
	byLayer := map[string]float64{}
	for _, l := range res.Layers {
		if l.Group == noise.MACOutputs {
			byLayer[l.Layer] = l.ToleratedNM
		}
	}
	// Paper: the first conv layer is the least resilient; Caps3D (the
	// routing conv) is the most resilient. Quick-mode evaluation is
	// coarse (60 samples), so allow one NM grid step (≈2.5×) of slack.
	conv := byLayer["Conv2D"]
	caps3d := byLayer["Caps3D"]
	if 2.6*caps3d < conv {
		t.Fatalf("Caps3D tolerated NM %.3f ≪ Conv2D %.3f — routing layer should be more resilient", caps3d, conv)
	}
	// Conv2D must be among the least-tolerant half of the layers.
	lower := 0
	for _, v := range byLayer {
		if v < conv {
			lower++
		}
	}
	if lower > len(byLayer)/2 {
		t.Fatalf("Conv2D not among the least resilient (NM %.3f, %d layers lower)", conv, lower)
	}
}

func TestFig11PoolsAndHistogram(t *testing.T) {
	res, err := runner(t).Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PoolA) < 1000 || len(res.PoolB) < 1000 {
		t.Fatalf("pools too small: %d / %d", len(res.PoolA), len(res.PoolB))
	}
	if res.Overall.N == 0 {
		t.Fatal("empty overall histogram")
	}
	if len(res.PerLayer) < 10 {
		t.Fatalf("per-layer histograms = %d", len(res.PerLayer))
	}
	if !strings.Contains(res.Render(), "Fig. 11") {
		t.Fatal("render broken")
	}
}

func TestTable4ModeledTracksPower(t *testing.T) {
	res, err := runner(t).Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Accurate component: zero NM under both distributions.
	if res.Rows[0].ModeledNM != 0 || res.Rows[0].RealNM != 0 {
		t.Fatalf("accurate row = %+v", res.Rows[0])
	}
	// Cheapest components must be noisier than the most accurate ones,
	// under both distributions.
	last := res.Rows[len(res.Rows)-1]
	if last.ModeledNM <= res.Rows[1].ModeledNM {
		t.Fatalf("modeled NM ordering broken: %+v vs %+v", last, res.Rows[1])
	}
	if last.RealNM <= 0 {
		t.Fatalf("real NM missing: %+v", last)
	}
}

func TestFig12AllBenchmarksShareTheHeadline(t *testing.T) {
	res, err := runner(t).Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("benchmarks = %d", len(res))
	}
	for _, r := range res {
		tol := map[noise.Group]float64{}
		for _, g := range r.Groups {
			tol[g.Group] = g.ToleratedNM
		}
		if tol[noise.Softmax] < tol[noise.MACOutputs] {
			t.Errorf("%s/%s: softmax (%.3f) less resilient than MAC (%.3f)",
				r.Benchmark.Arch, r.Benchmark.Dataset, tol[noise.Softmax], tol[noise.MACOutputs])
		}
	}
}

func TestDesignProducesViableApproxCapsNet(t *testing.T) {
	res, err := runner(t).Design(Benchmarks[4]) // capsnet/mnist: fastest
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if len(r.Choices) == 0 {
		t.Fatal("no component choices")
	}
	if r.ValidatedAccuracy < r.CleanAccuracy-0.15 {
		t.Fatalf("validated %.3f collapsed vs clean %.3f", r.ValidatedAccuracy, r.CleanAccuracy)
	}
	if r.MulEnergySaving <= 0 {
		t.Fatalf("no energy saving: %g", r.MulEnergySaving)
	}
}

func TestAblationRoutingIterations(t *testing.T) {
	res, err := runner(t).AblationRoutingIterations()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DropByIters) != 3 {
		t.Fatalf("iters measured = %d", len(res.DropByIters))
	}
	for it, d := range res.DropByIters {
		if d < -1 || d > 0.25 {
			t.Fatalf("iter %d: impossible drop %g", it, d)
		}
	}
	// Vote noise at NM=0.1 on the two routing layers must not collapse
	// the network at the paper's 3-iteration setting.
	if res.DropByIters[3] < -0.5 {
		t.Fatalf("3-iteration routing collapsed under vote noise: %g", res.DropByIters[3])
	}
}

func TestAblationNoiseVsLUTAgreement(t *testing.T) {
	res, err := runner(t).AblationNoiseVsLUT()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch row.Component {
		case "mul8u_NGR", "mul8u_DM1":
			// For the mild components ReD-CaNe actually selects, the
			// Gaussian model must track LUT execution within 25 pp.
			if math.Abs(row.LUTAccuracy-row.ModelAccuracy) > 0.25 {
				t.Errorf("%s: LUT %.2f vs model %.2f", row.Component, row.LUTAccuracy, row.ModelAccuracy)
			}
		default:
			// The aggressive components (JV3, QKX) break the Gaussian
			// assumption on skewed real operands (documented model
			// limit); the model must still predict a degradation in
			// the right direction when the LUT run degrades badly.
			if row.LUTAccuracy < res.Clean-0.3 && row.ModelAccuracy > res.Clean-0.005 {
				t.Errorf("%s: LUT collapsed to %.2f but model predicts no drop (%.2f)",
					row.Component, row.LUTAccuracy, row.ModelAccuracy)
			}
		}
	}
}

func TestAblationNoiseAverageBiasHurts(t *testing.T) {
	res, err := runner(t).AblationNoiseAverage()
	if err != nil {
		t.Fatal(err)
	}
	// |NA| = 0.05 must hurt at least as much as NA = 0.
	var at0, atBig float64
	for i, na := range res.NAs {
		if na == 0 {
			at0 = res.Drops[i]
		}
		if na == 0.05 {
			atBig = res.Drops[i]
		}
	}
	if atBig > at0+0.02 {
		t.Fatalf("large NA (%.3f drop) should hurt vs NA=0 (%.3f drop)", atBig, at0)
	}
}

func TestValidateComparesModelAgainstBackend(t *testing.T) {
	res, err := runner(t).Validate(Benchmarks[4], "quant-approx", 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean <= 0.5 {
		t.Fatalf("clean accuracy = %g", res.Clean)
	}
	// Exact 8-bit quantization alone must not collapse the network.
	if res.QuantBaseline < res.Clean-0.2 {
		t.Fatalf("quant-exact baseline %.3f collapsed vs clean %.3f", res.QuantBaseline, res.Clean)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if r0 := res.Rows[0]; r0.Scope != "design" || r0.Name != "all" {
		t.Fatalf("first row = %+v, want whole-design scope", r0)
	}
	layerRows := 0
	for _, row := range res.Rows {
		if row.Predicted < 0 || row.Predicted > 1 || row.Measured < 0 || row.Measured > 1 {
			t.Fatalf("accuracy out of range: %+v", row)
		}
		if row.Scope == "layer" {
			layerRows++
			// Layer rows are single MAC choices — exactly what a multiplier
			// substitution realizes.
			if row.Sites != 1 || row.MACSites != 1 || !row.Realizable || row.Component == "" {
				t.Fatalf("layer row not realizable: %+v", row)
			}
		}
	}
	if layerRows == 0 {
		t.Fatal("no per-layer rows")
	}
	if !strings.Contains(res.Render(), "Error-model validation") {
		t.Fatal("render broken")
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "predicted_acc") || !strings.Contains(b.String(), "design,all") {
		t.Fatalf("csv malformed:\n%s", b.String())
	}
	// A backend typo fails before any training or analysis.
	if _, err := runner(t).Validate(Benchmarks[4], "bogus", 8); err == nil {
		t.Fatal("expected unknown-backend error")
	}
	// Approximate multipliers cannot run above the LUT wordlength.
	if _, err := runner(t).Validate(Benchmarks[4], "quant-approx", 12); err == nil {
		t.Fatal("expected wide-wordlength error")
	}
}

func TestRunnerCachesWeightsOnDisk(t *testing.T) {
	r := runner(t)
	tr1, err := r.Trained(Benchmarks[4])
	if err != nil {
		t.Fatal(err)
	}
	// A fresh runner sharing the cache dir must load, not retrain:
	// verify by checking identical weights.
	r2 := NewRunner(Config{Dir: r.Cfg.Dir, Quick: true, Seed: 42})
	tr2, err := r2.Trained(Benchmarks[4])
	if err != nil {
		t.Fatal(err)
	}
	w1 := tr1.Net.Params()["Conv2D/W"]
	w2 := tr2.Net.Params()["Conv2D/W"]
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatal("cached weights differ from trained weights")
		}
	}
}

func TestRendersNonEmpty(t *testing.T) {
	r := runner(t)
	fig9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{
		fig9.Render(),
	} {
		if len(s) < 50 {
			t.Fatalf("render too short: %q", s)
		}
	}
}

func TestAccelSystemSavingsSmallerThanCompute(t *testing.T) {
	res, err := Accel()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 18 || len(res.Rows) != 4 {
		t.Fatalf("reports=%d rows=%d", len(res.Reports), len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SystemSaving <= 0 || row.SystemSaving >= row.ComputeSaving {
			t.Fatalf("%s: system %.3f vs compute %.3f", row.Component, row.SystemSaving, row.ComputeSaving)
		}
	}
	// NGR's compute-only saving must sit near Fig. 5's XM bar.
	if math.Abs(res.Rows[0].ComputeSaving-0.283) > 0.02 {
		t.Fatalf("NGR compute saving = %g, want ≈0.283", res.Rows[0].ComputeSaving)
	}
	if !strings.Contains(res.Render(), "system saving") {
		t.Fatal("render broken")
	}
}

func TestAblationSelectionStrategyDominance(t *testing.T) {
	res, err := runner(t).AblationSelectionStrategy(Benchmarks[4])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Uniform) != 15 {
		t.Fatalf("uniform designs = %d", len(res.Uniform))
	}
	// The heterogeneous design must not collapse and must save energy.
	if res.ReDCaNe.Accuracy < res.Clean-0.15 || res.ReDCaNe.MulSaving <= 0 {
		t.Fatalf("red-cane point = %+v (clean %.3f)", res.ReDCaNe, res.Clean)
	}
	// Within a 3 pp accuracy tolerance no uniform design should beat it.
	if !res.Dominates(0.03) {
		t.Logf("note: a uniform design matched red-cane this run:\n%s", res.Render())
	}
	if !strings.Contains(res.Render(), "uniform mul8u_QKX") {
		t.Fatal("render missing uniform rows")
	}
}

func TestStabilityAcrossSeeds(t *testing.T) {
	res, err := runner(t).Stability(Benchmarks[4], 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds != 4 {
		t.Fatalf("seeds = %d", res.Seeds)
	}
	// The headline ordering must hold in at least 3 of 4 seeds.
	if res.OrderingHolds < 3 {
		t.Fatalf("routing ≥ conv ordering held in only %d/4 seeds:\n%s",
			res.OrderingHolds, res.Render())
	}
	for _, g := range noise.Groups() {
		if res.MeanTol[g] < 0 || res.StdTol[g] < 0 {
			t.Fatalf("bad stats for %v: %g ± %g", g, res.MeanTol[g], res.StdTol[g])
		}
	}
}

func TestAblationRangeEstimator(t *testing.T) {
	res, err := runner(t).AblationRangeEstimator(Benchmarks[4])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Drops) != 2 {
		t.Fatalf("drops = %v", res.Drops)
	}
	// The robust estimator yields a smaller or equal effective range, so
	// the same NM must hurt no more than the min/max estimator (allowing
	// sampling jitter).
	if res.Drops["p99.9"] < res.Drops["minmax"]-0.05 {
		t.Fatalf("robust ranging hurt more than minmax: %v", res.Drops)
	}
	if !strings.Contains(res.Render(), "minmax") {
		t.Fatal("render broken")
	}
}

package experiments

import (
	"fmt"
	"strings"

	"redcane/internal/caps"
	"redcane/internal/noise"
)

// FaultRow is one (fault kind, severity) accuracy measurement.
type FaultRow struct {
	Kind     string
	Severity float64
	Drop     float64
}

// FaultTypesResult compares the error sources of the paper's Sec. II-C on
// the same trained network: approximation noise (Gaussian), transient
// faults (bit flips) and permanent faults (stuck-at-0/1), all injected at
// the MAC outputs. This extends the paper, which scopes to approximation
// noise only.
type FaultTypesResult struct {
	Benchmark Benchmark
	Clean     float64
	Rows      []FaultRow
}

// AblationFaultTypes runs the comparison on the trained DeepCaps.
func (r *Runner) AblationFaultTypes() (*FaultTypesResult, error) {
	t, err := r.Trained(Benchmarks[0])
	if err != nil {
		return nil, err
	}
	x, y := capEval(t, r.evalCap())
	clean := caps.Accuracy(t.Net, x, y, noise.None{}, 32)
	out := &FaultTypesResult{Benchmark: t.Benchmark, Clean: clean}
	filter := noise.ForGroup(noise.MACOutputs)

	measure := func(kind string, severity float64, inj noise.Injector) {
		acc := caps.Accuracy(t.Net, x, y, inj, 32)
		out.Rows = append(out.Rows, FaultRow{Kind: kind, Severity: severity, Drop: acc - clean})
	}
	for _, nm := range []float64{0.005, 0.02, 0.05} {
		measure("gaussian-nm", nm, noise.NewGaussian(nm, 0, filter, r.Cfg.Seed+61))
	}
	for _, p := range []float64{0.0001, 0.001, 0.01} {
		measure("bitflip", p, noise.NewBitFlip(p, 8, filter, r.Cfg.Seed+62))
	}
	for _, frac := range []float64{0.0001, 0.001, 0.01} {
		measure("stuck-at-0", frac, noise.NewStuckAt(frac, false, filter, r.Cfg.Seed+63))
		measure("stuck-at-1", frac, noise.NewStuckAt(frac, true, filter, r.Cfg.Seed+64))
	}
	return out, nil
}

// Render formats the fault comparison.
func (f *FaultTypesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — error-source comparison at the MAC outputs (%s on %s, clean %.2f%%)\n",
		f.Benchmark.Arch, f.Benchmark.Dataset, 100*f.Clean)
	fmt.Fprintf(&b, "%-12s %10s %12s\n", "source", "severity", "drop [%]")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-12s %10.4f %+12.2f\n", row.Kind, row.Severity, 100*row.Drop)
	}
	return b.String()
}

package models

import (
	"math"
	"testing"

	"redcane/internal/noise"
	"redcane/internal/params"
	"redcane/internal/tensor"
)

func TestDeepCapsGeometryAndLayerInventory(t *testing.T) {
	spec := DeepCaps([]int{3, 16, 16}, 10)
	net, err := BuildInference(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := net.LayerNames()
	// The paper's Fig. 10 inventory: Conv2D, Caps2D1..15, Caps3D, ClassCaps.
	if len(names) != 18 {
		t.Fatalf("layer count = %d (%v), want 18", len(names), names)
	}
	if names[0] != "Conv2D" || names[len(names)-1] != "ClassCaps" {
		t.Fatalf("layer names = %v", names)
	}
	found3D := false
	caps2d := 0
	for _, n := range names {
		if n == "Caps3D" {
			found3D = true
		}
		if len(n) > 6 && n[:6] == "Caps2D" {
			caps2d++
		}
	}
	if !found3D || caps2d != 15 {
		t.Fatalf("inventory: caps2d=%d caps3d=%v (%v)", caps2d, found3D, names)
	}
}

func TestDeepCapsForwardShape(t *testing.T) {
	spec := DeepCaps([]int{3, 16, 16}, 10)
	net, err := BuildInference(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 3, 16, 16).FillUniform(tensor.NewRNG(3), 0, 1)
	out := net.Forward(x, noise.None{})
	if out.Shape[0] != 2 || out.Shape[1] != 10 || out.Shape[2] != 16 {
		t.Fatalf("output shape = %v", out.Shape)
	}
}

func TestCapsNetGeometry(t *testing.T) {
	spec := CapsNet([]int{1, 20, 20}, 10)
	net, err := BuildInference(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	names := net.LayerNames()
	want := []string{"Conv2D", "Primary", "ClassCaps"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	x := tensor.New(1, 1, 20, 20).FillUniform(tensor.NewRNG(5), 0, 1)
	out := net.Forward(x, noise.None{})
	if out.Shape[1] != 10 || out.Shape[2] != 16 {
		t.Fatalf("output shape = %v", out.Shape)
	}
}

func TestTrainerMatchesInferenceAfterWeightTransfer(t *testing.T) {
	// The entire resilience methodology depends on this: weights trained
	// in internal/train must produce identical outputs when loaded into
	// the internal/caps inference network.
	for _, spec := range []Spec{
		CapsNet([]int{1, 20, 20}, 4),
		DeepCaps([]int{3, 16, 16}, 4),
	} {
		trainer, err := BuildTrainer(spec, 10)
		if err != nil {
			t.Fatal(err)
		}
		net, err := BuildInference(spec, 999) // different init on purpose
		if err != nil {
			t.Fatal(err)
		}
		store := params.FromParams(trainer.ParamMap())
		if err := store.LoadInto(net.Params()); err != nil {
			t.Fatalf("%s: transfer: %v", spec.Name, err)
		}
		x := tensor.New(2, spec.InputShape[0], spec.InputShape[1], spec.InputShape[2]).
			FillUniform(tensor.NewRNG(11), 0, 1)
		wantOut := trainer.Forward(x)
		gotOut := net.Forward(x, noise.None{})
		if !wantOut.SameShape(gotOut) {
			t.Fatalf("%s: shapes %v vs %v", spec.Name, wantOut.Shape, gotOut.Shape)
		}
		for i := range wantOut.Data {
			if math.Abs(wantOut.Data[i]-gotOut.Data[i]) > 1e-9 {
				t.Fatalf("%s: output[%d] = %g (inference) vs %g (trainer)",
					spec.Name, i, gotOut.Data[i], wantOut.Data[i])
			}
		}
	}
}

func TestFullDeepCapsOpCountsShape(t *testing.T) {
	// Table I shape: multiplications and additions in the 10⁹ range and
	// within 2× of each other; div/exp/sqrt orders of magnitude rarer.
	spec := FullDeepCaps()
	net, err := BuildInference(spec, 20)
	if err != nil {
		t.Fatal(err)
	}
	ops := net.Ops(1)
	if ops.Mul < 5e8 || ops.Mul > 5e9 {
		t.Fatalf("full DeepCaps mul count = %g, want ~10⁹", ops.Mul)
	}
	ratio := ops.Mul / ops.Add
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("mul/add ratio = %g, want ≈1 (paper: 2.15G/1.91G)", ratio)
	}
	if ops.Div > ops.Mul/50 {
		t.Fatalf("div count %g too large vs mul %g", ops.Div, ops.Mul)
	}
	if ops.Exp > ops.Div || ops.Sqrt > ops.Div {
		t.Fatalf("exp/sqrt (%g/%g) should be rarer than div (%g)", ops.Exp, ops.Sqrt, ops.Div)
	}
}

func TestGeometryErrors(t *testing.T) {
	spec := CapsNet([]int{1, 5, 5}, 10) // too small for 9×9 convs
	if _, err := BuildInference(spec, 1); err == nil {
		t.Fatal("expected geometry error for tiny input")
	}
	bad := Spec{Name: "bad", InputShape: []int{1, 20, 20}, Conv: ConvSpec{Out: 4, K: 3, Stride: 1, Pad: 1}}
	if _, err := BuildInference(bad, 1); err == nil {
		t.Fatal("expected error for spec without cells or primary caps")
	}
	if _, err := BuildTrainer(bad, 1); err == nil {
		t.Fatal("expected trainer error for bad spec")
	}
}

func TestParamNameParity(t *testing.T) {
	spec := DeepCaps([]int{3, 16, 16}, 10)
	trainer, err := BuildTrainer(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildInference(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	tp := trainer.ParamMap()
	np := net.Params()
	if len(tp) != len(np) {
		t.Fatalf("param counts differ: trainer %d vs inference %d", len(tp), len(np))
	}
	for name, w := range np {
		tw, ok := tp[name]
		if !ok {
			t.Fatalf("trainer missing param %q", name)
		}
		if !tw.SameShape(w) {
			t.Fatalf("param %q shapes differ: %v vs %v", name, tw.Shape, w.Shape)
		}
	}
}

func TestDifferentSeedsDifferentWeights(t *testing.T) {
	spec := CapsNet([]int{1, 20, 20}, 10)
	a, _ := BuildInference(spec, 1)
	b, _ := BuildInference(spec, 2)
	wa := a.Params()["Conv2D/W"]
	wb := b.Params()["Conv2D/W"]
	same := true
	for i := range wa.Data {
		if wa.Data[i] != wb.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}

// Package models defines the two CapsNet architectures of the paper's
// evaluation — DeepCaps (Rajasegaran et al., CVPR 2019) and the original
// CapsNet (Sabour et al., NIPS 2017) — as specs that build both the
// inference network (internal/caps) and the training model
// (internal/train) with identical topology, layer names and weight
// layouts, so trained weights transfer directly.
//
// Two spec scales exist: the trainable scale (reduced channel counts for
// pure-Go training on synthetic data) and the paper's full-size DeepCaps
// (used only for the Table I / Fig. 4 / Fig. 5 energy analysis).
package models

import (
	"fmt"

	"redcane/internal/caps"
	"redcane/internal/tensor"
	"redcane/internal/train"
)

// ConvSpec describes the stem convolution.
type ConvSpec struct {
	Out, K, Stride, Pad int
}

// CapsLayerSpec describes one ConvCaps2D layer.
type CapsLayerSpec struct {
	Caps, Dim, K, Stride, Pad int
}

// CellSpec describes one DeepCaps residual cell: three sequential
// ConvCaps2D layers plus a skip branch (ConvCaps2D, or ConvCaps3D with
// dynamic routing when Routing3D is set).
type CellSpec struct {
	L1, L2, L3, Skip CapsLayerSpec
	Routing3D        bool
	RoutingIters     int
}

// ClassCapsSpec describes the final fully-connected capsule layer.
type ClassCapsSpec struct {
	OutCaps, OutDim, RoutingIters int
}

// Spec is a complete CapsNet architecture.
type Spec struct {
	Name       string
	InputShape []int // [C, H, W]
	Conv       ConvSpec
	// Cells is empty for the original CapsNet.
	Cells []CellSpec
	// Primary is the CapsNet PrimaryCaps layer (ignored when Cells is
	// non-empty).
	Primary *CapsLayerSpec
	Class   ClassCapsSpec
}

// DeepCaps returns the trainable-scale DeepCaps spec for the given input
// shape: a conv stem and four residual capsule cells (15 ConvCaps2D
// layers plus one ConvCaps3D with dynamic routing, exactly the layer
// inventory of the paper's Fig. 2/Fig. 10), ending in ClassCaps.
func DeepCaps(inputShape []int, classes int) Spec {
	cell := func(caps, dim, iters int, routing3D bool) CellSpec {
		return CellSpec{
			L1:           CapsLayerSpec{Caps: caps, Dim: dim, K: 3, Stride: 2, Pad: 1},
			L2:           CapsLayerSpec{Caps: caps, Dim: dim, K: 3, Stride: 1, Pad: 1},
			L3:           CapsLayerSpec{Caps: caps, Dim: dim, K: 3, Stride: 1, Pad: 1},
			Skip:         CapsLayerSpec{Caps: caps, Dim: dim, K: 3, Stride: 1, Pad: 1},
			Routing3D:    routing3D,
			RoutingIters: iters,
		}
	}
	return Spec{
		Name:       "deepcaps",
		InputShape: append([]int(nil), inputShape...),
		Conv:       ConvSpec{Out: 32, K: 3, Stride: 1, Pad: 1},
		Cells: []CellSpec{
			cell(8, 4, 0, false),
			cell(8, 8, 0, false),
			cell(8, 8, 0, false),
			cell(8, 8, 3, true),
		},
		Class: ClassCapsSpec{OutCaps: classes, OutDim: 16, RoutingIters: 3},
	}
}

// CapsNet returns the trainable-scale original CapsNet spec: Conv9×9 →
// PrimaryCaps (ConvCaps2D 9×9 stride 2) → ClassCaps with dynamic routing.
func CapsNet(inputShape []int, classes int) Spec {
	return Spec{
		Name:       "capsnet",
		InputShape: append([]int(nil), inputShape...),
		Conv:       ConvSpec{Out: 32, K: 9, Stride: 1, Pad: 0},
		Primary:    &CapsLayerSpec{Caps: 8, Dim: 8, K: 9, Stride: 2, Pad: 0},
		Class:      ClassCapsSpec{OutCaps: classes, OutDim: 16, RoutingIters: 3},
	}
}

// FullDeepCaps returns the paper-scale DeepCaps (32 capsule types, 64×64
// input as used for CIFAR-10 in the DeepCaps paper). It exists for the
// energy analysis only; do not train it.
func FullDeepCaps() Spec {
	cell := func(caps, dim, iters int, routing3D bool) CellSpec {
		return CellSpec{
			L1:           CapsLayerSpec{Caps: caps, Dim: dim, K: 3, Stride: 2, Pad: 1},
			L2:           CapsLayerSpec{Caps: caps, Dim: dim, K: 3, Stride: 1, Pad: 1},
			L3:           CapsLayerSpec{Caps: caps, Dim: dim, K: 3, Stride: 1, Pad: 1},
			Skip:         CapsLayerSpec{Caps: caps, Dim: dim, K: 3, Stride: 1, Pad: 1},
			Routing3D:    routing3D,
			RoutingIters: iters,
		}
	}
	return Spec{
		Name:       "deepcaps-full",
		InputShape: []int{3, 64, 64},
		Conv:       ConvSpec{Out: 128, K: 3, Stride: 1, Pad: 1},
		Cells: []CellSpec{
			cell(32, 4, 0, false),
			cell(32, 8, 0, false),
			cell(32, 8, 0, false),
			cell(32, 8, 3, true),
		},
		Class: ClassCapsSpec{OutCaps: 10, OutDim: 16, RoutingIters: 3},
	}
}

// geometry computes the spatial size after the stem and each cell, and
// the ClassCaps input capsule count/dimension.
func (s Spec) geometry() (inCapsClass, inDimClass int, err error) {
	h, w := s.InputShape[1], s.InputShape[2]
	out := func(h, w, k, stride, pad int) (int, int) {
		return (h+2*pad-k)/stride + 1, (w+2*pad-k)/stride + 1
	}
	h, w = out(h, w, s.Conv.K, s.Conv.Stride, s.Conv.Pad)
	if len(s.Cells) > 0 {
		var lastCaps, lastDim int
		for _, c := range s.Cells {
			h, w = out(h, w, c.L1.K, c.L1.Stride, c.L1.Pad)
			lastCaps, lastDim = c.L3.Caps, c.L3.Dim
		}
		if h < 1 || w < 1 {
			return 0, 0, fmt.Errorf("models: input %v too small for %s", s.InputShape, s.Name)
		}
		return lastCaps * h * w, lastDim, nil
	}
	if s.Primary == nil {
		return 0, 0, fmt.Errorf("models: spec %s has neither cells nor primary caps", s.Name)
	}
	h, w = out(h, w, s.Primary.K, s.Primary.Stride, s.Primary.Pad)
	if h < 1 || w < 1 {
		return 0, 0, fmt.Errorf("models: input %v too small for %s", s.InputShape, s.Name)
	}
	return s.Primary.Caps * h * w, s.Primary.Dim, nil
}

// layerNames follow the paper's Fig. 10 labels: Conv2D, Caps2D1..15,
// Caps3D, ClassCaps (and Primary for the original CapsNet).

// BuildInference constructs the runnable inference network with
// Glorot-initialized weights (load trained weights via internal/params).
func BuildInference(s Spec, seed uint64) (*caps.Network, error) {
	inCaps, inDim, err := s.geometry()
	if err != nil {
		return nil, err
	}
	rngSeed := seed
	nextSeed := func() uint64 { rngSeed++; return rngSeed }

	inCh := s.InputShape[0]
	layers := []caps.Layer{&caps.Conv2D{
		LayerName: "Conv2D",
		W: tensor.New(s.Conv.Out, inCh, s.Conv.K, s.Conv.K).
			FillGlorot(tensor.NewRNG(nextSeed()), inCh*s.Conv.K*s.Conv.K, s.Conv.Out*s.Conv.K*s.Conv.K),
		B:      tensor.New(s.Conv.Out),
		Stride: s.Conv.Stride, Pad: s.Conv.Pad, ReLU: true,
	}}
	ch := s.Conv.Out

	if len(s.Cells) > 0 {
		idx := 1
		for ci, c := range s.Cells {
			mk := func(name string, ls CapsLayerSpec, in int) *caps.ConvCaps2D {
				return &caps.ConvCaps2D{
					LayerName: name, Caps: ls.Caps, Dim: ls.Dim,
					W: tensor.New(ls.Caps*ls.Dim, in, ls.K, ls.K).
						FillGlorot(tensor.NewRNG(nextSeed()), in*ls.K*ls.K, ls.Caps*ls.Dim*ls.K*ls.K),
					B:      tensor.New(ls.Caps * ls.Dim),
					Stride: ls.Stride, Pad: ls.Pad,
				}
			}
			l1 := mk(fmt.Sprintf("Caps2D%d", idx), c.L1, ch)
			mid := c.L1.Caps * c.L1.Dim
			l2 := mk(fmt.Sprintf("Caps2D%d", idx+1), c.L2, mid)
			l3 := mk(fmt.Sprintf("Caps2D%d", idx+2), c.L3, c.L2.Caps*c.L2.Dim)
			var skip caps.Layer
			if c.Routing3D {
				k := c.Skip.K
				skip = &caps.ConvCaps3D{
					LayerName: "Caps3D",
					InCaps:    c.L1.Caps, InDim: c.L1.Dim,
					OutCaps: c.Skip.Caps, OutDim: c.Skip.Dim,
					W: tensor.New(c.L1.Caps, c.Skip.Caps*c.Skip.Dim, c.L1.Dim, k, k).
						FillGlorot(tensor.NewRNG(nextSeed()), c.L1.Dim*k*k, c.Skip.Caps*c.Skip.Dim*k*k),
					Stride: c.Skip.Stride, Pad: c.Skip.Pad,
					RoutingIterations: c.RoutingIters,
				}
				idx += 3
			} else {
				skip = mk(fmt.Sprintf("Caps2D%d", idx+3), c.Skip, mid)
				idx += 4
			}
			layers = append(layers, &caps.CapsCell{
				CellName: fmt.Sprintf("Cell%d", ci+1),
				L1:       l1, L2: l2, L3: l3, Skip: skip,
			})
			ch = c.L3.Caps * c.L3.Dim
		}
	} else {
		p := s.Primary
		layers = append(layers, &caps.ConvCaps2D{
			LayerName: "Primary", Caps: p.Caps, Dim: p.Dim,
			W: tensor.New(p.Caps*p.Dim, ch, p.K, p.K).
				FillGlorot(tensor.NewRNG(nextSeed()), ch*p.K*p.K, p.Caps*p.Dim*p.K*p.K),
			B:      tensor.New(p.Caps * p.Dim),
			Stride: p.Stride, Pad: p.Pad,
		})
	}

	layers = append(layers, &caps.ClassCaps{
		LayerName: "ClassCaps",
		InCaps:    inCaps, InDim: inDim,
		OutCaps: s.Class.OutCaps, OutDim: s.Class.OutDim,
		W: tensor.New(inCaps, s.Class.OutCaps, s.Class.OutDim, inDim).
			FillGlorot(tensor.NewRNG(nextSeed()), inDim, s.Class.OutDim),
		RoutingIterations: s.Class.RoutingIters,
	})

	return &caps.Network{
		NetName:    s.Name,
		InputShape: append([]int(nil), s.InputShape...),
		Layers:     layers,
	}, nil
}

// BuildTrainer constructs the trainable mirror of BuildInference with the
// same layer names and weight layouts.
func BuildTrainer(s Spec, seed uint64) (*train.Model, error) {
	inCaps, inDim, err := s.geometry()
	if err != nil {
		return nil, err
	}
	rngSeed := seed
	nextSeed := func() uint64 { rngSeed++; return rngSeed }

	inCh := s.InputShape[0]
	layers := []train.Layer{
		train.NewConv2D("Conv2D", inCh, s.Conv.Out, s.Conv.K, s.Conv.Stride, s.Conv.Pad, true, nextSeed()),
	}
	ch := s.Conv.Out

	if len(s.Cells) > 0 {
		idx := 1
		for ci, c := range s.Cells {
			l1 := train.NewConvCaps2D(fmt.Sprintf("Caps2D%d", idx), ch, c.L1.Caps, c.L1.Dim, c.L1.K, c.L1.Stride, c.L1.Pad, nextSeed())
			mid := c.L1.Caps * c.L1.Dim
			l2 := train.NewConvCaps2D(fmt.Sprintf("Caps2D%d", idx+1), mid, c.L2.Caps, c.L2.Dim, c.L2.K, c.L2.Stride, c.L2.Pad, nextSeed())
			l3 := train.NewConvCaps2D(fmt.Sprintf("Caps2D%d", idx+2), c.L2.Caps*c.L2.Dim, c.L3.Caps, c.L3.Dim, c.L3.K, c.L3.Stride, c.L3.Pad, nextSeed())
			var skip train.Layer
			if c.Routing3D {
				skip = train.NewConvCaps3D("Caps3D", c.L1.Caps, c.L1.Dim, c.Skip.Caps, c.Skip.Dim, c.Skip.K, c.Skip.Stride, c.Skip.Pad, c.RoutingIters, nextSeed())
				idx += 3
			} else {
				skip = train.NewConvCaps2D(fmt.Sprintf("Caps2D%d", idx+3), mid, c.Skip.Caps, c.Skip.Dim, c.Skip.K, c.Skip.Stride, c.Skip.Pad, nextSeed())
				idx += 4
			}
			layers = append(layers, &train.CapsCell{
				CellName: fmt.Sprintf("Cell%d", ci+1),
				L1:       l1, L2: l2, L3: l3, Skip: skip,
			})
			ch = c.L3.Caps * c.L3.Dim
		}
	} else {
		p := s.Primary
		layers = append(layers, train.NewConvCaps2D("Primary", ch, p.Caps, p.Dim, p.K, p.Stride, p.Pad, nextSeed()))
	}

	layers = append(layers, train.NewClassCaps("ClassCaps", inCaps, inDim, s.Class.OutCaps, s.Class.OutDim, s.Class.RoutingIters, nextSeed()))
	return &train.Model{ModelName: s.Name, Layers: layers}, nil
}

// Package noise implements the ReD-CaNe noise-injection model (Sec. III-C
// of the paper): the effect of running an operation on approximate
// hardware is simulated by adding Gaussian noise to the operation's output
// tensor, scaled by the tensor's dynamic range:
//
//	ΔX = Gauss(shape, NM·R(X)) + NA·R(X)      (Eq. 3)
//	X′ = X + ΔX                               (Eq. 4)
//
// where R(X) = max(X) − min(X), NM is the noise magnitude (std/R) and NA
// the noise average (mean/R) of the approximate component driving that
// operation.
//
// Injection points are identified by a Site: the layer that produced the
// tensor and the operation group it belongs to (Table III).
package noise

import "redcane/internal/tensor"

// Group classifies a CapsNet operation per Table III of the paper.
type Group int

const (
	// MACOutputs marks outputs of matrix multiplications / convolutions.
	MACOutputs Group = iota
	// Activations marks outputs of activation functions (ReLU, squash).
	Activations
	// Softmax marks the k coupling coefficients of dynamic routing.
	Softmax
	// LogitsUpdate marks the update of the b logits in dynamic routing.
	LogitsUpdate
	numGroups
)

// Groups lists all operation groups in Table III order.
func Groups() []Group {
	return []Group{MACOutputs, Activations, Softmax, LogitsUpdate}
}

// String returns the paper's name for the group.
func (g Group) String() string {
	switch g {
	case MACOutputs:
		return "MAC outputs"
	case Activations:
		return "activations"
	case Softmax:
		return "softmax"
	case LogitsUpdate:
		return "logits update"
	default:
		return "unknown"
	}
}

// Description returns the Table III description of the group.
func (g Group) Description() string {
	switch g {
	case MACOutputs:
		return "Outputs of the matrix multiplications"
	case Activations:
		return "Output of the activation functions (RELU or SQUASH)"
	case Softmax:
		return "Results of the softmax (k coefficients in dynamic routing)"
	case LogitsUpdate:
		return "Update of the logits (b coefficients in dynamic routing)"
	default:
		return "unknown"
	}
}

// Site is a single injection point: one operation of one layer.
type Site struct {
	// Layer names the layer, e.g. "Conv2D", "Caps2D7", "Caps3D",
	// "ClassCaps".
	Layer string
	// Group is the operation class of the produced tensor.
	Group Group
}

// Injector perturbs tensors at injection sites during a forward pass.
// Implementations may mutate x in place and must return the tensor to use
// downstream.
type Injector interface {
	Inject(site Site, x *tensor.Tensor) *tensor.Tensor
}

// None is the no-op injector (accurate inference).
type None struct{}

// Inject returns x unchanged.
func (None) Inject(_ Site, x *tensor.Tensor) *tensor.Tensor { return x }

// Split implements Splitter; every stream of a no-op injector is a no-op.
func (None) Split(uint64) Injector { return None{} }

// Splitter is an Injector that can derive independent per-stream
// injectors from a counter. Evaluation engines use it to process batches
// concurrently while staying bit-identical to serial evaluation: batch i
// always runs under Split(i), whose noise depends only on (base seed,
// stream counter, site visit order) — never on goroutine scheduling.
type Splitter interface {
	Injector
	// Split returns an injector whose randomness is a pure function of
	// the receiver's configuration and the stream counter. Distinct
	// streams are statistically independent; equal streams are
	// bit-identical.
	Split(stream uint64) Injector
}

// StreamSeed derives a decorrelated RNG seed from a base seed and a
// sequence of counters (sweep point, trial, batch index, …). It applies
// the splitmix64 finalizer after folding in each counter, so nearby
// counter tuples map to statistically independent seeds — the
// counter-based seeding scheme that makes parallel sweeps deterministic
// regardless of scheduling.
func StreamSeed(base uint64, counters ...uint64) uint64 {
	h := base
	for _, c := range counters {
		h += 0x9e3779b97f4a7c15 // golden-ratio increment separates counters
		h ^= c
		// splitmix64 finalizer.
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Filter selects the sites an injector is active on.
type Filter func(Site) bool

// All activates every site.
func All() Filter { return func(Site) bool { return true } }

// ForGroup activates every site of one operation group (the group-wise
// resilience analysis, methodology Step 2).
func ForGroup(g Group) Filter {
	return func(s Site) bool { return s.Group == g }
}

// ForLayerGroup activates a single (layer, group) pair (the layer-wise
// analysis, methodology Step 4).
func ForLayerGroup(layer string, g Group) Filter {
	return func(s Site) bool { return s.Layer == layer && s.Group == g }
}

// ForSites activates exactly the listed sites.
func ForSites(sites ...Site) Filter {
	set := make(map[Site]bool, len(sites))
	for _, s := range sites {
		set[s] = true
	}
	return func(s Site) bool { return set[s] }
}

// Gaussian implements the paper's noise model on the sites selected by its
// filter. It is deterministic for a fixed seed and a fixed sequence of
// Inject calls; a forward pass visits sites in a fixed order, so repeated
// evaluations with equal seeds produce identical noise. Not safe for
// concurrent use.
type Gaussian struct {
	// NM and NA are the noise magnitude and noise average relative to
	// each tensor's dynamic range.
	NM, NA float64
	// RangeFn computes R(X); nil means the paper's max−min (Eq. 3).
	// Substituting a robust estimator (e.g. a percentile spread) is the
	// range-estimator ablation.
	RangeFn func(*tensor.Tensor) float64
	filter  Filter
	seed    uint64
	rng     interface {
		NormFloat64() float64
	}
	// Visited counts Inject calls per site, exposed for tests and for
	// the methodology's site-enumeration step.
	Visited map[Site]int
}

// NewGaussian builds an injector adding noise with the given NM and NA on
// sites accepted by filter, using a deterministic RNG for the seed.
func NewGaussian(nm, na float64, filter Filter, seed uint64) *Gaussian {
	if filter == nil {
		filter = All()
	}
	return &Gaussian{
		NM:      nm,
		NA:      na,
		filter:  filter,
		seed:    seed,
		rng:     tensor.NewRNG(seed),
		Visited: make(map[Site]int),
	}
}

// Split implements Splitter: the returned injector shares the receiver's
// NM/NA/filter/RangeFn but draws from an RNG seeded by
// StreamSeed(seed, stream), so per-batch noise depends only on the base
// seed and the batch counter.
func (g *Gaussian) Split(stream uint64) Injector {
	c := NewGaussian(g.NM, g.NA, g.filter, StreamSeed(g.seed, stream))
	c.RangeFn = g.RangeFn
	return c
}

// Inject applies Eq. 3–4 in place when the site is selected.
func (g *Gaussian) Inject(site Site, x *tensor.Tensor) *tensor.Tensor {
	g.Visited[site]++
	if !g.filter(site) {
		return x
	}
	if g.NM == 0 && g.NA == 0 {
		return x
	}
	r := 0.0
	if g.RangeFn != nil {
		r = g.RangeFn(x)
	} else {
		r = x.Range()
	}
	std := g.NM * r
	mean := g.NA * r
	for i := range x.Data {
		x.Data[i] += mean + std*g.rng.NormFloat64()
	}
	return x
}

// SiteRecorder is an Injector that only records the sites it sees, in
// visit order, without perturbing anything. The methodology's Step 1
// (group extraction) runs one forward pass with a SiteRecorder to
// enumerate a network's injection points.
type SiteRecorder struct {
	Order []Site
	seen  map[Site]bool
}

// NewSiteRecorder returns an empty recorder.
func NewSiteRecorder() *SiteRecorder {
	return &SiteRecorder{seen: make(map[Site]bool)}
}

// Inject records the site and returns x unchanged.
func (r *SiteRecorder) Inject(site Site, x *tensor.Tensor) *tensor.Tensor {
	if !r.seen[site] {
		r.seen[site] = true
		r.Order = append(r.Order, site)
	}
	return x
}

// ByGroup partitions the recorded sites per operation group, preserving
// visit order within each group.
func (r *SiteRecorder) ByGroup() map[Group][]Site {
	out := make(map[Group][]Site)
	for _, s := range r.Order {
		out[s.Group] = append(out[s.Group], s)
	}
	return out
}

package noise

import (
	"math"
	"testing"

	"redcane/internal/tensor"
)

func TestGroupStringsMatchTableIII(t *testing.T) {
	want := map[Group]string{
		MACOutputs:   "MAC outputs",
		Activations:  "activations",
		Softmax:      "softmax",
		LogitsUpdate: "logits update",
	}
	for g, s := range want {
		if g.String() != s {
			t.Fatalf("%d.String() = %q, want %q", g, g.String(), s)
		}
		if g.Description() == "unknown" {
			t.Fatalf("%v has no description", g)
		}
	}
	if len(Groups()) != 4 {
		t.Fatalf("Groups() has %d entries, Table III has 4", len(Groups()))
	}
	if Group(99).String() != "unknown" {
		t.Fatal("out-of-range group must stringify as unknown")
	}
}

func TestNoneLeavesTensorUntouched(t *testing.T) {
	x := tensor.NewFrom([]float64{1, 2, 3}, 3)
	before := x.Clone()
	None{}.Inject(Site{Layer: "L", Group: MACOutputs}, x)
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			t.Fatal("None must not modify the tensor")
		}
	}
}

func TestGaussianNoiseStatisticsMatchEq3(t *testing.T) {
	// For a tensor with known range R, the injected noise must have
	// std ≈ NM·R and mean ≈ NA·R.
	x := tensor.New(100000)
	x.FillUniform(tensor.NewRNG(1), -2, 2) // R ≈ 4
	before := x.Clone()
	inj := NewGaussian(0.1, 0.05, All(), 7)
	inj.Inject(Site{Layer: "L", Group: MACOutputs}, x)
	delta := tensor.Sub(x, before)
	r := before.Range()
	if math.Abs(delta.Std()-0.1*r) > 0.005*r {
		t.Fatalf("noise std = %g, want %g", delta.Std(), 0.1*r)
	}
	if math.Abs(delta.Mean()-0.05*r) > 0.005*r {
		t.Fatalf("noise mean = %g, want %g", delta.Mean(), 0.05*r)
	}
}

func TestGaussianRespectsFilter(t *testing.T) {
	x := tensor.New(100).Fill(1)
	x.Data[0] = 0 // nonzero range
	inj := NewGaussian(0.5, 0.5, ForGroup(Softmax), 1)
	before := x.Clone()
	inj.Inject(Site{Layer: "Conv2D", Group: MACOutputs}, x)
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			t.Fatal("filtered-out site must not be perturbed")
		}
	}
	inj.Inject(Site{Layer: "Caps3D", Group: Softmax}, x)
	changed := false
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("selected site was not perturbed")
	}
}

func TestForLayerGroupFilter(t *testing.T) {
	f := ForLayerGroup("Caps2D3", Activations)
	if !f(Site{Layer: "Caps2D3", Group: Activations}) {
		t.Fatal("exact match rejected")
	}
	if f(Site{Layer: "Caps2D3", Group: MACOutputs}) {
		t.Fatal("wrong group accepted")
	}
	if f(Site{Layer: "Caps2D4", Group: Activations}) {
		t.Fatal("wrong layer accepted")
	}
}

func TestForSitesFilter(t *testing.T) {
	a := Site{Layer: "A", Group: MACOutputs}
	b := Site{Layer: "B", Group: Softmax}
	f := ForSites(a, b)
	if !f(a) || !f(b) {
		t.Fatal("listed sites rejected")
	}
	if f(Site{Layer: "C", Group: MACOutputs}) {
		t.Fatal("unlisted site accepted")
	}
}

func TestGaussianDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		x := tensor.New(50).FillUniform(tensor.NewRNG(3), 0, 1)
		inj := NewGaussian(0.2, 0, All(), 99)
		inj.Inject(Site{Layer: "L", Group: MACOutputs}, x)
		inj.Inject(Site{Layer: "M", Group: Activations}, x)
		return x.Data
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce identical injected noise")
		}
	}
}

func TestGaussianZeroNMNAIsIdentity(t *testing.T) {
	x := tensor.New(10).FillUniform(tensor.NewRNG(4), -1, 1)
	before := x.Clone()
	NewGaussian(0, 0, All(), 1).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			t.Fatal("NM=NA=0 must be a no-op")
		}
	}
}

func TestGaussianConstantTensorGetsNoNoise(t *testing.T) {
	// R(X)=0 for a constant tensor, so Eq. 3 yields zero noise.
	x := tensor.New(10).Fill(5)
	NewGaussian(0.5, 0.5, All(), 1).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	for _, v := range x.Data {
		if v != 5 {
			t.Fatalf("constant tensor perturbed: %v", x.Data)
		}
	}
}

func TestGaussianVisitedBookkeeping(t *testing.T) {
	inj := NewGaussian(0.1, 0, ForGroup(Softmax), 1)
	s := Site{Layer: "L", Group: MACOutputs}
	x := tensor.New(4)
	inj.Inject(s, x)
	inj.Inject(s, x)
	if inj.Visited[s] != 2 {
		t.Fatalf("Visited = %d, want 2", inj.Visited[s])
	}
}

func TestNilFilterMeansAll(t *testing.T) {
	x := tensor.New(100).FillUniform(tensor.NewRNG(5), 0, 1)
	before := x.Clone()
	NewGaussian(0.3, 0, nil, 2).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	changed := false
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("nil filter must behave as All()")
	}
}

func TestSiteRecorderOrderAndGroups(t *testing.T) {
	r := NewSiteRecorder()
	x := tensor.New(2)
	sites := []Site{
		{Layer: "Conv2D", Group: MACOutputs},
		{Layer: "Conv2D", Group: Activations},
		{Layer: "Caps3D", Group: Softmax},
		{Layer: "Conv2D", Group: MACOutputs}, // duplicate, batch 2
	}
	for _, s := range sites {
		r.Inject(s, x)
	}
	if len(r.Order) != 3 {
		t.Fatalf("recorded %d unique sites, want 3", len(r.Order))
	}
	if r.Order[0].Layer != "Conv2D" || r.Order[2].Group != Softmax {
		t.Fatalf("order = %+v", r.Order)
	}
	byGroup := r.ByGroup()
	if len(byGroup[MACOutputs]) != 1 || len(byGroup[Softmax]) != 1 {
		t.Fatalf("ByGroup = %+v", byGroup)
	}
}

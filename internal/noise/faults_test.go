package noise

import (
	"math"
	"testing"

	"redcane/internal/tensor"
)

func TestBitFlipProbabilityZeroIsIdentity(t *testing.T) {
	x := tensor.New(100).FillUniform(tensor.NewRNG(1), 0, 1)
	before := x.Clone()
	NewBitFlip(0, 8, All(), 2).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			t.Fatal("zero-probability bit flips must not change anything")
		}
	}
}

func TestBitFlipRateMatchesProbability(t *testing.T) {
	x := tensor.New(100000).FillUniform(tensor.NewRNG(3), 0, 1)
	before := x.Clone()
	NewBitFlip(0.1, 8, All(), 4).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	changed := 0
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			changed++
		}
	}
	rate := float64(changed) / float64(len(x.Data))
	// Some flips are invisible (code unchanged after re-quantization is
	// impossible here since we flip a bit, but values can collide at the
	// clamp); allow a generous band around 10 %.
	if rate < 0.07 || rate > 0.12 {
		t.Fatalf("flip rate = %g, want ≈0.1", rate)
	}
}

func TestBitFlipValuesStayRepresentable(t *testing.T) {
	x := tensor.New(10000).FillUniform(tensor.NewRNG(5), -2, 2)
	lo, hi := x.MinMax()
	NewBitFlip(1.0, 8, All(), 6).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	nlo, nhi := x.MinMax()
	// A flipped 8-bit code stays within one step of the original range.
	step := (hi - lo) / 255
	if nlo < lo-step || nhi > hi+step {
		t.Fatalf("flipped values escape range: [%g, %g] vs [%g, %g]", nlo, nhi, lo, hi)
	}
}

func TestBitFlipRespectsFilter(t *testing.T) {
	x := tensor.New(100).FillUniform(tensor.NewRNG(7), 0, 1)
	before := x.Clone()
	NewBitFlip(1, 8, ForGroup(Softmax), 8).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			t.Fatal("filtered site must be untouched")
		}
	}
}

func TestStuckAtZeroPinsToMin(t *testing.T) {
	x := tensor.New(10000).FillUniform(tensor.NewRNG(9), -1, 3)
	lo, _ := x.MinMax()
	NewStuckAt(0.2, false, All(), 10).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	stuck := 0
	for _, v := range x.Data {
		if v == lo {
			stuck++
		}
	}
	if rate := float64(stuck) / float64(len(x.Data)); rate < 0.15 || rate > 0.25 {
		t.Fatalf("stuck rate = %g, want ≈0.2", rate)
	}
}

func TestStuckAtOnePinsToMax(t *testing.T) {
	x := tensor.New(1000).FillUniform(tensor.NewRNG(11), 0, 1)
	_, hi := x.MinMax()
	NewStuckAt(0.5, true, All(), 12).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	found := false
	for _, v := range x.Data {
		if v == hi {
			found = true
		}
	}
	if !found {
		t.Fatal("no elements stuck at max")
	}
}

func TestStuckAtDeterministicPerSite(t *testing.T) {
	// Same site → same fault positions across calls (permanent fault).
	mk := func() []float64 {
		x := tensor.New(200).FillUniform(tensor.NewRNG(13), 0, 1)
		NewStuckAt(0.3, false, All(), 14).Inject(Site{Layer: "A", Group: MACOutputs}, x)
		return x.Data
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("permanent faults must hit identical positions per site")
		}
	}
	// Different site → different positions.
	x := tensor.New(200).FillUniform(tensor.NewRNG(13), 0, 1)
	NewStuckAt(0.3, false, All(), 14).Inject(Site{Layer: "B", Group: MACOutputs}, x)
	same := true
	for i := range a {
		if a[i] != x.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different sites should have different fault maps")
	}
}

func TestFaultInjectorsConstantTensor(t *testing.T) {
	x := tensor.New(10).Fill(2)
	NewBitFlip(1, 8, All(), 15).Inject(Site{Layer: "L", Group: MACOutputs}, x)
	for _, v := range x.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN from constant-tensor bit flip")
		}
	}
}

func TestFaultConstructorDefaults(t *testing.T) {
	// nil filter → all sites; zero bits → 8.
	bf := NewBitFlip(1, 0, nil, 1)
	if bf.Bits != 8 {
		t.Fatalf("default bits = %d", bf.Bits)
	}
	x := tensor.New(64).FillUniform(tensor.NewRNG(20), 0, 1)
	before := x.Clone()
	bf.Inject(Site{Layer: "L", Group: Activations}, x)
	changed := false
	for i := range x.Data {
		if x.Data[i] != before.Data[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("nil filter must mean all sites")
	}

	sa := NewStuckAt(0.5, false, nil, 2)
	y := tensor.New(64).FillUniform(tensor.NewRNG(21), 0, 1)
	beforeY := y.Clone()
	sa.Inject(Site{Layer: "L", Group: Activations}, y)
	changed = false
	for i := range y.Data {
		if y.Data[i] != beforeY.Data[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("stuck-at with nil filter must apply")
	}
	// Zero fraction: no-op.
	z := tensor.New(8).Fill(1)
	z.Data[0] = 0
	NewStuckAt(0, false, nil, 3).Inject(Site{Layer: "L", Group: Activations}, z)
	if z.Data[1] != 1 {
		t.Fatal("zero-fraction stuck-at modified data")
	}
}

func TestPerSiteInjectorInNoisePackage(t *testing.T) {
	inj := NewPerSite(map[Site]Params{
		{Layer: "A", Group: MACOutputs}: {NM: 0.2, NA: 0.1},
	}, 5)
	x := tensor.New(10000).FillUniform(tensor.NewRNG(6), 0, 1)
	before := x.Clone()
	inj.Inject(Site{Layer: "A", Group: MACOutputs}, x)
	delta := tensor.Sub(x, before)
	r := before.Range()
	if m := delta.Mean(); m < 0.05*r || m > 0.15*r {
		t.Fatalf("per-site NA not applied: mean delta %g", m)
	}
	if s := delta.Std(); s < 0.15*r || s > 0.25*r {
		t.Fatalf("per-site NM not applied: std delta %g", s)
	}
	// Zero-params entry behaves as accurate.
	inj2 := NewPerSite(map[Site]Params{{Layer: "B", Group: Softmax}: {}}, 5)
	y := tensor.New(5).Fill(2)
	y.Data[0] = 0
	beforeY := y.Clone()
	inj2.Inject(Site{Layer: "B", Group: Softmax}, y)
	for i := range y.Data {
		if y.Data[i] != beforeY.Data[i] {
			t.Fatal("zero params must be a no-op")
		}
	}
}

package noise

import (
	"strings"
	"testing"

	"redcane/internal/tensor"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	// The zero value is the Gaussian model: normalizing it must not
	// invent a bit width or change the kind's meaning.
	n, err := Spec{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindGaussian || n.Bits != 0 {
		t.Fatalf("zero spec normalized to %+v", n)
	}
	if !(Spec{}).IsGaussian() || !(Spec{Kind: "GAUSSIAN"}).IsGaussian() {
		t.Fatal("gaussian specs not recognized")
	}

	// Kinds are case- and whitespace-insensitive; bit-flip defaults its
	// word length.
	n, err = Spec{Kind: " Bit-Flip "}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindBitFlip || n.Bits != 8 {
		t.Fatalf("bit-flip normalized to %+v", n)
	}
}

func TestSpecNormalizeRejections(t *testing.T) {
	// Unknown kinds error naming every valid kind — the user-facing 400.
	_, err := Spec{Kind: "cosmic-ray"}.Normalize()
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, k := range Kinds() {
		if !strings.Contains(err.Error(), k) {
			t.Fatalf("error %q does not list kind %q", err, k)
		}
	}
	if _, err := (Spec{Kind: KindBitFlip, Bits: 17}).Normalize(); err == nil {
		t.Fatal("17-bit flips accepted")
	}
	if _, err := (Spec{Kind: KindStuckAt0, Bits: 4}).Normalize(); err == nil {
		t.Fatal("bits accepted on a stuck-at spec")
	}
}

func TestSpecStringAndSeverityLabel(t *testing.T) {
	cases := []struct {
		spec  Spec
		str   string
		label string
	}{
		{Spec{}, "gaussian", "NM"},
		{Spec{Kind: KindBitFlip}, "bit-flip/8", "P(flip)"},
		{Spec{Kind: KindBitFlip, Bits: 4}, "bit-flip/4", "P(flip)"},
		{Spec{Kind: KindStuckAt0}, "stuck-at-0", "fraction"},
		{Spec{Kind: KindStuckAt1}, "stuck-at-1", "fraction"},
	}
	for _, c := range cases {
		if got := c.spec.String(); got != c.str {
			t.Errorf("%+v.String() = %q, want %q", c.spec, got, c.str)
		}
		if got := c.spec.SeverityLabel(); got != c.label {
			t.Errorf("%+v.SeverityLabel() = %q, want %q", c.spec, got, c.label)
		}
	}
}

func TestSpecInjectorDispatch(t *testing.T) {
	if _, ok := (Spec{}).Injector(0.1, 0.01, nil, 1).(*Gaussian); !ok {
		t.Fatal("gaussian spec did not build a Gaussian injector")
	}
	bf, ok := Spec{Kind: KindBitFlip, Bits: 4}.Injector(0.1, 0, nil, 1).(*BitFlip)
	if !ok || bf.Prob != 0.1 || bf.Bits != 4 {
		t.Fatalf("bit-flip spec built %#v", bf)
	}
	s0, ok := Spec{Kind: KindStuckAt0}.Injector(0.2, 0, nil, 1).(*StuckAt)
	if !ok || s0.Fraction != 0.2 || s0.One {
		t.Fatalf("stuck-at-0 spec built %#v", s0)
	}
	s1, ok := Spec{Kind: KindStuckAt1}.Injector(0.2, 0, nil, 1).(*StuckAt)
	if !ok || !s1.One {
		t.Fatalf("stuck-at-1 spec built %#v", s1)
	}
}

// injectOnce applies inj's stream-split form to a fixed tensor and
// returns the perturbed data.
func injectOnce(inj Injector, stream uint64) []float64 {
	x := tensor.New(64).FillUniform(tensor.NewRNG(9), -1, 1)
	split := inj
	if sp, ok := inj.(Splitter); ok {
		split = sp.Split(stream)
	}
	return split.Inject(Site{Layer: "L", Group: MACOutputs}, x).Data
}

func TestBitFlipSplitIsCounterSeeded(t *testing.T) {
	// The engine invariant behind worker-count independence: Split(i) is
	// a pure function of (seed, i), so re-splitting reproduces the stream
	// bit-for-bit, and distinct streams draw distinct faults.
	inj := NewBitFlip(0.5, 8, nil, 42)
	a := injectOnce(inj, 3)
	b := injectOnce(NewBitFlip(0.5, 8, nil, 42), 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream 3 not reproducible at %d: %g vs %g", i, a[i], b[i])
		}
	}
	c := injectOnce(NewBitFlip(0.5, 8, nil, 42), 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("streams 3 and 4 drew identical faults")
	}
}

func TestStuckAtSplitIsPermanent(t *testing.T) {
	// Permanent faults model defective cells: every stream must see the
	// same stuck elements, so Split returns the receiver.
	inj := NewStuckAt(0.3, true, nil, 42)
	if inj.Split(1) != Injector(inj) || inj.Split(2) != Injector(inj) {
		t.Fatal("StuckAt.Split did not return the receiver")
	}
	a := injectOnce(inj, 1)
	b := injectOnce(inj, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stuck cells differ across streams at %d", i)
		}
	}
}

package noise

import (
	"testing"

	"redcane/internal/tensor"
)

func TestStreamSeedDeterministicAndDistinct(t *testing.T) {
	if StreamSeed(5, 1, 2, 3) != StreamSeed(5, 1, 2, 3) {
		t.Fatal("StreamSeed not deterministic")
	}
	seen := map[uint64]bool{}
	for pi := uint64(0); pi < 10; pi++ {
		for trial := uint64(0); trial < 4; trial++ {
			for batch := uint64(0); batch < 8; batch++ {
				s := StreamSeed(42, pi, trial, batch)
				if seen[s] {
					t.Fatalf("collision at (%d,%d,%d)", pi, trial, batch)
				}
				seen[s] = true
			}
		}
	}
	// Counter position matters: (1,2) and (2,1) must differ.
	if StreamSeed(0, 1, 2) == StreamSeed(0, 2, 1) {
		t.Fatal("StreamSeed ignores counter order")
	}
}

func TestGaussianSplitDeterministic(t *testing.T) {
	base := NewGaussian(0.2, 0.1, ForGroup(MACOutputs), 7)
	site := Site{Layer: "L", Group: MACOutputs}
	run := func(inj Injector) []float64 {
		x := tensor.New(64).FillUniform(tensor.NewRNG(1), 0, 1)
		return inj.Inject(site, x).Data
	}
	a := run(base.Split(3))
	b := run(base.Split(3))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("equal streams not bit-identical")
		}
	}
	c := run(base.Split(4))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct streams produced identical noise")
	}
}

func TestGaussianSplitPreservesConfig(t *testing.T) {
	base := NewGaussian(0.2, 0, ForGroup(Softmax), 7)
	base.RangeFn = func(x *tensor.Tensor) float64 { return 1 }
	child := base.Split(0).(*Gaussian)
	if child.NM != base.NM || child.NA != base.NA || child.RangeFn == nil {
		t.Fatalf("Split lost configuration: %+v", child)
	}
	// The filter must carry over: a MAC site stays untouched.
	x := tensor.New(8).Fill(1)
	child.Inject(Site{Layer: "L", Group: MACOutputs}, x)
	for _, v := range x.Data {
		if v != 1 {
			t.Fatal("Split child injected on a filtered-out site")
		}
	}
}

func TestNoneAndPerSiteAreSplitters(t *testing.T) {
	var _ Splitter = None{}
	var _ Splitter = NewPerSite(nil, 1)
	ps := NewPerSite(map[Site]Params{{Layer: "A", Group: MACOutputs}: {NM: 0.5}}, 9)
	site := Site{Layer: "A", Group: MACOutputs}
	x1 := ps.Split(2).Inject(site, tensor.New(16).Fill(1))
	x2 := ps.Split(2).Inject(site, tensor.New(16).Fill(1))
	for i := range x1.Data {
		if x1.Data[i] != x2.Data[i] {
			t.Fatal("PerSite equal streams differ")
		}
	}
}

package noise

import "redcane/internal/tensor"

// Params is a per-site noise configuration.
type Params struct {
	NM, NA float64
}

// PerSite injects site-specific Gaussian noise: every site carries the
// NM/NA of the approximate component selected for it by the ReD-CaNe
// methodology's Step 6, so a full approximate-CapsNet design can be
// validated in one forward pass. Deterministic for a fixed seed and
// injection order; not safe for concurrent use.
type PerSite struct {
	params map[Site]Params
	seed   uint64
	rng    interface{ NormFloat64() float64 }
}

// NewPerSite builds the injector; sites absent from params are accurate.
func NewPerSite(params map[Site]Params, seed uint64) *PerSite {
	return &PerSite{params: params, seed: seed, rng: tensor.NewRNG(seed)}
}

// Split implements Splitter: the returned injector shares the site table
// but draws from a counter-derived RNG stream, enabling deterministic
// batch-parallel validation of full approximate designs.
func (p *PerSite) Split(stream uint64) Injector {
	return NewPerSite(p.params, StreamSeed(p.seed, stream))
}

// Inject applies the site's configured noise in place.
func (p *PerSite) Inject(site Site, x *tensor.Tensor) *tensor.Tensor {
	cfg, ok := p.params[site]
	if !ok || (cfg.NM == 0 && cfg.NA == 0) {
		return x
	}
	r := x.Range()
	std := cfg.NM * r
	mean := cfg.NA * r
	for i := range x.Data {
		x.Data[i] += mean + std*p.rng.NormFloat64()
	}
	return x
}

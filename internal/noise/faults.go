package noise

import (
	"math/rand/v2"

	"redcane/internal/tensor"
)

// This file extends the injection framework beyond the paper's
// approximation-noise model to the other error sources its Sec. II-C
// enumerates: transient faults (bit flips from particle strikes) and
// permanent faults (stuck-at-zero / stuck-at-one). Both act on the
// tensor's 8-bit fixed-point representation, mirroring how such faults
// manifest in an accelerator datapath, and plug into the same Site/Filter
// machinery as the Gaussian injector.

// BitFlip injects transient faults: each element independently suffers a
// random single-bit flip in its b-bit code with probability Prob.
// Deterministic per seed; not safe for concurrent use.
type BitFlip struct {
	// Prob is the per-element flip probability.
	Prob float64
	// Bits is the word length (default 8 when zero).
	Bits   uint
	filter Filter
	seed   uint64
	rng    *rand.Rand
}

// NewBitFlip builds a transient-fault injector on the filtered sites.
func NewBitFlip(prob float64, bits uint, filter Filter, seed uint64) *BitFlip {
	if filter == nil {
		filter = All()
	}
	if bits == 0 {
		bits = 8
	}
	return &BitFlip{Prob: prob, Bits: bits, filter: filter, seed: seed, rng: tensor.NewRNG(seed)}
}

// Split implements Splitter: transient faults are independent across
// batches, so stream i draws from an RNG seeded by StreamSeed(seed, i) —
// the same counter scheme as the Gaussian injector, making parallel
// evaluation bit-identical to serial for any worker count.
func (f *BitFlip) Split(stream uint64) Injector {
	return NewBitFlip(f.Prob, f.Bits, f.filter, StreamSeed(f.seed, stream))
}

// Inject implements Injector.
func (f *BitFlip) Inject(site Site, x *tensor.Tensor) *tensor.Tensor {
	if !f.filter(site) || f.Prob <= 0 {
		return x
	}
	lo, hi := x.MinMax()
	if hi <= lo {
		return x
	}
	levels := float64(uint32(1)<<f.Bits - 1)
	step := (hi - lo) / levels
	for i, v := range x.Data {
		if f.rng.Float64() >= f.Prob {
			continue
		}
		code := uint32((v - lo) / step)
		if code > uint32(levels) {
			code = uint32(levels)
		}
		code ^= 1 << uint(f.rng.IntN(int(f.Bits)))
		x.Data[i] = lo + float64(code)*step
	}
	return x
}

// StuckAt injects permanent faults: a fixed fraction of each tensor's
// elements (chosen deterministically per site, so the same "hardware
// cells" fail on every inference) reads back as the minimum
// (stuck-at-zero) or maximum (stuck-at-one) representable value.
type StuckAt struct {
	// Fraction of elements stuck.
	Fraction float64
	// One selects stuck-at-one (max code) instead of stuck-at-zero.
	One    bool
	filter Filter
	seed   uint64
}

// NewStuckAt builds a permanent-fault injector.
func NewStuckAt(fraction float64, one bool, filter Filter, seed uint64) *StuckAt {
	if filter == nil {
		filter = All()
	}
	return &StuckAt{Fraction: fraction, One: one, filter: filter, seed: seed}
}

// Split implements Splitter by returning the receiver: permanent faults
// model defective cells at fixed addresses, so every batch — every
// stream — must see the same stuck elements. Inject derives its RNG per
// call from (seed, site) alone, so the shared receiver is safe for
// concurrent use.
func (f *StuckAt) Split(uint64) Injector { return f }

// Inject implements Injector. Fault positions depend only on (site, seed),
// not on call order, modeling defective cells at fixed addresses.
func (f *StuckAt) Inject(site Site, x *tensor.Tensor) *tensor.Tensor {
	if !f.filter(site) || f.Fraction <= 0 {
		return x
	}
	lo, hi := x.MinMax()
	stuck := lo
	if f.One {
		stuck = hi
	}
	rng := tensor.NewRNG(f.seed ^ siteHash(site))
	for i := range x.Data {
		if rng.Float64() < f.Fraction {
			x.Data[i] = stuck
		}
	}
	return x
}

// siteHash folds a site into a 64-bit seed component (FNV-1a).
func siteHash(s Site) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(s.Layer) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= uint64(s.Group)
	h *= 1099511628211
	return h
}

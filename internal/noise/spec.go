package noise

import (
	"fmt"
	"strings"
)

// This file promotes the injector kind to a first-class sweep dimension.
// A Spec names which error source a sweep injects — the paper's Gaussian
// approximation-noise model or one of the Sec. II-C fault models — so the
// same severity grid, counter-seeding scheme, checkpoint fingerprints and
// fleet windows drive approximation-noise and fault campaigns uniformly.

// Injector kind names accepted by Spec.
const (
	KindGaussian = "gaussian"   // the paper's Eq. 3–4 noise model
	KindBitFlip  = "bit-flip"   // transient faults: random single-bit flips
	KindStuckAt0 = "stuck-at-0" // permanent faults: cells stuck at the min code
	KindStuckAt1 = "stuck-at-1" // permanent faults: cells stuck at the max code
)

// Kinds lists the accepted injector kinds.
func Kinds() []string {
	return []string{KindGaussian, KindBitFlip, KindStuckAt0, KindStuckAt1}
}

// Spec selects an injector kind for a sweep. The zero value is the
// Gaussian noise model, which keeps every pre-existing option set,
// checkpoint fingerprint and wire form meaning exactly what it meant
// before the kind became a dimension.
type Spec struct {
	// Kind names the injector: gaussian (default when empty), bit-flip,
	// stuck-at-0 or stuck-at-1.
	Kind string `json:"kind,omitempty"`
	// Bits is the word length bit flips act on (bit-flip only; default 8).
	Bits uint `json:"bits,omitempty"`
}

// IsGaussian reports whether the spec selects the default Gaussian model.
func (s Spec) IsGaussian() bool {
	k := strings.ToLower(strings.TrimSpace(s.Kind))
	return k == "" || k == KindGaussian
}

// Normalize canonicalizes the spec (lowercased kind, bit-flip word length
// defaulted) and rejects unknown kinds and out-of-range word lengths.
// Errors are user errors: they name the valid kinds.
func (s Spec) Normalize() (Spec, error) {
	s.Kind = strings.ToLower(strings.TrimSpace(s.Kind))
	if s.Kind == "" {
		s.Kind = KindGaussian
	}
	known := false
	for _, k := range Kinds() {
		if s.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return Spec{}, fmt.Errorf("unknown injector kind %q (valid: %s)",
			s.Kind, strings.Join(Kinds(), ", "))
	}
	if s.Kind != KindBitFlip {
		if s.Bits != 0 {
			return Spec{}, fmt.Errorf("bits applies only to bit-flip injectors, not %q", s.Kind)
		}
		return s, nil
	}
	if s.Bits == 0 {
		s.Bits = 8
	}
	if s.Bits > 16 {
		return Spec{}, fmt.Errorf("bit-flip bits = %d out of range (1..16)", s.Bits)
	}
	return s, nil
}

// String renders the canonical kind, with the word length for bit flips
// ("bit-flip/8"). Used in fingerprints and report headers.
func (s Spec) String() string {
	n, err := s.Normalize()
	if err != nil {
		return s.Kind
	}
	if n.Kind == KindBitFlip {
		return fmt.Sprintf("%s/%d", n.Kind, n.Bits)
	}
	return n.Kind
}

// SeverityLabel names what the sweep grid's severity axis means for this
// kind: the Gaussian noise magnitude, the per-element flip probability,
// or the stuck-cell fraction.
func (s Spec) SeverityLabel() string {
	n, err := s.Normalize()
	if err != nil {
		return "severity"
	}
	switch n.Kind {
	case KindBitFlip:
		return "P(flip)"
	case KindStuckAt0, KindStuckAt1:
		return "fraction"
	default:
		return "NM"
	}
}

// Injector builds the kind's injector at one severity on the filtered
// sites. severity is the grid value: NM for gaussian, the per-element
// flip probability for bit-flip, the stuck fraction for stuck-at. na
// applies only to the Gaussian model and is ignored by the fault kinds.
// An unknown kind falls back to the Gaussian model so misconfigured
// callers fail loudly in validation, not silently here.
func (s Spec) Injector(severity, na float64, filter Filter, seed uint64) Injector {
	n, err := s.Normalize()
	if err != nil {
		n = Spec{Kind: KindGaussian}
	}
	switch n.Kind {
	case KindBitFlip:
		return NewBitFlip(severity, n.Bits, filter, seed)
	case KindStuckAt0:
		return NewStuckAt(severity, false, filter, seed)
	case KindStuckAt1:
		return NewStuckAt(severity, true, filter, seed)
	default:
		return NewGaussian(severity, na, filter, seed)
	}
}

// Package plot renders small ASCII line charts for the resilience sweep
// figures (Fig. 9/10/12): multiple named series over a shared x-grid,
// drawn into a fixed-size character canvas. Pure text, suitable for
// terminals and EXPERIMENTS.md.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a text line chart over a shared categorical x-axis.
type Chart struct {
	Title  string
	XLabel string
	// XTicks are the x-axis labels (one per point).
	XTicks []string
	Series []Series
	// Height is the plot body height in rows (default 12).
	Height int
	// Width is the plot body width in columns (default 4 per point).
	Width int
}

// markers assigns one rune per series, cycling when exhausted.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *Chart) Render() string {
	if len(c.Series) == 0 || len(c.Series[0].Values) == 0 {
		return c.Title + "\n(no data)\n"
	}
	h := c.Height
	if h <= 0 {
		h = 12
	}
	n := len(c.Series[0].Values)
	w := c.Width
	if w <= 0 {
		w = 4 * n
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", w))
	}
	col := func(i int) int {
		if n == 1 {
			return 0
		}
		return i * (w - 1) / (n - 1)
	}
	row := func(v float64) int {
		r := int(math.Round((hi - v) / (hi - lo) * float64(h-1)))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}

	for si, s := range c.Series {
		m := markers[si%len(markers)]
		prevR, prevC := -1, -1
		for i, v := range s.Values {
			r, cc := row(v), col(i)
			// Sparse vertical interpolation between consecutive points.
			if prevC >= 0 {
				steps := cc - prevC
				for step := 1; step < steps; step++ {
					ir := prevR + (r-prevR)*step/steps
					ic := prevC + step
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			grid[r][cc] = m
			prevR, prevC = r, cc
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, line := range grid {
		y := hi - (hi-lo)*float64(i)/float64(h-1)
		fmt.Fprintf(&b, "%9.2f |%s|\n", y, string(line))
	}
	fmt.Fprintf(&b, "%9s +%s+\n", "", strings.Repeat("-", w))
	// X tick line: place tick labels at their columns (best effort).
	if len(c.XTicks) == n {
		tick := []rune(strings.Repeat(" ", w+12))
		for i, t := range c.XTicks {
			start := col(i) + 11
			for j, r := range t {
				if start+j < len(tick) {
					tick[start+j] = r
				}
			}
		}
		b.WriteString(strings.TrimRight(string(tick), " ") + "\n")
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%9s  x: %s\n", "", c.XLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%9s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

package plot

import (
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "NM",
		XTicks: []string{"0.5", "0.1", "0"},
		Series: []Series{
			{Name: "a", Values: []float64{-80, -10, 0}},
			{Name: "b", Values: []float64{-5, -1, 0}},
		},
	}
	out := c.Render()
	for _, want := range []string{"test chart", "* a", "o b", "x: NM", "0.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The worst value of series a must appear at the bottom row region.
	lines := strings.Split(out, "\n")
	var bottomPlotLine string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			bottomPlotLine = l
		}
	}
	if !strings.Contains(bottomPlotLine, "*") {
		t.Fatalf("series a minimum not at chart bottom:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if !strings.Contains(c.Render(), "(no data)") {
		t.Fatal("empty chart should say so")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "flat", Values: []float64{1, 1, 1}}}}
	out := c.Render()
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("constant series render broken:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "p", Values: []float64{3}}}, XTicks: []string{"x"}}
	if out := c.Render(); !strings.Contains(out, "*") {
		t.Fatalf("single point missing:\n%s", out)
	}
}

func TestManySeriesCycleMarkers(t *testing.T) {
	var ss []Series
	for i := 0; i < 10; i++ {
		ss = append(ss, Series{Name: "s", Values: []float64{float64(i), float64(-i)}})
	}
	c := &Chart{Series: ss}
	if out := c.Render(); !strings.Contains(out, "@") {
		t.Fatalf("marker cycling broken:\n%s", out)
	}
}

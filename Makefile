GO ?= go

.PHONY: build test race vet bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the kernel + sweep-engine benchmarks and writes BENCH_1.json
# (ns/op per benchmark plus engine-vs-naive sweep speedups).
bench:
	sh scripts/bench.sh BENCH_1.json

clean:
	rm -rf .redcane-cache

GO ?= go

.PHONY: build test race vet lint bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint = vet plus staticcheck when installed (CI installs it; locally it
# is optional and skipped with a note).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# bench runs the kernel + sweep-engine benchmarks and writes BENCH_1.json
# (ns/op per benchmark plus engine-vs-naive sweep speedups).
bench:
	sh scripts/bench.sh BENCH_1.json

clean:
	rm -rf .redcane-cache

#!/bin/sh
# Fault-campaign smoke test: a bit-flip fault sweep run through the CLI
# and through the HTTP job service must produce byte-identical CSV and
# text artifacts — proving the injector spec survives the JobSpec wire
# format and the fingerprint keeps fault campaigns apart from Gaussian
# sweeps.
#
#   scripts/fault_smoke.sh [workdir]
#
# Needs curl and jq (both present on the CI runners).
set -eu

work=${1:-$(mktemp -d)}
bin="$work/redcane"
clidir="$work/cli-cache"
srvdir="$work/srv-cache"
addr=127.0.0.1:18323
base="http://$addr"
mkdir -p "$clidir" "$srvdir"

go build -o "$bin" ./cmd/redcane

common="-quick -seed 42 -log-level info"

echo "== CLI reference fault sweep =="
"$bin" $common -dir "$clidir" -csv "$work/cli-csv" experiment faults-capsnet-mnist-like \
    > "$work/cli.txt"

start_server() {
    "$bin" $common -dir "$srvdir" serve -addr "$addr" &
    pid=$!
    i=0
    while ! curl -sf "$base/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ] || ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: server never became healthy"
            exit 1
        fi
        sleep 0.1
    done
}

wait_terminal() { # $1 = job id; prints the terminal state
    i=0
    while [ "$i" -lt 3000 ]; do
        state=$(curl -sf "$base/v1/jobs/$1" | jq -r .state)
        case "$state" in
        done|failed|cancelled) echo "$state"; return 0 ;;
        esac
        sleep 0.1
        i=$((i + 1))
    done
    echo "timeout"
}

echo "== server run of the same fault sweep =="
start_server

# An unknown injector kind must bounce with a 400 that names the valid
# kinds, before any work is queued.
code=$(curl -s -o "$work/badkind.json" -w '%{http_code}' -X POST "$base/v1/jobs" \
    -d '{"kind":"fault-sweep","fault":"cosmic-ray"}')
if [ "$code" != "400" ] || ! grep -q 'bit-flip' "$work/badkind.json"; then
    echo "FAIL: unknown injector kind returned HTTP $code"
    cat "$work/badkind.json"
    exit 1
fi
echo "PASS: unknown injector kind rejected with the valid-kind list"

job=$(curl -sf -X POST "$base/v1/jobs" \
    -d '{"kind":"fault-sweep","fault":"bit-flip","benchmark":"capsnet-mnist-like"}' | jq -r .id)
echo "submitted job $job"
state=$(wait_terminal "$job")
if [ "$state" != "done" ]; then
    echo "FAIL: job $job ended as $state"
    curl -sf "$base/v1/jobs/$job" || true
    exit 1
fi

curl -sf "$base/v1/jobs/$job/result?format=csv" > "$work/http.csv"
curl -sf "$base/v1/jobs/$job/result?format=text" > "$work/http.txt"
if ! cmp -s "$work/cli-csv/faults-capsnet-mnist-like.csv" "$work/http.csv"; then
    echo "FAIL: HTTP CSV artifact differs from the CLI fault sweep"
    diff "$work/cli-csv/faults-capsnet-mnist-like.csv" "$work/http.csv" || true
    exit 1
fi
if ! cmp -s "$work/cli.txt" "$work/http.txt"; then
    echo "FAIL: HTTP text artifact differs from the CLI fault sweep"
    diff "$work/cli.txt" "$work/http.txt" || true
    exit 1
fi
echo "PASS: HTTP fault-sweep artifacts byte-identical to the CLI run"

kill -TERM "$pid"
wait "$pid" || { echo "FAIL: drain exited non-zero"; exit 1; }
echo "PASS: fault-campaign smoke complete"

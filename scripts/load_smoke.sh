#!/bin/sh
# Multi-tenant load smoke test: a keyed `redcane serve` under a
# submission burst must keep its queue bounded (excess answered 429, not
# buffered), schedule high-priority jobs ahead of earlier normal ones,
# share the slot fairly between tenants at equal priority, and still
# drain cleanly on SIGTERM with per-tenant counters in the metrics
# snapshot. All submissions go through `redcane client`, which this
# script doubles as a smoke test for.
#
#   scripts/load_smoke.sh [workdir]
#
# Needs curl and jq (both present on the CI runners).
set -eu

work=${1:-$(mktemp -d)}
bin="$work/redcane"
srvdir="$work/srv-cache"
addr=127.0.0.1:18322
base="http://$addr"
queue_cap=4
mkdir -p "$srvdir"

go build -o "$bin" ./cmd/redcane

cat > "$work/keys.json" <<'EOF'
{"tenants":[
  {"name":"alice","key":"ka-secret","max_queued":3},
  {"name":"bob","key":"kb-secret"}
]}
EOF

"$bin" -quick -seed 42 -log-level info -dir "$srvdir" serve -addr "$addr" \
    -slots 1 -queue "$queue_cap" -keys "$work/keys.json" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT
i=0
while ! curl -sf "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: server never became healthy"
        exit 1
    fi
    sleep 0.1
done

client() { # $1 = key; rest = client args
    key=$1
    shift
    "$bin" client -server "$base" -key "$key" "$@"
}

submit() { # $1 = key, $2 = spec json; prints job id, or "REJECTED"
    printf '%s' "$2" > "$work/spec.json"
    if out=$(client "$1" submit "$work/spec.json" 2>&1); then
        printf '%s' "$out" | jq -r .id
    else
        echo "REJECTED"
    fi
}

state_of() { curl -sf -H "X-API-Key: ka-secret" "$base/v1/jobs/$1" | jq -r .state; }

sweep='{"kind":"group-sweep","benchmark":"capsnet-mnist-like","nm_sweep":[0.2]}'

echo "== keyed server refuses anonymous and unknown-key submissions =="
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/jobs" -d "$sweep")
if [ "$code" != "401" ]; then
    echo "FAIL: anonymous submit answered $code, want 401"
    exit 1
fi
if [ "$(submit wrong-key "$sweep")" != "REJECTED" ]; then
    echo "FAIL: unknown key accepted"
    exit 1
fi
echo "PASS: 401 without a valid key"

echo "== burst: quota bounds the queue with 429s =="
# alice bursts well past her max_queued=3; the first fills the slot, up
# to three more queue, the rest must bounce instead of growing the queue.
ids=""
rejected=0
for n in 1 2 3 4 5 6 7 8; do
    id=$(submit ka-secret "$sweep")
    if [ "$id" = "REJECTED" ]; then
        rejected=$((rejected + 1))
    else
        ids="$ids $id"
    fi
done
depth=$(curl -sf "$base/healthz" | jq -r .queue_depth)
if [ "$rejected" -lt 4 ]; then
    echo "FAIL: burst of 8 saw only $rejected rejections (quota 3 + 1 slot)"
    exit 1
fi
if [ "$depth" -gt "$queue_cap" ]; then
    echo "FAIL: queue depth $depth exceeds cap $queue_cap"
    exit 1
fi
echo "PASS: $rejected/8 burst submissions answered 429, queue depth $depth <= $queue_cap"

echo "== priority: a late high-priority job overtakes queued normal work =="
# With the slot busy on alice's burst, bob queues a high-priority
# validate after her normal sweeps. No preemption — but every time the
# slot frees, the high-priority job must win it, so it finishes while
# alice still has normal jobs waiting.
vjob=$(submit kb-secret '{"kind":"validate","priority":"high"}')
if [ "$vjob" = "REJECTED" ]; then
    echo "FAIL: high-priority submit rejected"
    exit 1
fi
i=0
while [ "$(state_of "$vjob")" != "done" ]; do
    i=$((i + 1))
    if [ "$i" -gt 3000 ]; then
        echo "FAIL: high-priority job never finished"
        exit 1
    fi
    sleep 0.1
done
queued_normal=0
for id in $ids; do
    [ "$(state_of "$id")" = "queued" ] && queued_normal=$((queued_normal + 1))
done
if [ "$queued_normal" -lt 1 ]; then
    echo "FAIL: high-priority job finished only after the whole normal queue"
    exit 1
fi
echo "PASS: high-priority validate done with $queued_normal normal jobs still queued"

echo "== fairness: one tenant's backlog cannot starve another's job =="
# bob queues a single normal job behind alice's remaining backlog; the
# round-robin hands him the next free slot, so his job starts before
# alice's last queued one.
bjob=$(submit kb-secret "$sweep")
alast=""
for id in $ids; do
    [ "$(state_of "$id")" = "queued" ] && alast=$id
done
if [ "$bjob" = "REJECTED" ] || [ -z "$alast" ]; then
    echo "FAIL: could not stage the fairness scenario (bob=$bjob, alice backlog empty)"
    exit 1
fi
i=0
while [ "$(state_of "$bjob")" = "queued" ]; do
    i=$((i + 1))
    if [ "$i" -gt 3000 ]; then
        echo "FAIL: bob's job never left the queue"
        exit 1
    fi
    sleep 0.1
done
if [ "$(state_of "$alast")" != "queued" ]; then
    echo "FAIL: alice's last job beat bob's into the slot despite the round-robin"
    exit 1
fi
echo "PASS: bob's job scheduled ahead of alice's backlog tail"

echo "== clean SIGTERM drain under load =="
# Cancel the queued backlog so the drain only waits for the running job.
for id in $ids $bjob; do
    [ "$(state_of "$id")" = "queued" ] && client ka-secret cancel "$id" >/dev/null 2>&1 || true
done
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
trap - EXIT
if [ "$status" -ne 0 ]; then
    echo "FAIL: drained server exited with $status, want 0"
    exit 1
fi
if ! jq -e .counters "$srvdir/metrics.json" >/dev/null; then
    echo "FAIL: drain did not flush a parseable metrics snapshot"
    exit 1
fi
submitted=$(jq -r '.counters["server.tenant.alice.submitted"] // 0' "$srvdir/metrics.json")
rej_count=$(jq -r '.counters["server.tenant.alice.rejected"] // 0' "$srvdir/metrics.json")
if [ "$submitted" -lt 1 ] || [ "$rej_count" -lt 1 ]; then
    echo "FAIL: per-tenant counters missing from the snapshot (submitted=$submitted rejected=$rej_count)"
    exit 1
fi
echo "PASS: clean drain, per-tenant counters flushed (alice: $submitted admitted, $rej_count rejected)"
echo "load smoke: all checks passed"

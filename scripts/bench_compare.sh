#!/bin/sh
# Compares two benchmark snapshots produced by scripts/bench.sh and fails
# (exit 1) when any shared benchmark regressed by more than 20% ns/op.
#
#   scripts/bench_compare.sh [old.json new.json]
#
# Without arguments the two newest BENCH_*.json in the repo root are
# compared (by mtime; the older one is the baseline). Benchmarks present
# in only one snapshot are reported but never fail the check, so adding
# or retiring a benchmark doesn't break the comparison. CI runs this as a
# non-blocking step: a regression flags the build without failing it.
set -eu

threshold=${BENCH_REGRESSION_PCT:-20}

if [ $# -eq 2 ]; then
    old=$1
    new=$2
elif [ $# -eq 0 ]; then
    # Newest first; `ls -t` breaks mtime ties by name order.
    set -- $(ls -t BENCH_*.json 2>/dev/null | head -2)
    if [ $# -lt 2 ]; then
        echo "bench_compare: need two BENCH_*.json snapshots, found $#" >&2
        exit 2
    fi
    new=$1
    old=$2
else
    echo "usage: $0 [old.json new.json]" >&2
    exit 2
fi

echo "baseline: $old"
echo "current:  $new"

jq -r -n --slurpfile o "$old" --slurpfile n "$new" --argjson pct "$threshold" '
    ($o[0].benchmarks) as $old | ($n[0].benchmarks) as $new |
    [ ($old | keys[]) as $k
      | select($new | has($k))
      | {name: $k, old: $old[$k].ns_per_op, new: $new[$k].ns_per_op}
      | .delta = (if .old > 0 then (.new - .old) / .old * 100 else 0 end)
    ] as $rows |
    ( $rows[]
      | [(if .delta > $pct then "REGRESSION" else "ok" end),
         .name, (.old | tostring), (.new | tostring),
         ((.delta * 10 | round) / 10 | tostring) + "%"]
      | @tsv ),
    ( ($old | keys) - ($new | keys) | .[] | ["gone", ., "-", "-", "-"] | @tsv ),
    ( ($new | keys) - ($old | keys) | .[] | ["new", ., "-", "-", "-"] | @tsv ),
    ( [$rows[] | select(.delta > $pct)] | length | "regressions\t\(.)" )
' | {
    status=0
    while IFS="$(printf '\t')" read -r tag rest; do
        case $tag in
        regressions)
            if [ "$rest" -gt 0 ]; then
                echo "FAIL: $rest benchmark(s) regressed more than ${threshold}%"
                status=1
            else
                echo "ok: no benchmark regressed more than ${threshold}%"
            fi
            ;;
        *)
            printf '%-12s %s\n' "$tag" "$rest"
            ;;
        esac
    done
    exit $status
}

#!/bin/sh
# Interrupt-resume smoke test: a -quick design run is SIGINT'd mid-flight,
# rerun against the same cache directory, and its final report must be
# byte-identical to an uninterrupted reference run.
#
#   scripts/resume_smoke.sh [workdir]
#
# Exits non-zero when the interrupted exit code is wrong, the rerun fails,
# or the resumed report differs from the reference.
set -eu

work=${1:-$(mktemp -d)}
bin="$work/redcane"
refdir="$work/ref-cache"
intdir="$work/int-cache"
mkdir -p "$refdir" "$intdir"

go build -o "$bin" ./cmd/redcane

common="-quick -seed 42 -log-level info"

# Reference: uninterrupted design run.
echo "== reference run =="
"$bin" $common -dir "$refdir" -json "$work/ref.json" design capsnet-mnist-like

# Timing probe: the interrupted run shares the reference's trained weights
# (copied below), so the signal must land inside the analysis sweeps.
cp "$refdir"/*.gob "$intdir"/

echo "== interrupted run =="
"$bin" $common -dir "$intdir" -json "$work/int1.json" design capsnet-mnist-like &
pid=$!
# Interrupt as soon as the first checkpoint section lands (the clean
# accuracy, written right as the analysis sweeps begin), so the signal
# arrives mid-analysis rather than during the cached-weight load.
i=0
while [ "$i" -lt 600 ]; do
    if ls "$intdir"/ckpt-*.json >/dev/null 2>&1; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    sleep 0.1
    i=$((i + 1))
done
kill -INT "$pid" 2>/dev/null || true
status=0
wait "$pid" || status=$?
echo "interrupted run exited with $status"
if [ "$status" -eq 0 ]; then
    echo "NOTE: run finished before the signal landed; resume path reduces to the fully-checkpointed case"
elif [ "$status" -ne 130 ]; then
    echo "FAIL: interrupted exit code $status, want 130 (or 0 if too fast)"
    exit 1
fi

echo "== resumed run =="
"$bin" $common -dir "$intdir" -json "$work/int2.json" design capsnet-mnist-like

if ! cmp -s "$work/ref.json" "$work/int2.json"; then
    echo "FAIL: resumed report differs from uninterrupted reference"
    diff "$work/ref.json" "$work/int2.json" || true
    exit 1
fi
echo "PASS: resumed report byte-identical to uninterrupted run"

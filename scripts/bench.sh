#!/bin/sh
# Runs the kernel and sweep-engine benchmarks and writes BENCH_<n>.json
# (ns/op per benchmark plus the engine-vs-naive sweep speedups).
#
#   scripts/bench.sh [out.json]
#
# The benchmark set deliberately stays small and training-free so it
# completes in CI time budgets.
set -eu

out=${1:-BENCH_1.json}
pattern='^(BenchmarkLayerSweepClassCaps|BenchmarkLayerSweepClassCapsNaive|BenchmarkGroupSweepEngine|BenchmarkGroupSweepNaive|BenchmarkMethodologyGroupSweepSmall|BenchmarkInferenceDeepCaps|BenchmarkInferenceApproxSoftmax|BenchmarkConv2DKernel|BenchmarkQuantConv2DExact|BenchmarkQuantConv2DLUT|BenchmarkQuantCapsVotes)$'

raw=$(go test -run '^$' -bench "$pattern" -benchtime=10x .)
echo "$raw"

echo "$raw" | awk -v out="$out" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix, if any
    ns[name] = $3
    order[n++] = name
}
END {
    printf "{\n" > out
    printf "  \"benchmarks\": {\n" >> out
    for (i = 0; i < n; i++) {
        printf "    \"%s\": {\"ns_per_op\": %s}%s\n", order[i], ns[order[i]], (i < n - 1 ? "," : "") >> out
    }
    printf "  },\n" >> out
    printf "  \"speedups\": {\n" >> out
    printf "    \"layer_sweep_classcaps\": %.2f,\n", ns["BenchmarkLayerSweepClassCapsNaive"] / ns["BenchmarkLayerSweepClassCaps"] >> out
    printf "    \"group_sweep\": %.2f\n", ns["BenchmarkGroupSweepNaive"] / ns["BenchmarkGroupSweepEngine"] >> out
    printf "  }\n" >> out
    printf "}\n" >> out
}
'
echo "wrote $out"

#!/bin/sh
# Analysis-service smoke test: the HTTP job service must produce
# byte-identical artifacts to the CLI for the same sweep, stream parseable
# NDJSON events, drain cleanly on SIGTERM (exit 0, metrics flushed,
# running job re-queued), and resume the drained job to the same bytes
# after a restart.
#
#   scripts/serve_smoke.sh [workdir]
#
# Needs curl and jq (both present on the CI runners).
set -eu

work=${1:-$(mktemp -d)}
bin="$work/redcane"
clidir="$work/cli-cache"
srvdir="$work/srv-cache"
addr=127.0.0.1:18321
base="http://$addr"
mkdir -p "$clidir" "$srvdir"

go build -o "$bin" ./cmd/redcane

common="-quick -seed 42 -log-level info"

echo "== CLI reference sweep =="
"$bin" $common -dir "$clidir" -csv "$work/cli-csv" experiment groups-capsnet-mnist-like \
    > "$work/cli.txt"

start_server() {
    "$bin" $common -dir "$srvdir" serve -addr "$addr" &
    pid=$!
    i=0
    while ! curl -sf "$base/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ] || ! kill -0 "$pid" 2>/dev/null; then
            echo "FAIL: server never became healthy"
            exit 1
        fi
        sleep 0.1
    done
}

wait_terminal() { # $1 = job id; prints the terminal state
    i=0
    while [ "$i" -lt 3000 ]; do
        state=$(curl -sf "$base/v1/jobs/$1" | jq -r .state)
        case "$state" in
        done|failed|cancelled) echo "$state"; return 0 ;;
        esac
        sleep 0.1
        i=$((i + 1))
    done
    echo "timeout"
}

echo "== server run of the same sweep =="
start_server
job=$(curl -sf -X POST "$base/v1/jobs" \
    -d '{"kind":"group-sweep","benchmark":"capsnet-mnist-like"}' | jq -r .id)
echo "submitted job $job"
state=$(wait_terminal "$job")
if [ "$state" != "done" ]; then
    echo "FAIL: job $job ended as $state"
    curl -sf "$base/v1/jobs/$job" || true
    exit 1
fi

# The event stream of a finished job replays its history as NDJSON and
# ends; every line must be a JSON event.
curl -sf "$base/v1/jobs/$job/events" > "$work/events.ndjson"
if [ ! -s "$work/events.ndjson" ] || ! jq -es 'all(.msg and .level and .time)' \
    < "$work/events.ndjson" >/dev/null; then
    echo "FAIL: event stream is empty or not NDJSON"
    cat "$work/events.ndjson"
    exit 1
fi

curl -sf "$base/v1/jobs/$job/result?format=csv" > "$work/http.csv"
curl -sf "$base/v1/jobs/$job/result?format=text" > "$work/http.txt"
if ! cmp -s "$work/cli-csv/groups-capsnet-mnist-like.csv" "$work/http.csv"; then
    echo "FAIL: HTTP CSV artifact differs from the CLI run"
    diff "$work/cli-csv/groups-capsnet-mnist-like.csv" "$work/http.csv" || true
    exit 1
fi
if ! cmp -s "$work/cli.txt" "$work/http.txt"; then
    echo "FAIL: HTTP text artifact differs from the CLI run"
    diff "$work/cli.txt" "$work/http.txt" || true
    exit 1
fi
echo "PASS: HTTP artifacts byte-identical to the CLI sweep"

echo "== SIGTERM drain mid-job =="
# A fresh identical job re-runs the sweeps (per-job checkpoints), and the
# weight cache is warm, so the server is sweeping when the signal lands.
job2=$(curl -sf -X POST "$base/v1/jobs" \
    -d '{"kind":"group-sweep","benchmark":"capsnet-mnist-like"}' | jq -r .id)
i=0
while [ "$(curl -sf "$base/v1/jobs/$job2" | jq -r .state)" = "queued" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" -ne 0 ]; then
    echo "FAIL: drained server exited with $status, want 0"
    exit 1
fi
if ! jq -e .counters "$srvdir/metrics.json" >/dev/null; then
    echo "FAIL: drain did not flush a parseable metrics snapshot"
    exit 1
fi
state=$(jq -r .state "$srvdir/jobs/$job2/job.json")
if [ "$state" != "queued" ] && [ "$state" != "done" ]; then
    echo "FAIL: drained job persisted as $state, want queued (or done if too fast)"
    exit 1
fi
[ "$state" = "done" ] && echo "NOTE: job finished before the signal; resume reduces to the trivial case"
echo "PASS: clean drain (exit 0, metrics flushed, job state $state)"

echo "== restart resumes the drained job =="
start_server
state=$(wait_terminal "$job2")
if [ "$state" != "done" ]; then
    echo "FAIL: resumed job $job2 ended as $state"
    exit 1
fi
curl -sf "$base/v1/jobs/$job2/result?format=csv" > "$work/resumed.csv"
if ! cmp -s "$work/cli-csv/groups-capsnet-mnist-like.csv" "$work/resumed.csv"; then
    echo "FAIL: resumed job's CSV differs from the CLI reference"
    diff "$work/cli-csv/groups-capsnet-mnist-like.csv" "$work/resumed.csv" || true
    exit 1
fi
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: final drain exited non-zero"; exit 1; }
echo "PASS: resumed job byte-identical to the CLI sweep"

#!/bin/sh
# Fleet smoke test: a distributed sweep executed by workers over leased
# windows must produce byte-identical artifacts to the single-process CLI
# run — including when one worker is killed mid-run, so its outstanding
# lease expires and the window is re-issued to the survivor.
#
#   scripts/fleet_smoke.sh [workdir]
#
# Needs curl and jq (both present on the CI runners).
set -eu

work=${1:-$(mktemp -d)}
bin="$work/redcane"
clidir="$work/cli-cache"
srvdir="$work/srv-cache"
addr=127.0.0.1:18322
base="http://$addr"
mkdir -p "$clidir" "$srvdir"

go build -o "$bin" ./cmd/redcane

common="-quick -seed 42 -log-level info"

echo "== CLI reference sweep (single process) =="
"$bin" $common -dir "$clidir" -csv "$work/cli-csv" experiment groups-capsnet-mnist-like \
    > "$work/cli.txt"

echo "== coordinator + 2 workers =="
# Short lease TTL so the killed worker's window re-issues quickly.
"$bin" $common -dir "$srvdir" serve -addr "$addr" -lease-ttl 2s &
srv=$!
i=0
while ! curl -sf "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$srv" 2>/dev/null; then
        echo "FAIL: coordinator never became healthy"
        exit 1
    fi
    sleep 0.1
done

# Both workers reuse the CLI run's warm weight cache: same benchmark,
# same train seed, same quick mode, so they load instead of retraining.
"$bin" $common -dir "$clidir" worker -join "$base" -name w1 -poll 100ms \
    > "$work/w1.log" 2>&1 &
w1=$!
"$bin" $common -dir "$clidir" worker -join "$base" -name w2 -poll 100ms \
    > "$work/w2.log" 2>&1 &
w2=$!

job=$(curl -sf -X POST "$base/v1/jobs" \
    -d '{"kind":"group-sweep","benchmark":"capsnet-mnist-like","distributed":true}' | jq -r .id)
echo "submitted distributed job $job"

echo "== kill worker w1 once it holds leased work =="
i=0
while [ "$i" -lt 600 ]; do
    state=$(curl -sf "$base/v1/jobs/$job" | jq -r .state)
    [ "$state" = "done" ] && break
    if curl -sf "$base/v1/fleet" |
        jq -e '.workers.w1 != null and .windows_leased >= 1' >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
kill -9 "$w1" 2>/dev/null || true
echo "killed w1 (its lease must expire and re-issue to w2)"

i=0
state=timeout
while [ "$i" -lt 6000 ]; do
    state=$(curl -sf "$base/v1/jobs/$job" | jq -r .state)
    case "$state" in
    done | failed | cancelled) break ;;
    esac
    sleep 0.1
    i=$((i + 1))
done
if [ "$state" != "done" ]; then
    echo "FAIL: distributed job $job ended as $state"
    curl -sf "$base/v1/jobs/$job" || true
    echo "-- w2 log --"
    cat "$work/w2.log" || true
    exit 1
fi

curl -sf "$base/v1/jobs/$job/result?format=csv" > "$work/fleet.csv"
curl -sf "$base/v1/jobs/$job/result?format=text" > "$work/fleet.txt"
if ! cmp -s "$work/cli-csv/groups-capsnet-mnist-like.csv" "$work/fleet.csv"; then
    echo "FAIL: fleet CSV differs from the single-process CLI run"
    diff "$work/cli-csv/groups-capsnet-mnist-like.csv" "$work/fleet.csv" || true
    exit 1
fi
if ! cmp -s "$work/cli.txt" "$work/fleet.txt"; then
    echo "FAIL: fleet text artifact differs from the single-process CLI run"
    diff "$work/cli.txt" "$work/fleet.txt" || true
    exit 1
fi

kill -TERM "$w2" 2>/dev/null || true
kill -TERM "$srv"
wait "$srv" || { echo "FAIL: coordinator drain exited non-zero"; exit 1; }
echo "PASS: fleet run (with a mid-run worker kill) byte-identical to the single-process sweep"

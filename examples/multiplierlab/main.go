// Multiplierlab shows how to characterize a *custom* approximate
// multiplier with the same machinery the paper applies to the
// EvoApprox8B library: implement the one-method Multiplier interface,
// measure its error distribution over 1/9/81-MAC chains (Fig. 6), its
// noise magnitude/average (Table IV), and see where it would land in the
// library's power/accuracy trade-off.
//
//	go run ./examples/multiplierlab
package main

import (
	"fmt"

	"redcane/internal/approx"
)

// hybridMul is a custom design: exact for small operands (cheap short
// multiplier) and DRUM-style dynamic truncation for large ones.
type hybridMul struct{ drum approx.DRUM }

func (h hybridMul) Mul(a, b uint8) uint16 {
	if a < 16 && b < 16 {
		return uint16(a) * uint16(b)
	}
	return h.drum.Mul(a, b)
}

func main() {
	custom := hybridMul{drum: approx.DRUM{K: 4}}

	fmt.Println("custom hybrid multiplier — error profile (uniform operands):")
	fmt.Printf("%6s %12s %12s %10s %8s\n", "MACs", "mean", "std", "NM", "KS")
	for _, chain := range []int{1, 9, 81} {
		p := approx.Characterize(custom, approx.Uniform{}, chain, 50000, 11)
		fmt.Printf("%6d %12.2f %12.2f %10.4f %8.3f\n", chain, p.Fit.Mean, p.Fit.Std, p.NM, p.Fit.KS)
	}

	p9 := approx.Characterize(custom, approx.Uniform{}, 9, 50000, 11)
	fmt.Println("\n9-MAC accumulated error histogram:")
	fmt.Print(p9.Hist.Render(40))

	fmt.Printf("\nMRED: %.4f\n", approx.MeanRelativeErrorDistance(custom))

	// Where would it slot into the library (by noise magnitude)?
	fmt.Println("\nlibrary context (1-MAC NM, ascending):")
	for _, c := range approx.Library() {
		pc := approx.Characterize(c.Model, approx.Uniform{}, 1, 50000, 11)
		marker := ""
		if pc.NM > 0 && p9.NM > 0 && pc.NM >= approx.Characterize(custom, approx.Uniform{}, 1, 50000, 11).NM {
			marker = "   <- custom design fits below here"
		}
		fmt.Printf("  %-12s power %4.0f µW   NM %.4f%s\n", c.Name, c.PowerUW, pc.NM, marker)
		if marker != "" {
			break
		}
	}

	// Compile to a LUT for O(1) integration into the execution engine.
	lut := approx.CompileLUT(custom)
	fmt.Printf("\nLUT compiled; 200×31 = %d (exact %d)\n", lut.Mul(200, 31), 200*31)
}

// Reconstruction trains a CapsNet with Sabour et al.'s reconstruction
// regularizer (the training-time decoder the ReD-CaNe paper notes it
// excludes from the resilience analysis), then writes side-by-side PNG
// images of test digits and their reconstructions from the class capsule
// — a visual check that the capsule vectors encode instantiation
// parameters, not just class identity.
//
//	go run ./examples/reconstruction
package main

import (
	"fmt"
	"log"
	"os"

	"redcane/internal/datasets"
	"redcane/internal/models"
	"redcane/internal/tensor"
	"redcane/internal/train"
)

func main() {
	log.SetFlags(0)

	ds := datasets.MNISTLike(800, 100, 42)
	spec := models.CapsNet([]int{1, 20, 20}, 10)
	m, err := models.BuildTrainer(spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	sz := ds.Channels * ds.H * ds.W
	calib := tensor.NewFrom(ds.TrainX.Data[:32*sz], 32, 1, 20, 20)
	train.LSUVInit(m, calib, 0.5)

	dec := train.NewDecoder(10, 16, 64, 64, sz, 9)
	res := train.Fit(m, ds, train.Config{
		Epochs: 4, BatchSize: 32, LR: 1.5e-3, Seed: 1, GradClip: 5,
		Decoder: dec, Log: os.Stdout,
	})
	fmt.Printf("trained with reconstruction loss: test accuracy %.2f%%\n", 100*res.TestAccuracy)

	// Reconstruct the first 8 test digits and save input/output pairs.
	outDir := "reconstructions"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	n := 8
	x := tensor.NewFrom(ds.TestX.Data[:n*sz], n, 1, 20, 20)
	v := m.Forward(x)
	recon := dec.Reconstruct(v, ds.TestY[:n])

	var mse float64
	for i := 0; i < n; i++ {
		in := tensor.NewFrom(x.Data[i*sz:(i+1)*sz], sz)
		out := tensor.NewFrom(recon.Data[i*sz:(i+1)*sz], sz)
		for j := range in.Data {
			d := in.Data[j] - out.Data[j]
			mse += d * d
		}
		if err := savePair(in, out, fmt.Sprintf("%s/digit%d-%d", outDir, ds.TestY[i], i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d input/reconstruction pairs to %s/ (MSE %.4f per image)\n",
		n, outDir, mse/float64(n))
}

// savePair writes <base>-in.png and <base>-out.png.
func savePair(in, out *tensor.Tensor, base string) error {
	tmp := &datasets.Dataset{Name: "pair", ClassNames: []string{"x"},
		Channels: 1, H: 20, W: 20,
		TrainX: in.Reshape(1, 1, 20, 20), TrainY: []int{0}}
	if err := tmp.SamplePNG(0, base+"-in.png"); err != nil {
		return err
	}
	tmp.TrainX = out.Reshape(1, 1, 20, 20)
	return tmp.SamplePNG(0, base+"-out.png")
}

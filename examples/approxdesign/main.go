// Approxdesign runs the complete 6-step ReD-CaNe methodology end to end:
// train a CapsNet, characterize the approximate-multiplier library on the
// network's own operand distribution, analyze group- and layer-wise
// resilience, select a component per operation, and validate the
// resulting approximate CapsNet design.
//
//	go run ./examples/approxdesign
package main

import (
	"fmt"
	"log"

	"redcane/internal/experiments"
)

func main() {
	log.SetFlags(0)

	r := experiments.NewRunner(experiments.Config{
		Dir:   ".redcane-cache",
		Quick: true, // fast demo; drop for the paper-scale run
		Seed:  42,
	})

	b := experiments.Benchmarks[4] // capsnet on the digit dataset
	fmt.Printf("running the 6-step ReD-CaNe methodology on %s...\n\n", b.Key())

	design, err := r.Design(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(design.Render())

	fmt.Println("\nThe output is the paper's deliverable: an approximate CapsNet —")
	fmt.Println("a per-operation assignment of approximate multipliers that keeps")
	fmt.Println("classification accuracy while cutting multiplier energy.")
}

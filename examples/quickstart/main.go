// Quickstart: train a small CapsNet on the synthetic digit dataset, then
// run the group-wise resilience analysis (ReD-CaNe Steps 1–3) and print
// which operation groups tolerate approximation noise.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"redcane/internal/core"
	"redcane/internal/datasets"
	"redcane/internal/models"
	"redcane/internal/params"
	"redcane/internal/tensor"
	"redcane/internal/train"
)

func main() {
	log.SetFlags(0)

	// 1. Synthesize a 10-class handwritten-digit analogue (offline,
	//    deterministic).
	ds := datasets.MNISTLike(800, 200, 42)
	fmt.Printf("dataset %s: %d train / %d test, %d classes\n",
		ds.Name, ds.TrainX.Shape[0], ds.TestX.Shape[0], ds.Classes())

	// 2. Build and train the original CapsNet (Conv → PrimaryCaps →
	//    DigitCaps with dynamic routing).
	spec := models.CapsNet([]int{ds.Channels, ds.H, ds.W}, ds.Classes())
	trainer, err := models.BuildTrainer(spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	sz := ds.Channels * ds.H * ds.W
	calib := tensor.NewFrom(ds.TrainX.Data[:32*sz], 32, ds.Channels, ds.H, ds.W)
	train.LSUVInit(trainer, calib, 0.5)
	res := train.Fit(trainer, ds, train.Config{
		Epochs: 3, BatchSize: 32, LR: 1.5e-3, Seed: 1, GradClip: 5, Log: os.Stdout,
	})
	fmt.Printf("trained: test accuracy %.2f%%\n\n", 100*res.TestAccuracy)

	// 3. Transfer the weights into the instrumented inference network.
	net, err := models.BuildInference(spec, 99)
	if err != nil {
		log.Fatal(err)
	}
	if err := params.FromParams(trainer.ParamMap()).LoadInto(net.Params()); err != nil {
		log.Fatal(err)
	}

	// 4. Group-wise resilience analysis (methodology Steps 1–3): sweep
	//    the noise magnitude per Table III operation group.
	a := &core.Analyzer{Net: net, Data: ds, Opts: core.Options{
		Trials: 2, MaxEval: 150, Seed: 5,
	}.WithDefaults()}
	clean := a.CleanAccuracy()
	fmt.Printf("clean accuracy (eval subset): %.2f%%\n\n", 100*clean)
	fmt.Println("group-wise accuracy drop by noise magnitude:")
	fmt.Printf("%-14s", "NM")
	for _, nm := range a.Opts.NMSweep {
		fmt.Printf("%8.3g", nm)
	}
	fmt.Println()
	groups, err := a.AnalyzeGroups(context.Background(), clean)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range groups {
		fmt.Printf("%-14s", g.Group)
		for _, p := range g.Points {
			fmt.Printf("%+8.1f", 100*p.Drop)
		}
		if g.Resilient {
			fmt.Printf("  [RESILIENT]")
		}
		fmt.Println()
	}
	fmt.Println("\nThe dynamic-routing groups (softmax, logits update) should tolerate")
	fmt.Println("far larger NM than MAC outputs and activations — the paper's headline.")
}
